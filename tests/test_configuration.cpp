// Unit tests for Configuration and its metrics.
#include "core/configuration.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace pp {
namespace {

TEST(Configuration, AgentsSumsCounts) {
  Configuration c(std::vector<u64>{1, 0, 3, 2});
  EXPECT_EQ(c.agents(), 6u);
  EXPECT_EQ(c.num_states(), 4u);
}

TEST(Configuration, FromAgentStatesRoundTrip) {
  const std::vector<StateId> agents{0, 2, 2, 5, 1};
  const Configuration c = Configuration::from_agent_states(agents, 6);
  EXPECT_EQ(c.counts, (std::vector<u64>{1, 1, 2, 0, 0, 1}));
  const auto back = c.to_agent_states();
  EXPECT_EQ(back, (std::vector<StateId>{0, 1, 2, 2, 5}));
}

TEST(Configuration, KDistance) {
  // 5 ranks + 1 extra state; ranks 1 and 3 are empty.
  Configuration c(std::vector<u64>{1, 0, 2, 0, 1, 1});
  EXPECT_EQ(k_distance(c, 5), 2u);
  EXPECT_EQ(k_distance(c, 6), 2u);  // extra state occupied
}

TEST(Configuration, ValidRankingRequiresExactlyOneEverywhere) {
  Configuration good(std::vector<u64>{1, 1, 1, 0});
  EXPECT_TRUE(is_valid_ranking(good, 3));

  Configuration doubled(std::vector<u64>{2, 1, 0, 0});
  EXPECT_FALSE(is_valid_ranking(doubled, 3));

  Configuration in_extra(std::vector<u64>{1, 1, 0, 1});
  EXPECT_FALSE(is_valid_ranking(in_extra, 3));
}

TEST(Configuration, ValidRankingIsZeroDistant) {
  Configuration good(std::vector<u64>{1, 1, 1});
  EXPECT_EQ(k_distance(good, 3), 0u);
}

}  // namespace
}  // namespace pp
