// The weighted and dynamic-graph scheduler families
// (schedulers/weighted.hpp, schedulers/dynamic_graph.hpp).
//
// The load-bearing guarantees:
//   * WeightedScheduler with uniform weights IS the paper's uniform
//     scheduler (statistical equivalence of the stabilisation-time
//     distribution against run_uniform);
//   * the spatial decay kernels slow mixing but never sever it — every
//     protocol stabilises, and the kernel values themselves are what the
//     header promises;
//   * the event-driven edge-Markovian simulation (geometric event gaps +
//     conditioned flip sets) matches a naive flip-every-edge-every-step
//     reference simulation statistically — the null-skipping is exact,
//     not an approximation;
//   * the headline scientific finding: a static sparse cycle strands
//     ranking (locally stuck), the SAME cycle under edge-Markovian
//     dynamics or periodic rewiring reaches silence at the same budget —
//     quantifying that ranking needs mixing, not density;
//   * infeasible knobs die at construction with clear messages (the
//     death tests double as documentation of the constraints).
#include "schedulers/dynamic_graph.hpp"
#include "schedulers/weighted.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <utility>
#include <vector>

#include "core/initial.hpp"
#include "protocols/ag.hpp"
#include "protocols/factory.hpp"
#include "schedulers/graph_restricted.hpp"
#include "schedulers/scheduler.hpp"

namespace pp {
namespace {

RunResult run_via(const Scheduler& s, std::string_view proto, u64 n, u64 seed,
                  const RunOptions& opt = {}) {
  ProtocolPtr p = make_protocol(proto, n);
  Rng rng(seed);
  p->reset(initial::uniform_random(*p, rng));
  return s.run(*p, rng, opt);
}

// ---- weighted ------------------------------------------------------------

TEST(SchedulerWeighted, UniformKernelMatchesUniformEngineStatistically) {
  // The acceptance bar for the sampler layer: weighted[uniform] assigns
  // every ordered pair weight 1, so its stabilisation-time distribution
  // must match the uniform scheduler's (same tolerance the engine
  // equivalence tests use; the two consume the generator differently, so
  // only statistics can agree, not trajectories).
  const WeightedScheduler sched(WeightKernel::kUniform);
  const u64 n = 24;
  const int kTrials = 60;
  double weighted_time = 0, uniform_time = 0;
  for (int t = 0; t < kTrials; ++t) {
    const RunResult r = run_via(sched, "ag", n, 9000 + t);
    EXPECT_TRUE(r.valid);
    weighted_time += r.parallel_time;
    AgProtocol p(n);
    Rng rng(900000 + t);
    p.reset(initial::uniform_random(p, rng));
    uniform_time += run_uniform(p, rng).parallel_time;
  }
  EXPECT_NEAR(weighted_time / uniform_time, 1.0, 0.25);
}

TEST(SchedulerWeighted, KernelValuesMatchTheHeader) {
  const WeightedScheduler ring(WeightKernel::kRingDecay);
  const WeightedScheduler ring2(WeightKernel::kRingDecay, 2);
  const WeightedScheduler line(WeightKernel::kLineDecay);
  const u64 n = 16;
  // Ring distance wraps; line distance does not.
  EXPECT_EQ(ring.pair_weight(n, 0, 1), 16u);   // d = 1
  EXPECT_EQ(ring.pair_weight(n, 0, 15), 16u);  // d = 1 around the seam
  EXPECT_EQ(ring.pair_weight(n, 0, 8), 2u);    // antipodal: d = 8
  EXPECT_EQ(line.pair_weight(n, 0, 15), 1u);   // full span: d = 15
  EXPECT_EQ(line.pair_weight(n, 15, 0), 1u);   // symmetric
  EXPECT_EQ(ring2.pair_weight(n, 0, 8), 4u);   // squared decay
  // Every pair keeps weight >= 1: mixing is slowed, never severed.
  for (u64 i = 0; i < n; ++i) {
    for (u64 j = 0; j < n; ++j) {
      if (i == j) continue;
      EXPECT_GE(ring.pair_weight(n, i, j), 1u);
      EXPECT_GE(line.pair_weight(n, i, j), 1u);
      EXPECT_EQ(ring.pair_weight(n, i, j), ring.pair_weight(n, j, i));
    }
  }
}

TEST(SchedulerWeighted, DecayKernelsStabiliseEveryProtocol) {
  for (const WeightKernel kernel :
       {WeightKernel::kRingDecay, WeightKernel::kLineDecay}) {
    const WeightedScheduler sched(kernel);
    for (const auto name : protocol_names()) {
      const u64 n = preferred_population(name, 32);
      const RunResult r = run_via(sched, name, n, /*seed=*/21);
      EXPECT_TRUE(r.silent) << sched.name() << " on " << name;
      EXPECT_TRUE(r.valid) << sched.name() << " on " << name;
    }
  }
}

TEST(SchedulerWeighted, RespectsInteractionBudget) {
  const WeightedScheduler sched(WeightKernel::kRingDecay);
  RunOptions opt;
  opt.max_interactions = 200;
  const RunResult r = run_via(sched, "ag", 32, /*seed=*/22, opt);
  EXPECT_EQ(r.interactions, 200u);
  EXPECT_FALSE(r.silent);
}

// ---- edge-Markovian dynamics ---------------------------------------------

// A naive reference simulation of the edge-Markovian model: every
// potential edge flips by an independent Bernoulli draw every step, then
// one directed present edge fires.  Deliberately shares no machinery with
// DynamicGraphScheduler::run_markovian — this is what the event-driven
// loop must match in distribution.
RunResult naive_markovian(Protocol& p, Rng& rng, const InteractionGraph& g,
                          double birth, double death, u64 budget) {
  const u64 n = p.num_agents();
  std::vector<StateId> state = p.configuration().to_agent_states();
  rng.shuffle(state);
  std::vector<std::pair<u32, u32>> uv;
  for (u32 u = 0; u < n; ++u) {
    for (u32 v = u + 1; v < n; ++v) uv.emplace_back(u, v);
  }
  std::vector<u8> present(uv.size(), 0);
  for (const auto [u, v] : g.edges()) {
    const u64 lo = std::min(u, v);
    const u64 hi = std::max(u, v);
    present[lo * (n - 1) - lo * (lo - 1) / 2 + (hi - lo - 1)] = 1;
  }
  RunResult r;
  while (!p.is_silent() && r.interactions < budget) {
    ++r.interactions;
    for (u64 e = 0; e < uv.size(); ++e) {
      if (present[e] ? rng.bernoulli(death) : rng.bernoulli(birth)) {
        present[e] ^= 1;
      }
    }
    u64 edges = 0;
    for (const u8 x : present) edges += x;
    if (edges == 0) continue;
    u64 pick = rng.below(2 * edges);
    u64 e = 0;
    while (present[e] == 0 || pick >= 2) {
      if (present[e]) pick -= 2;
      ++e;
    }
    auto [a, b] = uv[e];
    if (pick == 1) std::swap(a, b);
    const auto [sa, sb] = p.apply_pair(state[a], state[b]);
    if (sa == state[a] && sb == state[b]) continue;
    state[a] = sa;
    state[b] = sb;
    ++r.productive_steps;
  }
  r.silent = p.is_silent();
  return r;
}

TEST(SchedulerDynamic, MarkovianMatchesNaiveReferenceStatistically) {
  // The event-driven loop (geometric event gaps, truncated-geometric +
  // binomial conditioned flip sets) must reproduce the naive model's
  // stabilisation statistics — this is the exactness claim for
  // null-skipping on a changing topology.
  const u64 n = 12;
  const double birth = 0.01, death = 0.05;
  SchedulerSpec spec;
  spec.kind = SchedulerKind::kDynamicGraph;
  spec.graph = GraphKind::kCycle;
  spec.dynamics = GraphDynamics::kEdgeMarkovian;
  spec.edge_birth = birth;
  spec.edge_death = death;
  const DynamicGraphScheduler sched(spec, n);

  const int kTrials = 120;
  double fast_inter = 0, naive_inter = 0;
  double fast_steps = 0, naive_steps = 0;
  int fast_silent = 0, naive_silent = 0;
  const u64 budget = 200000;
  for (int t = 0; t < kTrials; ++t) {
    RunOptions opt;
    opt.max_interactions = budget;
    const RunResult a = run_via(sched, "ag", n, 40000 + t, opt);
    fast_inter += static_cast<double>(a.interactions);
    fast_steps += static_cast<double>(a.productive_steps);
    fast_silent += a.silent ? 1 : 0;

    ProtocolPtr p = make_protocol("ag", n);
    Rng rng(41000 + t);
    p->reset(initial::uniform_random(*p, rng));
    const RunResult b = naive_markovian(*p, rng, sched.initial_graph(), birth,
                                        death, budget);
    naive_inter += static_cast<double>(b.interactions);
    naive_steps += static_cast<double>(b.productive_steps);
    naive_silent += b.silent ? 1 : 0;
  }
  EXPECT_EQ(fast_silent, kTrials);
  EXPECT_EQ(naive_silent, kTrials);
  EXPECT_NEAR(fast_inter / naive_inter, 1.0, 0.20);
  EXPECT_NEAR(fast_steps / naive_steps, 1.0, 0.20);
}

TEST(SchedulerDynamic, HeadlineStaticCycleStrandsDynamicCycleDoesNot) {
  // THE finding this PR exists to pin: self-stabilising ranking needs
  // mixing, not density.  The same sparse cycle, the same budget, ten
  // starts each: static graph-restriction strands most runs locally
  // stuck, edge-Markovian dynamics (at cycle-matched stationary sparsity)
  // and periodic rewiring deliver every run to silence.
  const u64 n = 32;
  const u64 budget = 20 * n * n * n;
  const int kRuns = 10;

  auto cycle =
      std::make_shared<const InteractionGraph>(InteractionGraph::cycle(n));
  const GraphRestrictedScheduler static_sched(cycle, /*accelerated=*/true);

  SchedulerSpec spec;
  spec.kind = SchedulerKind::kDynamicGraph;
  spec.graph = GraphKind::kCycle;
  spec.dynamics = GraphDynamics::kEdgeMarkovian;
  const DynamicGraphScheduler markov(spec, n);
  spec.dynamics = GraphDynamics::kPeriodicRewire;
  const DynamicGraphScheduler rewire(spec, n);

  int stranded = 0;
  RunOptions opt;
  opt.max_interactions = budget;
  for (int t = 0; t < kRuns; ++t) {
    const RunResult s = run_via(static_sched, "ag", n, 50000 + t, opt);
    if (!s.silent) ++stranded;

    const RunResult m = run_via(markov, "ag", n, 50000 + t, opt);
    EXPECT_TRUE(m.silent) << "edge-Markovian cycle failed to silence, t="
                          << t;
    EXPECT_TRUE(m.valid);

    const RunResult w = run_via(rewire, "ag", n, 50000 + t, opt);
    EXPECT_TRUE(w.silent) << "rewired cycle failed to silence, t=" << t;
    EXPECT_TRUE(w.valid);
  }
  EXPECT_GE(stranded, kRuns / 2)
      << "the static cycle should strand most random AG starts";
}

TEST(SchedulerDynamic, RewireRespectsBudgetExactlyWhenStuck) {
  // A rewired run that never finds the productive meetings must still
  // exhaust its budget to the exact step (the conformance suite's
  // "stated reason" contract), even though whole stuck epochs are skipped
  // in O(1).
  SchedulerSpec spec;
  spec.kind = SchedulerKind::kDynamicGraph;
  spec.graph = GraphKind::kCycle;
  spec.dynamics = GraphDynamics::kPeriodicRewire;
  spec.rewire_period = 64;
  const u64 n = 32;
  const DynamicGraphScheduler sched(spec, n);
  RunOptions opt;
  opt.max_interactions = 1000;  // far too small to rank n = 32
  const RunResult r = run_via(sched, "ag", n, /*seed=*/60, opt);
  EXPECT_FALSE(r.silent);
  EXPECT_EQ(r.interactions, 1000u);
  EXPECT_DOUBLE_EQ(r.parallel_time, 1000.0 / n);
}

TEST(SchedulerDynamic, MarkovianRespectsBudgetExactly) {
  SchedulerSpec spec;
  spec.kind = SchedulerKind::kDynamicGraph;
  spec.graph = GraphKind::kCycle;
  spec.dynamics = GraphDynamics::kEdgeMarkovian;
  const u64 n = 32;
  const DynamicGraphScheduler sched(spec, n);
  RunOptions opt;
  opt.max_interactions = 500;
  const RunResult r = run_via(sched, "ag", n, /*seed=*/61, opt);
  EXPECT_FALSE(r.silent);
  EXPECT_EQ(r.interactions, 500u);
}

TEST(SchedulerDynamic, PureDeathDynamicsTerminateWhenFrozenStuck) {
  // birth = explicit tiny, death = 1: the topology evaporates after the
  // first steps and rarely re-grows; the scheduler must not hang when the
  // dynamics freeze with work left — it stops with an honest non-silent
  // verdict (or genuinely finishes if the early interactions sufficed).
  SchedulerSpec spec;
  spec.kind = SchedulerKind::kDynamicGraph;
  spec.graph = GraphKind::kComplete;
  spec.dynamics = GraphDynamics::kEdgeMarkovian;
  spec.edge_birth = 1e-12;
  spec.edge_death = 1.0;
  const u64 n = 16;
  const DynamicGraphScheduler sched(spec, n);
  RunOptions opt;
  opt.max_interactions = 2000;
  const RunResult r = run_via(sched, "ag", n, /*seed=*/62, opt);
  EXPECT_LE(r.interactions, 2000u);
  if (!r.silent) EXPECT_GE(r.interactions, r.productive_steps);
}

// ---- construction-time validation ----------------------------------------

TEST(SchedulerValidationDeathTest, WeightedRejectsBadKernelPower) {
  EXPECT_DEATH(WeightedScheduler(WeightKernel::kRingDecay, 0),
               "kernel power");
  EXPECT_DEATH(WeightedScheduler(WeightKernel::kRingDecay, 4),
               "kernel power");
}

TEST(SchedulerValidationDeathTest, WeightedDensePathRejectsOversized) {
  // The blanket n <= 4096 cap is gone: only the dense Θ(n²) *reference*
  // path keeps a population guard.  The hierarchical default constructs at
  // the same size without complaint (its bound is the 63-bit kernel
  // total).
  SchedulerSpec spec;
  spec.kind = SchedulerKind::kWeighted;
  spec.dense_reference = true;
  EXPECT_DEATH(make_scheduler(spec, 4097), "dense pair universe");
  spec.dense_reference = false;
  EXPECT_NE(make_scheduler(spec, 4097), nullptr);
}

TEST(SchedulerValidationDeathTest, WeightedRejectsOverflowingKernelTotal) {
  // The hierarchical path's principled cap: the grand kernel total must
  // fit the sampler's 63-bit update range.  ring-decay at power 3 sums to
  // ~2.4 n^4, which overflows near n = 44000.
  EXPECT_DEATH(WeightedScheduler(WeightKernel::kRingDecay, /*power=*/3,
                                 /*n=*/200000),
               "63-bit");
}

TEST(SchedulerValidationDeathTest, DenseMarkovReferenceRejectsOversized) {
  SchedulerSpec spec;
  spec.kind = SchedulerKind::kDynamicGraph;
  spec.graph = GraphKind::kCycle;
  spec.dynamics = GraphDynamics::kEdgeMarkovian;
  spec.dense_reference = true;
  EXPECT_DEATH(DynamicGraphScheduler(spec, 4097), "dense pair universe");
  spec.dense_reference = false;
  EXPECT_NE(make_scheduler(spec, 4097), nullptr);
}

TEST(SchedulerValidationDeathTest, DynamicRejectsBadRates) {
  SchedulerSpec spec;
  spec.kind = SchedulerKind::kDynamicGraph;
  spec.edge_birth = 1.5;
  EXPECT_DEATH(DynamicGraphScheduler(spec, 16), "birth rate");
  spec.edge_birth = 0.01;
  spec.edge_death = -0.5;
  EXPECT_DEATH(DynamicGraphScheduler(spec, 16), "death rate");
}

TEST(SchedulerValidationDeathTest, DynamicRejectsFrozenMarkovChain) {
  SchedulerSpec spec;
  spec.kind = SchedulerKind::kDynamicGraph;
  spec.dynamics = GraphDynamics::kEdgeMarkovian;
  spec.edge_birth = 0;  // auto derives from death...
  spec.edge_death = 0;  // ...which is also 0: a frozen graph
  EXPECT_DEATH(DynamicGraphScheduler(spec, 16), "frozen");
}

TEST(SchedulerValidationDeathTest, ChurnAndPartitionRejectBadKnobs) {
  SchedulerSpec spec;
  spec.kind = SchedulerKind::kChurn;
  spec.churn_rate = 1.5;
  EXPECT_DEATH(make_scheduler(spec, 16), "churn rate");
  spec = SchedulerSpec{};
  spec.kind = SchedulerKind::kChurn;
  spec.churn_faults = 0;
  EXPECT_DEATH(make_scheduler(spec, 16), "at least 1 agent");
  spec = SchedulerSpec{};
  spec.kind = SchedulerKind::kPartition;
  spec.partition_blocks = 1;
  EXPECT_DEATH(make_scheduler(spec, 16), "at least 2 blocks");
}

}  // namespace
}  // namespace pp
