// Tests of the ring-of-traps protocol (§3): rule semantics, Facts 1/3
// monotonicity, Lemma 3's non-increasing weight, and stabilisation from
// k-distant and arbitrary starts.
#include "protocols/ring_of_traps.hpp"

#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "core/initial.hpp"
#include "structures/trap.hpp"

namespace pp {
namespace {

TEST(Ring, Dimensions) {
  RingOfTrapsProtocol p(12);  // m = 3
  EXPECT_EQ(p.num_agents(), 12u);
  EXPECT_EQ(p.num_extra_states(), 0u);
  EXPECT_EQ(p.layout().num_traps(), 3u);
}

TEST(Ring, ValidRankingIsSilent) {
  RingOfTrapsProtocol p(20);
  p.reset(initial::valid_ranking(p));
  EXPECT_TRUE(p.is_silent());
  EXPECT_TRUE(p.is_valid_ranking());
  EXPECT_EQ(p.lemma3_weight(), 0u);
}

TEST(Ring, InnerRuleDescends) {
  RingOfTrapsProtocol p(12);
  // Two agents on inner state (trap 0, b=2) = state 2; rest ranked, with
  // states 2's extra agent taken from state 1.
  Configuration c = initial::valid_ranking(p);
  c.counts[2] = 2;
  c.counts[1] = 0;
  p.reset(c);
  Rng rng(1);
  p.step_productive(rng);
  EXPECT_EQ(p.counts()[2], 1u);
  EXPECT_EQ(p.counts()[1], 1u) << "responder descended to b=1";
  EXPECT_TRUE(p.is_valid_ranking());
}

TEST(Ring, GateRuleSplitsToTopAndNextGate) {
  RingOfTrapsProtocol p(12);  // traps of size 4: gates 0, 4, 8
  Configuration c = initial::valid_ranking(p);
  c.counts[0] = 3;  // two extra agents at gate 0
  c.counts[3] = 0;
  c.counts[4] = 0;  // vacate top of trap 0? no: state 3 is top of trap 0
  p.reset(c);
  Rng rng(2);
  p.step_productive(rng);
  // Gate rule: two agents leave gate 0; one to top(0) = 3, one to gate(1)=4.
  EXPECT_EQ(p.counts()[0], 1u);
  EXPECT_EQ(p.counts()[3], 1u);
  EXPECT_EQ(p.counts()[4], 1u);
  EXPECT_TRUE(p.is_valid_ranking());
}

TEST(Ring, Fact1GapsNeverReopen) {
  // Once an inner state is occupied it stays occupied.
  RingOfTrapsProtocol p(20);
  Rng rng(3);
  p.reset(initial::uniform_random(p, rng));
  std::vector<bool> occupied(20, false);
  auto snapshot = [&] {
    for (StateId s = 0; s < 20; ++s) {
      const bool inner = p.layout().local_of(s) != 0;
      if (inner && p.counts()[s] > 0) occupied[s] = true;
    }
  };
  snapshot();
  RunOptions opt;
  opt.on_change = [&](const Protocol& prot, u64) {
    for (StateId s = 0; s < 20; ++s) {
      if (occupied[s] && p.layout().local_of(s) != 0) {
        EXPECT_GT(prot.counts()[s], 0u) << "gap reopened at " << s;
      }
    }
    snapshot();
    return true;
  };
  run_accelerated(p, rng, opt);
}

TEST(Ring, Fact3FullTrapsStayFull) {
  RingOfTrapsProtocol p(30);  // m = 5, traps of size 6
  Rng rng(4);
  p.reset(initial::uniform_random(p, rng));
  const auto& layout = p.layout();
  std::vector<bool> was_full(layout.num_traps(), false);
  RunOptions opt;
  opt.on_change = [&](const Protocol& prot, u64) {
    for (u64 a = 0; a < layout.num_traps(); ++a) {
      const bool full = trap::is_full(layout.trap_counts(prot.counts(), a));
      if (was_full[a]) {
        EXPECT_TRUE(full) << "trap " << a << " lost fullness";
      }
      was_full[a] = was_full[a] || full;
    }
    return true;
  };
  run_accelerated(p, rng, opt);
}

TEST(Ring, Lemma3WeightNeverIncreases) {
  for (const u64 seed : {1u, 2u, 3u, 4u}) {
    RingOfTrapsProtocol p(30);
    Rng rng(seed);
    p.reset(initial::uniform_random(p, rng));
    u64 last = p.lemma3_weight();
    RunOptions opt;
    opt.on_change = [&](const Protocol&, u64) {
      const u64 now = p.lemma3_weight();
      EXPECT_LE(now, last) << "Lemma 3 weight increased";
      last = now;
      return true;
    };
    run_accelerated(p, rng, opt);
    EXPECT_EQ(p.lemma3_weight(), 0u);
  }
}

TEST(Ring, StabilisesFromKDistant) {
  for (const u64 k : {0u, 1u, 2u, 5u}) {
    RingOfTrapsProtocol p(42);  // m = 6
    Rng rng(10 + k);
    p.reset(initial::k_distant(p, k, rng));
    const RunResult r = run_accelerated(p, rng);
    EXPECT_TRUE(r.silent);
    EXPECT_TRUE(r.valid);
    if (k == 0) {
      EXPECT_EQ(r.interactions, 0u);
    }
  }
}

TEST(Ring, StabilisesFromAdversarialStarts) {
  RingOfTrapsProtocol p(30);
  Rng rng(20);
  // All agents on one gate.
  p.reset(initial::all_in_state(p, p.layout().gate(2)));
  EXPECT_TRUE(run_accelerated(p, rng).valid);
  // All agents on one inner state.
  p.reset(initial::all_in_state(p, p.layout().top(0)));
  EXPECT_TRUE(run_accelerated(p, rng).valid);
}

TEST(Ring, StabilisesOnNonCanonicalSizes) {
  for (const u64 n : {7u, 13u, 29u, 50u}) {
    RingOfTrapsProtocol p(n);
    Rng rng(n);
    p.reset(initial::uniform_random(p, rng));
    const RunResult r = run_accelerated(p, rng);
    EXPECT_TRUE(r.valid) << "n=" << n;
  }
}

TEST(Ring, DescribeStateMentionsGates) {
  RingOfTrapsProtocol p(12);
  EXPECT_NE(p.describe_state(0).find("gate"), std::string::npos);
  EXPECT_EQ(p.describe_state(1).find("gate"), std::string::npos);
}

}  // namespace
}  // namespace pp
