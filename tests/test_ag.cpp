// Tests of the AG baseline protocol: rule semantics, silence <=> valid
// ranking, stabilisation from assorted starts, and the Θ(n^2) growth trend.
#include "protocols/ag.hpp"

#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "core/initial.hpp"

namespace pp {
namespace {

TEST(Ag, Dimensions) {
  AgProtocol p(10);
  EXPECT_EQ(p.num_agents(), 10u);
  EXPECT_EQ(p.num_ranks(), 10u);
  EXPECT_EQ(p.num_extra_states(), 0u);
  EXPECT_EQ(p.name(), "ag");
}

TEST(Ag, ValidRankingIsSilent) {
  AgProtocol p(8);
  p.reset(initial::valid_ranking(p));
  EXPECT_TRUE(p.is_silent());
  EXPECT_TRUE(p.is_valid_ranking());
  EXPECT_EQ(p.productive_weight(), 0u);
}

TEST(Ag, SameStateRuleMovesResponderForward) {
  AgProtocol p(5);
  Configuration c = initial::valid_ranking(p);
  c.counts[2] = 3;  // 3 agents at rank 2 (plus ranks 0,1,3,4 -> 7 agents)
  c.counts[3] = 0;
  c.counts[4] = 0;  // keep population n = 5: {1,1,3,0,0}
  p.reset(c);
  // Only state 2 has a productive pair: weight 3*2 = 6.
  EXPECT_EQ(p.productive_weight(), 6u);
  Rng rng(1);
  p.step_productive(rng);
  EXPECT_EQ(p.counts()[2], 2u);
  EXPECT_EQ(p.counts()[3], 1u);
}

TEST(Ag, WrapAroundAtRankNMinus1) {
  AgProtocol p(4);
  p.reset(Configuration(std::vector<u64>{0, 1, 1, 2}));
  Rng rng(2);
  p.step_productive(rng);
  EXPECT_EQ(p.counts()[3], 1u);
  EXPECT_EQ(p.counts()[0], 1u) << "responder wraps to rank 0";
  EXPECT_TRUE(p.is_silent());
  EXPECT_TRUE(p.is_valid_ranking());
}

TEST(Ag, StabilisesFromAllInOneState) {
  AgProtocol p(16);
  p.reset(initial::all_in_state(p, 5));
  Rng rng(3);
  const RunResult r = run_accelerated(p, rng);
  EXPECT_TRUE(r.silent);
  EXPECT_TRUE(r.valid);
  EXPECT_GT(r.interactions, 0u);
}

TEST(Ag, StabilisesFromUniformRandom) {
  for (const u64 seed : {1u, 2u, 3u}) {
    AgProtocol p(32);
    Rng rng(seed);
    p.reset(initial::uniform_random(p, rng));
    const RunResult r = run_accelerated(p, rng);
    EXPECT_TRUE(r.silent);
    EXPECT_TRUE(r.valid);
  }
}

TEST(Ag, InteractionsEqualNTimesParallelTime) {
  AgProtocol p(10);
  Rng rng(4);
  p.reset(initial::all_in_state(p, 0));
  const RunResult r = run_accelerated(p, rng);
  EXPECT_DOUBLE_EQ(r.parallel_time * 10.0,
                   static_cast<double>(r.interactions));
}

TEST(Ag, QuadraticTrend) {
  // Mean stabilisation time at 2n should be roughly 4x that at n — allow a
  // factor-2 band around the Θ(n^2) prediction.
  auto mean_time = [](u64 n) {
    double sum = 0;
    const int kTrials = 5;
    for (int t = 0; t < kTrials; ++t) {
      AgProtocol p(n);
      Rng rng(100 + static_cast<u64>(t));
      p.reset(initial::uniform_random(p, rng));
      sum += run_accelerated(p, rng).parallel_time;
    }
    return sum / kTrials;
  };
  const double t64 = mean_time(64);
  const double t128 = mean_time(128);
  EXPECT_GT(t128 / t64, 2.0);
  EXPECT_LT(t128 / t64, 8.0);
}

TEST(Ag, BudgetIsHonoured) {
  AgProtocol p(64);
  Rng rng(5);
  p.reset(initial::all_in_state(p, 0));
  RunOptions opt;
  opt.max_interactions = 100;
  const RunResult r = run_accelerated(p, rng, opt);
  EXPECT_LE(r.interactions, 100u);
  EXPECT_FALSE(r.silent);
}

}  // namespace
}  // namespace pp
