// Tests of the cubic routing graph G (§4.2, Figure 1): vertex count,
// cubicity, symmetry, connectivity, and the O(log m) diameter bound.
#include "structures/routing_graph.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

namespace pp {
namespace {

TEST(RoutingGraph, HasMSquaredVertices) {
  for (const u64 m : {2u, 4u, 6u, 8u, 10u}) {
    RoutingGraph g(m);
    EXPECT_EQ(g.num_vertices(), m * m);
  }
}

TEST(RoutingGraph, EveryVertexHasThreeNeighbourSlots) {
  RoutingGraph g(6);
  for (u32 v = 0; v < g.num_vertices(); ++v) {
    for (u32 i = 0; i < 3; ++i) {
      EXPECT_LT(g.neighbour(v, i), g.num_vertices());
      EXPECT_NE(g.neighbour(v, i), v) << "self-loop at " << v;
    }
  }
}

TEST(RoutingGraph, EdgeSlotsAreSymmetric) {
  // Counting multiplicity, (u,v) appears in u's slots exactly as often as
  // (v,u) appears in v's slots — the multigraph is undirected.
  for (const u64 m : {2u, 4u, 8u}) {
    RoutingGraph g(m);
    std::map<std::pair<u32, u32>, int> slots;
    for (u32 v = 0; v < g.num_vertices(); ++v) {
      for (const u32 w : g.neighbours(v)) ++slots[{v, w}];
    }
    for (const auto& [edge, cnt] : slots) {
      const auto reversed = std::make_pair(edge.second, edge.first);
      EXPECT_EQ(cnt, slots[reversed])
          << "m=" << m << " edge " << edge.first << "-" << edge.second;
    }
  }
}

TEST(RoutingGraph, Connected) {
  for (const u64 m : {2u, 4u, 6u, 10u, 16u}) {
    EXPECT_TRUE(RoutingGraph(m).connected()) << "m=" << m;
  }
}

TEST(RoutingGraph, DiameterIsLogarithmic) {
  // Paper: diameter 4 ceil(log m).  Allow a +2 slack for the merge/cycle
  // details of the concrete construction.
  for (const u64 m : {2u, 4u, 6u, 8u, 12u, 16u, 20u}) {
    RoutingGraph g(m);
    const double bound =
        4.0 * std::ceil(std::log2(static_cast<double>(m))) + 2.0;
    EXPECT_LE(g.diameter(), bound) << "m=" << m;
  }
}

TEST(RoutingGraph, Figure1SizeExample) {
  // Figure 1 uses m^2 = 16 vertices (m = 4).
  RoutingGraph g(4);
  EXPECT_EQ(g.num_vertices(), 16u);
  EXPECT_TRUE(g.connected());
  EXPECT_LE(g.diameter(), 4u * 2u);  // 4 ceil(log2 4) = 8
}

TEST(RoutingGraph, TotalEdgeSlotsEqual3V) {
  RoutingGraph g(8);
  u64 slots = 0;
  for (u32 v = 0; v < g.num_vertices(); ++v) slots += g.neighbours(v).size();
  EXPECT_EQ(slots, 3 * g.num_vertices());
}

TEST(RoutingGraph, ToStringListsEveryVertex) {
  RoutingGraph g(2);
  const std::string s = g.to_string();
  for (u32 v = 0; v < 4; ++v) {
    EXPECT_NE(s.find(std::to_string(v) + ":"), std::string::npos);
  }
}

}  // namespace
}  // namespace pp
