// Unit tests for the Fenwick tree with weighted sampling.
#include "ds/fenwick.hpp"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "rng/random.hpp"

namespace pp {
namespace {

TEST(Fenwick, EmptyTreeHasZeroTotal) {
  Fenwick f(10);
  EXPECT_EQ(f.total(), 0u);
  EXPECT_EQ(f.size(), 10u);
  for (u64 i = 0; i < 10; ++i) EXPECT_EQ(f.get(i), 0u);
}

TEST(Fenwick, AddAndGet) {
  Fenwick f(8);
  f.add(3, 5);
  f.add(7, 2);
  EXPECT_EQ(f.get(3), 5u);
  EXPECT_EQ(f.get(7), 2u);
  EXPECT_EQ(f.total(), 7u);
  f.add(3, -5);
  EXPECT_EQ(f.get(3), 0u);
  EXPECT_EQ(f.total(), 2u);
}

TEST(Fenwick, SetOverwrites) {
  Fenwick f(4);
  f.set(1, 10);
  f.set(1, 3);
  EXPECT_EQ(f.get(1), 3u);
  EXPECT_EQ(f.total(), 3u);
}

TEST(Fenwick, PrefixSums) {
  Fenwick f(6);
  const u64 w[6] = {1, 0, 4, 2, 0, 3};
  for (u64 i = 0; i < 6; ++i) f.set(i, w[i]);
  u64 expect = 0;
  for (u64 i = 0; i <= 6; ++i) {
    EXPECT_EQ(f.prefix(i), expect) << "prefix " << i;
    if (i < 6) expect += w[i];
  }
}

TEST(Fenwick, FindReturnsBucketOfTarget) {
  Fenwick f(5);
  // weights: 2, 0, 3, 1, 0 -> cumulative 2, 2, 5, 6, 6
  f.set(0, 2);
  f.set(2, 3);
  f.set(3, 1);
  EXPECT_EQ(f.find(0), 0u);
  EXPECT_EQ(f.find(1), 0u);
  EXPECT_EQ(f.find(2), 2u);
  EXPECT_EQ(f.find(3), 2u);
  EXPECT_EQ(f.find(4), 2u);
  EXPECT_EQ(f.find(5), 3u);
}

TEST(Fenwick, FindNeverReturnsZeroWeightIndex) {
  Fenwick f(16);
  for (u64 i = 0; i < 16; i += 2) f.set(i, i + 1);  // odd indices stay 0
  for (u64 t = 0; t < f.total(); ++t) {
    const u64 idx = f.find(t);
    EXPECT_GT(f.get(idx), 0u) << "target " << t;
  }
}

TEST(Fenwick, SizeOneTree) {
  Fenwick f(1);
  f.set(0, 4);
  EXPECT_EQ(f.find(0), 0u);
  EXPECT_EQ(f.find(3), 0u);
  EXPECT_EQ(f.prefix(1), 4u);
}

TEST(Fenwick, NonPowerOfTwoSizes) {
  for (const u64 size : {3u, 5u, 7u, 9u, 100u, 1000u}) {
    Fenwick f(size);
    for (u64 i = 0; i < size; ++i) f.set(i, i % 3);
    u64 total = 0;
    for (u64 i = 0; i < size; ++i) total += i % 3;
    EXPECT_EQ(f.total(), total) << "size " << size;
    if (total > 0) {
      EXPECT_GT(f.get(f.find(total - 1)), 0u);
      EXPECT_EQ(f.find(0), 1u) << "first positive weight is at index 1";
    }
  }
}

TEST(Fenwick, ResetClears) {
  Fenwick f(4);
  f.set(2, 9);
  f.reset(6);
  EXPECT_EQ(f.size(), 6u);
  EXPECT_EQ(f.total(), 0u);
}

TEST(Fenwick, RandomizedAgainstNaive) {
  Rng rng(123);
  Fenwick f(37);
  std::vector<u64> naive(37, 0);
  for (int step = 0; step < 2000; ++step) {
    const u64 i = rng.below(37);
    const u64 w = rng.below(20);
    f.set(i, w);
    naive[i] = w;
    // Spot-check prefix at a random index.
    const u64 q = rng.below(38);
    u64 expect = 0;
    for (u64 j = 0; j < q; ++j) expect += naive[j];
    ASSERT_EQ(f.prefix(q), expect);
  }
  // Exhaustive find() check against cumulative sums.
  u64 cum = 0;
  for (u64 i = 0; i < 37; ++i) {
    for (u64 t = cum; t < cum + naive[i]; ++t) ASSERT_EQ(f.find(t), i);
    cum += naive[i];
  }
}

TEST(Fenwick, AssignMatchesPointwiseConstruction) {
  // The O(n) bulk builder must be indistinguishable from reset() + set()s
  // across sizes that exercise every tree shape (powers of two, one off,
  // tiny, empty-suffix).
  Rng rng(88);
  for (const u64 size : {1ull, 2ull, 7ull, 8ull, 9ull, 64ull, 100ull}) {
    std::vector<u64> weights(size);
    for (u64 i = 0; i < size; ++i) weights[i] = rng.below(50);
    Fenwick bulk;
    bulk.assign(weights);
    Fenwick pointwise(size);
    for (u64 i = 0; i < size; ++i) pointwise.set(i, weights[i]);
    ASSERT_EQ(bulk.size(), pointwise.size());
    EXPECT_EQ(bulk.total(), pointwise.total());
    for (u64 i = 0; i <= size; ++i) {
      EXPECT_EQ(bulk.prefix(i), pointwise.prefix(i)) << size << ":" << i;
    }
    for (u64 t = 0; t < bulk.total(); ++t) {
      ASSERT_EQ(bulk.find(t), pointwise.find(t)) << size << ":" << t;
    }
    // And it stays a live tree: point updates after a bulk build work.
    if (size >= 2) {
      bulk.add(1, 5);
      pointwise.add(1, 5);
      EXPECT_EQ(bulk.prefix(size), pointwise.prefix(size));
      EXPECT_EQ(bulk.find(bulk.total() - 1), pointwise.find(bulk.total() - 1));
    }
  }
}

TEST(Fenwick, SamplingIsProportional) {
  Rng rng(77);
  Fenwick f(4);
  f.set(0, 10);
  f.set(1, 30);
  f.set(2, 0);
  f.set(3, 60);
  std::map<u64, u64> hits;
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++hits[f.find(rng.below(f.total()))];
  EXPECT_EQ(hits[2], 0u);
  EXPECT_NEAR(static_cast<double>(hits[0]) / kDraws, 0.10, 0.01);
  EXPECT_NEAR(static_cast<double>(hits[1]) / kDraws, 0.30, 0.015);
  EXPECT_NEAR(static_cast<double>(hits[3]) / kDraws, 0.60, 0.015);
}

}  // namespace
}  // namespace pp
