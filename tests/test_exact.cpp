// Exact Markov-chain analysis vs. hand computation and vs. the Monte-Carlo
// engines — ground-truth validation of the whole simulation stack at small
// population sizes.
#include "analysis/exact.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/agent_simulator.hpp"
#include "core/engine.hpp"
#include "core/initial.hpp"
#include "protocols/factory.hpp"
#include "protocols/line_of_traps.hpp"
#include "protocols/tree_ranking.hpp"
#include "rng/seed_sequence.hpp"

namespace pp {
namespace {

TEST(Exact, AgTwoAgentsHandComputed) {
  // n = 2, both agents in state 0.  The only ordered pairs are (a,b) and
  // (b,a), both productive: W = 2 = D, so exactly one interaction fires
  // the rule, reaching {1,1} which is silent.  E[interactions] = 1,
  // parallel time = 1/2.
  ProtocolPtr p = make_protocol("ag", 2);
  const ExactAnalysis a = analyze_exact(*p, initial::all_in_state(*p, 0));
  EXPECT_NEAR(a.expected_parallel_time, 0.5, 1e-9);
  EXPECT_EQ(a.reachable_configurations, 2u);
  EXPECT_EQ(a.silent_configurations, 1u);
  EXPECT_TRUE(a.all_silent_are_rankings);
}

TEST(Exact, AgThreeAgentsHandComputed) {
  // n = 3, all in state 0: {3,0,0}.  D = 6.
  // {3,0,0}: W = 6, all transitions -> {2,1,0}. E = 1 + E210.
  // {2,1,0}: W = 2 -> {1,1,1}? rule at state 0: {2,1,0} -> {1,2,0}:
  //   wait: two agents in 0 interact: one stays 0... outputs (0,1):
  //   counts {1,2,0}. W of {2,1,0} also includes pair in state... only
  //   state 0 has 2 agents: W = 2, successor {1,2,0}.
  // {1,2,0}: state 1 doubled: W = 2 -> {1,1,1} silent.
  // E{1,2,0} = 6/2 = 3.  E{2,1,0} = 3 + 3 = 6.  E{3,0,0} = 6/6 + ... = 1 + 6 = 7.
  // Parallel time = 7/3.
  ProtocolPtr p = make_protocol("ag", 3);
  const ExactAnalysis a = analyze_exact(*p, initial::all_in_state(*p, 0));
  EXPECT_NEAR(a.expected_parallel_time, 7.0 / 3.0, 1e-9);
  EXPECT_TRUE(a.all_silent_are_rankings);
}

TEST(Exact, SilentStartHasZeroTime) {
  ProtocolPtr p = make_protocol("ring-of-traps", 6);
  const ExactAnalysis a = analyze_exact(*p, initial::valid_ranking(*p));
  EXPECT_DOUBLE_EQ(a.expected_parallel_time, 0.0);
  EXPECT_EQ(a.reachable_configurations, 1u);
}

class ExactVsMonteCarlo : public ::testing::TestWithParam<std::string> {};

TEST_P(ExactVsMonteCarlo, SimulatedMeanMatchesExactExpectation) {
  const std::string name = GetParam();
  const u64 n = std::max<u64>(min_population(name), 5);
  if (name == "line-of-traps") GTEST_SKIP() << "min n = 72: chain too large";
  ProtocolPtr p = make_protocol(name, n);
  const Configuration start = initial::all_in_state(*p, 0);

  const ExactAnalysis exact = analyze_exact(*p, start);
  ASSERT_GT(exact.expected_parallel_time, 0.0);
  EXPECT_EQ(exact.silent_configurations, 1u)
      << "the unique silent configuration is the ranking";
  EXPECT_TRUE(exact.all_silent_are_rankings);

  // Accelerated engine.
  const int kTrials = 4000;
  double acc_sum = 0;
  for (int t = 0; t < kTrials; ++t) {
    Rng rng(derive_seed(31, name, static_cast<u64>(t)));
    p->reset(start);
    acc_sum += run_accelerated(*p, rng).parallel_time;
  }
  const double acc_mean = acc_sum / kTrials;
  EXPECT_NEAR(acc_mean / exact.expected_parallel_time, 1.0, 0.06)
      << name << ": exact=" << exact.expected_parallel_time
      << " accelerated=" << acc_mean;

  // Agent-level reference simulator (fewer trials; it is slow).
  double ref_sum = 0;
  const int kRefTrials = 800;
  for (int t = 0; t < kRefTrials; ++t) {
    Rng rng(derive_seed(32, name, static_cast<u64>(t)));
    AgentSimulator sim(*p, start);
    ref_sum += sim.run(rng).parallel_time;
  }
  const double ref_mean = ref_sum / kRefTrials;
  EXPECT_NEAR(ref_mean / exact.expected_parallel_time, 1.0, 0.12)
      << name << ": exact=" << exact.expected_parallel_time
      << " reference=" << ref_mean;
}

std::string label(const ::testing::TestParamInfo<std::string>& info) {
  std::string s = info.param;
  for (char& c : s) {
    if (c == '-') c = '_';
  }
  return s;
}

INSTANTIATE_TEST_SUITE_P(SmallPopulations, ExactVsMonteCarlo,
                         ::testing::Values(std::string("ag"),
                                           std::string("ring-of-traps"),
                                           std::string("line-of-traps"),
                                           std::string("tree-ranking")),
                         label);

TEST(Exact, UniqueSilentConfigurationAcrossStarts) {
  // From several starts of a 6-agent ring protocol, the only reachable
  // silent configuration is the valid ranking (stability, exhaustively).
  ProtocolPtr p = make_protocol("ring-of-traps", 6);
  Rng rng(33);
  for (int trial = 0; trial < 5; ++trial) {
    const ExactAnalysis a =
        analyze_exact(*p, initial::uniform_random(*p, rng));
    EXPECT_EQ(a.silent_configurations, 1u);
    EXPECT_TRUE(a.all_silent_are_rankings);
  }
}

TEST(Exact, ModifiedProtocolProvablyCannotStabilise) {
  // Exhaustive proof at n = 3: from {0,2,1} the modified (no-reset) tree
  // protocol reaches NO silent configuration at all — the reset mechanism
  // is necessary, not just convenient.  Regression: the analysis used to
  // assume absorption and spin the expectation recursion into the
  // iteration-budget assert here; it must now report the divergence with
  // *default* options instead of needing an epsilon workaround.
  TreeRankingProtocol p(3, 2, TreeRankingProtocol::ResetMode::kModified);
  Configuration c;
  c.counts.assign(p.num_states(), 0);
  c.counts[1] = 2;
  c.counts[2] = 1;
  const ExactAnalysis a = analyze_exact(p, c);
  EXPECT_EQ(a.silent_configurations, 0u)
      << "no silent configuration reachable without the reset";
  EXPECT_GT(a.reachable_configurations, 1u);
  EXPECT_DOUBLE_EQ(a.absorption_probability, 0.0);
  EXPECT_DOUBLE_EQ(a.stranded_probability, 0.0);
  EXPECT_TRUE(a.diverges);
  EXPECT_TRUE(std::isinf(a.expected_parallel_time));

  // The standard protocol from the same start has exactly one silent
  // configuration: the ranking.
  TreeRankingProtocol std_p(3, 2);
  const ExactAnalysis std_a = analyze_exact(std_p, c);
  EXPECT_EQ(std_a.silent_configurations, 1u);
  EXPECT_TRUE(std_a.all_silent_are_rankings);
  EXPECT_FALSE(std_a.diverges);
  EXPECT_NEAR(std_a.absorption_probability, 1.0, 1e-7);
  EXPECT_GT(std_a.expected_parallel_time, 0.0);
}

TEST(Exact, StrandedStartReportsStrandedMass) {
  // The single-line model's X state is inert: all six agents piled into X
  // is an absorbing configuration with W = 0 that ranks nobody.  The
  // analysis must report it as stranded mass, not as stabilisation.
  SingleLineProtocol p(6, 2, 2);
  Configuration c;
  c.counts.assign(p.num_states(), 0);
  c.counts[p.x_state()] = 6;
  const ExactAnalysis a = analyze_exact(p, c);
  EXPECT_EQ(a.reachable_configurations, 1u);
  EXPECT_EQ(a.silent_configurations, 1u);
  EXPECT_EQ(a.stranded_configurations, 1u);
  EXPECT_FALSE(a.all_silent_are_rankings);
  EXPECT_DOUBLE_EQ(a.absorption_probability, 1.0);
  EXPECT_DOUBLE_EQ(a.stranded_probability, 1.0);
  EXPECT_FALSE(a.diverges);
  EXPECT_DOUBLE_EQ(a.expected_parallel_time, 0.0);
}

TEST(Exact, MultiStepStrandedStartPropagatesTheMass) {
  // All six agents piled on the *entrance* gate: the chain wanders through
  // 14 configurations before stranding (Lemma 5 makes the outcome
  // schedule-independent, so the whole mass strands), which exercises the
  // hitting-probability propagation through genuinely transient states —
  // and the expectation stays finite because absorption is still almost
  // sure.  Monte-Carlo must agree on both the verdict and the time.
  SingleLineProtocol p(6, 2, 2);
  Configuration c;
  c.counts.assign(p.num_states(), 0);
  c.counts[p.gate(1)] = 6;
  const ExactAnalysis a = analyze_exact(p, c);
  EXPECT_GT(a.reachable_configurations, 10u);
  EXPECT_EQ(a.stranded_configurations, 1u);
  EXPECT_FALSE(a.all_silent_are_rankings);
  EXPECT_NEAR(a.absorption_probability, 1.0, 1e-7);
  EXPECT_NEAR(a.stranded_probability, 1.0, 1e-7);
  EXPECT_FALSE(a.diverges);
  ASSERT_GT(a.expected_parallel_time, 0.0);

  double sum = 0;
  const int kTrials = 4000;
  for (int t = 0; t < kTrials; ++t) {
    Rng rng(derive_seed(35, "single-line-stranded", static_cast<u64>(t)));
    p.reset(c);
    const RunResult r = run_accelerated(p, rng);
    EXPECT_TRUE(r.silent);
    EXPECT_FALSE(r.valid) << "this start must strand, not rank";
    sum += r.parallel_time;
  }
  EXPECT_NEAR((sum / kTrials) / a.expected_parallel_time, 1.0, 0.06);
}

TEST(Exact, SingleLineMatchesMonteCarlo) {
  // Validates the §4.1 single-line model against the exact chain: 6 agents
  // on a 2-trap line with an absorbing X.
  SingleLineProtocol p(6, 2, 2);
  Configuration c;
  c.counts.assign(p.num_states(), 0);
  c.counts[p.gate(1)] = 4;  // 4 agents at the entrance gate
  c.counts[p.top(0)] = 2;   // 2 at the exit trap's top inner state
  const ExactAnalysis exact = analyze_exact(p, c);
  ASSERT_GT(exact.expected_parallel_time, 0.0);
  EXPECT_GE(exact.silent_configurations, 1u);

  double sum = 0;
  const int kTrials = 4000;
  for (int t = 0; t < kTrials; ++t) {
    Rng rng(derive_seed(34, "single-line-exact", static_cast<u64>(t)));
    p.reset(c);
    sum += run_accelerated(p, rng).parallel_time;
  }
  EXPECT_NEAR((sum / kTrials) / exact.expected_parallel_time, 1.0, 0.06);
}

TEST(Exact, TreeProtocolChainIncludesBufferStates) {
  // n = 5 tree with k = 1: starting everyone on a leaf forces resets
  // through the buffer line; the chain must still absorb uniquely.
  ProtocolPtr p = std::make_unique<TreeRankingProtocol>(5, 1);
  const ExactAnalysis a = analyze_exact(
      *p, initial::all_in_state(*p, p->num_ranks() - 1));
  EXPECT_GT(a.expected_parallel_time, 0.0);
  EXPECT_TRUE(a.all_silent_are_rankings);
}

}  // namespace
}  // namespace pp
