// The Fenwick-backed pair-sampler layer (schedulers/pair_sampler.hpp).
//
// The load-bearing guarantees:
//   * weight / productivity bookkeeping: the productive tree always equals
//     the base tree masked to the flagged pairs, through any interleaving
//     of set_weight and set_productive (including flags set while the
//     weight is 0 — the dynamic-graph schedulers lean on that);
//   * sampling is weight-proportional (chi-squared-style frequency check)
//     and productive sampling never returns an unproductive pair;
//   * DirectedEdgeSampler mirrors the protocol: its productive total
//     counts exactly the directed edges whose endpoints δ would change,
//     and fire() keeps that in sync with apply_pair.
#include "schedulers/pair_sampler.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/initial.hpp"
#include "protocols/ag.hpp"
#include "structures/interaction_graph.hpp"

namespace pp {
namespace {

TEST(PairSampler, WeightAndProductivityBookkeeping) {
  PairSampler s(8);
  EXPECT_EQ(s.universe(), 8u);
  EXPECT_EQ(s.weight_total(), 0u);
  EXPECT_EQ(s.productive_total(), 0u);
  EXPECT_EQ(s.productive_probability(), 0.0);

  s.set_weight(0, 3);
  s.set_weight(1, 5);
  EXPECT_EQ(s.weight_total(), 8u);
  EXPECT_EQ(s.productive_total(), 0u);  // nothing flagged yet

  s.set_productive(1, true);
  EXPECT_EQ(s.productive_total(), 5u);
  EXPECT_DOUBLE_EQ(s.productive_probability(), 5.0 / 8.0);

  // Weight changes follow the flag.
  s.set_weight(1, 2);
  EXPECT_EQ(s.weight_total(), 5u);
  EXPECT_EQ(s.productive_total(), 2u);

  // Flags survive a weight of 0: an edge death followed by a rebirth
  // restores the right productive mass without re-testing δ.
  s.set_weight(1, 0);
  EXPECT_EQ(s.productive_total(), 0u);
  EXPECT_TRUE(s.productive(1));
  s.set_weight(1, 7);
  EXPECT_EQ(s.productive_total(), 7u);

  // Flagging a zero-weight pair contributes nothing until weight arrives.
  s.set_productive(4, true);
  EXPECT_EQ(s.productive_total(), 7u);
  s.set_weight(4, 1);
  EXPECT_EQ(s.productive_total(), 8u);

  s.set_productive(1, false);
  EXPECT_EQ(s.productive_total(), 1u);
  EXPECT_EQ(s.weight_total(), 11u);
}

TEST(PairSampler, SamplingIsWeightProportional) {
  PairSampler s(4);
  const u64 weights[4] = {1, 0, 3, 6};
  for (u64 i = 0; i < 4; ++i) s.set_weight(i, weights[i]);
  s.set_productive(0, true);
  s.set_productive(3, true);

  Rng rng(123);
  const int kDraws = 20000;
  int count[4] = {0, 0, 0, 0};
  int prod_count[4] = {0, 0, 0, 0};
  for (int i = 0; i < kDraws; ++i) {
    ++count[s.sample(rng)];
    ++prod_count[s.sample_productive(rng)];
  }
  EXPECT_EQ(count[1], 0);  // zero weight is never proposed
  for (const u64 i : {0u, 2u, 3u}) {
    const double expected =
        kDraws * static_cast<double>(weights[i]) / 10.0;
    EXPECT_NEAR(count[i], expected, 5 * std::sqrt(expected)) << i;
  }
  // Productive draws only hit the flagged ids, at ratio 1 : 6.
  EXPECT_EQ(prod_count[1] + prod_count[2], 0);
  EXPECT_NEAR(static_cast<double>(prod_count[0]) / kDraws, 1.0 / 7.0, 0.02);
  EXPECT_NEAR(static_cast<double>(prod_count[3]) / kDraws, 6.0 / 7.0, 0.02);
}

TEST(DirectedEdgeSampler, TracksProtocolProductivityOnCompleteGraph) {
  // On the complete graph every productive ordered *agent* pair is a
  // productive directed edge, so the sampler's productive total must
  // equal the protocol's productive weight — and stay equal through a
  // whole run of fire() steps.
  const u64 n = 12;
  AgProtocol p(n);
  Rng rng(7);
  p.reset(initial::uniform_random(p, rng));
  const InteractionGraph g = InteractionGraph::complete(n);
  DirectedEdgeSampler es(g, p, p.configuration().to_agent_states());

  while (es.pairs().productive_total() != 0) {
    EXPECT_EQ(es.pairs().productive_total(), p.productive_weight());
    EXPECT_EQ(es.pairs().weight_total(), n * (n - 1));
    es.fire(p, es.pairs().sample_productive(rng));
  }
  EXPECT_TRUE(p.is_silent());
  EXPECT_TRUE(p.is_valid_ranking());
}

TEST(DirectedEdgeSampler, SparseGraphIntersectsProductiveWeight) {
  // On a sparse graph the productive-edge weight is the protocol's
  // productive weight *intersected* with the edge set: recount it from
  // scratch against δ after every step.
  const u64 n = 10;
  AgProtocol p(n);
  Rng rng(11);
  p.reset(initial::uniform_random(p, rng));
  const InteractionGraph g = InteractionGraph::cycle(n);
  DirectedEdgeSampler es(g, p, p.configuration().to_agent_states());

  for (int step = 0; step < 100 && es.pairs().productive_total() != 0;
       ++step) {
    u64 recount = 0;
    for (u64 d = 0; d < 2 * g.num_edges(); ++d) {
      recount += es.is_productive(d) ? 1 : 0;
      EXPECT_EQ(es.pairs().productive(d), es.is_productive(d)) << d;
    }
    EXPECT_EQ(es.pairs().productive_total(), recount);
    EXPECT_LE(recount, p.productive_weight());
    es.fire(p, es.pairs().sample_productive(rng));
  }
}

}  // namespace
}  // namespace pp
