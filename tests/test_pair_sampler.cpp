// The Fenwick-backed pair-sampler layer (schedulers/pair_sampler.hpp).
//
// The load-bearing guarantees:
//   * weight / productivity bookkeeping: the productive tree always equals
//     the base tree masked to the flagged pairs, through any interleaving
//     of set_weight and set_productive (including flags set while the
//     weight is 0 — the dynamic-graph schedulers lean on that);
//   * sampling is weight-proportional (chi-squared-style frequency check)
//     and productive sampling never returns an unproductive pair;
//   * DirectedEdgeSampler mirrors the protocol: its productive total
//     counts exactly the directed edges whose endpoints δ would change,
//     and fire() keeps that in sync with apply_pair.
#include "schedulers/pair_sampler.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/initial.hpp"
#include "protocols/ag.hpp"
#include "structures/interaction_graph.hpp"

namespace pp {
namespace {

TEST(PairSampler, WeightAndProductivityBookkeeping) {
  PairSampler s(8);
  EXPECT_EQ(s.universe(), 8u);
  EXPECT_EQ(s.weight_total(), 0u);
  EXPECT_EQ(s.productive_total(), 0u);
  EXPECT_EQ(s.productive_probability(), 0.0);

  s.set_weight(0, 3);
  s.set_weight(1, 5);
  EXPECT_EQ(s.weight_total(), 8u);
  EXPECT_EQ(s.productive_total(), 0u);  // nothing flagged yet

  s.set_productive(1, true);
  EXPECT_EQ(s.productive_total(), 5u);
  EXPECT_DOUBLE_EQ(s.productive_probability(), 5.0 / 8.0);

  // Weight changes follow the flag.
  s.set_weight(1, 2);
  EXPECT_EQ(s.weight_total(), 5u);
  EXPECT_EQ(s.productive_total(), 2u);

  // Flags survive a weight of 0: an edge death followed by a rebirth
  // restores the right productive mass without re-testing δ.
  s.set_weight(1, 0);
  EXPECT_EQ(s.productive_total(), 0u);
  EXPECT_TRUE(s.productive(1));
  s.set_weight(1, 7);
  EXPECT_EQ(s.productive_total(), 7u);

  // Flagging a zero-weight pair contributes nothing until weight arrives.
  s.set_productive(4, true);
  EXPECT_EQ(s.productive_total(), 7u);
  s.set_weight(4, 1);
  EXPECT_EQ(s.productive_total(), 8u);

  s.set_productive(1, false);
  EXPECT_EQ(s.productive_total(), 1u);
  EXPECT_EQ(s.weight_total(), 11u);
}

TEST(PairSampler, SamplingIsWeightProportional) {
  PairSampler s(4);
  const u64 weights[4] = {1, 0, 3, 6};
  for (u64 i = 0; i < 4; ++i) s.set_weight(i, weights[i]);
  s.set_productive(0, true);
  s.set_productive(3, true);

  Rng rng(123);
  const int kDraws = 20000;
  int count[4] = {0, 0, 0, 0};
  int prod_count[4] = {0, 0, 0, 0};
  for (int i = 0; i < kDraws; ++i) {
    ++count[s.sample(rng)];
    ++prod_count[s.sample_productive(rng)];
  }
  EXPECT_EQ(count[1], 0);  // zero weight is never proposed
  for (const u64 i : {0u, 2u, 3u}) {
    const double expected =
        kDraws * static_cast<double>(weights[i]) / 10.0;
    EXPECT_NEAR(count[i], expected, 5 * std::sqrt(expected)) << i;
  }
  // Productive draws only hit the flagged ids, at ratio 1 : 6.
  EXPECT_EQ(prod_count[1] + prod_count[2], 0);
  EXPECT_NEAR(static_cast<double>(prod_count[0]) / kDraws, 1.0 / 7.0, 0.02);
  EXPECT_NEAR(static_cast<double>(prod_count[3]) / kDraws, 6.0 / 7.0, 0.02);
}

TEST(DirectedEdgeSampler, TracksProtocolProductivityOnCompleteGraph) {
  // On the complete graph every productive ordered *agent* pair is a
  // productive directed edge, so the sampler's productive total must
  // equal the protocol's productive weight — and stay equal through a
  // whole run of fire() steps.
  const u64 n = 12;
  AgProtocol p(n);
  Rng rng(7);
  p.reset(initial::uniform_random(p, rng));
  const InteractionGraph g = InteractionGraph::complete(n);
  DirectedEdgeSampler es(g, p, p.configuration().to_agent_states());

  while (es.pairs().productive_total() != 0) {
    EXPECT_EQ(es.pairs().productive_total(), p.productive_weight());
    EXPECT_EQ(es.pairs().weight_total(), n * (n - 1));
    es.fire(p, es.pairs().sample_productive(rng));
  }
  EXPECT_TRUE(p.is_silent());
  EXPECT_TRUE(p.is_valid_ranking());
}

TEST(DirectedEdgeSampler, SparseGraphIntersectsProductiveWeight) {
  // On a sparse graph the productive-edge weight is the protocol's
  // productive weight *intersected* with the edge set: recount it from
  // scratch against δ after every step.
  const u64 n = 10;
  AgProtocol p(n);
  Rng rng(11);
  p.reset(initial::uniform_random(p, rng));
  const InteractionGraph g = InteractionGraph::cycle(n);
  DirectedEdgeSampler es(g, p, p.configuration().to_agent_states());

  for (int step = 0; step < 100 && es.pairs().productive_total() != 0;
       ++step) {
    u64 recount = 0;
    for (u64 d = 0; d < 2 * g.num_edges(); ++d) {
      recount += es.is_productive(d) ? 1 : 0;
      EXPECT_EQ(es.pairs().productive(d), es.is_productive(d)) << d;
    }
    EXPECT_EQ(es.pairs().productive_total(), recount);
    EXPECT_LE(recount, p.productive_weight());
    es.fire(p, es.pairs().sample_productive(rng));
  }
}

// ---- DistanceKernel edge geometry -----------------------------------------

TEST(DistanceKernel, TinyPopulationsAndSeams) {
  // n = 2 ring: one distance, one partner each way.
  DistanceKernel two(DistanceKernel::Geometry::kRing, 2, {5});
  EXPECT_EQ(two.weight(0, 1), 5u);
  EXPECT_EQ(two.row_total(0), 5u);
  EXPECT_EQ(two.total(), 10u);

  // Even ring: the antipodal partner is counted exactly once per row.
  DistanceKernel ring(DistanceKernel::Geometry::kRing, 6, {9, 3, 1});
  EXPECT_EQ(ring.weight(0, 3), 1u);   // antipodal, d = 3
  EXPECT_EQ(ring.weight(0, 5), 9u);   // d = 1 across the seam
  EXPECT_EQ(ring.row_total(0), 9 + 9 + 3 + 3 + 1u);
  EXPECT_EQ(ring.total(), 6 * 25u);

  // Line: boundary rows see one arm only.
  DistanceKernel line(DistanceKernel::Geometry::kLine, 4, {7, 2, 1});
  EXPECT_EQ(line.row_total(0), 7 + 2 + 1u);
  EXPECT_EQ(line.row_total(1), 7 + 7 + 2u);
  EXPECT_EQ(line.total(), 10 + 16 + 16 + 10u);
}

TEST(DistanceKernel, PartnerSamplingStaysInRangeAndProportional) {
  DistanceKernel ring(DistanceKernel::Geometry::kRing, 5, {4, 1});
  Rng rng(99);
  std::vector<u64> hits(5, 0);
  const u64 kSamples = 20000;
  for (u64 t = 0; t < kSamples; ++t) {
    const u64 j = ring.sample_partner(rng, 2);
    ASSERT_NE(j, 2u);
    ASSERT_LT(j, 5u);
    ++hits[j];
  }
  // Row 2's partners: d=1 -> {1, 3} at weight 4, d=2 -> {0, 4} at 1.
  const double unit = static_cast<double>(kSamples) / 10.0;
  EXPECT_NEAR(static_cast<double>(hits[1]), 4 * unit, 5 * std::sqrt(4 * unit));
  EXPECT_NEAR(static_cast<double>(hits[3]), 4 * unit, 5 * std::sqrt(4 * unit));
  EXPECT_NEAR(static_cast<double>(hits[0]), unit, 5 * std::sqrt(unit));
  EXPECT_NEAR(static_cast<double>(hits[4]), unit, 5 * std::sqrt(unit));
}

// Boundary pin at n = 10^5 for the kernel's index arithmetic (the
// hardened -Wconversion/-Wsign-conversion sweep owns this code; a signed
// intermediate or narrowed distance would first go wrong at scale, on the
// seam and antipodal rows, not at the n <= 6 sizes above).
TEST(DistanceKernel, IndexArithmeticAtHundredThousand) {
  const u64 n = 100000;
  const u64 half = n / 2;
  std::vector<u64> decay(half);
  for (u64 d = 1; d <= half; ++d) decay[d - 1] = (d % 7) + 1;
  DistanceKernel ring(DistanceKernel::Geometry::kRing, n, decay);

  // Seam and antipode: weight(i, j) must reduce the ring distance the
  // same way on both sides of the wrap.
  EXPECT_EQ(ring.weight(0, n - 1), decay[0]);       // d = 1 across the seam
  EXPECT_EQ(ring.weight(0, half), decay[half - 1]); // antipodal
  EXPECT_EQ(ring.weight(n - 1, 0), decay[0]);
  EXPECT_EQ(ring.weight(half - 1, n - 1), decay[half - 1]);

  // Row marginal: every d < n/2 contributes two partners, the antipode
  // one; identical for an interior row and the wrap-around rows.
  u64 expect_row = decay[half - 1];
  for (u64 d = 1; d < half; ++d) expect_row += 2 * decay[d - 1];
  EXPECT_EQ(ring.row_total(0), expect_row);
  EXPECT_EQ(ring.row_total(n - 1), expect_row);
  EXPECT_EQ(ring.row_total(half), expect_row);
  EXPECT_EQ(ring.total(), n * expect_row);

  // Sampled partners from the extreme rows stay in [0, n) and never
  // return the row itself.
  Rng rng(7);
  for (const u64 i : {u64{0}, n - 1, half}) {
    for (int t = 0; t < 200; ++t) {
      const u64 j = ring.sample_partner(rng, i);
      ASSERT_LT(j, n);
      ASSERT_NE(j, i);
    }
  }

  // Line geometry at the same scale: the first/last rows see one arm.
  DistanceKernel line(DistanceKernel::Geometry::kLine, n,
                      std::vector<u64>(n - 1, 1));
  EXPECT_EQ(line.row_total(0), n - 1);
  EXPECT_EQ(line.row_total(n - 1), n - 1);
  EXPECT_EQ(line.weight(0, n - 1), 1u);
}

TEST(DistanceKernelDeathTest, RejectsMalformedProfiles) {
  EXPECT_DEATH(DistanceKernel(DistanceKernel::Geometry::kRing, 8, {1, 2}),
               "profile length");
  EXPECT_DEATH(DistanceKernel(DistanceKernel::Geometry::kLine, 4, {1, 0, 1}),
               "positive");
  // 63-bit overflow: four weights near u64 max.
  EXPECT_DEATH(DistanceKernel(DistanceKernel::Geometry::kLine, 5,
                              std::vector<u64>(4, ~u64{0} / 2)),
               "63-bit");
}

// ---- DirectedPairRoster ---------------------------------------------------

TEST(DirectedPairRoster, AddRemoveCompactionAndGrowth) {
  DirectedPairRoster roster(/*initial_capacity=*/4);
  EXPECT_EQ(roster.size(), 0u);
  EXPECT_EQ(roster.weight_total(), 0u);

  // Fill past the initial capacity to force a growth rebuild.
  for (u64 e = 0; e < 10; ++e) {
    EXPECT_EQ(roster.add(/*fwd=*/e % 2 == 0, /*rev=*/false), e);
  }
  EXPECT_EQ(roster.size(), 10u);
  EXPECT_GE(roster.capacity(), 10u);
  EXPECT_EQ(roster.weight_total(), 20u);   // two unit slots per entry
  EXPECT_EQ(roster.productive_total(), 5u);  // even entries, forward only

  // Remove a middle entry: the back entry's flags must travel into the
  // hole, and the totals must drop by exactly one entry's contribution.
  // Entry 9 (odd: unproductive) swap-fills slot 2 (even: productive).
  EXPECT_EQ(roster.remove(2), 9u);
  EXPECT_EQ(roster.size(), 9u);
  EXPECT_EQ(roster.weight_total(), 18u);
  EXPECT_EQ(roster.productive_total(), 4u);

  // Removing the back entry moves nothing (entry 8 was productive, so the
  // productive total drops with it).
  EXPECT_EQ(roster.remove(8), DirectedPairRoster::kNoEntry);
  EXPECT_EQ(roster.size(), 8u);
  EXPECT_EQ(roster.productive_total(), 3u);

  // Flags are per live entry and orientation.
  roster.set_flag(1, 1, true);
  EXPECT_EQ(roster.productive_total(), 4u);
  roster.set_flag(1, 1, false);
  EXPECT_EQ(roster.productive_total(), 3u);

  // Productive sampling only returns live, flagged slots.
  Rng rng(3);
  for (int t = 0; t < 200; ++t) {
    const auto [e, orient] = roster.sample_productive(rng);
    EXPECT_LT(e, roster.size());
    EXPECT_EQ(orient, 0u);      // only forward orientations are flagged
    EXPECT_EQ(e % 2, 0u);       // surviving productive entries are even
  }
}

}  // namespace
}  // namespace pp
