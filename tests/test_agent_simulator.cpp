// Cross-validation of the optimized count-based engines against the
// agent-level reference simulator, which runs exclusively on the formal
// transition function δ.
//
// Three layers of checks, per protocol:
//   1. weight consistency: at every (subsampled) reachable configuration,
//      Protocol::productive_weight() equals the brute-force count of
//      δ-productive ordered pairs;
//   2. trajectory validity: the reference simulator reaches a valid silent
//      ranking from assorted starts;
//   3. distributional agreement: mean stabilisation times of the reference
//      simulator and the accelerated engine agree within sampling noise.
#include "core/agent_simulator.hpp"

#include <gtest/gtest.h>

#include "core/initial.hpp"
#include "protocols/ag.hpp"
#include "protocols/factory.hpp"
#include "rng/seed_sequence.hpp"

namespace pp {
namespace {

class AgentSimCrossCheck : public ::testing::TestWithParam<std::string> {};

TEST_P(AgentSimCrossCheck, WeightMatchesBruteForceAlongTrajectory) {
  const std::string name = GetParam();
  const u64 n = preferred_population(name, 72);
  ProtocolPtr p = make_protocol(name, n);
  Rng rng(derive_seed(11, name));
  p->reset(initial::uniform_random(*p, rng));

  EXPECT_EQ(p->productive_weight(),
            reference_productive_weight(*p, p->counts()))
      << "initial configuration";
  u64 checks = 0;
  RunOptions opt;
  opt.on_change = [&](const Protocol& prot, u64) {
    if (++checks % 32 == 0) {
      EXPECT_EQ(prot.productive_weight(),
                reference_productive_weight(prot, prot.counts()));
    }
    return true;
  };
  const RunResult r = run_accelerated(*p, rng, opt);
  EXPECT_TRUE(r.valid);
  EXPECT_EQ(p->productive_weight(),
            reference_productive_weight(*p, p->counts()));
  EXPECT_EQ(p->productive_weight(), 0u);
}

TEST_P(AgentSimCrossCheck, WeightMatchesOnAdversarialConfigurations) {
  const std::string name = GetParam();
  const u64 n = preferred_population(name, 72);
  ProtocolPtr p = make_protocol(name, n);
  Rng rng(derive_seed(12, name));
  // A grab-bag of configurations, including ones heavy on extra states.
  std::vector<Configuration> configs;
  configs.push_back(initial::valid_ranking(*p));
  configs.push_back(initial::all_in_state(*p, 0));
  configs.push_back(
      initial::all_in_state(*p, static_cast<StateId>(p->num_states() - 1)));
  configs.push_back(initial::k_distant(*p, p->num_ranks() / 2, rng));
  for (int i = 0; i < 5; ++i) {
    configs.push_back(initial::uniform_random(*p, rng));
  }
  for (const auto& c : configs) {
    p->reset(c);
    EXPECT_EQ(p->productive_weight(),
              reference_productive_weight(*p, p->counts()));
  }
}

TEST_P(AgentSimCrossCheck, ReferenceSimulatorReachesValidRanking) {
  const std::string name = GetParam();
  const u64 n = preferred_population(name, 72);
  ProtocolPtr p = make_protocol(name, n);
  Rng rng(derive_seed(13, name));
  AgentSimulator sim(*p, initial::uniform_random(*p, rng));
  const RunResult r = sim.run(rng);
  EXPECT_TRUE(r.silent) << name;
  EXPECT_TRUE(r.valid) << name;
  // Count bookkeeping inside the simulator stayed consistent.
  u64 total = 0;
  for (const u64 c : sim.counts()) total += c;
  EXPECT_EQ(total, p->num_agents());
}

TEST_P(AgentSimCrossCheck, MeanTimesAgreeWithAcceleratedEngine) {
  const std::string name = GetParam();
  const u64 n = preferred_population(name, name == "line-of-traps" ? 72 : 24);
  const int kTrials = 30;
  double ref_sum = 0, acc_sum = 0;
  for (int t = 0; t < kTrials; ++t) {
    ProtocolPtr p = make_protocol(name, n);
    Rng gen(derive_seed(14, name, static_cast<u64>(t)));
    const Configuration start = initial::uniform_random(*p, gen);

    Rng r1(derive_seed(15, name, static_cast<u64>(t)));
    AgentSimulator sim(*p, start);
    const RunResult ref = sim.run(r1);
    EXPECT_TRUE(ref.valid);
    ref_sum += ref.parallel_time;

    Rng r2(derive_seed(16, name, static_cast<u64>(t)));
    p->reset(start);
    const RunResult acc = run_accelerated(*p, r2);
    EXPECT_TRUE(acc.valid);
    acc_sum += acc.parallel_time;
  }
  const double ratio = (acc_sum / kTrials) / (ref_sum / kTrials);
  EXPECT_NEAR(ratio, 1.0, 0.35)
      << name << ": ref=" << ref_sum / kTrials << " acc=" << acc_sum / kTrials;
}

std::string label(const ::testing::TestParamInfo<std::string>& info) {
  std::string s = info.param;
  for (char& c : s) {
    if (c == '-') c = '_';
  }
  return s;
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, AgentSimCrossCheck,
                         ::testing::Values(std::string("ag"),
                                           std::string("ring-of-traps"),
                                           std::string("line-of-traps"),
                                           std::string("tree-ranking")),
                         label);

TEST(AgentSimulator, StepAppliesTransitionExactly) {
  // On a two-agent population the sampled pair is forced, so each step must
  // implement δ verbatim.
  ProtocolPtr p = make_protocol("ag", 2);
  AgentSimulator sim(*p, initial::all_in_state(*p, 0));
  Rng rng(1);
  EXPECT_TRUE(sim.step(rng));
  // (0,0) -> (0,1): counts {1,1}.
  EXPECT_EQ(sim.counts()[0], 1u);
  EXPECT_EQ(sim.counts()[1], 1u);
  EXPECT_TRUE(sim.is_silent());
  EXPECT_TRUE(sim.is_valid_ranking());
}

TEST(AgentSimulator, NullInteractionsChangeNothing) {
  ProtocolPtr p = make_protocol("ag", 4);
  AgentSimulator sim(*p, initial::valid_ranking(*p));
  Rng rng(2);
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(sim.step(rng));
  EXPECT_TRUE(sim.is_silent());
}

TEST(ReferenceWeight, MatchesHandComputedExample) {
  // AG with counts {3, 1, 0, 0}: productive pairs are the ordered pairs of
  // distinct agents inside state 0: 3 * 2 = 6.
  ProtocolPtr p = make_protocol("ag", 4);
  EXPECT_EQ(reference_productive_weight(*p, {3, 1, 0, 0}), 6u);
  EXPECT_EQ(reference_productive_weight(*p, {1, 1, 1, 1}), 0u);
  EXPECT_EQ(reference_productive_weight(*p, {2, 2, 0, 0}), 4u);
}

}  // namespace
}  // namespace pp
