// Unit tests for summary statistics and power-law fitting.
#include "analysis/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "analysis/fit.hpp"

namespace pp {
namespace {

TEST(Stats, SingleSample) {
  const std::vector<double> v{3.5};
  const Summary s = summarize(v);
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 3.5);
  EXPECT_DOUBLE_EQ(s.median, 3.5);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.min, 3.5);
  EXPECT_DOUBLE_EQ(s.max, 3.5);
}

TEST(Stats, EmptySampleYieldsFiniteZeroSummary) {
  // Regression: summarize({}) used to assert; an empty trial set (e.g. a
  // fully-filtered aggregate) must yield the all-zero Summary instead of
  // crashing or leaking NaN into the sinks.
  const Summary s = summarize(std::span<const double>{});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.min, 0.0);
  EXPECT_DOUBLE_EQ(s.max, 0.0);
  EXPECT_DOUBLE_EQ(s.median, 0.0);
  EXPECT_DOUBLE_EQ(s.ci95_halfwidth(), 0.0);
  EXPECT_TRUE(std::isfinite(s.mean) && std::isfinite(s.stddev));
}

TEST(Stats, DegenerateSummariesStayFinite) {
  // 0- and 1-sample inputs must never produce NaN in any field the sinks
  // serialize (stddev has an n-1 denominator, ci95 divides by sqrt(n)).
  for (const Summary& s :
       {summarize(std::span<const double>{}), summarize({{42.0}})}) {
    for (const double v : {s.mean, s.stddev, s.min, s.q25, s.median, s.q75,
                           s.q95, s.max, s.ci95_halfwidth()}) {
      EXPECT_TRUE(std::isfinite(v)) << "count=" << s.count;
    }
  }
}

TEST(Stats, KnownSummary) {
  const std::vector<double> v{1, 2, 3, 4, 5};
  const Summary s = summarize(v);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.5), 1e-12);
}

TEST(Stats, SummarizeUnsortedInput) {
  const std::vector<double> v{5, 1, 4, 2, 3};
  const Summary s = summarize(v);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
}

TEST(Stats, QuantileInterpolation) {
  const std::vector<double> v{0, 10};
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 1.0), 10.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 0.25), 2.5);
}

TEST(Stats, Ci95ShrinksWithSamples) {
  std::vector<double> small{1, 2, 3, 4};
  std::vector<double> big;
  for (int rep = 0; rep < 25; ++rep) {
    big.insert(big.end(), small.begin(), small.end());
  }
  EXPECT_GT(summarize(small).ci95_halfwidth(),
            summarize(big).ci95_halfwidth());
}

TEST(RunningStat, EmptyAccumulatorReportsZeros) {
  const RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
  EXPECT_DOUBLE_EQ(s.sum(), 0.0);
}

TEST(RunningStat, SingleSampleHasZeroVariance) {
  RunningStat s;
  s.push(7.25);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 7.25);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 7.25);
  EXPECT_DOUBLE_EQ(s.max(), 7.25);
}

TEST(RunningStat, MergeWithEmptyDoesNotDragMinMaxTowardZero) {
  // The pitfall the 0-valued empty sentinels invite: merging an empty
  // accumulator into one whose genuine min is far above 0 (or max far
  // below) must not pull min/max toward the sentinel, in either direction.
  RunningStat populated;
  populated.push(100.0);
  populated.push(150.0);
  RunningStat empty;

  RunningStat a = populated;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.min(), 100.0);
  EXPECT_DOUBLE_EQ(a.max(), 150.0);
  EXPECT_DOUBLE_EQ(a.mean(), 125.0);

  RunningStat b = empty;
  b.merge(populated);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.min(), 100.0);
  EXPECT_DOUBLE_EQ(b.max(), 150.0);
  EXPECT_DOUBLE_EQ(b.mean(), 125.0);

  // All-negative samples: the 0 sentinel now sits above the true max.
  RunningStat negative;
  negative.push(-30.0);
  negative.push(-20.0);
  negative.merge(empty);
  EXPECT_DOUBLE_EQ(negative.max(), -20.0);
  RunningStat c = empty;
  c.merge(negative);
  EXPECT_DOUBLE_EQ(c.max(), -20.0);
  EXPECT_DOUBLE_EQ(c.min(), -30.0);
}

TEST(RunningStat, MergeMatchesSequentialPushes) {
  RunningStat left;
  RunningStat right;
  RunningStat all;
  const std::vector<double> xs{4.0, 9.0, -1.5, 2.25, 6.0, 3.0};
  for (size_t i = 0; i < xs.size(); ++i) {
    (i < 3 ? left : right).push(xs[i]);
    all.push(xs[i]);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-12);
}

TEST(RunningStat, MergeTwoEmptiesStaysEmpty) {
  RunningStat a;
  const RunningStat b;
  a.merge(b);
  EXPECT_EQ(a.count(), 0u);
  EXPECT_DOUBLE_EQ(a.min(), 0.0);
  EXPECT_DOUBLE_EQ(a.max(), 0.0);
  EXPECT_DOUBLE_EQ(a.stddev(), 0.0);
}

TEST(Fit, ExactLine) {
  const std::vector<double> x{1, 2, 3, 4};
  const std::vector<double> y{3, 5, 7, 9};  // y = 2x + 1
  const LinearFit f = fit_linear(x, y);
  EXPECT_NEAR(f.slope, 2.0, 1e-12);
  EXPECT_NEAR(f.intercept, 1.0, 1e-12);
  EXPECT_NEAR(f.r2, 1.0, 1e-12);
}

TEST(Fit, NoisyLineStillCloseAndR2Below1) {
  std::vector<double> x, y;
  for (int i = 1; i <= 20; ++i) {
    x.push_back(i);
    y.push_back(3.0 * i - 2.0 + ((i % 2 == 0) ? 0.5 : -0.5));
  }
  const LinearFit f = fit_linear(x, y);
  EXPECT_NEAR(f.slope, 3.0, 0.05);
  EXPECT_LT(f.r2, 1.0);
  EXPECT_GT(f.r2, 0.99);
}

TEST(Fit, PowerLawRecoversExponent) {
  std::vector<double> x, y;
  for (const double n : {16.0, 32.0, 64.0, 128.0, 256.0}) {
    x.push_back(n);
    y.push_back(0.7 * std::pow(n, 1.75));
  }
  const PowerFit f = fit_power(x, y);
  EXPECT_NEAR(f.exponent, 1.75, 1e-9);
  EXPECT_NEAR(f.prefactor, 0.7, 1e-9);
  EXPECT_NEAR(f.r2, 1.0, 1e-12);
}

TEST(Fit, PowerLawWithLogFactorBiasesExponentUp) {
  // y = n^2 log2(n): the fitted pure-power exponent over a dyadic range
  // should land a bit above 2 — the benches rely on this interpretation.
  std::vector<double> x, y;
  for (double n = 64; n <= 4096; n *= 2) {
    x.push_back(n);
    y.push_back(n * n * std::log2(n));
  }
  const PowerFit f = fit_power(x, y);
  EXPECT_GT(f.exponent, 2.0);
  EXPECT_LT(f.exponent, 2.4);
}

}  // namespace
}  // namespace pp
