// Tests of the line-of-traps layout (§4): canonical 3m^3(m+1) shape,
// generic-n balance, indexing inverses and routing-slot structure.
#include "structures/line_layout.hpp"

#include <gtest/gtest.h>

namespace pp {
namespace {

TEST(LineLayout, CanonicalSizes) {
  EXPECT_EQ(LineLayout::canonical_n(2), 72u);
  EXPECT_EQ(LineLayout::canonical_n(4), 960u);
  EXPECT_EQ(LineLayout::canonical_n(6), 4536u);
}

TEST(LineLayout, CanonicalShape) {
  for (const u64 m : {2u, 4u}) {
    LineLayout layout(LineLayout::canonical_n(m));
    EXPECT_EQ(layout.m(), m);
    EXPECT_EQ(layout.num_lines(), m * m);
    EXPECT_EQ(layout.traps_per_line(), 3 * m);
    for (u64 l = 0; l < layout.num_lines(); ++l) {
      EXPECT_EQ(layout.line_size(l), 3 * m * (m + 1));
      for (u64 a = 0; a < layout.traps_per_line(); ++a) {
        EXPECT_EQ(layout.trap_size(l, a), m + 1);
      }
    }
  }
}

TEST(LineLayout, GenericNCoversAllStatesOnce) {
  for (const u64 n : {72u, 73u, 100u, 500u, 960u, 1000u}) {
    LineLayout layout(n);
    u64 covered = 0;
    for (u64 l = 0; l < layout.num_lines(); ++l) {
      EXPECT_EQ(layout.line_offset(l), covered);
      u64 in_line = 0;
      for (u64 a = 0; a < layout.traps_per_line(); ++a) {
        EXPECT_EQ(layout.trap_offset(l, a), covered + in_line);
        EXPECT_GE(layout.trap_size(l, a), 2u) << "gate plus an inner state";
        in_line += layout.trap_size(l, a);
      }
      EXPECT_EQ(in_line, layout.line_size(l));
      covered += in_line;
    }
    EXPECT_EQ(covered, n);
  }
}

TEST(LineLayout, IndexingInverses) {
  LineLayout layout(200);
  for (StateId s = 0; s < 200; ++s) {
    const u64 l = layout.line_of(s);
    const u64 a = layout.trap_of(s);
    const u64 b = layout.local_of(s);
    EXPECT_EQ(layout.trap_offset(l, a) + b, s);
    EXPECT_LT(b, layout.trap_size(l, a));
  }
}

TEST(LineLayout, GatesTopsEntranceExit) {
  LineLayout layout(72);  // m=2: 4 lines, 6 traps of size 3
  for (u64 l = 0; l < 4; ++l) {
    EXPECT_EQ(layout.exit_gate(l), layout.gate(l, 0));
    EXPECT_EQ(layout.entrance_gate(l), layout.gate(l, 5));
    for (u64 a = 0; a < 6; ++a) {
      EXPECT_EQ(layout.local_of(layout.gate(l, a)), 0u);
      EXPECT_EQ(layout.local_of(layout.top(l, a)),
                layout.trap_size(l, a) - 1);
    }
  }
}

TEST(LineLayout, SlotsSplitTrapsInThreeEqualGroups) {
  LineLayout layout(960);  // m = 4, 12 traps per line
  u64 per_slot[3] = {0, 0, 0};
  for (u64 a = 0; a < layout.traps_per_line(); ++a) {
    const u32 i = layout.slot_of_trap(a);
    ASSERT_LT(i, 3u);
    ++per_slot[i];
  }
  EXPECT_EQ(per_slot[0], 4u);
  EXPECT_EQ(per_slot[1], 4u);
  EXPECT_EQ(per_slot[2], 4u);
}

TEST(LineLayout, RouteTargetsAreEntranceGatesOfGraphNeighbours) {
  LineLayout layout(72);
  for (StateId s = 0; s < 72; ++s) {
    const u64 l = layout.line_of(s);
    const u32 slot = layout.slot_of_trap(layout.trap_of(s));
    const u32 neighbour =
        layout.graph().neighbour(static_cast<u32>(l), slot);
    EXPECT_EQ(layout.route_target(s), layout.entrance_gate(neighbour));
    EXPECT_NE(neighbour, l) << "routing never targets its own line";
  }
}

TEST(LineLayout, AllStatesOfATrapRouteToTheSameLine) {
  LineLayout layout(960);
  for (u64 l = 0; l < layout.num_lines(); ++l) {
    for (u64 a = 0; a < layout.traps_per_line(); ++a) {
      const StateId first = layout.gate(l, a);
      for (u64 b = 1; b < layout.trap_size(l, a); ++b) {
        EXPECT_EQ(layout.route_target(static_cast<StateId>(first + b)),
                  layout.route_target(first));
      }
    }
  }
}

}  // namespace
}  // namespace pp
