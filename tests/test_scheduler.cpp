// The pluggable scheduler subsystem (src/schedulers/).
//
// The load-bearing guarantees:
//   * UniformScheduler / AcceleratedUniformScheduler reproduce the
//     pre-refactor run_uniform / run_accelerated trajectories seed-for-seed
//     (bit-identical, pinned by hard-coded regression values);
//   * GraphRestrictedScheduler on the complete graph is the uniform
//     scheduler in disguise — statistically indistinguishable mean
//     stabilisation times (KS-style check as in test_engine.cpp);
//   * the matching and graph-restricted models behave sanely on every
//     protocol (stabilise where the topology allows, report locally-stuck
//     configurations where it does not).
#include "schedulers/scheduler.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "core/initial.hpp"
#include "protocols/ag.hpp"
#include "protocols/factory.hpp"
#include "runner/runner.hpp"
#include "runner/sink.hpp"
#include "schedulers/graph_restricted.hpp"
#include "schedulers/random_matching.hpp"
#include "schedulers/uniform.hpp"

namespace pp {
namespace {

// Pre-refactor trajectory pins for AG n=16, uniform_random start, seed 42
// (see PinnedTrajectoryRegression below).
constexpr u64 kPinnedUniformInteractions = 1522;
constexpr u64 kPinnedUniformProductive = 29;
constexpr u64 kPinnedAcceleratedInteractions = 1543;
constexpr u64 kPinnedAcceleratedProductive = 29;

// Graph-restricted pins, recorded from the sampler-layer implementation
// (see SchedulerGraph.PinnedTrajectoryRegression below): AG n=16,
// uniform_random start; a to-silence run on K_16 (seed 42) and a
// locally-stuck run on the 16-cycle (seed 47).
constexpr u64 kPinnedGraphAcceleratedInteractions = 2505;
constexpr u64 kPinnedGraphAcceleratedProductive = 29;
constexpr u64 kPinnedGraphNaiveInteractions = 2208;
constexpr u64 kPinnedGraphNaiveProductive = 29;
constexpr u64 kPinnedCycleAcceleratedInteractions = 35;
constexpr u64 kPinnedCycleNaiveInteractions = 58;
constexpr u64 kPinnedCycleProductive = 3;

RunResult run_via(const Scheduler& s, std::string_view proto, u64 n, u64 seed,
                  const RunOptions& opt = {}) {
  ProtocolPtr p = make_protocol(proto, n);
  Rng rng(seed);
  p->reset(initial::uniform_random(*p, rng));
  return s.run(*p, rng, opt);
}

// ---- bit-identical delegation --------------------------------------------

TEST(SchedulerUniform, BitIdenticalToRunUniform) {
  const UniformScheduler sched;
  for (u64 seed = 1; seed <= 5; ++seed) {
    AgProtocol a(24), b(24);
    Rng ra(seed), rb(seed);
    a.reset(initial::uniform_random(a, ra));
    b.reset(initial::uniform_random(b, rb));
    const RunResult legacy = run_uniform(a, ra);
    const RunResult via = sched.run(b, rb);
    EXPECT_EQ(legacy.interactions, via.interactions) << seed;
    EXPECT_EQ(legacy.productive_steps, via.productive_steps) << seed;
    EXPECT_EQ(a.counts(), b.counts()) << seed;
    EXPECT_EQ(ra.bits(), rb.bits()) << "generators diverged, seed " << seed;
  }
}

TEST(SchedulerUniform, AcceleratedBitIdenticalToRunAccelerated) {
  const AcceleratedUniformScheduler sched;
  for (u64 seed = 1; seed <= 5; ++seed) {
    ProtocolPtr a = make_protocol("tree-ranking", 32);
    ProtocolPtr b = make_protocol("tree-ranking", 32);
    Rng ra(seed), rb(seed);
    a->reset(initial::uniform_random(*a, ra));
    b->reset(initial::uniform_random(*b, rb));
    const RunResult legacy = run_accelerated(*a, ra);
    const RunResult via = sched.run(*b, rb);
    EXPECT_EQ(legacy.interactions, via.interactions) << seed;
    EXPECT_EQ(legacy.productive_steps, via.productive_steps) << seed;
    EXPECT_EQ(a->counts(), b->counts()) << seed;
    EXPECT_EQ(ra.bits(), rb.bits()) << "generators diverged, seed " << seed;
  }
}

// Pinned pre-refactor trajectories: these literals were recorded from the
// engines as they stood before the scheduler extraction.  If either engine
// (or anything upstream of it: Rng, initial::, the AG rule table) changes
// its draw sequence, this fails — that is the point.
TEST(SchedulerUniform, PinnedTrajectoryRegression) {
  const UniformScheduler uniform;
  const AcceleratedUniformScheduler accelerated;
  const RunResult u = run_via(uniform, "ag", 16, /*seed=*/42);
  EXPECT_TRUE(u.valid);
  EXPECT_EQ(u.interactions, kPinnedUniformInteractions);
  EXPECT_EQ(u.productive_steps, kPinnedUniformProductive);
  const RunResult a = run_via(accelerated, "ag", 16, /*seed=*/42);
  EXPECT_TRUE(a.valid);
  EXPECT_EQ(a.interactions, kPinnedAcceleratedInteractions);
  EXPECT_EQ(a.productive_steps, kPinnedAcceleratedProductive);
}

// ---- pp::run dispatch -----------------------------------------------------

TEST(SchedulerDispatch, NullSchedulerMeansAccelerated) {
  AgProtocol a(20), b(20);
  Rng ra(9), rb(9);
  a.reset(initial::uniform_random(a, ra));
  b.reset(initial::uniform_random(b, rb));
  const RunResult direct = run_accelerated(a, ra);
  const RunResult dispatched = run(b, rb, {});
  EXPECT_EQ(direct.interactions, dispatched.interactions);
  EXPECT_EQ(direct.productive_steps, dispatched.productive_steps);
}

TEST(SchedulerDispatch, RunUsesTheInstalledScheduler) {
  const RandomMatchingScheduler matching;
  AgProtocol p(20);
  Rng rng(10);
  p.reset(initial::uniform_random(p, rng));
  RunOptions opt;
  opt.scheduler = &matching;
  const RunResult r = run(p, rng, opt);
  EXPECT_TRUE(r.silent);
  EXPECT_TRUE(r.valid);
  // Matching parallel time counts rounds: at most interactions / floor(n/2)
  // rounds can have elapsed, far below interactions / 1.
  EXPECT_LE(r.parallel_time,
            static_cast<double>(r.interactions) / (20 / 2) + 1.0);
}

// ---- random matching ------------------------------------------------------

TEST(SchedulerMatching, StabilisesEveryProtocol) {
  const RandomMatchingScheduler sched;
  for (const auto name : protocol_names()) {
    const u64 n = preferred_population(name, 48);
    const RunResult r = run_via(sched, name, n, /*seed=*/3);
    EXPECT_TRUE(r.silent) << name;
    EXPECT_TRUE(r.valid) << name;
    EXPECT_GE(r.interactions, r.productive_steps) << name;
    EXPECT_GT(r.parallel_time, 0.0) << name;
  }
}

TEST(SchedulerMatching, OddPopulationLeavesOneAgentIdle) {
  const RandomMatchingScheduler sched;
  const RunResult r = run_via(sched, "ag", 17, /*seed=*/4);
  EXPECT_TRUE(r.valid);
  // 17 agents -> 8 meetings per round; interactions must be consistent
  // with an integer number of rounds at 8 meetings each (the final round
  // may be cut short only by silence, never mid-round here).
  EXPECT_EQ(r.interactions % 8, 0u);
  EXPECT_DOUBLE_EQ(r.parallel_time, static_cast<double>(r.interactions) / 8);
}

TEST(SchedulerMatching, RespectsInteractionBudget) {
  const RandomMatchingScheduler sched;
  RunOptions opt;
  opt.max_interactions = 100;
  const RunResult r = run_via(sched, "ag", 64, /*seed=*/5, opt);
  EXPECT_EQ(r.interactions, 100u);
  EXPECT_FALSE(r.silent);
}

TEST(SchedulerMatching, MatchesUniformEngineStatistically) {
  // The matching model fires the same rules under a different meeting
  // process; on the complete meeting structure the *productive step count*
  // to silence should be statistically close to the uniform scheduler's
  // (the embedded jump chains are close for AG, whose productive pairs are
  // state-symmetric).  Generous 30% band, means over 40 trials.
  const RandomMatchingScheduler sched;
  const u64 n = 24;
  const int kTrials = 40;
  double matching_steps = 0, uniform_steps = 0;
  for (int t = 0; t < kTrials; ++t) {
    matching_steps += static_cast<double>(
        run_via(sched, "ag", n, 3000 + t).productive_steps);
    AgProtocol p(n);
    Rng rng(700000 + t);
    p.reset(initial::uniform_random(p, rng));
    uniform_steps += static_cast<double>(run_uniform(p, rng).productive_steps);
  }
  EXPECT_NEAR(matching_steps / uniform_steps, 1.0, 0.30);
}

// ---- graph-restricted -----------------------------------------------------

TEST(SchedulerGraph, CompleteGraphMatchesUniformStatistically) {
  // The central equivalence: restricting to the complete graph is no
  // restriction, so mean stabilisation times must agree with run_uniform
  // within the same tolerance test_engine.cpp uses for the engines.
  const u64 n = 24;
  const int kTrials = 60;
  auto graph = std::make_shared<const InteractionGraph>(
      InteractionGraph::complete(n));
  for (const bool accelerated : {true, false}) {
    const GraphRestrictedScheduler sched(graph, accelerated);
    double graph_time = 0, uniform_time = 0;
    for (int t = 0; t < kTrials; ++t) {
      const RunResult r = run_via(sched, "ag", n, 4000 + t);
      EXPECT_TRUE(r.valid);
      graph_time += r.parallel_time;
      AgProtocol p(n);
      Rng rng(800000 + t);
      p.reset(initial::uniform_random(p, rng));
      uniform_time += run_uniform(p, rng).parallel_time;
    }
    EXPECT_NEAR(graph_time / uniform_time, 1.0, 0.25)
        << (accelerated ? "accelerated" : "naive");
  }
}

TEST(SchedulerGraph, AcceleratedMatchesNaiveOnSparseGraph) {
  // Null-skipping must be exact on restricted topologies too: naive and
  // accelerated paths on the same cycle agree on the distribution of
  // productive work and of getting stuck.
  const u64 n = 16;
  const int kTrials = 80;
  auto graph =
      std::make_shared<const InteractionGraph>(InteractionGraph::cycle(n));
  double steps[2] = {0, 0};
  int stuck[2] = {0, 0};
  for (const bool accelerated : {true, false}) {
    const GraphRestrictedScheduler sched(graph, accelerated);
    for (int t = 0; t < kTrials; ++t) {
      const RunResult r = run_via(sched, "ag", n, 5000 + t);
      steps[accelerated] += static_cast<double>(r.productive_steps);
      stuck[accelerated] += r.silent ? 0 : 1;
    }
  }
  EXPECT_NEAR(steps[1] / steps[0], 1.0, 0.25);
  EXPECT_NEAR(static_cast<double>(stuck[1]) / kTrials,
              static_cast<double>(stuck[0]) / kTrials, 0.25);
}

TEST(SchedulerGraph, CycleStrandsMostRuns) {
  // Non-stabilisation under sparse topologies is the phenomenon this
  // scheduler exposes: a locally stuck run terminates (no hang), reports
  // silent = false, and the protocol still has global productive weight.
  const u64 n = 32;
  auto graph =
      std::make_shared<const InteractionGraph>(InteractionGraph::cycle(n));
  const GraphRestrictedScheduler sched(graph, /*accelerated=*/true);
  int stranded = 0;
  for (int t = 0; t < 10; ++t) {
    ProtocolPtr p = make_protocol("ag", n);
    Rng rng(6000 + t);
    p->reset(initial::uniform_random(*p, rng));
    const RunResult r = sched.run(*p, rng, {});
    if (!r.silent) {
      ++stranded;
      EXPECT_FALSE(r.valid);
      EXPECT_GT(p->productive_weight(), 0u)
          << "stuck means locally stuck, not globally silent";
    } else {
      EXPECT_TRUE(r.valid);
    }
  }
  EXPECT_GE(stranded, 5) << "a cycle should strand most random AG starts";
}

TEST(SchedulerGraph, SparseTopologiesTerminateCleanlyOnTreeRanking) {
  // Self-stabilising *ranking* fundamentally needs global meetings: the
  // end-game duplicates of a nearly ranked population are rarely adjacent
  // in a sparse graph, so even an expander strands most runs — a genuine
  // model property, not a bug.  What the scheduler owes us: every run
  // terminates (no hang), its extra-state/orientation-sensitive rules do
  // fire through apply_pair, and the outcome is classified correctly —
  // silent implies a valid ranking, stuck implies global productive weight
  // remains.
  const u64 n = 32;
  auto graph = std::make_shared<const InteractionGraph>(
      InteractionGraph::random_regular(n, 4, /*seed=*/2));
  const GraphRestrictedScheduler sched(graph, /*accelerated=*/true);
  u64 productive = 0;
  for (int t = 0; t < 10; ++t) {
    ProtocolPtr p = make_protocol("tree-ranking", n);
    Rng rng(7000 + t);
    p->reset(initial::uniform_random(*p, rng));
    const RunResult r = sched.run(*p, rng, {});
    productive += r.productive_steps;
    if (r.silent) {
      EXPECT_TRUE(r.valid);
    } else {
      EXPECT_GT(p->productive_weight(), 0u);
    }
  }
  EXPECT_GT(productive, 0u) << "the buffer-line rules never fired at all";
}

TEST(SchedulerGraph, CompleteGraphStabilisesTreeRanking) {
  // On the complete graph nothing is restricted, so the tree protocol's
  // extra states and orientation-sensitive R4 rule must carry it to a
  // valid ranking through apply_pair exactly as under the engines.
  const u64 n = 32;
  auto graph = std::make_shared<const InteractionGraph>(
      InteractionGraph::complete(n));
  const GraphRestrictedScheduler sched(graph, /*accelerated=*/true);
  for (int t = 0; t < 5; ++t) {
    const RunResult r = run_via(sched, "tree-ranking", n, 7100 + t);
    EXPECT_TRUE(r.silent) << t;
    EXPECT_TRUE(r.valid) << t;
  }
}

// Pinned post-refactor trajectories for the graph-restricted scheduler on
// the Fenwick-backed sampler layer (PR 4).  The naive path consumes the
// generator exactly as the pre-refactor swap-remove implementation did
// (unit weights make Fenwick::find the identity on the drawn target); the
// accelerated path draws the same below(W) but maps targets in id order
// rather than insertion order, so its literals were re-recorded at
// refactor time.  Any change to the sampler layer's draw sequence fails
// here — that is the point.
TEST(SchedulerGraph, PinnedTrajectoryRegression) {
  auto complete = std::make_shared<const InteractionGraph>(
      InteractionGraph::complete(16));
  auto cycle = std::make_shared<const InteractionGraph>(
      InteractionGraph::cycle(16));
  // A full run to silence on the unrestricted topology...
  const GraphRestrictedScheduler acc_k(complete, /*accelerated=*/true);
  const GraphRestrictedScheduler naive_k(complete, /*accelerated=*/false);
  const RunResult a = run_via(acc_k, "ag", 16, /*seed=*/42);
  EXPECT_TRUE(a.silent);
  EXPECT_EQ(a.interactions, kPinnedGraphAcceleratedInteractions);
  EXPECT_EQ(a.productive_steps, kPinnedGraphAcceleratedProductive);
  const RunResult u = run_via(naive_k, "ag", 16, /*seed=*/42);
  EXPECT_TRUE(u.silent);
  EXPECT_EQ(u.interactions, kPinnedGraphNaiveInteractions);
  EXPECT_EQ(u.productive_steps, kPinnedGraphNaiveProductive);
  // ...and a locally stuck run on the cycle, pinning the stuck-detection
  // path too.
  const GraphRestrictedScheduler acc_c(cycle, /*accelerated=*/true);
  const GraphRestrictedScheduler naive_c(cycle, /*accelerated=*/false);
  const RunResult ca = run_via(acc_c, "ag", 16, /*seed=*/47);
  EXPECT_FALSE(ca.silent);
  EXPECT_EQ(ca.interactions, kPinnedCycleAcceleratedInteractions);
  EXPECT_EQ(ca.productive_steps, kPinnedCycleProductive);
  const RunResult cn = run_via(naive_c, "ag", 16, /*seed=*/47);
  EXPECT_FALSE(cn.silent);
  EXPECT_EQ(cn.interactions, kPinnedCycleNaiveInteractions);
  EXPECT_EQ(cn.productive_steps, kPinnedCycleProductive);
}

TEST(SchedulerGraph, RespectsInteractionBudget) {
  const u64 n = 16;
  auto graph = std::make_shared<const InteractionGraph>(
      InteractionGraph::random_regular(n, 4, /*seed=*/3));
  for (const bool accelerated : {true, false}) {
    const GraphRestrictedScheduler sched(graph, accelerated);
    RunOptions opt;
    opt.max_interactions = 50;
    const RunResult r = run_via(sched, "ag", n, /*seed=*/8, opt);
    EXPECT_LE(r.interactions, 50u);
    EXPECT_GE(r.interactions, r.productive_steps);
  }
}

// ---- factory + runner wiring ---------------------------------------------

TEST(SchedulerFactory, BuildsEveryKindWithMatchingNames) {
  for (const SchedulerKind kind : scheduler_kinds()) {
    SchedulerSpec spec;
    spec.kind = kind;
    const SchedulerPtr s = make_scheduler(spec, 12);
    ASSERT_NE(s, nullptr);
    // The built scheduler and the spec agree on the display name, and the
    // name always leads with the kind (parameterised kinds decorate it,
    // e.g. "adversarial[random-productive]").
    EXPECT_EQ(s->name(), spec.to_string());
    EXPECT_EQ(spec.to_string().rfind(scheduler_kind_name(kind), 0), 0u)
        << spec.to_string();
  }
  SchedulerSpec rr;
  rr.kind = SchedulerKind::kGraphRestricted;
  rr.graph = GraphKind::kRandomRegular;
  rr.degree = 4;
  EXPECT_EQ(rr.to_string(), "graph-restricted[random-4-regular]");
  EXPECT_EQ(make_scheduler(rr, 12)->name(),
            "graph-restricted[random-4-regular]");
  // Non-default topology seeds are encoded: specs differing only in the
  // random-regular seed must not collide in sinks or BENCH labels.
  rr.graph_seed = 7;
  EXPECT_EQ(rr.to_string(), "graph-restricted[random-4-regular/g7]");
  EXPECT_EQ(make_scheduler(rr, 12)->name(), rr.to_string());
  rr.graph_seed = 1;
  SchedulerSpec wt;
  wt.kind = SchedulerKind::kWeighted;
  wt.kernel = WeightKernel::kRingDecay;
  EXPECT_EQ(wt.to_string(), "weighted[ring-decay]");
  wt.kernel_power = 2;
  EXPECT_EQ(wt.to_string(), "weighted[ring-decay^2]");
  EXPECT_EQ(make_scheduler(wt, 12)->name(), "weighted[ring-decay^2]");
  SchedulerSpec dyn;
  dyn.kind = SchedulerKind::kDynamicGraph;
  dyn.graph = GraphKind::kCycle;
  EXPECT_EQ(dyn.to_string(), "dynamic[cycle/markov]");
  dyn.edge_birth = 0.005;
  dyn.edge_death = 0.1;
  EXPECT_EQ(dyn.to_string(), "dynamic[cycle/markov/b0.005/d0.1]");
  EXPECT_EQ(make_scheduler(dyn, 12)->name(), dyn.to_string());
  dyn = SchedulerSpec{};
  dyn.kind = SchedulerKind::kDynamicGraph;
  dyn.graph = GraphKind::kRandomRegular;
  dyn.degree = 4;
  dyn.dynamics = GraphDynamics::kPeriodicRewire;
  dyn.rewire_period = 96;
  EXPECT_EQ(dyn.to_string(), "dynamic[random-4-regular/rewire/T96]");
  EXPECT_EQ(make_scheduler(dyn, 12)->name(), dyn.to_string());
  SchedulerSpec adv;
  adv.kind = SchedulerKind::kAdversarial;
  adv.adversary = AdversaryPolicy::kMaxLoad;
  EXPECT_EQ(adv.to_string(), "adversarial[max-load]");
  EXPECT_EQ(make_scheduler(adv, 12)->name(), "adversarial[max-load]");
  SchedulerSpec churn;
  churn.kind = SchedulerKind::kChurn;
  churn.churn_rate = 0.05;
  churn.churn_faults = 3;
  churn.churn_reset = ChurnReset::kStateZero;
  EXPECT_EQ(churn.to_string(), "churn[0.05x3/state-zero]");
  EXPECT_EQ(make_scheduler(churn, 12)->name(), "churn[0.05x3/state-zero]");
  SchedulerSpec part;
  part.kind = SchedulerKind::kPartition;
  part.partition_blocks = 4;
  EXPECT_EQ(part.to_string(), "partition[4-blocks]");
  EXPECT_EQ(make_scheduler(part, 12)->name(), "partition[4-blocks]");
  // Non-default storm/phase knobs are encoded too, so specs differing only
  // in those never collide in BENCH records or conformance labels.
  churn.churn_active = 777;
  EXPECT_EQ(churn.to_string(), "churn[0.05x3/state-zero/a777]");
  EXPECT_EQ(make_scheduler(churn, 12)->name(), churn.to_string());
  part.partition_split = 100;
  part.partition_heal = 50;
  part.partition_cycles = 5;
  EXPECT_EQ(part.to_string(), "partition[4-blocks/s100/h50/c5]");
  EXPECT_EQ(make_scheduler(part, 12)->name(), part.to_string());
}

TEST(SchedulerRunner, ScheduledAcceleratedUniformIsBitIdenticalToEngine) {
  // The runner path through EngineKind::kScheduled + accelerated-uniform
  // must give the very same records as EngineKind::kAccelerated — the
  // acceptance bar for the refactor at the runner level.
  TrialSpec engine_spec;
  engine_spec.protocol = "ag";
  engine_spec.n = 32;
  engine_spec.label = "sched-equiv";
  engine_spec.engine = EngineKind::kAccelerated;

  TrialSpec sched_spec = engine_spec;
  sched_spec.engine = EngineKind::kScheduled;
  sched_spec.scheduler.kind = SchedulerKind::kAcceleratedUniform;

  RunnerOptions opt;
  opt.trials = 16;
  opt.threads = 2;
  const TrialSet a = run_trials(engine_spec, opt);
  const TrialSet b = run_trials(sched_spec, opt);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (u64 t = 0; t < a.records.size(); ++t) {
    EXPECT_EQ(a.records[t].seed, b.records[t].seed) << t;
    EXPECT_EQ(a.records[t].interactions, b.records[t].interactions) << t;
    EXPECT_EQ(a.records[t].productive_steps, b.records[t].productive_steps)
        << t;
    EXPECT_EQ(a.records[t].parallel_time, b.records[t].parallel_time) << t;
  }
}

TEST(SchedulerRunner, SinkRecordsNameTheConcreteScheduler) {
  // A bare engine:"scheduled" would make every scheduler variant
  // serialize identically; records must carry the interaction model.
  TrialSpec spec;
  spec.protocol = "ag";
  spec.n = 12;
  spec.label = "sink-detail";
  spec.engine = EngineKind::kScheduled;
  spec.scheduler.kind = SchedulerKind::kGraphRestricted;
  spec.scheduler.graph = GraphKind::kCycle;
  RunnerOptions opt;
  opt.trials = 2;
  opt.threads = 1;
  const TrialSet set = run_trials(spec, opt);

  std::ostringstream json, csv;
  JsonlSink(json).write_aggregate(spec, set);
  CsvSink(csv).write_trials(spec, set);
  EXPECT_NE(json.str().find("\"engine\":\"graph-restricted[cycle]\""),
            std::string::npos)
      << json.str();
  EXPECT_NE(csv.str().find(",graph-restricted[cycle],"), std::string::npos)
      << csv.str();
}

TEST(SchedulerRunner, MatchingAndGraphRunThroughTheRunner) {
  for (const SchedulerKind kind :
       {SchedulerKind::kRandomMatching, SchedulerKind::kGraphRestricted}) {
    TrialSpec spec;
    spec.protocol = "ag";
    spec.n = 24;
    spec.label = "sched-runner";
    spec.engine = EngineKind::kScheduled;
    spec.scheduler.kind = kind;
    RunnerOptions opt;
    opt.trials = 8;
    opt.threads = 4;
    const TrialSet set = run_trials(spec, opt);
    EXPECT_EQ(set.stats.trials, 8u);
    EXPECT_EQ(set.stats.timeouts, 0u) << scheduler_kind_name(kind);
    EXPECT_EQ(set.stats.invalid, 0u) << scheduler_kind_name(kind);
  }
}

}  // namespace
}  // namespace pp
