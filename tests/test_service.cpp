// Tests for the sharded experiment service (src/service/): the chunk
// model and its on-disk cache, the run_trial_range kernel, and the
// coordinator/worker fan-out — including the load-bearing claims:
//
//  * merged aggregates are BIT-identical to single-process run_trials()
//    at 1, 2 and 4 workers (records, stats, counters, and the sink rows
//    rendered from them);
//  * a repeated sweep is 100% cache hits and spawns no workers;
//  * a worker killed mid-sweep (crash injection) still yields identical
//    results: its lease expires, the chunk is reassigned, and the
//    respawned worker re-registers through NodeStatus::kRecovering;
//  * non-replayable specs fall back in-process, reported.
//
// This binary has a custom main: the coordinator re-execs the test
// executable itself as its worker shards, so worker-mode argv must be
// routed to service::maybe_run_worker before InitGoogleTest.
#include "service/coordinator.hpp"

#include <gtest/gtest.h>

#include <dirent.h>
#include <stdlib.h>

#include <algorithm>
#include <bit>
#include <sstream>
#include <string>
#include <vector>

#include "common/file_io.hpp"
#include "protocols/factory.hpp"
#include "runner/runner.hpp"
#include "runner/sink.hpp"
#include "service/chunk.hpp"
#include "service/worker.hpp"

namespace pp {
namespace {

// ---- helpers -------------------------------------------------------------

std::string fresh_dir(const std::string& tag) {
  std::string templ = ::testing::TempDir() + "poprank_" + tag + "_XXXXXX";
  std::vector<char> buf(templ.begin(), templ.end());
  buf.push_back('\0');
  const char* made = mkdtemp(buf.data());
  EXPECT_NE(made, nullptr);
  return std::string(buf.data());
}

std::vector<std::string> list_dir(const std::string& path) {
  std::vector<std::string> names;
  DIR* d = opendir(path.c_str());
  if (d == nullptr) return names;
  while (dirent* e = readdir(d)) {
    const std::string name = e->d_name;
    if (name != "." && name != "..") names.push_back(name);
  }
  closedir(d);
  std::sort(names.begin(), names.end());
  return names;
}

TrialSpec small_spec(const std::string& label) {
  TrialSpec spec;
  spec.label = label;
  spec.protocol = "ag";
  spec.n = 16;
  return spec;  // default engine, default (replayable) init
}

RunnerOptions small_options(u64 trials, u64 seed = 12345) {
  RunnerOptions opt;
  opt.trials = trials;
  opt.master_seed = seed;
  opt.threads = 2;
  return opt;
}

void expect_records_identical(const std::vector<TrialRecord>& a,
                              const std::vector<TrialRecord>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (u64 i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].trial, b[i].trial) << i;
    EXPECT_EQ(a[i].seed, b[i].seed) << i;
    EXPECT_EQ(a[i].interactions, b[i].interactions) << i;
    EXPECT_EQ(a[i].productive_steps, b[i].productive_steps) << i;
    EXPECT_EQ(a[i].fault_events, b[i].fault_events) << i;
    EXPECT_EQ(std::bit_cast<u64>(a[i].parallel_time),
              std::bit_cast<u64>(b[i].parallel_time))
        << i;
    EXPECT_EQ(a[i].silent, b[i].silent) << i;
    EXPECT_EQ(a[i].valid, b[i].valid) << i;
  }
}

void expect_sets_identical(const TrialSet& a, const TrialSet& b) {
  expect_records_identical(a.records, b.records);
  EXPECT_EQ(a.stats.trials, b.stats.trials);
  EXPECT_EQ(a.stats.timeouts, b.stats.timeouts);
  EXPECT_EQ(a.stats.invalid, b.stats.invalid);
  EXPECT_EQ(a.stats.fault_events, b.stats.fault_events);
  // The stat accumulators fold the same values in the same order, so the
  // derived moments must match to the bit, not to a tolerance.
  EXPECT_EQ(std::bit_cast<u64>(a.stats.parallel_time.mean()),
            std::bit_cast<u64>(b.stats.parallel_time.mean()));
  EXPECT_EQ(std::bit_cast<u64>(a.stats.parallel_time.variance()),
            std::bit_cast<u64>(b.stats.parallel_time.variance()));
  EXPECT_EQ(std::bit_cast<u64>(a.stats.interactions.mean()),
            std::bit_cast<u64>(b.stats.interactions.mean()));
  EXPECT_EQ(std::bit_cast<u64>(a.stats.productive_steps.mean()),
            std::bit_cast<u64>(b.stats.productive_steps.mean()));
  EXPECT_TRUE(obs::CounterBlock::deterministic_equal(a.counters, b.counters));
}

/// Renders the trial rows (CSV + JSONL) of a set: fully deterministic, so
/// the sharded service must reproduce them byte for byte.
std::string render_trial_rows(const TrialSpec& spec, const TrialSet& set) {
  std::ostringstream csv, jsonl;
  CsvSink c(csv);
  c.write_trials(spec, set);
  JsonlSink j(jsonl);
  j.write_trials(spec, set);
  return csv.str() + jsonl.str();
}

/// Renders the aggregate rows after normalize_throughput(): with the
/// wall-clock fields zeroed, the remaining fields are all deterministic.
std::string render_aggregate_rows(const TrialSpec& spec, TrialSet set) {
  service::normalize_throughput(&set);
  std::ostringstream csv, jsonl;
  CsvSink c(csv);
  c.write_aggregate(spec, set);
  JsonlSink j(jsonl);
  j.write_aggregate(spec, set);
  return csv.str() + jsonl.str();
}

// ---- run_trial_range -----------------------------------------------------

TEST(TrialRange, PartitionReproducesRunTrials) {
  const TrialSpec spec = small_spec("svc-range");
  const RunnerOptions opt = small_options(17);
  const TrialSet whole = run_trials(spec, opt);

  // Any partition of [0, trials), folded back in order, must match.
  std::vector<TrialRecord> stitched;
  obs::CounterBlock counters;
  for (const auto& [b, e] :
       std::vector<std::pair<u64, u64>>{{0, 5}, {5, 6}, {6, 6}, {6, 17}}) {
    const TrialRange r = run_trial_range(spec, opt.master_seed, b, e);
    EXPECT_EQ(r.records.size(), e - b);
    stitched.insert(stitched.end(), r.records.begin(), r.records.end());
    counters.merge(r.counters);
  }
  expect_records_identical(whole.records, stitched);
  EXPECT_TRUE(
      obs::CounterBlock::deterministic_equal(whole.counters, counters));
}

TEST(TrialRange, AfterTrialHookFiresPerTrial) {
  const TrialSpec spec = small_spec("svc-hook");
  std::vector<u64> seen;
  run_trial_range(spec, 7, 3, 8, [&](u64 t) { seen.push_back(t); });
  EXPECT_EQ(seen, (std::vector<u64>{3, 4, 5, 6, 7}));
}

// ---- chunk model & cache -------------------------------------------------

TEST(ChunkCache, PartitionCoversTrialSpace) {
  const auto chunks = service::chunk_ranges(17, 5);
  ASSERT_EQ(chunks.size(), 4u);
  u64 expect_begin = 0;
  for (u64 i = 0; i < chunks.size(); ++i) {
    EXPECT_EQ(chunks[i].index, i);
    EXPECT_EQ(chunks[i].begin, expect_begin);
    expect_begin = chunks[i].end;
  }
  EXPECT_EQ(chunks.back().end, 17u);
  // Chunk sizing never depends on worker count (cache-sharing contract).
  EXPECT_GE(service::default_chunk_trials(1), 1u);
  EXPECT_EQ(service::default_chunk_trials(160), 10u);
}

TEST(ChunkCache, HitMissStale) {
  const std::string dir = fresh_dir("chunks");
  const TrialSpec spec = small_spec("svc-cache");
  const service::ChunkSpec chunk{0, 0, 4};
  const std::string material = service::chunk_key_material(spec, 99, chunk);

  // Miss: nothing stored yet.
  EXPECT_EQ(service::load_chunk(dir, material, chunk).status,
            service::CacheProbe::kMiss);

  // Hit: store, load, records round-trip exactly.
  const TrialRange range = run_trial_range(spec, 99, 0, 4);
  ASSERT_NE(service::store_chunk(dir, material, chunk, range), "");
  service::ChunkLoad load = service::load_chunk(dir, material, chunk);
  ASSERT_EQ(load.status, service::CacheProbe::kHit);
  expect_records_identical(range.records, load.range.records);
  EXPECT_TRUE(obs::CounterBlock::deterministic_equal(range.counters,
                                                     load.range.counters));

  // A different spec keys a different file: still a miss, never a
  // false hit.
  TrialSpec other = small_spec("svc-cache");
  other.n = 32;
  const std::string other_material =
      service::chunk_key_material(other, 99, chunk);
  EXPECT_NE(service::chunk_file_name(material),
            service::chunk_file_name(other_material));
  EXPECT_EQ(service::load_chunk(dir, other_material, chunk).status,
            service::CacheProbe::kMiss);

  // Stale: a torn/corrupt file at the keyed path fails verification.
  write_file_atomic(dir + "/" + service::chunk_file_name(material),
                    "poprank-chunk-v1\nkey " + material + "\ntorn");
  EXPECT_EQ(service::load_chunk(dir, material, chunk).status,
            service::CacheProbe::kStale);
}

// ---- sharded runs: bit identity ------------------------------------------

TEST(Service, InProcessShardingBitIdenticalAndCached) {
  const TrialSpec spec = small_spec("svc-shard0");
  const RunnerOptions opt = small_options(24);
  const TrialSet base = run_trials(spec, opt);

  service::ServiceOptions sopt;
  sopt.workers = 0;
  sopt.cache_dir = fresh_dir("svc0");
  sopt.chunk_trials = 5;

  service::ServiceReport rep;
  const TrialSet cold = run_trials_sharded(spec, opt, sopt, &rep);
  expect_sets_identical(base, cold);
  EXPECT_EQ(rep.chunks, 5u);
  EXPECT_EQ(rep.cache_misses, 5u);
  EXPECT_EQ(rep.cache_hits, 0u);
  EXPECT_EQ(rep.inprocess_chunks, 5u);

  // Second invocation: pure cache, zero computation, same bits.
  const TrialSet warm = run_trials_sharded(spec, opt, sopt, &rep);
  expect_sets_identical(base, warm);
  EXPECT_EQ(rep.cache_hits, 5u);
  EXPECT_EQ(rep.cache_misses, 0u);
  EXPECT_EQ(rep.inprocess_chunks, 0u);

  // A different master seed keys different chunks: misses again.
  const RunnerOptions reseeded = small_options(24, 777);
  run_trials_sharded(spec, reseeded, sopt, &rep);
  EXPECT_EQ(rep.cache_misses, 5u);
}

TEST(Service, WorkerShardingBitIdenticalAt1_2_4Workers) {
  const TrialSpec spec = small_spec("svc-fleet");
  const RunnerOptions opt = small_options(24);
  const TrialSet base = run_trials(spec, opt);
  const std::string base_trials = render_trial_rows(spec, base);
  const std::string base_aggregate = render_aggregate_rows(spec, base);

  for (const u64 workers : {1u, 2u, 4u}) {
    service::ServiceOptions sopt;
    sopt.workers = workers;
    sopt.cache_dir = fresh_dir("svcw" + std::to_string(workers));
    sopt.chunk_trials = 4;

    service::ServiceReport rep;
    const TrialSet sharded = run_trials_sharded(spec, opt, sopt, &rep);
    expect_sets_identical(base, sharded);
    EXPECT_GE(rep.workers_spawned, 1u) << workers;

    // Sink rows: trial rows byte-identical as-is; aggregate rows
    // byte-identical once the documented wall-clock fields are
    // normalized out.
    EXPECT_EQ(base_trials, render_trial_rows(spec, sharded)) << workers;
    EXPECT_EQ(base_aggregate, render_aggregate_rows(spec, sharded))
        << workers;
  }
}

TEST(Service, SecondInvocationIsAllHitsNoWorkers) {
  const TrialSpec spec = small_spec("svc-rerun");
  const RunnerOptions opt = small_options(20);

  service::ServiceOptions sopt;
  sopt.workers = 2;
  sopt.cache_dir = fresh_dir("svcrerun");
  sopt.chunk_trials = 5;

  service::ServiceReport rep;
  const TrialSet first = run_trials_sharded(spec, opt, sopt, &rep);
  EXPECT_EQ(rep.cache_misses, 4u);

  const TrialSet second = run_trials_sharded(spec, opt, sopt, &rep);
  expect_sets_identical(first, second);
  EXPECT_EQ(rep.cache_hits, 4u);
  EXPECT_EQ(rep.cache_misses, 0u);
  EXPECT_EQ(rep.workers_spawned, 0u);  // nothing left to fan out
}

TEST(Service, StaleChunkIsRecomputed) {
  const TrialSpec spec = small_spec("svc-stale");
  const RunnerOptions opt = small_options(20);

  service::ServiceOptions sopt;
  sopt.workers = 0;
  sopt.cache_dir = fresh_dir("svcstale");
  sopt.chunk_trials = 5;

  service::ServiceReport rep;
  const TrialSet first = run_trials_sharded(spec, opt, sopt, &rep);

  // Corrupt one cached chunk in place (a torn write).
  const std::string chunks_dir = sopt.cache_dir + "/chunks";
  const std::vector<std::string> files = list_dir(chunks_dir);
  ASSERT_EQ(files.size(), 4u);
  write_file_atomic(chunks_dir + "/" + files[0], "poprank-chunk-v1\ntorn");

  const TrialSet second = run_trials_sharded(spec, opt, sopt, &rep);
  expect_sets_identical(first, second);
  EXPECT_EQ(rep.cache_stale, 1u);
  EXPECT_EQ(rep.cache_hits, 3u);
  EXPECT_EQ(rep.inprocess_chunks, 1u);
}

// ---- failure handling ----------------------------------------------------

TEST(Service, CrashedWorkerLeaseExpiresAndRejoinsRecovering) {
  const TrialSpec spec = small_spec("svc-crash");
  const RunnerOptions opt = small_options(24);
  const TrialSet base = run_trials(spec, opt);

  service::ServiceOptions sopt;
  sopt.workers = 2;
  sopt.cache_dir = fresh_dir("svccrash");
  sopt.chunk_trials = 3;
  sopt.lease_timeout_ms = 300;  // fast expiry keeps the test snappy

  // Worker 0 hard-exits right after claiming its first chunk (once; the
  // marker file stops the respawned incarnation from crash-looping).
  ASSERT_EQ(setenv("POPRANK_SERVICE_CRASH_AFTER", "1", 1), 0);
  service::ServiceReport rep;
  const TrialSet sharded = run_trials_sharded(spec, opt, sopt, &rep);
  ASSERT_EQ(unsetenv("POPRANK_SERVICE_CRASH_AFTER"), 0);

  // The kill cost nothing but time: bits identical, the orphaned lease
  // was expired and its chunk reassigned, the dead worker was respawned.
  expect_sets_identical(base, sharded);
  EXPECT_GE(rep.leases_expired, 1u);
  EXPECT_GE(rep.workers_respawned, 1u);

  // The respawned incarnation re-registered through the recovery state.
  const std::vector<std::string> jobs = list_dir(sopt.cache_dir + "/jobs");
  ASSERT_EQ(jobs.size(), 1u);
  const std::string status =
      read_file(sopt.cache_dir + "/jobs/" + jobs[0] + "/workers/w0.status")
          .value_or("");
  EXPECT_NE(status.find("joining"), std::string::npos) << status;
  EXPECT_NE(status.find("recovering"), std::string::npos) << status;
  EXPECT_NE(status.find("offline"), std::string::npos) << status;
}

TEST(Service, WorkerStatusLifecycle) {
  const TrialSpec spec = small_spec("svc-status");
  const RunnerOptions opt = small_options(8);

  service::ServiceOptions sopt;
  sopt.workers = 1;
  sopt.cache_dir = fresh_dir("svcstatus");
  sopt.chunk_trials = 4;

  run_trials_sharded(spec, opt, sopt);
  const std::vector<std::string> jobs = list_dir(sopt.cache_dir + "/jobs");
  ASSERT_EQ(jobs.size(), 1u);
  const std::string status =
      read_file(sopt.cache_dir + "/jobs/" + jobs[0] + "/workers/w0.status")
          .value_or("");
  // Clean lifecycle: joining -> online -> offline, in that order.
  const auto joining = status.find("joining");
  const auto online = status.find("online");
  const auto offline = status.find("offline");
  ASSERT_NE(joining, std::string::npos) << status;
  ASSERT_NE(online, std::string::npos) << status;
  ASSERT_NE(offline, std::string::npos) << status;
  EXPECT_LT(joining, online);
  EXPECT_LT(online, offline);
  EXPECT_EQ(status.find("recovering"), std::string::npos) << status;
}

TEST(Service, NonReplayableSpecFallsBackInProcess) {
  TrialSpec spec;
  spec.label = "svc-fallback";
  spec.factory = [] { return make_protocol("ag", 16); };
  const RunnerOptions opt = small_options(6);
  const TrialSet base = run_trials(spec, opt);

  service::ServiceOptions sopt;
  sopt.workers = 2;
  sopt.cache_dir = fresh_dir("svcfb");

  service::ServiceReport rep;
  const TrialSet fell_back = run_trials_sharded(spec, opt, sopt, &rep);
  expect_records_identical(base.records, fell_back.records);
  EXPECT_TRUE(rep.fallback_in_process);
  EXPECT_EQ(rep.workers_spawned, 0u);
  EXPECT_EQ(rep.chunks, 0u);
}

}  // namespace
}  // namespace pp

int main(int argc, char** argv) {
  // Worker shards are this same binary, re-exec'd by the coordinator:
  // route worker-mode argv to the worker loop before gtest sees it.
  pp::service::maybe_run_worker(argc, argv);
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
