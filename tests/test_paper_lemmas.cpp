// Property tests pinned to specific lemmas and facts of the paper that the
// module-level suites don't already cover:
//
//   * Lemma 2   — configurations become and remain tidy (ring protocol);
//   * Fact 2    — saturating a trap with d gaps consumes ~2d arrivals
//                 (checked as: once saturated, never unsaturated, and the
//                 gap count is non-increasing);
//   * s(C) <= r(C) along entire line-protocol trajectories, with both
//                 hitting 0 exactly at silence (§4.1/§4.2 definitions);
//   * Corollary 1 (Section 7, Chernoff) — randomly distributing S tokens
//                 among M lines loads every line by at most (1+2eta)mu for
//                 mu > ln n, and mu + 2eta ln n otherwise, whp.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/engine.hpp"
#include "core/initial.hpp"
#include "protocols/line_of_traps.hpp"
#include "protocols/ring_of_traps.hpp"
#include "structures/trap.hpp"

namespace pp {
namespace {

bool all_traps_tidy(const RingOfTrapsProtocol& p) {
  for (u64 a = 0; a < p.layout().num_traps(); ++a) {
    if (!trap::is_tidy(p.layout().trap_counts(p.counts(), a))) return false;
  }
  return true;
}

TEST(PaperLemmas, Lemma2TidyOnceTidyForever) {
  for (const u64 seed : {1u, 2u, 3u, 4u, 5u}) {
    RingOfTrapsProtocol p(56);  // m = 7
    Rng rng(seed);
    p.reset(initial::uniform_random(p, rng));
    bool was_tidy = all_traps_tidy(p);
    u64 tidy_from_step = 0, steps = 0;
    RunOptions opt;
    opt.on_change = [&](const Protocol&, u64) {
      ++steps;
      const bool tidy = all_traps_tidy(p);
      if (was_tidy) {
        EXPECT_TRUE(tidy) << "tidiness lost at step " << steps
                          << " (seed " << seed << ")";
      }
      if (tidy && !was_tidy) tidy_from_step = steps;
      was_tidy = tidy;
      return true;
    };
    const RunResult r = run_accelerated(p, rng, opt);
    EXPECT_TRUE(r.valid);
    EXPECT_TRUE(all_traps_tidy(p)) << "final configuration must be tidy";
  }
}

TEST(PaperLemmas, Fact2GapCountNonIncreasingPerTrap) {
  RingOfTrapsProtocol p(72);  // m = 8
  Rng rng(7);
  p.reset(initial::uniform_random(p, rng));
  const u64 traps = p.layout().num_traps();
  std::vector<u64> gaps(traps);
  for (u64 a = 0; a < traps; ++a) {
    gaps[a] = trap::gaps(p.layout().trap_counts(p.counts(), a));
  }
  RunOptions opt;
  opt.on_change = [&](const Protocol&, u64) {
    for (u64 a = 0; a < traps; ++a) {
      const u64 g = trap::gaps(p.layout().trap_counts(p.counts(), a));
      EXPECT_LE(g, gaps[a]) << "gaps reopened in trap " << a;
      gaps[a] = g;
    }
    return true;
  };
  EXPECT_TRUE(run_accelerated(p, rng, opt).valid);
}

TEST(PaperLemmas, SurplusBoundedByExcessAlongLineTrajectories) {
  LineOfTrapsProtocol p(72);
  Rng rng(11);
  p.reset(initial::uniform_random(p, rng));
  u64 checks = 0;
  RunOptions opt;
  opt.on_change = [&](const Protocol&, u64) {
    if (++checks % 32 == 0) {
      const u64 s = p.global_surplus();
      const u64 r = p.global_excess();
      EXPECT_LE(s, r) << "s(C) <= r(C) violated";
    }
    return true;
  };
  const RunResult res = run_accelerated(p, rng, opt);
  EXPECT_TRUE(res.valid);
  EXPECT_EQ(p.global_surplus(), 0u);
  EXPECT_EQ(p.global_excess(), 0u);
  EXPECT_EQ(p.global_deficit(), 0u);
}

TEST(PaperLemmas, SilenceExactlyWhenAllLineMeasuresVanish) {
  LineOfTrapsProtocol p(72);
  Rng rng(13);
  for (int trial = 0; trial < 20; ++trial) {
    p.reset(initial::uniform_random(p, rng));
    const bool measures_zero =
        p.global_excess() == 0 && p.global_deficit() == 0;
    EXPECT_EQ(p.is_silent(), measures_zero);
  }
  // And the genuinely silent configuration:
  p.reset(initial::valid_ranking(p));
  EXPECT_TRUE(p.is_silent());
  EXPECT_EQ(p.global_excess(), 0u);
}

TEST(PaperLemmas, Lemma1TrapWithSurplusReleasesAgents) {
  // An isolated trap whose gate ejects every other agent (the 1-trap
  // single-line protocol: exits are absorbed by X).  Lemma 1: with
  // surplus l > 0 it releases at least floor((l+1)/2) agents in time
  // O(mn) whp, and at least l in O(mn log l).  We assert the release
  // counts under a generous time budget.
  const u64 m = 8;  // inner states
  for (const u64 l : {1u, 3u, 7u}) {
    const u64 agents = (m + 1) + l;  // full trap + surplus l
    SingleLineProtocol p(agents, /*traps=*/1, /*inner=*/m);
    Configuration c;
    c.counts.assign(p.num_states(), 0);
    for (u64 b = 0; b <= m; ++b) c.counts[p.gate(0) + b] = 1;  // full
    c.counts[p.top(0)] += l;  // surplus piled on the top inner state
    p.reset(c);

    Rng rng(100 + l);
    // Budget: 50 * m * agents parallel time, far above the whp bound.
    RunOptions opt;
    opt.max_interactions = 50 * m * agents * agents;
    const RunResult r = run_accelerated(p, rng, opt);
    EXPECT_TRUE(r.silent) << "l=" << l;
    // The trap keeps exactly m+1 agents (Fact 3: full stays full) and
    // releases the entire surplus before silence.
    EXPECT_EQ(p.released(), l) << "l=" << l;
  }
}

TEST(PaperLemmas, Fact3FullTrapKeepsCapacityExactly) {
  // After a full trap with surplus stabilises, each of its m+1 states
  // holds exactly one agent (fully stabilised, §2.1).
  const u64 m = 5, l = 4;
  SingleLineProtocol p((m + 1) + l, 1, m);
  Configuration c;
  c.counts.assign(p.num_states(), 0);
  c.counts[p.gate(0)] = 1 + l;
  for (u64 b = 1; b <= m; ++b) c.counts[p.gate(0) + b] = 1;
  p.reset(c);
  Rng rng(7);
  const RunResult r = run_accelerated(p, rng);
  ASSERT_TRUE(r.silent);
  for (u64 b = 0; b <= m; ++b) {
    EXPECT_EQ(p.counts()[p.gate(0) + b], 1u) << "state " << b;
  }
  EXPECT_EQ(p.released(), l);
}

TEST(PaperLemmas, Corollary1ChernoffTokenDistribution) {
  // Section 7: S tokens thrown uniformly at M lines; with mu = S/M and
  // eta = 2, every line receives at most (1+2eta)mu tokens when mu > ln n,
  // and at most mu + 2eta ln n when mu <= ln n, whp.  We check empirically
  // over many trials and allow zero violations (n here plays the role of
  // the "whp scale"; we use n = S).
  Rng rng(17);
  const double eta = 2.0;
  struct Case {
    u64 tokens, lines;
  };
  for (const Case c : {Case{4096, 64}, Case{4096, 1024}, Case{512, 512}}) {
    const double mu =
        static_cast<double>(c.tokens) / static_cast<double>(c.lines);
    const double ln_n = std::log(static_cast<double>(c.tokens));
    const double bound =
        mu > ln_n ? (1.0 + 2.0 * eta) * mu : mu + 2.0 * eta * ln_n;
    u64 violations = 0;
    for (int trial = 0; trial < 200; ++trial) {
      std::vector<u64> load(c.lines, 0);
      for (u64 t = 0; t < c.tokens; ++t) ++load[rng.below(c.lines)];
      const u64 max_load = *std::max_element(load.begin(), load.end());
      if (static_cast<double>(max_load) > bound) ++violations;
    }
    EXPECT_EQ(violations, 0u)
        << "S=" << c.tokens << " M=" << c.lines << " bound=" << bound;
  }
}

}  // namespace
}  // namespace pp
