// Tests of the perfectly balanced binary tree (§5, Figure 2):
// exact Figure 2 reproduction, structural recursion, level uniformity and
// the h <= 2 log2 n height bound.
#include "structures/balanced_tree.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace pp {
namespace {

TEST(BalancedTree, SingleNode) {
  BalancedTree t(1);
  EXPECT_TRUE(t.is_leaf(0));
  EXPECT_FALSE(t.is_branching(0));
  EXPECT_EQ(t.height(), 0u);
  EXPECT_EQ(t.leaves().size(), 1u);
}

TEST(BalancedTree, TwoNodesFormChain) {
  BalancedTree t(2);
  EXPECT_FALSE(t.is_leaf(0));
  EXPECT_FALSE(t.is_branching(0));  // even size -> non-branching root
  EXPECT_EQ(t.left_child(0), 1u);
  EXPECT_TRUE(t.is_leaf(1));
}

TEST(BalancedTree, ThreeNodesBranch) {
  BalancedTree t(3);
  EXPECT_TRUE(t.is_branching(0));
  EXPECT_EQ(t.left_child(0), 1u);
  EXPECT_EQ(t.right_child(0), 2u);
  EXPECT_TRUE(t.is_leaf(1));
  EXPECT_TRUE(t.is_leaf(2));
}

TEST(BalancedTree, Figure2ExactMatch) {
  // Paper Figure 2, n = 9: root 0 branches to 1 and 5; 1 chains to 2 which
  // branches to 3 and 4; 5 chains to 6 which branches to 7 and 8.
  BalancedTree t(9);
  EXPECT_TRUE(t.is_branching(0));
  EXPECT_EQ(t.left_child(0), 1u);
  EXPECT_EQ(t.right_child(0), 5u);

  EXPECT_FALSE(t.is_branching(1));
  EXPECT_EQ(t.left_child(1), 2u);
  EXPECT_TRUE(t.is_branching(2));
  EXPECT_EQ(t.left_child(2), 3u);
  EXPECT_EQ(t.right_child(2), 4u);
  EXPECT_TRUE(t.is_leaf(3));
  EXPECT_TRUE(t.is_leaf(4));

  EXPECT_FALSE(t.is_branching(5));
  EXPECT_EQ(t.left_child(5), 6u);
  EXPECT_TRUE(t.is_branching(6));
  EXPECT_EQ(t.left_child(6), 7u);
  EXPECT_EQ(t.right_child(6), 8u);
  EXPECT_TRUE(t.is_leaf(7));
  EXPECT_TRUE(t.is_leaf(8));
}

TEST(BalancedTree, ParentPointersAreConsistent) {
  for (const u64 n : {1u, 2u, 5u, 9u, 16u, 100u, 1023u}) {
    BalancedTree t(n);
    EXPECT_EQ(t.parent(0), kNoState);
    for (StateId p = 0; p < n; ++p) {
      if (!t.is_leaf(p)) {
        EXPECT_EQ(t.parent(t.left_child(p)), p);
        if (t.is_branching(p)) {
          EXPECT_EQ(t.parent(t.right_child(p)), p);
        }
      }
    }
  }
}

TEST(BalancedTree, PreOrderNumberingCoversAllStates) {
  // Every node id in [0, n) is reachable exactly once from the root via the
  // child pointers.
  for (const u64 n : {1u, 4u, 9u, 57u, 256u, 1000u}) {
    BalancedTree t(n);
    std::set<StateId> seen;
    std::vector<StateId> stack{0};
    while (!stack.empty()) {
      const StateId p = stack.back();
      stack.pop_back();
      EXPECT_TRUE(seen.insert(p).second) << "node visited twice: " << p;
      if (!t.is_leaf(p)) {
        stack.push_back(t.left_child(p));
        if (t.is_branching(p)) stack.push_back(t.right_child(p));
      }
    }
    EXPECT_EQ(seen.size(), n);
  }
}

TEST(BalancedTree, SubtreeSizesAreConsistent) {
  for (const u64 n : {1u, 9u, 64u, 341u}) {
    BalancedTree t(n);
    EXPECT_EQ(t.subtree_size(0), n);
    for (StateId p = 0; p < n; ++p) {
      if (t.is_leaf(p)) {
        EXPECT_EQ(t.subtree_size(p), 1u);
      } else if (t.is_branching(p)) {
        // Branching children root identical subtrees.
        EXPECT_EQ(t.subtree_size(t.left_child(p)),
                  t.subtree_size(t.right_child(p)));
        EXPECT_EQ(t.subtree_size(p),
                  1 + 2 * t.subtree_size(t.left_child(p)));
      } else {
        EXPECT_EQ(t.subtree_size(p), 1 + t.subtree_size(t.left_child(p)));
      }
    }
  }
}

TEST(BalancedTree, LevelUniformity) {
  // Paper property (1): all nodes at the same level are uniform — same
  // arity and same subtree size.
  for (const u64 n : {9u, 10u, 100u, 777u, 2048u}) {
    BalancedTree t(n);
    std::vector<u64> level_size(t.height() + 1, 0);
    std::vector<i64> level_arity(t.height() + 1, -1);
    std::vector<u64> level_subtree(t.height() + 1, 0);
    for (StateId p = 0; p < n; ++p) {
      const u32 d = t.depth(p);
      const i64 arity = t.is_leaf(p) ? 0 : (t.is_branching(p) ? 2 : 1);
      if (level_arity[d] == -1) {
        level_arity[d] = arity;
        level_subtree[d] = t.subtree_size(p);
      } else {
        EXPECT_EQ(level_arity[d], arity) << "n=" << n << " depth=" << d;
        EXPECT_EQ(level_subtree[d], t.subtree_size(p));
      }
    }
  }
}

TEST(BalancedTree, HeightBound) {
  // Paper property (2): h <= 2 log2 n.
  for (u64 n = 2; n <= 4096; n = n * 2 + (n % 3)) {
    BalancedTree t(n);
    EXPECT_LE(t.height(), 2.0 * std::log2(static_cast<double>(n)) + 1e-9)
        << "n=" << n;
  }
}

TEST(BalancedTree, LeavesAreExactlyChildlessNodes) {
  BalancedTree t(37);
  std::set<StateId> leaf_set(t.leaves().begin(), t.leaves().end());
  for (StateId p = 0; p < 37; ++p) {
    EXPECT_EQ(leaf_set.count(p) == 1, t.is_leaf(p));
  }
}

TEST(BalancedTree, ToStringMentionsAllNodes) {
  BalancedTree t(9);
  const std::string s = t.to_string();
  for (int p = 0; p < 9; ++p) {
    EXPECT_NE(s.find(std::to_string(p)), std::string::npos);
  }
}

}  // namespace
}  // namespace pp
