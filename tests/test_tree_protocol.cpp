// Tests of the O(log n)-extra-states tree protocol (§5): rules R1-R5,
// Lemma 19's perfect dispersion, the reset mechanism, and stabilisation.
#include "protocols/tree_ranking.hpp"

#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "core/initial.hpp"

namespace pp {
namespace {

TEST(Tree, Dimensions) {
  TreeRankingProtocol p(100);
  EXPECT_EQ(p.num_agents(), 100u);
  EXPECT_EQ(p.num_ranks(), 100u);
  EXPECT_EQ(p.num_extra_states(), 2 * p.k());
  EXPECT_GE(p.k(), 2u);
  // O(log n) extra states.
  EXPECT_LE(p.num_extra_states(), 64u);
}

TEST(Tree, ExplicitKIsHonoured) {
  TreeRankingProtocol p(50, 5);
  EXPECT_EQ(p.k(), 5u);
  EXPECT_EQ(p.num_extra_states(), 10u);
  EXPECT_TRUE(p.is_red(1));
  EXPECT_TRUE(p.is_red(5));
  EXPECT_FALSE(p.is_red(6));
  EXPECT_FALSE(p.is_red(10));
}

TEST(Tree, ValidRankingIsSilent) {
  TreeRankingProtocol p(64);
  p.reset(initial::valid_ranking(p));
  EXPECT_TRUE(p.is_silent());
  EXPECT_TRUE(p.is_valid_ranking());
}

TEST(Tree, R1NonBranchingMovesOneAgentDown) {
  TreeRankingProtocol p(4, 2);  // size-4 tree: 0 -> 1 -> 2 -> 3 chain? no:
  // size 4 even: root 0 non-branching, child subtree size 3 at node 1,
  // which branches to 2 and 3.
  Configuration c = initial::valid_ranking(p);
  c.counts[0] = 2;
  c.counts[3] = 0;
  p.reset(c);
  Rng rng(1);
  p.step_productive(rng);
  EXPECT_EQ(p.counts()[0], 1u);
  EXPECT_EQ(p.counts()[1], 2u) << "responder moved to the lone child";
}

TEST(Tree, R1BranchingSplitsBothAgents) {
  TreeRankingProtocol p(3, 2);  // root 0 branches to 1 and 2
  p.reset(initial::all_in_state(p, 0));  // 3 agents at the root
  Rng rng(2);
  p.step_productive(rng);
  EXPECT_EQ(p.counts()[0], 1u);
  EXPECT_EQ(p.counts()[1], 1u);
  EXPECT_EQ(p.counts()[2], 1u);
  EXPECT_TRUE(p.is_valid_ranking());
}

TEST(Tree, R2LeafOverloadRaisesReset) {
  TreeRankingProtocol p(3, 2);
  Configuration c = initial::valid_ranking(p);
  c.counts[1] = 2;  // leaf 1 doubly occupied
  c.counts[2] = 0;
  p.reset(c);
  Rng rng(3);
  p.step_productive(rng);
  EXPECT_EQ(p.counts()[1], 0u);
  EXPECT_EQ(p.counts()[p.x_state(1)], 2u) << "both agents turned red X_1";
}

TEST(Tree, R3BufferPairsClimbTheLine) {
  TreeRankingProtocol p(8, 3);
  Configuration c;
  c.counts.assign(p.num_states(), 0);
  c.counts[p.x_state(2)] = 2;  // two agents in X_2
  c.counts[0] = 6;             // rest at the root (not interacting with X here)
  p.reset(c);
  // Force the buffer-pair interaction via the deterministic cross path.
  // (X_2, X_2): min = 2 < 2k -> both to X_3.
  Rng rng(4);
  bool stepped = false;
  for (int tries = 0; tries < 1000 && !stepped; ++tries) {
    TreeRankingProtocol q(8, 3);
    q.reset(c);
    Rng r2(static_cast<u64>(tries));
    q.step_productive(r2);
    if (q.counts()[q.x_state(3)] == 2) stepped = true;
  }
  EXPECT_TRUE(stepped);
}

TEST(Tree, R5TopOfLineReturnsToRoot) {
  TreeRankingProtocol p(8, 2);  // 2k = 4
  Configuration c;
  c.counts.assign(p.num_states(), 0);
  c.counts[p.x_state(4)] = 2;  // two agents at X_2k
  c.counts[5] = 6;             // park the rest on a single rank state
  p.reset(c);
  // Keep stepping until the X_2k pair interacts (other productive pairs
  // exist: rank collisions and (X, rank) pairs).
  Rng rng(5);
  for (int steps = 0; steps < 10000; ++steps) {
    if (p.counts()[p.x_state(4)] == 0) break;
    if (p.is_silent()) break;
    p.step_productive(rng);
  }
  EXPECT_EQ(p.counts()[p.x_state(4)], 0u) << "X_2k pair eventually fires";
}

TEST(Tree, R4RedResetsTreeAgent) {
  TreeRankingProtocol p(6, 2);
  Configuration c;
  c.counts.assign(p.num_states(), 0);
  c.counts[p.x_state(1)] = 1;  // one red agent
  c.counts[3] = 5;             // five agents on one rank state
  p.reset(c);
  Rng rng(6);
  // First productive step could be a rank collision or the red unload; run
  // until the red state grows (it must: red + tree -> X_1 + X_1).
  for (int steps = 0; steps < 10000; ++steps) {
    if (p.counts()[p.x_state(1)] >= 2) break;
    PP_ASSERT(!p.is_silent());
    p.step_productive(rng);
  }
  EXPECT_GE(p.counts()[p.x_state(1)], 2u);
}

TEST(Tree, Lemma19AllAtRootDispersesPerfectlyWithoutReset) {
  for (const u64 n : {2u, 3u, 9u, 16u, 57u, 128u}) {
    TreeRankingProtocol p(n);
    p.reset(initial::all_in_state(p, 0));
    Rng rng(n);
    bool buffer_touched = false;
    RunOptions opt;
    opt.on_change = [&](const Protocol& prot, u64) {
      for (u64 i = 1; i <= 2 * p.k(); ++i) {
        if (prot.counts()[p.x_state(i)] != 0) buffer_touched = true;
      }
      return true;
    };
    const RunResult r = run_accelerated(p, rng, opt);
    EXPECT_TRUE(r.valid) << "n=" << n;
    EXPECT_FALSE(buffer_touched)
        << "perfect pour from the root must never trigger a reset, n=" << n;
  }
}

TEST(Tree, StabilisesFromAllOnALeaf) {
  TreeRankingProtocol p(33);
  const StateId leaf = p.tree().leaves().back();
  p.reset(initial::all_in_state(p, leaf));
  Rng rng(7);
  const RunResult r = run_accelerated(p, rng);
  EXPECT_TRUE(r.silent);
  EXPECT_TRUE(r.valid);
}

TEST(Tree, StabilisesFromAllInRedBuffer) {
  TreeRankingProtocol p(40);
  p.reset(initial::all_in_state(p, p.x_state(1)));
  Rng rng(8);
  EXPECT_TRUE(run_accelerated(p, rng).valid);
}

TEST(Tree, StabilisesFromAllInGreenBuffer) {
  TreeRankingProtocol p(40);
  p.reset(initial::all_in_state(p, p.x_state(2 * p.k())));
  Rng rng(9);
  EXPECT_TRUE(run_accelerated(p, rng).valid);
}

TEST(Tree, StabilisesFromUniformRandomOverAllStates) {
  for (const u64 seed : {1u, 2u, 3u, 4u, 5u}) {
    TreeRankingProtocol p(60);
    Rng rng(seed);
    p.reset(initial::uniform_random(p, rng));
    EXPECT_TRUE(run_accelerated(p, rng).valid) << "seed=" << seed;
  }
}

// --- the modified protocol (proof of Theorem 3, §5.2) -------------------

TEST(TreeModified, AllBufferStatesActGreen) {
  TreeRankingProtocol p(9, 3, TreeRankingProtocol::ResetMode::kModified);
  EXPECT_EQ(p.name(), "tree-ranking-modified");
  for (u64 i = 1; i <= 6; ++i) EXPECT_FALSE(p.is_red(i));
  // R4 always re-seeds the root: X_1 + j -> 0 + j.
  const auto [o1, o2] = p.transition(p.x_state(1), 3);
  EXPECT_EQ(o1, 0u);
  EXPECT_EQ(o2, 3u);
}

TEST(TreeModified, BalancedStartStabilisesLikeStandard) {
  // From the balanced all-at-root configuration the modified protocol
  // behaves exactly like the standard one (the reset never fires anyway).
  TreeRankingProtocol p(57, 0, TreeRankingProtocol::ResetMode::kModified);
  p.reset(initial::all_in_state(p, 0));
  Rng rng(41);
  const RunResult r = run_accelerated(p, rng);
  EXPECT_TRUE(r.silent);
  EXPECT_TRUE(r.valid);
}

TEST(TreeModified, LivelocksWithoutResetFromUnbalancedStart) {
  // n = 3 (root branching to leaves 1 and 2) started as {0, 2, 1}: the
  // leaf pair recycles through the buffer and the root re-splits it onto
  // the occupied leaf, forever.  Without the red reset the protocol can
  // never silence from here — the paper's reason for the reset mechanism.
  TreeRankingProtocol p(3, 2, TreeRankingProtocol::ResetMode::kModified);
  Configuration c;
  c.counts.assign(p.num_states(), 0);
  c.counts[1] = 2;
  c.counts[2] = 1;
  p.reset(c);
  Rng rng(42);
  RunOptions opt;
  opt.max_interactions = 200000;
  const RunResult r = run_accelerated(p, rng, opt);
  EXPECT_FALSE(r.silent) << "modified protocol must livelock here";

  // The standard protocol stabilises from the same start.
  TreeRankingProtocol std_p(3, 2);
  std_p.reset(c);
  const RunResult std_r = run_accelerated(std_p, rng);
  EXPECT_TRUE(std_r.valid);
}

TEST(Tree, DescribeStateDistinguishesKinds) {
  TreeRankingProtocol p(9, 3);
  EXPECT_NE(p.describe_state(0).find("branching"), std::string::npos);
  EXPECT_NE(p.describe_state(3).find("leaf"), std::string::npos);
  EXPECT_NE(p.describe_state(p.x_state(1)).find("red"), std::string::npos);
  EXPECT_NE(p.describe_state(p.x_state(6)).find("green"), std::string::npos);
}

}  // namespace
}  // namespace pp
