// Integration tests: the experiment harness end-to-end (factories,
// generators, seeding discipline, censoring) and cross-protocol
// comparisons that the benches rely on.
#include <gtest/gtest.h>

#include "analysis/experiment.hpp"
#include "analysis/fit.hpp"
#include "core/initial.hpp"
#include "protocols/factory.hpp"

namespace pp {
namespace {

TEST(Experiment, MeasureRunsRequestedTrials) {
  MeasureOptions opt;
  opt.trials = 4;
  opt.label = "integration-measure";
  const Measurement m = measure(
      [] { return make_protocol("ag", 24); }, gen_uniform_random(), opt);
  EXPECT_EQ(m.parallel_times.size(), 4u);
  EXPECT_EQ(m.timeouts, 0u);
  EXPECT_EQ(m.invalid, 0u);
  for (const double t : m.parallel_times) EXPECT_GT(t, 0.0);
}

TEST(Experiment, MeasureIsReproducibleForSameSeed) {
  MeasureOptions opt;
  opt.trials = 3;
  opt.label = "integration-repro";
  opt.root_seed = 42;
  const auto run = [&] {
    return measure([] { return make_protocol("ring-of-traps", 30); },
                   gen_uniform_random(), opt)
        .parallel_times;
  };
  EXPECT_EQ(run(), run());
}

TEST(Experiment, DifferentLabelsGiveDifferentStreams) {
  MeasureOptions a;
  a.trials = 3;
  a.label = "stream-a";
  MeasureOptions b = a;
  b.label = "stream-b";
  const auto factory = [] { return make_protocol("ag", 24); };
  EXPECT_NE(measure(factory, gen_uniform_random(), a).parallel_times,
            measure(factory, gen_uniform_random(), b).parallel_times);
}

TEST(Experiment, TimeoutsAreCountedAndCensored) {
  MeasureOptions opt;
  opt.trials = 3;
  opt.label = "integration-timeout";
  opt.max_interactions = 50;  // far too small for n = 64 from chaos
  const Measurement m = measure(
      [] { return make_protocol("ag", 64); }, gen_all_in_state(0), opt);
  EXPECT_EQ(m.timeouts, 3u);
  for (const double t : m.parallel_times) {
    EXPECT_DOUBLE_EQ(t, 50.0 / 64.0);
  }
}

TEST(Experiment, KDistantGeneratorPluggedIn) {
  MeasureOptions opt;
  opt.trials = 3;
  opt.label = "integration-kdistant";
  const Measurement m =
      measure([] { return make_protocol("ring-of-traps", 56); },
              gen_k_distant(2), opt);
  EXPECT_EQ(m.timeouts, 0u);
}

// The headline comparison the paper motivates: with O(log n) extra states
// the tree protocol beats the quadratic baseline comfortably even at
// moderate n.
TEST(Integration, TreeBeatsAgAtModerateSize) {
  MeasureOptions opt;
  opt.trials = 5;
  opt.label = "integration-tree-vs-ag";
  const u64 n = 256;
  const Measurement ag = measure(
      [n] { return make_protocol("ag", n); }, gen_uniform_random(), opt);
  const Measurement tree =
      measure([n] { return make_protocol("tree-ranking", n); },
              gen_uniform_random(), opt);
  EXPECT_LT(tree.summary().mean * 2, ag.summary().mean)
      << "tree=" << tree.summary().mean << " ag=" << ag.summary().mean;
}

// Ring beats AG when k is small (Theorem 1's regime k = o(sqrt n)).
TEST(Integration, RingBeatsAgForSmallK) {
  MeasureOptions opt;
  opt.trials = 5;
  opt.label = "integration-ring-vs-ag";
  const u64 n = 210;  // 14 * 15
  const Measurement ring =
      measure([n] { return make_protocol("ring-of-traps", n); },
              gen_k_distant(1), opt);
  const Measurement ag =
      measure([n] { return make_protocol("ag", n); }, gen_k_distant(1), opt);
  EXPECT_LT(ring.summary().mean, ag.summary().mean)
      << "ring=" << ring.summary().mean << " ag=" << ag.summary().mean;
}

// Sanity on the fitting pipeline over real measurements: AG's exponent over
// a small dyadic sweep should land near 2.
TEST(Integration, AgExponentRoughlyQuadratic) {
  std::vector<double> xs, ys;
  for (const u64 n : {32u, 64u, 128u}) {
    MeasureOptions opt;
    opt.trials = 4;
    opt.label = "integration-ag-exponent";
    const Measurement m = measure(
        [n] { return make_protocol("ag", n); }, gen_uniform_random(), opt);
    xs.push_back(static_cast<double>(n));
    ys.push_back(m.summary().mean);
  }
  const PowerFit f = fit_power(xs, ys);
  EXPECT_GT(f.exponent, 1.5);
  EXPECT_LT(f.exponent, 2.5);
}

}  // namespace
}  // namespace pp
