// Unit tests for the ASCII/CSV table writer.
#include "analysis/table.hpp"

#include <gtest/gtest.h>

#include <fstream>

namespace pp {
namespace {

TEST(Table, RendersHeadersAndRows) {
  Table t("demo");
  t.headers({"n", "time"});
  t.row().cell(static_cast<u64>(64)).cell(12.5);
  t.row().cell(static_cast<u64>(128)).cell(50.0);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("demo"), std::string::npos);
  EXPECT_NE(s.find("n"), std::string::npos);
  EXPECT_NE(s.find("12.5"), std::string::npos);
  EXPECT_NE(s.find("128"), std::string::npos);
}

TEST(Table, CsvHasOneLinePerRowPlusHeader) {
  Table t("x");
  t.headers({"a", "b"});
  t.row().cell(static_cast<u64>(1)).cell(static_cast<u64>(2));
  t.row().cell(static_cast<u64>(3)).cell(static_cast<u64>(4));
  const std::string csv = t.to_csv();
  EXPECT_EQ(csv, "a,b\n1,2\n3,4\n");
}

TEST(Table, DoublePrecisionControl) {
  Table t("p");
  t.headers({"v"});
  t.row().cell(3.14159265, 3);
  EXPECT_NE(t.to_csv().find("3.14"), std::string::npos);
}

TEST(Table, PrintWritesCsvFile) {
  Table t("csv smoke test");
  t.headers({"a"});
  t.row().cell(static_cast<u64>(42));
  const std::string dir = ::testing::TempDir();
  t.print(dir);
  std::ifstream f(dir + "/csv-smoke-test.csv");
  ASSERT_TRUE(f.good());
  std::string header, row;
  std::getline(f, header);
  std::getline(f, row);
  EXPECT_EQ(header, "a");
  EXPECT_EQ(row, "42");
}

TEST(Slugify, Basic) {
  EXPECT_EQ(slugify("Hello World"), "hello-world");
  EXPECT_EQ(slugify("E1: AG scaling (n^2)"), "e1-ag-scaling-n-2");
  EXPECT_EQ(slugify("---"), "");
}

}  // namespace
}  // namespace pp
