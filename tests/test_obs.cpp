// Tests for the observability layer (src/obs/): deterministic counter
// merges, span nesting/closing under early aborts, Chrome trace JSON
// structure, provenance manifests that replay bit-for-bit, the
// generalized fault_events accounting, and the heartbeat/stall watchdog.
//
// Everything that needs the compiled-in hooks is skipped (not silently
// passed) when the suite is built with -DPOPRANK_OBS=OFF; the determinism
// and replay tests run in both configurations — they are exactly the
// claims the OFF build must also honour.
#include "obs/counters.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/initial.hpp"
#include "obs/provenance.hpp"
#include "obs/trace.hpp"
#include "obs/watchdog.hpp"
#include "protocols/factory.hpp"
#include "runner/runner.hpp"
#include "runner/seed_stream.hpp"
#include "runner/sink.hpp"

namespace pp {
namespace {

using obs::Counter;
using obs::CounterBlock;
using obs::Sketch;

// A spec that exercises counters from several subsystems: churn faults,
// uniform stepping, and the clean accelerated tail (null skips).
TrialSpec churn_spec(u64 n = 64) {
  TrialSpec spec;
  spec.protocol = "ag";
  spec.n = n;
  spec.label = "test-obs-churn";
  spec.engine = EngineKind::kScheduled;
  spec.scheduler.kind = SchedulerKind::kChurn;
  spec.scheduler.churn_rate = 0.05;
  spec.scheduler.churn_active = 5 * n;
  return spec;
}

TrialSpec partition_spec(u64 n = 64) {
  TrialSpec spec;
  spec.protocol = "ag";
  spec.n = n;
  spec.label = "test-obs-partition";
  spec.engine = EngineKind::kScheduled;
  spec.scheduler.kind = SchedulerKind::kPartition;
  spec.scheduler.partition_blocks = 2;
  spec.scheduler.partition_cycles = 3;
  return spec;
}

bool records_equal(const std::vector<TrialRecord>& a,
                   const std::vector<TrialRecord>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].trial != b[i].trial || a[i].seed != b[i].seed ||
        a[i].interactions != b[i].interactions ||
        a[i].productive_steps != b[i].productive_steps ||
        a[i].fault_events != b[i].fault_events ||
        a[i].parallel_time != b[i].parallel_time ||
        a[i].silent != b[i].silent || a[i].valid != b[i].valid) {
      return false;
    }
  }
  return true;
}

// ---- counter registry ----------------------------------------------------

TEST(ObsCounters, SketchBucketsAreBitWidth) {
  EXPECT_EQ(obs::sketch_bucket(0), 0u);
  EXPECT_EQ(obs::sketch_bucket(1), 1u);
  EXPECT_EQ(obs::sketch_bucket(2), 2u);
  EXPECT_EQ(obs::sketch_bucket(3), 2u);
  EXPECT_EQ(obs::sketch_bucket(4), 3u);
  EXPECT_EQ(obs::sketch_bucket(1024), 11u);
  EXPECT_EQ(obs::sketch_bucket(~static_cast<u64>(0)), 64u);
}

TEST(ObsCounters, NamesAreUniqueSnakeCase) {
  std::set<std::string> names;
  for (u32 c = 0; c < obs::kNumCounters; ++c) {
    const std::string name = obs::counter_name(static_cast<Counter>(c));
    EXPECT_TRUE(names.insert(name).second) << "duplicate " << name;
    for (const char ch : name) {
      EXPECT_TRUE((ch >= 'a' && ch <= 'z') || ch == '_') << name;
    }
  }
  for (u32 s = 0; s < obs::kNumSketches; ++s) {
    const std::string name = obs::sketch_name(static_cast<Sketch>(s));
    EXPECT_TRUE(names.insert(name).second) << "duplicate " << name;
  }
}

TEST(ObsCounters, MergeSumsAndDeterministicEqualIgnoresWall) {
  CounterBlock a, b;
  a.counter[0] = 3;
  a.sketch[0][5] = 2;
  a.wall_us = 100;
  b.counter[0] = 4;
  b.sketch[0][5] = 1;
  b.wall_us = 999;
  a.merge(b);
  EXPECT_EQ(a.counter[0], 7u);
  EXPECT_EQ(a.sketch[0][5], 3u);
  EXPECT_EQ(a.wall_us, 1099u);

  CounterBlock c = a;
  c.wall_us = 0;
  EXPECT_TRUE(CounterBlock::deterministic_equal(a, c));
  c.counter[0] = 8;
  EXPECT_FALSE(CounterBlock::deterministic_equal(a, c));
  EXPECT_FALSE(a.deterministic_empty());
  EXPECT_TRUE(CounterBlock{}.deterministic_empty());
}

TEST(ObsCounters, ToJsonShapeAndNames) {
  CounterBlock b;
  b.counter[static_cast<u32>(Counter::kNullSkips)] = 41;
  b.sketch[static_cast<u32>(Sketch::kNullSkipGap)][3] = 7;
  b.wall_us = 5;
  const std::string json = b.to_json();
  EXPECT_NE(json.find("\"null_skips\":41"), std::string::npos) << json;
  EXPECT_NE(json.find("\"null_skip_gap\":{\"count\":7,\"buckets\":{\"3\":7}}"),
            std::string::npos)
      << json;
  EXPECT_EQ(json.find("wall_us"), std::string::npos) << json;
  EXPECT_NE(b.to_json(/*include_wall=*/true).find("\"wall_us\":5"),
            std::string::npos);
}

// The headline determinism claim: merged counters are bit-identical for
// every thread count, because blocks are per-trial and merged in trial
// order.  Holds vacuously (all empty) when POPRANK_OBS=OFF — asserted
// too, since that is the OFF build's half of the contract.
TEST(ObsCounters, MergedCountersAreThreadCountIndependent) {
  RunnerOptions opt;
  opt.trials = 24;
  opt.threads = 1;
  const TrialSet base = run_trials(churn_spec(), opt);
#if PP_OBS
  EXPECT_FALSE(base.counters.deterministic_empty());
  EXPECT_GT(base.counters.get(Counter::kFaultEvents), 0u);
  EXPECT_GT(base.counters.get(Counter::kNullSkips), 0u);
  EXPECT_GT(base.counters.sketch_count(Sketch::kNullSkipGap), 0u);
#else
  EXPECT_TRUE(base.counters.deterministic_empty());
#endif
  for (const u64 threads : {2u, 8u}) {
    opt.threads = threads;
    const TrialSet set = run_trials(churn_spec(), opt);
    EXPECT_TRUE(records_equal(base.records, set.records)) << threads;
    EXPECT_TRUE(CounterBlock::deterministic_equal(base.counters, set.counters))
        << threads << " threads";
  }
}

// Counters must never perturb a trajectory: records with counters armed
// equal records from the plain single-trial path (no block installed).
TEST(ObsCounters, CountersDoNotPerturbTrajectories) {
  RunnerOptions opt;
  opt.trials = 8;
  opt.threads = 2;
  const TrialSpec spec = churn_spec();
  const TrialSet set = run_trials(spec, opt);
  const SeedStream seeds(opt.master_seed, spec.label);
  for (u64 t = 0; t < opt.trials; ++t) {
    const TrialRecord solo = run_one_trial(spec, t, seeds.trial_seed(t));
    EXPECT_EQ(solo.interactions, set.records[t].interactions) << t;
    EXPECT_EQ(solo.productive_steps, set.records[t].productive_steps) << t;
    EXPECT_EQ(solo.fault_events, set.records[t].fault_events) << t;
  }
}

// ---- generalized fault_events (partition split/heal) ---------------------

TEST(ObsFaults, PartitionCountsSplitHealTransitions) {
  RunnerOptions opt;
  opt.trials = 6;
  const TrialSet set = run_trials(partition_spec(), opt);
  // Every trial injects at least the first split; a full run injects
  // 2 * cycles transitions.
  EXPECT_GE(set.stats.fault_events, opt.trials);
  EXPECT_LE(set.stats.fault_events,
            2 * partition_spec().scheduler.partition_cycles * opt.trials);
  for (const TrialRecord& r : set.records) EXPECT_GE(r.fault_events, 1u);
}

TEST(ObsFaults, AggregateFaultEventsFoldsAndReachesSinks) {
  RunnerOptions opt;
  opt.trials = 4;
  const TrialSet set = run_trials(partition_spec(), opt);
  u64 sum = 0;
  for (const TrialRecord& r : set.records) sum += r.fault_events;
  EXPECT_EQ(set.stats.fault_events, sum);

  std::ostringstream json;
  JsonlSink(json).write_aggregate(partition_spec(), set);
  EXPECT_NE(json.str().find("\"fault_events\":" + std::to_string(sum)),
            std::string::npos)
      << json.str();
  std::ostringstream csv;
  CsvSink(csv).write_aggregate(partition_spec(), set);
  EXPECT_NE(csv.str().find(",fault_events,"), std::string::npos);
}

// ---- span tracing --------------------------------------------------------

#if PP_OBS

TEST(ObsTrace, SpansNestAndCloseUnderEarlyAbort) {
  obs::TraceSession session;
  {
    obs::ScopedTraceSession install(&session);
    // Runner path with the budget cut almost immediately.
    TrialSpec aborting = churn_spec(32);
    aborting.max_interactions = 16;
    RunnerOptions opt;
    opt.trials = 3;
    opt.threads = 2;
    (void)run_trials(aborting, opt);
    // Engine path under an observer abort, inside a live span.
    {
      obs::ScopedSpan span("observer-abort");
      ProtocolPtr p = make_protocol("ag", 32);
      Rng rng(3);
      p->reset(initial::uniform_random(*p, rng));
      RunOptions ro;
      ro.on_change = [](const Protocol&, u64) { return false; };
      const RunResult r = run_accelerated(*p, rng, ro);
      EXPECT_TRUE(r.aborted);
    }
  }
  // Every span closed: no thread has a live frame left.
  for (const obs::SpanStackSnapshot& s : obs::live_span_stacks()) {
    EXPECT_TRUE(s.frames.empty()) << "thread " << s.tid << " leaked a span";
  }
  u64 setup = 0, run = 0, abort_span = 0;
  for (const obs::TraceEvent& e : session.events()) {
    if (e.name == "trial-setup") ++setup;
    if (e.name == "scheduler-run") ++run;
    if (e.name == "observer-abort") ++abort_span;
    EXPECT_EQ(e.phase, 'X');
  }
  EXPECT_EQ(setup, 3u);
  EXPECT_EQ(run, 3u);
  EXPECT_EQ(abort_span, 1u);
}

TEST(ObsTrace, StepTraceRecordsInstantEventsForFlaggedTrialOnly) {
  obs::TraceSession session;
  {
    obs::ScopedTraceSession install(&session);
    obs::set_step_trace(true);
    obs::trace_step(123);
    obs::set_step_trace(false);
    obs::trace_step(456);  // not recorded: flag off
  }
  const auto events = session.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "productive-step");
  EXPECT_EQ(events[0].phase, 'i');
  EXPECT_NE(events[0].args.find("\"interactions\":123"), std::string::npos);
}

// Minimal structural JSON check: balanced braces/brackets outside strings,
// and the document carries the Chrome trace_event framing.
void expect_wellformed_trace_json(const std::string& json) {
  i64 depth = 0;
  bool in_string = false;
  for (size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_FALSE(in_string);
  EXPECT_EQ(depth, 0);
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u) << json.substr(0, 40);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
}

TEST(ObsTrace, TraceJsonRoundTripsThroughMinimalParser) {
  obs::TraceSession session;
  {
    obs::ScopedTraceSession install(&session);
    obs::ScopedSpan outer("outer", "\"k\":1");
    {
      obs::ScopedSpan inner("inner");
    }
    obs::trace_instant("mark", "\"weird\":\"quote \\\" and \\\\ slash\"");
  }
  const std::string json = session.to_json();
  expect_wellformed_trace_json(json);
  // Complete events carry durations; instants carry thread scope.
  EXPECT_NE(json.find("\"name\":\"inner\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"s\":\"t\""), std::string::npos);
  EXPECT_NE(json.find("\"dropped_events\":0"), std::string::npos);
}

TEST(ObsTrace, SessionCapDropsInsteadOfGrowing) {
  obs::TraceSession session(/*max_events=*/4);
  for (int i = 0; i < 10; ++i) {
    obs::TraceEvent e;
    e.name = "e";
    session.record(std::move(e));
  }
  EXPECT_EQ(session.events().size(), 4u);
  EXPECT_EQ(session.dropped(), 6u);
  EXPECT_NE(session.to_json().find("\"dropped_events\":6"), std::string::npos);
}

#endif  // PP_OBS

// ---- provenance ----------------------------------------------------------

TEST(ObsProvenance, SpecKvRoundTripsForEveryRegisteredScheduler) {
  for (const SchedulerSpec& sched : all_scheduler_specs()) {
    TrialSpec spec;
    spec.protocol = "ag";
    spec.n = 48;
    spec.label = "test-obs-roundtrip";
    spec.engine = EngineKind::kScheduled;
    spec.scheduler = sched;
    const std::string kv = obs::spec_to_kv(spec);
    EXPECT_TRUE(obs::spec_is_replayable(spec)) << kv;
    const TrialSpec back = obs::spec_from_kv(kv);
    EXPECT_EQ(obs::spec_to_kv(back), kv) << sched.to_string();
    EXPECT_EQ(obs::spec_hash(back), obs::spec_hash(spec));
  }
}

TEST(ObsProvenance, CustomFactoriesAndInitsAreHonestlyNonReplayable) {
  TrialSpec spec;
  spec.protocol = "ag";
  spec.n = 16;
  spec.factory = [] { return make_protocol("ag", 16); };
  EXPECT_FALSE(obs::spec_is_replayable(spec));
  TrialSpec spec2;
  spec2.protocol = "ag";
  spec2.n = 16;
  spec2.init = [](const Protocol& p, Rng& rng) {
    return initial::uniform_random(p, rng);
  };
  EXPECT_FALSE(obs::spec_is_replayable(spec2));
  // The *named* uniform-random generator is recognised.
  spec2.init = gen_uniform_random();
  EXPECT_TRUE(obs::spec_is_replayable(spec2));
}

TEST(ObsProvenance, ManifestFieldExtraction) {
  const std::string line =
      "{\"kind\":\"point\",\"label\":\"a b\",\"n\":64,\"replayable\":true,"
      "\"spec\":\"protocol=ag;n=64;\"}";
  EXPECT_EQ(obs::manifest_field(line, "kind"), "point");
  EXPECT_EQ(obs::manifest_field(line, "label"), "a b");
  EXPECT_EQ(obs::manifest_field(line, "n"), "64");
  EXPECT_EQ(obs::manifest_field(line, "replayable"), "true");
  EXPECT_EQ(obs::manifest_field(line, "spec"), "protocol=ag;n=64;");
  EXPECT_EQ(obs::manifest_field(line, "absent"), "");
}

TEST(ObsProvenance, Fnv1a64MatchesReferenceVectors) {
  // Standard FNV-1a test vectors (so the python checker can cross-check).
  EXPECT_EQ(obs::fnv1a64(""), 14695981039346656037ull);
  EXPECT_EQ(obs::fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(obs::fnv1a64("foobar"), 0x85944171f73967e8ull);
}

// The headline provenance claim: a sink's manifest sidecar alone is
// enough to reproduce the artifact's records bit for bit.
TEST(ObsProvenance, ManifestReplaysRunBitForBit) {
  const std::string path = ::testing::TempDir() + "obs_replay.jsonl";
  TrialSpec spec = churn_spec(48);
  spec.init = gen_uniform_random();
  RunnerOptions opt;
  opt.trials = 5;
  opt.master_seed = 0xfeedbeef;
  const TrialSet set = run_trials(spec, opt);
  {
    JsonlSink sink(path);
    sink.write_trials(spec, set);
  }

  // Read the sidecar back; find the point line.
  std::ifstream manifest(path + ".manifest.json");
  ASSERT_TRUE(manifest.good());
  std::string line, point_line, header_line;
  while (std::getline(manifest, line)) {
    if (obs::manifest_field(line, "kind") == "manifest") header_line = line;
    if (obs::manifest_field(line, "kind") == "point") point_line = line;
  }
  ASSERT_FALSE(header_line.empty());
  ASSERT_FALSE(point_line.empty());
  EXPECT_EQ(obs::manifest_field(point_line, "spec_hash"),
            obs::spec_hash(spec));

  // Replay purely from the manifest record.
  const obs::ReplayPoint rp = obs::parse_manifest_point(point_line);
  EXPECT_EQ(rp.master_seed, opt.master_seed);
  EXPECT_EQ(rp.trials, opt.trials);
  RunnerOptions replay_opt;
  replay_opt.trials = rp.trials;
  replay_opt.master_seed = rp.master_seed;
  replay_opt.threads = 2;  // determinism claim: thread count is free
  const TrialSet replay = run_trials(rp.spec, replay_opt);
  EXPECT_TRUE(records_equal(set.records, replay.records));
  EXPECT_TRUE(
      CounterBlock::deterministic_equal(set.counters, replay.counters));
}

TEST(ObsProvenance, BuildInfoIsStamped) {
  const obs::BuildInfo b = obs::build_info();
  EXPECT_NE(std::string(b.git_sha), "");
  EXPECT_NE(std::string(b.build_type), "");
  EXPECT_EQ(b.obs_enabled, PP_OBS != 0);
}

// ---- watchdog ------------------------------------------------------------

TEST(ObsWatchdog, DisabledMonitorStartsNoThread) {
  obs::WatchdogOptions opt;  // both deadlines zero
  obs::ProgressMonitor monitor(opt);
  EXPECT_FALSE(monitor.enabled());
  monitor.trial_started(0);
  monitor.trial_finished(0, 10);  // cheap no-ops, must not crash
}

TEST(ObsWatchdog, HeartbeatAndStallDumpFire) {
  obs::WatchdogOptions opt;
  opt.heartbeat_seconds = 0.01;
  opt.stall_seconds = 0.02;
  opt.abort_on_stall = false;  // observe the dump instead of dying
  opt.label = "test-obs-watchdog";
  opt.total_trials = 2;
  obs::ProgressMonitor monitor(opt);
  EXPECT_TRUE(monitor.enabled());
  monitor.trial_started(0);
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  monitor.force_tick();
  EXPECT_GE(monitor.heartbeats(), 1u);
  EXPECT_EQ(monitor.stall_dumps(), 1u);
  // A stalled trial dumps once, not once per scan.
  monitor.force_tick();
  EXPECT_EQ(monitor.stall_dumps(), 1u);
  monitor.trial_finished(0, 100);
  monitor.trial_started(1);
  monitor.force_tick();
  EXPECT_EQ(monitor.stall_dumps(), 1u) << "fresh trial is not stalled";
}

}  // namespace
}  // namespace pp
