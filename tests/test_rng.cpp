// Unit tests for the RNG stack: determinism, uniformity, geometric
// skipping, pair sampling, distinct sampling.
#include "rng/random.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "rng/seed_sequence.hpp"
#include "rng/splitmix64.hpp"

namespace pp {
namespace {

TEST(SplitMix64, KnownSequenceIsDeterministic) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiffer) {
  EXPECT_NE(SplitMix64(1).next(), SplitMix64(2).next());
}

TEST(Rng, DeterministicForSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.bits(), b.bits());
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(1);
  for (const u64 bound : {1u, 2u, 3u, 10u, 1000u}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowIsApproximatelyUniform) {
  Rng rng(5);
  const u64 kBuckets = 10;
  const int kDraws = 200000;
  std::vector<int> hits(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) ++hits[rng.below(kBuckets)];
  for (const int h : hits) {
    EXPECT_NEAR(static_cast<double>(h) / kDraws, 0.1, 0.01);
  }
}

TEST(Rng, RangeInclusive) {
  Rng rng(2);
  std::set<u64> seen;
  for (int i = 0; i < 1000; ++i) {
    const u64 v = rng.range(5, 8);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 8u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);  // all of 5..8 hit in 1000 draws
}

TEST(Rng, Real01InHalfOpenInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.real01();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, Real01OpenLeftNeverZero) {
  Rng rng(4);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.real01_open_left();
    EXPECT_GT(x, 0.0);
    EXPECT_LE(x, 1.0);
  }
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(6);
  EXPECT_FALSE(rng.bernoulli(0.0));
  EXPECT_TRUE(rng.bernoulli(1.0));
  EXPECT_FALSE(rng.bernoulli(-0.5));
  EXPECT_TRUE(rng.bernoulli(1.5));
}

TEST(Rng, GeometricFailuresEdgeCases) {
  Rng rng(8);
  EXPECT_EQ(rng.geometric_failures(1.0), 0u);
  EXPECT_EQ(rng.geometric_failures(0.0), Rng::kGeometricInfinity);
  EXPECT_EQ(rng.geometric_failures(2.0), 0u);
}

TEST(Rng, GeometricFailuresMeanMatchesTheory) {
  // E[failures] = (1-p)/p.
  Rng rng(11);
  for (const double p : {0.5, 0.1, 0.01}) {
    const int kDraws = 100000;
    double sum = 0;
    for (int i = 0; i < kDraws; ++i) {
      sum += static_cast<double>(rng.geometric_failures(p));
    }
    const double expect = (1.0 - p) / p;
    const double got = sum / kDraws;
    EXPECT_NEAR(got, expect, expect * 0.05 + 0.02) << "p=" << p;
  }
}

TEST(Rng, GeometricFailuresTinyProbabilityHasFiniteHugeMean) {
  Rng rng(12);
  const double p = 1e-9;
  double sum = 0;
  const int kDraws = 200;
  for (int i = 0; i < kDraws; ++i) {
    const u64 f = rng.geometric_failures(p);
    ASSERT_NE(f, Rng::kGeometricInfinity);
    sum += static_cast<double>(f);
  }
  const double mean = sum / kDraws;
  EXPECT_GT(mean, 1e8);  // should be around 1e9
  EXPECT_LT(mean, 1e10);
}

TEST(Rng, GeometricFailuresTruncatedStaysBelowBound) {
  Rng rng(31);
  for (const double p : {0.9, 0.3, 0.01, 1e-6}) {
    for (const u64 bound : {1ull, 2ull, 7ull, 100ull}) {
      for (int i = 0; i < 200; ++i) {
        EXPECT_LT(rng.geometric_failures_truncated(p, bound), bound);
      }
    }
  }
  // p = 1 always succeeds immediately.
  EXPECT_EQ(rng.geometric_failures_truncated(1.0, 50), 0u);
}

TEST(Rng, GeometricFailuresTruncatedMatchesConditionedDistribution) {
  // The truncated sampler must agree with "sample Geometric(p), condition
  // on < bound" — compare frequencies against the exact conditional pmf
  // q^k p / (1 - q^bound).
  Rng rng(32);
  const double p = 0.25;
  const u64 bound = 6;
  const int kDraws = 60000;
  std::vector<int> freq(bound, 0);
  for (int i = 0; i < kDraws; ++i) {
    ++freq[rng.geometric_failures_truncated(p, bound)];
  }
  const double mass = 1.0 - std::pow(1.0 - p, static_cast<double>(bound));
  for (u64 k = 0; k < bound; ++k) {
    const double expected =
        kDraws * std::pow(1.0 - p, static_cast<double>(k)) * p / mass;
    EXPECT_NEAR(freq[k], expected, 5 * std::sqrt(expected) + 5) << k;
  }
}

TEST(Rng, BinomialEdgeCases) {
  Rng rng(33);
  EXPECT_EQ(rng.binomial(0, 0.5), 0u);
  EXPECT_EQ(rng.binomial(100, 0.0), 0u);
  EXPECT_EQ(rng.binomial(100, 1.0), 100u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_LE(rng.binomial(10, 0.3), 10u);
  }
}

TEST(Rng, BinomialMomentsMatchTheory) {
  Rng rng(34);
  // Both the sparse path and the p > 1/2 complement path.
  for (const double p : {0.02, 0.3, 0.8}) {
    const u64 m = 50;
    const int kDraws = 20000;
    double sum = 0, sum2 = 0;
    for (int i = 0; i < kDraws; ++i) {
      const double x = static_cast<double>(rng.binomial(m, p));
      sum += x;
      sum2 += x * x;
    }
    const double mean = sum / kDraws;
    const double var = sum2 / kDraws - mean * mean;
    const double expect_mean = m * p;
    const double expect_var = m * p * (1 - p);
    EXPECT_NEAR(mean, expect_mean, 5 * std::sqrt(expect_var / kDraws)) << p;
    EXPECT_NEAR(var, expect_var, 0.1 * expect_var + 0.05) << p;
  }
}

TEST(Rng, BinomialMatchesNaiveBernoulliAtExtremeParameters) {
  // The count engine's null-folding leans on binomial() far outside the
  // comfortable m*p regime, so fuzz the geometric-jump sampler against the
  // definitional reference — m independent Bernoulli(p) trials — exactly
  // at the extremes: degenerate p, denormal-adjacent p, the p > 1/2
  // complement path, and m from 0 to 10^6.
  Rng fast(101);
  Rng naive(202);
  const double kP[] = {0.0, 1e-12, 0.5, 1.0 - 1e-12, 1.0};
  const u64 kM[] = {0, 1, 1000000};
  for (const u64 m : kM) {
    for (const double p : kP) {
      const int k_fast = m > 1000 ? 500 : 20000;
      const int k_naive = m > 1000 ? 20 : 20000;
      double fast_sum = 0;
      for (int d = 0; d < k_fast; ++d) {
        const u64 x = fast.binomial(m, p);
        ASSERT_LE(x, m) << "m=" << m << " p=" << p;
        fast_sum += static_cast<double>(x);
      }
      double naive_sum = 0;
      for (int d = 0; d < k_naive; ++d) {
        u64 x = 0;
        for (u64 i = 0; i < m; ++i) {
          if (naive.bernoulli(p)) ++x;
        }
        naive_sum += static_cast<double>(x);
      }
      const double fast_mean = fast_sum / k_fast;
      const double naive_mean = naive_sum / k_naive;
      const double var = static_cast<double>(m) * p * (1.0 - p);
      if (var * k_naive >= 25.0) {
        // Enough mass for the normal approximation: Welch-style z-bound
        // on the difference of sample means.
        const double sd = std::sqrt(var * (1.0 / k_fast + 1.0 / k_naive));
        EXPECT_LE(std::fabs(fast_mean - naive_mean), 6.0 * sd)
            << "m=" << m << " p=" << p << " fast=" << fast_mean
            << " naive=" << naive_mean;
      } else {
        // Near-deterministic regime (p in {0,1} exactly, or so extreme
        // that a success/failure is a <= 1e-3-probability event across
        // the whole sample): both samplers must hug the deterministic
        // value, with a tiny allowance for the rare-event tail.
        const double det = p > 0.5 ? static_cast<double>(m) : 0.0;
        EXPECT_LE(std::fabs(fast_sum - det * k_fast), 5.0)
            << "m=" << m << " p=" << p;
        EXPECT_LE(std::fabs(naive_sum - det * k_naive), 5.0)
            << "m=" << m << " p=" << p;
      }
    }
  }
}

TEST(Rng, OrderedPairDistinct) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    const auto [a, b] = rng.ordered_pair(5);
    EXPECT_NE(a, b);
    EXPECT_LT(a, 5u);
    EXPECT_LT(b, 5u);
  }
}

TEST(Rng, OrderedPairCoversAllPairsUniformly) {
  Rng rng(14);
  const u64 n = 4;
  std::vector<int> hits(n * n, 0);
  const int kDraws = 120000;
  for (int i = 0; i < kDraws; ++i) {
    const auto [a, b] = rng.ordered_pair(n);
    ++hits[a * n + b];
  }
  const double expect = static_cast<double>(kDraws) / (n * (n - 1));
  for (u64 a = 0; a < n; ++a) {
    for (u64 b = 0; b < n; ++b) {
      if (a == b) {
        EXPECT_EQ(hits[a * n + b], 0);
      } else {
        EXPECT_NEAR(hits[a * n + b], expect, expect * 0.1);
      }
    }
  }
}

TEST(Rng, SampleDistinctProducesDistinctValues) {
  Rng rng(15);
  for (const u64 k : {0u, 1u, 3u, 10u, 50u, 100u}) {
    const auto v = rng.sample_distinct(100, k);
    EXPECT_EQ(v.size(), k);
    std::set<u64> s(v.begin(), v.end());
    EXPECT_EQ(s.size(), k);
    for (const u64 x : v) EXPECT_LT(x, 100u);
  }
}

TEST(Rng, SampleDistinctFullRangeIsPermutation) {
  Rng rng(16);
  auto v = rng.sample_distinct(10, 10);
  std::sort(v.begin(), v.end());
  for (u64 i = 0; i < 10; ++i) EXPECT_EQ(v[i], i);
}

TEST(Rng, SampleDistinctIsUniformish) {
  Rng rng(17);
  std::vector<int> hits(20, 0);
  const int kDraws = 40000;
  for (int i = 0; i < kDraws; ++i) {
    for (const u64 x : rng.sample_distinct(20, 3)) ++hits[x];
  }
  const double expect = kDraws * 3.0 / 20.0;
  for (const int h : hits) EXPECT_NEAR(h, expect, expect * 0.1);
}

TEST(Rng, ShufflePreservesMultiset) {
  Rng rng(18);
  std::vector<int> v{1, 2, 2, 3, 4, 5, 5, 5};
  auto sorted = v;
  std::sort(sorted.begin(), sorted.end());
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(19);
  Rng b = a.split();
  // The two streams should disagree quickly.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.bits() == b.bits()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(SeedSequence, DistinctLabelsAndIndices) {
  const u64 root = 99;
  std::set<u64> seeds;
  for (const char* label : {"a", "b", "experiment-1"}) {
    for (u64 i = 0; i < 10; ++i) seeds.insert(derive_seed(root, label, i));
  }
  EXPECT_EQ(seeds.size(), 30u);
}

TEST(SeedSequence, DeterministicDerivation) {
  EXPECT_EQ(derive_seed(1, "x", 2), derive_seed(1, "x", 2));
  EXPECT_NE(derive_seed(1, "x", 2), derive_seed(2, "x", 2));
}

}  // namespace
}  // namespace pp
