// Unit tests for the initial-configuration generators.
#include "core/initial.hpp"

#include <gtest/gtest.h>

#include "rng/random.hpp"

namespace pp {
namespace {

TEST(Initial, ValidRanking) {
  const Configuration c = initial::valid_ranking(5, 7);
  EXPECT_EQ(c.agents(), 5u);
  EXPECT_TRUE(is_valid_ranking(c, 5));
}

TEST(Initial, UniformRandomHasRightPopulation) {
  Rng rng(1);
  const Configuration c = initial::uniform_random(100, 10, rng);
  EXPECT_EQ(c.agents(), 100u);
  EXPECT_EQ(c.num_states(), 10u);
}

TEST(Initial, UniformRandomRanksNeverUsesExtraStates) {
  Rng rng(2);
  const Configuration c = initial::uniform_random_ranks(200, 8, 12, rng);
  EXPECT_EQ(c.agents(), 200u);
  for (u64 s = 8; s < 12; ++s) EXPECT_EQ(c.counts[s], 0u);
}

TEST(Initial, KDistantHasExactDistance) {
  Rng rng(3);
  for (const u64 k : {0u, 1u, 5u, 31u}) {
    const Configuration c = initial::k_distant(32, 33, k, rng);
    EXPECT_EQ(c.agents(), 32u);
    EXPECT_EQ(k_distance(c, 32), k) << "k=" << k;
    EXPECT_EQ(c.counts[32], 0u) << "no agents in extra states";
  }
}

TEST(Initial, KDistantZeroIsValidRanking) {
  Rng rng(4);
  const Configuration c = initial::k_distant(16, 16, 0, rng);
  EXPECT_TRUE(is_valid_ranking(c, 16));
}

TEST(Initial, AllInState) {
  const Configuration c = initial::all_in_state(9, 4, 2);
  EXPECT_EQ(c.agents(), 9u);
  EXPECT_EQ(c.counts[2], 9u);
}

TEST(Initial, PerturbedPreservesPopulation) {
  Rng rng(5);
  Configuration base = initial::valid_ranking(20, 21);
  const Configuration p = initial::perturbed(base, 7, rng);
  EXPECT_EQ(p.agents(), 20u);
}

TEST(Initial, PerturbedZeroFaultsIsIdentity) {
  Rng rng(6);
  Configuration base = initial::valid_ranking(10, 10);
  const Configuration p = initial::perturbed(base, 0, rng);
  EXPECT_EQ(p.counts, base.counts);
}

TEST(Initial, PerturbedManyFaultsActuallyMovesAgents) {
  Rng rng(7);
  Configuration base = initial::valid_ranking(50, 50);
  const Configuration p = initial::perturbed(base, 25, rng);
  EXPECT_NE(p.counts, initial::valid_ranking(50, 50).counts);
}

}  // namespace
}  // namespace pp
