// Interaction topologies for the graph-restricted scheduler: shapes,
// degrees, connectivity, determinism.
#include "structures/interaction_graph.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace pp {
namespace {

TEST(InteractionGraph, CompleteHasAllPairs) {
  const auto g = InteractionGraph::complete(7);
  EXPECT_EQ(g.num_vertices(), 7u);
  EXPECT_EQ(g.num_edges(), 21u);
  EXPECT_TRUE(g.connected());
  for (u32 v = 0; v < 7; ++v) EXPECT_EQ(g.degree(v), 6u);
  std::set<std::pair<u32, u32>> seen(g.edges().begin(), g.edges().end());
  EXPECT_EQ(seen.size(), 21u) << "no duplicate edges";
}

TEST(InteractionGraph, CycleAndPathShapes) {
  const auto c = InteractionGraph::cycle(10);
  EXPECT_EQ(c.num_edges(), 10u);
  EXPECT_TRUE(c.connected());
  for (u32 v = 0; v < 10; ++v) EXPECT_EQ(c.degree(v), 2u);

  const auto p = InteractionGraph::path(10);
  EXPECT_EQ(p.num_edges(), 9u);
  EXPECT_TRUE(p.connected());
  EXPECT_EQ(p.degree(0), 1u);
  EXPECT_EQ(p.degree(9), 1u);
  for (u32 v = 1; v < 9; ++v) EXPECT_EQ(p.degree(v), 2u);
}

TEST(InteractionGraph, TwoVertexCycleIsADoubleEdge) {
  const auto c = InteractionGraph::cycle(2);
  EXPECT_EQ(c.num_edges(), 2u);  // parallel edges carry double weight
  EXPECT_TRUE(c.connected());
  EXPECT_EQ(c.degree(0), 2u);
}

TEST(InteractionGraph, RandomRegularIsSimpleAndRegular) {
  for (const u64 d : {2, 3, 4}) {
    const auto g = InteractionGraph::random_regular(20, d, /*seed=*/7);
    EXPECT_EQ(g.num_edges(), 20 * d / 2);
    for (u32 v = 0; v < 20; ++v) EXPECT_EQ(g.degree(v), d) << "d=" << d;
    std::set<std::pair<u32, u32>> seen;
    for (const auto& [u, v] : g.edges()) {
      EXPECT_LT(u, v);
      EXPECT_TRUE(seen.insert({u, v}).second) << "parallel edge";
    }
  }
}

TEST(InteractionGraph, RandomRegularIsDeterministicInSeed) {
  const auto a = InteractionGraph::random_regular(24, 3, 11);
  const auto b = InteractionGraph::random_regular(24, 3, 11);
  const auto c = InteractionGraph::random_regular(24, 3, 12);
  EXPECT_EQ(a.edges(), b.edges());
  EXPECT_NE(a.edges(), c.edges()) << "different seeds, different topology";
}

TEST(InteractionGraph, FromRoutingKeepsCubicStructure) {
  const RoutingGraph rg(4);  // 16 vertices, cubic
  const auto g = InteractionGraph::from_routing(rg);
  EXPECT_EQ(g.num_vertices(), 16u);
  EXPECT_EQ(g.num_edges(), 16u * 3 / 2);
  EXPECT_TRUE(g.connected());
  for (u32 v = 0; v < 16; ++v) EXPECT_EQ(g.degree(v), 3u);
}

TEST(InteractionGraph, IncidenceListsMatchEdgeList) {
  const auto g = InteractionGraph::random_regular(12, 3, 5);
  for (u32 v = 0; v < g.num_vertices(); ++v) {
    for (const u32 e : g.incident_edges(v)) {
      const auto [a, b] = g.edges()[e];
      EXPECT_TRUE(a == v || b == v);
    }
  }
}

TEST(InteractionGraphDeathTest, RandomRegularRejectsInfeasibleParameters) {
  // Infeasible requests die at construction with the failing constraint
  // named — before the configuration-model resampling loop can spin on a
  // request it could never satisfy.
  EXPECT_DEATH(InteractionGraph::random_regular(5, 3, 1), "n\\*d even");
  EXPECT_DEATH(InteractionGraph::random_regular(4, 4, 1), "1 <= d < n");
  EXPECT_DEATH(InteractionGraph::random_regular(4, 0, 1), "1 <= d < n");
  EXPECT_DEATH(InteractionGraph::random_regular(64, 8, 1), "d <= 6");
  EXPECT_DEATH(InteractionGraph::make(GraphKind::kRandomRegular, 9, 3, 1),
               "n\\*d even");
  // Routing topologies need n = m^2 for an even m.
  EXPECT_DEATH(InteractionGraph::make(GraphKind::kRouting, 9),
               "needs n = m\\^2");
}

TEST(InteractionGraph, MakeDispatches) {
  EXPECT_EQ(InteractionGraph::make(GraphKind::kComplete, 5).num_edges(), 10u);
  EXPECT_EQ(InteractionGraph::make(GraphKind::kCycle, 5).num_edges(), 5u);
  EXPECT_EQ(InteractionGraph::make(GraphKind::kPath, 5).num_edges(), 4u);
  EXPECT_EQ(InteractionGraph::make(GraphKind::kRandomRegular, 6, 3, 1)
                .num_edges(),
            9u);
  // The paper's cubic routing graph, reachable by kind: n = m^2 = 16.
  const auto r = InteractionGraph::make(GraphKind::kRouting, 16);
  EXPECT_EQ(r.num_vertices(), 16u);
  EXPECT_EQ(r.num_edges(), 24u);
  EXPECT_EQ(r.description(), "routing");
  EXPECT_TRUE(r.connected());
}

}  // namespace
}  // namespace pp
