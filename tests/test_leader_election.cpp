// Leader election via ranking: unique stable leader, recovery after
// transient faults (the self-stabilisation guarantee end-to-end).
#include "core/leader_election.hpp"

#include <gtest/gtest.h>

#include "protocols/factory.hpp"

namespace pp {
namespace {

TEST(LeaderElection, ElectsUniqueLeaderFromChaos) {
  for (const auto name : protocol_names()) {
    const u64 n = preferred_population(name, 72);
    LeaderElection le(make_protocol(name, n));
    Rng rng(1);
    le.protocol().reset(initial::uniform_random(le.protocol(), rng));
    const RunResult r = le.stabilise(rng);
    EXPECT_TRUE(r.silent) << name;
    EXPECT_TRUE(le.has_stable_unique_leader()) << name;
    EXPECT_EQ(le.leader_count(), 1u) << name;
  }
}

TEST(LeaderElection, RecoversAfterFaultInjection) {
  LeaderElection le(make_protocol("tree-ranking", 50));
  Rng rng(2);
  le.protocol().reset(initial::uniform_random(le.protocol(), rng));
  ASSERT_TRUE(le.stabilise(rng).silent);
  ASSERT_TRUE(le.has_stable_unique_leader());

  for (int round = 0; round < 5; ++round) {
    le.inject_faults(10, rng);
    const RunResult r = le.stabilise(rng);
    EXPECT_TRUE(r.silent) << "round " << round;
    EXPECT_TRUE(le.has_stable_unique_leader()) << "round " << round;
  }
}

TEST(LeaderElection, FaultsCanDethroneButRecoveryRestoresExactlyOne) {
  LeaderElection le(make_protocol("ring-of-traps", 42));
  Rng rng(3);
  le.protocol().reset(initial::valid_ranking(le.protocol()));
  ASSERT_TRUE(le.has_stable_unique_leader());
  // Hammer the population with faults equal to half its size.
  le.inject_faults(21, rng);
  le.stabilise(rng);
  EXPECT_EQ(le.leader_count(), 1u);
}

TEST(LeaderElection, ZeroFaultInjectionKeepsSilence) {
  LeaderElection le(make_protocol("ag", 16));
  Rng rng(4);
  le.protocol().reset(initial::valid_ranking(le.protocol()));
  le.inject_faults(0, rng);
  EXPECT_TRUE(le.protocol().is_silent());
  EXPECT_EQ(le.stabilise(rng).interactions, 0u);
}

}  // namespace
}  // namespace pp
