// Weight-consistency fuzz across many population sizes: for every
// protocol, at many sizes and many random configurations, the optimized
// productive-weight bookkeeping must equal the brute-force count derived
// from the formal transition function δ.  This is the single strongest
// guard against bookkeeping drift anywhere in the Fenwick machinery.
#include <gtest/gtest.h>

#include "core/agent_simulator.hpp"
#include "core/initial.hpp"
#include "protocols/factory.hpp"
#include "protocols/line_of_traps.hpp"
#include "protocols/tree_ranking.hpp"
#include "rng/seed_sequence.hpp"

namespace pp {
namespace {

class WeightFuzz
    : public ::testing::TestWithParam<std::tuple<std::string, u64>> {};

TEST_P(WeightFuzz, OptimizedWeightEqualsBruteForce) {
  const auto& [name, n_hint] = GetParam();
  const u64 n = preferred_population(name, n_hint);
  ProtocolPtr p = make_protocol(name, n);
  Rng rng(derive_seed(71, name, n));
  for (int trial = 0; trial < 25; ++trial) {
    p->reset(initial::uniform_random(*p, rng));
    ASSERT_EQ(p->productive_weight(),
              reference_productive_weight(*p, p->counts()))
        << name << " n=" << n << " trial " << trial;
    // Also check mid-trajectory after a few productive steps.
    for (int s = 0; s < 8 && !p->is_silent(); ++s) p->step_productive(rng);
    ASSERT_EQ(p->productive_weight(),
              reference_productive_weight(*p, p->counts()));
  }
}

std::string label(
    const ::testing::TestParamInfo<std::tuple<std::string, u64>>& info) {
  std::string s =
      std::get<0>(info.param) + "_n" + std::to_string(std::get<1>(info.param));
  for (char& c : s) {
    if (c == '-') c = '_';
  }
  return s;
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndProtocols, WeightFuzz,
    ::testing::Combine(::testing::Values(std::string("ag"),
                                         std::string("ring-of-traps"),
                                         std::string("line-of-traps"),
                                         std::string("tree-ranking")),
                       ::testing::Values<u64>(2, 3, 5, 8, 13, 21, 34, 55,
                                              89, 144)),
    label);

TEST(WeightFuzz, ModifiedTreeProtocolToo) {
  TreeRankingProtocol p(40, 4, TreeRankingProtocol::ResetMode::kModified);
  Rng rng(72);
  for (int trial = 0; trial < 25; ++trial) {
    p.reset(initial::uniform_random(p, rng));
    ASSERT_EQ(p.productive_weight(),
              reference_productive_weight(p, p.counts()));
  }
}

TEST(WeightFuzz, SingleLineToo) {
  SingleLineProtocol p(12, 3, 2);
  Rng rng(73);
  for (int trial = 0; trial < 25; ++trial) {
    p.reset(initial::uniform_random(p, rng));
    ASSERT_EQ(p.productive_weight(),
              reference_productive_weight(p, p.counts()));
  }
}

TEST(WeightFuzz, UniformStepPreservesConsistencyToo) {
  // The uniform-step path mutates through apply_cross; fuzz it as well.
  for (const auto name : protocol_names()) {
    const u64 n = preferred_population(name, 72);
    ProtocolPtr p = make_protocol(name, n);
    Rng rng(derive_seed(74, name));
    p->reset(initial::uniform_random(*p, rng));
    for (int s = 0; s < 500 && !p->is_silent(); ++s) {
      p->step_uniform(rng);
    }
    ASSERT_EQ(p->productive_weight(),
              reference_productive_weight(*p, p->counts()))
        << name;
  }
}

}  // namespace
}  // namespace pp
