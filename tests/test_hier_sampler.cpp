// The hierarchical sampler layer (schedulers/pair_sampler.hpp:
// DistanceKernel + GroupedKernelSampler, and the sparse edge-Markovian
// path built on DirectedPairRoster) cross-validated against the dense
// Θ(n²) reference implementations it replaced.
//
// The load-bearing guarantees:
//   * the closed-form kernel agrees with the dense kernel table slot for
//     slot (weights, row marginals, grand total) — exact equality, every
//     geometry and power;
//   * weight-proportional pair sampling from the closed form matches the
//     exact dense distribution (chi-squared goodness of fit, ring-decay);
//   * the grouped productive mass equals the dense productive scan
//     exactly on live mid-run configurations, and productive sampling
//     matches the exact productive distribution (chi-squared);
//   * the sparse edge-Markovian path is distributionally indistinguishable
//     from the dense reference: the state pair fired first has the same
//     distribution (two-sample chi-squared) and full-run stabilisation
//     statistics agree;
//   * the hierarchical structures at n = 10^5 are O(n)-sized and
//     budget-capped runs complete — the memory-shape assertion that the
//     Θ(n²) universe is really gone (a dense build at this size would
//     need ~10^10 slots);
//   * fixed-seed trajectories through both new paths are pinned, so an
//     accidental change to their rng consumption shows up as a literal
//     diff, not a silent distribution shift.
#include "schedulers/pair_sampler.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/initial.hpp"
#include "protocols/ag.hpp"
#include "protocols/factory.hpp"
#include "schedulers/dynamic_graph.hpp"
#include "schedulers/scheduler.hpp"
#include "schedulers/weighted.hpp"

namespace pp {
namespace {

// Normal-approximation z-score of a chi-squared statistic: X² over df
// degrees of freedom has mean df and variance 2 df, so |z| < 6 is a
// deterministic-seed-safe acceptance band.
double chi2_z(double x2, double df) { return (x2 - df) / std::sqrt(2 * df); }

// ---- DistanceKernel vs the dense kernel table -----------------------------

TEST(DistanceKernel, MatchesDenseKernelTableExactly) {
  for (const WeightKernel kernel :
       {WeightKernel::kUniform, WeightKernel::kRingDecay,
        WeightKernel::kLineDecay}) {
    for (const u64 power : {u64{1}, u64{2}}) {
      for (const u64 n : {u64{2}, u64{3}, u64{16}, u64{17}}) {
        const WeightedScheduler sched(kernel, power);
        const DistanceKernel k = sched.distance_kernel(n);
        const std::vector<u64> table = sched.kernel_table(n);
        u64 total = 0;
        for (u64 i = 0; i < n; ++i) {
          u64 row = 0;
          for (u64 j = 0; j < n; ++j) {
            if (i == j) continue;
            EXPECT_EQ(k.weight(i, j), table[i * n + j])
                << "kernel " << static_cast<int>(kernel) << "^" << power
                << " n=" << n << " (" << i << "," << j << ")";
            row += table[i * n + j];
          }
          EXPECT_EQ(k.row_total(i), row) << "row " << i << " n=" << n;
          total += row;
        }
        EXPECT_EQ(k.total(), total);
      }
    }
  }
}

TEST(DistanceKernel, PairSamplingMatchesDenseDistribution) {
  // Chi-squared goodness of fit of sample_pair against the exact dense
  // probabilities, on the steepest standard kernel (ring-decay spans a
  // 32x weight ratio at n = 64).
  const u64 n = 64;
  const WeightedScheduler sched(WeightKernel::kRingDecay);
  const DistanceKernel k = sched.distance_kernel(n);
  const std::vector<u64> table = sched.kernel_table(n);
  const double total = static_cast<double>(k.total());

  const u64 kSamples = 200000;
  std::vector<u64> hits(n * n, 0);
  Rng rng(1234);
  for (u64 s = 0; s < kSamples; ++s) {
    const auto [i, j] = k.sample_pair(rng);
    ASSERT_NE(i, j);
    ++hits[i * n + j];
  }
  double x2 = 0;
  double df = -1;  // totals match by construction
  for (u64 id = 0; id < n * n; ++id) {
    if (table[id] == 0) {
      EXPECT_EQ(hits[id], 0u);  // diagonal must never be sampled
      continue;
    }
    const double expected =
        static_cast<double>(kSamples) * static_cast<double>(table[id]) / total;
    ASSERT_GE(expected, 5.0);  // keep the chi-squared approximation honest
    const double d = static_cast<double>(hits[id]) - expected;
    x2 += d * d / expected;
    df += 1;
  }
  EXPECT_LT(std::fabs(chi2_z(x2, df)), 6.0) << "x2=" << x2 << " df=" << df;
}

// ---- GroupedKernelSampler vs the dense productive scan --------------------

TEST(GroupedKernelSampler, ProductiveMassMatchesDenseScanExactly) {
  // On a live mid-run configuration, the grouped productive total must
  // equal the dense path's pair-by-pair productive scan to the unit — the
  // two paths maintain the same quantity through different bookkeeping.
  const u64 n = 96;
  const WeightedScheduler sched(WeightKernel::kRingDecay);
  const DistanceKernel k = sched.distance_kernel(n);
  AgProtocol p(n);
  Rng rng(77);
  p.reset(initial::uniform_random(p, rng));
  std::vector<StateId> placement = p.configuration().to_agent_states();
  rng.shuffle(placement);
  GroupedKernelSampler gs(k, p, placement);

  for (int round = 0; round < 25; ++round) {
    u64 dense_total = 0;
    const std::vector<StateId>& s = gs.states();
    for (u64 i = 0; i < n; ++i) {
      for (u64 j = 0; j < n; ++j) {
        if (i != j && pair_is_productive(p, s[i], s[j])) {
          dense_total += k.weight(i, j);
        }
      }
    }
    ASSERT_EQ(gs.productive_total(), dense_total) << "round " << round;
    if (gs.productive_total() == 0) break;
    const auto [i, j] = gs.sample_productive(rng);
    gs.fire(p, i, j);
  }
}

TEST(GroupedKernelSampler, ProductiveSamplingMatchesDenseDistribution) {
  // Chi-squared goodness of fit of sample_productive against the exact
  // productive distribution (dense enumeration of w * productive).
  const u64 n = 64;
  const WeightedScheduler sched(WeightKernel::kRingDecay);
  const DistanceKernel k = sched.distance_kernel(n);
  AgProtocol p(n);
  Rng rng(4321);
  p.reset(initial::uniform_random(p, rng));
  std::vector<StateId> placement = p.configuration().to_agent_states();
  rng.shuffle(placement);
  GroupedKernelSampler gs(k, p, placement);
  ASSERT_GT(gs.productive_total(), 0u);

  std::map<std::pair<u64, u64>, double> expected;
  const std::vector<StateId>& s = gs.states();
  for (u64 i = 0; i < n; ++i) {
    for (u64 j = 0; j < n; ++j) {
      if (i != j && pair_is_productive(p, s[i], s[j])) {
        expected[{i, j}] = static_cast<double>(k.weight(i, j));
      }
    }
  }
  const double total = static_cast<double>(gs.productive_total());

  const u64 kSamples = 40000;
  std::map<std::pair<u64, u64>, u64> hits;
  for (u64 t = 0; t < kSamples; ++t) {
    const auto pair = gs.sample_productive(rng);
    ASSERT_NE(expected.find(pair), expected.end())
        << "sampled an unproductive pair (" << pair.first << ","
        << pair.second << ")";
    ++hits[pair];
  }
  double x2 = 0;
  double df = -1;
  for (const auto& [pair, w] : expected) {
    const double e = static_cast<double>(kSamples) * w / total;
    ASSERT_GE(e, 5.0);
    const double d = static_cast<double>(hits[pair]) - e;
    x2 += d * d / e;
    df += 1;
  }
  EXPECT_LT(std::fabs(chi2_z(x2, df)), 6.0) << "x2=" << x2 << " df=" << df;
}

// ---- extra-state protocols on the grouped sampler -------------------------

TEST(ExtraStateGrouped, ProductiveMassMatchesDenseScanExactly) {
  // The tentpole claim of the extra-class window: for line-of-traps (every
  // pair with an X responder fires) and tree-ranking (every pair with a
  // buffer initiator fires), the grouped sampler's split totals — rank
  // group mass plus Σ of kernel row totals over extra agents — must equal
  // the dense pair-by-pair productive scan to the unit, on live mid-run
  // configurations.
  for (const std::string name : {"line-of-traps", "tree-ranking"}) {
    const u64 n = preferred_population(name, 72);
    const WeightedScheduler sched(WeightKernel::kRingDecay);
    const DistanceKernel k = sched.distance_kernel(n);
    ProtocolPtr p = make_protocol(name, n);
    Rng rng(78);
    p->reset(initial::uniform_random(*p, rng));
    std::vector<StateId> placement = p->configuration().to_agent_states();
    rng.shuffle(placement);
    GroupedKernelSampler gs(k, *p, placement);
    const u64 ranks = p->num_ranks();

    for (int round = 0; round < 30; ++round) {
      u64 dense_rank = 0, dense_extra = 0;
      const std::vector<StateId>& s = gs.states();
      for (u64 i = 0; i < n; ++i) {
        for (u64 j = 0; j < n; ++j) {
          if (i == j || !pair_is_productive(*p, s[i], s[j])) continue;
          if (s[i] >= ranks || s[j] >= ranks) {
            dense_extra += k.weight(i, j);
          } else {
            dense_rank += k.weight(i, j);
          }
        }
      }
      ASSERT_EQ(gs.extra_total(), dense_extra) << name << " round " << round;
      ASSERT_EQ(gs.productive_total(), dense_rank + dense_extra)
          << name << " round " << round;
      if (gs.productive_total() == 0) break;
      const auto [i, j] = gs.sample_productive(rng);
      gs.fire(*p, i, j);
    }
  }
}

TEST(ExtraStateGrouped, ProductiveSamplingMatchesDenseDistribution) {
  // Chi-squared goodness of fit of sample_productive against the dense
  // enumeration of w * productive, for both extra-state protocols under
  // ring-decay.  Thin cells (extra-state pairs spread mass over many
  // ordered pairs) are pooled to keep the approximation honest.
  for (const std::string name : {"line-of-traps", "tree-ranking"}) {
    const u64 n = preferred_population(name, 72);
    const WeightedScheduler sched(WeightKernel::kRingDecay);
    const DistanceKernel k = sched.distance_kernel(n);
    ProtocolPtr p = make_protocol(name, n);
    Rng rng(5678);
    p->reset(initial::uniform_random(*p, rng));
    std::vector<StateId> placement = p->configuration().to_agent_states();
    rng.shuffle(placement);
    GroupedKernelSampler gs(k, *p, placement);
    ASSERT_GT(gs.productive_total(), 0u) << name;

    std::map<std::pair<u64, u64>, double> expected;
    const std::vector<StateId>& s = gs.states();
    for (u64 i = 0; i < n; ++i) {
      for (u64 j = 0; j < n; ++j) {
        if (i != j && pair_is_productive(*p, s[i], s[j])) {
          expected[{i, j}] = static_cast<double>(k.weight(i, j));
        }
      }
    }
    const double total = static_cast<double>(gs.productive_total());

    const u64 kSamples = 60000;
    std::map<std::pair<u64, u64>, u64> hits;
    for (u64 t = 0; t < kSamples; ++t) {
      const auto pair = gs.sample_productive(rng);
      ASSERT_NE(expected.find(pair), expected.end())
          << name << ": sampled an unproductive pair (" << pair.first << ","
          << pair.second << ")";
      ++hits[pair];
    }
    double x2 = 0;
    double cells = 0;
    double pooled_e = 0;
    u64 pooled_h = 0;
    for (const auto& [pair, w] : expected) {
      const double e = static_cast<double>(kSamples) * w / total;
      if (e < 5.0) {
        pooled_e += e;
        pooled_h += hits[pair];
        continue;
      }
      const double d = static_cast<double>(hits[pair]) - e;
      x2 += d * d / e;
      cells += 1;
    }
    if (pooled_e > 0) {
      const double d = static_cast<double>(pooled_h) - pooled_e;
      x2 += d * d / pooled_e;
      cells += 1;
    }
    ASSERT_GT(cells, 1) << name;
    EXPECT_LT(std::fabs(chi2_z(x2, cells - 1)), 6.0)
        << name << " x2=" << x2 << " cells=" << cells;
  }
}

// ---- TrapKernelSampler vs direct enumeration over the count vector --------

TEST(TrapKernelSampler, MassesMatchDirectEnumerationOnLiveConfigs) {
  // No positional dense reference exists for a state-distance kernel, so
  // the ground truth is the direct Θ(states²) quadratic form over the
  // count vector: Σ c_s (c_t - [s == t]) κ(s, t), masked to the
  // productive pairs for the productive total.  Both totals must agree to
  // the unit on live configurations as events fire.
  for (const std::string name : {"ag", "line-of-traps", "tree-ranking"}) {
    for (const u64 power : {u64{1}, u64{2}}) {
      const u64 n = preferred_population(name, 72);
      ProtocolPtr p = make_protocol(name, n);
      Rng rng(81 + power);
      p->reset(initial::uniform_random(*p, rng));
      TrapKernelSampler ts(*p, power);
      const u64 states = p->num_states();

      for (int round = 0; round < 25; ++round) {
        u64 weight = 0, productive = 0;
        const std::vector<u64>& c = p->counts();
        for (StateId s = 0; s < states; ++s) {
          if (c[s] == 0) continue;
          for (StateId t = 0; t < states; ++t) {
            const u64 pairs = c[s] * (c[t] - (s == t ? u64{1} : u64{0}));
            if (pairs == 0) continue;
            const u64 mass = pairs * ts.kappa(s, t);
            weight += mass;
            if (pair_is_productive(*p, s, t)) productive += mass;
          }
        }
        ASSERT_EQ(ts.weight_total(), weight)
            << name << "^" << power << " round " << round;
        ASSERT_EQ(ts.productive_total(), productive)
            << name << "^" << power << " round " << round;
        if (ts.productive_total() == 0) break;
        ts.fire(*p, rng);
      }
    }
  }
}

// Serialises the nonzero per-state count deltas of one event, ascending by
// state — the observable footprint of which state pair fired (the same
// binning idea as first_fire_bin below, but computable on both the
// sampled and the enumerated side).
std::string count_delta_bin(const std::vector<u64>& before,
                            const std::vector<u64>& after) {
  std::string bin;
  for (u64 s = 0; s < before.size(); ++s) {
    const i64 d =
        static_cast<i64>(after[s]) - static_cast<i64>(before[s]);
    if (d != 0) bin += std::to_string(s) + ":" + std::to_string(d) + ";";
  }
  return bin;
}

std::string pair_delta_bin(StateId s, StateId t,
                           std::pair<StateId, StateId> out) {
  std::map<u64, i64> d;
  --d[s];
  --d[t];
  ++d[out.first];
  ++d[out.second];
  std::string bin;
  for (const auto& [state, dd] : d) {
    if (dd != 0) bin += std::to_string(state) + ":" + std::to_string(dd) + ";";
  }
  return bin;
}

TEST(TrapKernelSampler, FiredPairMatchesDirectEnumeration) {
  // Chi-squared goodness of fit of the pair fire() selects against the
  // exact κ-proportional distribution, binned by count-delta footprint
  // (fire applies the pair, so each draw rebuilds the sampler on a reset
  // copy of the same configuration — construction is O(states), cheap).
  for (const std::string name : {"line-of-traps", "tree-ranking"}) {
    const u64 n = preferred_population(name, 72);
    ProtocolPtr p = make_protocol(name, n);
    Rng rng(91);
    p->reset(initial::uniform_random(*p, rng));
    const Configuration snap = p->configuration();
    const u64 states = p->num_states();

    const TrapKernelSampler ref(*p, /*power=*/1);
    std::map<std::string, double> expected;  // footprint -> κ mass
    double total = 0;
    for (StateId s = 0; s < states; ++s) {
      if (snap.counts[s] == 0) continue;
      for (StateId t = 0; t < states; ++t) {
        const u64 pairs =
            snap.counts[s] * (snap.counts[t] - (s == t ? u64{1} : u64{0}));
        if (pairs == 0 || !pair_is_productive(*p, s, t)) continue;
        const double mass =
            static_cast<double>(pairs) * static_cast<double>(ref.kappa(s, t));
        expected[pair_delta_bin(s, t, p->transition(s, t))] += mass;
        total += mass;
      }
    }
    ASSERT_GT(total, 0.0) << name;

    const u64 kSamples = 20000;
    std::map<std::string, u64> hits;
    for (u64 it = 0; it < kSamples; ++it) {
      p->reset(snap);
      TrapKernelSampler ts(*p, /*power=*/1);
      ts.fire(*p, rng);
      const std::string bin = count_delta_bin(snap.counts, p->counts());
      ASSERT_NE(expected.find(bin), expected.end())
          << name << ": fired a pair outside the enumerated support: " << bin;
      ++hits[bin];
    }
    double x2 = 0;
    double cells = 0;
    double pooled_e = 0;
    u64 pooled_h = 0;
    for (const auto& [bin, mass] : expected) {
      const double e = static_cast<double>(kSamples) * mass / total;
      if (e < 5.0) {
        pooled_e += e;
        pooled_h += hits[bin];
        continue;
      }
      const double d = static_cast<double>(hits[bin]) - e;
      x2 += d * d / e;
      cells += 1;
    }
    if (pooled_e > 0) {
      const double d = static_cast<double>(pooled_h) - pooled_e;
      x2 += d * d / pooled_e;
      cells += 1;
    }
    ASSERT_GT(cells, 1) << name;
    EXPECT_LT(std::fabs(chi2_z(x2, cells - 1)), 6.0)
        << name << " x2=" << x2 << " cells=" << cells;
  }
}

// ---- dense vs hierarchical / sparse: whole-run cross-validation -----------

RunResult run_weighted(const Scheduler& sched, u64 n, u64 seed,
                       const RunOptions& opt = {}) {
  ProtocolPtr p = make_protocol("ag", n);
  Rng rng(seed);
  p->reset(initial::uniform_random(*p, rng));
  return sched.run(*p, rng, opt);
}

RunResult run_weighted_protocol(const Scheduler& sched, const std::string& name,
                                u64 n, u64 seed, const RunOptions& opt = {}) {
  ProtocolPtr p = make_protocol(name, n);
  Rng rng(seed);
  p->reset(initial::uniform_random(*p, rng));
  return sched.run(*p, rng, opt);
}

TEST(HierarchicalWeighted, RingDecayMatchesDenseReferenceStatistically) {
  // Same kernel, same protocol, same seeds: the hierarchical and dense
  // paths must produce the same stabilisation-time distribution (they
  // consume randomness differently, so only statistics can agree).
  const u64 n = 48;
  const WeightedScheduler hier(WeightKernel::kRingDecay, 1, 0,
                               WeightedScheduler::Path::kHierarchical);
  const WeightedScheduler dense(WeightKernel::kRingDecay, 1, 0,
                                WeightedScheduler::Path::kDense);
  const int kTrials = 60;
  double hier_time = 0, dense_time = 0;
  for (int t = 0; t < kTrials; ++t) {
    const RunResult h = run_weighted(hier, n, 86000 + t);
    EXPECT_TRUE(h.valid);
    hier_time += h.parallel_time;
    const RunResult d = run_weighted(dense, n, 87000 + t);
    EXPECT_TRUE(d.valid);
    dense_time += d.parallel_time;
  }
  EXPECT_NEAR(hier_time / dense_time, 1.0, 0.25);
}

// First productive firing under the edge-Markovian model, categorised by
// the (state-count delta) it applied — the observable footprint of which
// state pair fired.  Used for the sparse-vs-dense two-sample chi-squared.
std::string first_fire_bin(const SchedulerSpec& spec, u64 n, u64 seed) {
  ProtocolPtr p = make_protocol("ag", n);
  Rng rng(seed);
  p->reset(initial::uniform_random(*p, rng));
  const std::vector<u64> before = p->counts();
  const SchedulerPtr sched = make_scheduler(spec, n);
  RunOptions opt;
  opt.max_interactions = 1 << 22;
  opt.on_change = [](const Protocol&, u64) { return false; };  // stop at 1
  const RunResult r = sched->run(*p, rng, opt);
  if (r.productive_steps == 0) return "no-fire";
  std::string bin;
  for (u64 s = 0; s < before.size(); ++s) {
    const i64 d = static_cast<i64>(p->counts()[s]) - static_cast<i64>(before[s]);
    if (d != 0) bin += std::to_string(s) + ":" + std::to_string(d) + ";";
  }
  return bin;
}

TEST(SparseMarkov, FirstFireDistributionMatchesDenseReference) {
  // Two-sample chi-squared over the state-pair fired first: the sparse
  // present-set path and the dense two-list reference start from the same
  // seeded configuration and must fire the same way in distribution
  // (their flip-victim sampling differs mechanically — rejection vs
  // list indexing — but not in law).
  const u64 n = 24;
  SchedulerSpec spec;
  spec.kind = SchedulerKind::kDynamicGraph;
  spec.graph = GraphKind::kCycle;
  spec.dynamics = GraphDynamics::kEdgeMarkovian;
  spec.edge_birth = 0.02;
  spec.edge_death = 0.05;

  const int kRuns = 1500;
  std::map<std::string, std::pair<u64, u64>> bins;  // bin -> (sparse, dense)
  for (int t = 0; t < kRuns; ++t) {
    spec.dense_reference = false;
    ++bins[first_fire_bin(spec, n, 91000 + t)].first;
    spec.dense_reference = true;
    ++bins[first_fire_bin(spec, n, 91000 + t)].second;
  }
  // Pool thin bins so every cell keeps expected count >= 5 under the
  // pooled-total expectation.
  u64 rare_a = 0, rare_b = 0;
  double x2 = 0;
  double cells = 0;
  const auto add_cell = [&](double a, double b) {
    // Equal sample sizes: expected half of (a + b) in each column.
    const double e = (a + b) / 2.0;
    if (e <= 0) return;
    x2 += (a - e) * (a - e) / e + (b - e) * (b - e) / e;
    cells += 1;
  };
  for (const auto& [bin, ab] : bins) {
    EXPECT_NE(bin, "no-fire");
    if (ab.first + ab.second < 10) {
      rare_a += ab.first;
      rare_b += ab.second;
      continue;
    }
    add_cell(static_cast<double>(ab.first), static_cast<double>(ab.second));
  }
  add_cell(static_cast<double>(rare_a), static_cast<double>(rare_b));
  ASSERT_GT(cells, 1);
  EXPECT_LT(std::fabs(chi2_z(x2, cells - 1)), 6.0)
      << "x2=" << x2 << " cells=" << cells;
}

TEST(SparseMarkov, FullRunMatchesDenseReferenceStatistically) {
  const u64 n = 24;
  SchedulerSpec spec;
  spec.kind = SchedulerKind::kDynamicGraph;
  spec.graph = GraphKind::kCycle;
  spec.dynamics = GraphDynamics::kEdgeMarkovian;
  spec.edge_birth = 0.02;
  spec.edge_death = 0.05;
  const int kTrials = 80;
  const u64 budget = 400000;
  double sparse_inter = 0, dense_inter = 0;
  double sparse_steps = 0, dense_steps = 0;
  for (int t = 0; t < kTrials; ++t) {
    RunOptions opt;
    opt.max_interactions = budget;
    spec.dense_reference = false;
    const SchedulerPtr sparse = make_scheduler(spec, n);
    ProtocolPtr p = make_protocol("ag", n);
    Rng rng(95000 + t);
    p->reset(initial::uniform_random(*p, rng));
    const RunResult a = sparse->run(*p, rng, opt);
    EXPECT_TRUE(a.silent);
    sparse_inter += static_cast<double>(a.interactions);
    sparse_steps += static_cast<double>(a.productive_steps);

    spec.dense_reference = true;
    const SchedulerPtr dense = make_scheduler(spec, n);
    ProtocolPtr q = make_protocol("ag", n);
    Rng rng2(96000 + t);
    q->reset(initial::uniform_random(*q, rng2));
    const RunResult b = dense->run(*q, rng2, opt);
    EXPECT_TRUE(b.silent);
    dense_inter += static_cast<double>(b.interactions);
    dense_steps += static_cast<double>(b.productive_steps);
  }
  EXPECT_NEAR(sparse_inter / dense_inter, 1.0, 0.20);
  EXPECT_NEAR(sparse_steps / dense_steps, 1.0, 0.20);
}

// ---- memory shape and scale: the Θ(n²) universe is gone -------------------

TEST(HierarchicalScale, KernelStructuresAreLinearAtHundredThousand) {
  const u64 n = 100000;
  const WeightedScheduler ring(WeightKernel::kRingDecay);
  const DistanceKernel k = ring.distance_kernel(n);
  // O(n) proof: the ring profile holds floor(n/2) + 1 slots (a dense
  // universe would need n² ~ 10^10).
  EXPECT_LE(k.memory_slots(), 2 * n);
  const WeightedScheduler line(WeightKernel::kLineDecay);
  EXPECT_LE(line.distance_kernel(n).memory_slots(), 3 * n);
  EXPECT_EQ(k.n(), n);
  EXPECT_GT(k.total(), 0u);
}

TEST(HierarchicalScale, WeightedRingDecayRunsAtHundredThousand) {
  // weighted[ring-decay] at n = 10^5: construction plus a budget-capped
  // run must complete — the dense path cannot even allocate here (~160 GB
  // of Fenwick slots), so completion inside the suite's timeout IS the
  // no-Θ(n²)-allocation assertion, alongside the O(n) slot count above.
  const u64 n = 100000;
  SchedulerSpec spec;
  spec.kind = SchedulerKind::kWeighted;
  spec.kernel = WeightKernel::kRingDecay;
  const SchedulerPtr sched = make_scheduler(spec, n);
  RunOptions opt;
  opt.max_interactions = 10 * n;
  const RunResult r = run_weighted(*sched, n, /*seed=*/13, opt);
  EXPECT_EQ(r.interactions, 10 * n);
  EXPECT_FALSE(r.silent);  // AG needs ~n² parallel time; 10 is a cap probe
  EXPECT_GT(r.productive_steps, 0u);
}

TEST(HierarchicalScale, ExtraStateWeightedRunsAtHundredThousand) {
  // The tentpole's headline: an extra-state protocol at n = 10^5 through
  // the default weighted path.  Path::kAuto must pick the hierarchical
  // sampler for line-of-traps (its declared extra-pair classes are
  // supported), so a budget-capped run completes where the old dense-only
  // routing could not even allocate.
  const u64 n = preferred_population("line-of-traps", 100000);
  EXPECT_GE(n, 90000u);
  SchedulerSpec spec;
  spec.kind = SchedulerKind::kWeighted;
  spec.kernel = WeightKernel::kRingDecay;
  const SchedulerPtr sched = make_scheduler(spec, n);
  RunOptions opt;
  opt.max_interactions = 5 * n;
  const RunResult r =
      run_weighted_protocol(*sched, "line-of-traps", n, /*seed=*/15, opt);
  EXPECT_EQ(r.interactions, 5 * n);
  EXPECT_FALSE(r.silent);
  EXPECT_GT(r.productive_steps, 0u);
}

TEST(HierarchicalScale, TrapDecayRunsAtHundredThousand) {
  // weighted[trap-decay] at n = 10^5: O(states) aggregates, O(√states)
  // per event — a budget-capped run must complete, and the sampler's slot
  // count must stay linear in the state count.
  const u64 n = 100000;
  {
    ProtocolPtr p = make_protocol("ag", n);
    Rng rng(16);
    p->reset(initial::uniform_random(*p, rng));
    const TrapKernelSampler ts(*p, /*power=*/1);
    EXPECT_LE(ts.memory_slots(), 6 * p->num_states());
  }
  SchedulerSpec spec;
  spec.kind = SchedulerKind::kWeighted;
  spec.kernel = WeightKernel::kTrapDecay;
  const SchedulerPtr sched = make_scheduler(spec, n);
  RunOptions opt;
  opt.max_interactions = 2 * n;
  const RunResult r = run_weighted(*sched, n, /*seed=*/17, opt);
  EXPECT_EQ(r.interactions, 2 * n);
  EXPECT_FALSE(r.silent);
  EXPECT_GT(r.productive_steps, 0u);
}

TEST(HierarchicalScale, SparseMarkovRunsAtHundredThousand) {
  const u64 n = 100000;
  SchedulerSpec spec;
  spec.kind = SchedulerKind::kDynamicGraph;
  spec.graph = GraphKind::kCycle;
  spec.dynamics = GraphDynamics::kEdgeMarkovian;
  spec.edge_death = 2.0 / static_cast<double>(n);  // mix ~2x per unit of
                                                   // parallel time
  const SchedulerPtr sched = make_scheduler(spec, n);
  ProtocolPtr p = make_protocol("ag", n);
  Rng rng(14);
  p->reset(initial::uniform_random(*p, rng));
  RunOptions opt;
  opt.max_interactions = 2 * n;
  const RunResult r = sched->run(*p, rng, opt);
  EXPECT_EQ(r.interactions, 2 * n);
  EXPECT_FALSE(r.silent);
}

// ---- pinned trajectories --------------------------------------------------

// Fixed-seed runs through the two new default paths.  The values pin the
// paths' rng consumption: a refactor that changes how either path draws
// randomness must consciously re-record them (the statistical suites
// above decide whether the new consumption is still correct).
TEST(HierarchicalPins, WeightedRingDecayTrajectory) {
  const WeightedScheduler sched(WeightKernel::kRingDecay);
  const RunResult r = run_weighted(sched, 32, /*seed=*/424242);
  EXPECT_TRUE(r.silent);
  EXPECT_EQ(r.interactions, 13905u);
  EXPECT_EQ(r.productive_steps, 68u);
}

TEST(HierarchicalPins, WeightedRingDecayLineOfTrapsTrajectory) {
  // Extra-state protocol through the grouped sampler's extra-class window:
  // pins the combined rank+extra draw and the row-CDF partner inversion.
  const WeightedScheduler sched(WeightKernel::kRingDecay);
  const u64 n = preferred_population("line-of-traps", 72);
  const RunResult r =
      run_weighted_protocol(sched, "line-of-traps", n, /*seed=*/424242);
  EXPECT_TRUE(r.silent);
  EXPECT_EQ(r.interactions, 357260u);
  EXPECT_EQ(r.productive_steps, 462u);
}

TEST(HierarchicalPins, WeightedRingDecayTreeRankingTrajectory) {
  const WeightedScheduler sched(WeightKernel::kRingDecay);
  const u64 n = preferred_population("tree-ranking", 72);
  const RunResult r =
      run_weighted_protocol(sched, "tree-ranking", n, /*seed=*/424242);
  EXPECT_TRUE(r.silent);
  EXPECT_EQ(r.interactions, 42014u);
  EXPECT_EQ(r.productive_steps, 2660u);
}

TEST(HierarchicalPins, WeightedTrapDecayTrajectory) {
  // Pins the trap sampler's single-draw firing (rank-diagonal vs
  // extra-window split, trap scans) end to end.
  const WeightedScheduler sched(WeightKernel::kTrapDecay);
  const u64 n = preferred_population("line-of-traps", 72);
  const RunResult r =
      run_weighted_protocol(sched, "line-of-traps", n, /*seed=*/424242);
  EXPECT_TRUE(r.silent);
  EXPECT_EQ(r.interactions, 287366u);
  EXPECT_EQ(r.productive_steps, 1431u);
}

TEST(HierarchicalPins, SparseMarkovTrajectory) {
  SchedulerSpec spec;
  spec.kind = SchedulerKind::kDynamicGraph;
  spec.graph = GraphKind::kCycle;
  spec.dynamics = GraphDynamics::kEdgeMarkovian;
  const DynamicGraphScheduler sched(spec, 32);
  ProtocolPtr p = make_protocol("ag", 32);
  Rng rng(424242);
  p->reset(initial::uniform_random(*p, rng));
  RunOptions opt;
  opt.max_interactions = 20 * 32 * 32 * 32;
  const RunResult r = sched.run(*p, rng, opt);
  EXPECT_TRUE(r.silent);
  EXPECT_EQ(r.interactions, 21593u);
  EXPECT_EQ(r.productive_steps, 68u);
}

}  // namespace
}  // namespace pp
