// Tests for the parallel Monte-Carlo runner (src/runner/): the thread
// pool, the per-trial seed streams, thread-count-independent determinism
// of both records and aggregates, equivalence with the legacy serial
// harness, and the CSV/JSONL sinks.
#include "runner/runner.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/experiment.hpp"
#include "analysis/stats.hpp"
#include "protocols/factory.hpp"
#include "runner/seed_stream.hpp"
#include "runner/sink.hpp"
#include "runner/thread_pool.hpp"
#include "schedulers/scheduler.hpp"

namespace pp {
namespace {

// ---- ThreadPool ----------------------------------------------------------

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  for (const u64 threads : {1u, 2u, 3u, 8u}) {
    for (const u64 count : {0u, 1u, 7u, 64u, 1000u}) {
      ThreadPool pool(threads);
      EXPECT_EQ(pool.size(), threads);
      std::vector<std::atomic<u32>> hits(count);
      pool.parallel_for(count, [&](u64 i) {
        ASSERT_LT(i, count);
        hits[i].fetch_add(1);
      });
      for (u64 i = 0; i < count; ++i) {
        EXPECT_EQ(hits[i].load(), 1u) << "index " << i;
      }
    }
  }
}

TEST(ThreadPool, SequentialJobsOnOnePool) {
  ThreadPool pool(4);
  for (int round = 0; round < 20; ++round) {
    std::atomic<u64> sum{0};
    pool.parallel_for(100, [&](u64 i) { sum.fetch_add(i + 1); });
    EXPECT_EQ(sum.load(), 5050u);
  }
}

// Regression for a wakeup race: with far more threads than indices, most
// workers wake only after the job is fully drained — possibly after the
// next job was already submitted (with its own stack-local fn).  A late
// waker must never touch a retired job's function object.
TEST(ThreadPool, LateWakingWorkersOnTinyBackToBackJobs) {
  ThreadPool pool(8);
  u64 total = 0;
  for (int round = 0; round < 500; ++round) {
    std::atomic<u64> hits{0};
    pool.parallel_for(1, [&](u64) { hits.fetch_add(1); });
    ASSERT_EQ(hits.load(), 1u) << "round " << round;
    total += hits.load();
  }
  EXPECT_EQ(total, 500u);
}

TEST(ThreadPool, ChunkSizeCoversAllWorkloads) {
  EXPECT_EQ(ThreadPool::chunk_size(0, 8), 1u);
  EXPECT_EQ(ThreadPool::chunk_size(7, 8), 1u);
  EXPECT_GE(ThreadPool::chunk_size(10000, 2), 1u);
  // Chunks are small enough that every thread gets work.
  EXPECT_LE(ThreadPool::chunk_size(1000, 8) * 8, 1000u);
}

// ---- SeedStream ----------------------------------------------------------

TEST(SeedStream, MatchesLegacyDerivation) {
  const SeedStream s(kDefaultRootSeed, "exp");
  for (u64 t = 0; t < 10; ++t) {
    EXPECT_EQ(s.trial_seed(t), derive_seed(kDefaultRootSeed, "exp", t));
  }
}

TEST(SeedStream, TrialAndSubSeedsAreDistinct) {
  const SeedStream s(1234, "label");
  std::set<u64> seen;
  for (u64 t = 0; t < 50; ++t) {
    seen.insert(s.trial_seed(t));
    seen.insert(s.sub_seed(t, "config"));
    seen.insert(s.sub_seed(t, "faults"));
  }
  EXPECT_EQ(seen.size(), 150u);
}

// ---- runner determinism --------------------------------------------------

TrialSpec ring_spec(u64 n = 126) {
  TrialSpec spec;
  spec.protocol = "ring-of-traps";
  spec.n = n;
  spec.label = "test-runner";
  return spec;
}

bool records_equal(const std::vector<TrialRecord>& a,
                   const std::vector<TrialRecord>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].trial != b[i].trial || a[i].seed != b[i].seed ||
        a[i].interactions != b[i].interactions ||
        a[i].productive_steps != b[i].productive_steps ||
        a[i].fault_events != b[i].fault_events ||
        a[i].parallel_time != b[i].parallel_time ||
        a[i].silent != b[i].silent || a[i].valid != b[i].valid) {
      return false;
    }
  }
  return true;
}

// The tentpole guarantee: same master seed + same spec => bit-identical
// records and aggregates for 1, 2 and 8 threads.
TEST(Runner, AggregatesAreThreadCountIndependent) {
  const TrialSpec spec = ring_spec();
  RunnerOptions opt;
  opt.trials = 24;
  opt.master_seed = 99;

  opt.threads = 1;
  const TrialSet base = run_trials(spec, opt);
  for (const u64 threads : {2u, 8u}) {
    opt.threads = threads;
    const TrialSet set = run_trials(spec, opt);
    EXPECT_TRUE(records_equal(base.records, set.records))
        << threads << " threads";
    // Aggregates are folded in trial order, so they are bit-identical,
    // not merely close.
    EXPECT_EQ(base.stats.trials, set.stats.trials);
    EXPECT_EQ(base.stats.timeouts, set.stats.timeouts);
    EXPECT_EQ(base.stats.invalid, set.stats.invalid);
    EXPECT_EQ(base.stats.parallel_time.mean(), set.stats.parallel_time.mean());
    EXPECT_EQ(base.stats.parallel_time.stddev(),
              set.stats.parallel_time.stddev());
    EXPECT_EQ(base.stats.parallel_time.min(), set.stats.parallel_time.min());
    EXPECT_EQ(base.stats.parallel_time.max(), set.stats.parallel_time.max());
    EXPECT_EQ(base.stats.interactions.mean(), set.stats.interactions.mean());
    EXPECT_EQ(base.stats.productive_steps.mean(),
              set.stats.productive_steps.mean());
  }
}

TEST(Runner, RecordsAreTrialIndexOrdered) {
  RunnerOptions opt;
  opt.trials = 40;
  opt.threads = 8;
  const SeedStream seeds(opt.master_seed, "test-runner");
  const TrialSet set = run_trials(ring_spec(), opt);
  ASSERT_EQ(set.records.size(), 40u);
  for (u64 t = 0; t < 40; ++t) {
    EXPECT_EQ(set.records[t].trial, t);
    EXPECT_EQ(set.records[t].seed, seeds.trial_seed(t));
  }
}

// The runner reproduces the legacy serial harness exactly: same seed
// derivation, same per-trial Rng usage, same numbers.
TEST(Runner, MatchesLegacySerialMeasure) {
  MeasureOptions legacy;
  legacy.trials = 12;
  legacy.root_seed = 4242;
  legacy.label = "compat";
  const Measurement m =
      measure([] { return make_protocol("ring-of-traps", 126); },
              gen_uniform_random(), legacy);

  TrialSpec spec = ring_spec();
  spec.label = "compat";
  spec.init = gen_uniform_random();
  RunnerOptions opt;
  opt.trials = 12;
  opt.threads = 4;
  opt.master_seed = 4242;
  const TrialSet set = run_trials(spec, opt);

  ASSERT_EQ(set.records.size(), m.parallel_times.size());
  for (size_t i = 0; i < m.parallel_times.size(); ++i) {
    EXPECT_EQ(set.records[i].parallel_time, m.parallel_times[i]) << i;
  }
  EXPECT_EQ(set.stats.timeouts, m.timeouts);
  EXPECT_EQ(set.stats.invalid, m.invalid);
}

TEST(Runner, TimeoutsAreCountedAndCensored) {
  TrialSpec spec = ring_spec();
  spec.max_interactions = 100;  // far below stabilisation at n=126
  RunnerOptions opt;
  opt.trials = 6;
  opt.threads = 2;
  const TrialSet set = run_trials(spec, opt);
  EXPECT_EQ(set.stats.timeouts, 6u);
  for (const TrialRecord& r : set.records) {
    EXPECT_FALSE(r.silent);
    EXPECT_EQ(r.interactions, 100u);
  }
}

TEST(Runner, UniformAndAdversarialEnginesRun) {
  TrialSpec spec = ring_spec(30);
  RunnerOptions opt;
  opt.trials = 4;
  opt.threads = 2;

  spec.engine = EngineKind::kUniform;
  const TrialSet uni = run_trials(spec, opt);
  EXPECT_EQ(uni.stats.timeouts, 0u);
  EXPECT_EQ(uni.stats.invalid, 0u);

  // Hostile models go through the same scheduler path as everything else
  // (EngineKind::kAdversarial is retired).
  spec.engine = EngineKind::kScheduled;
  spec.scheduler.kind = SchedulerKind::kAdversarial;
  spec.scheduler.adversary = AdversaryPolicy::kMaxLoad;
  const TrialSet adv = run_trials(spec, opt);
  EXPECT_EQ(adv.stats.timeouts, 0u);
  for (const TrialRecord& r : adv.records) {
    EXPECT_TRUE(r.silent && r.valid);
    // The adversary fires only productive pairs.
    EXPECT_EQ(r.interactions, r.productive_steps);
  }
}

TEST(Runner, KeepRecordsFalseStillAggregates) {
  RunnerOptions opt;
  opt.trials = 8;
  opt.threads = 2;
  opt.keep_records = false;
  const TrialSet set = run_trials(ring_spec(), opt);
  EXPECT_TRUE(set.records.empty());
  EXPECT_EQ(set.stats.trials, 8u);
  EXPECT_GT(set.stats.parallel_time.mean(), 0.0);
}

TEST(Runner, ExplicitFactoryOverridesRegistryName) {
  TrialSpec spec;
  spec.factory = [] { return make_protocol("ag", 16); };
  spec.label = "factory";
  RunnerOptions opt;
  opt.trials = 3;
  opt.threads = 1;
  const TrialSet set = run_trials(spec, opt);
  EXPECT_EQ(set.stats.trials, 3u);
  EXPECT_EQ(set.stats.invalid, 0u);
}

// ---- sinks ---------------------------------------------------------------

TEST(Sink, CsvWritesHeaderAndOneRowPerTrial) {
  RunnerOptions opt;
  opt.trials = 5;
  opt.threads = 2;
  const TrialSet set = run_trials(ring_spec(), opt);

  std::ostringstream out;
  CsvSink sink(out);
  sink.write_trials(ring_spec(), set);
  std::istringstream in(out.str());
  std::string line;
  u64 lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    if (lines == 1) {
      EXPECT_EQ(line.substr(0, 6), "label,");
    } else {
      EXPECT_NE(line.find("test-runner,ring-of-traps,126,accelerated,"),
                std::string::npos);
    }
  }
  EXPECT_EQ(lines, 6u);  // header + 5 trials
}

TEST(Sink, DegenerateAggregateStaysFinite) {
  // A single-trial aggregate is the NaN hazard: every n-1 denominator and
  // sqrt(count) division is degenerate.  The stats layer clamps them to 0
  // and the sinks assert finiteness, so the serialized artifact must never
  // contain a non-finite token.
  RunnerOptions opt;
  opt.trials = 1;
  const TrialSet set = run_trials(ring_spec(), opt);
  EXPECT_EQ(set.stats.parallel_time.count(), 1u);
  std::ostringstream csv;
  std::ostringstream jsonl;
  {
    CsvSink sink(csv);
    sink.write_aggregate(ring_spec(), set);
  }
  {
    JsonlSink sink(jsonl);
    sink.write_aggregate(ring_spec(), set);
  }
  for (const std::string& text : {csv.str(), jsonl.str()}) {
    EXPECT_FALSE(text.empty());
    EXPECT_EQ(text.find("nan"), std::string::npos) << text;
    EXPECT_EQ(text.find("inf"), std::string::npos) << text;
  }
}

TEST(Sink, CsvOutputIsThreadCountInvariant) {
  RunnerOptions opt;
  opt.trials = 10;
  std::string texts[2];
  const u64 threads[2] = {1, 8};
  for (int i = 0; i < 2; ++i) {
    opt.threads = threads[i];
    const TrialSet set = run_trials(ring_spec(), opt);
    std::ostringstream out;
    CsvSink sink(out);
    sink.write_trials(ring_spec(), set);
    texts[i] = out.str();
  }
  EXPECT_EQ(texts[0], texts[1]);
}

// Companion pin for lint rule R2 (no iteration over unordered containers
// in src/): the sparse edge-Markovian scheduler is the one model whose
// internal state is hash-indexed (the pair->roster-entry map).  If hash
// iteration order ever leaked into pair selection, trial rows — and the
// aggregates folded from them in trial-index order — would drift with the
// thread count; both must stay bit-identical across 1 and 8 threads.
// (The aggregate JSONL line carries wall_seconds/threads, which are
// documented as outside the determinism contract, so the aggregate is
// pinned on the folded stats rather than on bytes.)
TEST(Sink, JsonlTrialsAreThreadCountInvariantUnderDynamicGraph) {
  TrialSpec spec;
  spec.protocol = "ag";
  spec.n = 64;
  spec.label = "test-runner-dyn";
  spec.engine = EngineKind::kScheduled;
  spec.scheduler.kind = SchedulerKind::kDynamicGraph;
  spec.scheduler.graph = GraphKind::kCycle;
  spec.scheduler.dynamics = GraphDynamics::kEdgeMarkovian;
  spec.max_interactions = 500000;

  RunnerOptions opt;
  opt.trials = 6;
  std::string texts[2];
  AggregateStats stats[2];
  const u64 threads[2] = {1, 8};
  for (int i = 0; i < 2; ++i) {
    opt.threads = threads[i];
    const TrialSet set = run_trials(spec, opt);
    std::ostringstream out;
    JsonlSink sink(out);
    sink.write_trials(spec, set);
    texts[i] = out.str();
    stats[i] = set.stats;
  }
  EXPECT_EQ(texts[0], texts[1]);
  EXPECT_EQ(stats[0].timeouts, stats[1].timeouts);
  EXPECT_EQ(stats[0].fault_events, stats[1].fault_events);
  EXPECT_EQ(stats[0].parallel_time.mean(), stats[1].parallel_time.mean());
  EXPECT_EQ(stats[0].interactions.mean(), stats[1].interactions.mean());
}

TEST(Sink, JsonlEmitsOneObjectPerTrialPlusAggregate) {
  RunnerOptions opt;
  opt.trials = 4;
  opt.threads = 2;
  const TrialSet set = run_trials(ring_spec(), opt);

  std::ostringstream out;
  JsonlSink sink(out);
  sink.write_trials(ring_spec(), set);
  sink.write_aggregate(ring_spec(), set);
  std::istringstream in(out.str());
  std::string line;
  u64 trials = 0, aggregates = 0;
  while (std::getline(in, line)) {
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    if (line.find("\"kind\":\"trial\"") != std::string::npos) ++trials;
    if (line.find("\"kind\":\"aggregate\"") != std::string::npos) {
      ++aggregates;
      EXPECT_NE(line.find("\"trials\":4"), std::string::npos);
    }
  }
  EXPECT_EQ(trials, 4u);
  EXPECT_EQ(aggregates, 1u);
}

TEST(Sink, JsonEscapeHandlesSpecials) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb"), "a\\nb");
  EXPECT_EQ(json_escape(std::string_view("a\x01z", 3)), "a\\u0001z");
}

// ---- RunningStat (the aggregate accumulator) -----------------------------

TEST(RunningStat, MatchesBatchStatistics) {
  const std::vector<double> xs{3.0, 1.5, 4.25, 1.125, 5.5, 9.0, 2.625};
  RunningStat s;
  for (const double x : xs) s.push(x);
  EXPECT_EQ(s.count(), xs.size());
  EXPECT_NEAR(s.mean(), mean_of(xs), 1e-12);
  EXPECT_NEAR(s.stddev(), stddev_of(xs), 1e-12);
  EXPECT_EQ(s.min(), 1.125);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(RunningStat, MergeEqualsConcatenation) {
  RunningStat a, b, all;
  for (int i = 0; i < 10; ++i) {
    const double x = static_cast<double>(i * i % 7);
    a.push(x);
    all.push(x);
  }
  for (int i = 10; i < 25; ++i) {
    const double x = static_cast<double>(i * 3 % 11);
    b.push(x);
    all.push(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-12);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());

  RunningStat empty;
  empty.merge(a);
  EXPECT_EQ(empty.count(), a.count());
  a.merge(RunningStat());
  EXPECT_EQ(a.count(), all.count());
}

}  // namespace
}  // namespace pp
