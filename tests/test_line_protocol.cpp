// Tests of the one-extra-state line-of-traps protocol (§4): rule
// semantics, the Lemma 5 schedule-independent line outcome, the Lemma 10
// identity s(C) = d(C), and stabilisation from assorted starts.
#include "protocols/line_of_traps.hpp"

#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "core/initial.hpp"

namespace pp {
namespace {

TEST(Line, Dimensions) {
  LineOfTrapsProtocol p(72);  // m = 2
  EXPECT_EQ(p.num_agents(), 72u);
  EXPECT_EQ(p.num_ranks(), 72u);
  EXPECT_EQ(p.num_extra_states(), 1u);
  EXPECT_EQ(p.x_state(), 72u);
  EXPECT_EQ(p.layout().m(), 2u);
}

TEST(Line, ValidRankingIsSilent) {
  LineOfTrapsProtocol p(72);
  p.reset(initial::valid_ranking(p));
  EXPECT_TRUE(p.is_silent());
  EXPECT_TRUE(p.is_valid_ranking());
  EXPECT_EQ(p.global_deficit(), 0u);
  EXPECT_EQ(p.global_surplus(), 0u);
  EXPECT_EQ(p.global_excess(), 0u);
}

TEST(Line, ExitGateReleasesToX) {
  LineOfTrapsProtocol p(72);
  Configuration c = initial::valid_ranking(p);
  const StateId exit = p.layout().exit_gate(0);
  const StateId top0 = p.layout().top(0, 0);
  c.counts[exit] = 3;           // 2 extra agents at line 0's exit gate
  c.counts[top0] = 0;           // taken from the top inner state
  c.counts[p.layout().gate(0, 1)] = 0;  // and the next gate
  p.reset(c);
  Rng rng(1);
  // The only productive pairs sit at the exit gate.
  p.step_productive(rng);
  EXPECT_EQ(p.counts()[exit], 1u);
  EXPECT_EQ(p.counts()[top0], 1u);
  EXPECT_EQ(p.counts()[p.x_state()], 1u) << "one agent released to X";
}

TEST(Line, XRoutingTargetsEntranceGates) {
  LineOfTrapsProtocol p(72);
  Configuration c = initial::valid_ranking(p);
  // One agent in X, its rank-state slot empty.
  c.counts[p.x_state()] = 1;
  c.counts[10] = 0;
  p.reset(c);
  EXPECT_FALSE(p.is_silent()) << "a lone X agent still interacts";
  Rng rng(2);
  p.step_productive(rng);
  EXPECT_EQ(p.counts()[p.x_state()], 0u);
  // The agent landed on some entrance gate.
  u64 on_entrances = 0;
  for (u64 l = 0; l < p.layout().num_lines(); ++l) {
    on_entrances += p.counts()[p.layout().entrance_gate(l)] > 1 ? 1 : 0;
  }
  EXPECT_EQ(on_entrances, 1u);
}

TEST(Line, PredictOutcomeEmptyLine) {
  const std::vector<u64> beta{0, 0, 0};
  const std::vector<u64> gamma{0, 0, 0};
  const std::vector<u64> cap{2, 2, 2};
  const LineOutcome out = predict_line_outcome(beta, gamma, cap);
  EXPECT_EQ(out.released, 0u);
  EXPECT_EQ(out.excess, 0u);
  EXPECT_EQ(out.deficit, 9u);  // 3 traps x 3 states, all empty
}

TEST(Line, PredictOutcomeFullySaturatedLine) {
  const std::vector<u64> beta{2, 2, 2};
  const std::vector<u64> gamma{1, 1, 1};
  const std::vector<u64> cap{2, 2, 2};
  const LineOutcome out = predict_line_outcome(beta, gamma, cap);
  EXPECT_EQ(out.released, 0u);
  EXPECT_EQ(out.deficit, 0u);
  for (const u64 a : out.alpha) EXPECT_EQ(a, 2u);
  for (const u64 d : out.delta) EXPECT_EQ(d, 1u);
}

TEST(Line, PredictOutcomeSurplusFlowsThrough) {
  // Entrance trap (index 2) holds 6 agents at its gate; caps are 1.
  const std::vector<u64> beta{0, 0, 0};
  const std::vector<u64> gamma{0, 0, 6};
  const std::vector<u64> cap{1, 1, 1};
  const LineOutcome out = predict_line_outcome(beta, gamma, cap);
  // Trap 2: y=6, half=3 > cap -> alpha=1, delta=1, pass 0+6-1-1=4.
  // Trap 1: y=4, half=2 > cap -> alpha=1, delta=1, pass 0+4-1-1=2.
  // Trap 0: y=2, half=1 = cap -> alpha=1, delta=0, release 1.
  EXPECT_EQ(out.alpha, (std::vector<u64>{1, 1, 1}));
  EXPECT_EQ(out.delta, (std::vector<u64>{0, 1, 1}));
  EXPECT_EQ(out.released, 1u);
  // Conservation: 6 = alpha+delta+released.
  EXPECT_EQ(out.alpha[0] + out.alpha[1] + out.alpha[2] + out.delta[0] +
                out.delta[1] + out.delta[2] + out.released,
            6u);
}

TEST(Line, PredictOutcomeConservesAgents) {
  Rng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    const u64 traps = 2 + rng.below(5);
    std::vector<u64> beta(traps), gamma(traps), cap(traps);
    u64 total = 0;
    for (u64 a = 0; a < traps; ++a) {
      cap[a] = 1 + rng.below(4);
      beta[a] = rng.below(2 * cap[a]);
      gamma[a] = rng.below(5);
      total += beta[a] + gamma[a];
    }
    const LineOutcome out = predict_line_outcome(beta, gamma, cap);
    u64 kept = out.released;
    for (u64 a = 0; a < traps; ++a) kept += out.alpha[a] + out.delta[a];
    EXPECT_EQ(kept, total) << "agents lost or created by the recurrence";
    for (u64 a = 0; a < traps; ++a) {
      EXPECT_LE(out.alpha[a], cap[a]);
      EXPECT_LE(out.delta[a], 1u);
    }
  }
}

TEST(Line, Lemma10SurplusEqualsDeficit) {
  LineOfTrapsProtocol p(72);
  Rng rng(4);
  for (int trial = 0; trial < 10; ++trial) {
    p.reset(initial::uniform_random(p, rng));
    EXPECT_EQ(p.global_surplus(), p.global_deficit());
    EXPECT_LE(p.global_surplus(), p.global_excess()) << "s(C) <= r(C)";
  }
}

TEST(Line, Lemma10HoldsAlongTrajectories) {
  LineOfTrapsProtocol p(72);
  Rng rng(5);
  p.reset(initial::uniform_random(p, rng));
  RunOptions opt;
  u64 checks = 0;
  opt.on_change = [&](const Protocol&, u64) {
    if (++checks % 16 == 0) {  // subsample: the check is O(n)
      EXPECT_EQ(p.global_surplus(), p.global_deficit());
    }
    return true;
  };
  const RunResult r = run_accelerated(p, rng, opt);
  EXPECT_TRUE(r.valid);
}

TEST(Line, StabilisesFromAssortedStarts) {
  LineOfTrapsProtocol p(72);
  Rng rng(6);
  // All agents in X.
  p.reset(initial::all_in_state(p, p.x_state()));
  EXPECT_TRUE(run_accelerated(p, rng).valid);
  // All agents on one exit gate.
  p.reset(initial::all_in_state(p, p.layout().exit_gate(3)));
  EXPECT_TRUE(run_accelerated(p, rng).valid);
  // Uniform random over all 73 states.
  p.reset(initial::uniform_random(p, rng));
  EXPECT_TRUE(run_accelerated(p, rng).valid);
}

TEST(Line, StabilisesOnNonCanonicalSizes) {
  for (const u64 n : {73u, 100u, 150u}) {
    LineOfTrapsProtocol p(n);
    Rng rng(n);
    p.reset(initial::uniform_random(p, rng));
    EXPECT_TRUE(run_accelerated(p, rng).valid) << "n=" << n;
  }
}

// --- SingleLineProtocol / Lemma 5 ---------------------------------------

TEST(SingleLine, Lemma5OutcomeIsScheduleIndependent) {
  // A tidy starting configuration of one line must always release the
  // predicted number of agents and stabilise to the predicted alpha/delta
  // vectors, whatever the schedule.
  const u64 traps = 4, inner = 3;
  Rng gen(7);
  for (int trial = 0; trial < 8; ++trial) {
    // Build a tidy random line: inner states filled from the top down.
    std::vector<u64> beta(traps), gamma(traps), cap(traps, inner);
    for (u64 a = 0; a < traps; ++a) {
      beta[a] = gen.below(2 * inner);
      gamma[a] = gen.below(4);
    }
    const LineOutcome predicted = predict_line_outcome(beta, gamma, cap);

    for (const u64 seed : {11u, 22u, 33u}) {
      SingleLineProtocol p(/*num_agents=*/[&] {
        u64 t = 0;
        for (u64 a = 0; a < traps; ++a) t += beta[a] + gamma[a];
        return t < 2 ? 2 : t;
      }(), traps, inner);
      Configuration c;
      c.counts.assign(p.num_states(), 0);
      u64 placed = 0;
      for (u64 a = 0; a < traps; ++a) {
        c.counts[p.gate(a)] = gamma[a];
        // Tidy fill: pile agents on the highest inner states first.
        u64 remaining = beta[a];
        for (u64 b = inner; b >= 1 && remaining > 0; --b) {
          const u64 put = (b == 1) ? remaining : std::min<u64>(remaining, 2);
          c.counts[p.gate(a) + b] += put;
          remaining -= put;
        }
        placed += beta[a] + gamma[a];
      }
      if (placed < 2) c.counts[p.gate(0)] += 2 - placed;  // tiny fixup
      p.reset(c);
      Rng rng(seed);
      const RunResult r = run_accelerated(p, rng);
      EXPECT_TRUE(r.silent);
      if (placed < 2) continue;  // fixup breaks the prediction; skip checks
      EXPECT_EQ(p.released(), predicted.released)
          << "trial " << trial << " seed " << seed;
      EXPECT_EQ(p.beta(), predicted.alpha);
      EXPECT_EQ(p.gamma(), predicted.delta);
    }
  }
}

// Boundary pin at a 10^5-state space for the beta()/gamma() index
// arithmetic (the hardened -Wconversion sweep rewrote beta()'s inner-state
// walk; an off-by-one or narrowed StateId would misread a neighbouring
// trap's gate, which the distinct per-state counts below would catch —
// gates carry >= 100 agents, inner state gate(a)+b carries exactly b).
TEST(SingleLine, BetaGammaIndexArithmeticAtHundredThousandStates) {
  const u64 traps = 1000, inner = 99;  // num_ranks = traps * (inner+1) = 1e5
  std::vector<u64> counts(traps * (inner + 1) + 1, 0);
  u64 total = 0;
  for (u64 a = 0; a < traps; ++a) {
    counts[a * (inner + 1)] = 100 + a % 7;  // gate
    total += 100 + a % 7;
    for (u64 b = 1; b <= inner; ++b) {
      counts[a * (inner + 1) + b] = b;
      total += b;
    }
  }
  SingleLineProtocol p(total, traps, inner);
  ASSERT_EQ(p.num_ranks(), 100000u);
  ASSERT_EQ(p.x_state(), 100000u);
  Configuration c;
  c.counts = counts;
  p.reset(c);

  const u64 inner_sum = inner * (inner + 1) / 2;  // sum of 1..99 = 4950
  const std::vector<u64> beta = p.beta();
  const std::vector<u64> gamma = p.gamma();
  ASSERT_EQ(beta.size(), traps);
  ASSERT_EQ(gamma.size(), traps);
  for (const u64 a : {u64{0}, u64{1}, traps / 2, traps - 2, traps - 1}) {
    EXPECT_EQ(beta[a], inner_sum) << "trap " << a;
    EXPECT_EQ(gamma[a], 100 + a % 7) << "trap " << a;
  }
  EXPECT_EQ(p.released(), 0u);
}

TEST(SingleLine, XIsAbsorbing) {
  SingleLineProtocol p(10, 2, 2);
  Configuration c;
  c.counts.assign(p.num_states(), 0);
  c.counts[p.x_state()] = 10;
  p.reset(c);
  EXPECT_TRUE(p.is_silent()) << "agents in X never interact productively";
  EXPECT_FALSE(p.is_valid_ranking());
}

}  // namespace
}  // namespace pp
