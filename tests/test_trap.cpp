// Tests of the trap vocabulary (§2.1): gaps, surplus, flat / saturated /
// full / tidy / stabilised predicates.
#include "structures/trap.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace pp {
namespace {

// counts[0] is the gate, counts[1..m] the inner states.

TEST(Trap, AgentsAndGaps) {
  const std::vector<u64> c{1, 0, 2, 0, 1};  // gate=1; inner 0,2,0,1
  EXPECT_EQ(trap::agents(c), 4u);
  EXPECT_EQ(trap::gaps(c), 2u);
}

TEST(Trap, GateDoesNotCountAsGap) {
  const std::vector<u64> c{0, 1, 1};
  EXPECT_EQ(trap::gaps(c), 0u);
}

TEST(Trap, SurplusZeroWhenUnderfull) {
  const std::vector<u64> c{0, 1, 0};  // capacity 3, 1 agent
  EXPECT_EQ(trap::surplus(c), 0u);
}

TEST(Trap, SurplusCountsBeyondCapacity) {
  const std::vector<u64> c{2, 3, 1};  // capacity 3 (m=2), 6 agents
  EXPECT_EQ(trap::surplus(c), 3u);
}

TEST(Trap, FlatMeansNoOverloadedInnerState) {
  EXPECT_TRUE(trap::is_flat(std::vector<u64>{5, 1, 0, 1}));  // gate overload ok
  EXPECT_FALSE(trap::is_flat(std::vector<u64>{0, 2, 0}));
}

TEST(Trap, SaturatedAndFull) {
  const std::vector<u64> saturated_not_full{0, 1, 1};  // 2 agents, cap 3
  EXPECT_TRUE(trap::is_saturated(saturated_not_full));
  EXPECT_FALSE(trap::is_full(saturated_not_full));

  const std::vector<u64> full{1, 1, 1};
  EXPECT_TRUE(trap::is_full(full));

  const std::vector<u64> overfull{0, 2, 1};  // 3 agents, saturated
  EXPECT_TRUE(trap::is_full(overfull));

  const std::vector<u64> gap{1, 0, 2};
  EXPECT_FALSE(trap::is_full(gap));
}

TEST(Trap, TidyRequiresOverloadsAboveGaps) {
  // Overload at inner 3, gap at inner 1 -> tidy.
  EXPECT_TRUE(trap::is_tidy(std::vector<u64>{0, 0, 1, 2}));
  // Overload at inner 1, gap at inner 3 -> not tidy.
  EXPECT_FALSE(trap::is_tidy(std::vector<u64>{0, 2, 1, 0}));
  // No overloads or no gaps -> trivially tidy.
  EXPECT_TRUE(trap::is_tidy(std::vector<u64>{0, 1, 1, 1}));
  EXPECT_TRUE(trap::is_tidy(std::vector<u64>{0, 2, 2, 2}));
}

TEST(Trap, AlmostStabilised) {
  // Exactly m+1 agents, saturated, gate empty.
  EXPECT_TRUE(trap::is_almost_stabilised(std::vector<u64>{0, 2, 1}));
  EXPECT_FALSE(trap::is_almost_stabilised(std::vector<u64>{1, 1, 1}));
  EXPECT_FALSE(trap::is_almost_stabilised(std::vector<u64>{0, 1, 1}));
}

TEST(Trap, FullyStabilised) {
  EXPECT_TRUE(trap::is_fully_stabilised(std::vector<u64>{1, 1, 1}));
  EXPECT_FALSE(trap::is_fully_stabilised(std::vector<u64>{0, 2, 1}));
  EXPECT_FALSE(trap::is_fully_stabilised(std::vector<u64>{1, 1, 2}));
}

TEST(Trap, DegenerateSingleStateTrap) {
  const std::vector<u64> c{3};
  EXPECT_EQ(trap::agents(c), 3u);
  EXPECT_EQ(trap::gaps(c), 0u);
  EXPECT_TRUE(trap::is_flat(c));
  EXPECT_TRUE(trap::is_saturated(c));
  EXPECT_EQ(trap::surplus(c), 2u);
}

}  // namespace
}  // namespace pp
