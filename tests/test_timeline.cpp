// Tests for the convergence-timeline observer.
#include "analysis/timeline.hpp"

#include <gtest/gtest.h>

#include "core/initial.hpp"
#include "protocols/factory.hpp"

namespace pp {
namespace {

TEST(Timeline, SamplesAreGeometricallySpacedAndFinal) {
  ProtocolPtr p = make_protocol("ag", 64);
  Rng rng(1);
  p->reset(initial::all_in_state(*p, 0));
  Timeline tl(1.0, 2.0);
  RunOptions opt;
  opt.on_change = tl.observer();
  const RunResult r = run_accelerated(*p, rng, opt);
  tl.finish(*p, r);

  ASSERT_GE(tl.samples().size(), 3u);
  for (u64 i = 1; i < tl.samples().size(); ++i) {
    EXPECT_GE(tl.samples()[i].time, tl.samples()[i - 1].time);
  }
  const auto& last = tl.samples().back();
  EXPECT_DOUBLE_EQ(last.time, r.parallel_time);
  EXPECT_EQ(last.weight, 0u) << "final snapshot is silent";
  EXPECT_EQ(last.ranks_held, 64u);
  EXPECT_EQ(last.k_distance, 0u);
  EXPECT_EQ(last.max_load, 1u);
}

TEST(Timeline, TracksExtraAgentsForTreeProtocol) {
  ProtocolPtr p = make_protocol("tree-ranking", 64);
  Rng rng(2);
  // Start with everyone on the buffer line -> first samples show extra
  // agents, final sample shows none.
  p->reset(initial::all_in_state(*p, static_cast<StateId>(p->num_ranks())));
  Timeline tl(0.5, 2.0);
  RunOptions opt;
  opt.on_change = tl.observer();
  const RunResult r = run_accelerated(*p, rng, opt);
  tl.finish(*p, r);
  EXPECT_TRUE(r.valid);
  EXPECT_GT(tl.samples().front().extra_agents, 0u);
  EXPECT_EQ(tl.samples().back().extra_agents, 0u);
}

TEST(Timeline, RanksHeldPlusKDistanceIsNumRanks) {
  ProtocolPtr p = make_protocol("ring-of-traps", 56);
  Rng rng(3);
  p->reset(initial::uniform_random(*p, rng));
  Timeline tl;
  RunOptions opt;
  opt.on_change = tl.observer();
  const RunResult r = run_accelerated(*p, rng, opt);
  tl.finish(*p, r);
  for (const auto& s : tl.samples()) {
    EXPECT_EQ(s.ranks_held + s.k_distance, 56u);
  }
}

TEST(Timeline, RatioControlsSampleDensity) {
  auto samples_with_ratio = [](double ratio) {
    ProtocolPtr p = make_protocol("ag", 48);
    Rng rng(9);
    p->reset(initial::all_in_state(*p, 0));
    Timeline tl(1.0, ratio);
    RunOptions opt;
    opt.on_change = tl.observer();
    tl.finish(*p, run_accelerated(*p, rng, opt));
    return tl.samples().size();
  };
  EXPECT_GT(samples_with_ratio(1.3), samples_with_ratio(4.0));
}

TEST(Timeline, ToTableHasOneRowPerSample) {
  ProtocolPtr p = make_protocol("ag", 32);
  Rng rng(4);
  p->reset(initial::all_in_state(*p, 0));
  Timeline tl;
  RunOptions opt;
  opt.on_change = tl.observer();
  tl.finish(*p, run_accelerated(*p, rng, opt));
  const std::string csv = tl.to_table("x").to_csv();
  u64 lines = 0;
  for (const char c : csv) lines += c == '\n' ? 1 : 0;
  EXPECT_EQ(lines, tl.samples().size() + 1);  // header + rows
}

}  // namespace
}  // namespace pp
