// Cross-scheduler conformance suite: every registered scheduler variant ×
// every protocol, one shared contract.
//
// The paper's self-stabilisation guarantee is scheduler-robustness: no
// interaction model in this library — benign, hostile, faulty or
// partitioned — may break the Scheduler contract.  For each
// (scheduler, protocol) pair the suite asserts:
//
//   * termination with an honest verdict: the run ends silent with a valid
//     ranking and zero productive weight, OR ends non-silent with global
//     productive weight remaining and a stated reason (budget exhausted,
//     or — graph-restricted only — a locally stuck configuration);
//   * RunResult invariants: interactions >= productive_steps, the budget
//     is respected, parallel time is finite and consistent with the run,
//     silent == valid, no spurious aborts;
//   * determinism: the same seed through the same (const, stateless)
//     scheduler instance reproduces the trajectory exactly — identical
//     RunResult and identical final configuration;
//   * models whose mixing is complete (everything except sparse
//     graph-restricted topologies and adversaries on the line protocol)
//     actually stabilise within a generous whp budget.
//
// The roster comes from all_scheduler_specs(); add a scheduler there and
// it is conformance-tested on every protocol automatically.  CTest labels
// this binary "conformance" (ctest -L conformance).
#include "schedulers/scheduler.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <string>
#include <vector>

#include "core/initial.hpp"
#include "protocols/factory.hpp"
#include "rng/seed_sequence.hpp"

namespace pp {
namespace {

struct Case {
  SchedulerSpec spec;
  std::string protocol;
};

std::vector<Case> conformance_cases() {
  std::vector<Case> cases;
  for (const SchedulerSpec& spec : all_scheduler_specs()) {
    for (const auto proto : protocol_names()) {
      cases.push_back({spec, std::string(proto)});
    }
  }
  return cases;
}

std::string case_label(const ::testing::TestParamInfo<Case>& info) {
  std::string s = info.param.spec.to_string() + "__" + info.param.protocol;
  for (char& c : s) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return s;
}

class SchedulerConformance : public ::testing::TestWithParam<Case> {
 protected:
  // The adversaries enumerate O(states^2) candidates per step, so they get
  // a small population and a tight budget; everything else gets the usual
  // generous whp headroom over the paper's uniform-scheduler bounds.
  u64 population() const {
    return preferred_population(GetParam().protocol, 16);
  }
  u64 budget() const {
    const u64 n = population();
    return GetParam().spec.kind == SchedulerKind::kAdversarial
               ? 10'000
               : 20 * n * n * n;
  }
  // Sparse topologies legitimately strand ranking (locally stuck), and the
  // hostile adversaries can cycle the line protocol forever; every other
  // pair must reach silence within the budget.
  bool must_stabilise() const {
    const Case& c = GetParam();
    if (c.spec.kind == SchedulerKind::kGraphRestricted) {
      return c.spec.graph == GraphKind::kComplete;
    }
    if (c.spec.kind == SchedulerKind::kAdversarial) {
      return c.protocol != "line-of-traps";
    }
    return true;
  }

  RunResult run_once(const Scheduler& sched, u64 seed, ProtocolPtr& out) {
    out = make_protocol(GetParam().protocol, population());
    Rng rng(seed);
    out->reset(initial::uniform_random(*out, rng));
    RunOptions opt;
    opt.max_interactions = budget();
    return sched.run(*out, rng, opt);
  }
};

TEST_P(SchedulerConformance, HonestVerdictAndRunResultInvariants) {
  const Case& c = GetParam();
  const SchedulerPtr sched = make_scheduler(c.spec, population());
  ASSERT_NE(sched, nullptr);
  EXPECT_EQ(sched->name(), c.spec.to_string());

  ProtocolPtr p;
  const u64 seed = derive_seed(70, c.spec.to_string(), population());
  const RunResult r = run_once(*sched, seed, p);

  // RunResult invariants.
  EXPECT_FALSE(r.aborted);
  EXPECT_GE(r.interactions, r.productive_steps);
  EXPECT_LE(r.interactions, budget());
  EXPECT_TRUE(std::isfinite(r.parallel_time));
  EXPECT_GE(r.parallel_time, 0.0);
  if (r.interactions > 0) EXPECT_GT(r.parallel_time, 0.0);

  // Honest verdict: silent == valid ranking == no productive weight left;
  // non-silent runs must still have global work to do AND a stated reason
  // to have stopped.
  EXPECT_EQ(r.silent, r.valid);
  EXPECT_EQ(r.silent, p->is_silent());
  if (r.silent) {
    EXPECT_TRUE(p->is_valid_ranking());
    EXPECT_EQ(p->productive_weight(), 0u);
  } else {
    EXPECT_GT(p->productive_weight(), 0u);
    if (c.spec.kind != SchedulerKind::kGraphRestricted) {
      EXPECT_EQ(r.interactions, budget())
          << "a non-graph scheduler stopped early without exhausting the "
             "budget";
    }
  }

  if (must_stabilise()) {
    EXPECT_TRUE(r.silent)
        << sched->name() << " failed to stabilise " << c.protocol
        << " within " << budget() << " interactions";
  }
}

TEST_P(SchedulerConformance, SameSeedSameTrajectory) {
  const Case& c = GetParam();
  // One shared const instance for both runs: schedulers hold only immutable
  // configuration, so replaying a seed must reproduce the run exactly.
  const SchedulerPtr sched = make_scheduler(c.spec, population());
  const u64 seed = derive_seed(71, c.spec.to_string(), population());

  ProtocolPtr a, b;
  const RunResult ra = run_once(*sched, seed, a);
  const RunResult rb = run_once(*sched, seed, b);
  EXPECT_EQ(ra.interactions, rb.interactions);
  EXPECT_EQ(ra.productive_steps, rb.productive_steps);
  EXPECT_EQ(ra.fault_events, rb.fault_events);
  EXPECT_EQ(ra.silent, rb.silent);
  EXPECT_EQ(ra.valid, rb.valid);
  EXPECT_EQ(ra.aborted, rb.aborted);
  EXPECT_EQ(ra.parallel_time, rb.parallel_time);
  EXPECT_EQ(a->counts(), b->counts());
}

INSTANTIATE_TEST_SUITE_P(AllSchedulersAllProtocols, SchedulerConformance,
                         ::testing::ValuesIn(conformance_cases()),
                         case_label);

TEST(SchedulerConformanceRoster, CoversEveryKindAndEveryPolicy) {
  // The roster must not silently lose a scheduler family: every enum value
  // of SchedulerKind and AdversaryPolicy appears at least once.
  const std::vector<SchedulerSpec> specs = all_scheduler_specs();
  for (const SchedulerKind kind : scheduler_kinds()) {
    bool found = false;
    for (const SchedulerSpec& s : specs) found |= s.kind == kind;
    EXPECT_TRUE(found) << scheduler_kind_name(kind);
  }
  for (const AdversaryPolicy policy : adversary_policies()) {
    bool found = false;
    for (const SchedulerSpec& s : specs) {
      found |= s.kind == SchedulerKind::kAdversarial && s.adversary == policy;
    }
    EXPECT_TRUE(found) << adversary_policy_name(policy);
  }
  // And every roster name is unique — duplicate names would make BENCH
  // records and conformance case labels collide.
  for (size_t i = 0; i < specs.size(); ++i) {
    for (size_t j = i + 1; j < specs.size(); ++j) {
      EXPECT_NE(specs[i].to_string(), specs[j].to_string());
    }
  }
}

}  // namespace
}  // namespace pp
