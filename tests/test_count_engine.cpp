// Count-vector engine and hybrid driver validation.
//
// The headline property is *bit-identity*: on a count-determined protocol
// the count engine consumes the generator exactly like run_accelerated
// (one geometric gap, one uniform draw below W through an
// identical-content Fenwick), so whole trajectories — and therefore the
// hybrid, whose tail is run_accelerated on the same generator — must match
// the exact agent-level engine seed for seed.  On top of that the hybrid
// is cross-validated statistically against the faithful run_uniform
// reference (mean-CI plus a quartile chi-squared on the stabilisation-time
// distribution, the test_hier_sampler pattern), so agreement does not rest
// on the bit-identity argument alone.
#include "core/count_engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/engine.hpp"
#include "core/hybrid_engine.hpp"
#include "core/initial.hpp"
#include "protocols/ag.hpp"
#include "protocols/line_of_traps.hpp"
#include "protocols/ring_of_traps.hpp"
#include "protocols/tree_ranking.hpp"

namespace pp {
namespace {

void expect_same_run(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.interactions, b.interactions);
  EXPECT_EQ(a.productive_steps, b.productive_steps);
  EXPECT_EQ(a.silent, b.silent);
  EXPECT_EQ(a.valid, b.valid);
  EXPECT_EQ(a.aborted, b.aborted);
  EXPECT_DOUBLE_EQ(a.parallel_time, b.parallel_time);
}

TEST(CountEngine, CapabilityFlags) {
  EXPECT_TRUE(AgProtocol(8).is_count_determined());
  EXPECT_TRUE(RingOfTrapsProtocol(12).is_count_determined());
  EXPECT_FALSE(TreeRankingProtocol(8).is_count_determined());
  EXPECT_FALSE(SingleLineProtocol(6, 2, 2).is_count_determined());
}

TEST(CountEngine, BitIdenticalToAcceleratedOnAg) {
  for (u64 seed = 1; seed <= 5; ++seed) {
    AgProtocol pa(64);
    AgProtocol pc(64);
    {
      Rng cfg(seed);
      const Configuration start = initial::uniform_random(pa, cfg);
      pa.reset(start);
      pc.reset(start);
    }
    Rng ra(100 + seed);
    Rng rc(100 + seed);
    const RunResult a = run_accelerated(pa, ra);
    const RunResult c = run_count(pc, rc);
    expect_same_run(a, c);
    EXPECT_TRUE(c.silent);
    EXPECT_TRUE(c.valid);
    EXPECT_EQ(pa.counts(), pc.counts());
    // Identical generator consumption, not just identical trajectories.
    EXPECT_EQ(ra.below(1u << 30), rc.below(1u << 30));
  }
}

TEST(CountEngine, BitIdenticalToAcceleratedOnRingOfTraps) {
  for (u64 seed = 1; seed <= 5; ++seed) {
    RingOfTrapsProtocol pa(30);
    RingOfTrapsProtocol pc(30);
    {
      Rng cfg(40 + seed);
      const Configuration start = initial::uniform_random(pa, cfg);
      pa.reset(start);
      pc.reset(start);
    }
    Rng ra(700 + seed);
    Rng rc(700 + seed);
    const RunResult a = run_accelerated(pa, ra);
    const RunResult c = run_count(pc, rc);
    expect_same_run(a, c);
    EXPECT_TRUE(c.valid);
    EXPECT_EQ(pa.counts(), pc.counts());
  }
}

TEST(CountEngine, ObserverKeepsProtocolLiveAndCanAbort) {
  AgProtocol p(32);
  Rng rng(9);
  p.reset(initial::all_in_state(p, 0));
  int calls = 0;
  RunOptions opt;
  opt.on_change = [&](const Protocol& q, u64) {
    // Sync mode: the observer must see the protocol object itself advance.
    u64 agents = 0;
    for (const u64 c : q.counts()) agents += c;
    EXPECT_EQ(agents, 32u);
    return ++calls < 5;
  };
  const RunResult r = run_count(p, rng, opt);
  EXPECT_TRUE(r.aborted);
  EXPECT_EQ(calls, 5);
  EXPECT_EQ(r.productive_steps, 5u);
  EXPECT_FALSE(r.silent);
}

TEST(CountEngine, BudgetExhaustionClampsExactly) {
  AgProtocol p(1000);
  Rng rng(11);
  p.reset(initial::uniform_random(p, rng));
  RunOptions opt;
  opt.max_interactions = 10;  // far below the expected first null gap
  const RunResult r = run_count(p, rng, opt);
  EXPECT_EQ(r.interactions, 10u);
  EXPECT_FALSE(r.silent);
  EXPECT_FALSE(r.aborted);
}

TEST(CountEngine, SilentStartTerminatesImmediately) {
  AgProtocol p(16);
  Rng rng(12);
  p.reset(initial::valid_ranking(p));
  const RunResult r = run_count(p, rng);
  EXPECT_EQ(r.interactions, 0u);
  EXPECT_TRUE(r.silent);
  EXPECT_TRUE(r.valid);
}

TEST(CountEngine, LargeNBudgetCappedRunIsCheap) {
  // The engine's reason to exist: per-event cost independent of n.  A
  // 10^6-agent run on a 5n interaction budget must be effectively instant
  // (a handful of productive events); this would take minutes on a
  // per-interaction simulator.
  const u64 n = 1000000;
  AgProtocol p(n);
  Rng rng(13);
  p.reset(initial::uniform_random(p, rng));
  RunOptions opt;
  opt.max_interactions = 5 * n;
  const RunResult r = run_count(p, rng, opt);
  EXPECT_EQ(r.interactions, 5 * n);
  EXPECT_FALSE(r.silent);
  EXPECT_GE(r.interactions, r.productive_steps);
}

TEST(HybridEngine, BitIdenticalToAcceleratedEndToEnd) {
  for (u64 seed = 1; seed <= 5; ++seed) {
    AgProtocol pa(64);
    AgProtocol ph(64);
    {
      Rng cfg(60 + seed);
      const Configuration start = initial::uniform_random(pa, cfg);
      pa.reset(start);
      ph.reset(start);
    }
    Rng ra(300 + seed);
    Rng rh(300 + seed);
    const RunResult a = run_accelerated(pa, ra);
    HybridReport report;
    const RunResult h = run_hybrid(ph, rh, {}, {}, &report);
    expect_same_run(a, h);
    EXPECT_TRUE(report.count_phase);
    EXPECT_EQ(pa.counts(), ph.counts());
    EXPECT_EQ(ra.below(1u << 30), rh.below(1u << 30));
  }
}

TEST(HybridEngine, HandsOffAtEndGameStarvation) {
  // ag at n = 64: the end-game gap between productive events approaches
  // n(n-1)/2 ~ 2000 interactions, far beyond the 8n-derived bucket edge of
  // 512 — the default policy must fire, and deterministically so.
  AgProtocol p(64);
  Rng rng(21);
  p.reset(initial::all_in_state(p, 0));
  HybridReport report;
  const RunResult r = run_hybrid(p, rng, {}, {}, &report);
  EXPECT_TRUE(r.silent);
  EXPECT_TRUE(r.valid);
  EXPECT_TRUE(report.count_phase);
  EXPECT_TRUE(report.handed_off);
  EXPECT_EQ(report.handoff_gap, 512u);  // bucket edge of 8 * 64
  EXPECT_LT(report.bulk_interactions, r.interactions);
  EXPECT_GE(report.max_gap_bucket, obs::sketch_bucket(report.handoff_gap));

  // Same seed, same switching point: the policy is a pure function of
  // (seed, n, gap_factor).
  AgProtocol p2(64);
  Rng rng2(21);
  p2.reset(initial::all_in_state(p2, 0));
  HybridReport report2;
  const RunResult r2 = run_hybrid(p2, rng2, {}, {}, &report2);
  expect_same_run(r, r2);
  EXPECT_EQ(report.bulk_interactions, report2.bulk_interactions);
  EXPECT_EQ(report.bulk_productive, report2.bulk_productive);
  EXPECT_EQ(report.max_gap_bucket, report2.max_gap_bucket);
}

TEST(HybridEngine, GapFactorZeroDisablesHandoff) {
  AgProtocol p(64);
  Rng rng(22);
  p.reset(initial::all_in_state(p, 0));
  HybridOptions hopt;
  hopt.gap_factor = 0;
  HybridReport report;
  const RunResult r = run_hybrid(p, rng, {}, hopt, &report);
  EXPECT_TRUE(r.silent);
  EXPECT_TRUE(r.valid);
  EXPECT_TRUE(report.count_phase);
  EXPECT_FALSE(report.handed_off);
  EXPECT_EQ(report.bulk_interactions, r.interactions);
}

TEST(HybridEngine, FallsBackForExtraStateProtocols) {
  TreeRankingProtocol pa(8);
  TreeRankingProtocol ph(8);
  pa.reset(initial::all_in_state(pa, pa.x_state(1)));
  ph.reset(initial::all_in_state(ph, ph.x_state(1)));
  Rng ra(31);
  Rng rh(31);
  const RunResult a = run_accelerated(pa, ra);
  HybridReport report;
  const RunResult h = run_hybrid(ph, rh, {}, {}, &report);
  expect_same_run(a, h);
  EXPECT_FALSE(report.count_phase);
  EXPECT_FALSE(report.handed_off);
}

// The cross-validation the bit-identity argument does not cover: the
// hybrid against the *faithful* per-interaction reference.  Mean
// stabilisation times must agree (CI-style bound on the ratio) and so
// must the distribution shape: bin the run_uniform sample at the hybrid
// sample's quartiles and chi-squared the occupancy against uniform.
TEST(HybridEngine, MatchesUniformEngineStatistically) {
  const u64 n = 24;
  const int kTrials = 80;
  std::vector<double> hybrid_times;
  std::vector<double> uniform_times;
  double hybrid_sum = 0;
  double uniform_sum = 0;
  for (int t = 0; t < kTrials; ++t) {
    {
      AgProtocol p(n);
      Rng rng(5000 + static_cast<u64>(t));
      p.reset(initial::all_in_state(p, 0));
      const RunResult r = run_hybrid(p, rng);
      EXPECT_TRUE(r.valid);
      hybrid_times.push_back(r.parallel_time);
      hybrid_sum += r.parallel_time;
    }
    {
      AgProtocol p(n);
      Rng rng(900000 + static_cast<u64>(t));
      p.reset(initial::all_in_state(p, 0));
      const RunResult r = run_uniform(p, rng);
      EXPECT_TRUE(r.valid);
      uniform_times.push_back(r.parallel_time);
      uniform_sum += r.parallel_time;
    }
  }
  const double hybrid_mean = hybrid_sum / kTrials;
  const double uniform_mean = uniform_sum / kTrials;
  EXPECT_NEAR(hybrid_mean / uniform_mean, 1.0, 0.25)
      << "hybrid=" << hybrid_mean << " uniform=" << uniform_mean;

  // Quartile chi-squared: cut at the hybrid sample's quartiles, count the
  // uniform sample per bin, expect kTrials/4 in each.
  std::sort(hybrid_times.begin(), hybrid_times.end());
  const double q1 = hybrid_times[kTrials / 4];
  const double q2 = hybrid_times[kTrials / 2];
  const double q3 = hybrid_times[3 * kTrials / 4];
  double bins[4] = {0, 0, 0, 0};
  for (const double v : uniform_times) {
    if (v < q1) {
      ++bins[0];
    } else if (v < q2) {
      ++bins[1];
    } else if (v < q3) {
      ++bins[2];
    } else {
      ++bins[3];
    }
  }
  const double expected = kTrials / 4.0;
  double x2 = 0;
  for (const double b : bins) {
    x2 += (b - expected) * (b - expected) / expected;
  }
  const double df = 3;
  const double z = (x2 - df) / std::sqrt(2 * df);
  EXPECT_LT(std::abs(z), 6.0)
      << "x2=" << x2 << " bins=" << bins[0] << "," << bins[1] << ","
      << bins[2] << "," << bins[3];
}

}  // namespace
}  // namespace pp
