// The BENCH_*.json perf-trajectory log: one file == one run.
//
// Regression for a real footgun: records used to be appended across bench
// invocations, so re-running a bench silently mixed stale points from the
// previous run into the trajectory file.  BenchLog::open truncates and
// stamps a per-run id; these tests prove both halves of the fix.
#include "runner/bench_log.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace pp {
namespace {

std::vector<std::string> lines_of(const std::string& path) {
  std::ifstream f(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(f, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

TrialSet tiny_set(double t) {
  TrialSet set;
  TrialRecord r;
  r.silent = true;
  r.valid = true;
  r.parallel_time = t;
  r.interactions = 100;
  r.productive_steps = 10;
  set.records.push_back(r);
  set.stats.fold(r);
  set.threads = 1;
  return set;
}

TEST(BenchLog, WritesRunHeaderThenPoints) {
  const std::string dir = ::testing::TempDir();
  BenchLog::RunInfo info;
  info.seed = 7;
  info.threads = 2;
  info.max_n = 4096;
  info.size = "quick";
  const BenchLog log = BenchLog::open(dir, "T1: bench log test", info);
  ASSERT_TRUE(log.enabled());
  EXPECT_NE(log.path().find("BENCH_t1-bench-log-test.json"),
            std::string::npos);

  log.append_point("point-a", 16, 0.5, tiny_set(1.25));
  log.append_point("point-b", 32, 0.0, tiny_set(2.5));

  const auto lines = lines_of(log.path());
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_NE(lines[0].find("\"kind\":\"run\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"seed\":7"), std::string::npos);
  // The regression gate keys its missing-point logic off this field.
  EXPECT_NE(lines[0].find("\"max_n\":4096"), std::string::npos);
  EXPECT_NE(lines[1].find("\"kind\":\"point\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"point\":\"point-a\""), std::string::npos);
  EXPECT_NE(lines[2].find("\"point\":\"point-b\""), std::string::npos);
  // Every line carries this run's id.
  const std::string id = "\"run_id\":" + std::to_string(log.run_id());
  for (const auto& line : lines) {
    EXPECT_NE(line.find(id), std::string::npos) << line;
  }
}

TEST(BenchLog, ReopeningTruncatesStalePoints) {
  const std::string dir = ::testing::TempDir();
  BenchLog::RunInfo info;
  info.seed = 1;
  info.threads = 1;
  info.size = "standard";

  const BenchLog first = BenchLog::open(dir, "T2: rerun", info);
  ASSERT_TRUE(first.enabled());
  first.append_point("stale-1", 8, 0, tiny_set(1));
  first.append_point("stale-2", 16, 0, tiny_set(2));
  ASSERT_EQ(lines_of(first.path()).size(), 3u);

  // Re-running the same bench must start the file over: no stale points.
  const BenchLog second = BenchLog::open(dir, "T2: rerun", info);
  ASSERT_TRUE(second.enabled());
  EXPECT_EQ(second.path(), first.path()) << "same experiment, same file";
  auto lines = lines_of(second.path());
  ASSERT_EQ(lines.size(), 1u) << "only the fresh run header survives";
  EXPECT_NE(lines[0].find("\"kind\":\"run\""), std::string::npos);

  second.append_point("fresh", 8, 0, tiny_set(3));
  lines = lines_of(second.path());
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0].find("stale"), std::string::npos);
  EXPECT_EQ(lines[1].find("stale"), std::string::npos);
  EXPECT_NE(lines[1].find("\"point\":\"fresh\""), std::string::npos);
}

TEST(BenchLog, RunIdsDifferAcrossRuns) {
  const std::string dir = ::testing::TempDir();
  BenchLog::RunInfo info;
  info.seed = 5;
  info.threads = 1;
  info.size = "quick";
  const BenchLog a = BenchLog::open(dir, "T3: run ids", info);
  const BenchLog b = BenchLog::open(dir, "T3: run ids", info);
  EXPECT_NE(a.run_id(), b.run_id())
      << "identical settings must still produce distinct run ids";
}

TEST(BenchLog, DisabledLogSwallowsWrites) {
  BenchLog log;  // default-constructed: disabled
  EXPECT_FALSE(log.enabled());
  log.append_point("nowhere", 8, 0, tiny_set(1));  // must not crash

  // An unwritable directory degrades to a disabled log, not an abort.
  const BenchLog broken =
      BenchLog::open("/nonexistent-dir-for-bench-log-test", "T4: broken",
                     BenchLog::RunInfo{});
  EXPECT_FALSE(broken.enabled());
  broken.append_point("nowhere", 8, 0, tiny_set(1));
}

}  // namespace
}  // namespace pp
