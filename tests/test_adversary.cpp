// Adversarial-scheduler tests (schedulers/adversarial.hpp).
//
// Headline findings (mirrored by bench_adversarial):
//   * AG and the ring protocol terminate under EVERY productive schedule,
//     and even take a schedule-independent number of productive steps —
//     the same "handled consistently" phenomenon the paper proves for
//     lines in Lemmas 5/7;
//   * the line protocol admits infinite productive schedules (an adversary
//     can circulate surplus tokens through X forever): its stabilisation
//     guarantee is genuinely probabilistic, relying on the random
//     scheduler;
//   * the tree protocol stabilised under every adversary we implement
//     (the post-reset pour is deterministic by counting).
//
// The PinnedTrajectoryRegression tests pin the Scheduler port of the
// retired run_adversarial() entry point: every literal below was recorded
// from the pre-port core/adversary.cpp implementation, so the port is
// proven step-for-step and seed-for-seed behaviour-preserving.
#include "schedulers/adversarial.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "core/initial.hpp"
#include "protocols/factory.hpp"
#include "rng/seed_sequence.hpp"
#include "runner/runner.hpp"
#include "runner/sink.hpp"

namespace pp {
namespace {

RunResult run_adversary(Protocol& p, AdversaryPolicy policy, Rng& rng,
                        u64 budget) {
  const AdversarialScheduler sched(policy);
  RunOptions opt;
  opt.max_interactions = budget;
  return sched.run(p, rng, opt);
}

// FNV-1a over the final count vector — the fingerprint the pinned
// trajectories use (recorded from the pre-port implementation).
u64 counts_hash(const std::vector<u64>& c) {
  u64 h = 1469598103934665603ULL;
  for (const u64 v : c) {
    h ^= v;
    h *= 1099511628211ULL;
  }
  return h;
}

TEST(Adversary, AgTerminatesUnderEveryPolicy) {
  for (const auto policy : adversary_policies()) {
    ProtocolPtr p = make_protocol("ag", 24);
    Rng rng(derive_seed(51, adversary_policy_name(policy)));
    p->reset(initial::uniform_random(*p, rng));
    const RunResult r = run_adversary(*p, policy, rng, 1'000'000);
    EXPECT_TRUE(r.silent) << adversary_policy_name(policy);
    EXPECT_TRUE(r.valid) << adversary_policy_name(policy);
  }
}

TEST(Adversary, RingTerminatesUnderEveryPolicy) {
  for (const auto policy : adversary_policies()) {
    ProtocolPtr p = make_protocol("ring-of-traps", 30);
    Rng rng(derive_seed(52, adversary_policy_name(policy)));
    p->reset(initial::uniform_random(*p, rng));
    const RunResult r = run_adversary(*p, policy, rng, 1'000'000);
    EXPECT_TRUE(r.silent) << adversary_policy_name(policy);
    EXPECT_TRUE(r.valid) << adversary_policy_name(policy);
  }
}

TEST(Adversary, AgProductiveStepCountIsScheduleIndependent) {
  // From one fixed start, every policy (and every random seed) fires
  // exactly the same number of productive interactions before silence.
  for (const u64 cfg_seed : {1u, 2u, 3u}) {
    ProtocolPtr p = make_protocol("ag", 20);
    Rng cfg_rng(cfg_seed);
    const Configuration start = initial::uniform_random(*p, cfg_rng);
    u64 expected = 0;
    bool first = true;
    for (const auto policy : adversary_policies()) {
      for (const u64 seed : {10u, 20u}) {
        p->reset(start);
        Rng rng(seed);
        const RunResult r = run_adversary(*p, policy, rng, 1'000'000);
        ASSERT_TRUE(r.silent);
        if (first) {
          expected = r.productive_steps;
          first = false;
        } else {
          EXPECT_EQ(r.productive_steps, expected)
              << adversary_policy_name(policy) << " seed " << seed;
        }
      }
    }
  }
}

TEST(Adversary, RingProductiveStepCountIsScheduleIndependent) {
  for (const u64 cfg_seed : {4u, 5u}) {
    ProtocolPtr p = make_protocol("ring-of-traps", 30);
    Rng cfg_rng(cfg_seed);
    const Configuration start = initial::uniform_random(*p, cfg_rng);
    u64 expected = 0;
    bool first = true;
    for (const auto policy : adversary_policies()) {
      p->reset(start);
      Rng rng(derive_seed(53, adversary_policy_name(policy)));
      const RunResult r = run_adversary(*p, policy, rng, 1'000'000);
      ASSERT_TRUE(r.silent);
      if (first) {
        expected = r.productive_steps;
        first = false;
      } else {
        EXPECT_EQ(r.productive_steps, expected)
            << adversary_policy_name(policy);
      }
    }
  }
}

TEST(Adversary, LineProtocolCanBeCycledForever) {
  // The max-load adversary keeps the line protocol alive past any budget
  // from a generic random start — stabilisation is probabilistic, not
  // adversarial.  (random-productive, the honest jump chain, terminates.)
  ProtocolPtr p = make_protocol("line-of-traps", 72);
  Rng rng(derive_seed(54, "line-adversary"));
  const Configuration start = initial::uniform_random(*p, rng);

  p->reset(start);
  const RunResult hostile =
      run_adversary(*p, AdversaryPolicy::kMaxLoad, rng, 100'000);
  EXPECT_FALSE(hostile.silent)
      << "max-load adversary unexpectedly let the line protocol finish";
  // No null steps: a cycling adversary burns the whole budget productively.
  EXPECT_EQ(hostile.interactions, 100'000u);
  EXPECT_EQ(hostile.productive_steps, 100'000u);

  p->reset(start);
  const RunResult honest =
      run_adversary(*p, AdversaryPolicy::kRandomProductive, rng, 1'000'000);
  EXPECT_TRUE(honest.silent);
  EXPECT_TRUE(honest.valid);
}

TEST(Adversary, TreeStabilisesUnderAllImplementedPolicies) {
  for (const auto policy : adversary_policies()) {
    ProtocolPtr p = make_protocol("tree-ranking", 33);
    Rng rng(derive_seed(55, adversary_policy_name(policy)));
    p->reset(initial::uniform_random(*p, rng));
    const RunResult r = run_adversary(*p, policy, rng, 1'000'000);
    EXPECT_TRUE(r.silent) << adversary_policy_name(policy);
    EXPECT_TRUE(r.valid) << adversary_policy_name(policy);
  }
}

TEST(Adversary, SilentStartReturnsImmediately) {
  ProtocolPtr p = make_protocol("ag", 8);
  Rng rng(1);
  p->reset(initial::valid_ranking(*p));
  const RunResult r = run_adversary(*p, AdversaryPolicy::kMaxLoad, rng, 1000);
  EXPECT_EQ(r.interactions, 0u);
  EXPECT_TRUE(r.silent);
}

TEST(Adversary, ProtocolStaysLiveDuringTheRun) {
  // The port drives the protocol through apply_pair, so (unlike the retired
  // run_adversarial, which published a local count vector only at the end)
  // an observer sees a consistent protocol after every firing.
  ProtocolPtr p = make_protocol("ag", 10);
  Rng rng(2);
  p->reset(initial::all_in_state(*p, 3));
  const AdversarialScheduler sched(AdversaryPolicy::kStubborn);
  RunOptions opt;
  u64 calls = 0;
  opt.on_change = [&](const Protocol& q, u64 k) {
    ++calls;
    EXPECT_EQ(q.configuration().agents(), 10u);
    EXPECT_EQ(k, calls);  // every adversarial step is a config change
    return true;
  };
  const RunResult r = sched.run(*p, rng, opt);
  EXPECT_TRUE(p->is_valid_ranking());
  EXPECT_EQ(p->counts()[3], 1u);
  EXPECT_EQ(calls, r.productive_steps);
}

// ---- pinned pre-port trajectories -----------------------------------------

struct Pin {
  AdversaryPolicy policy;
  u64 steps;
  bool silent;
  u64 hash;
};

void expect_pinned(const char* proto, u64 n, u64 seed, u64 budget,
                   const Pin& pin) {
  ProtocolPtr p = make_protocol(proto, n);
  Rng rng(seed);
  p->reset(initial::uniform_random(*p, rng));
  const RunResult r = run_adversary(*p, pin.policy, rng, budget);
  const char* name = adversary_policy_name(pin.policy);
  EXPECT_EQ(r.interactions, pin.steps) << proto << " " << name;
  EXPECT_EQ(r.productive_steps, pin.steps) << proto << " " << name;
  EXPECT_EQ(r.silent, pin.silent) << proto << " " << name;
  EXPECT_EQ(r.valid, pin.silent) << proto << " " << name;
  EXPECT_EQ(counts_hash(p->counts()), pin.hash) << proto << " " << name;
}

// Recorded from run_adversarial() as it stood before the Scheduler port.
// If the port (or anything upstream: Rng, initial::, the rule tables)
// changes the firing sequence, these fail — that is the point.
TEST(AdversaryPinned, AgTrajectoryRegression) {
  // ag n=16, uniform_random start, seed 42: every policy fires exactly 29
  // productive steps to the same silent ranking (schedule-independence).
  for (const auto policy : adversary_policies()) {
    expect_pinned("ag", 16, 42, 1'000'000,
                  {policy, 29, true, 0xf9dbd55202e74853ULL});
  }
}

TEST(AdversaryPinned, TreeTrajectoryRegression) {
  // tree-ranking n=15, seed 11: policy-dependent step counts, one silent
  // final ranking.
  expect_pinned("tree-ranking", 15, 11, 1'000'000,
                {AdversaryPolicy::kRandomProductive, 271, true,
                 0xc71fd8d24742c6e0ULL});
  expect_pinned("tree-ranking", 15, 11, 1'000'000,
                {AdversaryPolicy::kMaxLoad, 158, true,
                 0xc71fd8d24742c6e0ULL});
  expect_pinned("tree-ranking", 15, 11, 1'000'000,
                {AdversaryPolicy::kMinRankCoverage, 128, true,
                 0xc71fd8d24742c6e0ULL});
  expect_pinned("tree-ranking", 15, 11, 1'000'000,
                {AdversaryPolicy::kStubborn, 122, true,
                 0xc71fd8d24742c6e0ULL});
}

TEST(AdversaryPinned, LineTrajectoryRegressionIncludingCycling) {
  // line-of-traps n=72, seed 7, budget 500: the honest jump chain
  // stabilises at 305 steps; the three hostile policies burn the whole
  // budget, each in its own distinguishable non-silent configuration.
  expect_pinned("line-of-traps", 72, 7, 500,
                {AdversaryPolicy::kRandomProductive, 305, true,
                 0x1861243758f8b891ULL});
  expect_pinned("line-of-traps", 72, 7, 500,
                {AdversaryPolicy::kMaxLoad, 500, false,
                 0xa65d4929098e12c3ULL});
  expect_pinned("line-of-traps", 72, 7, 500,
                {AdversaryPolicy::kMinRankCoverage, 500, false,
                 0x75f7c1dd0af86cabULL});
  expect_pinned("line-of-traps", 72, 7, 500,
                {AdversaryPolicy::kStubborn, 500, false,
                 0xf20c121889b91d45ULL});
}

// ---- runner + sink wiring -------------------------------------------------

TEST(AdversaryRunner, RunsThroughTheSchedulerPathAndNamesThePolicy) {
  TrialSpec spec;
  spec.protocol = "ag";
  spec.n = 16;
  spec.label = "adv-sink";
  spec.engine = EngineKind::kScheduled;
  spec.scheduler.kind = SchedulerKind::kAdversarial;
  spec.scheduler.adversary = AdversaryPolicy::kMinRankCoverage;
  RunnerOptions opt;
  opt.trials = 4;
  opt.threads = 2;
  const TrialSet set = run_trials(spec, opt);
  EXPECT_EQ(set.stats.timeouts, 0u);
  EXPECT_EQ(set.stats.invalid, 0u);
  for (const TrialRecord& r : set.records) {
    EXPECT_EQ(r.interactions, r.productive_steps);  // no null steps
  }

  // BENCH trajectories stay comparable only if the records carry the
  // concrete policy, not a bare "adversarial".
  std::ostringstream json, csv;
  JsonlSink(json).write_aggregate(spec, set);
  CsvSink(csv).write_trials(spec, set);
  EXPECT_NE(json.str().find("\"engine\":\"adversarial[min-rank-coverage]\""),
            std::string::npos)
      << json.str();
  EXPECT_NE(csv.str().find(",adversarial[min-rank-coverage],"),
            std::string::npos)
      << csv.str();
}

}  // namespace
}  // namespace pp
