// Adversarial-scheduler tests.
//
// Headline findings (mirrored by bench_adversarial):
//   * AG and the ring protocol terminate under EVERY productive schedule,
//     and even take a schedule-independent number of productive steps —
//     the same "handled consistently" phenomenon the paper proves for
//     lines in Lemmas 5/7;
//   * the line protocol admits infinite productive schedules (an adversary
//     can circulate surplus tokens through X forever): its stabilisation
//     guarantee is genuinely probabilistic, relying on the random
//     scheduler;
//   * the tree protocol stabilised under every adversary we implement
//     (the post-reset pour is deterministic by counting).
#include "core/adversary.hpp"

#include <gtest/gtest.h>

#include "core/initial.hpp"
#include "protocols/factory.hpp"
#include "rng/seed_sequence.hpp"

namespace pp {
namespace {

constexpr AdversaryPolicy kAllPolicies[] = {
    AdversaryPolicy::kRandomProductive,
    AdversaryPolicy::kMaxLoad,
    AdversaryPolicy::kMinRankCoverage,
    AdversaryPolicy::kStubborn,
};

TEST(Adversary, AgTerminatesUnderEveryPolicy) {
  for (const auto policy : kAllPolicies) {
    ProtocolPtr p = make_protocol("ag", 24);
    Rng rng(derive_seed(51, adversary_policy_name(policy)));
    p->reset(initial::uniform_random(*p, rng));
    const RunResult r = run_adversarial(*p, policy, rng, 1'000'000);
    EXPECT_TRUE(r.silent) << adversary_policy_name(policy);
    EXPECT_TRUE(r.valid) << adversary_policy_name(policy);
  }
}

TEST(Adversary, RingTerminatesUnderEveryPolicy) {
  for (const auto policy : kAllPolicies) {
    ProtocolPtr p = make_protocol("ring-of-traps", 30);
    Rng rng(derive_seed(52, adversary_policy_name(policy)));
    p->reset(initial::uniform_random(*p, rng));
    const RunResult r = run_adversarial(*p, policy, rng, 1'000'000);
    EXPECT_TRUE(r.silent) << adversary_policy_name(policy);
    EXPECT_TRUE(r.valid) << adversary_policy_name(policy);
  }
}

TEST(Adversary, AgProductiveStepCountIsScheduleIndependent) {
  // From one fixed start, every policy (and every random seed) fires
  // exactly the same number of productive interactions before silence.
  for (const u64 cfg_seed : {1u, 2u, 3u}) {
    ProtocolPtr p = make_protocol("ag", 20);
    Rng cfg_rng(cfg_seed);
    const Configuration start = initial::uniform_random(*p, cfg_rng);
    u64 expected = 0;
    bool first = true;
    for (const auto policy : kAllPolicies) {
      for (const u64 seed : {10u, 20u}) {
        p->reset(start);
        Rng rng(seed);
        const RunResult r = run_adversarial(*p, policy, rng, 1'000'000);
        ASSERT_TRUE(r.silent);
        if (first) {
          expected = r.productive_steps;
          first = false;
        } else {
          EXPECT_EQ(r.productive_steps, expected)
              << adversary_policy_name(policy) << " seed " << seed;
        }
      }
    }
  }
}

TEST(Adversary, RingProductiveStepCountIsScheduleIndependent) {
  for (const u64 cfg_seed : {4u, 5u}) {
    ProtocolPtr p = make_protocol("ring-of-traps", 30);
    Rng cfg_rng(cfg_seed);
    const Configuration start = initial::uniform_random(*p, cfg_rng);
    u64 expected = 0;
    bool first = true;
    for (const auto policy : kAllPolicies) {
      p->reset(start);
      Rng rng(derive_seed(53, adversary_policy_name(policy)));
      const RunResult r = run_adversarial(*p, policy, rng, 1'000'000);
      ASSERT_TRUE(r.silent);
      if (first) {
        expected = r.productive_steps;
        first = false;
      } else {
        EXPECT_EQ(r.productive_steps, expected)
            << adversary_policy_name(policy);
      }
    }
  }
}

TEST(Adversary, LineProtocolCanBeCycledForever) {
  // The max-load adversary keeps the line protocol alive past any budget
  // from a generic random start — stabilisation is probabilistic, not
  // adversarial.  (random-productive, the honest jump chain, terminates.)
  ProtocolPtr p = make_protocol("line-of-traps", 72);
  Rng rng(derive_seed(54, "line-adversary"));
  const Configuration start = initial::uniform_random(*p, rng);

  p->reset(start);
  const RunResult hostile =
      run_adversarial(*p, AdversaryPolicy::kMaxLoad, rng, 100'000);
  EXPECT_FALSE(hostile.silent)
      << "max-load adversary unexpectedly let the line protocol finish";

  p->reset(start);
  const RunResult honest = run_adversarial(
      *p, AdversaryPolicy::kRandomProductive, rng, 1'000'000);
  EXPECT_TRUE(honest.silent);
  EXPECT_TRUE(honest.valid);
}

TEST(Adversary, TreeStabilisesUnderAllImplementedPolicies) {
  for (const auto policy : kAllPolicies) {
    ProtocolPtr p = make_protocol("tree-ranking", 33);
    Rng rng(derive_seed(55, adversary_policy_name(policy)));
    p->reset(initial::uniform_random(*p, rng));
    const RunResult r = run_adversarial(*p, policy, rng, 1'000'000);
    EXPECT_TRUE(r.silent) << adversary_policy_name(policy);
    EXPECT_TRUE(r.valid) << adversary_policy_name(policy);
  }
}

TEST(Adversary, SilentStartReturnsImmediately) {
  ProtocolPtr p = make_protocol("ag", 8);
  Rng rng(1);
  p->reset(initial::valid_ranking(*p));
  const RunResult r =
      run_adversarial(*p, AdversaryPolicy::kMaxLoad, rng, 1000);
  EXPECT_EQ(r.interactions, 0u);
  EXPECT_TRUE(r.silent);
}

TEST(Adversary, FinalConfigurationIsPublishedBack) {
  ProtocolPtr p = make_protocol("ag", 10);
  Rng rng(2);
  p->reset(initial::all_in_state(*p, 3));
  run_adversarial(*p, AdversaryPolicy::kStubborn, rng, 1'000'000);
  EXPECT_TRUE(p->is_valid_ranking());
  EXPECT_EQ(p->counts()[3], 1u);
}

}  // namespace
}  // namespace pp
