// Engine validation: the accelerated (geometric null-skipping) engine must
// agree with the faithful uniform engine — identical final configurations
// in distribution, statistically indistinguishable stabilisation times.
#include "core/engine.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/initial.hpp"
#include "protocols/ag.hpp"
#include "protocols/factory.hpp"
#include "protocols/tree_ranking.hpp"

namespace pp {
namespace {

TEST(Engine, UniformEngineReachesValidRanking) {
  AgProtocol p(12);
  Rng rng(1);
  p.reset(initial::uniform_random(p, rng));
  const RunResult r = run_uniform(p, rng);
  EXPECT_TRUE(r.silent);
  EXPECT_TRUE(r.valid);
  EXPECT_GE(r.interactions, r.productive_steps);
}

TEST(Engine, SilentStartTerminatesImmediately) {
  AgProtocol p(6);
  Rng rng(2);
  p.reset(initial::valid_ranking(p));
  EXPECT_EQ(run_accelerated(p, rng).interactions, 0u);
  EXPECT_EQ(run_uniform(p, rng).interactions, 0u);
}

TEST(Engine, ObserverSeesMonotoneInteractionCounts) {
  AgProtocol p(16);
  Rng rng(3);
  p.reset(initial::all_in_state(p, 0));
  u64 last = 0;
  RunOptions opt;
  opt.on_change = [&](const Protocol&, u64 t) {
    EXPECT_GT(t, last);
    last = t;
    return true;
  };
  const RunResult r = run_accelerated(p, rng, opt);
  EXPECT_EQ(last, r.interactions);
}

TEST(Engine, ObserverCanAbort) {
  AgProtocol p(32);
  Rng rng(4);
  p.reset(initial::all_in_state(p, 0));
  int calls = 0;
  RunOptions opt;
  opt.on_change = [&](const Protocol&, u64) { return ++calls < 5; };
  const RunResult r = run_accelerated(p, rng, opt);
  EXPECT_TRUE(r.aborted);
  EXPECT_EQ(calls, 5);
  EXPECT_EQ(r.productive_steps, 5u);
}

TEST(Engine, UniformBudgetIsExact) {
  AgProtocol p(32);
  Rng rng(5);
  p.reset(initial::all_in_state(p, 0));
  RunOptions opt;
  opt.max_interactions = 1000;
  const RunResult r = run_uniform(p, rng, opt);
  EXPECT_EQ(r.interactions, 1000u);
  EXPECT_FALSE(r.silent);
}

TEST(Engine, AcceleratedCountsMoreInteractionsThanProductiveSteps) {
  AgProtocol p(64);
  Rng rng(6);
  p.reset(initial::uniform_random(p, rng));
  const RunResult r = run_accelerated(p, rng);
  EXPECT_GT(r.interactions, r.productive_steps)
      << "null interactions must be accounted for";
}

// The central validation: distributions of stabilisation times agree.
TEST(Engine, AcceleratedMatchesUniformStatistically) {
  const u64 n = 24;
  const int kTrials = 60;
  auto mean_time = [&](bool accelerated) {
    double sum = 0;
    for (int t = 0; t < kTrials; ++t) {
      AgProtocol p(n);
      Rng rng(1000 + static_cast<u64>(t) + (accelerated ? 0 : 500000));
      p.reset(initial::all_in_state(p, 0));
      const RunResult r =
          accelerated ? run_accelerated(p, rng) : run_uniform(p, rng);
      EXPECT_TRUE(r.valid);
      sum += r.parallel_time;
    }
    return sum / kTrials;
  };
  const double acc = mean_time(true);
  const double uni = mean_time(false);
  // Means of ~60 samples of a concentrated distribution: require agreement
  // within 25% (generous; failures would indicate a systematic bias).
  EXPECT_NEAR(acc / uni, 1.0, 0.25) << "acc=" << acc << " uni=" << uni;
}

TEST(Engine, EnginesAgreeForProtocolWithExtraStates) {
  const u64 n = 16;
  const int kTrials = 40;
  auto mean_time = [&](bool accelerated) {
    double sum = 0;
    for (int t = 0; t < kTrials; ++t) {
      TreeRankingProtocol p(n);
      Rng rng(2000 + static_cast<u64>(t) + (accelerated ? 0 : 900000));
      p.reset(initial::all_in_state(p, p.x_state(1)));
      const RunResult r =
          accelerated ? run_accelerated(p, rng) : run_uniform(p, rng);
      EXPECT_TRUE(r.valid);
      sum += r.parallel_time;
    }
    return sum / kTrials;
  };
  const double acc = mean_time(true);
  const double uni = mean_time(false);
  EXPECT_NEAR(acc / uni, 1.0, 0.30) << "acc=" << acc << " uni=" << uni;
}

TEST(Engine, ZeroBudgetDoesNothing) {
  AgProtocol p(16);
  Rng rng(21);
  p.reset(initial::all_in_state(p, 0));
  RunOptions opt;
  opt.max_interactions = 0;
  for (const auto run : {run_accelerated, run_uniform}) {
    const RunResult r = run(p, rng, opt);
    EXPECT_EQ(r.interactions, 0u);
    EXPECT_EQ(r.productive_steps, 0u);
    EXPECT_FALSE(r.silent);
  }
  EXPECT_EQ(p.counts()[0], 16u) << "configuration untouched";
}

TEST(Engine, UniformObserverCanAbort) {
  AgProtocol p(16);
  Rng rng(22);
  p.reset(initial::all_in_state(p, 0));
  int calls = 0;
  RunOptions opt;
  opt.on_change = [&](const Protocol&, u64) { return ++calls < 3; };
  const RunResult r = run_uniform(p, rng, opt);
  EXPECT_TRUE(r.aborted);
  EXPECT_EQ(r.productive_steps, 3u);
}

TEST(Engine, ResetAndRerunOnSameProtocolObject) {
  // Protocol objects are reusable across runs; bookkeeping must fully
  // reinitialise.
  AgProtocol p(20);
  Rng rng(23);
  for (int round = 0; round < 5; ++round) {
    p.reset(initial::uniform_random(p, rng));
    const RunResult r = run_accelerated(p, rng);
    ASSERT_TRUE(r.valid) << "round " << round;
  }
  // And resetting a silent protocol back to chaos revives it.
  p.reset(initial::all_in_state(p, 7));
  EXPECT_FALSE(p.is_silent());
}

TEST(Engine, ParallelTimeIsCensoredAtBudget) {
  AgProtocol p(64);
  Rng rng(24);
  p.reset(initial::all_in_state(p, 0));
  RunOptions opt;
  opt.max_interactions = 640;
  const RunResult r = run_accelerated(p, rng, opt);
  EXPECT_LE(r.interactions, 640u);
  EXPECT_DOUBLE_EQ(r.parallel_time,
                   static_cast<double>(r.interactions) / 64.0);
}

TEST(Engine, EveryProtocolAgreesOnSilenceEqualsValidRanking) {
  for (const auto name : protocol_names()) {
    const u64 n = preferred_population(name, 80);
    ProtocolPtr p = make_protocol(name, n);
    Rng rng(7);
    p->reset(initial::uniform_random(*p, rng));
    const RunResult r = run_accelerated(*p, rng);
    EXPECT_TRUE(r.silent) << name;
    EXPECT_TRUE(r.valid) << name;
    EXPECT_EQ(p->is_silent(), p->is_valid_ranking()) << name;
  }
}

// Regression for the RunResult/observer contract the parallel runner
// depends on (also PP_ASSERTed inside the engines' common exit path):
// interactions never undercounts productive steps — under a budget, an
// observer abort, or a run to silence — and a silent verdict coincides
// with productive_weight() == 0 on the protocol object itself.
TEST(Engine, RunResultContractHoldsOnEveryExitPath) {
  for (const auto name : protocol_names()) {
    const u64 n = preferred_population(name, 80);
    for (const bool accelerated : {true, false}) {
      const auto run = [&](Protocol& p, Rng& rng, const RunOptions& opt) {
        return accelerated ? run_accelerated(p, rng, opt)
                           : run_uniform(p, rng, opt);
      };
      // Independent silence check: enumerate occupied state pairs through
      // the formal transition function δ — no Fenwick/count machinery, so
      // a stale cached weight cannot fool it.
      const auto truly_silent = [](const Protocol& p) {
        const auto& counts = p.counts();
        for (StateId a = 0; a < counts.size(); ++a) {
          if (counts[a] == 0) continue;
          for (StateId b = 0; b < counts.size(); ++b) {
            if (counts[b] == 0 || (a == b && counts[a] < 2)) continue;
            const auto [a2, b2] = p.transition(a, b);
            if (a2 != a || b2 != b) return false;
          }
        }
        return true;
      };
      const auto check = [&](const RunResult& r, const Protocol& p) {
        EXPECT_GE(r.interactions, r.productive_steps) << name;
        EXPECT_EQ(r.silent, truly_silent(p)) << name;
        if (r.silent) {
          EXPECT_EQ(p.productive_weight(), 0u) << name;
        } else {
          EXPECT_GT(p.productive_weight(), 0u) << name;
        }
      };
      // Run to silence.
      {
        ProtocolPtr p = make_protocol(name, n);
        Rng rng(21);
        p->reset(initial::uniform_random(*p, rng));
        check(run(*p, rng, {}), *p);
      }
      // Budget exhaustion: censored mid-run, silent must be false.
      {
        ProtocolPtr p = make_protocol(name, n);
        Rng rng(22);
        p->reset(initial::uniform_random(*p, rng));
        RunOptions opt;
        opt.max_interactions = n;  // far below stabilisation
        const RunResult r = run(*p, rng, opt);
        EXPECT_FALSE(r.silent) << name;
        check(r, *p);
      }
      // Observer abort after the third configuration change.
      {
        ProtocolPtr p = make_protocol(name, n);
        Rng rng(23);
        p->reset(initial::uniform_random(*p, rng));
        RunOptions opt;
        u64 changes = 0;
        opt.on_change = [&changes](const Protocol&, u64) {
          return ++changes < 3;
        };
        const RunResult r = run(*p, rng, opt);
        EXPECT_TRUE(r.aborted) << name;
        EXPECT_EQ(r.productive_steps, 3u) << name;
        check(r, *p);
      }
    }
  }
}

// A pathological Protocol with an astronomically small productive-weight /
// pairs ratio: billions of claimed agents, productive weight pinned at 1.
// The accelerated engine's geometric gap sampler then saturates at
// Rng::kGeometricInfinity with probability ~1/2 per draw — in Release
// builds the engine used to treat that sentinel as an ordinary gap length
// (and PP_DCHECK-aborted in Debug); it must clamp to the interaction
// budget instead.
class SparseWeightProtocol final : public Protocol {
 public:
  explicit SparseWeightProtocol(u64 n) : Protocol(n, /*ranks=*/2,
                                                  /*extra=*/1) {
    rules_.resize(2);
    rules_[0] = Rule{0, 1};
    rules_[1] = Rule{1, 2};
  }
  std::string_view name() const override { return "sparse-weight"; }
  std::pair<StateId, StateId> transition(StateId i, StateId r) const override {
    if (i == 2 && r == 2) return {2, 0};  // the one productive pair class
    return {i, r};
  }

 protected:
  u64 extra_weight() const override { return count(2) >= 2 ? 1 : 0; }
  void step_extra(u64 /*target*/, Rng& /*rng*/) override {
    mutate(2, -1);
    mutate(0, +1);
  }
  bool apply_cross(StateId i, StateId r) override {
    if (i != 2 || r != 2) return false;
    mutate(2, -1);
    mutate(0, +1);
    return true;
  }
};

TEST(EngineRegression, GeometricInfinityClampsToBudget) {
  // w / pairs = 1 / (4e9 * (4e9 - 1)) ~ 6e-20: the expected geometric gap
  // (~1.6e19) is around the sampler's u64 saturation point, so across
  // seeds both the saturated and the merely-huge branch are exercised.
  const u64 n = 4'000'000'000ULL;
  for (u64 seed = 1; seed <= 20; ++seed) {
    SparseWeightProtocol p(n);
    p.reset(Configuration({0, 0, n}));
    ASSERT_EQ(p.productive_weight(), 1u);
    Rng rng(seed);
    RunOptions opt;
    opt.max_interactions = 1'000'000;
    const RunResult r = run_accelerated(p, rng, opt);
    EXPECT_EQ(r.interactions, 1'000'000u) << seed;
    EXPECT_EQ(r.productive_steps, 0u) << seed;
    EXPECT_FALSE(r.silent) << seed;
  }
}

TEST(EngineRegression, GeometricInfinityClampsToUnlimitedBudget) {
  // Even with the default (effectively unlimited) budget the sentinel must
  // terminate the run instead of looping or aborting.
  SparseWeightProtocol p(4'000'000'000ULL);
  p.reset(Configuration({0, 0, 4'000'000'000ULL}));
  Rng rng(3);
  const RunResult r = run_accelerated(p, rng, {});
  EXPECT_EQ(r.interactions, ~static_cast<u64>(0));
  EXPECT_FALSE(r.silent);
}

// ---- degenerate population sizes -----------------------------------------

TEST(EngineDegenerate, SingleAgentPopulationsAreRejected) {
  // n = 1 means zero ordered pairs: run_accelerated would divide by zero
  // and run_uniform could never draw a pair.  The Protocol constructor
  // rejects such populations outright, for every protocol in the registry.
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  for (const auto name : protocol_names()) {
    // Most protocols die in the Protocol base constructor; ring-of-traps
    // dies one step earlier, sizing its RingLayout.  Either way: a clean
    // assert, not a NaN-driven hang.
    EXPECT_DEATH(make_protocol(name, 1),
                 "at least two agents|RingLayout requires n >= 2")
        << name;
  }
}

TEST(EngineDegenerate, MinimalPopulationsStabiliseUnderBothEngines) {
  // The smallest supported population of every protocol (n = 2 for all but
  // line-of-traps) must run to a valid ranking on both engines — no NaN,
  // no hang, no assert.
  for (const auto name : protocol_names()) {
    const u64 n = min_population(name);
    for (const bool accelerated : {true, false}) {
      for (u64 seed = 1; seed <= 3; ++seed) {
        ProtocolPtr p = make_protocol(name, n);
        Rng rng(seed);
        p->reset(initial::uniform_random(*p, rng));
        const RunResult r = accelerated ? run_accelerated(*p, rng)
                                        : run_uniform(*p, rng);
        EXPECT_TRUE(r.silent) << name << " n=" << n;
        EXPECT_TRUE(r.valid) << name << " n=" << n;
        EXPECT_TRUE(std::isfinite(r.parallel_time)) << name;
      }
    }
  }
}

TEST(EngineDegenerate, TwoAgentRunFromSilentStartStaysClean) {
  AgProtocol p(2);
  p.reset(initial::valid_ranking(p));
  Rng rng(1);
  for (const auto run_fn : {run_accelerated, run_uniform}) {
    const RunResult r = run_fn(p, rng, {});
    EXPECT_EQ(r.interactions, 0u);
    EXPECT_TRUE(r.valid);
    EXPECT_EQ(r.parallel_time, 0.0);
  }
}

}  // namespace
}  // namespace pp
