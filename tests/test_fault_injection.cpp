// Self-stabilisation under sustained abuse: fault storms, repeated
// mid-run corruption, and full-population wipes.  The defining property of
// these protocols is that *no* transient fault pattern can prevent
// eventual silent ranking.
#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "core/initial.hpp"
#include "core/leader_election.hpp"
#include "protocols/factory.hpp"
#include "rng/seed_sequence.hpp"

namespace pp {
namespace {

class FaultStorm : public ::testing::TestWithParam<std::string> {};

TEST_P(FaultStorm, RepeatedMidRunCorruptionNeverPreventsStabilisation) {
  const std::string name = GetParam();
  const u64 n = preferred_population(name, 72);
  ProtocolPtr p = make_protocol(name, n);
  Rng rng(derive_seed(61, name));
  p->reset(initial::uniform_random(*p, rng));

  // Ten rounds: run for a bounded while, then corrupt 25% of the agents.
  for (int round = 0; round < 10; ++round) {
    RunOptions opt;
    opt.max_interactions = n * 50;  // deliberately interrupt mid-run
    run_accelerated(*p, rng, opt);
    p->reset(initial::perturbed(p->configuration(), n / 4, rng));
  }
  // After the storm stops, the protocol must stabilise.
  const RunResult r = run_accelerated(*p, rng);
  EXPECT_TRUE(r.silent) << name;
  EXPECT_TRUE(r.valid) << name;
}

TEST_P(FaultStorm, TotalWipeToSingleStateRecovers) {
  const std::string name = GetParam();
  const u64 n = preferred_population(name, 72);
  ProtocolPtr p = make_protocol(name, n);
  Rng rng(derive_seed(62, name));
  p->reset(initial::valid_ranking(*p));
  ASSERT_TRUE(p->is_silent());
  // Adversary teleports the whole population into one state.
  for (const StateId target :
       {static_cast<StateId>(0), static_cast<StateId>(p->num_ranks() - 1),
        static_cast<StateId>(p->num_states() - 1)}) {
    p->reset(initial::all_in_state(*p, target));
    const RunResult r = run_accelerated(*p, rng);
    EXPECT_TRUE(r.valid) << name << " wiped to state " << target;
  }
}

TEST_P(FaultStorm, SingleAgentFaultIsCheapToRepair) {
  const std::string name = GetParam();
  if (name == "ag") GTEST_SKIP() << "AG repairs even 1 fault in Theta(n^2)";
  const u64 n = preferred_population(name, 240);
  LeaderElection le(make_protocol(name, n));
  Rng rng(derive_seed(63, name));
  le.protocol().reset(initial::valid_ranking(le.protocol()));

  double total = 0;
  const int kRounds = 5;
  for (int round = 0; round < kRounds; ++round) {
    le.inject_faults(1, rng);
    const RunResult r = le.stabilise(rng);
    EXPECT_TRUE(r.silent);
    total += r.parallel_time;
  }
  // One displaced agent must cost far less than the quadratic baseline's
  // cold start (~0.5 n^2, see E1).  The generous ceiling below still
  // separates "adaptive repair" from "global re-ranking"; the line
  // protocol routes the displaced agent through X and a whole line, so its
  // constant is the largest.
  EXPECT_LT(total / kRounds,
            0.5 * static_cast<double>(n) * static_cast<double>(n))
      << name;
  EXPECT_TRUE(le.has_stable_unique_leader());
}

std::string label(const ::testing::TestParamInfo<std::string>& info) {
  std::string s = info.param;
  for (char& c : s) {
    if (c == '-') c = '_';
  }
  return s;
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, FaultStorm,
                         ::testing::Values(std::string("ag"),
                                           std::string("ring-of-traps"),
                                           std::string("line-of-traps"),
                                           std::string("tree-ranking")),
                         label);

TEST(FaultInjection, LeaderEventuallyStableEvenWhenFaultsHitRankZero) {
  // Target the leader specifically: repeatedly displace whatever agent
  // holds rank 0.
  LeaderElection le(make_protocol("tree-ranking", 64));
  Rng rng(64);
  le.protocol().reset(initial::valid_ranking(le.protocol()));
  for (int round = 0; round < 8; ++round) {
    // Move the rank-0 agent somewhere random by hand.
    Configuration c = le.protocol().configuration();
    ASSERT_GE(c.counts[0], 1u);
    --c.counts[0];
    ++c.counts[rng.below(c.num_states())];
    le.protocol().reset(c);
    le.stabilise(rng);
    EXPECT_TRUE(le.has_stable_unique_leader()) << "round " << round;
  }
}

}  // namespace
}  // namespace pp
