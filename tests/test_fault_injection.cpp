// Self-stabilisation under sustained abuse: fault storms, repeated
// mid-run corruption, and full-population wipes.  The defining property of
// these protocols is that *no* transient fault pattern can prevent
// eventual silent ranking.
//
// The storm scenarios are driven by ChurnScheduler (schedulers/churn.hpp)
// — transient faults as a first-class interaction model — which replaced
// this file's original hand-rolled run/corrupt/repeat loop.  The wipe and
// targeted-fault scenarios keep their original names and coverage.
#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "core/initial.hpp"
#include "core/leader_election.hpp"
#include "obs/counters.hpp"
#include "protocols/factory.hpp"
#include "rng/seed_sequence.hpp"
#include "runner/runner.hpp"
#include "schedulers/churn.hpp"

namespace pp {
namespace {

class FaultStorm : public ::testing::TestWithParam<std::string> {};

TEST_P(FaultStorm, RepeatedMidRunCorruptionNeverPreventsStabilisation) {
  // The original observer-hack storm: ten rounds of "run for 50 n
  // interactions, then corrupt 25% of the agents".  As a churn model that
  // is a 500 n-tick storm with ~10 fault events of n/4 teleported agents
  // each; once the storm stops, the protocol must stabilise.
  const std::string name = GetParam();
  const u64 n = preferred_population(name, 72);
  ProtocolPtr p = make_protocol(name, n);
  Rng rng(derive_seed(61, name));
  p->reset(initial::uniform_random(*p, rng));

  const u64 storm = 500 * n;
  const ChurnScheduler churn(/*rate=*/10.0 / static_cast<double>(storm),
                             /*faults=*/n / 4, /*active=*/storm,
                             ChurnReset::kUniformState);
  const RunResult r = churn.run(*p, rng);
  EXPECT_TRUE(r.silent) << name;
  EXPECT_TRUE(r.valid) << name;
  // The storm must genuinely corrupt the run: ~10 fault events are expected
  // at this rate, and a seed-stream change that silently degraded the test
  // into a plain stabilisation run would show up here as too few.
  EXPECT_GE(r.fault_events, 3u) << name;
}

TEST_P(FaultStorm, DenseChurnPileUpStormRecovers) {
  // A nastier storm than the original: frequent faults that teleport
  // agents into state 0 (pile-up corruption, the degenerate direction) at
  // a rate high enough that the population is hit many times over.
  const std::string name = GetParam();
  const u64 n = preferred_population(name, 72);
  ProtocolPtr p = make_protocol(name, n);
  Rng rng(derive_seed(65, name));
  p->reset(initial::valid_ranking(*p));
  ASSERT_TRUE(p->is_silent());

  const ChurnScheduler churn(/*rate=*/0.05, /*faults=*/4, /*active=*/0,
                             ChurnReset::kStateZero);  // active 0 = 50 n
  const RunResult r = churn.run(*p, rng);
  EXPECT_TRUE(r.silent) << name;
  EXPECT_TRUE(r.valid) << name;
  EXPECT_GE(r.fault_events, 20u) << name;  // ~180 expected at this rate
}

TEST_P(FaultStorm, TotalWipeToSingleStateRecovers) {
  const std::string name = GetParam();
  const u64 n = preferred_population(name, 72);
  ProtocolPtr p = make_protocol(name, n);
  Rng rng(derive_seed(62, name));
  p->reset(initial::valid_ranking(*p));
  ASSERT_TRUE(p->is_silent());
  // Adversary teleports the whole population into one state.
  for (const StateId target :
       {static_cast<StateId>(0), static_cast<StateId>(p->num_ranks() - 1),
        static_cast<StateId>(p->num_states() - 1)}) {
    p->reset(initial::all_in_state(*p, target));
    const RunResult r = run_accelerated(*p, rng);
    EXPECT_TRUE(r.valid) << name << " wiped to state " << target;
  }
}

TEST_P(FaultStorm, SingleAgentFaultIsCheapToRepair) {
  const std::string name = GetParam();
  if (name == "ag") GTEST_SKIP() << "AG repairs even 1 fault in Theta(n^2)";
  const u64 n = preferred_population(name, 240);
  LeaderElection le(make_protocol(name, n));
  Rng rng(derive_seed(63, name));
  le.protocol().reset(initial::valid_ranking(le.protocol()));

  double total = 0;
  const int kRounds = 5;
  for (int round = 0; round < kRounds; ++round) {
    le.inject_faults(1, rng);
    const RunResult r = le.stabilise(rng);
    EXPECT_TRUE(r.silent);
    total += r.parallel_time;
  }
  // One displaced agent must cost far less than the quadratic baseline's
  // cold start (~0.5 n^2, see E1).  The generous ceiling below still
  // separates "adaptive repair" from "global re-ranking"; the line
  // protocol routes the displaced agent through X and a whole line, so its
  // constant is the largest.
  EXPECT_LT(total / kRounds,
            0.5 * static_cast<double>(n) * static_cast<double>(n))
      << name;
  EXPECT_TRUE(le.has_stable_unique_leader());
}

std::string label(const ::testing::TestParamInfo<std::string>& info) {
  std::string s = info.param;
  for (char& c : s) {
    if (c == '-') c = '_';
  }
  return s;
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, FaultStorm,
                         ::testing::Values(std::string("ag"),
                                           std::string("ring-of-traps"),
                                           std::string("line-of-traps"),
                                           std::string("tree-ranking")),
                         label);

TEST(FaultInjection, ChurnFaultsActuallyPerturbASilentPopulation) {
  // Guard against the storm silently doing nothing: from a valid ranking,
  // a fault-only storm (rate 1) must change the configuration, and the
  // observer must see every fault as a configuration change with the
  // protocol kept consistent.
  ProtocolPtr p = make_protocol("ag", 16);
  Rng rng(66);
  p->reset(initial::valid_ranking(*p));
  const ChurnScheduler churn(/*rate=*/1.0, /*faults=*/1, /*active=*/8,
                             ChurnReset::kStateZero);
  RunOptions opt;
  u64 changes = 0;
  opt.on_change = [&](const Protocol& q, u64) {
    ++changes;
    EXPECT_EQ(q.configuration().agents(), 16u);
    return true;
  };
  const RunResult r = churn.run(*p, rng, opt);
  EXPECT_TRUE(r.silent);
  EXPECT_TRUE(r.valid);
  EXPECT_EQ(r.fault_events, 8u);  // rate 1.0: every storm tick is a fault
  EXPECT_GT(changes, 0u);
  // Faults are environmental: they never count as productive steps, so the
  // clean-up work is visible as productive_steps > 0 after a silent start.
  EXPECT_GT(r.productive_steps, 0u);
  EXPECT_GT(r.interactions, r.productive_steps);
}

TEST(FaultInjection, ChurnRunsThroughTheRunnerSchedulerPath) {
  TrialSpec spec;
  spec.protocol = "ring-of-traps";
  spec.n = 30;
  spec.label = "churn-runner";
  spec.engine = EngineKind::kScheduled;
  spec.scheduler.kind = SchedulerKind::kChurn;
  spec.scheduler.churn_rate = 0.05;
  RunnerOptions opt;
  opt.trials = 6;
  opt.threads = 3;
  const TrialSet set = run_trials(spec, opt);
  EXPECT_EQ(set.stats.trials, 6u);
  EXPECT_EQ(set.stats.timeouts, 0u);
  EXPECT_EQ(set.stats.invalid, 0u);
  // fault_events survives the runner boundary, so record-level evidence
  // that the storms actually corrupted the trials is preserved.
  u64 total_faults = 0;
  for (const TrialRecord& r : set.records) total_faults += r.fault_events;
  EXPECT_GT(total_faults, 0u);
}

// Runs the same churn storm through the O(k log n) move_agent fast path
// and the O(n) copy-and-rebuild reference, then asserts the trajectories
// are bit-identical: identical run statistics, identical final count
// vector, and identically positioned rng streams (the follow-up draws
// agree).  Both schedulers share one RNG-draw discipline by construction
// (see schedulers/churn.cpp), so any divergence is a real bug, not noise.
void expect_churn_paths_bit_identical(u64 n, double rate, u64 faults,
                                      u64 storm, ChurnReset reset, u64 seed) {
  ProtocolPtr a = make_protocol("ag", n);
  ProtocolPtr b = make_protocol("ag", n);
  Rng init(seed);
  a->reset(initial::uniform_random(*a, init));
  b->reset(a->configuration());

  const ChurnScheduler fast(rate, faults, storm, reset,
                            /*rebuild_reference=*/false);
  const ChurnScheduler ref(rate, faults, storm, reset,
                           /*rebuild_reference=*/true);
  RunOptions opt;
  opt.max_interactions = storm;  // compare the storms alone, no clean tail
  Rng ra(seed + 1), rb(seed + 1);
  const RunResult x = fast.run(*a, ra, opt);
  const RunResult y = ref.run(*b, rb, opt);

  EXPECT_EQ(x.interactions, y.interactions);
  EXPECT_EQ(x.productive_steps, y.productive_steps);
  EXPECT_EQ(x.fault_events, y.fault_events);
  EXPECT_GT(x.fault_events, 0u);
  EXPECT_EQ(x.silent, y.silent);
  EXPECT_EQ(a->counts(), b->counts());
  EXPECT_EQ(ra.below(u64{1} << 30), rb.below(u64{1} << 30));
}

TEST(FaultInjection, MoveAgentFastPathIsBitIdenticalToRebuildReference) {
  // The full (reset distribution) x (burst size) matrix at a modest n —
  // every combination must agree draw for draw.
  u64 combo = 0;
  for (const ChurnReset reset :
       {ChurnReset::kUniformState, ChurnReset::kUniformRank,
        ChurnReset::kStateZero}) {
    for (const u64 faults : {u64{1}, u64{64}}) {
      expect_churn_paths_bit_identical(/*n=*/3000, /*rate=*/0.5, faults,
                                       /*storm=*/600, reset, 7100 + combo);
      ++combo;
    }
  }
}

TEST(FaultInjection, MoveAgentFastPathIsBitIdenticalAtHundredThousand) {
  // The scale the fast path exists for: a churn storm at n = 10^5, where
  // each reference fault event costs O(n) and the fast path O(k log n).
  // The storm is short because the *reference* is slow — which is the
  // point.
  expect_churn_paths_bit_identical(/*n=*/100000, /*rate=*/0.5, /*faults=*/64,
                                   /*storm=*/200, ChurnReset::kUniformRank,
                                   /*seed=*/7200);
}

TEST(FaultInjection, FaultStateTouchesCounterBoundsPerFaultWork) {
#if !PP_OBS
  GTEST_SKIP() << "observability compiled out";
#else
  // Record-level evidence that a fault burst costs O(k), not O(n): the
  // fast path bumps fault_state_touches by exactly 2 per *applied* move
  // (teleports whose victim already sits in the target state are free), so
  // the counter is bounded by 2 * faults * fault_events no matter how
  // large the population is.  (The ISSUE sketch named the sampler-layer
  // group_touches counter here, but the churn fast path never touches
  // sampler groups — it mutates the count vector directly — so the bound
  // lives on its own dedicated counter.)
  const u64 n = 50000;
  const u64 faults = 16;
  const u64 storm = 256;
  ProtocolPtr p = make_protocol("ag", n);
  Rng rng(6900);
  p->reset(initial::uniform_random(*p, rng));
  const ChurnScheduler churn(/*rate=*/1.0, faults, storm,
                             ChurnReset::kUniformState);
  RunOptions opt;
  opt.max_interactions = storm;
  obs::CounterBlock block;
  {
    obs::ScopedCounters scope(&block);
    const RunResult r = churn.run(*p, rng, opt);
    EXPECT_EQ(r.fault_events, storm);  // rate 1.0: every tick is a fault
  }
  const u64 touches = block.get(obs::Counter::kFaultStateTouches);
  EXPECT_GT(touches, 0u);
  EXPECT_LE(touches, 2 * faults * storm);
#endif
}

TEST(FaultInjection, LeaderEventuallyStableEvenWhenFaultsHitRankZero) {
  // Target the leader specifically: repeatedly displace whatever agent
  // holds rank 0.
  LeaderElection le(make_protocol("tree-ranking", 64));
  Rng rng(64);
  le.protocol().reset(initial::valid_ranking(le.protocol()));
  for (int round = 0; round < 8; ++round) {
    // Move the rank-0 agent somewhere random by hand.
    Configuration c = le.protocol().configuration();
    ASSERT_GE(c.counts[0], 1u);
    --c.counts[0];
    ++c.counts[rng.below(c.num_states())];
    le.protocol().reset(c);
    le.stabilise(rng);
    EXPECT_TRUE(le.has_stable_unique_leader()) << "round " << round;
  }
}

}  // namespace
}  // namespace pp
