// Tests for the protocol factory and population-size snapping.
#include "protocols/factory.hpp"

#include <gtest/gtest.h>

#include "structures/line_layout.hpp"

namespace pp {
namespace {

TEST(Factory, MakesEveryListedProtocol) {
  for (const auto name : protocol_names()) {
    const u64 n = preferred_population(name, 100);
    ProtocolPtr p = make_protocol(name, n);
    ASSERT_NE(p, nullptr) << name;
    EXPECT_EQ(p->name(), name);
    EXPECT_EQ(p->num_agents(), n);
    EXPECT_EQ(p->num_ranks(), n);
  }
}

TEST(Factory, BaselineIsListedFirst) {
  EXPECT_EQ(protocol_names().front(), "ag");
  EXPECT_EQ(protocol_names().size(), 4u);
}

TEST(Factory, MinPopulations) {
  EXPECT_EQ(min_population("ag"), 2u);
  EXPECT_EQ(min_population("ring-of-traps"), 2u);
  EXPECT_EQ(min_population("tree-ranking"), 2u);
  EXPECT_EQ(min_population("line-of-traps"), 72u);
}

TEST(Factory, PreferredPopulationIsIdentityForMostProtocols) {
  EXPECT_EQ(preferred_population("ag", 1000), 1000u);
  EXPECT_EQ(preferred_population("ring-of-traps", 999), 999u);
  EXPECT_EQ(preferred_population("tree-ranking", 12345), 12345u);
}

TEST(Factory, PreferredPopulationClampsToMinimum) {
  EXPECT_EQ(preferred_population("ag", 0), 2u);
  EXPECT_EQ(preferred_population("line-of-traps", 10), 72u);
}

TEST(Factory, LineSnapsToNearestCanonicalSize) {
  // canonical sizes: 72 (m=2), 960 (m=4), 4536 (m=6), 13824 (m=8)...
  EXPECT_EQ(preferred_population("line-of-traps", 72), 72u);
  EXPECT_EQ(preferred_population("line-of-traps", 100), 72u);
  EXPECT_EQ(preferred_population("line-of-traps", 900), 960u);
  EXPECT_EQ(preferred_population("line-of-traps", 960), 960u);
  EXPECT_EQ(preferred_population("line-of-traps", 3000), 4536u);
  EXPECT_EQ(preferred_population("line-of-traps", 5000), 4536u);
}

TEST(Factory, SnappedSizesAreConstructible) {
  for (const u64 hint : {2u, 50u, 73u, 500u, 2000u}) {
    for (const auto name : protocol_names()) {
      const u64 n = preferred_population(name, hint);
      EXPECT_NE(make_protocol(name, n), nullptr)
          << name << " hint " << hint << " -> " << n;
    }
  }
}

TEST(Factory, CanonicalLineSizesMatchFormula) {
  for (const u64 m : {2u, 4u, 6u, 8u}) {
    EXPECT_EQ(LineLayout::canonical_n(m), 3 * m * m * m * (m + 1));
  }
}

}  // namespace
}  // namespace pp
