// Parameterized property sweeps: every protocol, from every starting
// family, at several sizes and seeds, must (a) conserve the population,
// (b) reach silence, (c) end in a valid ranking, and (d) agree that
// silence <=> valid ranking throughout.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "core/engine.hpp"
#include "core/initial.hpp"
#include "protocols/factory.hpp"
#include "rng/seed_sequence.hpp"

namespace pp {
namespace {

enum class Start {
  kUniformAll,
  kUniformRanks,
  kOneDistant,
  kQuarterDistant,
  kAllInFirst,
  kAllInLast,
};

const char* start_name(Start s) {
  switch (s) {
    case Start::kUniformAll: return "uniform-all";
    case Start::kUniformRanks: return "uniform-ranks";
    case Start::kOneDistant: return "one-distant";
    case Start::kQuarterDistant: return "quarter-distant";
    case Start::kAllInFirst: return "all-in-first";
    case Start::kAllInLast: return "all-in-last";
  }
  return "?";
}

Configuration make_start(const Protocol& p, Start s, Rng& rng) {
  switch (s) {
    case Start::kUniformAll: return initial::uniform_random(p, rng);
    case Start::kUniformRanks: return initial::uniform_random_ranks(p, rng);
    case Start::kOneDistant: return initial::k_distant(p, 1, rng);
    case Start::kQuarterDistant:
      return initial::k_distant(p, p.num_ranks() / 4, rng);
    case Start::kAllInFirst: return initial::all_in_state(p, 0);
    case Start::kAllInLast:
      return initial::all_in_state(
          p, static_cast<StateId>(p.num_states() - 1));
  }
  return initial::uniform_random(p, rng);
}

using Param = std::tuple<std::string, u64, Start, u64>;  // name, n, start, seed

class SelfStabilisation : public ::testing::TestWithParam<Param> {};

TEST_P(SelfStabilisation, ReachesValidSilentRanking) {
  const auto& [name, n_hint, start, seed] = GetParam();
  const u64 n = preferred_population(name, n_hint);
  ProtocolPtr p = make_protocol(name, n);
  Rng rng(derive_seed(seed, name));
  p->reset(make_start(*p, start, rng));

  // Population conservation checked along the way (subsampled).
  u64 checks = 0;
  RunOptions opt;
  opt.on_change = [&](const Protocol& prot, u64) {
    if (++checks % 64 == 0) {
      u64 total = 0;
      for (const u64 c : prot.counts()) total += c;
      EXPECT_EQ(total, prot.num_agents()) << "population leaked";
      EXPECT_EQ(prot.is_silent(), prot.is_valid_ranking());
    }
    return true;
  };
  const RunResult r = run_accelerated(*p, rng, opt);

  EXPECT_TRUE(r.silent) << name << " " << start_name(start);
  EXPECT_TRUE(r.valid) << name << " " << start_name(start);
  EXPECT_TRUE(p->is_valid_ranking());
  EXPECT_TRUE(is_valid_ranking(p->configuration(), p->num_ranks()));
  u64 total = 0;
  for (const u64 c : p->counts()) total += c;
  EXPECT_EQ(total, p->num_agents());
}

std::string param_label(const ::testing::TestParamInfo<Param>& info) {
  const auto& [name, n, start, seed] = info.param;
  std::string label = name + "_n" + std::to_string(n) + "_" +
                      start_name(start) + "_s" + std::to_string(seed);
  for (char& c : label) {
    if (c == '-') c = '_';
  }
  return label;
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocolsAllStarts, SelfStabilisation,
    ::testing::Combine(
        ::testing::Values(std::string("ag"), std::string("ring-of-traps"),
                          std::string("line-of-traps"),
                          std::string("tree-ranking")),
        ::testing::Values<u64>(72),
        ::testing::Values(Start::kUniformAll, Start::kUniformRanks,
                          Start::kOneDistant, Start::kQuarterDistant,
                          Start::kAllInFirst, Start::kAllInLast),
        ::testing::Values<u64>(1, 2, 3)),
    param_label);

// A second sweep at a larger size, fewer seeds, random starts only.
INSTANTIATE_TEST_SUITE_P(
    LargerPopulations, SelfStabilisation,
    ::testing::Combine(
        ::testing::Values(std::string("ag"), std::string("ring-of-traps"),
                          std::string("line-of-traps"),
                          std::string("tree-ranking")),
        ::testing::Values<u64>(240),
        ::testing::Values(Start::kUniformAll, Start::kOneDistant),
        ::testing::Values<u64>(7)),
    param_label);

// Degenerate / tiny populations: protocols must handle the smallest sizes
// their layouts admit.
class TinyPopulations : public ::testing::TestWithParam<
                            std::tuple<std::string, u64>> {};

TEST_P(TinyPopulations, Stabilises) {
  const auto& [name, n_raw] = GetParam();
  const u64 n = std::max<u64>(n_raw, min_population(name));
  ProtocolPtr p = make_protocol(name, n);
  Rng rng(derive_seed(99, name, n));
  p->reset(initial::uniform_random(*p, rng));
  EXPECT_TRUE(run_accelerated(*p, rng).valid) << name << " n=" << n;
}

std::string tiny_label(
    const ::testing::TestParamInfo<std::tuple<std::string, u64>>& info) {
  std::string label = std::get<0>(info.param) + "_n" +
                      std::to_string(std::get<1>(info.param));
  for (char& c : label) {
    if (c == '-') c = '_';
  }
  return label;
}

INSTANTIATE_TEST_SUITE_P(
    Tiny, TinyPopulations,
    ::testing::Combine(::testing::Values(std::string("ag"),
                                         std::string("ring-of-traps"),
                                         std::string("line-of-traps"),
                                         std::string("tree-ranking")),
                       ::testing::Values<u64>(2, 3, 4, 5, 8, 13)),
    tiny_label);

}  // namespace
}  // namespace pp
