// Tests of the ring-of-traps layout: canonical m(m+1) shape, generic-n
// partitions, and the Lemma 3 weight function.
#include "structures/ring_layout.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace pp {
namespace {

TEST(RingLayout, CanonicalShape) {
  // n = m(m+1) -> m traps of size m+1.
  for (const u64 m : {1u, 2u, 5u, 10u, 31u}) {
    RingLayout ring(m * (m + 1));
    EXPECT_EQ(ring.num_traps(), m);
    for (u64 a = 0; a < m; ++a) {
      EXPECT_EQ(ring.trap_size(a), m + 1) << "m=" << m << " a=" << a;
    }
  }
}

TEST(RingLayout, PartitionCoversAllStatesOnce) {
  for (const u64 n : {2u, 3u, 7u, 12u, 100u, 101u, 997u}) {
    RingLayout ring(n);
    u64 covered = 0;
    for (u64 a = 0; a < ring.num_traps(); ++a) {
      EXPECT_EQ(ring.trap_offset(a), covered);
      covered += ring.trap_size(a);
      EXPECT_GE(ring.trap_size(a), 1u);
    }
    EXPECT_EQ(covered, n);
  }
}

TEST(RingLayout, TrapSizesAreBalanced) {
  for (const u64 n : {50u, 99u, 1000u}) {
    RingLayout ring(n);
    u64 lo = ~0ull, hi = 0;
    for (u64 a = 0; a < ring.num_traps(); ++a) {
      lo = std::min(lo, ring.trap_size(a));
      hi = std::max(hi, ring.trap_size(a));
    }
    EXPECT_LE(hi - lo, 1u) << "n=" << n;
  }
}

TEST(RingLayout, TrapOfAndLocalOfInverses) {
  RingLayout ring(30);  // m = 5, traps of size 6
  for (StateId s = 0; s < 30; ++s) {
    const u64 a = ring.trap_of(s);
    const u64 b = ring.local_of(s);
    EXPECT_EQ(ring.trap_offset(a) + b, s);
    EXPECT_LT(b, ring.trap_size(a));
  }
}

TEST(RingLayout, GatesAndTops) {
  RingLayout ring(12);  // m = 3, traps of size 4
  EXPECT_EQ(ring.num_traps(), 3u);
  EXPECT_EQ(ring.gate(0), 0u);
  EXPECT_EQ(ring.top(0), 3u);
  EXPECT_EQ(ring.gate(1), 4u);
  EXPECT_EQ(ring.next_gate(2), ring.gate(0)) << "ring wraps";
}

TEST(RingLayout, Lemma3WeightOfFinalConfigurationIsZero) {
  RingLayout ring(20);
  std::vector<u64> counts(20, 1);
  EXPECT_EQ(ring.lemma3_weight(counts), 0u);
}

TEST(RingLayout, Lemma3WeightCountsGapsTwice) {
  RingLayout ring(12);  // 3 traps of size 4
  std::vector<u64> counts(12, 1);
  counts[1] = 0;  // inner gap in trap 0
  counts[2] = 2;  // keep the population size
  EXPECT_EQ(ring.lemma3_weight(counts), 2u);
}

TEST(RingLayout, Lemma3WeightCountsFlatTrapsWithEmptyGateOnce) {
  RingLayout ring(12);
  std::vector<u64> counts(12, 1);
  counts[4] = 0;  // trap 1's gate empty; trap 1 flat
  counts[5] = 1;
  counts[0] = 2;  // keep population
  EXPECT_EQ(ring.lemma3_weight(counts), 1u);
}

TEST(RingLayout, Lemma3WeightUpperBound) {
  // K = k1 + 2 k2 <= 2k where k is the number of unoccupied rank states.
  RingLayout ring(42);
  std::vector<u64> counts(42, 1);
  // Vacate 5 states (2 gates, 3 inner), dump the agents on state 0.
  counts[0] += 5;
  counts[ring.gate(0)] = counts[0];  // keep gate 0 occupied (it IS state 0)
  u64 k = 0;
  for (const u64 s : {7u, 13u, 20u, 28u, 35u}) {
    counts[s] = 0;
    ++k;
  }
  EXPECT_LE(ring.lemma3_weight(counts), 2 * k);
}

}  // namespace
}  // namespace pp
