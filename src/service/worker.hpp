// Worker shard of the sharded experiment service.
//
// A worker is the *same binary* as the coordinator, re-exec'd with
// `--poprank-service-worker=<job-dir>`: any process that calls
// maybe_run_worker() first thing in main() — bench_common::init() does,
// and so does the service test binary — can serve as its own worker
// fleet.  Workers therefore need nothing shipped to them but the job
// directory: the job file carries the canonical spec serialisation
// (obs/provenance spec_from_kv), the master seed and the chunk
// partition, which is everything a chunk's records are a function of.
//
// Membership follows the multi-master cluster state machine the ROADMAP
// points at (mmts-longrange node-status + refresh/recovery): a worker
// registers kJoining → kOnline, heartbeats while it holds a lease, and
// a worker whose previous incarnation died re-registers through
// kRecovering before returning kOnline — its stale lease simply expires
// and the chunk is claimed by whichever shard gets there first.  Status
// transitions are appended to `workers/w<id>.status` so the whole
// lifecycle is auditable after the run.
//
// Claim protocol (filesystem-backed, single machine):
//   1. skip chunks whose result file already exists (cache hit — maybe
//      from a previous sweep entirely);
//   2. try to create `leases/chunk-<i>.lease` with O_CREAT|O_EXCL — the
//      one-winner claim;
//   3. run the chunk through the standard runner kernel
//      (run_trial_range), touching the lease after every trial as the
//      heartbeat the coordinator watches;
//   4. publish the result with an atomic rename, release the lease.
// Leases are liveness hints, not locks: if an expired-but-alive worker
// races a reassigned chunk, both compute the same bytes and the rename
// is atomic, so the cache stays consistent (chunk.hpp).
#pragma once

#include <string>

#include "common/types.hpp"

namespace pp::service {

/// Worker membership states, after the mmts-longrange node-status
/// machine: the normal path is kJoining → kOnline → kOffline; a worker
/// re-registering over a previous incarnation's state file passes
/// through kRecovering instead of kJoining.
enum class NodeStatus { kJoining, kOnline, kRecovering, kOffline };

const char* node_status_name(NodeStatus s);

/// If argv carries `--poprank-service-worker=<job-dir>` this process IS a
/// worker shard: runs the worker loop against that job directory and
/// exits the process with the loop's status — it never returns.  Returns
/// false (having touched nothing) otherwise.  Call it before any other
/// initialisation: a worker must not open BENCH logs, sinks or thread
/// pools meant for the coordinator role.
bool maybe_run_worker(int argc, char** argv);

/// The worker loop itself (exposed for the service tests; production
/// entry is maybe_run_worker).  Returns the process exit status.
int worker_main(const std::string& job_dir, u64 worker_id);

/// nanosleep wrapper used by the service's polling loops.
void sleep_ms(u64 ms);

}  // namespace pp::service
