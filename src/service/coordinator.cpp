#include "service/coordinator.hpp"

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <vector>

#include "common/assert.hpp"
#include "common/file_io.hpp"
#include "obs/provenance.hpp"
#include "obs/trace.hpp"
#include "service/chunk.hpp"
#include "service/worker.hpp"

namespace pp::service {
namespace {

/// Coordinator-side view of one chunk: its identity, its result (once
/// collected) and the lease-liveness tracker.
struct ChunkState {
  ChunkSpec chunk;
  std::string key_material;
  bool done = false;
  TrialRange range;

  // Lease heartbeat tracking: the holder rewrites the lease content
  // after every trial; content that stops changing past the timeout
  // marks a dead holder.
  std::string lease_content;
  u64 lease_changed_us = 0;
};

/// fork + execv of /proc/self/exe in worker mode, stdout/stderr
/// redirected to the worker's log.  Returns the child pid (-1 on fork
/// failure).
pid_t spawn_worker(const std::string& job_dir, u64 worker_id) {
  const pid_t pid = fork();
  if (pid != 0) return pid;

  // Child: from here on only async-signal-safe-ish work, then exec.
  const std::string log_path =
      job_dir + "/workers/w" + std::to_string(worker_id) + ".log";
  const int fd = ::open(log_path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd >= 0) {
    ::dup2(fd, 1);
    ::dup2(fd, 2);
    ::close(fd);
  }
  std::string argv0 = "poprank-service-worker";
  std::string worker_arg = "--poprank-service-worker=" + job_dir;
  std::string id_arg =
      "--poprank-service-worker-id=" + std::to_string(worker_id);
  char* args[] = {argv0.data(), worker_arg.data(), id_arg.data(), nullptr};
  ::execv("/proc/self/exe", args);
  std::_Exit(127);  // exec failed; the parent sees a dead worker
}

std::string job_file_content(const TrialSpec& spec, const RunnerOptions& opt,
                             u64 chunk_trials, const std::string& chunks_dir) {
  std::string out = "poprank-job-v1\n";
  out += "master_seed " + std::to_string(opt.master_seed) + "\n";
  out += "trials " + std::to_string(opt.trials) + "\n";
  out += "chunk_trials " + std::to_string(chunk_trials) + "\n";
  out += "chunks_dir " + chunks_dir + "\n";
  out += "spec " + obs::spec_to_kv(spec) + "\n";
  return out;
}

/// Plain in-process runner with the service bookkeeping attached — the
/// path for non-replayable specs and disabled caches.
TrialSet run_fallback(const TrialSpec& spec, const RunnerOptions& opt,
                      ServiceReport* rep) {
  rep->fallback_in_process = true;
  return run_trials(spec, opt);
}

}  // namespace

void normalize_throughput(TrialSet* set) {
  set->wall_seconds = 0;
  set->trials_per_sec = 0;
  set->threads = 0;
  set->counters.wall_us = 0;
}

TrialSet run_trials_sharded(const TrialSpec& spec, const RunnerOptions& opt,
                            const ServiceOptions& sopt,
                            ServiceReport* report) {
  PP_ASSERT(opt.trials >= 1);
  obs::init_from_env();
  ServiceReport local;
  ServiceReport* const rep = report != nullptr ? report : &local;
  *rep = ServiceReport{};

  if (sopt.cache_dir.empty()) return run_fallback(spec, opt, rep);
  if (!obs::spec_is_replayable(spec)) {
    // An explicit factory / custom generator cannot be shipped to a
    // worker process via the canonical serialisation; say so and run the
    // plain runner rather than silently changing semantics.
    std::fprintf(stderr,
                 "[service] %s: spec not replayable, running in-process\n",
                 spec.label.c_str());
    return run_fallback(spec, opt, rep);
  }

  const u64 t0_us = obs::now_us();
  const std::string chunks_dir = sopt.cache_dir + "/chunks";
  make_dirs(chunks_dir);

  const u64 chunk_trials = sopt.chunk_trials != 0
                               ? sopt.chunk_trials
                               : default_chunk_trials(opt.trials);
  const std::vector<ChunkSpec> chunks = chunk_ranges(opt.trials, chunk_trials);
  rep->chunks = chunks.size();

  // Probe the cache for every chunk before any fan-out.  Stale files are
  // deleted here: workers use bare existence as "already computed", so a
  // corrupt file left in place would never be recomputed.
  std::vector<ChunkState> state(chunks.size());
  u64 remaining = 0;
  for (u64 i = 0; i < chunks.size(); ++i) {
    state[i].chunk = chunks[i];
    state[i].key_material =
        chunk_key_material(spec, opt.master_seed, chunks[i]);
    ChunkLoad load = load_chunk(chunks_dir, state[i].key_material, chunks[i]);
    switch (load.status) {
      case CacheProbe::kHit:
        state[i].done = true;
        state[i].range = std::move(load.range);
        ++rep->cache_hits;
        break;
      case CacheProbe::kStale:
        remove_file(chunks_dir + "/" + chunk_file_name(state[i].key_material));
        ++rep->cache_stale;
        ++remaining;
        break;
      case CacheProbe::kMiss:
        ++rep->cache_misses;
        ++remaining;
        break;
    }
  }

  if (remaining > 0 && sopt.workers == 0) {
    // No fan-out requested: compute misses right here, still feeding the
    // cache so the next invocation resumes.
    for (ChunkState& s : state) {
      if (s.done) continue;
      s.range = run_trial_range(spec, opt.master_seed, s.chunk.begin,
                                s.chunk.end);
      store_chunk(chunks_dir, s.key_material, s.chunk, s.range);
      s.done = true;
      ++rep->inprocess_chunks;
    }
    remaining = 0;
  }

  if (remaining > 0) {
    // Job state lives under its own id so concurrent invocations sharing
    // the cache never collide on leases.
    char id_buf[32];
    std::snprintf(id_buf, sizeof(id_buf), "job-%016" PRIx64,
                  obs::fnv1a64(state[0].key_material) ^
                      (static_cast<u64>(::getpid()) << 32) ^ obs::now_us());
    const std::string job_dir = sopt.cache_dir + "/jobs/" + id_buf;
    make_dirs(job_dir + "/leases");
    make_dirs(job_dir + "/workers");
    write_file_atomic(job_dir + "/job.kv",
                      job_file_content(spec, opt, chunk_trials, chunks_dir));

    const u64 fleet =
        sopt.workers < remaining ? sopt.workers : remaining;
    std::vector<pid_t> pids(fleet, -1);
    for (u64 i = 0; i < fleet; ++i) {
      pids[i] = spawn_worker(job_dir, i);
      if (pids[i] > 0) ++rep->workers_spawned;
    }

    u64 respawns_left = sopt.max_respawns;
    u64 last_progress_us = obs::now_us();
    while (remaining > 0) {
      sleep_ms(sopt.poll_ms);
      const u64 now = obs::now_us();

      // Collect finished chunks (atomic renames: a loadable file is a
      // complete file).
      bool progressed = false;
      for (ChunkState& s : state) {
        if (s.done) continue;
        ChunkLoad load = load_chunk(chunks_dir, s.key_material, s.chunk);
        if (load.status != CacheProbe::kHit) continue;
        s.done = true;
        s.range = std::move(load.range);
        --remaining;
        progressed = true;
      }
      if (progressed) last_progress_us = now;
      if (remaining == 0) break;

      // Lease liveness: a holder heartbeats by rewriting the lease after
      // every trial, so unchanged content past the timeout means a dead
      // holder — remove the lease and let any live worker reclaim the
      // chunk.  (If the holder is merely slow, the duplicate computation
      // is byte-identical and the atomic rename keeps the cache sound.)
      for (ChunkState& s : state) {
        if (s.done) continue;
        const std::string lease_path =
            job_dir + "/leases/chunk-" + std::to_string(s.chunk.index) +
            ".lease";
        const std::optional<std::string> content = read_file(lease_path);
        if (!content.has_value()) {
          s.lease_content.clear();
          s.lease_changed_us = 0;
          continue;
        }
        if (*content != s.lease_content) {
          s.lease_content = *content;
          s.lease_changed_us = now;
        } else if (s.lease_changed_us != 0 &&
                   now - s.lease_changed_us > sopt.lease_timeout_ms * 1000) {
          remove_file(lease_path);
          s.lease_content.clear();
          s.lease_changed_us = 0;
          ++rep->leases_expired;
        }
      }

      // Reap dead workers; respawn under the same id (the replacement
      // re-registers through NodeStatus::kRecovering) while the budget
      // lasts.
      bool any_alive = false;
      for (u64 i = 0; i < fleet; ++i) {
        if (pids[i] <= 0) continue;
        int wstatus = 0;
        const pid_t r = ::waitpid(pids[i], &wstatus, WNOHANG);
        if (r == 0) {
          any_alive = true;
          continue;
        }
        pids[i] = -1;
        if (respawns_left > 0) {
          --respawns_left;
          pids[i] = spawn_worker(job_dir, i);
          if (pids[i] > 0) {
            ++rep->workers_respawned;
            any_alive = true;
          }
        }
      }

      // Fail-safe: fleet gone (or wedged past the stall limit) — finish
      // the remaining chunks in-process.  Idempotent stores make this
      // safe even if a zombie worker later writes the same chunks.
      if (!any_alive ||
          now - last_progress_us > sopt.stall_timeout_ms * 1000) {
        for (ChunkState& s : state) {
          if (s.done) continue;
          s.range = run_trial_range(spec, opt.master_seed, s.chunk.begin,
                                    s.chunk.end);
          store_chunk(chunks_dir, s.key_material, s.chunk, s.range);
          s.done = true;
          ++rep->inprocess_chunks;
        }
        remaining = 0;
      }
    }

    // Shutdown: the done marker releases workers still scanning, then
    // reap whoever is left.
    write_file_atomic(job_dir + "/done", "done\n");
    for (u64 i = 0; i < fleet; ++i) {
      if (pids[i] <= 0) continue;
      int wstatus = 0;
      ::waitpid(pids[i], &wstatus, 0);
    }
  }

  // Merge in chunk-index order.  Chunks partition [0, trials) in
  // ascending contiguous ranges, so chunk order IS trial order: records
  // concatenate sorted, stats fold exactly as run_trials() folds them,
  // and the counter merge (commutative sums) matches bit for bit.
  TrialSet out;
  out.master_seed = opt.master_seed;
  out.threads = sopt.workers != 0 ? sopt.workers : 1;
  out.records.reserve(opt.trials);
  for (const ChunkState& s : state) {
    PP_ASSERT(s.done);
    for (const TrialRecord& r : s.range.records) out.records.push_back(r);
    out.counters.merge(s.range.counters);
  }
  PP_ASSERT(out.records.size() == opt.trials);
  for (const TrialRecord& r : out.records) out.stats.fold(r);

  // Wall-clock bookkeeping, as ever outside the determinism contract.
  out.wall_seconds =
      static_cast<double>(obs::now_us() - t0_us) / 1e6;
  out.trials_per_sec = out.wall_seconds > 0
                           ? static_cast<double>(opt.trials) / out.wall_seconds
                           : 0.0;

  std::printf("[service] %s: chunks=%llu hits=%llu misses=%llu stale=%llu "
              "workers=%llu respawned=%llu expired=%llu inprocess=%llu\n",
              spec.label.c_str(),
              static_cast<unsigned long long>(rep->chunks),
              static_cast<unsigned long long>(rep->cache_hits),
              static_cast<unsigned long long>(rep->cache_misses),
              static_cast<unsigned long long>(rep->cache_stale),
              static_cast<unsigned long long>(rep->workers_spawned),
              static_cast<unsigned long long>(rep->workers_respawned),
              static_cast<unsigned long long>(rep->leases_expired),
              static_cast<unsigned long long>(rep->inprocess_chunks));

  if (!opt.keep_records) {
    out.records.clear();
    out.records.shrink_to_fit();
  }
  return out;
}

}  // namespace pp::service
