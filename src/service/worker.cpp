#include "service/worker.hpp"

#include <time.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <vector>

#include "common/file_io.hpp"
#include "obs/provenance.hpp"
#include "obs/trace.hpp"
#include "runner/runner.hpp"
#include "service/chunk.hpp"

namespace pp::service {
namespace {

constexpr const char* kWorkerFlag = "--poprank-service-worker=";
constexpr const char* kWorkerIdFlag = "--poprank-service-worker-id=";
constexpr const char* kJobMagic = "poprank-job-v1";

/// Worker exit statuses (the coordinator logs nonzero ones).
enum : int {
  kExitOk = 0,
  kExitBadJob = 4,
  kExitBadSpec = 5,
  kExitCrashInjected = 6,
};

/// The job descriptor, parsed from `<job-dir>/job.kv` (written once by
/// the coordinator before any worker is spawned).
struct JobFile {
  std::string spec_kv;
  std::string chunks_dir;
  u64 master_seed = 0;
  u64 trials = 0;
  u64 chunk_trials = 0;
};

bool parse_job_file(const std::string& content, JobFile* out) {
  std::istringstream in(content);
  std::string line;
  if (!std::getline(in, line) || line != kJobMagic) return false;
  bool have_spec = false, have_chunks = false;
  while (std::getline(in, line)) {
    const auto space = line.find(' ');
    if (space == std::string::npos) continue;
    const std::string tag = line.substr(0, space);
    const std::string value = line.substr(space + 1);
    if (tag == "spec") {
      out->spec_kv = value;
      have_spec = true;
    } else if (tag == "chunks_dir") {
      out->chunks_dir = value;
      have_chunks = true;
    } else if (tag == "master_seed") {
      out->master_seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (tag == "trials") {
      out->trials = std::strtoull(value.c_str(), nullptr, 10);
    } else if (tag == "chunk_trials") {
      out->chunk_trials = std::strtoull(value.c_str(), nullptr, 10);
    }
    // Unknown tags are skipped: older workers tolerate newer job files.
  }
  return have_spec && have_chunks && out->trials >= 1 &&
         out->chunk_trials >= 1;
}

void append_status(const std::string& job_dir, u64 worker_id, NodeStatus s) {
  append_line(job_dir + "/workers/w" + std::to_string(worker_id) + ".status",
              std::string(node_status_name(s)) + " " +
                  std::to_string(obs::now_us()));
}

}  // namespace

const char* node_status_name(NodeStatus s) {
  switch (s) {
    case NodeStatus::kJoining:
      return "joining";
    case NodeStatus::kOnline:
      return "online";
    case NodeStatus::kRecovering:
      return "recovering";
    case NodeStatus::kOffline:
      return "offline";
  }
  return "?";
}

void sleep_ms(u64 ms) {
  timespec req;
  req.tv_sec = static_cast<time_t>(ms / 1000);
  req.tv_nsec = static_cast<long>(ms % 1000) * 1000000L;
  while (nanosleep(&req, &req) != 0 && errno == EINTR) {
  }
}

int worker_main(const std::string& job_dir, u64 worker_id) {
  // The job file is written before the first spawn, so a failed read is a
  // hard error, not a race — but give a slow filesystem a moment anyway.
  std::optional<std::string> job_content;
  for (int attempt = 0; attempt < 50; ++attempt) {
    job_content = read_file(job_dir + "/job.kv");
    if (job_content.has_value()) break;
    sleep_ms(10);
  }
  JobFile job;
  if (!job_content.has_value() || !parse_job_file(*job_content, &job)) {
    std::fprintf(stderr, "[service] w%llu: unreadable job file in %s\n",
                 static_cast<unsigned long long>(worker_id), job_dir.c_str());
    return kExitBadJob;
  }

  TrialSpec spec;
  {
    // spec_from_kv asserts on malformed input; the coordinator only
    // shards specs that round-trip, so reaching here with a bad one
    // means the job file was corrupted — fail loudly either way.
    spec = obs::spec_from_kv(job.spec_kv);
    if (!obs::spec_is_replayable(spec)) return kExitBadSpec;
  }

  // Membership: a leftover status file for this id means a previous
  // incarnation died mid-job — re-register through kRecovering (the
  // mmts-style rejoin) instead of kJoining.
  const std::string status_path =
      job_dir + "/workers/w" + std::to_string(worker_id) + ".status";
  append_status(job_dir, worker_id,
                path_exists(status_path) ? NodeStatus::kRecovering
                                         : NodeStatus::kJoining);
  append_status(job_dir, worker_id, NodeStatus::kOnline);

  // Fault-injection hook for the service tests: worker 0 crashes hard
  // (lease left dangling, no offline record) right after claiming its
  // k-th chunk, once per job — the marker file keeps the respawned
  // incarnation from crash-looping.
  u64 crash_after = 0;
  if (worker_id == 0) {
    if (const char* env = std::getenv("POPRANK_SERVICE_CRASH_AFTER")) {
      crash_after = std::strtoull(env, nullptr, 10);
    }
  }
  const std::string crash_marker = job_dir + "/workers/w0.crashed";

  const std::vector<ChunkSpec> chunks =
      chunk_ranges(job.trials, job.chunk_trials);
  const std::string done_marker = job_dir + "/done";
  u64 claims = 0;

  while (true) {
    u64 remaining = 0;
    bool progressed = false;
    for (const ChunkSpec& chunk : chunks) {
      const std::string material =
          chunk_key_material(spec, job.master_seed, chunk);
      const std::string result_path =
          job.chunks_dir + "/" + chunk_file_name(material);
      if (path_exists(result_path)) continue;
      ++remaining;

      const std::string lease_path =
          job_dir + "/leases/chunk-" + std::to_string(chunk.index) + ".lease";
      const std::string holder = "w" + std::to_string(worker_id);
      if (!create_exclusive(lease_path, holder + " 0")) continue;  // lost race

      ++claims;
      if (crash_after != 0 && claims >= crash_after &&
          !path_exists(crash_marker) &&
          create_exclusive(crash_marker, "crashed")) {
        // Simulated hard death: no cleanup, no offline transition, the
        // lease stays behind for the coordinator's expiry sweep.
        std::_Exit(kExitCrashInjected);
      }

      // Heartbeat after every trial: the coordinator treats a lease whose
      // content stops changing as a dead holder.  An atomic rewrite (not
      // an append) keeps the file one readable record.
      u64 beat = 0;
      const TrialRange range = run_trial_range(
          spec, job.master_seed, chunk.begin, chunk.end, [&](u64 trial) {
            ++beat;
            write_file_atomic(lease_path, holder + " " + std::to_string(beat) +
                                              " trial=" +
                                              std::to_string(trial));
          });
      store_chunk(job.chunks_dir, material, chunk, range);
      remove_file(lease_path);
      progressed = true;
      --remaining;
    }
    if (remaining == 0) break;           // every chunk has a result
    if (path_exists(done_marker)) break;  // coordinator gave up / finished
    if (!progressed) sleep_ms(20);  // all remaining chunks leased elsewhere
  }

  append_status(job_dir, worker_id, NodeStatus::kOffline);
  return kExitOk;
}

bool maybe_run_worker(int argc, char** argv) {
  std::string job_dir;
  u64 worker_id = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(kWorkerFlag, 0) == 0) {
      job_dir = arg.substr(std::strlen(kWorkerFlag));
    } else if (arg.rfind(kWorkerIdFlag, 0) == 0) {
      worker_id =
          std::strtoull(arg.c_str() + std::strlen(kWorkerIdFlag), nullptr, 10);
    }
  }
  if (job_dir.empty()) return false;
  std::exit(worker_main(job_dir, worker_id));
}

}  // namespace pp::service
