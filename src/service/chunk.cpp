#include "service/chunk.hpp"

#include <bit>
#include <cinttypes>
#include <cstdio>
#include <sstream>

#include "common/assert.hpp"
#include "common/file_io.hpp"
#include "obs/provenance.hpp"

namespace pp::service {
namespace {

constexpr const char* kMagic = "poprank-chunk-v1";

// Doubles travel as their u64 bit pattern: "%.17g" round-trips on one
// libc, but the cache must be bit-exact across any producer/consumer
// pair, so no decimal detour.
u64 double_bits(double v) { return std::bit_cast<u64>(v); }
double bits_double(u64 b) { return std::bit_cast<double>(b); }

}  // namespace

std::vector<ChunkSpec> chunk_ranges(u64 trials, u64 chunk_trials) {
  PP_ASSERT(chunk_trials >= 1);
  std::vector<ChunkSpec> out;
  out.reserve((trials + chunk_trials - 1) / chunk_trials);
  for (u64 begin = 0; begin < trials; begin += chunk_trials) {
    ChunkSpec c;
    c.index = out.size();
    c.begin = begin;
    c.end = begin + chunk_trials < trials ? begin + chunk_trials : trials;
    out.push_back(c);
  }
  return out;
}

u64 default_chunk_trials(u64 trials) {
  // ~16 chunks per point: enough slack for 4 workers to stay busy and
  // for a lost lease to cost 1/16 of the point, small enough that the
  // cache directory stays browsable.  Never a function of the worker
  // count (see header).
  const u64 chunks = 16;
  const u64 per = (trials + chunks - 1) / chunks;
  return per >= 1 ? per : 1;
}

std::string chunk_key_material(const TrialSpec& spec, u64 master_seed,
                               const ChunkSpec& chunk) {
  std::string out = obs::spec_to_kv(spec);
  out += "master_seed=" + std::to_string(master_seed) + ";";
  out += "chunk=" + std::to_string(chunk.begin) + "-" +
         std::to_string(chunk.end) + ";";
  out += "format=1;";
  return out;
}

std::string chunk_file_name(const std::string& key_material) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "chunk-%016" PRIx64 ".result",
                obs::fnv1a64(key_material));
  return buf;
}

std::string serialize_chunk(const std::string& key_material,
                            const ChunkSpec& chunk, const TrialRange& range) {
  PP_ASSERT(range.begin == chunk.begin && range.end == chunk.end);
  PP_ASSERT(range.records.size() == chunk.end - chunk.begin);
  std::ostringstream out;
  out << kMagic << "\n";
  out << "key " << key_material << "\n";
  out << "range " << chunk.begin << " " << chunk.end << "\n";
  for (const TrialRecord& r : range.records) {
    out << "trial " << r.trial << " " << r.seed << " " << r.interactions
        << " " << r.productive_steps << " " << r.fault_events << " "
        << double_bits(r.parallel_time) << " " << (r.silent ? 1 : 0) << " "
        << (r.valid ? 1 : 0) << "\n";
  }
  out << "counters";
  for (const u64 v : range.counters.counter) out << " " << v;
  out << "\n";
  for (u64 s = 0; s < obs::kNumSketches; ++s) {
    out << "sketch " << s;
    for (const u64 v : range.counters.sketch[s]) out << " " << v;
    out << "\n";
  }
  // wall_us is outside the determinism contract (it records the compute
  // cost of whichever process filled the cache) but kept for diagnostics.
  out << "wall_us " << range.counters.wall_us << "\n";
  out << "end\n";
  return out.str();
}

ChunkLoad load_chunk(const std::string& dir, const std::string& key_material,
                     const ChunkSpec& chunk) {
  ChunkLoad out;
  const std::string path = dir + "/" + chunk_file_name(key_material);
  const std::optional<std::string> content = read_file(path);
  if (!content.has_value()) {
    out.status = CacheProbe::kMiss;
    return out;
  }
  out.status = CacheProbe::kStale;  // until every check below passes

  std::istringstream in(*content);
  std::string line;
  if (!std::getline(in, line) || line != kMagic) return out;
  if (!std::getline(in, line) || line != "key " + key_material) return out;
  if (!std::getline(in, line) ||
      line != "range " + std::to_string(chunk.begin) + " " +
                  std::to_string(chunk.end)) {
    return out;
  }

  TrialRange range;
  range.begin = chunk.begin;
  range.end = chunk.end;
  range.records.reserve(chunk.end - chunk.begin);
  for (u64 t = chunk.begin; t < chunk.end; ++t) {
    std::istringstream ls;
    if (!std::getline(in, line)) return out;
    ls.str(line);
    std::string tag;
    TrialRecord r;
    u64 pt_bits = 0, silent = 0, valid = 0;
    ls >> tag >> r.trial >> r.seed >> r.interactions >> r.productive_steps >>
        r.fault_events >> pt_bits >> silent >> valid;
    if (!ls || tag != "trial" || r.trial != t) return out;
    r.parallel_time = bits_double(pt_bits);
    r.silent = silent != 0;
    r.valid = valid != 0;
    range.records.push_back(r);
  }

  {
    if (!std::getline(in, line)) return out;
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    if (tag != "counters") return out;
    for (u64& v : range.counters.counter) ls >> v;
    if (!ls) return out;
  }
  for (u64 s = 0; s < obs::kNumSketches; ++s) {
    if (!std::getline(in, line)) return out;
    std::istringstream ls(line);
    std::string tag;
    u64 idx = 0;
    ls >> tag >> idx;
    if (tag != "sketch" || idx != s) return out;
    for (u64& v : range.counters.sketch[s]) ls >> v;
    if (!ls) return out;
  }
  {
    if (!std::getline(in, line)) return out;
    std::istringstream ls(line);
    std::string tag;
    ls >> tag >> range.counters.wall_us;
    if (!ls || tag != "wall_us") return out;
  }
  if (!std::getline(in, line) || line != "end") return out;

  out.status = CacheProbe::kHit;
  out.range = std::move(range);
  return out;
}

std::string store_chunk(const std::string& dir,
                        const std::string& key_material,
                        const ChunkSpec& chunk, const TrialRange& range) {
  const std::string path = dir + "/" + chunk_file_name(key_material);
  if (!write_file_atomic(path, serialize_chunk(key_material, chunk, range))) {
    return "";
  }
  return path;
}

const char* cache_probe_name(CacheProbe p) {
  switch (p) {
    case CacheProbe::kHit:
      return "hit";
    case CacheProbe::kMiss:
      return "miss";
    case CacheProbe::kStale:
      return "stale";
  }
  return "?";
}

}  // namespace pp::service
