// Coordinator of the sharded experiment service.
//
// run_trials_sharded() is a drop-in sibling of run_trials(): same spec,
// same options, same TrialSet out — but the trial space is partitioned
// into chunks (service/chunk.hpp) that are satisfied from the on-disk
// chunk cache when possible and farmed out to worker *processes*
// (service/worker.hpp) otherwise.  Because every chunk is a pure
// function of (spec, master_seed, range), the merged result is
// bit-identical to a single-process run_trials() with the same master
// seed — for any worker count, any cache state, and any interleaving of
// crashes and reassignments (pinned by tests/test_service.cpp).
//
// Fan-out model (single machine, filesystem-coordinated):
//
//   <cache-dir>/chunks/                 content-addressed chunk results,
//                                       shared across jobs and sweeps
//   <cache-dir>/jobs/<job-id>/job.kv    the sharded point's descriptor
//                           /leases/    O_EXCL claim files, heartbeated
//                           /workers/   w<id>.status, w<id>.log
//                           /done       coordinator's shutdown marker
//
// The coordinator spawns K copies of the *current binary* re-exec'd in
// worker mode (fork + execv of /proc/self/exe), then only polls: it
// collects finished chunks from the cache, expires leases whose
// heartbeat content stops changing (dead holder → the chunk becomes
// claimable again), reaps dead workers and respawns them under the same
// id (the rejoin passes through NodeStatus::kRecovering), and falls
// back to computing remaining chunks in-process if the fleet burns its
// respawn budget — the sweep completes even if every worker dies.
//
// Specs that cannot round-trip through the provenance serialisation
// (explicit factories, custom generators — see spec_is_replayable())
// cannot be shipped to another process; those fall back to the plain
// in-process runner, reported via ServiceReport::fallback_in_process.
#pragma once

#include <string>

#include "runner/runner.hpp"

namespace pp::service {

struct ServiceOptions {
  /// Worker processes to spawn.  0 = no fan-out: chunks still go through
  /// the cache (probe, compute misses in-process, store) so sequential
  /// invocations resume, but no child processes are involved.
  u64 workers = 0;

  /// Root of the chunk cache and job state ("" disables the service
  /// entirely; callers then use run_trials()).
  std::string cache_dir;

  /// Trials per chunk; 0 = default_chunk_trials(trials).
  u64 chunk_trials = 0;

  /// A lease whose heartbeat content is unchanged for this long is
  /// presumed dead and removed, making its chunk claimable again.
  u64 lease_timeout_ms = 2000;

  /// Coordinator poll cadence.
  u64 poll_ms = 20;

  /// Total worker respawns allowed before the coordinator stops trusting
  /// the fleet and finishes the remaining chunks itself.
  u64 max_respawns = 4;

  /// Hard stall limit: if no new chunk result lands for this long the
  /// coordinator finishes in-process (keeps CI from hanging on a
  /// pathological fleet).
  u64 stall_timeout_ms = 120000;
};

/// What the sharded run actually did — cache economics and fleet events.
/// The CI smoke and the service tests assert on these.
struct ServiceReport {
  u64 chunks = 0;
  u64 cache_hits = 0;
  u64 cache_misses = 0;
  u64 cache_stale = 0;  ///< present but failed verification; recomputed
  u64 leases_expired = 0;
  u64 workers_spawned = 0;
  u64 workers_respawned = 0;
  u64 inprocess_chunks = 0;  ///< computed by the coordinator itself
  bool fallback_in_process = false;  ///< non-replayable spec, plain runner
};

/// run_trials(), sharded: probe the chunk cache, fan misses out to
/// `sopt.workers` re-exec'd worker processes (in-process when 0), merge
/// in chunk order.  Bit-identical to single-process run_trials() with
/// the same (spec, master seed) — see file header.  `report` (optional)
/// receives the cache/fleet accounting.
TrialSet run_trials_sharded(const TrialSpec& spec, const RunnerOptions& opt,
                            const ServiceOptions& sopt,
                            ServiceReport* report = nullptr);

/// Zeroes the fields documented as outside the determinism contract
/// (wall_seconds, trials_per_sec, threads, counters wall time) so two
/// TrialSets — or the sink rows rendered from them — can be compared
/// byte for byte across process counts and machines.
void normalize_throughput(TrialSet* set);

}  // namespace pp::service
