// Chunk model of the sharded experiment service (src/service/).
//
// A sweep point (one TrialSpec × trials) is partitioned into contiguous
// *chunks* of trial indices.  Because the runner derives trial t's RNG
// stream from (master_seed, label, t) alone, a chunk's records are a
// pure function of (spec, master_seed, range) — independent of which
// process computes them, when, or after how many retries.  That purity
// is what the whole service leans on:
//
//  * Chunks are the unit of distribution: worker shards claim and
//    compute them independently (service/worker.hpp).
//
//  * Chunks are the unit of caching: a computed chunk is persisted as
//    `chunk-<fnv1a64-key>.result` in the cache directory, keyed by the
//    canonical spec serialisation (obs/provenance.hpp spec_to_kv) plus
//    master seed and trial range.  Any spec change — protocol, n,
//    budget, scheduler knob — changes the key, so a stale entry can
//    never be *returned*; a file whose embedded key material disagrees
//    with its name's (corruption, a hash collision, a format bump) is
//    detected on load and reported kStale, then recomputed.
//
//  * Chunks are idempotent: two workers computing the same chunk write
//    byte-identical files via atomic rename, so lease races lose only
//    duplicated work, never correctness.
//
// The result file is a line format with bit-exact doubles (parallel
// times travel as hex u64 bit patterns, not decimal round-trips) and a
// trailing end marker, so a torn or truncated file is unloadable rather
// than silently short.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "runner/runner.hpp"

namespace pp::service {

/// One chunk of a sweep point's trial index space.
struct ChunkSpec {
  u64 index = 0;  ///< position in the partition (merge order)
  u64 begin = 0;
  u64 end = 0;  ///< exclusive
};

/// Partitions [0, trials) into ceil(trials / chunk_trials) contiguous
/// chunks of at most chunk_trials each (the last may be short).
std::vector<ChunkSpec> chunk_ranges(u64 trials, u64 chunk_trials);

/// The default chunk size for a sweep point: trials/16-ish.  Deliberately
/// a function of the trial count alone — never of the worker count — so
/// runs with different --service-workers values share cache entries.
u64 default_chunk_trials(u64 trials);

/// The canonical key material of one chunk: spec_to_kv(spec) plus master
/// seed, trial range and a format version.  Two chunks agree on this
/// string iff their records must be bit-identical.
std::string chunk_key_material(const TrialSpec& spec, u64 master_seed,
                               const ChunkSpec& chunk);

/// "chunk-<16-hex-fnv1a64-of-material>.result" — the cache file name.
std::string chunk_file_name(const std::string& key_material);

/// Serialises a computed chunk (records + merged counters) with its key
/// material.  load_chunk() inverts it exactly.
std::string serialize_chunk(const std::string& key_material,
                            const ChunkSpec& chunk, const TrialRange& range);

enum class CacheProbe {
  kHit,    ///< file present, key material and shape verified, loaded
  kMiss,   ///< no file at the keyed path
  kStale,  ///< file present but failed verification — recompute
};

const char* cache_probe_name(CacheProbe p);

struct ChunkLoad {
  CacheProbe status = CacheProbe::kMiss;
  TrialRange range;
};

/// Probes `dir` for the chunk keyed by `key_material`.  kHit fills
/// `range`; kStale means a file existed but its embedded key, range or
/// framing disagreed (the caller recomputes and overwrites).
ChunkLoad load_chunk(const std::string& dir, const std::string& key_material,
                     const ChunkSpec& chunk);

/// Persists a computed chunk into `dir` via atomic rename.  Returns the
/// final path ("" on failure — callers treat the cache as best-effort).
std::string store_chunk(const std::string& dir,
                        const std::string& key_material,
                        const ChunkSpec& chunk, const TrialRange& range);

}  // namespace pp::service
