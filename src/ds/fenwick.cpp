#include "ds/fenwick.hpp"

#include <utility>

#include "obs/counters.hpp"

namespace pp {

void Fenwick::reset(u64 size) {
  n_ = size;
  total_ = 0;
  tree_.assign(n_ + 1, 0);
  leaf_.assign(n_, 0);
  log2n_ = 1;
  while (log2n_ * 2 <= n_) log2n_ *= 2;
}

void Fenwick::assign(std::vector<u64> weights) {
  n_ = weights.size();
  leaf_ = std::move(weights);
  tree_.assign(n_ + 1, 0);
  total_ = 0;
  log2n_ = 1;
  while (log2n_ * 2 <= n_) log2n_ *= 2;
  // Linear-time construction: push each node's accumulated sum to its
  // parent once, in index order.
  for (u64 i = 1; i <= n_; ++i) {
    tree_[i] += leaf_[i - 1];
    total_ += leaf_[i - 1];
    const u64 parent = i + (i & (~i + 1));
    if (parent <= n_) tree_[parent] += tree_[i];
  }
}

void Fenwick::add(u64 i, i64 delta) {
  PP_DCHECK(i < n_);
  if (delta == 0) return;
  if (delta < 0) {
    PP_ASSERT_MSG(leaf_[i] >= static_cast<u64>(-delta),
                  "Fenwick weight underflow");
  }
  leaf_[i] = static_cast<u64>(static_cast<i64>(leaf_[i]) + delta);
  total_ = static_cast<u64>(static_cast<i64>(total_) + delta);
#if PP_OBS
  // Depth is only *computed* when a counter block is listening; the
  // un-measured path pays one predictable branch.
  if (obs::active()) {
    u64 depth = 0;
    for (u64 j = i + 1; j <= n_; j += j & (~j + 1)) ++depth;
    obs::bump(obs::Counter::kFenwickUpdates);
    obs::record(obs::Sketch::kFenwickDepth, depth);
  }
#endif
  for (u64 j = i + 1; j <= n_; j += j & (~j + 1)) {
    tree_[j] = static_cast<u64>(static_cast<i64>(tree_[j]) + delta);
  }
}

void Fenwick::set(u64 i, u64 w) {
  add(i, static_cast<i64>(w) - static_cast<i64>(leaf_[i]));
}

u64 Fenwick::prefix(u64 i) const {
  PP_DCHECK(i <= n_);
  u64 sum = 0;
  for (u64 j = i; j > 0; j -= j & (~j + 1)) sum += tree_[j];
  return sum;
}

u64 Fenwick::find(u64 target) const {
  PP_DCHECK(target < total_);
  u64 pos = 0;
  u64 remaining = target;
  for (u64 step = log2n_; step > 0; step >>= 1) {
    const u64 next = pos + step;
    if (next <= n_ && tree_[next] <= remaining) {
      remaining -= tree_[next];
      pos = next;
    }
  }
  PP_DCHECK(pos < n_);
  PP_DCHECK(leaf_[pos] > remaining);
  return pos;
}

}  // namespace pp
