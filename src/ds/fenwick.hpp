// Fenwick (binary indexed) tree over u64 weights with O(log n) point
// updates, prefix sums, and weighted sampling.
//
// This is the simulator's hot data structure.  Each protocol keeps
//   * a tree of per-state "productive weights" c_s(c_s - 1) used to sample
//     the next productive interaction, and
//   * a tree of raw per-state agent counts used to sample uniform
//     interaction partners.
// Both see one increment/decrement per state whose count changes, i.e. at
// most four point updates per simulated interaction.
#pragma once

#include <vector>

#include "common/assert.hpp"
#include "common/types.hpp"

namespace pp {

class Fenwick {
 public:
  Fenwick() = default;
  explicit Fenwick(u64 size) { reset(size); }

  /// Re-initialises to `size` zero weights.
  void reset(u64 size);

  /// Re-initialises to hold `weights` verbatim (taken by value: callers
  /// move, the vector becomes the leaf mirror).  O(n) — each internal
  /// node is accumulated once — versus the O(n log n) of reset() + n
  /// add()s; the schedulers' pair-sampler layer builds Θ(n^2)-slot trees
  /// per run and leans on the difference.
  void assign(std::vector<u64> weights);

  u64 size() const { return n_; }

  /// Sum of all weights.
  u64 total() const { return total_; }

  /// Current weight at index i.
  u64 get(u64 i) const {
    PP_DCHECK(i < n_);
    return leaf_[i];
  }

  /// Adds (possibly negative) `delta` to index i.  The caller guarantees the
  /// resulting weight is non-negative; this is checked.
  void add(u64 i, i64 delta);

  /// Sets index i to `w`.
  void set(u64 i, u64 w);

  /// Prefix sum of weights with index < i (i may equal size()).
  u64 prefix(u64 i) const;

  /// Given `target` in [0, total()), returns the unique index i such that
  /// prefix(i) <= target < prefix(i+1); i.e. samples i with probability
  /// weight(i)/total() when `target` is uniform.  O(log n) via binary
  /// lifting over the implicit tree.
  u64 find(u64 target) const;

 private:
  std::vector<u64> tree_;  // 1-based internal array
  std::vector<u64> leaf_;  // mirror of per-index weights for O(1) get()
  u64 n_ = 0;
  u64 total_ = 0;
  u64 log2n_ = 0;  // highest power of two <= n_, for find()
};

}  // namespace pp
