// Exact Markov-chain analysis of small populations.
//
// A population protocol under the uniform random scheduler is a Markov
// chain on configurations (count vectors).  For small n the chain is tiny
// — configurations of n agents over S states number C(n+S-1, n) — so the
// expected stabilisation time can be computed *exactly* and used as ground
// truth for the Monte-Carlo engines:
//
//   E[c] = 0                                   if c is silent,
//   E[c] = D/W(c) + sum_j (w_j / W(c)) E[c_j]  otherwise,
//
// where D = n(n-1), W(c) is the configuration's productive weight, and w_j
// the weight of the productive transition to configuration c_j (null
// interactions are folded into the D/W(c) holding time).  The system is
// solved by Gauss–Seidel iteration over the reachable set.
//
// Absorption is *not* assumed.  Silence (W(c) = 0) is absorbing, but it is
// not necessarily a valid ranking (a stranded pile-up can be inert without
// ranking anyone — the single-line model's all-in-X start), and it is not
// necessarily reachable at all (the modified no-reset tree protocol cycles
// forever).  The analysis therefore first solves the hitting-probability
// systems h = P h (minimal solutions, monotone Gauss–Seidel from 0) for
// (a) absorption anywhere and (b) absorption in a non-ranking silent
// configuration, reports both as absorption_probability / the stranded
// mass, and only solves the expectation recursion — which diverges
// otherwise — when absorption is almost sure; a divergent start reports
// diverges = true with an infinite expected time instead of spinning until
// the iteration-budget assert.
//
// Everything here runs on the protocol's formal transition function δ
// only — fully independent of the optimized count/Fenwick machinery, like
// the agent-level simulator.
#pragma once

#include <vector>

#include "core/configuration.hpp"
#include "core/protocol.hpp"

namespace pp {

struct ExactAnalysis {
  /// Expected parallel absorption time from the requested start (expected
  /// interactions / n until some silent configuration); +infinity when
  /// diverges is set.
  double expected_parallel_time = 0;
  /// Number of configurations reachable from the start (silent ones
  /// included).
  u64 reachable_configurations = 0;
  /// Number of reachable silent configurations.  For a correct ranking
  /// protocol started with n agents this is exactly 1 (the ranking).
  u64 silent_configurations = 0;
  /// Reachable silent configurations that are NOT valid rankings —
  /// non-silent-in-spirit absorbing states where the chain strands.
  u64 stranded_configurations = 0;
  /// True if every reachable silent configuration is a valid ranking
  /// (i.e. stranded_configurations == 0).
  bool all_silent_are_rankings = true;
  /// Probability of ever reaching a silent configuration from the start.
  /// 1 for a correct self-stabilising protocol; < 1 means the expectation
  /// recursion has no finite solution (diverges below).
  double absorption_probability = 1;
  /// Probability of absorbing in a silent configuration that is not a
  /// valid ranking — the stranded mass of the start.
  double stranded_probability = 0;
  /// Set when absorption_probability < 1: the chain can avoid silence
  /// forever and expected_parallel_time is +infinity.
  bool diverges = false;
  /// Total Gauss-Seidel sweeps across the hitting-probability and
  /// expectation solves.
  u64 iterations = 0;
};

struct ExactOptions {
  /// Abort (via PP_ASSERT) if the reachable set exceeds this size.
  u64 max_configurations = 2'000'000;
  /// Convergence threshold on the max absolute change per sweep,
  /// in units of interactions.
  double epsilon = 1e-9;
  u64 max_iterations = 1'000'000;
};

/// Enumerates the configurations reachable from `start` under δ and solves
/// for the expected absorption (stabilisation) time.
ExactAnalysis analyze_exact(const Protocol& p, const Configuration& start,
                            const ExactOptions& opt = {});

}  // namespace pp
