// Exact Markov-chain analysis of small populations.
//
// A population protocol under the uniform random scheduler is a Markov
// chain on configurations (count vectors).  For small n the chain is tiny
// — configurations of n agents over S states number C(n+S-1, n) — so the
// expected stabilisation time can be computed *exactly* and used as ground
// truth for the Monte-Carlo engines:
//
//   E[c] = 0                                   if c is silent,
//   E[c] = D/W(c) + sum_j (w_j / W(c)) E[c_j]  otherwise,
//
// where D = n(n-1), W(c) is the configuration's productive weight, and w_j
// the weight of the productive transition to configuration c_j (null
// interactions are folded into the D/W(c) holding time).  The system is
// solved by Gauss–Seidel iteration over the reachable set, which converges
// because silence is absorbing and reachable from everywhere (the
// protocols are stable).
//
// Everything here runs on the protocol's formal transition function δ
// only — fully independent of the optimized count/Fenwick machinery, like
// the agent-level simulator.
#pragma once

#include <vector>

#include "core/configuration.hpp"
#include "core/protocol.hpp"

namespace pp {

struct ExactAnalysis {
  /// Expected parallel stabilisation time from the requested start
  /// (expected interactions / n).
  double expected_parallel_time = 0;
  /// Number of configurations reachable from the start (silent ones
  /// included).
  u64 reachable_configurations = 0;
  /// Number of reachable silent configurations.  For a correct ranking
  /// protocol started with n agents this is exactly 1 (the ranking).
  u64 silent_configurations = 0;
  /// True if every reachable silent configuration is a valid ranking.
  bool all_silent_are_rankings = true;
  /// Gauss-Seidel sweeps needed to converge.
  u64 iterations = 0;
};

struct ExactOptions {
  /// Abort (via PP_ASSERT) if the reachable set exceeds this size.
  u64 max_configurations = 2'000'000;
  /// Convergence threshold on the max absolute change per sweep,
  /// in units of interactions.
  double epsilon = 1e-9;
  u64 max_iterations = 1'000'000;
};

/// Enumerates the configurations reachable from `start` under δ and solves
/// for the expected absorption (stabilisation) time.
ExactAnalysis analyze_exact(const Protocol& p, const Configuration& start,
                            const ExactOptions& opt = {});

}  // namespace pp
