// Least-squares fits used to compare measured scaling curves against the
// paper's asymptotic exponents (e.g. AG parallel time ~ n^2 should fit a
// log-log slope of ~2.0).
#pragma once

#include <span>
#include <string>

#include "common/types.hpp"

namespace pp {

struct LinearFit {
  double slope = 0;
  double intercept = 0;
  double r2 = 0;  ///< coefficient of determination
};

/// Ordinary least squares y = slope * x + intercept.  Requires >= 2 points.
LinearFit fit_linear(std::span<const double> x, std::span<const double> y);

struct PowerFit {
  double exponent = 0;   ///< b in y ~ a * x^b
  double prefactor = 0;  ///< a
  double r2 = 0;         ///< of the underlying log-log linear fit
  std::string to_string() const;
};

/// Fits y ~ a * x^b by linear regression in log-log space.  All inputs must
/// be strictly positive.
PowerFit fit_power(std::span<const double> x, std::span<const double> y);

}  // namespace pp
