#include "analysis/timeline.hpp"

namespace pp {

std::function<bool(const Protocol&, u64)> Timeline::observer() {
  return [this](const Protocol& p, u64 interactions) {
    const double t = static_cast<double>(interactions) /
                     static_cast<double>(p.num_agents());
    if (t >= next_) {
      snapshot(p, t);
      while (next_ <= t) next_ *= ratio_;
    }
    return true;
  };
}

void Timeline::snapshot(const Protocol& p, double time) {
  TimelineSample s;
  s.time = time;
  const auto& counts = p.counts();
  for (u64 st = 0; st < p.num_states(); ++st) {
    const u64 c = counts[st];
    if (c > s.max_load) s.max_load = c;
    if (st < p.num_ranks()) {
      if (c > 0) {
        ++s.ranks_held;
      } else {
        ++s.k_distance;
      }
    } else {
      s.extra_agents += c;
    }
  }
  s.weight = p.productive_weight();
  samples_.push_back(s);
}

void Timeline::finish(const Protocol& p, const RunResult& r) {
  snapshot(p, r.parallel_time);
}

Table Timeline::to_table(const std::string& title) const {
  Table t(title);
  t.headers({"time", "ranks held", "k-distance", "max load", "extra agents",
             "weight"});
  for (const auto& s : samples_) {
    t.row()
        .cell(s.time, 5)
        .cell(s.ranks_held)
        .cell(s.k_distance)
        .cell(s.max_load)
        .cell(s.extra_agents)
        .cell(s.weight);
  }
  return t;
}

}  // namespace pp
