// Convergence timelines: how a population organises itself over time.
//
// A Timeline is an engine observer that snapshots cheap configuration
// metrics at geometrically spaced parallel times (so a Θ(n^2) run yields
// ~2 log n rows, not n^2):
//
//   time            parallel time of the snapshot
//   ranks_held      number of rank states occupied by >= 1 agent
//   max_load        largest number of agents in any single state
//   extra_agents    agents currently in extra states
//   k_distance      unoccupied rank states (the paper's k)
//   weight          productive ordered pairs (0 = silent)
//
// Used by the quickstart example and the CLI; also handy for eyeballing the
// tree protocol's reset waves (ranks_held collapses to 0, then regrows).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "analysis/table.hpp"
#include "core/engine.hpp"
#include "core/protocol.hpp"

namespace pp {

struct TimelineSample {
  double time = 0;
  u64 ranks_held = 0;
  u64 max_load = 0;
  u64 extra_agents = 0;
  u64 k_distance = 0;
  u64 weight = 0;
};

class Timeline {
 public:
  /// Snapshots at parallel times ~ first, first*ratio, first*ratio^2, ...
  explicit Timeline(double first = 1.0, double ratio = 2.0)
      : next_(first), ratio_(ratio) {}

  /// Engine observer; wire as `options.on_change = timeline.observer()`.
  /// A final snapshot is appended by finish().
  std::function<bool(const Protocol&, u64)> observer();

  /// Appends the final configuration (call after the run).
  void finish(const Protocol& p, const RunResult& r);

  const std::vector<TimelineSample>& samples() const { return samples_; }

  /// Renders as a Table titled `title`.
  Table to_table(const std::string& title) const;

 private:
  void snapshot(const Protocol& p, double time);

  std::vector<TimelineSample> samples_;
  double next_;
  double ratio_;
};

}  // namespace pp
