#include "analysis/experiment.hpp"

#include "common/assert.hpp"
#include "core/initial.hpp"

namespace pp {

Measurement measure(const ProtocolFactory& make_protocol,
                    const ConfigGenerator& make_config,
                    const MeasureOptions& opt) {
  PP_ASSERT(opt.trials >= 1);
  Measurement out;
  out.parallel_times.reserve(opt.trials);
  for (u64 t = 0; t < opt.trials; ++t) {
    Rng rng(derive_seed(opt.root_seed, opt.label, t));
    ProtocolPtr p = make_protocol();
    p->reset(make_config(*p, rng));
    RunOptions ro;
    ro.max_interactions = opt.max_interactions;
    const RunResult r = run_accelerated(*p, rng, ro);
    out.parallel_times.push_back(r.parallel_time);
    if (!r.silent) {
      ++out.timeouts;
    } else if (!r.valid) {
      ++out.invalid;
    }
  }
  return out;
}

Configuration UniformRandomGen::operator()(const Protocol& p,
                                           Rng& rng) const {
  return initial::uniform_random(p, rng);
}

ConfigGenerator gen_uniform_random() { return UniformRandomGen{}; }

ConfigGenerator gen_uniform_random_ranks() {
  return [](const Protocol& p, Rng& rng) {
    return initial::uniform_random_ranks(p, rng);
  };
}

ConfigGenerator gen_k_distant(u64 k) {
  return [k](const Protocol& p, Rng& rng) {
    return initial::k_distant(p, k, rng);
  };
}

ConfigGenerator gen_all_in_state(StateId s) {
  return [s](const Protocol& p, Rng&) { return initial::all_in_state(p, s); };
}

ConfigGenerator gen_all_in_last_state() {
  return [](const Protocol& p, Rng&) {
    return initial::all_in_state(p, static_cast<StateId>(p.num_states() - 1));
  };
}

}  // namespace pp
