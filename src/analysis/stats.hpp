// Summary statistics for experiment samples.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace pp {

struct Summary {
  u64 count = 0;
  double mean = 0;
  double stddev = 0;  ///< sample standard deviation (n-1 denominator)
  double min = 0;
  double q25 = 0;
  double median = 0;
  double q75 = 0;
  double q95 = 0;
  double max = 0;

  /// Half-width of the normal-approximation 95% confidence interval of the
  /// mean (1.96 * stddev / sqrt(count)).
  double ci95_halfwidth() const;

  std::string to_string() const;
};

/// Computes a Summary; `samples` may be unsorted and is left untouched.
/// Degenerate inputs stay finite: an empty span yields the all-zero
/// Summary and a single sample yields stddev = 0 (n-1 denominator
/// clamped), so downstream sinks never see NaN.
Summary summarize(std::span<const double> samples);

/// Online mean/variance accumulator (Welford's algorithm), O(1) memory.
///
/// Pushing the same values in the same order produces bit-identical state,
/// which is what the parallel runner relies on for thread-count-independent
/// aggregates: per-trial records are folded in trial-index order after the
/// fan-out, never in completion order.  merge() combines two accumulators
/// with the parallel-variance formula (Chan et al.); merging is exact in
/// count/min/max and correct-to-rounding in mean/variance, so deterministic
/// pipelines should prefer a fixed push order over ad-hoc merge trees.
class RunningStat {
 public:
  void push(double x);
  void merge(const RunningStat& other);

  u64 count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double sum() const { return mean() * static_cast<double>(count_); }

 private:
  u64 count_ = 0;
  double mean_ = 0;
  double m2_ = 0;  ///< sum of squared deviations from the running mean
  double min_ = 0;
  double max_ = 0;
};

/// Linear-interpolation quantile of a *sorted* sample, q in [0, 1].
double quantile_sorted(std::span<const double> sorted, double q);

double mean_of(std::span<const double> samples);
double stddev_of(std::span<const double> samples);

}  // namespace pp
