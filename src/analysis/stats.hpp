// Summary statistics for experiment samples.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace pp {

struct Summary {
  u64 count = 0;
  double mean = 0;
  double stddev = 0;  ///< sample standard deviation (n-1 denominator)
  double min = 0;
  double q25 = 0;
  double median = 0;
  double q75 = 0;
  double q95 = 0;
  double max = 0;

  /// Half-width of the normal-approximation 95% confidence interval of the
  /// mean (1.96 * stddev / sqrt(count)).
  double ci95_halfwidth() const;

  std::string to_string() const;
};

/// Computes a Summary; `samples` may be unsorted and is left untouched.
Summary summarize(std::span<const double> samples);

/// Linear-interpolation quantile of a *sorted* sample, q in [0, 1].
double quantile_sorted(std::span<const double> sorted, double q);

double mean_of(std::span<const double> samples);
double stddev_of(std::span<const double> samples);

}  // namespace pp
