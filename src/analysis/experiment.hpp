// The experiment sweep runner: repeated stabilisation measurements with
// disciplined seeding.
//
// A measurement point is (protocol factory, initial-configuration
// generator, number of trials).  Each trial t derives its own seed from
// (root seed, label, t), builds a fresh protocol instance, generates a
// starting configuration, and runs the accelerated engine to silence (or
// budget).  Results are parallel times (interactions / n) plus bookkeeping
// about timeouts/invalid outcomes (which, for a correct implementation,
// never happen — the harness still reports them rather than trusting).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "analysis/stats.hpp"
#include "core/engine.hpp"
#include "core/protocol.hpp"
#include "rng/seed_sequence.hpp"

namespace pp {

using ProtocolFactory = std::function<ProtocolPtr()>;
using ConfigGenerator = std::function<Configuration(const Protocol&, Rng&)>;

struct MeasureOptions {
  u64 trials = 10;
  u64 root_seed = kDefaultRootSeed;
  std::string label;  ///< seed-derivation namespace; set it per experiment
  u64 max_interactions = ~static_cast<u64>(0);
};

struct Measurement {
  std::vector<double> parallel_times;  ///< one per completed trial
  u64 timeouts = 0;  ///< trials that exhausted max_interactions
  u64 invalid = 0;   ///< trials that went silent in a non-ranking (never
                     ///< expected; reported, not assumed away)
  Summary summary() const { return summarize(parallel_times); }
};

/// Runs `opt.trials` stabilisation trials; timed-out trials contribute
/// their (censored) budget time to parallel_times and are counted in
/// `timeouts`.
Measurement measure(const ProtocolFactory& make_protocol,
                    const ConfigGenerator& make_config,
                    const MeasureOptions& opt);

/// The generator behind gen_uniform_random(), as a *named* functor: the
/// provenance layer (obs/provenance.hpp) recognises it through
/// std::function::target to mark the spec replayable — behaviourally it
/// is exactly the runner's default when TrialSpec::init is unset.
struct UniformRandomGen {
  Configuration operator()(const Protocol& p, Rng& rng) const;
};

/// Convenience generators matching core/initial.hpp.
ConfigGenerator gen_uniform_random();
ConfigGenerator gen_uniform_random_ranks();
ConfigGenerator gen_k_distant(u64 k);
ConfigGenerator gen_all_in_state(StateId s);
ConfigGenerator gen_all_in_last_state();

}  // namespace pp
