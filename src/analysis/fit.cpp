#include "analysis/fit.hpp"

#include <cmath>
#include <cstdio>
#include <vector>

#include "common/assert.hpp"

namespace pp {

LinearFit fit_linear(std::span<const double> x, std::span<const double> y) {
  PP_ASSERT(x.size() == y.size());
  PP_ASSERT(x.size() >= 2);
  const double n = static_cast<double>(x.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (u64 i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
  }
  const double denom = n * sxx - sx * sx;
  PP_ASSERT_MSG(denom != 0.0, "degenerate x values in linear fit");
  LinearFit f;
  f.slope = (n * sxy - sx * sy) / denom;
  f.intercept = (sy - f.slope * sx) / n;
  double ss_res = 0, ss_tot = 0;
  const double ybar = sy / n;
  for (u64 i = 0; i < x.size(); ++i) {
    const double pred = f.slope * x[i] + f.intercept;
    ss_res += (y[i] - pred) * (y[i] - pred);
    ss_tot += (y[i] - ybar) * (y[i] - ybar);
  }
  f.r2 = ss_tot == 0.0 ? 1.0 : 1.0 - ss_res / ss_tot;
  return f;
}

PowerFit fit_power(std::span<const double> x, std::span<const double> y) {
  PP_ASSERT(x.size() == y.size());
  std::vector<double> lx(x.size()), ly(y.size());
  for (u64 i = 0; i < x.size(); ++i) {
    PP_ASSERT_MSG(x[i] > 0 && y[i] > 0, "power fit needs positive data");
    lx[i] = std::log(x[i]);
    ly[i] = std::log(y[i]);
  }
  const LinearFit lin = fit_linear(lx, ly);
  PowerFit f;
  f.exponent = lin.slope;
  f.prefactor = std::exp(lin.intercept);
  f.r2 = lin.r2;
  return f;
}

std::string PowerFit::to_string() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "y ~ %.3g * x^%.3f (R^2=%.4f)", prefactor,
                exponent, r2);
  return buf;
}

}  // namespace pp
