// ASCII tables + CSV export for the benchmark harness — every bench binary
// prints the paper-style rows through this module so EXPERIMENTS.md can
// quote them verbatim.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace pp {

class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  Table& headers(std::vector<std::string> h);

  /// Row builder: push cells left to right.
  class RowBuilder {
   public:
    RowBuilder& cell(std::string v);
    RowBuilder& cell(double v, int precision = 4);
    RowBuilder& cell(u64 v);
    RowBuilder& cell(i64 v);

   private:
    friend class Table;
    explicit RowBuilder(std::vector<std::string>& row) : row_(row) {}
    std::vector<std::string>& row_;
  };

  RowBuilder row();

  /// Aligned, boxed rendering.
  std::string to_string() const;

  /// RFC-4180-ish CSV (no quoting needed for our numeric content).
  std::string to_csv() const;

  /// Prints to stdout (to_string) and, if `csv_dir` is non-empty, writes
  /// `<csv_dir>/<slug(title)>.csv`.
  void print(const std::string& csv_dir = "") const;

 private:
  std::string title_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Lower-cases, replaces non-alphanumerics with '-'.
std::string slugify(const std::string& s);

}  // namespace pp
