#include "analysis/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/assert.hpp"

namespace pp {

double quantile_sorted(std::span<const double> sorted, double q) {
  PP_ASSERT(!sorted.empty());
  PP_ASSERT(q >= 0.0 && q <= 1.0);
  if (sorted.size() == 1) return sorted[0];
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const u64 lo = static_cast<u64>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

double mean_of(std::span<const double> samples) {
  PP_ASSERT(!samples.empty());
  double sum = 0;
  for (const double x : samples) sum += x;
  return sum / static_cast<double>(samples.size());
}

double stddev_of(std::span<const double> samples) {
  if (samples.size() < 2) return 0.0;
  const double mu = mean_of(samples);
  double ss = 0;
  for (const double x : samples) ss += (x - mu) * (x - mu);
  return std::sqrt(ss / static_cast<double>(samples.size() - 1));
}

Summary summarize(std::span<const double> samples) {
  // Zero samples is a legal (if degenerate) input — e.g. an aggregate over
  // a fully-filtered trial set; every field stays at its zero default so
  // nothing non-finite can reach the sinks.
  if (samples.empty()) return Summary{};
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  Summary s;
  s.count = sorted.size();
  s.mean = mean_of(sorted);
  s.stddev = stddev_of(sorted);
  s.min = sorted.front();
  s.q25 = quantile_sorted(sorted, 0.25);
  s.median = quantile_sorted(sorted, 0.50);
  s.q75 = quantile_sorted(sorted, 0.75);
  s.q95 = quantile_sorted(sorted, 0.95);
  s.max = sorted.back();
  return s;
}

void RunningStat::push(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStat::merge(const RunningStat& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  mean_ += delta * nb / (na + nb);
  m2_ += other.m2_ + delta * delta * na * nb / (na + nb);
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStat::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double Summary::ci95_halfwidth() const {
  if (count < 2) return 0.0;
  return 1.96 * stddev / std::sqrt(static_cast<double>(count));
}

std::string Summary::to_string() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "n=%llu mean=%.4g +/-%.2g median=%.4g [%.4g, %.4g]",
                static_cast<unsigned long long>(count), mean,
                ci95_halfwidth(), median, min, max);
  return buf;
}

}  // namespace pp
