#include "analysis/exact.hpp"

#include <cmath>
#include <map>
#include <queue>

#include "common/assert.hpp"

namespace pp {
namespace {

// Sparse row of the embedded (productive-only) jump chain.
struct Row {
  // (target configuration index, weight w_j); weights sum to W.
  std::vector<std::pair<u64, u64>> targets;
  u64 weight = 0;  // W(c); 0 <=> silent
};

}  // namespace

ExactAnalysis analyze_exact(const Protocol& p, const Configuration& start,
                            const ExactOptions& opt) {
  PP_ASSERT(start.num_states() == p.num_states());
  PP_ASSERT(start.agents() == p.num_agents());
  const u64 n = p.num_agents();
  const u64 states = p.num_states();
  const double pairs = static_cast<double>(n) * static_cast<double>(n - 1);

  // --- 1. enumerate the reachable set (BFS over configurations) --------
  std::map<std::vector<u64>, u64> index_of;
  std::vector<std::vector<u64>> configs;
  std::vector<Row> rows;
  std::queue<u64> frontier;

  auto intern = [&](const std::vector<u64>& c) -> u64 {
    const auto [it, inserted] = index_of.emplace(c, configs.size());
    if (inserted) {
      PP_ASSERT_MSG(configs.size() < opt.max_configurations,
                    "exact analysis: reachable set too large");
      configs.push_back(c);
      rows.emplace_back();
      frontier.push(it->second);
    }
    return it->second;
  };

  intern(start.counts);
  while (!frontier.empty()) {
    const u64 idx = frontier.front();
    frontier.pop();
    // Copy: `configs` may reallocate while we intern successors.
    const std::vector<u64> c = configs[idx];
    // Aggregate successor weights before storing (several ordered pairs
    // can lead to the same configuration).
    std::map<std::vector<u64>, u64> successors;
    u64 total_weight = 0;
    for (StateId s1 = 0; s1 < states; ++s1) {
      if (c[s1] == 0) continue;
      for (StateId s2 = 0; s2 < states; ++s2) {
        const u64 c2 = c[s2] - (s1 == s2 ? 1 : 0);
        if (c[s2] == 0 || c2 == 0) continue;
        const auto [o1, o2] = p.transition(s1, s2);
        if (o1 == s1 && o2 == s2) continue;
        const u64 w = c[s1] * c2;
        std::vector<u64> next = c;
        --next[s1];
        --next[s2];
        ++next[o1];
        ++next[o2];
        successors[std::move(next)] += w;
        total_weight += w;
      }
    }
    // Intern successors BEFORE touching rows[idx]: intern() appends to
    // `rows` and may reallocate it.
    std::vector<std::pair<u64, u64>> targets;
    targets.reserve(successors.size());
    for (const auto& [next, w] : successors) {
      targets.emplace_back(intern(next), w);
    }
    rows[idx].weight = total_weight;
    rows[idx].targets = std::move(targets);
  }

  ExactAnalysis out;
  out.reachable_configurations = configs.size();
  for (u64 i = 0; i < configs.size(); ++i) {
    if (rows[i].weight == 0) {
      ++out.silent_configurations;
      if (!is_valid_ranking(Configuration(configs[i]), p.num_ranks())) {
        out.all_silent_are_rankings = false;
      }
    }
  }

  // --- 2. Gauss-Seidel on E[c] = D/W + sum (w_j/W) E[j] ------------------
  std::vector<double> e(configs.size(), 0.0);
  double delta = opt.epsilon + 1;
  while (delta > opt.epsilon && out.iterations < opt.max_iterations) {
    delta = 0;
    ++out.iterations;
    // Sweep in reverse insertion order: BFS tends to discover
    // later-in-trajectory configurations later, so reverse sweeps
    // propagate absorption values faster.
    for (u64 i = configs.size(); i-- > 0;) {
      const Row& row = rows[i];
      if (row.weight == 0) continue;
      double v = pairs;  // expected interactions to leave c, times W... :
      // E_interactions[c] = D/W + sum (w_j/W) E[j]  ==  (D + sum w_j E[j])/W
      for (const auto& [j, w] : row.targets) {
        v += static_cast<double>(w) * e[j];
      }
      v /= static_cast<double>(row.weight);
      const double d = std::fabs(v - e[i]);
      if (d > delta) delta = d;
      e[i] = v;
    }
  }
  PP_ASSERT_MSG(out.iterations < opt.max_iterations,
                "exact analysis failed to converge");

  out.expected_parallel_time = e[0] / static_cast<double>(n);
  return out;
}

}  // namespace pp
