#include "analysis/exact.hpp"

#include <cmath>
#include <limits>
#include <map>
#include <queue>

#include "common/assert.hpp"

namespace pp {
namespace {

// Sparse row of the embedded (productive-only) jump chain.
struct Row {
  // (target configuration index, weight w_j); weights sum to W.
  std::vector<std::pair<u64, u64>> targets;
  u64 weight = 0;  // W(c); 0 <=> silent
};

}  // namespace

ExactAnalysis analyze_exact(const Protocol& p, const Configuration& start,
                            const ExactOptions& opt) {
  PP_ASSERT(start.num_states() == p.num_states());
  PP_ASSERT(start.agents() == p.num_agents());
  const u64 n = p.num_agents();
  const u64 states = p.num_states();
  const double pairs = static_cast<double>(n) * static_cast<double>(n - 1);

  // --- 1. enumerate the reachable set (BFS over configurations) --------
  std::map<std::vector<u64>, u64> index_of;
  std::vector<std::vector<u64>> configs;
  std::vector<Row> rows;
  std::queue<u64> frontier;

  auto intern = [&](const std::vector<u64>& c) -> u64 {
    const auto [it, inserted] = index_of.emplace(c, configs.size());
    if (inserted) {
      PP_ASSERT_MSG(configs.size() < opt.max_configurations,
                    "exact analysis: reachable set too large");
      configs.push_back(c);
      rows.emplace_back();
      frontier.push(it->second);
    }
    return it->second;
  };

  intern(start.counts);
  while (!frontier.empty()) {
    const u64 idx = frontier.front();
    frontier.pop();
    // Copy: `configs` may reallocate while we intern successors.
    const std::vector<u64> c = configs[idx];
    // Aggregate successor weights before storing (several ordered pairs
    // can lead to the same configuration).
    std::map<std::vector<u64>, u64> successors;
    u64 total_weight = 0;
    for (StateId s1 = 0; s1 < states; ++s1) {
      if (c[s1] == 0) continue;
      for (StateId s2 = 0; s2 < states; ++s2) {
        const u64 c2 = c[s2] - (s1 == s2 ? 1 : 0);
        if (c[s2] == 0 || c2 == 0) continue;
        const auto [o1, o2] = p.transition(s1, s2);
        if (o1 == s1 && o2 == s2) continue;
        const u64 w = c[s1] * c2;
        std::vector<u64> next = c;
        --next[s1];
        --next[s2];
        ++next[o1];
        ++next[o2];
        successors[std::move(next)] += w;
        total_weight += w;
      }
    }
    // Intern successors BEFORE touching rows[idx]: intern() appends to
    // `rows` and may reallocate it.
    std::vector<std::pair<u64, u64>> targets;
    targets.reserve(successors.size());
    for (const auto& [next, w] : successors) {
      targets.emplace_back(intern(next), w);
    }
    rows[idx].weight = total_weight;
    rows[idx].targets = std::move(targets);
  }

  ExactAnalysis out;
  out.reachable_configurations = configs.size();
  // is_absorbing[i] => 1.0/2.0 tag: 1 = silent ranking, 2 = silent but NOT
  // a ranking (stranded).  0 = transient.
  std::vector<u8> silent_tag(configs.size(), 0);
  for (u64 i = 0; i < configs.size(); ++i) {
    if (rows[i].weight == 0) {
      ++out.silent_configurations;
      if (is_valid_ranking(Configuration(configs[i]), p.num_ranks())) {
        silent_tag[i] = 1;
      } else {
        silent_tag[i] = 2;
        ++out.stranded_configurations;
        out.all_silent_are_rankings = false;
      }
    }
  }

  // --- 2. hitting probabilities: h = P h with h fixed on the absorbing
  // set.  Gauss-Seidel from 0 converges monotonically to the *minimal*
  // solution, which is exactly the hitting probability — no assumption
  // that absorption is almost sure.  Same reverse sweep order as the
  // expectation solve below.
  auto hitting = [&](auto&& boundary) {
    std::vector<double> h(configs.size(), 0.0);
    for (u64 i = 0; i < configs.size(); ++i) {
      if (rows[i].weight == 0 && boundary(i)) h[i] = 1.0;
    }
    double change = opt.epsilon + 1;
    while (change > opt.epsilon && out.iterations < opt.max_iterations) {
      change = 0;
      ++out.iterations;
      for (u64 i = configs.size(); i-- > 0;) {
        const Row& row = rows[i];
        if (row.weight == 0) continue;
        double v = 0;
        for (const auto& [j, w] : row.targets) {
          v += static_cast<double>(w) * h[j];
        }
        v /= static_cast<double>(row.weight);
        const double d = std::fabs(v - h[i]);
        if (d > change) change = d;
        h[i] = v;
      }
    }
    PP_ASSERT_MSG(out.iterations < opt.max_iterations,
                  "exact analysis: hitting probabilities failed to converge");
    return h;
  };
  out.absorption_probability =
      hitting([&](u64 i) { return silent_tag[i] != 0; })[0];
  out.stranded_probability =
      out.stranded_configurations == 0
          ? 0.0
          : hitting([&](u64 i) { return silent_tag[i] == 2; })[0];

  // --- 3. Gauss-Seidel on E[c] = D/W + sum (w_j/W) E[j] ------------------
  // Only solvable when absorption is almost sure; otherwise the recursion
  // has no finite solution and the expectation is +infinity (the epsilon
  // slack absorbs the hitting solve's own truncation error).
  if (out.absorption_probability < 1.0 - 1e-6) {
    out.diverges = true;
    out.expected_parallel_time = std::numeric_limits<double>::infinity();
    return out;
  }
  std::vector<double> e(configs.size(), 0.0);
  double delta = opt.epsilon + 1;
  while (delta > opt.epsilon && out.iterations < opt.max_iterations) {
    delta = 0;
    ++out.iterations;
    // Sweep in reverse insertion order: BFS tends to discover
    // later-in-trajectory configurations later, so reverse sweeps
    // propagate absorption values faster.
    for (u64 i = configs.size(); i-- > 0;) {
      const Row& row = rows[i];
      if (row.weight == 0) continue;
      double v = pairs;  // expected interactions to leave c, times W... :
      // E_interactions[c] = D/W + sum (w_j/W) E[j]  ==  (D + sum w_j E[j])/W
      for (const auto& [j, w] : row.targets) {
        v += static_cast<double>(w) * e[j];
      }
      v /= static_cast<double>(row.weight);
      const double d = std::fabs(v - e[i]);
      if (d > delta) delta = d;
      e[i] = v;
    }
  }
  PP_ASSERT_MSG(out.iterations < opt.max_iterations,
                "exact analysis failed to converge");

  out.expected_parallel_time = e[0] / static_cast<double>(n);
  return out;
}

}  // namespace pp
