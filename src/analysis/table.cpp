#include "analysis/table.hpp"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/assert.hpp"

namespace pp {

Table& Table::headers(std::vector<std::string> h) {
  headers_ = std::move(h);
  return *this;
}

Table::RowBuilder& Table::RowBuilder::cell(std::string v) {
  row_.push_back(std::move(v));
  return *this;
}

Table::RowBuilder& Table::RowBuilder::cell(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
  row_.emplace_back(buf);
  return *this;
}

Table::RowBuilder& Table::RowBuilder::cell(u64 v) {
  row_.push_back(std::to_string(v));
  return *this;
}

Table::RowBuilder& Table::RowBuilder::cell(i64 v) {
  row_.push_back(std::to_string(v));
  return *this;
}

Table::RowBuilder Table::row() {
  rows_.emplace_back();
  return RowBuilder(rows_.back());
}

std::string Table::to_string() const {
  std::vector<u64> width(headers_.size(), 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (u64 i = 0; i < row.size() && i < width.size(); ++i) {
      if (row[i].size() > width[i]) width[i] = row[i].size();
    }
  };
  widen(headers_);
  for (const auto& r : rows_) widen(r);

  std::ostringstream out;
  out << "== " << title_ << " ==\n";
  auto emit = [&](const std::vector<std::string>& row) {
    out << "|";
    for (u64 i = 0; i < width.size(); ++i) {
      const std::string& v = i < row.size() ? row[i] : std::string();
      out << ' ' << v << std::string(width[i] - v.size(), ' ') << " |";
    }
    out << '\n';
  };
  emit(headers_);
  out << "|";
  for (const u64 w : width) out << std::string(w + 2, '-') << "|";
  out << '\n';
  for (const auto& r : rows_) emit(r);
  return std::move(out).str();
}

std::string Table::to_csv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (u64 i = 0; i < row.size(); ++i) {
      if (i > 0) out << ',';
      out << row[i];
    }
    out << '\n';
  };
  emit(headers_);
  for (const auto& r : rows_) emit(r);
  return std::move(out).str();
}

void Table::print(const std::string& csv_dir) const {
  std::fputs(to_string().c_str(), stdout);
  std::fputc('\n', stdout);
  if (!csv_dir.empty()) {
    const std::string path = csv_dir + "/" + slugify(title_) + ".csv";
    std::ofstream f(path);
    if (f) f << to_csv();
  }
}

std::string slugify(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  bool dash = false;
  for (const char c : s) {
    if (std::isalnum(static_cast<unsigned char>(c)) != 0) {
      out.push_back(
          static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
      dash = false;
    } else if (!dash && !out.empty()) {
      out.push_back('-');
      dash = true;
    }
  }
  while (!out.empty() && out.back() == '-') out.pop_back();
  return out;
}

}  // namespace pp
