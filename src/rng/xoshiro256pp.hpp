// xoshiro256++ 1.0 (Blackman & Vigna, 2019) — the library's main PRNG.
//
// Chosen over std::mt19937_64 for speed (the simulator's inner loop is
// dominated by random pair selection) and small state.  Statistical quality
// is more than sufficient for Monte-Carlo simulation of population
// protocols; the paper's whp bounds are insensitive to generator choice.
#pragma once

#include "common/types.hpp"
#include "rng/splitmix64.hpp"

namespace pp {

class Xoshiro256pp {
 public:
  using result_type = u64;

  /// Seeds the four state words via SplitMix64, per the authors'
  /// recommendation; guarantees a non-zero state for every seed.
  explicit constexpr Xoshiro256pp(u64 seed = 0xdeadbeefcafef00dULL) {
    SplitMix64 sm(seed);
    for (auto& w : s_) w = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~static_cast<u64>(0); }

  constexpr u64 operator()() {
    const u64 result = rotl(s_[0] + s_[3], 23) + s_[0];
    const u64 t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Equivalent to 2^128 calls of operator(); used to split one generator
  /// into non-overlapping streams (one per experiment trial).
  constexpr void long_jump() {
    constexpr u64 kJump[] = {0x76e15d3efefdcbbfULL, 0xc5004e441c522fb3ULL,
                             0x77710069854ee241ULL, 0x39109bb02acbe635ULL};
    u64 s0 = 0, s1 = 0, s2 = 0, s3 = 0;
    for (u64 jump : kJump) {
      for (int b = 0; b < 64; ++b) {
        if (jump & (static_cast<u64>(1) << b)) {
          s0 ^= s_[0];
          s1 ^= s_[1];
          s2 ^= s_[2];
          s3 ^= s_[3];
        }
        (*this)();
      }
    }
    s_[0] = s0;
    s_[1] = s1;
    s_[2] = s2;
    s_[3] = s3;
  }

 private:
  static constexpr u64 rotl(u64 x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  u64 s_[4]{};
};

}  // namespace pp
