// SplitMix64 — tiny, fast 64-bit mixer (Steele, Lea, Flood 2014).
//
// Used for (a) seeding xoshiro256++ from a single 64-bit seed and
// (b) deriving independent per-trial sub-seeds in the experiment harness.
// Not used as the main simulation generator.
#pragma once

#include "common/types.hpp"

namespace pp {

class SplitMix64 {
 public:
  explicit constexpr SplitMix64(u64 seed) : state_(seed) {}

  /// Next 64 pseudo-random bits.
  constexpr u64 next() {
    u64 z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  u64 state_;
};

/// Stateless one-shot mix of a 64-bit value; handy for combining seeds.
constexpr u64 mix64(u64 x) { return SplitMix64(x).next(); }

}  // namespace pp
