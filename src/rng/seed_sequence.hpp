// Deterministic seed derivation for reproducible experiments.
//
// Every randomized component (initial-configuration generator, scheduler,
// fault injector, per-trial stream, ...) derives its seed as
//   derive(root, "component-name", index)
// so that (a) whole benchmark suites are reproducible from one root seed and
// (b) changing the trial count of one experiment does not shift the random
// streams of another.
#pragma once

#include <string_view>

#include "common/types.hpp"

namespace pp {

/// FNV-1a over the label, mixed with the root seed and index via SplitMix64.
u64 derive_seed(u64 root, std::string_view label, u64 index = 0);

/// The library-wide default root seed (benchmarks print it so runs can be
/// reproduced exactly).
inline constexpr u64 kDefaultRootSeed = 0x5eed5eed2025ULL;

}  // namespace pp
