#include "rng/seed_sequence.hpp"

#include "rng/splitmix64.hpp"

namespace pp {

u64 derive_seed(u64 root, std::string_view label, u64 index) {
  u64 h = 0xcbf29ce484222325ULL;  // FNV-1a 64-bit offset basis
  for (const char c : label) {
    h ^= static_cast<u8>(c);
    h *= 0x100000001b3ULL;
  }
  SplitMix64 sm(root ^ mix64(h));
  const u64 a = sm.next();
  return mix64(a ^ mix64(index * 0x9e3779b97f4a7c15ULL + 1));
}

}  // namespace pp
