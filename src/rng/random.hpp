// High-level random primitives on top of xoshiro256++.
//
// Everything the simulator and the experiment harness needs:
//   * unbiased bounded integers (Lemire's multiply-shift with rejection),
//   * uniform doubles in [0,1),
//   * geometric "how many null interactions before the next productive one"
//     sampling used by the accelerated engine,
//   * Fisher-Yates shuffling and distinct-pair sampling.
#pragma once

#include <utility>
#include <vector>

#include "common/types.hpp"
#include "rng/xoshiro256pp.hpp"

namespace pp {

class Rng {
 public:
  explicit Rng(u64 seed = 0x9d3ce3f1a7b42c55ULL) : gen_(seed) {}

  /// Raw 64 random bits.
  u64 bits() { return gen_(); }

  /// Uniform integer in [0, bound).  Requires bound >= 1.
  u64 below(u64 bound);

  /// Uniform integer in [lo, hi].  Requires lo <= hi.
  u64 range(u64 lo, u64 hi);

  /// Uniform double in [0, 1) with 53 bits of precision.
  double real01();

  /// Uniform double in (0, 1] — never returns 0; safe as a log() argument.
  double real01_open_left();

  /// Bernoulli trial with success probability p in [0, 1].
  bool bernoulli(double p);

  /// Number of consecutive *failures* before the first success of a
  /// Bernoulli(p) sequence (a Geometric(p) variate supported on {0,1,...}).
  ///
  /// This is the accelerated engine's core primitive: with productive-pair
  /// probability p per interaction, it jumps over the exact number of null
  /// interactions the uniform scheduler would have produced.  Uses the
  /// standard inversion floor(log(U)/log1p(-p)); for p = 1 returns 0 and
  /// for p = 0 saturates at kGeometricInfinity (caller must treat the
  /// configuration as silent before asking).
  u64 geometric_failures(double p);

  /// Number of consecutive failures before the first success, conditioned
  /// on a success occurring within the first `bound` trials — a
  /// Geometric(p) variate truncated to [0, bound).  Requires p in (0, 1]
  /// and bound >= 1.  Sampled by inversion of the truncated CDF, so it
  /// costs one uniform draw (no rejection loop even for tiny p * bound —
  /// the dynamic-graph scheduler leans on that to place the first edge
  /// flip of a step already known to contain one).
  u64 geometric_failures_truncated(double p, u64 bound);

  /// Number of successes among `m` independent Bernoulli(p) trials.
  /// Expected O(1 + m * min(p, 1-p)) time by jumping between successes
  /// with geometric_failures — exact, and fast precisely in the sparse
  /// regime (m * p small) where the edge-Markovian dynamics live.
  u64 binomial(u64 m, double p);

  /// Ordered pair of *distinct* indices in [0, n).  Requires n >= 2.
  /// Models the paper's random scheduler: (initiator, responder).
  std::pair<u64, u64> ordered_pair(u64 n);

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (u64 i = v.size(); i > 1; --i) {
      const u64 j = below(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// `k` distinct values uniformly sampled from [0, n), in random order.
  /// Requires k <= n.  O(k) expected time via hash-free Floyd sampling for
  /// small k and partial Fisher-Yates otherwise.
  std::vector<u64> sample_distinct(u64 n, u64 k);

  /// Split off an independent generator (2^128 apart on the xoshiro orbit).
  Rng split();

  static constexpr u64 kGeometricInfinity = ~static_cast<u64>(0);

 private:
  Xoshiro256pp gen_;
};

}  // namespace pp
