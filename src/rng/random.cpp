#include "rng/random.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace pp {

u64 Rng::below(u64 bound) {
  PP_DCHECK(bound >= 1);
  // Lemire's multiply-shift method with rejection for exact uniformity.
  u64 x = gen_();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  u64 lo = static_cast<u64>(m);
  if (lo < bound) {
    const u64 threshold = (~bound + 1) % bound;  // == 2^64 mod bound
    while (lo < threshold) {
      x = gen_();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<u64>(m);
    }
  }
  return static_cast<u64>(m >> 64);
}

u64 Rng::range(u64 lo, u64 hi) {
  PP_DCHECK(lo <= hi);
  return lo + below(hi - lo + 1);
}

double Rng::real01() {
  return static_cast<double>(gen_() >> 11) * 0x1.0p-53;
}

double Rng::real01_open_left() {
  // (x >> 11) + 1 is uniform on {1, ..., 2^53}; scaled into (0, 1].
  return static_cast<double>((gen_() >> 11) + 1) * 0x1.0p-53;
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return real01() < p;
}

u64 Rng::geometric_failures(double p) {
  if (p >= 1.0) return 0;
  if (p <= 0.0) return kGeometricInfinity;
  const double u = real01_open_left();
  // failures = floor(ln u / ln(1-p)).  log1p keeps precision for tiny p,
  // which is the common case near stabilisation (p ~ 1/n^2).
  const double f = std::floor(std::log(u) / std::log1p(-p));
  if (f >= 1.8e19) return kGeometricInfinity;
  return static_cast<u64>(f);
}

u64 Rng::geometric_failures_truncated(double p, u64 bound) {
  PP_ASSERT_MSG(p > 0.0 && bound >= 1,
                "truncated geometric needs p > 0 and a non-empty range");
  if (p >= 1.0 || bound == 1) return 0;
  // Inversion of P(X <= k | X < bound) = (1 - q^(k+1)) / (1 - q^bound):
  // draw u uniform, return floor(log(1 - u * (1 - q^bound)) / log q).
  const double log_q = std::log1p(-p);
  // 1 - q^bound, computed as -expm1(bound * log q) to keep precision when
  // q^bound is close to 1 (tiny p * bound).
  const double mass = -std::expm1(static_cast<double>(bound) * log_q);
  const double u = real01();
  const double f = std::floor(std::log1p(-u * mass) / log_q);
  const u64 k = f > 0.0 ? static_cast<u64>(f) : 0;
  return k < bound ? k : bound - 1;  // guard against floating-point spill
}

u64 Rng::binomial(u64 m, double p) {
  if (m == 0 || p <= 0.0) return 0;
  if (p >= 1.0) return m;
  if (p > 0.5) return m - binomial(m, 1.0 - p);
  u64 successes = 0;
  u64 remaining = m;
  while (true) {
    const u64 gap = geometric_failures(p);
    if (gap == kGeometricInfinity || gap >= remaining) return successes;
    remaining -= gap + 1;
    ++successes;
  }
}

std::pair<u64, u64> Rng::ordered_pair(u64 n) {
  PP_DCHECK(n >= 2);
  const u64 a = below(n);
  u64 b = below(n - 1);
  if (b >= a) ++b;
  return {a, b};
}

std::vector<u64> Rng::sample_distinct(u64 n, u64 k) {
  PP_ASSERT(k <= n);
  std::vector<u64> out;
  out.reserve(k);
  if (k == 0) return out;
  if (k * 4 <= n) {
    // Floyd's algorithm: expected O(k) with a sorted membership vector
    // (k is small here, so linear membership checks are fine).
    for (u64 j = n - k; j < n; ++j) {
      const u64 t = below(j + 1);
      if (std::find(out.begin(), out.end(), t) == out.end()) {
        out.push_back(t);
      } else {
        out.push_back(j);
      }
    }
  } else {
    std::vector<u64> all(n);
    for (u64 i = 0; i < n; ++i) all[i] = i;
    // Partial Fisher-Yates: the first k positions become the sample.
    for (u64 i = 0; i < k; ++i) {
      const u64 j = i + below(n - i);
      std::swap(all[i], all[j]);
    }
    out.assign(all.begin(), all.begin() + static_cast<i64>(k));
  }
  shuffle(out);
  return out;
}

Rng Rng::split() {
  Rng child = *this;
  child.gen_.long_jump();
  // Also perturb the parent so repeated split() calls yield distinct
  // children even without intervening draws.
  (void)gen_();
  return child;
}

}  // namespace pp
