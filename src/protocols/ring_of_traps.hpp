// The state-optimal ring-of-traps ranking protocol (paper §3).
//
// The n rank states are partitioned into ~√n traps whose gate states form a
// directed cycle (the (m, m+1)-ring-of-traps for n = m(m+1)).  Rules:
//
//   inner states:  (a,b) + (a,b) -> (a,b) + (a,b-1)          for b > 0
//   gate states:   (a,0) + (a,0) -> (a,m) + ((a+1) mod m, 0)
//
// Inner states entrap agents permanently (Fact 1: a filled gap never
// reopens); gates eject every other arriving agent to the next trap on the
// ring.  Theorem 1: from any k-distant configuration the protocol
// stabilises silently in O(min(k n^{3/2}, n^2 log^2 n)) parallel time whp —
// state-optimal (zero extra states) and o(n^2) whenever k = o(√n).
//
// The protocol object exposes the ring geometry and the Lemma 3 weight
// function K = k1 + 2 k2 for the invariant property tests.
#pragma once

#include <string>
#include <string_view>
#include <utility>

#include "core/protocol.hpp"
#include "structures/ring_layout.hpp"

namespace pp {

class RingOfTrapsProtocol final : public Protocol {
 public:
  explicit RingOfTrapsProtocol(u64 n);

  /// Ablation constructor: force the number of traps (the canonical layout
  /// uses ~√n traps of size ~√n; see bench_ablations).
  RingOfTrapsProtocol(u64 n, u64 traps);

  std::string_view name() const override { return "ring-of-traps"; }
  std::pair<StateId, StateId> transition(StateId initiator,
                                         StateId responder) const override;
  std::string describe_state(StateId s) const override;
  /// Both rule families (inner drains, gate ejections) are diagonal
  /// (s,s) -> (s',s'') on rank states, and the protocol is state-optimal
  /// (zero extra states) — the dynamics live on the count vector.
  bool is_count_determined() const override { return true; }

  const RingLayout& layout() const { return layout_; }

  /// Lemma 3 weight of the current configuration (non-increasing along
  /// every trajectory; checked by tests).
  u64 lemma3_weight() const { return layout_.lemma3_weight(counts()); }

 private:
  RingLayout layout_;
};

}  // namespace pp
