#include "protocols/ring_of_traps.hpp"

namespace pp {

RingOfTrapsProtocol::RingOfTrapsProtocol(u64 n)
    : RingOfTrapsProtocol(n, RingLayout(n).num_traps()) {}

RingOfTrapsProtocol::RingOfTrapsProtocol(u64 n, u64 traps)
    : Protocol(n, n, /*num_extra=*/0), layout_(n, traps) {
  rules_.resize(n);
  for (u64 a = 0; a < layout_.num_traps(); ++a) {
    const StateId gate = layout_.gate(a);
    // Gate: one agent re-enters at the top inner state, the other moves on
    // to the next trap's gate.  (For a degenerate single-state trap the top
    // state *is* the gate, so the rule reduces to forwarding one agent.)
    rules_[gate] = Rule{layout_.top(a), layout_.next_gate(a)};
    // Inner states: the responder descends one step.
    for (u64 b = 1; b < layout_.trap_size(a); ++b) {
      const StateId s = static_cast<StateId>(gate + b);
      rules_[s] = Rule{s, static_cast<StateId>(s - 1)};
    }
  }
}

std::pair<StateId, StateId> RingOfTrapsProtocol::transition(
    StateId initiator, StateId responder) const {
  if (initiator != responder) return {initiator, responder};
  const StateId s = initiator;
  if (layout_.local_of(s) > 0) {
    // Inner rule R_i: (a,b) + (a,b) -> (a,b) + (a,b-1).
    return {s, static_cast<StateId>(s - 1)};
  }
  // Gate rule R_g: (a,0) + (a,0) -> (a,m) + ((a+1) mod m, 0).
  const u64 a = layout_.trap_of(s);
  return {layout_.top(a), layout_.next_gate(a)};
}

std::string RingOfTrapsProtocol::describe_state(StateId s) const {
  const u64 a = layout_.trap_of(s);
  const u64 b = layout_.local_of(s);
  return "(a=" + std::to_string(a) + ",b=" + std::to_string(b) +
         (b == 0 ? "|gate)" : ")");
}

}  // namespace pp
