// The O(log n)-extra-states ranking protocol (paper §5).
//
// The n rank states are spanned by a *perfectly balanced binary tree* in
// pre-order (BalancedTree, Figure 2).  Extra states form a "buffer line"
// X_1 .. X_2k split into a red group (X_1..X_k) and a green group
// (X_{k+1}..X_2k), with 2k = O(log n).  Rules:
//
//   R1 (dispersion): p + p -> p + (p+1)               p non-branching
//                    p + p -> (p+1) + (p+l+1)         p branching
//   R2 (reset):      l + l -> X_1 + X_1               l a leaf
//   R3 (buffer):     X_i + X_j -> X_{i+1} + X_{i+1}   i = min(i,j) < 2k
//   R4 (unload/seed) X_i + p  -> X_1 + X_1            i <= k   (red)
//                    X_i + p  -> 0   + p              i >  k   (green)
//   R5 (re-enter):   X_2k + X_2k -> 0 + 0
//
// Intuition: R1 pours colliding agents down the tree; a perfect pour from
// the root ranks everyone (Lemma 19).  If the initial configuration is
// unbalanced, some leaf overloads within O(n log n) time (Lemma 20), R2
// raises the reset signal, red agents epidemically unload the whole tree
// into the buffer line (R4 first case, Lemma 21), the line marches
// everyone into green and back to the root (R3, R5, R4 second case), and
// the now-balanced pour completes.  Theorem 3: silent self-stabilising
// ranking in O(n log n) parallel time whp — the best known with
// O(log n) extra states.
//
// Rule-orientation note: the paper writes R3 for unordered {X_i, X_j},
// i <= j.  We apply it to every ordered pair of extra-state agents using
// i = min of the two indices, and R4/R5 exactly as written (initiator
// extra, responder rank); (rank, extra) ordered pairs are null.  This
// choice at most halves/doubles constant factors and preserves every
// asymptotic claim.
#pragma once

#include <string>
#include <string_view>
#include <utility>

#include "core/protocol.hpp"
#include "structures/balanced_tree.hpp"

namespace pp {

class TreeRankingProtocol final : public Protocol {
 public:
  /// kStandard is the paper's protocol.  kModified is the *modified
  /// protocol* from the proof of Theorem 3 (§5.2): every buffer state is
  /// treated as green, i.e. R4 always performs X_i + j -> 0 + j and the
  /// reset epidemic never fires.  The paper uses it as an analysis device;
  /// here it doubles as an ablation of the red/reset mechanism
  /// (bench_ablations A4).
  enum class ResetMode { kStandard, kModified };

  /// `k` = half the buffer-line length (the paper's k, x = 2k extra
  /// states); k = 0 selects the default 2 * ceil(log2 n), large enough for
  /// the Lemma 21 epidemic argument at any practical n.
  explicit TreeRankingProtocol(u64 n, u64 k = 0,
                               ResetMode mode = ResetMode::kStandard);

  std::string_view name() const override {
    return mode_ == ResetMode::kStandard ? "tree-ranking"
                                         : "tree-ranking-modified";
  }
  std::pair<StateId, StateId> transition(StateId initiator,
                                         StateId responder) const override;
  std::string describe_state(StateId s) const override;

  const BalancedTree& tree() const { return tree_; }
  u64 k() const { return k_; }

  /// Buffer-line state X_i (1-based, i in [1, 2k]).
  StateId x_state(u64 i) const {
    return static_cast<StateId>(num_ranks() + i - 1);
  }
  /// In the modified protocol no state is red (R4 always re-seeds the
  /// root).
  bool is_red(u64 i) const {
    return mode_ == ResetMode::kStandard && i <= k_;
  }
  ResetMode mode() const { return mode_; }

  /// Agents currently on the buffer line (any X_i).
  u64 buffer_agents() const { return num_agents() - rank_agents(); }

  /// R3/R5 fire on every ordered buffer pair (min(i, j) < 2k advances the
  /// line, i = j = 2k re-enters the root) and R4 on every (X_i, rank)
  /// pair — in both reset modes — while (rank, extra) ordered pairs are
  /// null by the rule-orientation note above.  The grouped sampler
  /// cross-checks this against transition() at construction.
  ExtraPairClasses extra_pair_classes() const override {
    return {.extra_extra = true, .extra_rank = true, .rank_extra = false};
  }

 protected:
  u64 extra_weight() const override;
  void step_extra(u64 target, Rng& rng) override;
  bool apply_cross(StateId initiator, StateId responder) override;

 private:
  /// 1-based buffer index of extra state s.
  u64 x_index(StateId s) const { return s - num_ranks() + 1; }
  /// Selects the extra state holding the `target`-th buffered agent
  /// (prefix walk over the 2k buffer states).
  StateId select_extra(u64 target) const;
  void apply_buffer_pair(StateId first, StateId second);  // R3 / R5
  void apply_buffer_rank(StateId x, StateId rank);        // R4

  BalancedTree tree_;
  u64 k_;
  ResetMode mode_;
};

}  // namespace pp
