#include "protocols/factory.hpp"

#include <memory>

#include "common/assert.hpp"
#include "protocols/ag.hpp"
#include "protocols/line_of_traps.hpp"
#include "protocols/ring_of_traps.hpp"
#include "protocols/tree_ranking.hpp"
#include "structures/line_layout.hpp"

namespace pp {

ProtocolPtr make_protocol(std::string_view name, u64 n) {
  if (name == "ag") return std::make_unique<AgProtocol>(n);
  if (name == "ring-of-traps") return std::make_unique<RingOfTrapsProtocol>(n);
  if (name == "line-of-traps") return std::make_unique<LineOfTrapsProtocol>(n);
  if (name == "tree-ranking") return std::make_unique<TreeRankingProtocol>(n);
  PP_ASSERT_MSG(false, "unknown protocol name");
  return nullptr;
}

std::vector<std::string_view> protocol_names() {
  return {"ag", "ring-of-traps", "line-of-traps", "tree-ranking"};
}

u64 min_population(std::string_view name) {
  if (name == "line-of-traps") return LineLayout::canonical_n(2);  // 72
  return 2;
}

u64 preferred_population(std::string_view name, u64 n) {
  const u64 lo = min_population(name);
  if (n < lo) n = lo;
  if (name == "line-of-traps") {
    // Snap to the nearest canonical size 3 m^3 (m+1), even m.
    u64 best = LineLayout::canonical_n(2);
    for (u64 m = 2;; m += 2) {
      const u64 c = LineLayout::canonical_n(m);
      const u64 d_best = best > n ? best - n : n - best;
      const u64 d_c = c > n ? c - n : n - c;
      if (d_c <= d_best) best = c;
      if (c >= n) break;
    }
    return best;
  }
  return n;
}

}  // namespace pp
