#include "protocols/ag.hpp"

namespace pp {

AgProtocol::AgProtocol(u64 n) : Protocol(n, n, /*num_extra=*/0) {
  rules_.resize(n);
  for (StateId i = 0; i < n; ++i) {
    rules_[i] = Rule{i, static_cast<StateId>((i + 1) % n)};
  }
}

std::pair<StateId, StateId> AgProtocol::transition(StateId initiator,
                                                   StateId responder) const {
  // The single rule family: i + i -> i + (i + 1 mod n).
  if (initiator == responder) {
    return {initiator,
            static_cast<StateId>((initiator + 1) % num_ranks())};
  }
  return {initiator, responder};
}

}  // namespace pp
