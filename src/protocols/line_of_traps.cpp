#include "protocols/line_of_traps.hpp"

#include "common/assert.hpp"

namespace pp {

LineOfTrapsProtocol::LineOfTrapsProtocol(u64 n)
    : Protocol(n, n, /*num_extra=*/1), layout_(n) {
  rules_.resize(n);
  for (u64 l = 0; l < layout_.num_lines(); ++l) install_line_rules(l);
}

void LineOfTrapsProtocol::install_line_rules(u64 l) {
  const u64 traps = layout_.traps_per_line();
  for (u64 a = 0; a < traps; ++a) {
    const StateId gate = layout_.gate(l, a);
    const StateId forward =
        (a == 0) ? x_state() : layout_.gate(l, a - 1);
    rules_[gate] = Rule{layout_.top(l, a), forward};
    for (u64 b = 1; b < layout_.trap_size(l, a); ++b) {
      const StateId s = static_cast<StateId>(gate + b);
      rules_[s] = Rule{s, static_cast<StateId>(s - 1)};
    }
  }
}

u64 LineOfTrapsProtocol::extra_weight() const {
  const u64 cx = count(x_state());
  // Ordered pairs (X, X) plus ordered pairs (rank agent, X).
  return cx * (cx - (cx > 0 ? 1 : 0)) + (num_agents() - cx) * cx;
}

void LineOfTrapsProtocol::step_extra(u64 target, Rng& /*rng*/) {
  const u64 cx = count(x_state());
  PP_DCHECK(cx > 0);
  const u64 w_xx = cx * (cx - 1);
  StateId destination;
  if (target < w_xx) {
    // X + X -> X + entrance gate of line 0.
    destination = layout_.entrance_gate(0);
  } else {
    // (l,a,b) + X: initiator sampled proportionally to rank-state counts.
    const u64 q = (target - w_xx) / cx;
    const StateId s = sample_rank_by_count(q);
    destination = layout_.route_target(s);
  }
  mutate(x_state(), -1);
  mutate(destination, +1);
}

bool LineOfTrapsProtocol::apply_cross(StateId initiator, StateId responder) {
  if (responder != x_state()) return false;  // (X, rank) pairs are null
  StateId destination;
  if (initiator == x_state()) {
    destination = layout_.entrance_gate(0);
  } else {
    destination = layout_.route_target(initiator);
  }
  mutate(x_state(), -1);
  mutate(destination, +1);
  return true;
}

std::pair<StateId, StateId> LineOfTrapsProtocol::transition(
    StateId initiator, StateId responder) const {
  const StateId x = x_state();
  if (responder == x) {
    // X + X -> X + (line 0's entrance gate);
    // (l,a,b) + X -> (l,a,b) + (l_i's entrance gate) via graph G.
    if (initiator == x) return {x, layout_.entrance_gate(0)};
    return {initiator, layout_.route_target(initiator)};
  }
  if (initiator != responder || initiator == x) {
    return {initiator, responder};  // includes the null (X, rank) pairs
  }
  const StateId s = initiator;
  if (layout_.local_of(s) > 0) {
    return {s, static_cast<StateId>(s - 1)};  // inner descent
  }
  const u64 l = layout_.line_of(s);
  const u64 a = layout_.trap_of(s);
  if (a == 0) return {layout_.top(l, 0), x};  // exit gate releases to X
  return {layout_.top(l, a), layout_.gate(l, a - 1)};
}

namespace {

LineOutcome line_outcome_of_counts(const LineLayout& layout,
                                   std::span<const u64> counts, u64 l) {
  const u64 traps = layout.traps_per_line();
  std::vector<u64> beta(traps, 0);
  std::vector<u64> gamma(traps, 0);
  std::vector<u64> cap(traps, 0);
  for (u64 a = 0; a < traps; ++a) {
    const auto slice = layout.trap_counts(counts, l, a);
    cap[a] = slice.size() - 1;
    gamma[a] = slice[0];
    for (u64 b = 1; b < slice.size(); ++b) beta[a] += slice[b];
  }
  return predict_line_outcome(beta, gamma, cap);
}

}  // namespace

u64 LineOfTrapsProtocol::global_excess() const {
  u64 r = count(x_state());
  for (u64 l = 0; l < layout_.num_lines(); ++l) {
    r += line_outcome_of_counts(layout_, counts(), l).excess;
  }
  return r;
}

u64 LineOfTrapsProtocol::global_surplus() const {
  u64 s = count(x_state());
  for (u64 l = 0; l < layout_.num_lines(); ++l) {
    s += line_outcome_of_counts(layout_, counts(), l).released;
  }
  return s;
}

u64 LineOfTrapsProtocol::global_deficit() const {
  u64 d = 0;
  for (u64 l = 0; l < layout_.num_lines(); ++l) {
    d += line_outcome_of_counts(layout_, counts(), l).deficit;
  }
  return d;
}

std::string LineOfTrapsProtocol::describe_state(StateId s) const {
  if (s == x_state()) return "X";
  const u64 l = layout_.line_of(s);
  const u64 a = layout_.trap_of(s);
  const u64 b = layout_.local_of(s);
  std::string out = "(l=" + std::to_string(l) + ",a=" + std::to_string(a) +
                    ",b=" + std::to_string(b);
  if (b == 0) out += a == 0 ? "|exit-gate" : "|gate";
  return out + ")";
}

LineOutcome predict_line_outcome(std::span<const u64> beta,
                                 std::span<const u64> gamma,
                                 std::span<const u64> inner_capacity) {
  const u64 traps = beta.size();
  PP_ASSERT(gamma.size() == traps && inner_capacity.size() == traps);
  LineOutcome out;
  out.alpha.assign(traps, 0);
  out.delta.assign(traps, 0);
  out.rho.assign(traps, 0);
  u64 x = 0;  // flow arriving from the trap above (x_{3m} = 0)
  for (u64 idx = traps; idx-- > 0;) {
    const u64 cap = inner_capacity[idx];
    const u64 y = x + gamma[idx];
    const u64 half = y / 2;
    if (beta[idx] + half <= cap) {
      out.alpha[idx] = beta[idx] + half;
      out.delta[idx] = y % 2;
      x = half;
    } else {
      out.alpha[idx] = cap;
      out.delta[idx] = 1;
      x = beta[idx] + y - cap - 1;
    }
    // Excess rho considers the trap's own gate load only (§4.1).
    const u64 own_half = gamma[idx] / 2;
    out.rho[idx] = (beta[idx] + own_half <= cap)
                       ? own_half
                       : beta[idx] + gamma[idx] - cap - 1;
    out.excess += out.rho[idx];
    out.deficit += (cap + 1) - out.alpha[idx] - out.delta[idx];
  }
  out.released = x;
  return out;
}

SingleLineProtocol::SingleLineProtocol(u64 num_agents, u64 traps, u64 inner)
    : Protocol(num_agents, traps * (inner + 1), /*num_extra=*/1),
      traps_(traps),
      inner_(inner) {
  PP_ASSERT(traps >= 1 && inner >= 1);
  rules_.resize(num_ranks());
  for (u64 a = 0; a < traps_; ++a) {
    const StateId g = gate(a);
    const StateId forward = (a == 0) ? x_state() : gate(a - 1);
    rules_[g] = Rule{top(a), forward};
    for (u64 b = 1; b <= inner_; ++b) {
      const StateId s = static_cast<StateId>(g + b);
      rules_[s] = Rule{s, static_cast<StateId>(s - 1)};
    }
  }
}

std::pair<StateId, StateId> SingleLineProtocol::transition(
    StateId initiator, StateId responder) const {
  if (initiator != responder || initiator >= num_ranks()) {
    return {initiator, responder};  // X is absorbing; cross pairs are null
  }
  const StateId s = initiator;
  const u64 a = s / (inner_ + 1);
  const u64 b = s % (inner_ + 1);
  if (b > 0) return {s, static_cast<StateId>(s - 1)};
  if (a == 0) return {top(0), x_state()};
  return {top(a), gate(a - 1)};
}

std::vector<u64> SingleLineProtocol::beta() const {
  std::vector<u64> out(traps_, 0);
  for (u64 a = 0; a < traps_; ++a) {
    for (u64 b = 1; b <= inner_; ++b) {
      out[a] += count(static_cast<StateId>(gate(a) + b));
    }
  }
  return out;
}

std::vector<u64> SingleLineProtocol::gamma() const {
  std::vector<u64> out(traps_, 0);
  for (u64 a = 0; a < traps_; ++a) out[a] = count(gate(a));
  return out;
}

}  // namespace pp
