#include "protocols/tree_ranking.hpp"

#include <bit>

#include "common/assert.hpp"

namespace pp {
namespace {

u64 default_k(u64 n) {
  const u64 log2n = std::bit_width(n - 1);  // ceil(log2 n) for n >= 2
  const u64 k = 2 * log2n;
  return k < 2 ? 2 : k;
}

}  // namespace

TreeRankingProtocol::TreeRankingProtocol(u64 n, u64 k, ResetMode mode)
    : Protocol(n, n, /*num_extra=*/2 * (k == 0 ? default_k(n) : k)),
      tree_(n),
      k_(k == 0 ? default_k(n) : k),
      mode_(mode) {
  PP_ASSERT_MSG(k_ >= 1, "buffer line needs at least X_1, X_2");
  rules_.resize(n);
  for (StateId p = 0; p < n; ++p) {
    if (tree_.is_leaf(p)) {
      rules_[p] = Rule{x_state(1), x_state(1)};  // R2: reset signal
    } else if (tree_.is_branching(p)) {
      rules_[p] = Rule{tree_.left_child(p), tree_.right_child(p)};  // R1
    } else {
      rules_[p] = Rule{p, tree_.left_child(p)};  // R1, lone child = p+1
    }
  }
}

u64 TreeRankingProtocol::extra_weight() const {
  const u64 ce = buffer_agents();
  // Every ordered pair of buffered agents is productive (R3/R5), and every
  // ordered (buffered, rank) pair is productive (R4).
  return ce * (ce - (ce > 0 ? 1 : 0)) + ce * (num_agents() - ce);
}

StateId TreeRankingProtocol::select_extra(u64 target) const {
  for (u64 i = 1; i <= 2 * k_; ++i) {
    const StateId s = x_state(i);
    const u64 c = count(s);
    if (target < c) return s;
    target -= c;
  }
  PP_ASSERT_MSG(false, "select_extra target out of range");
  return kNoState;
}

void TreeRankingProtocol::apply_buffer_pair(StateId first, StateId second) {
  const u64 i = x_index(first);
  const u64 j = x_index(second);
  const u64 lo = i < j ? i : j;
  if (lo == 2 * k_) {
    // R5: X_2k + X_2k -> 0 + 0.
    mutate(first, -2);
    mutate(0, +2);
    return;
  }
  // R3: both agents adopt X_{lo+1}.
  mutate(first, -1);
  mutate(second, -1);
  mutate(x_state(lo + 1), +2);
}

void TreeRankingProtocol::apply_buffer_rank(StateId x, StateId rank) {
  const u64 i = x_index(x);
  if (is_red(i)) {
    // R4 red: unload the tree agent and propagate the reset signal.
    mutate(x, -1);
    mutate(rank, -1);
    mutate(x_state(1), +2);
  } else {
    // R4 green: the buffered agent re-enters the tree at the root.
    mutate(x, -1);
    mutate(0, +1);
  }
}

void TreeRankingProtocol::step_extra(u64 target, Rng& /*rng*/) {
  const u64 ce = buffer_agents();
  PP_DCHECK(ce > 0);
  const u64 w_pairs = ce * (ce - 1);
  if (target < w_pairs) {
    // Ordered pair of distinct buffered agents: initiator by count prefix,
    // responder by count prefix with the initiator removed.
    const u64 q1 = target / (ce - 1);
    const u64 q2 = target % (ce - 1);
    const StateId first = select_extra(q1);
    u64 adj = q2;
    // Skip the initiator when selecting the responder.
    StateId second = kNoState;
    for (u64 i = 1; i <= 2 * k_; ++i) {
      const StateId s = x_state(i);
      const u64 c = count(s) - (s == first ? 1 : 0);
      if (adj < c) {
        second = s;
        break;
      }
      adj -= c;
    }
    PP_ASSERT(second != kNoState);
    apply_buffer_pair(first, second);
    return;
  }
  // Ordered (buffered, rank) pair.
  const u64 q = target - w_pairs;
  const u64 rank_total = num_agents() - ce;
  PP_DCHECK(rank_total > 0);
  const StateId x = select_extra(q / rank_total);
  const StateId rank = sample_rank_by_count(q % rank_total);
  apply_buffer_rank(x, rank);
}

bool TreeRankingProtocol::apply_cross(StateId initiator, StateId responder) {
  const bool init_extra = initiator >= num_ranks();
  const bool resp_extra = responder >= num_ranks();
  if (init_extra && resp_extra) {
    apply_buffer_pair(initiator, responder);
    return true;
  }
  if (init_extra) {
    apply_buffer_rank(initiator, responder);
    return true;
  }
  return false;  // (rank, extra) ordered pairs are null
}

std::pair<StateId, StateId> TreeRankingProtocol::transition(
    StateId initiator, StateId responder) const {
  const u64 ranks = num_ranks();
  const bool init_extra = initiator >= ranks;
  const bool resp_extra = responder >= ranks;
  if (!init_extra && !resp_extra) {
    if (initiator != responder) return {initiator, responder};
    const StateId p = initiator;
    if (tree_.is_leaf(p)) return {x_state(1), x_state(1)};       // R2
    if (tree_.is_branching(p)) {
      return {tree_.left_child(p), tree_.right_child(p)};       // R1
    }
    return {p, tree_.left_child(p)};                            // R1
  }
  if (init_extra && resp_extra) {
    const u64 i = x_index(initiator);
    const u64 j = x_index(responder);
    const u64 lo = i < j ? i : j;
    if (lo == 2 * k_) return {0, 0};                            // R5
    return {x_state(lo + 1), x_state(lo + 1)};                  // R3
  }
  if (init_extra) {
    const u64 i = x_index(initiator);
    if (is_red(i)) return {x_state(1), x_state(1)};             // R4 red
    return {0, responder};                                      // R4 green
  }
  return {initiator, responder};  // (rank, extra) pairs are null
}

std::string TreeRankingProtocol::describe_state(StateId s) const {
  if (s >= num_ranks()) {
    const u64 i = x_index(s);
    return "X_" + std::to_string(i) + (is_red(i) ? "(red)" : "(green)");
  }
  std::string out = "node " + std::to_string(s);
  if (tree_.is_leaf(s)) return out + " (leaf)";
  return out + (tree_.is_branching(s) ? " (branching)" : " (chain)");
}

}  // namespace pp
