// Construction of protocols by name — shared by tests, benches, examples.
#pragma once

#include <string_view>
#include <vector>

#include "core/protocol.hpp"

namespace pp {

/// Known names: "ag", "ring-of-traps", "line-of-traps", "tree-ranking".
/// Aborts on an unknown name (programming error, not user input).
ProtocolPtr make_protocol(std::string_view name, u64 n);

/// All ranking protocol names, baseline first.
std::vector<std::string_view> protocol_names();

/// Smallest supported population size of a protocol.
u64 min_population(std::string_view name);

/// Rounds `n` up to a size the protocol supports and, for the line
/// protocol, to the nearest canonical 3 m^3 (m+1) so that benches compare
/// the protocols at their natural sizes.
u64 preferred_population(std::string_view name, u64 n);

}  // namespace pp
