// The one-extra-state (x = 1) ranking protocol (paper §4).
//
// The n rank states form m^2 *lines* of 3m traps of size m+1 each
// (canonically n = 3 m^3 (m+1), even m; see LineLayout for general n).
// Rules, with (l, a, b) = line l, trap a, local state b (b = 0 the gate):
//
//   inner:     (l,a,b) + (l,a,b) -> (l,a,b) + (l,a,b-1)        for b > 0
//   gate a>0:  (l,a,0) + (l,a,0) -> (l,a,m) + (l,a-1,0)
//   exit gate: (l,0,0) + (l,0,0) -> (l,0,m) + X
//   X routing: X + X              -> X + entrance_gate(line 0)
//              (l,a,b) + X        -> (l,a,b) + entrance_gate(l_i),
//                    where i = a / m in {0,1,2} and l_i is the i-th
//                    neighbour of l in the cubic routing graph G.
//
// Agents released by exit gates accumulate in the single extra state X and
// are scattered across entrance gates by random interactions, using the
// diameter-4log(m) graph G as a routing table.  Theorem 2: silent
// self-stabilising ranking (hence leader election) in O(n^{7/4} log^2 n) =
// o(n^2) parallel time whp from every initial configuration.
//
// This header also provides:
//   * SingleLineProtocol — one isolated line with an absorbing X, used by
//     the Lemma 5 property tests (the number of agents a line releases is a
//     schedule-independent function of its initial configuration), and
//   * predict_line_outcome — the Lemma 5 recurrence computing the final
//     allocation/gate/excess vectors (alpha, delta, rho), the surplus
//     s(C_l) and the deficit d(C_l) of a line configuration.
#pragma once

#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/protocol.hpp"
#include "structures/line_layout.hpp"

namespace pp {

class LineOfTrapsProtocol final : public Protocol {
 public:
  explicit LineOfTrapsProtocol(u64 n);

  std::string_view name() const override { return "line-of-traps"; }
  std::pair<StateId, StateId> transition(StateId initiator,
                                         StateId responder) const override;
  std::string describe_state(StateId s) const override;

  const LineLayout& layout() const { return layout_; }

  /// The extra state X.
  StateId x_state() const { return static_cast<StateId>(num_ranks()); }

  /// Total excess r(C) = |C_X| + sum_l r(C_l): the paper's global token
  /// count, non-increasing except when agents enter lines (Lemmas 11-18).
  u64 global_excess() const;

  /// Global surplus s(C) = |C_X| + sum_l s(C_l); Lemma 10 proves
  /// s(C) = d(C) (global deficit) — asserted by tests.
  u64 global_surplus() const;
  u64 global_deficit() const;

  /// X routing fires on X + X and on (l,a,b) + X — every ordered pair
  /// whose *responder* is the extra state X is productive, and (X, rank)
  /// pairs are null.  The grouped sampler cross-checks this against
  /// transition() at construction.
  ExtraPairClasses extra_pair_classes() const override {
    return {.extra_extra = true, .extra_rank = false, .rank_extra = true};
  }

 protected:
  u64 extra_weight() const override;
  void step_extra(u64 target, Rng& rng) override;
  bool apply_cross(StateId initiator, StateId responder) override;

 private:
  void install_line_rules(u64 l);

  LineLayout layout_;
};

/// Outcome of running one line to silence with no arriving agents
/// (Lemma 5 / §4.1 definitions).
struct LineOutcome {
  std::vector<u64> alpha;  ///< final inner-state agents per trap (<= m)
  std::vector<u64> delta;  ///< final gate occupancy per trap (0 or 1)
  std::vector<u64> rho;    ///< excess ("tokens") per trap
  u64 released = 0;        ///< s(C_l): agents released to X before silence
  u64 deficit = 0;         ///< d(C_l): unoccupied states in the final config
  u64 excess = 0;          ///< r(C_l) = sum(rho); s(C_l) <= r(C_l)
};

/// Applies the Lemma 5 recurrence to a line given per-trap inner/gate agent
/// counts (beta, gamma), descending from the entrance trap (highest index)
/// to the exit trap (index 0).  `inner_capacity[a]` is the number of inner
/// states of trap a.
LineOutcome predict_line_outcome(std::span<const u64> beta,
                                 std::span<const u64> gamma,
                                 std::span<const u64> inner_capacity);

/// One isolated line of `traps` traps with `inner` inner states per trap
/// and an absorbing extra state X; num_agents is free.  Used to validate
/// Lemma 5 (schedule-independence of the released-agent count).
class SingleLineProtocol final : public Protocol {
 public:
  SingleLineProtocol(u64 num_agents, u64 traps, u64 inner);

  std::string_view name() const override { return "single-line"; }
  std::pair<StateId, StateId> transition(StateId initiator,
                                         StateId responder) const override;

  u64 traps() const { return traps_; }
  u64 inner() const { return inner_; }
  StateId x_state() const { return static_cast<StateId>(num_ranks()); }
  StateId gate(u64 a) const { return static_cast<StateId>(a * (inner_ + 1)); }
  StateId top(u64 a) const {
    return static_cast<StateId>(a * (inner_ + 1) + inner_);
  }

  /// Number of agents absorbed in X so far.
  u64 released() const { return count(x_state()); }

  /// Per-trap inner/gate vectors of the current configuration.
  std::vector<u64> beta() const;
  std::vector<u64> gamma() const;

 protected:
  bool apply_cross(StateId, StateId) override { return false; }  // X inert

 private:
  u64 traps_;
  u64 inner_;
};

}  // namespace pp
