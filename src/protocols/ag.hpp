// The generic state-optimal ranking protocol AG (paper §1, §2).
//
// State space {0, ..., n-1}; the single rule family
//     i + i  ->  i + (i + 1 mod n)
// moves the responder of a colliding pair one step around the cycle of
// ranks.  AG is the only previously known state-optimal self-stabilising
// ranking protocol; it stabilises silently in Θ(n^2) parallel time whp and
// serves as the baseline of every comparison in the paper (and in
// bench_ag_scaling / bench_tradeoff_table here).
#pragma once

#include <string_view>
#include <utility>

#include "core/protocol.hpp"

namespace pp {

class AgProtocol final : public Protocol {
 public:
  explicit AgProtocol(u64 n);

  std::string_view name() const override { return "ag"; }
  std::pair<StateId, StateId> transition(StateId initiator,
                                         StateId responder) const override;
  /// The single rule family is diagonal (i,i) -> (i, i+1 mod n) on rank
  /// states only — AG's dynamics are a pure function of the count vector.
  bool is_count_determined() const override { return true; }
};

}  // namespace pp
