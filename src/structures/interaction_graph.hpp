// General interaction topologies for the graph-restricted scheduler.
//
// The paper's model lets any ordered pair of agents interact (the complete
// interaction graph).  A classic generalisation pins each agent to a vertex
// of a fixed graph G and only lets endpoints of an edge of G interact.  This
// module provides the standard topology zoo for that model:
//
//   complete   — the paper's model (sanity anchor: scheduling on it must
//                match the uniform scheduler statistically);
//   cycle      — the sparsest vertex-transitive connected topology;
//   path       — a cycle with one edge removed (boundary effects);
//   d-regular  — a uniformly random d-regular multigraph from the
//                configuration model (pairing stubs, resampling until the
//                result is simple), the standard expander surrogate;
//   routing    — the paper's own cubic routing graph (§4.2) reinterpreted
//                as an interaction topology.
//
// The representation is an undirected edge list plus per-vertex incidence
// lists — exactly what the scheduler needs to (a) sample a uniformly random
// directed edge and (b) re-examine the edges incident to the two agents
// that just changed state.  Parallel edges are allowed (they simply carry
// proportionally more scheduling weight); self-loops are not.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "structures/routing_graph.hpp"

namespace pp {

enum class GraphKind {
  kComplete,
  kCycle,
  kPath,
  kRandomRegular,
  kRouting,  ///< the paper's cubic routing graph (§4.2); needs n = m^2, m even
};

const char* graph_kind_name(GraphKind k);

class InteractionGraph {
 public:
  /// K_n for n >= 2: the unrestricted model, n(n-1)/2 edges.
  static InteractionGraph complete(u64 n);

  /// C_n for n >= 2 (C_2 is a double edge, matching the multigraph reading
  /// of the cycle construction in structures/routing_graph).
  static InteractionGraph cycle(u64 n);

  /// P_n for n >= 2.
  static InteractionGraph path(u64 n);

  /// Uniformly random simple d-regular graph on n vertices via the
  /// configuration model (requires n > d >= 1 and n*d even).  The topology
  /// depends only on (n, d, seed), never on the trial's generator, so every
  /// trial of a sweep point runs on the same graph.
  static InteractionGraph random_regular(u64 n, u64 d, u64 seed);

  /// The paper's cubic routing graph as an interaction topology
  /// (m^2 vertices).
  static InteractionGraph from_routing(const RoutingGraph& g);

  /// Dispatch on GraphKind (degree/seed are only read by kRandomRegular;
  /// kRouting requires n = m^2 for an even m >= 2).
  static InteractionGraph make(GraphKind kind, u64 n, u64 degree = 3,
                               u64 seed = 1);

  /// The description() make() would give the topology, without building
  /// it — the single source of the display-name format that scheduler
  /// names, sinks and BENCH labels key on (e.g. "cycle",
  /// "random-4-regular", "random-4-regular/g7" for a non-default seed).
  static std::string describe(GraphKind kind, u64 degree = 3, u64 seed = 1);

  u64 num_vertices() const { return n_; }
  u64 num_edges() const { return edges_.size(); }

  /// Undirected edges as (u, v) pairs; parallel edges appear once each.
  const std::vector<std::pair<u32, u32>>& edges() const { return edges_; }

  /// Ids (into edges()) of the edges incident to v.
  const std::vector<u32>& incident_edges(u32 v) const { return incident_[v]; }

  u64 degree(u32 v) const { return incident_[v].size(); }

  bool connected() const;

  /// Short human-readable description, e.g. "cycle" or "random-3-regular".
  const std::string& description() const { return description_; }

 private:
  InteractionGraph(u64 n, std::vector<std::pair<u32, u32>> edges,
                   std::string description);

  u64 n_;
  std::vector<std::pair<u32, u32>> edges_;
  std::vector<std::vector<u32>> incident_;
  std::string description_;
};

}  // namespace pp
