// The cubic routing graph G of the one-extra-state protocol
// (paper §4.2, Figure 1).
//
// Construction, following the paper verbatim:
//   1. Build G' — a balanced *full* binary tree (every internal node has two
//      children) with m^2 + 1 vertices, which exists because m is even so
//      m^2 + 1 is odd.  It has m^2/2 + 1 leaves and height <= 2 ceil(log m).
//   2. Merge the root with one of the leaves into a single vertex (we pick a
//      deepest leaf, which is never a child of the root for m >= 2).
//   3. Add a cycle through all remaining leaves.
//
// Every vertex then has exactly three incident edge slots:
//   internal vertex:  parent, left child, right child;
//   merged vertex:    left child, right child, the absorbed leaf's parent;
//   remaining leaf:   parent, cycle-predecessor, cycle-successor.
// (For m = 2 the two remaining leaves form a 2-cycle, so the "graph" is a
// cubic multigraph — neighbour slots may repeat; routing does not care.)
//
// Vertices of G correspond to the m^2 lines of traps; an agent in the extra
// state X interacting with an agent whose trap "points to" slot i in
// {0, 1, 2} is forwarded to line neighbour(l, i).  The diameter bound
// 4 ceil(log m) makes this routing rapidly mixing.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace pp {

class RoutingGraph {
 public:
  /// Builds G for the given even m >= 2; the graph has m^2 vertices.
  explicit RoutingGraph(u64 m);

  u64 m() const { return m_; }
  u64 num_vertices() const { return adj_.size(); }

  /// The i-th neighbour slot (i in {0,1,2}) of vertex v.
  u32 neighbour(u32 v, u32 i) const { return adj_[v][i]; }

  /// All three neighbour slots of v.
  const std::array<u32, 3>& neighbours(u32 v) const { return adj_[v]; }

  /// Exact diameter by BFS from every vertex.  O(V^2); intended for tests
  /// and the figure bench, not hot paths.
  u32 diameter() const;

  /// True if the multigraph is connected.
  bool connected() const;

  /// Adjacency listing ("v: a b c" per line) for the figure bench.
  std::string to_string() const;

 private:
  u64 m_;
  std::vector<std::array<u32, 3>> adj_;
};

}  // namespace pp
