#include "structures/routing_graph.hpp"

#include <queue>
#include <sstream>

#include "common/assert.hpp"

namespace pp {
namespace {

// A balanced full binary tree with an odd number of nodes: every internal
// node has exactly two children whose subtree sizes are the two odd numbers
// closest to half of the remainder.  Height grows as log2 of the size.
struct FullTree {
  struct Node {
    u32 parent = kNoState;
    u32 left = kNoState;
    u32 right = kNoState;
    u32 depth = 0;
  };
  std::vector<Node> nodes;
  std::vector<u32> leaves;  // pre-order ascending

  explicit FullTree(u64 size) {
    PP_ASSERT_MSG(size % 2 == 1, "full binary tree needs an odd size");
    nodes.resize(size);
    struct Item {
      u32 id;
      u64 k;
      u32 parent;
      u32 depth;
    };
    std::vector<Item> stack{{0, size, kNoState, 0}};
    while (!stack.empty()) {
      const Item it = stack.back();
      stack.pop_back();
      Node& node = nodes[it.id];
      node.parent = it.parent;
      node.depth = it.depth;
      if (it.k == 1) continue;
      const u64 h = (it.k - 1) / 2;  // k odd => k-1 even
      const u64 lsize = (h % 2 == 1) ? h : h - 1;
      const u64 rsize = (it.k - 1) - lsize;
      PP_DCHECK(lsize % 2 == 1 && rsize % 2 == 1);
      node.left = it.id + 1;
      node.right = static_cast<u32>(it.id + 1 + lsize);
      stack.push_back({node.left, lsize, it.id, it.depth + 1});
      stack.push_back({node.right, rsize, it.id, it.depth + 1});
    }
    for (u32 p = 0; p < size; ++p) {
      if (nodes[p].left == kNoState) leaves.push_back(p);
    }
  }
};

}  // namespace

RoutingGraph::RoutingGraph(u64 m) : m_(m) {
  PP_ASSERT_MSG(m >= 2 && m % 2 == 0, "RoutingGraph requires even m >= 2");
  const u64 tree_size = m * m + 1;
  FullTree tree(tree_size);
  PP_ASSERT(tree.leaves.size() == m * m / 2 + 1);

  // Merge the root with a deepest leaf.  For m >= 2 every deepest leaf has
  // depth >= 2, so the merge never creates a self-loop.
  u32 merged = tree.leaves.front();
  for (const u32 l : tree.leaves) {
    if (tree.nodes[l].depth > tree.nodes[merged].depth) merged = l;
  }
  PP_ASSERT(tree.nodes[merged].depth >= 2);

  // Vertex ids: tree node ids with `merged` removed and later ids shifted
  // down by one; references to `merged` resolve to the root's vertex (0).
  auto vertex_of = [&](u32 node) -> u32 {
    if (node == merged) return 0;
    return node < merged ? node : node - 1;
  };

  adj_.assign(m * m, {kNoState, kNoState, kNoState});

  std::vector<u32> cycle_leaves;
  cycle_leaves.reserve(tree.leaves.size() - 1);
  for (const u32 l : tree.leaves) {
    if (l != merged) cycle_leaves.push_back(l);
  }
  const u64 L = cycle_leaves.size();
  PP_ASSERT(L >= 2);

  for (u32 node = 0; node < tree_size; ++node) {
    if (node == merged) continue;
    const u32 v = vertex_of(node);
    const FullTree::Node& t = tree.nodes[node];
    if (node == 0) {
      // Merged vertex: its own two children plus the absorbed leaf's parent.
      adj_[v] = {vertex_of(t.left), vertex_of(t.right),
                 vertex_of(tree.nodes[merged].parent)};
    } else if (t.left != kNoState) {
      // Internal vertex.
      adj_[v] = {vertex_of(t.parent), vertex_of(t.left), vertex_of(t.right)};
    }
    // Leaves handled below once cycle positions are known.
  }
  for (u64 i = 0; i < L; ++i) {
    const u32 node = cycle_leaves[i];
    const u32 prev = cycle_leaves[(i + L - 1) % L];
    const u32 next = cycle_leaves[(i + 1) % L];
    adj_[vertex_of(node)] = {vertex_of(tree.nodes[node].parent),
                             vertex_of(prev), vertex_of(next)};
  }
  for (const auto& slots : adj_) {
    for (const u32 s : slots) PP_ASSERT(s != kNoState);
  }
}

u32 RoutingGraph::diameter() const {
  const u64 v_count = num_vertices();
  u32 best = 0;
  std::vector<u32> dist(v_count);
  for (u32 src = 0; src < v_count; ++src) {
    std::fill(dist.begin(), dist.end(), kNoState);
    std::queue<u32> q;
    dist[src] = 0;
    q.push(src);
    while (!q.empty()) {
      const u32 u = q.front();
      q.pop();
      for (const u32 w : adj_[u]) {
        if (dist[w] == kNoState) {
          dist[w] = dist[u] + 1;
          if (dist[w] > best) best = dist[w];
          q.push(w);
        }
      }
    }
    for (const u32 d : dist) PP_ASSERT_MSG(d != kNoState, "disconnected");
  }
  return best;
}

bool RoutingGraph::connected() const {
  const u64 v_count = num_vertices();
  std::vector<bool> seen(v_count, false);
  std::queue<u32> q;
  seen[0] = true;
  q.push(0);
  u64 reached = 1;
  while (!q.empty()) {
    const u32 u = q.front();
    q.pop();
    for (const u32 w : adj_[u]) {
      if (!seen[w]) {
        seen[w] = true;
        ++reached;
        q.push(w);
      }
    }
  }
  return reached == v_count;
}

std::string RoutingGraph::to_string() const {
  std::ostringstream out;
  for (u32 v = 0; v < num_vertices(); ++v) {
    out << v << ": " << adj_[v][0] << ' ' << adj_[v][1] << ' ' << adj_[v][2]
        << '\n';
  }
  return std::move(out).str();
}

}  // namespace pp
