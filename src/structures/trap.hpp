// Agent traps (paper §2.1) — diagnostics over a trap's per-state counts.
//
// A trap of size m+1 consists of one *gate* state (local index 0) and m
// *inner* states (local indices 1..m).  Its rules (owned by the protocols,
// not by this module) are
//   inner:  R_i : i + i -> i + (i-1)            (agents descend)
//   gate:   R_g : 0 + 0 -> m + Y                (eject every other agent)
// where Y is the next trap's gate or an extra state.
//
// This header provides the vocabulary of the paper's analysis — gaps,
// surplus, flat / saturated / full / tidy / (almost-/fully-) stabilised —
// as pure functions over a span of counts, `counts[b]` being the number of
// agents in local state b.  They power the invariant property tests
// (Facts 1-3, Lemma 2, Lemma 3's weight function) and the protocols'
// debugging output.
#pragma once

#include <span>

#include "common/types.hpp"

namespace pp::trap {

/// Number of agents in the trap.
u64 agents(std::span<const u64> counts);

/// Number of unoccupied inner states ("gaps", §2.1).
u64 gaps(std::span<const u64> counts);

/// Surplus l >= 0: agents beyond the trap's capacity of m+1
/// (0 when the trap holds at most m+1 agents).
u64 surplus(std::span<const u64> counts);

/// No inner state holds more than one agent (§3.2).
bool is_flat(std::span<const u64> counts);

/// All inner states occupied (no gaps).
bool is_saturated(std::span<const u64> counts);

/// Saturated and at least m+1 agents in the trap.  Facts 1 and 3: gaps
/// never reopen and full traps stay full.
bool is_full(std::span<const u64> counts);

/// Every overloaded inner state has a higher local index than every gap
/// (§2.2).  Lemma 2: configurations become and remain tidy.
bool is_tidy(std::span<const u64> counts);

/// Exactly m+1 agents, saturated, gate empty (§2.1, final definitions).
bool is_almost_stabilised(std::span<const u64> counts);

/// Every state of the trap holds exactly one agent.
bool is_fully_stabilised(std::span<const u64> counts);

}  // namespace pp::trap
