#include "structures/trap.hpp"

#include "common/assert.hpp"

namespace pp::trap {

u64 agents(std::span<const u64> counts) {
  u64 sum = 0;
  for (const u64 c : counts) sum += c;
  return sum;
}

u64 gaps(std::span<const u64> counts) {
  u64 g = 0;
  for (u64 b = 1; b < counts.size(); ++b) {
    if (counts[b] == 0) ++g;
  }
  return g;
}

u64 surplus(std::span<const u64> counts) {
  const u64 a = agents(counts);
  const u64 capacity = counts.size();  // m + 1
  return a > capacity ? a - capacity : 0;
}

bool is_flat(std::span<const u64> counts) {
  for (u64 b = 1; b < counts.size(); ++b) {
    if (counts[b] >= 2) return false;
  }
  return true;
}

bool is_saturated(std::span<const u64> counts) {
  return gaps(counts) == 0;
}

bool is_full(std::span<const u64> counts) {
  return is_saturated(counts) && agents(counts) >= counts.size();
}

bool is_tidy(std::span<const u64> counts) {
  // Highest gap must lie below the lowest overloaded inner state.
  u64 highest_gap = 0;       // local index, 0 = none
  u64 lowest_overload = 0;   // local index, 0 = none
  for (u64 b = 1; b < counts.size(); ++b) {
    if (counts[b] == 0) highest_gap = b;
    if (counts[b] >= 2 && lowest_overload == 0) lowest_overload = b;
  }
  if (highest_gap == 0 || lowest_overload == 0) return true;
  return lowest_overload > highest_gap;
}

bool is_almost_stabilised(std::span<const u64> counts) {
  return agents(counts) == counts.size() && is_saturated(counts) &&
         counts[0] == 0;
}

bool is_fully_stabilised(std::span<const u64> counts) {
  for (const u64 c : counts) {
    if (c != 1) return false;
  }
  return true;
}

}  // namespace pp::trap
