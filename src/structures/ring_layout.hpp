// State-space geometry of the ring-of-traps protocol (paper §3.1).
//
// For n = m(m+1) the paper deploys m traps of size m+1 whose gate states
// form a directed cycle.  For other n the paper notes that "one can reduce
// some traps to less than m+1 states"; we implement that concretely: we use
// m = the largest integer with m(m+1) <= n traps and distribute the n rank
// states over them as evenly as possible (sizes differ by at most one, each
// size in {floor(n/m), ceil(n/m)}), preserving the Θ(√n)-traps ×
// Θ(√n)-states-per-trap shape that the analysis needs.
//
// Rank states are laid out contiguously, trap by trap; within trap a the
// local index b = 0 is the gate and b = size_a - 1 the top inner state.
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"

namespace pp {

class RingLayout {
 public:
  /// Lays out `n` rank states (n >= 2) over the canonical ~√n traps.
  explicit RingLayout(u64 n);

  /// Lays out `n` rank states over exactly `traps` traps (1 <= traps <= n).
  /// Used by the trap-size ablation bench; the paper's analysis assumes the
  /// canonical √n shape.
  RingLayout(u64 n, u64 traps);

  u64 num_states() const { return n_; }
  u64 num_traps() const { return offsets_.size(); }

  /// Largest trap size (the "m+1" of the canonical layout).
  u64 max_trap_size() const { return max_size_; }

  u64 trap_offset(u64 a) const { return offsets_[a]; }
  u64 trap_size(u64 a) const {
    return (a + 1 < offsets_.size() ? offsets_[a + 1] : n_) - offsets_[a];
  }

  /// Trap index containing state s.
  u64 trap_of(StateId s) const { return trap_of_[s]; }

  /// Local index of s within its trap (0 = gate).
  u64 local_of(StateId s) const { return s - offsets_[trap_of_[s]]; }

  StateId gate(u64 a) const { return static_cast<StateId>(offsets_[a]); }
  StateId top(u64 a) const {
    return static_cast<StateId>(offsets_[a] + trap_size(a) - 1);
  }
  StateId next_gate(u64 a) const { return gate((a + 1) % num_traps()); }

  /// Per-trap slice of a full per-state count vector.
  std::span<const u64> trap_counts(std::span<const u64> counts, u64 a) const {
    return counts.subspan(trap_offset(a), trap_size(a));
  }

  /// Lemma 3's weight K = k1 + 2*k2 of a configuration, where k1 counts
  /// flat traps with unoccupied gates and k2 counts gaps across all traps.
  /// The paper proves K is non-increasing along every trajectory; the
  /// property tests check exactly that.
  u64 lemma3_weight(std::span<const u64> counts) const;

 private:
  u64 n_;
  u64 max_size_ = 0;
  std::vector<u64> offsets_;   // offsets_[a] = first state id of trap a
  std::vector<u32> trap_of_;   // state id -> trap index
};

}  // namespace pp
