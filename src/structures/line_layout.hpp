// State-space geometry of the one-extra-state protocol (paper §4).
//
// Canonically n = 3 m^3 (m+1) for even m: m^2 lines, each a chain of 3m
// traps of size m+1.  Within a line, trap index a runs from 0 (the *exit*
// trap, whose gate releases agents to the extra state X) to 3m-1 (the
// *entrance* trap, whose gate receives routed agents).  Agents move from
// trap a to trap a-1.
//
// For other n (the paper: "one can arbitrarily scatter n - 3m^3(m+1) states
// by adding up to 2 states to each trap and keep the same asymptotic
// bounds") we generalise: pick the largest even m >= 2 with
// 3 m^3 (m+1) <= n, then distribute the n rank states evenly over the m^2
// lines (line sizes differ by at most 1) and, within each line, evenly over
// its 3m traps.  Every trap keeps size Θ(m) and every line 3m traps, which
// is all the §4 analysis uses.
//
// Routing (§4.2): each trap "points to" a slot i = a / m in {0,1,2}; an
// agent in X that initiates with... — rather, that *responds* to an agent
// in a state of such a trap — is forwarded to the entrance gate of line
// neighbour(l, i) of the routing graph G.  X+X forwards to line 0.
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"
#include "structures/routing_graph.hpp"

namespace pp {

class LineLayout {
 public:
  /// Lays out `n` rank states; requires n >= 72 (= 3*2^3*3, the m = 2
  /// canonical size).
  explicit LineLayout(u64 n);

  /// The canonical population size 3 m^3 (m+1) for a given even m.
  static u64 canonical_n(u64 m) { return 3 * m * m * m * (m + 1); }

  u64 num_states() const { return n_; }
  u64 m() const { return m_; }
  u64 num_lines() const { return m_ * m_; }
  u64 traps_per_line() const { return 3 * m_; }
  const RoutingGraph& graph() const { return graph_; }

  u64 line_of(StateId s) const { return line_of_[s]; }
  u64 trap_of(StateId s) const { return trap_of_[s]; }
  u64 local_of(StateId s) const { return s - trap_offset_of_[s]; }

  u64 line_offset(u64 l) const { return line_offsets_[l]; }
  u64 line_size(u64 l) const {
    return (l + 1 < num_lines() ? line_offsets_[l + 1] : n_) -
           line_offsets_[l];
  }

  u64 trap_offset(u64 l, u64 a) const {
    return trap_offsets_[l * traps_per_line() + a];
  }
  u64 trap_size(u64 l, u64 a) const {
    const u64 idx = l * traps_per_line() + a;
    const u64 end = (idx + 1 < trap_offsets_.size()) ? trap_offsets_[idx + 1]
                                                     : n_;
    return end - trap_offsets_[idx];
  }

  StateId gate(u64 l, u64 a) const {
    return static_cast<StateId>(trap_offset(l, a));
  }
  StateId top(u64 l, u64 a) const {
    return static_cast<StateId>(trap_offset(l, a) + trap_size(l, a) - 1);
  }
  StateId entrance_gate(u64 l) const { return gate(l, traps_per_line() - 1); }
  StateId exit_gate(u64 l) const { return gate(l, 0); }

  /// Routing slot of trap a: which of the three G-neighbours agents in this
  /// trap point to.
  u32 slot_of_trap(u64 a) const { return static_cast<u32>(a / m_); }

  /// Entrance gate an X-agent is routed to after meeting an agent in rank
  /// state s (precomputed; rule (l,a,b) + X -> (l,a,b) + (l_i, 3m, 0)).
  StateId route_target(StateId s) const { return route_target_[s]; }

  /// Per-trap slice of a per-state count vector (rank states only).
  std::span<const u64> trap_counts(std::span<const u64> counts, u64 l,
                                   u64 a) const {
    return counts.subspan(trap_offset(l, a), trap_size(l, a));
  }

 private:
  u64 n_;
  u64 m_;
  RoutingGraph graph_;
  std::vector<u64> line_offsets_;      // per line
  std::vector<u64> trap_offsets_;      // per (line, trap), flattened
  std::vector<u32> line_of_;           // per state
  std::vector<u32> trap_of_;           // per state (trap index within line)
  std::vector<u64> trap_offset_of_;    // per state
  std::vector<StateId> route_target_;  // per state
};

}  // namespace pp
