#include "structures/interaction_graph.hpp"

#include <algorithm>
#include <queue>

#include "common/assert.hpp"
#include "rng/random.hpp"

namespace pp {

const char* graph_kind_name(GraphKind k) {
  switch (k) {
    case GraphKind::kComplete:
      return "complete";
    case GraphKind::kCycle:
      return "cycle";
    case GraphKind::kPath:
      return "path";
    case GraphKind::kRandomRegular:
      return "random-regular";
    case GraphKind::kRouting:
      return "routing";
  }
  return "?";
}

InteractionGraph::InteractionGraph(u64 n,
                                   std::vector<std::pair<u32, u32>> edges,
                                   std::string description)
    : n_(n), edges_(std::move(edges)), description_(std::move(description)) {
  PP_ASSERT_MSG(n_ >= 2, "interaction graph needs at least two vertices");
  PP_ASSERT_MSG(!edges_.empty(), "interaction graph needs at least one edge");
  // Directed edge ids (2 * edge + orientation) are u32 throughout the
  // graph-restricted scheduler; reject graphs that would overflow them
  // (complete graphs beyond n ~ 65536) instead of sampling a biased edge
  // subset silently.
  PP_ASSERT_MSG(edges_.size() < (static_cast<u64>(1) << 31),
                "interaction graph too large: directed edge ids must fit u32");
  incident_.resize(n_);
  for (u32 e = 0; e < edges_.size(); ++e) {
    const auto [u, v] = edges_[e];
    PP_ASSERT_MSG(u < n_ && v < n_, "edge endpoint out of range");
    PP_ASSERT_MSG(u != v, "interaction graphs have no self-loops");
    incident_[u].push_back(e);
    incident_[v].push_back(e);
  }
}

namespace {

// Directed edge ids (2 * edge + orientation) are u32 throughout the
// graph-restricted scheduler, so every builder rejects oversized requests
// *before* allocating the edge list (a complete graph's is Θ(n^2)).
constexpr u64 kMaxEdges = static_cast<u64>(1) << 31;

void check_buildable(u64 n, u64 edge_count) {
  PP_ASSERT_MSG(n >= 2, "interaction graph needs at least two vertices");
  PP_ASSERT_MSG(edge_count < kMaxEdges,
                "interaction graph too large: directed edge ids must fit u32");
}

}  // namespace

InteractionGraph InteractionGraph::complete(u64 n) {
  check_buildable(n, n * (n - 1) / 2);  // caps n at 65536
  std::vector<std::pair<u32, u32>> edges;
  edges.reserve(n * (n - 1) / 2);
  for (u64 u = 0; u < n; ++u) {
    for (u64 v = u + 1; v < n; ++v) {
      edges.emplace_back(static_cast<u32>(u), static_cast<u32>(v));
    }
  }
  return InteractionGraph(n, std::move(edges), "complete");
}

InteractionGraph InteractionGraph::cycle(u64 n) {
  check_buildable(n, n);
  std::vector<std::pair<u32, u32>> edges;
  edges.reserve(n);
  for (u64 u = 0; u < n; ++u) {
    edges.emplace_back(static_cast<u32>(u), static_cast<u32>((u + 1) % n));
  }
  return InteractionGraph(n, std::move(edges), "cycle");
}

InteractionGraph InteractionGraph::path(u64 n) {
  check_buildable(n, n - 1);
  std::vector<std::pair<u32, u32>> edges;
  edges.reserve(n - 1);
  for (u64 u = 0; u + 1 < n; ++u) {
    edges.emplace_back(static_cast<u32>(u), static_cast<u32>(u + 1));
  }
  return InteractionGraph(n, std::move(edges), "path");
}

InteractionGraph InteractionGraph::random_regular(u64 n, u64 d, u64 seed) {
  // Infeasible parameters are rejected up front, with the failing
  // constraint spelled out, *before* the configuration-model resampling
  // loop below gets a chance to spin on a request it can never satisfy:
  // a d-regular graph needs d < n and an even number n*d of stubs, and
  // the model's acceptance probability ~exp(-(d^2-1)/4) makes degrees
  // beyond 6 hopeless at any attempt budget.
  PP_ASSERT_MSG(d >= 1 && d < n, "random_regular needs 1 <= d < n");
  PP_ASSERT_MSG((n * d) % 2 == 0, "random_regular needs n*d even");
  PP_ASSERT_MSG(d <= 6,
                "random_regular needs d <= 6: the configuration model's "
                "acceptance probability ~exp(-(d^2-1)/4) vanishes beyond");
  check_buildable(n, n * d / 2);
  Rng rng(seed);
  std::vector<std::pair<u32, u32>> edges;
  // Configuration model with rejection: pair up d stubs per vertex and
  // resample whenever the pairing has a self-loop or a parallel edge.  The
  // acceptance probability tends to exp(-(d^2-1)/4) — constant in n — so
  // for the d <= 6 accepted above the attempt cap never triggers in
  // practice (d = 6 succeeds ~16 times per 100000 attempts in
  // expectation).
  std::vector<u32> stubs(n * d);
  for (u64 i = 0; i < stubs.size(); ++i) {
    stubs[i] = static_cast<u32>(i / d);
  }
  for (int attempt = 0; attempt < 100000; ++attempt) {
    rng.shuffle(stubs);
    edges.clear();
    bool simple = true;
    for (u64 i = 0; simple && i < stubs.size(); i += 2) {
      u32 u = stubs[i];
      u32 v = stubs[i + 1];
      if (u == v) {
        simple = false;
        break;
      }
      if (u > v) std::swap(u, v);
      edges.emplace_back(u, v);
    }
    if (!simple) continue;
    std::sort(edges.begin(), edges.end());
    if (std::adjacent_find(edges.begin(), edges.end()) != edges.end()) {
      continue;
    }
    return InteractionGraph(n, std::move(edges),
                            describe(GraphKind::kRandomRegular, d, seed));
  }
  PP_ASSERT_MSG(false, "configuration model failed to produce a simple "
                       "d-regular graph (d too large for n?)");
  return InteractionGraph(n, std::move(edges), "unreachable");
}

InteractionGraph InteractionGraph::from_routing(const RoutingGraph& g) {
  std::vector<std::pair<u32, u32>> edges;
  edges.reserve(g.num_vertices() * 3 / 2);
  // Each undirected edge occupies one slot at both endpoints; emitting only
  // the slots with v < w keeps parallel edges (the m = 2 multigraph case)
  // with their correct multiplicity.
  for (u32 v = 0; v < g.num_vertices(); ++v) {
    for (const u32 w : g.neighbours(v)) {
      if (v < w) edges.emplace_back(v, w);
    }
  }
  return InteractionGraph(g.num_vertices(), std::move(edges), "routing");
}

InteractionGraph InteractionGraph::make(GraphKind kind, u64 n, u64 degree,
                                        u64 seed) {
  switch (kind) {
    case GraphKind::kComplete:
      return complete(n);
    case GraphKind::kCycle:
      return cycle(n);
    case GraphKind::kPath:
      return path(n);
    case GraphKind::kRandomRegular:
      return random_regular(n, degree, seed);
    case GraphKind::kRouting: {
      u64 m = 0;
      while ((m + 1) * (m + 1) <= n) ++m;
      PP_ASSERT_MSG(m * m == n && m >= 2 && m % 2 == 0,
                    "routing topology needs n = m^2 for an even m >= 2");
      return from_routing(RoutingGraph(m));
    }
  }
  PP_ASSERT_MSG(false, "unknown GraphKind");
  return complete(n);
}

std::string InteractionGraph::describe(GraphKind kind, u64 degree, u64 seed) {
  if (kind == GraphKind::kRandomRegular) {
    // A non-default seed is part of the identity (and so of the display
    // name): two topologies differing only in seed must not collide in
    // scheduler names, sinks or BENCH labels.
    std::string out = "random-" + std::to_string(degree) + "-regular";
    if (seed != 1) out += "/g" + std::to_string(seed);
    return out;
  }
  return graph_kind_name(kind);
}

bool InteractionGraph::connected() const {
  std::vector<bool> seen(n_, false);
  std::queue<u32> q;
  seen[0] = true;
  q.push(0);
  u64 reached = 1;
  while (!q.empty()) {
    const u32 u = q.front();
    q.pop();
    for (const u32 e : incident_[u]) {
      const auto [a, b] = edges_[e];
      const u32 w = (a == u) ? b : a;
      if (!seen[w]) {
        seen[w] = true;
        ++reached;
        q.push(w);
      }
    }
  }
  return reached == n_;
}

}  // namespace pp
