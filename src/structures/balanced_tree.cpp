#include "structures/balanced_tree.hpp"

#include <sstream>
#include <utility>

#include "common/assert.hpp"

namespace pp {

BalancedTree::BalancedTree(u64 size) : size_(size) {
  PP_ASSERT_MSG(size >= 1, "BalancedTree requires size >= 1");
  nodes_.resize(size_);
  // Iterative construction with an explicit work list of
  // (pre-order id, subtree size, parent, depth) records; avoids deep
  // recursion for degenerate chains (size = 2^k gives depth ~ 2 log n, but
  // we stay iterative on principle).
  struct Item {
    StateId id;
    u64 k;
    StateId parent;
    u32 depth;
  };
  std::vector<Item> stack;
  stack.push_back({0, size_, kNoState, 0});
  while (!stack.empty()) {
    const Item it = stack.back();
    stack.pop_back();
    Node& node = nodes_[it.id];
    node.parent = it.parent;
    node.depth = it.depth;
    node.subtree = it.k;
    if (it.depth > height_) height_ = it.depth;
    if (it.k == 1) {
      continue;  // leaf
    }
    if (it.k % 2 == 0) {
      // Non-branching node: single child rooting a subtree of size k-1.
      node.left = it.id + 1;
      stack.push_back({node.left, it.k - 1, it.id, it.depth + 1});
    } else {
      // Branching node: two identical subtrees of size l = (k-1)/2.
      const u64 l = (it.k - 1) / 2;
      PP_DCHECK(l >= 1);
      node.left = it.id + 1;
      node.right = static_cast<StateId>(it.id + l + 1);
      stack.push_back({node.left, l, it.id, it.depth + 1});
      stack.push_back({node.right, l, it.id, it.depth + 1});
    }
  }
  for (StateId p = 0; p < size_; ++p) {
    if (is_leaf(p)) leaves_.push_back(p);
  }
}

std::string BalancedTree::to_string() const {
  std::ostringstream out;
  // Depth-first rendering with box-drawing prefixes.
  struct Frame {
    StateId id;
    std::string prefix;
    bool last;
    bool root;
  };
  std::vector<Frame> stack;
  stack.push_back({0, "", true, true});
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    if (f.root) {
      out << f.id << '\n';
    } else {
      out << f.prefix << (f.last ? "`-- " : "|-- ") << f.id << '\n';
    }
    const std::string child_prefix =
        f.root ? "" : f.prefix + (f.last ? "    " : "|   ");
    // Push right first so left pops (and prints) first.
    if (is_branching(f.id)) {
      stack.push_back({right_child(f.id), child_prefix, true, false});
      stack.push_back({left_child(f.id), child_prefix, false, false});
    } else if (!is_leaf(f.id)) {
      stack.push_back({left_child(f.id), child_prefix, true, false});
    }
  }
  return std::move(out).str();
}

}  // namespace pp
