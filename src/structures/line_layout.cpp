#include "structures/line_layout.hpp"

#include "common/assert.hpp"

namespace pp {
namespace {

u64 pick_m(u64 n) {
  PP_ASSERT_MSG(n >= 72, "LineLayout requires n >= 72 (canonical m = 2)");
  u64 m = 2;
  while (LineLayout::canonical_n(m + 2) <= n) m += 2;
  return m;
}

}  // namespace

LineLayout::LineLayout(u64 n) : n_(n), m_(pick_m(n)), graph_(m_) {
  const u64 lines = num_lines();
  const u64 traps = traps_per_line();

  line_offsets_.reserve(lines);
  trap_offsets_.reserve(lines * traps);
  line_of_.resize(n);
  trap_of_.resize(n);
  trap_offset_of_.resize(n);
  route_target_.resize(n);

  const u64 line_base = n / lines;
  const u64 line_rem = n % lines;
  u64 off = 0;
  for (u64 l = 0; l < lines; ++l) {
    line_offsets_.push_back(off);
    const u64 lsize = line_base + (l < line_rem ? 1 : 0);
    PP_ASSERT_MSG(lsize >= traps * 2,
                  "line too small: every trap needs a gate and an inner state");
    const u64 trap_base = lsize / traps;
    const u64 trap_rem = lsize % traps;
    u64 toff = off;
    for (u64 a = 0; a < traps; ++a) {
      trap_offsets_.push_back(toff);
      const u64 tsize = trap_base + (a < trap_rem ? 1 : 0);
      for (u64 b = 0; b < tsize; ++b) {
        const u64 s = toff + b;
        line_of_[s] = static_cast<u32>(l);
        trap_of_[s] = static_cast<u32>(a);
        trap_offset_of_[s] = toff;
      }
      toff += tsize;
    }
    PP_ASSERT(toff == off + lsize);
    off += lsize;
  }
  PP_ASSERT(off == n);

  // Precompute routing targets; needs all entrance gates laid out first.
  for (u64 s = 0; s < n; ++s) {
    const u64 l = line_of_[s];
    const u32 slot = slot_of_trap(trap_of_[s]);
    const u32 target_line = graph_.neighbour(static_cast<u32>(l), slot);
    route_target_[s] = entrance_gate(target_line);
  }
}

}  // namespace pp
