#include "structures/ring_layout.hpp"

#include <cmath>

#include "common/assert.hpp"
#include "structures/trap.hpp"

namespace pp {

namespace {

u64 canonical_traps(u64 n) {
  // Largest m with m(m+1) <= n.
  u64 m = static_cast<u64>(
      (std::sqrt(4.0 * static_cast<double>(n) + 1.0) - 1.0) / 2.0);
  while (m * (m + 1) > n) --m;
  while ((m + 1) * (m + 2) <= n) ++m;
  return m;
}

}  // namespace

RingLayout::RingLayout(u64 n) : RingLayout(n, canonical_traps(n)) {}

RingLayout::RingLayout(u64 n, u64 m) : n_(n) {
  PP_ASSERT_MSG(n >= 2, "RingLayout requires n >= 2");
  PP_ASSERT_MSG(m >= 1 && m <= n, "trap count out of range");

  const u64 base = n / m;
  const u64 rem = n % m;
  offsets_.reserve(m);
  trap_of_.resize(n);
  u64 off = 0;
  for (u64 a = 0; a < m; ++a) {
    offsets_.push_back(off);
    const u64 size = base + (a < rem ? 1 : 0);
    for (u64 b = 0; b < size; ++b) trap_of_[off + b] = static_cast<u32>(a);
    off += size;
    if (size > max_size_) max_size_ = size;
  }
  PP_ASSERT(off == n);
}

u64 RingLayout::lemma3_weight(std::span<const u64> counts) const {
  PP_ASSERT(counts.size() == n_);
  u64 k1 = 0;
  u64 k2 = 0;
  for (u64 a = 0; a < num_traps(); ++a) {
    const auto slice = trap_counts(counts, a);
    k2 += trap::gaps(slice);
    if (trap::is_flat(slice) && slice[0] == 0) ++k1;
  }
  return k1 + 2 * k2;
}

}  // namespace pp
