// Perfectly balanced binary trees (paper §5, Figure 2).
//
// The tree of size k is built recursively from its root:
//   * k odd (k = 2l+1): the root is a *branching* node with two children
//     that root identical perfectly balanced subtrees of size l;
//   * k even: the root is a *non-branching* node whose single child roots a
//     subtree of size k-1;
//   * k = 1 is a leaf; k = 0 is the empty tree.
//
// Nodes are identified by their pre-order number p in [0, n): the root is 0,
// a lone child of p is p+1, and the children of a branching node p are p+1
// (left) and p+l+1 (right) where l is the common subtree size.
//
// Properties guaranteed by the construction (asserted in tests):
//   * all nodes at the same depth are uniform (same arity, same subtree
//     size), and
//   * the height h satisfies h <= 2 log2 n.
//
// The §5 ranking protocol spans all n rank states over this tree; its rule
// R1 routes colliding agents down the tree, and leaves trigger the reset.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"

namespace pp {

class BalancedTree {
 public:
  /// Builds the perfectly balanced tree with `size` nodes (size >= 1).
  explicit BalancedTree(u64 size);

  u64 size() const { return size_; }

  /// True if node p has exactly two children.
  bool is_branching(StateId p) const { return nodes_[p].right != kNoState; }

  /// True if node p has no children.
  bool is_leaf(StateId p) const { return nodes_[p].left == kNoState; }

  /// Left (or only) child of p; kNoState when p is a leaf.
  StateId left_child(StateId p) const { return nodes_[p].left; }

  /// Right child of p; kNoState unless p is a branching node.
  StateId right_child(StateId p) const { return nodes_[p].right; }

  /// Parent of p; kNoState for the root.
  StateId parent(StateId p) const { return nodes_[p].parent; }

  /// Distance from the root.
  u32 depth(StateId p) const { return nodes_[p].depth; }

  /// Number of nodes in the subtree rooted at p (including p).
  u64 subtree_size(StateId p) const { return nodes_[p].subtree; }

  /// Tree height: max depth over all nodes.
  u32 height() const { return height_; }

  /// Pre-order numbers of all leaves, ascending.
  const std::vector<StateId>& leaves() const { return leaves_; }

  /// Multi-line ASCII rendering (small trees only); used by the
  /// `visualize_structures` example to regenerate Figure 2.
  std::string to_string() const;

 private:
  struct Node {
    StateId left = kNoState;
    StateId right = kNoState;
    StateId parent = kNoState;
    u32 depth = 0;
    u64 subtree = 0;
  };

  u64 size_;
  u32 height_ = 0;
  std::vector<Node> nodes_;
  std::vector<StateId> leaves_;
};

}  // namespace pp
