#include "runner/sink.hpp"

#include <cmath>
#include <cstdio>

#include "common/assert.hpp"
#include "obs/trace.hpp"

namespace pp {
namespace {

std::unique_ptr<std::ofstream> open_or_die(const std::string& path) {
  auto f = std::make_unique<std::ofstream>(path);
  PP_ASSERT_MSG(f->good(), "sink: cannot open output file");
  return f;
}

/// Round-trip-exact double formatting (17 significant digits).  NaN/inf
/// would serialize as bare tokens no CSV/JSON reader agrees on, and every
/// producer upstream (Summary, RunningStat, RunResult) is clamped to stay
/// finite on degenerate inputs — a non-finite value reaching a sink is a
/// pipeline bug, caught here rather than in whatever parses the artifact.
std::string fmt(double v) {
  PP_ASSERT_MSG(std::isfinite(v), "sink: non-finite value in output record");
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string spec_name(const TrialSpec& spec) {
  return spec.protocol.empty() ? std::string("custom") : spec.protocol;
}

// The engine column must keep records self-describing: a bare "scheduled"
// would make every scheduler variant serialize identically, so emit the
// concrete interaction model instead (e.g. "graph-restricted[cycle]").
std::string engine_detail(const TrialSpec& spec) {
  if (spec.engine == EngineKind::kScheduled) return spec.scheduler.to_string();
  return engine_kind_name(spec.engine);
}

}  // namespace

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// ---- CSV -----------------------------------------------------------------

CsvSink::CsvSink(const std::string& path)
    : file_(open_or_die(path)),
      out_(file_.get()),
      manifest_(obs::ManifestWriter::open(path, 0)) {}

CsvSink::CsvSink(std::ostream& out) : out_(&out) {}

void CsvSink::set_mode(Mode m) {
  PP_ASSERT_MSG(mode_ == Mode::kUnset || mode_ == m,
                "CsvSink cannot mix trial and aggregate rows");
  if (mode_ != Mode::kUnset) return;
  mode_ = m;
  if (m == Mode::kTrials) {
    *out_ << "label,protocol,n,engine,trial,seed,parallel_time,interactions,"
             "productive_steps,fault_events,silent,valid\n";
  } else {
    *out_ << "label,protocol,n,engine,trials,threads,timeouts,invalid,"
             "fault_events,mean_parallel_time,stddev_parallel_time,"
             "min_parallel_time,max_parallel_time,wall_seconds,"
             "trials_per_sec\n";
  }
}

void CsvSink::write_trials(const TrialSpec& spec, const TrialSet& set) {
  PP_OBS_SPAN("sink-flush");
  set_mode(Mode::kTrials);
  const std::string prefix = spec.label + "," + spec_name(spec) + "," +
                             std::to_string(spec.n) + "," +
                             engine_detail(spec) + ",";
  for (const TrialRecord& r : set.records) {
    *out_ << prefix << r.trial << "," << r.seed << ","
          << fmt(r.parallel_time) << "," << r.interactions << ","
          << r.productive_steps << "," << r.fault_events << ","
          << (r.silent ? 1 : 0) << "," << (r.valid ? 1 : 0) << "\n";
  }
  out_->flush();
  manifest_.append_point(spec, set, spec.n, 0);
}

void CsvSink::write_aggregate(const TrialSpec& spec, const TrialSet& set) {
  PP_OBS_SPAN("sink-flush");
  set_mode(Mode::kAggregates);
  const AggregateStats& a = set.stats;
  *out_ << spec.label << "," << spec_name(spec) << "," << spec.n << ","
        << engine_detail(spec) << "," << a.trials << ","
        << set.threads << "," << a.timeouts << "," << a.invalid << ","
        << a.fault_events << "," << fmt(a.parallel_time.mean()) << ","
        << fmt(a.parallel_time.stddev()) << "," << fmt(a.parallel_time.min())
        << "," << fmt(a.parallel_time.max()) << "," << fmt(set.wall_seconds)
        << "," << fmt(set.trials_per_sec) << "\n";
  out_->flush();
  manifest_.append_point(spec, set, spec.n, 0);
}

// ---- JSON-lines ----------------------------------------------------------

JsonlSink::JsonlSink(const std::string& path)
    : file_(open_or_die(path)),
      out_(file_.get()),
      manifest_(obs::ManifestWriter::open(path, 0)) {}

JsonlSink::JsonlSink(std::ostream& out) : out_(&out) {}

void JsonlSink::write_trials(const TrialSpec& spec, const TrialSet& set) {
  PP_OBS_SPAN("sink-flush");
  const std::string prefix =
      "{\"kind\":\"trial\",\"label\":\"" + json_escape(spec.label) +
      "\",\"protocol\":\"" + json_escape(spec_name(spec)) +
      "\",\"n\":" + std::to_string(spec.n) + ",\"engine\":\"" +
      engine_detail(spec) + "\"";
  for (const TrialRecord& r : set.records) {
    *out_ << prefix << ",\"trial\":" << r.trial << ",\"seed\":" << r.seed
          << ",\"parallel_time\":" << fmt(r.parallel_time)
          << ",\"interactions\":" << r.interactions
          << ",\"productive_steps\":" << r.productive_steps
          << ",\"fault_events\":" << r.fault_events
          << ",\"silent\":" << (r.silent ? "true" : "false")
          << ",\"valid\":" << (r.valid ? "true" : "false") << "}\n";
  }
  out_->flush();
  manifest_.append_point(spec, set, spec.n, 0);
}

void JsonlSink::write_aggregate(const TrialSpec& spec, const TrialSet& set) {
  PP_OBS_SPAN("sink-flush");
  const AggregateStats& a = set.stats;
  *out_ << "{\"kind\":\"aggregate\",\"label\":\"" << json_escape(spec.label)
        << "\",\"protocol\":\"" << json_escape(spec_name(spec))
        << "\",\"n\":" << spec.n << ",\"engine\":\""
        << engine_detail(spec) << "\",\"trials\":" << a.trials
        << ",\"threads\":" << set.threads << ",\"timeouts\":" << a.timeouts
        << ",\"invalid\":" << a.invalid
        << ",\"fault_events\":" << a.fault_events
        << ",\"mean_parallel_time\":" << fmt(a.parallel_time.mean())
        << ",\"stddev_parallel_time\":" << fmt(a.parallel_time.stddev())
        << ",\"min_parallel_time\":" << fmt(a.parallel_time.min())
        << ",\"max_parallel_time\":" << fmt(a.parallel_time.max())
        << ",\"wall_seconds\":" << fmt(set.wall_seconds)
        << ",\"trials_per_sec\":" << fmt(set.trials_per_sec) << "}\n";
  out_->flush();
  manifest_.append_point(spec, set, spec.n, 0);
}

}  // namespace pp
