// The machine-readable perf-trajectory log behind BENCH_*.json.
//
// Every benchmark binary appends one JSON-lines record per measurement
// point; future PRs diff these files to track the performance trajectory.
// The crucial invariant — previously enforced only inside bench_common and
// untested — is that a BENCH file always describes exactly ONE run:
// opening the log truncates the file and stamps a "run" header carrying a
// per-run id, so re-running a bench can never mix stale points from a
// previous invocation into the trajectory (tests/test_bench_log.cpp).
//
// A default-constructed BenchLog is disabled and swallows writes — the
// benches keep running even when the output directory is unwritable (a
// warning is printed once at open()).
#pragma once

#include <string>

#include "common/types.hpp"
#include "obs/provenance.hpp"
#include "runner/runner.hpp"

namespace pp {

class BenchLog {
 public:
  /// Disabled log; append_point() is a no-op.
  BenchLog() = default;

  /// Metadata stamped into the run header.
  struct RunInfo {
    u64 seed = 0;
    u64 threads = 0;
    /// Effective population cap of this run (0 = uncapped).  The
    /// regression gate reads it to tell "point legitimately skipped by
    /// --max-n" apart from "point silently vanished" — only the latter
    /// may fail the gate.
    u64 max_n = 0;
    std::string size;  ///< "quick" / "standard" / "full"
  };

  /// Truncates dir/BENCH_<slug(experiment_id)>.json and writes the header:
  ///   {"kind":"run","experiment":...,"run_id":...,"seed":...,...}
  /// run_id is derived from (seed, experiment, wall clock) — two runs of
  /// the same bench get distinct ids, so any stale point is detectable
  /// even if truncation is ever lost.  Returns a disabled log (with a
  /// stderr warning) when the path is unwritable.
  static BenchLog open(const std::string& dir, const std::string& experiment_id,
                       const RunInfo& info);

  bool enabled() const { return !path_.empty(); }
  const std::string& path() const { return path_; }
  u64 run_id() const { return run_id_; }

  /// Appends one per-point record (same schema the previous inline writer
  /// produced, plus the run id).  When `spec` is given the record also
  /// carries the merged obs counters (omitted while empty, so the
  /// POPRANK_OBS=OFF schema is byte-identical to the pre-obs one) and a
  /// replayable point is appended to the BENCH file's provenance sidecar
  /// `<path>.manifest.json`.
  void append_point(const std::string& point, u64 n, double param,
                    const TrialSet& set,
                    const TrialSpec* spec = nullptr) const;

 private:
  std::string path_;
  u64 run_id_ = 0;
  obs::ManifestWriter manifest_;  ///< disabled alongside the log itself
};

}  // namespace pp
