#include "runner/bench_log.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "analysis/table.hpp"
#include "common/file_io.hpp"
#include "rng/seed_sequence.hpp"
#include "runner/sink.hpp"

namespace pp {

BenchLog BenchLog::open(const std::string& dir,
                        const std::string& experiment_id,
                        const RunInfo& info) {
  BenchLog log;
  const std::string path =
      (dir.empty() ? std::string(".") : dir) + "/BENCH_" +
      slugify(experiment_id) + ".json";
  // poprank-lint: allow(R1): run ids are wall-clock-salted by design so two
  // invocations of the same bench never collide; no trial result reads them.
  const u64 now = static_cast<u64>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(  // poprank-lint: allow(R1)
          std::chrono::system_clock::now().time_since_epoch())  // poprank-lint: allow(R1)
          .count());
  // A process-local counter keeps ids distinct even where system_clock
  // ticks coarser than the gap between two open() calls.
  static std::atomic<u64> open_count{0};
  const u64 nonce = open_count.fetch_add(1, std::memory_order_relaxed);
  const u64 run_id = derive_seed(info.seed ^ now, experiment_id, nonce);

  // Truncate: one file == one run.  Records from a previous invocation
  // must never survive into this run's trajectory.
  std::ofstream f(path, std::ios::trunc);
  if (!f.good()) {
    std::fprintf(stderr, "WARNING: cannot write %s; BENCH records dropped\n",
                 path.c_str());
    return log;
  }
  f << "{\"kind\":\"run\",\"experiment\":\"" << json_escape(experiment_id)
    << "\",\"run_id\":" << run_id << ",\"seed\":" << info.seed
    << ",\"threads\":" << info.threads << ",\"max_n\":" << info.max_n
    << ",\"size\":\"" << json_escape(info.size) << "\"}\n";
  log.path_ = path;
  log.run_id_ = run_id;
  log.manifest_ = obs::ManifestWriter::open(path, run_id);
  return log;
}

void BenchLog::append_point(const std::string& point, u64 n, double param,
                            const TrialSet& set,
                            const TrialSpec* spec) const {
  if (!enabled()) return;
  // The record is composed in memory and appended with one O_APPEND
  // write (common/file_io.hpp): concurrent writers — service worker
  // shards, or two benches pointed at one CSV dir — can interleave whole
  // records but never bytes within one, so the JSON-lines file stays
  // parseable.  (An ofstream in app mode flushes in unspecified slices
  // and gives no such guarantee.)
  std::ostringstream f;
  char num[40];
  f << "{\"kind\":\"point\",\"run_id\":" << run_id_ << ",\"point\":\""
    << json_escape(point) << "\",\"n\":" << n;
  std::snprintf(num, sizeof(num), "%.6g", param);
  f << ",\"param\":" << num << ",\"trials\":" << set.stats.trials
    << ",\"threads\":" << set.threads;
  std::snprintf(num, sizeof(num), "%.6g", set.wall_seconds);
  f << ",\"wall_seconds\":" << num;
  std::snprintf(num, sizeof(num), "%.6g", set.trials_per_sec);
  f << ",\"trials_per_sec\":" << num;
  std::snprintf(num, sizeof(num), "%.17g", set.stats.parallel_time.mean());
  f << ",\"mean_parallel_time\":" << num
    << ",\"timeouts\":" << set.stats.timeouts
    << ",\"invalid\":" << set.stats.invalid;
  // Counters ride along only when something was recorded, so BENCH records
  // from a POPRANK_OBS=OFF build (and the committed regression baselines)
  // keep their exact pre-obs schema.
  if (!set.counters.deterministic_empty()) {
    f << ",\"counters\":" << set.counters.to_json();
  }
  f << "}";
  append_line(path_, f.str());  // silently dropped if the path went bad
  if (spec != nullptr) manifest_.append_point(*spec, set, n, param);
}

}  // namespace pp
