#include "runner/thread_pool.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace pp {

u64 ThreadPool::resolve_threads(u64 threads) {
  if (threads == 0) {
    threads = std::max<u64>(1, std::thread::hardware_concurrency());
  }
  return threads;
}

ThreadPool::ThreadPool(u64 threads) {
  threads = resolve_threads(threads);
  workers_.reserve(threads - 1);
  for (u64 i = 0; i + 1 < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_ready_.notify_all();
  for (auto& w : workers_) w.join();
}

u64 ThreadPool::chunk_size(u64 count, u64 threads) {
  // Small enough that slow trials do not strand work on one thread (8
  // chunks per thread), large enough to amortise the fetch_add.
  return std::max<u64>(1, count / (threads * 8));
}

void ThreadPool::parallel_for(u64 count, const std::function<void(u64)>& fn) {
  if (count == 0) return;
  if (workers_.empty()) {
    // Single-threaded pool: no scheduling at all, plain loop.
    for (u64 i = 0; i < count; ++i) fn(i);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    PP_ASSERT_MSG(job_fn_ == nullptr, "nested parallel_for on one pool");
    job_count_ = count;
    job_chunk_ = chunk_size(count, size());
    job_fn_ = &fn;
    cursor_.store(0, std::memory_order_relaxed);
    completed_ = 0;
    ++generation_;
  }
  work_ready_.notify_all();

  const u64 mine = drain_current_job();

  std::unique_lock<std::mutex> lock(mu_);
  completed_ += mine;
  // Wait until every index ran AND every attached worker detached: only
  // then is it safe to retire the job (and, back in the caller, to destroy
  // fn or submit the next job).
  job_done_.wait(lock, [&] { return completed_ == job_count_ && active_ == 0; });
  job_fn_ = nullptr;
}

u64 ThreadPool::drain_current_job() {
  // job_count_/job_chunk_/job_fn_ are stable for the whole job: the caller
  // cannot retire or replace the job while this thread is attached, and
  // attachment happened under mu_ (workers) or the fields were written by
  // this thread itself (the caller).
  const u64 count = job_count_;
  const u64 chunk = job_chunk_;
  const std::function<void(u64)>& fn = *job_fn_;
  u64 processed = 0;
  while (true) {
    const u64 begin = cursor_.fetch_add(chunk, std::memory_order_relaxed);
    if (begin >= count) break;
    const u64 end = std::min(begin + chunk, count);
    for (u64 i = begin; i < end; ++i) fn(i);
    processed += end - begin;
  }
  return processed;
}

void ThreadPool::worker_loop() {
  u64 seen_generation = 0;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_ready_.wait(
          lock, [&] { return stop_ || generation_ != seen_generation; });
      if (stop_) return;
      seen_generation = generation_;
      // The job this generation announced may already be fully drained and
      // retired (every index ran before this thread got the lock).  Only
      // attach while the job is live; otherwise go back to waiting.
      if (job_fn_ == nullptr) continue;
      ++active_;
    }
    const u64 mine = drain_current_job();
    {
      std::lock_guard<std::mutex> lock(mu_);
      completed_ += mine;
      --active_;
      if (completed_ == job_count_ && active_ == 0) job_done_.notify_all();
    }
  }
}

}  // namespace pp
