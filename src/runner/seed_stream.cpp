#include "runner/seed_stream.hpp"

#include "rng/splitmix64.hpp"

namespace pp {

u64 SeedStream::sub_seed(u64 trial, std::string_view component) const {
  // Chain two derivations: first down to the trial, then into the named
  // component.  mix64 decorrelates the trial seed from its own use as the
  // trial's main stream seed.
  return derive_seed(mix64(trial_seed(trial)), component, trial);
}

}  // namespace pp
