// Per-trial RNG derivation for the parallel runner.
//
// Every trial owns an independent random stream derived from
// (master seed, label, trial index) via the library-wide derive_seed()
// (FNV-1a + SplitMix64, rng/seed_sequence.hpp).  Because a trial's stream
// depends only on those three values — never on which thread ran it or in
// what order — the runner's results are bit-identical for any thread count,
// and identical to the legacy serial harness (analysis/experiment.cpp),
// which uses the same derivation.
#pragma once

#include <string>
#include <string_view>

#include "common/types.hpp"
#include "rng/random.hpp"
#include "rng/seed_sequence.hpp"

namespace pp {

class SeedStream {
 public:
  SeedStream(u64 master, std::string_view label)
      : master_(master), label_(label) {}

  /// The 64-bit seed of trial `trial`.
  u64 trial_seed(u64 trial) const {
    return derive_seed(master_, label_, trial);
  }

  /// A fresh generator positioned at the start of trial `trial`'s stream.
  Rng trial_rng(u64 trial) const { return Rng(trial_seed(trial)); }

  /// A named sub-seed inside one trial, for components that must not share
  /// a stream (e.g. the initial-configuration generator vs. a fault
  /// injector).  Distinct components of the same trial, and the same
  /// component of distinct trials, get independent streams.
  u64 sub_seed(u64 trial, std::string_view component) const;
  Rng sub_rng(u64 trial, std::string_view component) const {
    return Rng(sub_seed(trial, component));
  }

  u64 master() const { return master_; }
  const std::string& label() const { return label_; }

 private:
  u64 master_;
  std::string label_;
};

}  // namespace pp
