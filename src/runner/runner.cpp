#include "runner/runner.hpp"

#include <chrono>

#include "common/assert.hpp"
#include "core/initial.hpp"
#include "obs/trace.hpp"
#include "obs/watchdog.hpp"
#include "protocols/factory.hpp"

namespace pp {

const char* engine_kind_name(EngineKind k) {
  switch (k) {
    case EngineKind::kAccelerated:
      return "accelerated";
    case EngineKind::kUniform:
      return "uniform";
    case EngineKind::kScheduled:
      return "scheduled";
  }
  return "?";
}

ProtocolFactory TrialSpec::resolve_factory() const {
  if (factory) return factory;
  PP_ASSERT_MSG(!protocol.empty() && n > 0,
                "TrialSpec needs either a factory or protocol+n");
  const std::string name = protocol;
  const u64 size = n;
  return [name, size] { return make_protocol(name, size); };
}

void AggregateStats::fold(const TrialRecord& r) {
  ++trials;
  if (!r.silent) {
    ++timeouts;
  } else if (!r.valid) {
    ++invalid;
  }
  fault_events += r.fault_events;
  parallel_time.push(r.parallel_time);
  interactions.push(static_cast<double>(r.interactions));
  productive_steps.push(static_cast<double>(r.productive_steps));
}

Summary TrialSet::summary() const {
  PP_ASSERT_MSG(!records.empty(), "summary() needs keep_records");
  return summarize(parallel_times());
}

std::vector<double> TrialSet::parallel_times() const {
  std::vector<double> out;
  out.reserve(records.size());
  for (const TrialRecord& r : records) out.push_back(r.parallel_time);
  return out;
}

namespace {

// The fan-out kernel.  `shared_scheduler` lets run_trials() build one
// (immutable, thread-safe) scheduler for the whole trial set instead of
// once per trial — graph topologies can be O(n^2) to construct.
TrialRecord run_one_trial_impl(const TrialSpec& spec, u64 trial_index,
                               u64 seed, const Scheduler* shared_scheduler,
                               obs::CounterBlock* block) {
#if PP_OBS
  const u64 t0_us = obs::now_us();
#endif
  // The block is per *trial*, so the merged counters inherit the runner's
  // thread-count-independent determinism.  Step tracing is per-thread
  // state scoped to the one flagged trial.
  obs::ScopedCounters counters(block);
  const bool step_trace = trial_index == obs::flagged_trial();
  if (step_trace) obs::set_step_trace(true);
  Rng rng(seed);
  ProtocolPtr p;
  {
    PP_OBS_SPAN("trial-setup", "\"trial\":" + std::to_string(trial_index));
    p = spec.resolve_factory()();
    if (spec.init) {
      p->reset(spec.init(*p, rng));
    } else {
      p->reset(initial::uniform_random(*p, rng));
    }
  }
  RunResult r;
  {
    PP_OBS_SPAN("scheduler-run",
                "\"trial\":" + std::to_string(trial_index));
    switch (spec.engine) {
      case EngineKind::kAccelerated: {
        RunOptions ro;
        ro.max_interactions = spec.max_interactions;
        r = run_accelerated(*p, rng, ro);
        break;
      }
      case EngineKind::kUniform: {
        RunOptions ro;
        ro.max_interactions = spec.max_interactions;
        r = run_uniform(*p, rng, ro);
        break;
      }
      case EngineKind::kScheduled: {
        SchedulerPtr own;
        const Scheduler* s = shared_scheduler;
        if (s == nullptr) {
          own = make_scheduler(spec.scheduler, p->num_agents());
          s = own.get();
        }
        RunOptions ro;
        ro.max_interactions = spec.max_interactions;
        r = s->run(*p, rng, ro);
        break;
      }
    }
  }
  if (step_trace) obs::set_step_trace(false);
#if PP_OBS
  if (block != nullptr) block->wall_us = obs::now_us() - t0_us;
#endif
  TrialRecord rec;
  rec.trial = trial_index;
  rec.seed = seed;
  rec.interactions = r.interactions;
  rec.productive_steps = r.productive_steps;
  rec.fault_events = r.fault_events;
  rec.parallel_time = r.parallel_time;
  rec.silent = r.silent;
  rec.valid = r.valid;
  return rec;
}

}  // namespace

TrialRecord run_one_trial(const TrialSpec& spec, u64 trial_index, u64 seed) {
  return run_one_trial_impl(spec, trial_index, seed, nullptr, nullptr);
}

TrialRange run_trial_range(const TrialSpec& spec, u64 master_seed, u64 begin,
                           u64 end,
                           const std::function<void(u64)>& after_trial) {
  PP_ASSERT(begin <= end);
  obs::init_from_env();
  const SeedStream seeds(master_seed, spec.label);

  // Same sharing discipline as run_trials(): expensive per-spec state
  // (topologies, kernel tables) is built once per range, not per trial.
  SchedulerPtr shared_scheduler;
  if (spec.engine == EngineKind::kScheduled && begin < end) {
    const ProtocolPtr probe = spec.resolve_factory()();
    shared_scheduler = make_scheduler(spec.scheduler, probe->num_agents());
  }

  TrialRange out;
  out.begin = begin;
  out.end = end;
  out.records.reserve(end - begin);
  for (u64 t = begin; t < end; ++t) {
#if PP_OBS
    obs::CounterBlock block;
    obs::CounterBlock* const block_ptr = &block;
#else
    obs::CounterBlock* const block_ptr = nullptr;
#endif
    out.records.push_back(run_one_trial_impl(spec, t, seeds.trial_seed(t),
                                             shared_scheduler.get(),
                                             block_ptr));
#if PP_OBS
    out.counters.merge(block);
#endif
    if (after_trial) after_trial(t);
  }
  return out;
}

TrialSet run_trials(const TrialSpec& spec, const RunnerOptions& opt,
                    ThreadPool& pool) {
  PP_ASSERT(opt.trials >= 1);
  obs::init_from_env();  // POPRANK_TRACE / POPRANK_TRACE_TRIAL, idempotent
  const SeedStream seeds(opt.master_seed, spec.label);

  // One scheduler for the whole set: Scheduler::run is const and all
  // per-run state is local, so threads can share the instance.
  SchedulerPtr shared_scheduler;
  if (spec.engine == EngineKind::kScheduled) {
    const ProtocolPtr probe = spec.resolve_factory()();
    shared_scheduler = make_scheduler(spec.scheduler, probe->num_agents());
  }

  TrialSet out;
  out.threads = pool.size();
  out.master_seed = opt.master_seed;
  out.records.resize(opt.trials);

#if PP_OBS
  // One counter block per trial (merged in trial order below); skipped
  // entirely when the layer is compiled out.
  std::vector<obs::CounterBlock> blocks(opt.trials);
  obs::CounterBlock* const blocks_data = blocks.data();
#else
  obs::CounterBlock* const blocks_data = nullptr;
#endif

  // Heartbeat / stall watchdog, armed only via the environment
  // (POPRANK_HEARTBEAT / POPRANK_STALL_TIMEOUT).
  obs::ProgressMonitor monitor(
      obs::watchdog_options_from_env(spec.label, opt.trials, spec.n));

  // wall_seconds / trials_per_sec are documented as outside the
  // determinism contract, hence:
  // poprank-lint: allow(R1): wall-clock throughput bookkeeping only
  const auto t0 = std::chrono::steady_clock::now();
  // Each trial writes only records[t]; no cross-thread state.  The shared
  // spec is read-only (resolve_factory() copies what it captures).
  pool.parallel_for(opt.trials, [&](u64 t) {
    monitor.trial_started(t);
    out.records[t] =
        run_one_trial_impl(spec, t, seeds.trial_seed(t),
                           shared_scheduler.get(),
                           blocks_data == nullptr ? nullptr : blocks_data + t);
    monitor.trial_finished(t, out.records[t].interactions);
  });
  // poprank-lint: allow(R1): ditto — throughput bookkeeping only.
  const auto t1 = std::chrono::steady_clock::now();
  out.wall_seconds = std::chrono::duration<double>(t1 - t0).count();  // poprank-lint: allow(R1)
  out.trials_per_sec = out.wall_seconds > 0
                           ? static_cast<double>(opt.trials) / out.wall_seconds
                           : 0.0;

  // Deterministic aggregation: fold in trial-index order, never in
  // completion order.
  for (const TrialRecord& r : out.records) out.stats.fold(r);
#if PP_OBS
  for (const obs::CounterBlock& b : blocks) out.counters.merge(b);
#endif
  if (!opt.keep_records) {
    out.records.clear();
    out.records.shrink_to_fit();
  }
  return out;
}

TrialSet run_trials(const TrialSpec& spec, const RunnerOptions& opt) {
  ThreadPool pool(opt.threads);
  return run_trials(spec, opt, pool);
}

}  // namespace pp
