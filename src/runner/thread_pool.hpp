// A small persistent thread pool with a chunked dynamic index queue.
//
// The runner's unit of work is "run trial i", so the pool only needs one
// primitive: parallel_for(count, fn), which invokes fn(i) exactly once for
// every i in [0, count), distributing contiguous chunks of indices to
// whichever thread is free (an atomic fetch_add on the shared cursor — the
// classic dynamic-chunk scheme, which keeps threads busy even when trial
// durations vary by orders of magnitude, as stabilisation times do).
//
// The calling thread participates as a worker, so ThreadPool(1) spawns no
// threads at all and runs everything inline — handy both for debugging and
// as the baseline of the determinism tests.  Correctness of the runner
// never depends on the schedule: trials write only to their own slot of a
// preallocated results array.
#pragma once

#include <atomic>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/types.hpp"

namespace pp {

class ThreadPool {
 public:
  /// Creates a pool of `threads` workers total, *including* the caller of
  /// parallel_for; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(u64 threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total worker count (spawned threads + the calling thread).
  u64 size() const { return workers_.size() + 1; }

  /// Runs fn(i) once for every i in [0, count); blocks until all calls
  /// have returned.  fn must not throw and must not call parallel_for on
  /// the same pool (no nesting).
  void parallel_for(u64 count, const std::function<void(u64)>& fn);

  /// Largest number of indices handed to a thread at once for a job of
  /// `count` indices over `threads` workers (exposed for tests).
  static u64 chunk_size(u64 count, u64 threads);

  /// The worker count a pool built with `threads` will have (0 resolves to
  /// hardware concurrency); shared by the constructor and callers that
  /// want to report the count without building a pool.
  static u64 resolve_threads(u64 threads);

 private:
  void worker_loop();
  /// Pulls chunks from the current job until the cursor is exhausted;
  /// returns the number of indices this thread processed.  Must only be
  /// called while attached to the job (see active_).
  u64 drain_current_job();

  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_ready_;
  std::condition_variable job_done_;
  bool stop_ = false;
  u64 generation_ = 0;  ///< bumped once per parallel_for call

  // Current job, valid while job_fn_ != nullptr.  A worker "attaches"
  // (increments active_) under mu_ before touching any job field and
  // detaches after its last write; the caller retires the job only once
  // completed_ == job_count_ and active_ == 0, so a late-waking worker can
  // never observe a half-published next job or a dangling fn.
  u64 job_count_ = 0;
  u64 job_chunk_ = 1;
  const std::function<void(u64)>* job_fn_ = nullptr;
  std::atomic<u64> cursor_{0};     ///< next unclaimed index
  u64 completed_ = 0;              ///< indices finished (guarded by mu_)
  u64 active_ = 0;                 ///< workers attached (guarded by mu_)
};

}  // namespace pp
