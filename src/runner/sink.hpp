// Output sinks for runner results: CSV and JSON-lines, the two formats the
// plotting scripts downstream of bench/ consume.
//
// Both sinks write one row/object per trial via write_trials() (ordered by
// trial index — the runner's determinism guarantee makes these files
// byte-identical across thread counts) and one row/object per measurement
// point via write_aggregate().  A sink can be backed by an owned file or by
// a caller-owned stream (used by the tests).
//
// File-backed sinks additionally maintain a provenance sidecar
// `<path>.manifest.json` (obs/provenance.hpp): one point record per write
// call, carrying the full replayable spec, master seed and merged obs
// counters — any row of the artifact can be reproduced from its sidecar
// alone.  Stream-backed sinks have no artifact path and write no sidecar.
#pragma once

#include <fstream>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>

#include "obs/provenance.hpp"
#include "runner/runner.hpp"

namespace pp {

class TrialSink {
 public:
  virtual ~TrialSink() = default;

  /// Emits every record of `set` (requires keep_records).
  virtual void write_trials(const TrialSpec& spec, const TrialSet& set) = 0;

  /// Emits the merged statistics of one measurement point.
  virtual void write_aggregate(const TrialSpec& spec, const TrialSet& set) = 0;
};

/// RFC-4180-ish CSV; a header row is written before the first data row.
/// Trial rows and aggregate rows have different shapes, so a CsvSink must
/// be used for one kind only (asserted).
class CsvSink : public TrialSink {
 public:
  explicit CsvSink(const std::string& path);
  explicit CsvSink(std::ostream& out);

  void write_trials(const TrialSpec& spec, const TrialSet& set) override;
  void write_aggregate(const TrialSpec& spec, const TrialSet& set) override;

 private:
  enum class Mode { kUnset, kTrials, kAggregates };
  void set_mode(Mode m);

  std::unique_ptr<std::ofstream> file_;
  std::ostream* out_;
  obs::ManifestWriter manifest_;  ///< disabled for stream-backed sinks
  Mode mode_ = Mode::kUnset;
};

/// JSON-lines: one self-describing object per line; trial and aggregate
/// objects can share a file (they carry a "kind" field).
class JsonlSink : public TrialSink {
 public:
  explicit JsonlSink(const std::string& path);
  explicit JsonlSink(std::ostream& out);

  void write_trials(const TrialSpec& spec, const TrialSet& set) override;
  void write_aggregate(const TrialSpec& spec, const TrialSet& set) override;

 private:
  std::unique_ptr<std::ofstream> file_;
  std::ostream* out_;
  obs::ManifestWriter manifest_;  ///< disabled for stream-backed sinks
};

/// Minimal JSON string escaping (quotes, backslashes, control chars).
std::string json_escape(std::string_view s);

}  // namespace pp
