// The parallel Monte-Carlo trial runner.
//
// A TrialSpec describes one measurement point: which protocol to build
// (factory-registry name or an explicit factory), how to generate the
// starting configuration, which engine drives the schedule (accelerated /
// uniform / any interaction model from src/schedulers — hostile ones
// included), and the interaction budget.  run_trials() fans `trials`
// independent copies out over a ThreadPool and returns per-trial records
// plus merged aggregates.
//
// Determinism guarantee.  Trial t's generator is seeded with
// derive_seed(master_seed, label, t) — exactly the derivation the legacy
// serial harness (analysis/experiment.cpp) uses — and each trial writes
// only to its own slot of a preallocated record array.  Aggregates are
// folded from that array in trial-index order after the fan-out completes.
// Results are therefore bit-identical for every thread count and schedule,
// and identical to a serial run with the same master seed.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "analysis/experiment.hpp"
#include "analysis/stats.hpp"
#include "core/engine.hpp"
#include "core/protocol.hpp"
#include "obs/counters.hpp"
#include "runner/seed_stream.hpp"
#include "runner/thread_pool.hpp"
#include "schedulers/scheduler.hpp"

namespace pp {

enum class EngineKind {
  kAccelerated,  ///< exact geometric null-skipping (the default)
  kUniform,      ///< faithful one-interaction-at-a-time reference engine
  kScheduled,    ///< pluggable interaction model; see TrialSpec::scheduler
};

const char* engine_kind_name(EngineKind k);

struct TrialSpec {
  /// Protocol to instantiate: a factory-registry name ("ag",
  /// "ring-of-traps", ...) with population n, or an explicit factory that
  /// overrides both.
  std::string protocol;
  u64 n = 0;
  ProtocolFactory factory;

  /// Starting-configuration generator (analysis/experiment.hpp /
  /// core/initial.hpp); defaults to uniform_random over all states.
  ConfigGenerator init;

  EngineKind engine = EngineKind::kAccelerated;

  /// Interaction model for EngineKind::kScheduled (plain data — each trial
  /// builds its scheduler from this and the resolved population size, so
  /// specs stay copyable and threads share nothing mutable).  Hostile
  /// models (adversarial, churn, partition) and the weighted/dynamic-graph
  /// families run through this path too; run_trials() builds one shared
  /// scheduler per trial set, so expensive per-spec state (a topology, a
  /// weight kernel's tables) is constructed once, not per trial.
  SchedulerSpec scheduler;

  /// Budget on scheduler interactions (for the adversarial schedulers that
  /// is productive firings — they have no null steps).
  u64 max_interactions = ~static_cast<u64>(0);

  /// Seed-derivation namespace; specs with different labels draw
  /// independent streams from the same master seed.
  std::string label = "runner";

  /// The factory to actually use (explicit one, else registry lookup).
  ProtocolFactory resolve_factory() const;
};

/// The per-trial outcome, reduced to what analysis and sinks consume.
struct TrialRecord {
  u64 trial = 0;  ///< trial index; records arrive sorted by this field
  u64 seed = 0;   ///< the derived per-trial seed (for replaying one trial)
  u64 interactions = 0;
  u64 productive_steps = 0;
  u64 fault_events = 0;  ///< environmental faults injected (churn events,
                         ///< partition split/heal transitions)
  double parallel_time = 0;
  bool silent = false;
  bool valid = false;
};

/// Trial-index-ordered fold of all records (see runner.cpp): bit-identical
/// for every thread count.
struct AggregateStats {
  u64 trials = 0;
  /// Trials that ended without reaching silence: the interaction budget
  /// ran out or, under a graph-restricted scheduler, the run got locally
  /// stuck (no productive edge left on the topology).
  u64 timeouts = 0;
  u64 invalid = 0;  ///< silent but not a valid ranking (never expected)
  /// Total environmental faults injected across the set (churn events and
  /// partition split/heal transitions).
  u64 fault_events = 0;
  RunningStat parallel_time;
  RunningStat interactions;
  RunningStat productive_steps;

  void fold(const TrialRecord& r);
};

struct TrialSet {
  AggregateStats stats;
  /// One record per trial, ordered by trial index; cleared when
  /// RunnerOptions::keep_records is false.
  std::vector<TrialRecord> records;

  /// Merged observability metrics (obs/counters.hpp), folded in trial
  /// order — bit-identical for every thread count, like the stats.
  /// deterministic_empty() when POPRANK_OBS=OFF.
  obs::CounterBlock counters;

  /// The master seed the set ran under (echoed for provenance manifests;
  /// per-trial seeds derive from it and the spec label).
  u64 master_seed = 0;

  // Throughput bookkeeping (wall clock, not part of the determinism
  // guarantee).
  double wall_seconds = 0;
  double trials_per_sec = 0;
  u64 threads = 1;

  /// Quantile summary of parallel times; requires keep_records.
  Summary summary() const;
  /// The parallel times alone, trial order (requires keep_records).
  std::vector<double> parallel_times() const;
};

struct RunnerOptions {
  u64 trials = 100;
  u64 threads = 0;  ///< pool size; 0 = hardware concurrency
  u64 master_seed = kDefaultRootSeed;
  bool keep_records = true;
};

/// Runs opt.trials independent trials of `spec` on a fresh pool.
TrialSet run_trials(const TrialSpec& spec, const RunnerOptions& opt);

/// Same, reusing a caller-owned pool (opt.threads is ignored).
TrialSet run_trials(const TrialSpec& spec, const RunnerOptions& opt,
                    ThreadPool& pool);

/// Runs one trial of `spec` with an explicit seed — the replay tool behind
/// TrialRecord::seed, also the kernel the parallel fan-out executes.
TrialRecord run_one_trial(const TrialSpec& spec, u64 trial_index, u64 seed);

/// One contiguous slice of a trial set — the unit a service worker shard
/// computes (src/service/) and the unit the chunk-result cache stores.
struct TrialRange {
  u64 begin = 0;
  u64 end = 0;  ///< exclusive
  /// Records for trials [begin, end), ordered by trial index.
  std::vector<TrialRecord> records;
  /// Per-trial counter blocks merged in trial-index order (sums, so a
  /// chunk-order merge of range counters equals the runner's trial-order
  /// merge bit for bit).
  obs::CounterBlock counters;
};

/// Runs trials [begin, end) of `spec` serially on the calling thread with
/// the standard derive_seed(master_seed, label, trial) derivation — the
/// same kernel run_trials() fans out, sharing one scheduler across the
/// range the same way.  Because a trial's stream depends only on
/// (master_seed, label, trial), folding the records of any partition of
/// [0, trials) back together in trial-index order reproduces a
/// single-process run_trials() bit for bit; that property is what makes
/// results *machine-count* independent, not just thread-count independent.
/// `after_trial(t)` (optional) fires after each trial completes — the
/// service worker's lease-heartbeat hook.
TrialRange run_trial_range(const TrialSpec& spec, u64 master_seed, u64 begin,
                           u64 end,
                           const std::function<void(u64)>& after_trial = {});

}  // namespace pp
