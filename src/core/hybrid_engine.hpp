// Multiscale hybrid driver: count-vector bulk, agent-level end-game.
//
// The count engine (core/count_engine.hpp) makes the *bulk* of a run
// n-independent per event, but its sweet spot is the high-collision regime
// where productive mass is plentiful.  Near stabilisation the dynamics
// enter end-game starvation — W(c) collapses to a handful of colliding
// pairs and the geometric null gaps between events blow up towards n and
// beyond.  That is precisely the regime the exact agent-level machinery was
// built for (and where its per-agent costs are already amortised to
// nothing), so the hybrid couples the two engines intermittently, after the
// GSIS–DSMC pattern (PAPERS.md, Luo & Wu): cheap count dynamics while
// events are dense, exact agent-level engine once fluctuations decide the
// silent/stuck verdict.
//
// Handoff policy.  The count phase feeds every sampled null-skip gap into a
// run-local log2 sketch (the same bucketisation as the obs registry's
// kNullSkipGap sketch, but owned by the run so the policy exists in
// POPRANK_OBS=OFF builds too).  The run hands off when a gap lands in the
// same sketch bucket as gap_factor · n or higher — i.e. the scheduler just
// spent ≳ gap_factor units of parallel time on null meetings, the signature
// of end-game starvation.  The threshold is a pure function of (n,
// gap_factor) and the gaps are a pure function of the seed, so the
// switching point is deterministic per (seed, trial) and pinned by tests.
//
// Exactness.  The count phase consumes the generator exactly like
// run_accelerated and the tail *is* run_accelerated on the same generator,
// so a hybrid run is bit-identical seed-for-seed to a pure run_accelerated
// run — the handoff moves work between data structures, never across
// distributions.  Protocols without the count-determined capability fall
// back to run_accelerated wholesale (the conformance roster runs every
// protocol through the hybrid row).
#pragma once

#include "common/types.hpp"
#include "core/engine.hpp"
#include "core/protocol.hpp"
#include "rng/random.hpp"

namespace pp {

struct HybridOptions {
  /// Hand off when a null-skip gap reaches the log2 sketch bucket of
  /// gap_factor · n interactions (gap_factor units of parallel time spent
  /// on nulls).  0 disables handoff: the count engine runs to completion.
  u64 gap_factor = 8;
};

/// What the driver actually did — tests and curious callers key off this;
/// the RunResult carries only the engine-contract fields.
struct HybridReport {
  bool count_phase = false;  ///< bulk ran on the count engine (capability
                             ///< flag present); false = wholesale fallback
  bool handed_off = false;   ///< end-game tail ran on the agent-level engine
  u64 handoff_gap = 0;       ///< gap threshold used (bucket lower edge)
  u64 bulk_interactions = 0;  ///< interactions simulated by the count phase
  u64 bulk_productive = 0;    ///< productive events in the count phase
  u32 max_gap_bucket = 0;     ///< largest log2 gap bucket the bulk saw
};

RunResult run_hybrid(Protocol& p, Rng& rng, const RunOptions& opt = {},
                     const HybridOptions& hopt = {},
                     HybridReport* report = nullptr);

}  // namespace pp
