// Simulation engines for the uniform random scheduler.
//
// Parallel time (the paper's complexity measure) is the number of scheduler
// interactions divided by n.  Near stabilisation almost all interactions
// are null (the two sampled agents have no applicable rule), which makes a
// naive simulation of a Θ(n^2)-parallel-time protocol cost Θ(n^3) work.
//
// AcceleratedEngine removes that overhead *exactly*: if W of the n(n-1)
// ordered pairs are productive, the index of the next productive
// interaction is geometrically distributed with success probability
// p = W / (n(n-1)), and conditioned on being productive the pair is uniform
// among the W productive ones.  Both quantities are exactly what the
// protocols expose (productive_weight / step_productive), so the engine
// samples the gap length in closed form and replays only productive
// interactions.  The resulting trajectory has the same distribution as the
// naive simulation — tests/test_engine.cpp validates this against
// UniformEngine statistically.
//
// UniformEngine simulates every interaction; it is the reference
// implementation used in tests and small demos.
#pragma once

#include <functional>

#include "common/types.hpp"
#include "core/protocol.hpp"
#include "rng/random.hpp"

namespace pp {

class Scheduler;  // src/schedulers/scheduler.hpp

struct RunOptions {
  /// Hard budget on scheduler interactions (null ones included); the run
  /// reports silent = false if the budget is exhausted first.
  u64 max_interactions = ~static_cast<u64>(0);

  /// Optional observer invoked after every configuration change with the
  /// number of interactions elapsed so far; return false to abort the run.
  std::function<bool(const Protocol&, u64)> on_change;

  /// Which interaction model drives the run.  nullptr (the default) selects
  /// the accelerated uniform engine; anything else is a non-owning pointer
  /// into src/schedulers/ (run(p, rng, opt) dispatches to it).  Schedulers
  /// are immutable — all per-run state lives inside their run() — so a
  /// const pointer is enough and one instance can serve many threads.
  const Scheduler* scheduler = nullptr;
};

struct RunResult {
  u64 interactions = 0;      ///< scheduler steps, null interactions included
  u64 productive_steps = 0;  ///< configuration changes driven by δ
  u64 fault_events = 0;      ///< environmental faults injected: churn fault
                             ///< events and partition split/heal transitions
                             ///< (0 under the non-hostile models)
  bool silent = false;       ///< reached a silent configuration
  bool valid = false;        ///< final configuration is a valid ranking
  bool aborted = false;      ///< observer requested an early stop
  double parallel_time = 0;  ///< interactions / n
};

/// Exact accelerated simulation (geometric null-skipping).
RunResult run_accelerated(Protocol& p, Rng& rng, const RunOptions& opt = {});

/// Faithful one-interaction-at-a-time simulation.
RunResult run_uniform(Protocol& p, Rng& rng, const RunOptions& opt = {});

/// Runs `p` under opt.scheduler when set, else under the accelerated
/// uniform engine — the single entry point callers should prefer now that
/// the interaction model is pluggable.
RunResult run(Protocol& p, Rng& rng, const RunOptions& opt = {});

/// The exact-acceleration kernel shared by run_accelerated and the
/// graph-restricted scheduler: samples the geometric run of null steps
/// preceding the next productive one (per-step success probability `prob`)
/// and advances `interactions` past it, including the productive step
/// itself.  Returns false — with interactions clamped to `budget` — when
/// the gap overruns the budget, treating Rng::kGeometricInfinity (the
/// sampler's saturation sentinel for astronomically small `prob`) as an
/// overrun of any budget.
bool advance_past_nulls(Rng& rng, double prob, u64 budget, u64& interactions);

}  // namespace pp
