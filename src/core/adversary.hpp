// Adversarial schedulers.
//
// The paper's guarantees are stated for the uniform random scheduler.  A
// natural robustness question for a library user: what happens under a
// *hostile* scheduler that still makes progress (always fires some
// productive pair) but chooses which one maliciously?  This module
// implements a family of greedy adversaries over the protocol's formal
// transition function δ:
//
//   kRandomProductive  uniform among productive pairs (the embedded jump
//                      chain of the random scheduler — baseline);
//   kMaxLoad           always fire the pair inside the most-loaded state
//                      (tries to keep agents piled up);
//   kMinRankCoverage   fire the productive pair whose outcome minimises
//                      the number of occupied rank states (actively fights
//                      the ranking);
//   kStubborn          keep firing in the same state as long as possible
//                      (starves the rest of the population).
//
// Interesting facts these expose (see tests/test_adversary.cpp and
// bench_adversarial): AG and the ring protocol stabilise under *every*
// such adversary (their progress measures are schedule-independent), while
// the tree protocol's reset loop can be dragged out by kMinRankCoverage —
// the whp bound genuinely needs the scheduler's randomness.
//
// Enumeration is O(states^2) per step, so this is a small-n analysis tool,
// not a performance path.
#pragma once

#include "core/engine.hpp"
#include "core/protocol.hpp"

namespace pp {

enum class AdversaryPolicy {
  kRandomProductive,
  kMaxLoad,
  kMinRankCoverage,
  kStubborn,
};

const char* adversary_policy_name(AdversaryPolicy p);

/// Runs the protocol under the chosen adversary until silence or until
/// `max_steps` *productive* steps have fired (there are no null steps —
/// the adversary always fires a productive pair while one exists).
/// RunResult::interactions counts productive firings; parallel_time is
/// firings / n (a lower bound on any scheduler's parallel time).
RunResult run_adversarial(Protocol& p, AdversaryPolicy policy, Rng& rng,
                          u64 max_steps = 1'000'000);

}  // namespace pp
