// The Protocol interface: a self-stabilising ranking population protocol
// ready for simulation under the uniform random scheduler.
//
// Design.  The paper observes (§2) that in a state-optimal ranking protocol
// the *only* permitted rules are of the form (s,s) -> (s',s'') on rank
// states — any other rule would keep firing in the final configuration and
// break silence.  All four protocols in this library therefore share the
// same backbone:
//
//   * a per-rank-state table of same-state rules, with a Fenwick tree of
//     "productive weights" c_s(c_s - 1) (the number of ordered pairs of
//     distinct agents both in s) used to sample the next productive
//     interaction in O(log n); and
//   * optional protocol-specific *extra categories* covering interactions
//     that involve extra states (the line protocol's X, the tree protocol's
//     red/green buffer), exposed through three virtual hooks.
//
// The two engines drive this interface in different ways:
//   * AcceleratedEngine calls productive_weight() / step_productive() and
//     skips null interactions in closed form (exact in distribution);
//   * UniformEngine calls step_uniform(), faithfully simulating every
//     single interaction — it exists to validate the accelerated path.
//
// Invariant maintained throughout: productive_weight() counts *exactly* the
// ordered agent pairs whose interaction would change the configuration, so
// productive_weight() == 0  <=>  the configuration is silent.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "common/types.hpp"
#include "core/configuration.hpp"
#include "ds/fenwick.hpp"
#include "rng/random.hpp"

namespace pp {

class Protocol {
 public:
  virtual ~Protocol() = default;
  Protocol(const Protocol&) = delete;
  Protocol& operator=(const Protocol&) = delete;

  /// Human-readable protocol name (e.g. "ring-of-traps").
  virtual std::string_view name() const = 0;

  /// Population size n; equals the number of rank states for ranking
  /// protocols (auxiliary sub-protocols such as the single-line model of
  /// §4.1 may differ).
  u64 num_agents() const { return n_agents_; }
  u64 num_ranks() const { return n_ranks_; }
  u64 num_states() const { return n_states_; }
  u64 num_extra_states() const { return n_states_ - n_ranks_; }

  /// Loads a starting configuration (any arrangement of num_agents() agents
  /// over num_states() states — this is a *self-stabilising* protocol).
  void reset(const Configuration& c);

  /// Current configuration as per-state counts.
  const std::vector<u64>& counts() const { return counts_; }
  Configuration configuration() const { return Configuration(counts_); }

  /// Number of ordered agent pairs whose interaction changes the
  /// configuration.
  u64 productive_weight() const {
    return rank_weight_.total() + extra_weight();
  }

  /// Applies one productive interaction sampled uniformly among all
  /// productive ordered pairs.  Precondition: productive_weight() > 0.
  void step_productive(Rng& rng);

  /// Simulates one interaction of the uniform scheduler (an ordered pair of
  /// distinct agents chosen uniformly).  Returns true iff the configuration
  /// changed.
  bool step_uniform(Rng& rng);

  /// Applies δ to one *specific* ordered pair of agents currently in states
  /// (initiator, responder) and returns their new states — unchanged inputs
  /// mean a null interaction.  This is how the agent-level schedulers
  /// (src/schedulers/: random matching, graph-restricted) drive the
  /// protocol: they decide who meets, the protocol's transition function
  /// decides what happens, and all count/Fenwick bookkeeping stays
  /// consistent.  Precondition: both states are occupied (two distinct
  /// agents, so count(s) >= 2 when initiator == responder).
  std::pair<StateId, StateId> apply_pair(StateId initiator, StateId responder);

  /// Silent <=> no interaction can change the configuration.
  bool is_silent() const { return productive_weight() == 0; }

  /// True iff every rank is held by exactly one agent (the final
  /// configuration).  For every protocol in this library this is equivalent
  /// to is_silent(); tests assert the equivalence rather than assuming it.
  bool is_valid_ranking() const;

  /// Capability flag for the count-vector engine (core/count_engine.hpp):
  /// true iff δ ignores agent identity entirely — the dynamics are a pure
  /// function of the state-count vector.  Concretely the protocol promises
  /// (a) it has no extra states, and (b) every productive rule is a
  /// same-state rank rule (s,s) -> (s',s'') — δ(s,t) is null for s != t —
  /// so the productive ordered pairs of a configuration are exactly the
  /// c_s(c_s - 1) diagonal pairs.  ag and ring-of-traps qualify; protocols
  /// with extra-state machinery (line/tree) must keep the default false.
  /// CountEngine cross-checks the promise against transition() at
  /// construction.
  virtual bool is_count_determined() const { return false; }

  /// Capability declaration for the hierarchical pair samplers
  /// (schedulers/pair_sampler.hpp): which whole *classes* of ordered pairs
  /// involving extra-state agents are productive, independent of counts.
  /// Under this library's protocol backbone every same-state rank pair is
  /// productive and every distinct-rank pair is null; the extra-state
  /// protocols additionally make entire orientation classes productive —
  /// e.g. line-of-traps routes *every* agent meeting an X responder, and
  /// tree-ranking fires on *every* pair whose initiator is a buffer agent.
  /// When a class flag is set, EVERY ordered pair in that class must be
  /// productive; when clear, every such pair must be null.  Like
  /// is_count_determined(), this is a promise: GroupedKernelSampler
  /// cross-checks it against transition() at construction on a bounded
  /// probe set, so a wrong declaration fails fast instead of skewing the
  /// sampling distribution.
  struct ExtraPairClasses {
    bool extra_extra = false;  ///< every ordered (extra, extra) pair
    bool extra_rank = false;   ///< every ordered (extra, rank) pair
    bool rank_extra = false;   ///< every ordered (rank, extra) pair
  };
  /// Default: no extra pair is ever productive (exactly right for
  /// protocols without extra states, and for inert extras such as
  /// SingleLineProtocol's absorbing X).
  virtual ExtraPairClasses extra_pair_classes() const { return {}; }

  /// --- O(log n) mutation API for fault models --------------------------
  /// A churn fault teleports k agents; rebuilding the protocol from a
  /// copied configuration costs O(n), these three calls cost O(k log n)
  /// total.  ChurnScheduler's fast path uses them; the copy-and-rebuild
  /// reference survives behind SchedulerSpec::dense_reference and tests
  /// pin the two paths bit-identical.

  /// State of the `target`-th agent under the canonical count ordering
  /// (agents are anonymous: "a uniform agent" is a state sampled with
  /// probability proportional to its count).  `target` in [0, n).
  StateId uniform_agent_state(u64 target) const {
    PP_DCHECK(target < n_agents_);
    return static_cast<StateId>(count_all_.find(target));
  }

  /// Teleports one agent from state `from` (which must be occupied) to
  /// state `to`, keeping counts and both Fenwick trees consistent.
  /// Callers mutating in bulk must call commit_moves() afterwards.
  void move_agent(StateId from, StateId to) {
    mutate(from, -1);
    mutate(to, +1);
  }

  /// Ends a bulk-mutation burst: gives derived protocols the same
  /// cache-refresh hook a full reset() would (no library protocol caches
  /// anything today, but the contract keeps move_agent equivalent to
  /// reset(configuration-with-moves-applied) forever).
  void commit_moves() { on_reset(); }

  /// The formal transition function δ(initiator, responder) ->
  /// (initiator', responder') — the paper's rule set, written down
  /// directly.  Null interactions return the inputs unchanged.
  ///
  /// This is deliberately *independent* of the optimized count/Fenwick
  /// machinery driving step_productive()/step_uniform(): the agent-level
  /// reference simulator (core/agent_simulator.hpp) runs on transition()
  /// alone, and consistency tests check the two implementations against
  /// each other pair-by-pair and trajectory-by-trajectory.
  virtual std::pair<StateId, StateId> transition(StateId initiator,
                                                 StateId responder) const = 0;

  /// Debugging name of a state, e.g. "(a=3,b=0|gate)" or "X_4".
  virtual std::string describe_state(StateId s) const;

 protected:
  /// A ranking protocol has num_agents == num_ranks; auxiliary
  /// sub-protocols may simulate fewer/more agents than rank states.
  Protocol(u64 num_agents, u64 num_ranks, u64 num_extra);

  /// Same-state rule (s,s) -> (out1, out2); derived constructors must fill
  /// one entry per rank state (outputs may be extra states).  Every rule
  /// must change the configuration (out1 != s or out2 != s).
  struct Rule {
    StateId out1;
    StateId out2;
  };
  std::vector<Rule> rules_;

  /// --- hooks for protocols with extra states ------------------------
  /// Number of productive ordered pairs not counted by the rank-state
  /// Fenwick (i.e. pairs involving at least one extra-state agent).
  virtual u64 extra_weight() const { return 0; }
  /// Applies the extra productive interaction selected by
  /// `target` uniform in [0, extra_weight()).
  virtual void step_extra(u64 target, Rng& rng);
  /// Uniform-scheduler interaction for a pair that is not two rank agents
  /// in the same state.  Returns true iff the configuration changed.
  virtual bool apply_cross(StateId initiator, StateId responder);
  /// Called at the end of reset() so derived classes can refresh caches.
  virtual void on_reset() {}

  /// --- helpers for derived classes -----------------------------------
  /// Adds delta agents to state s, keeping counts and both Fenwick trees
  /// consistent.
  void mutate(StateId s, i64 delta);
  /// Fires the same-state rule of rank state s (two agents in s interact).
  void apply_rank_rule(StateId s);
  u64 count(StateId s) const { return counts_[s]; }
  /// Total number of agents currently in rank states.
  u64 rank_agents() const { return count_all_.prefix(n_ranks_); }
  /// Samples a rank state with probability proportional to its count;
  /// `target` must be uniform in [0, rank_agents()).
  StateId sample_rank_by_count(u64 target) const {
    return static_cast<StateId>(count_all_.find(target));
  }

 private:
  u64 n_agents_;
  u64 n_ranks_;
  u64 n_states_;
  std::vector<u64> counts_;
  Fenwick rank_weight_;  // rank states: c_s * (c_s - 1)
  Fenwick count_all_;    // all states: c_s
};

using ProtocolPtr = std::unique_ptr<Protocol>;

}  // namespace pp
