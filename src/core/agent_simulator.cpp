#include "core/agent_simulator.hpp"

#include "common/assert.hpp"

namespace pp {

u64 reference_productive_weight(const Protocol& p,
                                const std::vector<u64>& counts) {
  const u64 states = p.num_states();
  PP_ASSERT(counts.size() == states);
  u64 w = 0;
  for (StateId s1 = 0; s1 < states; ++s1) {
    if (counts[s1] == 0) continue;
    for (StateId s2 = 0; s2 < states; ++s2) {
      const u64 c2 = counts[s2] - (s1 == s2 ? 1 : 0);
      if (counts[s2] == 0 || c2 == 0) continue;
      if (p.transition(s1, s2) != std::make_pair(s1, s2)) {
        w += counts[s1] * c2;
      }
    }
  }
  return w;
}

AgentSimulator::AgentSimulator(const Protocol& p, const Configuration& initial)
    : protocol_(p) {
  PP_ASSERT(initial.num_states() == p.num_states());
  PP_ASSERT(initial.agents() == p.num_agents());
  agents_ = initial.to_agent_states();
  counts_ = initial.counts;
}

bool AgentSimulator::step(Rng& rng) {
  const auto [i, j] = rng.ordered_pair(agents_.size());
  const StateId si = agents_[i];
  const StateId sj = agents_[j];
  const auto [si2, sj2] = protocol_.transition(si, sj);
  if (si2 == si && sj2 == sj) return false;
  agents_[i] = si2;
  agents_[j] = sj2;
  --counts_[si];
  --counts_[sj];
  ++counts_[si2];
  ++counts_[sj2];
  dirty_ = true;
  return true;
}

bool AgentSimulator::is_silent() {
  if (dirty_) {
    silent_ = reference_productive_weight(protocol_, counts_) == 0;
    dirty_ = false;
  }
  return silent_;
}

bool AgentSimulator::is_valid_ranking() const {
  return pp::is_valid_ranking(Configuration(counts_), protocol_.num_ranks());
}

RunResult AgentSimulator::run(Rng& rng, const RunOptions& opt) {
  RunResult r;
  while (!is_silent()) {
    if (r.interactions >= opt.max_interactions) break;
    ++r.interactions;
    if (step(rng)) {
      ++r.productive_steps;
      if (opt.on_change && !opt.on_change(protocol_, r.interactions)) {
        r.aborted = true;
        break;
      }
    }
  }
  r.silent = is_silent();
  r.valid = is_valid_ranking();
  r.parallel_time = static_cast<double>(r.interactions) /
                    static_cast<double>(protocol_.num_agents());
  return r;
}

}  // namespace pp
