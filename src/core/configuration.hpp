// Configurations of anonymous agents.
//
// Agents in population protocols are indistinguishable, so a configuration
// is fully described by how many agents occupy each state.  The whole
// library (engines, generators, analysis) works on these count vectors;
// an agent-level view is only ever materialised by tests that cross-check
// the count-based simulation against a naive per-agent one.
#pragma once

#include <span>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace pp {

struct Configuration {
  /// counts[s] = number of agents in state s; size = number of states
  /// (rank states first, then extra states).
  std::vector<u64> counts;

  Configuration() = default;
  explicit Configuration(std::vector<u64> c) : counts(std::move(c)) {}

  u64 num_states() const { return counts.size(); }

  /// Total number of agents.
  u64 agents() const;

  /// Builds a configuration from an explicit per-agent state assignment.
  static Configuration from_agent_states(std::span<const StateId> states,
                                         u64 num_states);

  /// Expands back to one (sorted) state per agent.
  std::vector<StateId> to_agent_states() const;
};

/// Number of rank states not occupied by any agent — the configuration's
/// "k-distance" from a final configuration (paper §1).
u64 k_distance(const Configuration& c, u64 num_ranks);

/// True iff every rank state holds exactly one agent and no agent occupies
/// an extra state — the (unique) final configuration of a ranking protocol.
bool is_valid_ranking(const Configuration& c, u64 num_ranks);

}  // namespace pp
