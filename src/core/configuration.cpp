#include "core/configuration.hpp"

#include "common/assert.hpp"

namespace pp {

u64 Configuration::agents() const {
  u64 sum = 0;
  for (const u64 c : counts) sum += c;
  return sum;
}

Configuration Configuration::from_agent_states(
    std::span<const StateId> states, u64 num_states) {
  Configuration cfg;
  cfg.counts.assign(num_states, 0);
  for (const StateId s : states) {
    PP_ASSERT_MSG(s < num_states, "agent state out of range");
    ++cfg.counts[s];
  }
  return cfg;
}

std::vector<StateId> Configuration::to_agent_states() const {
  std::vector<StateId> out;
  out.reserve(agents());
  for (StateId s = 0; s < counts.size(); ++s) {
    for (u64 i = 0; i < counts[s]; ++i) out.push_back(s);
  }
  return out;
}

u64 k_distance(const Configuration& c, u64 num_ranks) {
  PP_ASSERT(num_ranks <= c.num_states());
  u64 k = 0;
  for (u64 s = 0; s < num_ranks; ++s) {
    if (c.counts[s] == 0) ++k;
  }
  return k;
}

bool is_valid_ranking(const Configuration& c, u64 num_ranks) {
  PP_ASSERT(num_ranks <= c.num_states());
  for (u64 s = 0; s < num_ranks; ++s) {
    if (c.counts[s] != 1) return false;
  }
  for (u64 s = num_ranks; s < c.num_states(); ++s) {
    if (c.counts[s] != 0) return false;
  }
  return true;
}

}  // namespace pp
