// Initial-configuration generators.
//
// Self-stabilising protocols must converge from *every* configuration, so
// the test/bench harness exercises a menagerie of starting points:
//
//   * valid_ranking      — the final configuration itself (silence check);
//   * uniform_random     — every agent in an independently uniform state
//                          (over all states, or rank states only);
//   * k_distant          — a valid ranking damaged so that exactly k rank
//                          states are unoccupied (paper §1/§3);
//   * all_in_state       — the fully-degenerate single-state start;
//   * perturbed          — an arbitrary configuration with f agents moved
//                          to random states (fault injection).
//
// All generators are deterministic functions of the supplied Rng.
#pragma once

#include "core/configuration.hpp"
#include "core/protocol.hpp"
#include "rng/random.hpp"

namespace pp::initial {

/// The unique final configuration: one agent per rank state.
Configuration valid_ranking(u64 num_ranks, u64 num_states);

/// Each of `num_agents` agents picks a state uniformly from
/// [0, num_states).
Configuration uniform_random(u64 num_agents, u64 num_states, Rng& rng);

/// Each agent picks a state uniformly from the first `num_ranks` states
/// of a `num_states`-state space (rank states only).
Configuration uniform_random_ranks(u64 num_agents, u64 num_ranks,
                                   u64 num_states, Rng& rng);

/// A configuration at k-distance from final: exactly k rank states
/// unoccupied, no agents in extra states.  Built by vacating k random ranks
/// of a valid ranking and re-homing the displaced agents on random occupied
/// ranks.  Requires k < num_ranks.
Configuration k_distant(u64 num_ranks, u64 num_states, u64 k, Rng& rng);

/// All agents piled into state s.
Configuration all_in_state(u64 num_agents, u64 num_states, StateId s);

/// Moves `faults` agents (chosen uniformly, with multiplicity) to uniformly
/// random states.  Models transient memory corruption hitting a running or
/// stabilised population.
Configuration perturbed(Configuration base, u64 faults, Rng& rng);

/// --- convenience overloads bound to a protocol's dimensions -------------
Configuration valid_ranking(const Protocol& p);
Configuration uniform_random(const Protocol& p, Rng& rng);
Configuration uniform_random_ranks(const Protocol& p, Rng& rng);
Configuration k_distant(const Protocol& p, u64 k, Rng& rng);
Configuration all_in_state(const Protocol& p, StateId s);

}  // namespace pp::initial
