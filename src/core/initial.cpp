#include "core/initial.hpp"

#include "common/assert.hpp"

namespace pp::initial {

Configuration valid_ranking(u64 num_ranks, u64 num_states) {
  PP_ASSERT(num_ranks <= num_states);
  Configuration c;
  c.counts.assign(num_states, 0);
  for (u64 s = 0; s < num_ranks; ++s) c.counts[s] = 1;
  return c;
}

Configuration uniform_random(u64 num_agents, u64 num_states, Rng& rng) {
  Configuration c;
  c.counts.assign(num_states, 0);
  for (u64 i = 0; i < num_agents; ++i) ++c.counts[rng.below(num_states)];
  return c;
}

Configuration uniform_random_ranks(u64 num_agents, u64 num_ranks,
                                   u64 num_states, Rng& rng) {
  PP_ASSERT(num_ranks <= num_states);
  Configuration c;
  c.counts.assign(num_states, 0);
  for (u64 i = 0; i < num_agents; ++i) ++c.counts[rng.below(num_ranks)];
  return c;
}

Configuration k_distant(u64 num_ranks, u64 num_states, u64 k, Rng& rng) {
  PP_ASSERT_MSG(k < num_ranks, "cannot vacate every rank state");
  Configuration c = valid_ranking(num_ranks, num_states);
  if (k == 0) return c;
  const std::vector<u64> vacated = rng.sample_distinct(num_ranks, k);
  for (const u64 v : vacated) c.counts[v] = 0;
  // Re-home the k displaced agents on occupied ranks, sampled uniformly by
  // index among the num_ranks - k survivors.
  std::vector<u64> occupied;
  occupied.reserve(num_ranks - k);
  for (u64 s = 0; s < num_ranks; ++s) {
    if (c.counts[s] != 0) occupied.push_back(s);
  }
  for (u64 i = 0; i < k; ++i) {
    ++c.counts[occupied[rng.below(occupied.size())]];
  }
  PP_ASSERT(k_distance(c, num_ranks) == k);
  return c;
}

Configuration all_in_state(u64 num_agents, u64 num_states, StateId s) {
  PP_ASSERT(s < num_states);
  Configuration c;
  c.counts.assign(num_states, 0);
  c.counts[s] = num_agents;
  return c;
}

Configuration perturbed(Configuration base, u64 faults, Rng& rng) {
  const u64 num_agents = base.agents();
  const u64 num_states = base.num_states();
  PP_ASSERT(num_agents > 0);
  for (u64 f = 0; f < faults; ++f) {
    // Pick a uniform agent by walking the counts (generators are not hot
    // paths; O(states) per fault is fine).
    u64 target = rng.below(num_agents);
    u64 s = 0;
    while (target >= base.counts[s]) {
      target -= base.counts[s];
      ++s;
    }
    --base.counts[s];
    ++base.counts[rng.below(num_states)];
  }
  return base;
}

Configuration valid_ranking(const Protocol& p) {
  return valid_ranking(p.num_ranks(), p.num_states());
}
Configuration uniform_random(const Protocol& p, Rng& rng) {
  return uniform_random(p.num_agents(), p.num_states(), rng);
}
Configuration uniform_random_ranks(const Protocol& p, Rng& rng) {
  return uniform_random_ranks(p.num_agents(), p.num_ranks(), p.num_states(),
                              rng);
}
Configuration k_distant(const Protocol& p, u64 k, Rng& rng) {
  return k_distant(p.num_ranks(), p.num_states(), k, rng);
}
Configuration all_in_state(const Protocol& p, StateId s) {
  return all_in_state(p.num_agents(), p.num_states(), s);
}

}  // namespace pp::initial
