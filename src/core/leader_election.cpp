#include "core/leader_election.hpp"

#include "common/assert.hpp"

namespace pp {

LeaderElection::LeaderElection(ProtocolPtr ranking)
    : ranking_(std::move(ranking)) {
  PP_ASSERT(ranking_ != nullptr);
}

RunResult LeaderElection::stabilise(Rng& rng, const RunOptions& opt) {
  return run_accelerated(*ranking_, rng, opt);
}

void LeaderElection::inject_faults(u64 faults, Rng& rng) {
  Configuration c = ranking_->configuration();
  c = initial::perturbed(std::move(c), faults, rng);
  ranking_->reset(c);
}

}  // namespace pp
