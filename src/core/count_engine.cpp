#include "core/count_engine.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace pp {
namespace {

// Duplicate of the engines' common exit path (core/engine.cpp keeps its
// copy in an anonymous namespace): stamp silent/valid/parallel_time from
// the protocol object and enforce the RunResult contract.  The count
// engine writes its final configuration back into the protocol before
// calling this, so the contract asserts check the *synchronised* state.
RunResult finish(const Protocol& p, RunResult r) {
  r.silent = p.is_silent();
  r.valid = p.is_valid_ranking();
  r.parallel_time =
      static_cast<double>(r.interactions) / static_cast<double>(p.num_agents());
  PP_ASSERT_MSG(r.interactions >= r.productive_steps,
                "engine contract: interactions >= productive_steps");
  PP_ASSERT_MSG(!r.silent || p.productive_weight() == 0,
                "engine contract: silent implies productive_weight()==0");
  return r;
}

u64 diagonal_mass(u64 c) { return c > 1 ? c * (c - 1) : 0; }

}  // namespace

CountEngine::CountEngine(Protocol& p) : p_(p) {
  PP_ASSERT_MSG(p.is_count_determined(),
                "CountEngine requires Protocol::is_count_determined()");
  PP_ASSERT_MSG(p.num_extra_states() == 0,
                "count-determined protocols must have no extra states");
  const u64 states = p.num_states();

  // The diagonal rule table, read off the formal transition function so the
  // engine is independent of the protocols' internal rule_/Fenwick
  // machinery (the same separation agent_simulator relies on).
  delta_.resize(states);
  for (u64 s = 0; s < states; ++s) {
    const StateId sid = static_cast<StateId>(s);
    const auto [o1, o2] = p.transition(sid, sid);
    PP_ASSERT_MSG(o1 != sid || o2 != sid,
                  "count-determined protocol has a null diagonal rule; its "
                  "c_s(c_s-1) mass would sample unproductive events");
    delta_[s] = DiagonalRule{o1, o2};
  }

  // Cross-check promise (b): δ(s,t) null off the diagonal.  Exhaustive for
  // small state spaces; a deterministic pseudo-random probe of ~4096
  // ordered pairs above that (states can reach 10^8, where the full
  // O(states^2) sweep is off the table).
  if (states <= 1024) {
    for (u64 s = 0; s < states; ++s) {
      for (u64 t = 0; t < states; ++t) {
        if (s == t) continue;
        const auto [o1, o2] = p.transition(static_cast<StateId>(s),
                                           static_cast<StateId>(t));
        PP_ASSERT_MSG(o1 == s && o2 == t,
                      "protocol claims is_count_determined() but has a "
                      "productive off-diagonal rule");
      }
    }
  } else {
    const u64 probes = 4096;
    for (u64 k = 0; k < probes; ++k) {
      // Knuth-hash stride for s, a coprime-ish offset in [1, states-1]
      // for t — covers the pair table far from the diagonal.
      const u64 s = (k * 2654435761ull) % states;
      const u64 t = (s + 1 + (k * 40503ull) % (states - 1)) % states;
      const auto [o1, o2] = p.transition(static_cast<StateId>(s),
                                         static_cast<StateId>(t));
      PP_ASSERT_MSG(o1 == s && o2 == t,
                    "protocol claims is_count_determined() but has a "
                    "productive off-diagonal rule");
    }
  }
}

RunResult CountEngine::run(Rng& rng, const RunOptions& opt, u64 handoff_gap,
                           CountRunStatus* status) {
  const u64 n = p_.num_agents();
  PP_ASSERT_MSG(n >= 2, "count engine needs n >= 2 (no pairs otherwise)");
  const double pairs = static_cast<double>(n) * static_cast<double>(n - 1);

  // Snapshot the protocol's current configuration; from here to write-back
  // the count vector and its mass tree are the entire simulation state.
  counts_ = p_.counts();
  {
    std::vector<u64> masses(counts_.size());
    for (u64 s = 0; s < counts_.size(); ++s) {
      masses[s] = diagonal_mass(counts_[s]);
    }
    mass_.assign(std::move(masses));
  }

  // With an observer installed the protocol must stay live (on_change takes
  // const Protocol&), so events are mirrored into it as they happen; the
  // bulk path skips the mirror and writes back once at exit.
  const bool sync = static_cast<bool>(opt.on_change);

  RunResult r;
  bool handed_off = false;
  while (true) {
    const u64 w = mass_.total();
    if (w == 0) break;
    const double prob = static_cast<double>(w) / pairs;
    // Same generator consumption as run_accelerated: one geometric gap...
    const u64 before = r.interactions;
    if (!advance_past_nulls(rng, prob, opt.max_interactions, r.interactions)) {
      break;
    }
    const u64 gap = r.interactions - before - 1;
    if (status != nullptr) {
      const u32 bucket = obs::sketch_bucket(gap);
      ++status->gap_sketch[bucket];
      status->max_gap_bucket = std::max(status->max_gap_bucket, bucket);
    }
    // ...then one uniform draw below W, resolved through a Fenwick whose
    // leaves match the protocol's rank_weight_ tree entry for entry — so
    // find() lands on the same state step_productive would pick.
    const StateId s = static_cast<StateId>(mass_.find(rng.below(w)));
    const DiagonalRule rule = delta_[s];
    counts_[s] -= 2;
    ++counts_[rule.out1];
    ++counts_[rule.out2];
    mass_.set(s, diagonal_mass(counts_[s]));
    mass_.set(rule.out1, diagonal_mass(counts_[rule.out1]));
    mass_.set(rule.out2, diagonal_mass(counts_[rule.out2]));
    ++r.productive_steps;
    if (sync) {
      p_.apply_pair(s, s);
      if (!opt.on_change(p_, r.interactions)) {
        r.aborted = true;
        break;
      }
    }
    // Handoff is checked *after* the event that closed the gap, so a
    // handed-off prefix is bit-identical to the same seed's
    // run_accelerated prefix and the tail engine starts from a
    // post-productive-step configuration.
    if (handoff_gap > 0 && gap >= handoff_gap) {
      handed_off = true;
      break;
    }
  }

  if (status != nullptr) status->handed_off = handed_off;
  if (!sync) {
    p_.reset(Configuration(counts_));
  }
  return finish(p_, r);
}

RunResult run_count(Protocol& p, Rng& rng, const RunOptions& opt) {
  CountEngine engine(p);
  return engine.run(rng, opt);
}

}  // namespace pp
