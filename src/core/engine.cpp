#include "core/engine.hpp"

#include "common/assert.hpp"

namespace pp {
namespace {

RunResult finish(const Protocol& p, RunResult r) {
  r.silent = p.is_silent();
  r.valid = p.is_valid_ranking();
  r.parallel_time =
      static_cast<double>(r.interactions) / static_cast<double>(p.num_agents());
  return r;
}

}  // namespace

RunResult run_accelerated(Protocol& p, Rng& rng, const RunOptions& opt) {
  const u64 n = p.num_agents();
  const double pairs = static_cast<double>(n) * static_cast<double>(n - 1);
  RunResult r;
  while (true) {
    const u64 w = p.productive_weight();
    if (w == 0) break;
    const double prob = static_cast<double>(w) / pairs;
    const u64 skip = rng.geometric_failures(prob);
    PP_DCHECK(skip != Rng::kGeometricInfinity);
    // The next productive interaction is number r.interactions + skip + 1.
    if (skip >= opt.max_interactions - r.interactions) {
      r.interactions = opt.max_interactions;
      return finish(p, r);
    }
    r.interactions += skip + 1;
    p.step_productive(rng);
    ++r.productive_steps;
    if (opt.on_change && !opt.on_change(p, r.interactions)) {
      r.aborted = true;
      return finish(p, r);
    }
  }
  return finish(p, r);
}

RunResult run_uniform(Protocol& p, Rng& rng, const RunOptions& opt) {
  RunResult r;
  while (p.productive_weight() != 0) {
    if (r.interactions >= opt.max_interactions) return finish(p, r);
    ++r.interactions;
    if (p.step_uniform(rng)) {
      ++r.productive_steps;
      if (opt.on_change && !opt.on_change(p, r.interactions)) {
        r.aborted = true;
        return finish(p, r);
      }
    }
  }
  return finish(p, r);
}

}  // namespace pp
