#include "core/engine.hpp"

#include "common/assert.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"

namespace pp {
namespace {

// Common exit path of both engines; also enforces the RunResult contract
// that observers and the parallel runner rely on: interactions never
// undercounts productive_steps, and `silent` stays defined as
// productive_weight()==0 on the protocol object itself.  The second assert
// is a tripwire against future drift (e.g. silent becoming a cached flag
// that can go stale); an *independent* recount of silence from the formal
// transition function lives in tests/test_engine.cpp, not on the hot path.
RunResult finish(const Protocol& p, RunResult r) {
  r.silent = p.is_silent();
  r.valid = p.is_valid_ranking();
  r.parallel_time =
      static_cast<double>(r.interactions) / static_cast<double>(p.num_agents());
  PP_ASSERT_MSG(r.interactions >= r.productive_steps,
                "engine contract: interactions >= productive_steps");
  PP_ASSERT_MSG(!r.silent || p.productive_weight() == 0,
                "engine contract: silent implies productive_weight()==0");
  return r;
}

}  // namespace

bool advance_past_nulls(Rng& rng, double prob, u64 budget,
                        u64& interactions) {
  const u64 skip = rng.geometric_failures(prob);
  // For astronomically small `prob` the sampled gap can exceed u64 range
  // (geometric_failures saturates at kGeometricInfinity).  Any such gap
  // necessarily overruns the interaction budget, so clamp to it instead
  // of treating the sentinel as an ordinary gap length.
  if (skip == Rng::kGeometricInfinity || skip >= budget - interactions) {
    interactions = budget;
    return false;
  }
  interactions += skip + 1;
  // The one productive-step gate every null-skipping engine passes
  // through (accelerated uniform, graph-restricted, weighted, dynamic) —
  // counters and the flagged-trial step trace hook in here once.
  PP_OBS_ADD(kNullSkips, skip);
  PP_OBS_SKETCH(kNullSkipGap, skip);
  PP_OBS_INC(kProductiveSteps);
  PP_OBS_TRACE_STEP(interactions);
  return true;
}

RunResult run_accelerated(Protocol& p, Rng& rng, const RunOptions& opt) {
  const u64 n = p.num_agents();
  PP_ASSERT_MSG(n >= 2, "run_accelerated needs n >= 2 (no pairs otherwise)");
  const double pairs = static_cast<double>(n) * static_cast<double>(n - 1);
  RunResult r;
  while (true) {
    const u64 w = p.productive_weight();
    if (w == 0) break;
    const double prob = static_cast<double>(w) / pairs;
    if (!advance_past_nulls(rng, prob, opt.max_interactions,
                            r.interactions)) {
      return finish(p, r);
    }
    p.step_productive(rng);
    ++r.productive_steps;
    if (opt.on_change && !opt.on_change(p, r.interactions)) {
      r.aborted = true;
      return finish(p, r);
    }
  }
  return finish(p, r);
}

RunResult run_uniform(Protocol& p, Rng& rng, const RunOptions& opt) {
  PP_ASSERT_MSG(p.num_agents() >= 2,
                "run_uniform needs n >= 2 (no pairs otherwise)");
  RunResult r;
  while (p.productive_weight() != 0) {
    if (r.interactions >= opt.max_interactions) return finish(p, r);
    ++r.interactions;
    if (p.step_uniform(rng)) {
      ++r.productive_steps;
      PP_OBS_INC(kProductiveSteps);
      PP_OBS_TRACE_STEP(r.interactions);
      if (opt.on_change && !opt.on_change(p, r.interactions)) {
        r.aborted = true;
        return finish(p, r);
      }
    }
  }
  return finish(p, r);
}

// pp::run(p, rng, opt) — the scheduler-dispatching entry point declared
// above — is defined in schedulers/scheduler.cpp: it needs the Scheduler
// vtable, and keeping that out of this file keeps src/core compilable
// without src/schedulers.

}  // namespace pp
