#include "core/hybrid_engine.hpp"

#include "common/assert.hpp"
#include "core/count_engine.hpp"
#include "obs/counters.hpp"

namespace pp {
namespace {

/// Lower edge of the log2 sketch bucket containing gap_factor · n: the
/// smallest gap that shares a bucket with the nominal threshold.  Keying
/// the comparison to the bucket edge (rather than the raw product) makes
/// the policy exactly "the gap sketch crossed bucket B", so an observer
/// reading the obs registry's kNullSkipGap sketch sees the handoff as a
/// first entry in bucket >= B.
u64 bucket_edge(u64 gap_factor, u64 n) {
  if (gap_factor == 0) return 0;
  const u64 nominal =
      gap_factor > ~static_cast<u64>(0) / n ? ~static_cast<u64>(0)
                                            : gap_factor * n;
  const u32 bucket = obs::sketch_bucket(nominal);  // >= 1 since nominal >= 2
  return static_cast<u64>(1) << (bucket - 1);
}

}  // namespace

RunResult run_hybrid(Protocol& p, Rng& rng, const RunOptions& opt,
                     const HybridOptions& hopt, HybridReport* report) {
  if (report != nullptr) *report = HybridReport{};
  if (!p.is_count_determined()) {
    // Wholesale fallback keeps the hybrid a total function of the protocol
    // roster: line/tree (extra-state machinery) run the plain exact engine.
    return run_accelerated(p, rng, opt);
  }

  const u64 handoff_gap = bucket_edge(hopt.gap_factor, p.num_agents());
  CountEngine bulk(p);
  CountRunStatus status;
  RunResult r = bulk.run(rng, opt, handoff_gap, &status);
  if (report != nullptr) {
    report->count_phase = true;
    report->handed_off = status.handed_off;
    report->handoff_gap = handoff_gap;
    report->bulk_interactions = r.interactions;
    report->bulk_productive = r.productive_steps;
    report->max_gap_bucket = status.max_gap_bucket;
  }
  if (!status.handed_off) return r;  // silence, budget, or abort — done

  // End-game tail on the exact agent-level engine, same generator, budget
  // and observer offset by the bulk (the run_clean_tail pattern of the
  // fault-model schedulers, kept local so src/core stays scheduler-free).
  PP_DCHECK(!r.aborted);
  RunOptions tail;
  tail.max_interactions = opt.max_interactions - r.interactions;
  if (opt.on_change) {
    const u64 base = r.interactions;
    const auto& outer = opt.on_change;
    tail.on_change = [&outer, base](const Protocol& q, u64 k) {
      return outer(q, base + k);
    };
  }
  const RunResult end_game = run_accelerated(p, rng, tail);
  r.interactions += end_game.interactions;
  r.productive_steps += end_game.productive_steps;
  r.aborted = end_game.aborted;
  r.silent = end_game.silent;
  r.valid = end_game.valid;
  r.parallel_time =
      static_cast<double>(r.interactions) / static_cast<double>(p.num_agents());
  PP_ASSERT_MSG(r.interactions >= r.productive_steps,
                "engine contract: interactions >= productive_steps");
  return r;
}

}  // namespace pp
