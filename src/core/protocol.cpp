#include "core/protocol.hpp"

#include "common/assert.hpp"

namespace pp {

Protocol::Protocol(u64 num_agents, u64 num_ranks, u64 num_extra)
    : n_agents_(num_agents),
      n_ranks_(num_ranks),
      n_states_(num_ranks + num_extra) {
  PP_ASSERT_MSG(n_agents_ >= 2, "need at least two agents to interact");
  PP_ASSERT_MSG(n_ranks_ >= 1, "need at least one rank state");
  counts_.assign(n_states_, 0);
  rank_weight_.reset(n_ranks_);
  count_all_.reset(n_states_);
}

void Protocol::reset(const Configuration& c) {
  PP_ASSERT_MSG(c.num_states() == n_states_,
                "configuration has wrong number of states");
  PP_ASSERT_MSG(c.agents() == n_agents_,
                "configuration has wrong number of agents");
  PP_ASSERT_MSG(rules_.size() == n_ranks_,
                "derived protocol did not install its rule table");
  counts_ = c.counts;
  rank_weight_.reset(n_ranks_);
  count_all_.reset(n_states_);
  for (StateId s = 0; s < n_states_; ++s) {
    if (counts_[s] == 0) continue;
    count_all_.set(s, counts_[s]);
    if (s < n_ranks_) rank_weight_.set(s, counts_[s] * (counts_[s] - 1));
  }
  on_reset();
}

void Protocol::mutate(StateId s, i64 delta) {
  PP_DCHECK(s < n_states_);
  if (delta == 0) return;
  if (delta < 0) {
    PP_ASSERT_MSG(counts_[s] >= static_cast<u64>(-delta),
                  "mutate would drive a state count negative");
  }
  counts_[s] = static_cast<u64>(static_cast<i64>(counts_[s]) + delta);
  count_all_.add(s, delta);
  if (s < n_ranks_) {
    const u64 c = counts_[s];
    rank_weight_.set(s, c * (c - (c > 0 ? 1 : 0)));
  }
}

void Protocol::apply_rank_rule(StateId s) {
  PP_DCHECK(s < n_ranks_);
  PP_DCHECK(counts_[s] >= 2);
  const Rule r = rules_[s];
  mutate(s, -2);
  mutate(r.out1, +1);
  mutate(r.out2, +1);
}

void Protocol::step_productive(Rng& rng) {
  const u64 w_rank = rank_weight_.total();
  const u64 w_extra = extra_weight();
  PP_ASSERT_MSG(w_rank + w_extra > 0, "step_productive on a silent protocol");
  const u64 target = rng.below(w_rank + w_extra);
  if (target < w_rank) {
    apply_rank_rule(static_cast<StateId>(rank_weight_.find(target)));
  } else {
    step_extra(target - w_rank, rng);
  }
}

bool Protocol::step_uniform(Rng& rng) {
  // Initiator uniform among agents; responder uniform among the rest.
  const StateId si =
      static_cast<StateId>(count_all_.find(rng.below(n_agents_)));
  count_all_.add(si, -1);
  const StateId sr =
      static_cast<StateId>(count_all_.find(rng.below(n_agents_ - 1)));
  count_all_.add(si, +1);

  if (si < n_ranks_ && sr < n_ranks_) {
    if (si != sr) return false;  // state-optimal rules are (s,s) only
    apply_rank_rule(si);
    return true;
  }
  return apply_cross(si, sr);
}

std::pair<StateId, StateId> Protocol::apply_pair(StateId initiator,
                                                 StateId responder) {
  PP_DCHECK(initiator < n_states_ && responder < n_states_);
  PP_DCHECK(counts_[initiator] >= 1);
  PP_DCHECK(counts_[responder] >=
            (initiator == responder ? static_cast<u64>(2) : 1));
  const auto [i2, r2] = transition(initiator, responder);
  if (i2 == initiator && r2 == responder) return {initiator, responder};
  mutate(initiator, -1);
  mutate(responder, -1);
  mutate(i2, +1);
  mutate(r2, +1);
  return {i2, r2};
}

void Protocol::step_extra(u64 /*target*/, Rng& /*rng*/) {
  PP_ASSERT_MSG(false, "protocol reported extra_weight() but does not "
                       "implement step_extra()");
}

bool Protocol::apply_cross(StateId /*initiator*/, StateId /*responder*/) {
  PP_ASSERT_MSG(false, "protocol has extra states but does not implement "
                       "apply_cross()");
  return false;
}

bool Protocol::is_valid_ranking() const {
  return n_agents_ == n_ranks_ && rank_weight_.total() == 0 &&
         rank_agents() == n_agents_;
}

std::string Protocol::describe_state(StateId s) const {
  if (s < n_ranks_) return "rank " + std::to_string(s);
  return "extra " + std::to_string(s - n_ranks_);
}

}  // namespace pp
