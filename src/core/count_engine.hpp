// Count-vector Gillespie engine for identity-free protocols.
//
// The agent-array engines cap out when per-agent state dominates, but for a
// protocol whose δ ignores agent identity (Protocol::is_count_determined():
// ag, ring-of-traps — no extra states, every productive rule a same-state
// rank rule) the dynamics are a pure function of the state-count vector.
// This engine simulates exactly that Markov chain on counts:
//
//   * the candidate transitions are the O(states) diagonal entries of the
//     O(states²) ordered-pair table — δ(s,t) is null off the diagonal for a
//     count-determined protocol, which the constructor cross-checks — with
//     productive mass c_s·(c_s − 1) per diagonal state (the off-diagonal
//     masses c_s·c_t all carry weight 0);
//   * events are sampled from a Fenwick tree over those masses (the same
//     data structure the protocols use), O(log states) per event;
//   * null interactions are folded with the *identical* geometric-skip
//     contract as run_accelerated (advance_past_nulls: success probability
//     W / n(n−1), kGeometricInfinity clamped to the budget, the same obs
//     hooks) — so per-event cost is independent of n.
//
// Because the engine consumes the generator exactly like run_accelerated —
// one geometric gap, then one uniform draw below W resolved through a
// Fenwick with identical leaf contents — a run is **bit-identical
// seed-for-seed** to run_accelerated on any count-determined protocol
// (pinned by tests/test_count_engine.cpp).  What changes is the working
// set: the engine owns one count vector and one mass tree, touching no
// per-agent structure, which is what lets the hybrid driver
// (core/hybrid_engine.hpp) and the s3 bench section push n to 10^7–10^8.
//
// The protocol object is left consistent: the final configuration is
// written back (or, when an observer is installed, kept in sync event by
// event so the observer always sees a live Protocol&).
#pragma once

#include <array>
#include <vector>

#include "common/types.hpp"
#include "core/engine.hpp"
#include "core/protocol.hpp"
#include "obs/counters.hpp"
#include "rng/random.hpp"

namespace pp {

/// Per-run status of the count phase beyond the RunResult — the hybrid
/// driver's handoff policy and its tests key off these.  The gap sketch is
/// engine-local (not the obs registry), so the switching policy works and
/// stays deterministic per seed even in a POPRANK_OBS=OFF build.
struct CountRunStatus {
  /// True when the run stopped because a null-skip gap reached the
  /// caller's handoff threshold (end-game starvation) rather than
  /// silence/budget/abort.
  bool handed_off = false;
  /// Largest log2 gap bucket observed (obs::sketch_bucket semantics).
  u32 max_gap_bucket = 0;
  /// Log2 histogram of null-skip gap lengths, bucket = bit_width(gap).
  std::array<u64, obs::kSketchBuckets> gap_sketch{};
};

class CountEngine {
 public:
  /// Requires p.is_count_determined(); cross-checks the promise by probing
  /// δ off the diagonal (exhaustively for small state spaces, on a
  /// deterministic strided sample for large ones) and precomputes the
  /// diagonal rule table from the formal transition function.
  explicit CountEngine(Protocol& p);

  /// Runs from p's current configuration to silence, budget exhaustion,
  /// observer abort — or, when handoff_gap > 0, until a sampled null gap
  /// reaches handoff_gap (the event that follows the gap is still applied,
  /// so a handed-off prefix is bit-identical to the run_accelerated
  /// prefix).  The final configuration is written back into the protocol
  /// before returning; RunResult carries the usual engine contract.
  RunResult run(Rng& rng, const RunOptions& opt = {}, u64 handoff_gap = 0,
                CountRunStatus* status = nullptr);

 private:
  /// Diagonal rule δ(s,s) -> (out1, out2), read off transition().
  struct DiagonalRule {
    StateId out1;
    StateId out2;
  };

  Protocol& p_;
  std::vector<DiagonalRule> delta_;  ///< δ(s,s) per rank state
  std::vector<u64> counts_;          ///< engine-owned count vector
  Fenwick mass_;                     ///< c_s(c_s − 1) per rank state
};

/// Convenience entry point mirroring run_accelerated / run_uniform.
RunResult run_count(Protocol& p, Rng& rng, const RunOptions& opt = {});

}  // namespace pp
