// Leader election on top of ranking (paper §1, §6).
//
// Solving ranking solves leader election: declare the agent holding rank 0
// the leader.  Because ranking protocols here are silent and stable, the
// elected leader is unique and permanent once the population stabilises,
// and the election is self-stabilising — after arbitrary transient faults
// the population re-elects exactly one leader.
//
// This adapter owns a ranking protocol and exposes the leader-election
// view of it; the `leader_election` example drives it through fault
// injection.
#pragma once

#include <memory>

#include "core/engine.hpp"
#include "core/initial.hpp"
#include "core/protocol.hpp"

namespace pp {

class LeaderElection {
 public:
  explicit LeaderElection(ProtocolPtr ranking);

  Protocol& protocol() { return *ranking_; }
  const Protocol& protocol() const { return *ranking_; }

  /// Number of agents currently claiming leadership (rank 0).
  u64 leader_count() const { return ranking_->counts()[0]; }

  /// Stable outcome: exactly one leader and the population is silent.
  bool has_stable_unique_leader() const {
    return ranking_->is_silent() && leader_count() == 1;
  }

  /// Runs the accelerated engine until silence (or budget); returns the
  /// engine's result.
  RunResult stabilise(Rng& rng, const RunOptions& opt = {});

  /// Injects `faults` transient faults into the current configuration.
  void inject_faults(u64 faults, Rng& rng);

 private:
  ProtocolPtr ranking_;
};

}  // namespace pp
