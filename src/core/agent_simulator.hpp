// Agent-level reference simulator.
//
// The production engines (core/engine.hpp) are count-based and lean on
// per-protocol Fenwick bookkeeping for speed.  This module is the
// gold-standard cross-check: it stores one explicit state per agent and
// drives the simulation through nothing but the protocol's formal
// transition function δ — exactly the model of the paper:
//
//   repeat: draw an ordered pair (initiator, responder) of distinct agents
//           uniformly at random; apply δ to their states.
//
// Silence is detected from first principles as well: a configuration is
// silent iff δ changes no ordered pair of occupied states (an O(states^2)
// scan, re-run only when the configuration changed since the last scan).
//
// It is deliberately slow and simple; tests use it to validate the
// optimized engines' trajectories, final configurations and productive
// weights (see reference_productive_weight).
#pragma once

#include <vector>

#include "core/engine.hpp"
#include "core/protocol.hpp"

namespace pp {

/// Brute-force count of productive ordered agent pairs of `counts` under
/// the protocol's transition(): sum over ordered state pairs (s1, s2) with
/// δ(s1,s2) != (s1,s2) of c1 * (c2 - [s1 == s2]).  Must equal
/// Protocol::productive_weight() in every reachable configuration.
u64 reference_productive_weight(const Protocol& p,
                                const std::vector<u64>& counts);

class AgentSimulator {
 public:
  /// The simulator drives `p` only through transition(); the protocol's
  /// own mutable state is not touched.
  AgentSimulator(const Protocol& p, const Configuration& initial);

  /// Per-agent states (size = num_agents).
  const std::vector<StateId>& agents() const { return agents_; }

  /// Current per-state counts.
  const std::vector<u64>& counts() const { return counts_; }

  /// Applies one uniformly random ordered-pair interaction; returns true
  /// iff some agent changed state.
  bool step(Rng& rng);

  /// Brute-force silence check (cached between configuration changes).
  bool is_silent();

  bool is_valid_ranking() const;

  /// Runs to silence or budget; same result contract as the engines.
  /// Note: opt.on_change receives the (immutable) protocol object — its
  /// counts() do NOT track this simulator; read AgentSimulator::counts()
  /// instead.
  RunResult run(Rng& rng, const RunOptions& opt = {});

 private:
  const Protocol& protocol_;
  std::vector<StateId> agents_;
  std::vector<u64> counts_;
  bool dirty_ = true;       // configuration changed since last silence scan
  bool silent_ = false;     // valid only when !dirty_
};

}  // namespace pp
