#include "obs/watchdog.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "obs/trace.hpp"

namespace pp::obs {

namespace {

double env_seconds(const char* name) {
  const char* v = std::getenv(name);
  if (v == nullptr || v[0] == '\0') return 0;
  const double s = std::strtod(v, nullptr);
  return s > 0 ? s : 0;
}

}  // namespace

WatchdogOptions watchdog_options_from_env(std::string label, u64 total_trials,
                                          u64 population) {
  WatchdogOptions opt;
  opt.heartbeat_seconds = env_seconds("POPRANK_HEARTBEAT");
  opt.stall_seconds = env_seconds("POPRANK_STALL_TIMEOUT");
  opt.label = std::move(label);
  opt.total_trials = total_trials;
  opt.population = population;
  return opt;
}

ProgressMonitor::ProgressMonitor(WatchdogOptions opt) : opt_(std::move(opt)) {
  if (opt_.heartbeat_seconds <= 0 && opt_.stall_seconds <= 0) return;
  start_us_ = now_us();
  last_heartbeat_us_ = start_us_;
  thread_ = std::thread([this] { loop(); });
}

ProgressMonitor::~ProgressMonitor() {
  if (!thread_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  thread_.join();
}

void ProgressMonitor::trial_started(u64 trial) {
  if (!enabled() || opt_.stall_seconds <= 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  active_.push_back(ActiveTrial{trial, now_us(), false});
}

void ProgressMonitor::trial_finished(u64 trial, u64 interactions) {
  trials_done_.fetch_add(1, std::memory_order_relaxed);
  interactions_done_.fetch_add(interactions, std::memory_order_relaxed);
  if (!enabled() || opt_.stall_seconds <= 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  for (u64 i = 0; i < active_.size(); ++i) {
    if (active_[i].trial == trial) {
      active_.erase(active_.begin() + static_cast<i64>(i));
      break;
    }
  }
}

void ProgressMonitor::loop() {
  // Wake often enough to honour both deadlines without busy-waiting: the
  // heartbeat interval, a quarter of the stall timeout, whichever is due
  // sooner (capped below at 10 ms to stay robust against tiny settings).
  double interval = 3600;
  if (opt_.heartbeat_seconds > 0) interval = opt_.heartbeat_seconds;
  if (opt_.stall_seconds > 0 && opt_.stall_seconds / 4 < interval) {
    interval = opt_.stall_seconds / 4;
  }
  if (interval < 0.01) interval = 0.01;
  const auto wait = std::chrono::duration<double>(interval);
  std::unique_lock<std::mutex> lock(mu_);
  while (!stopping_) {
    cv_.wait_for(lock, wait);
    if (stopping_) break;
    lock.unlock();
    tick(false);
    lock.lock();
  }
}

void ProgressMonitor::force_tick() { tick(true); }

void ProgressMonitor::tick(bool force_heartbeat) {
  const u64 now = now_us();
  if (opt_.heartbeat_seconds > 0) {
    const u64 due_us = static_cast<u64>(opt_.heartbeat_seconds * 1e6);
    u64 last = last_heartbeat_us_.load(std::memory_order_relaxed);
    if (force_heartbeat || now - last >= due_us) {
      // CAS so the monitor thread and a concurrent force_tick() caller
      // can't both claim the same interval; a forced tick emits its line
      // regardless (callers use it to flush a final progress report).
      const bool claimed = last_heartbeat_us_.compare_exchange_strong(
          last, now, std::memory_order_relaxed);
      if (claimed || force_heartbeat) emit_heartbeat(now);
    }
  }
  if (opt_.stall_seconds > 0) scan_for_stalls(now);
}

void ProgressMonitor::emit_heartbeat(u64 now) {
  const u64 done = trials_done_.load(std::memory_order_relaxed);
  const u64 inter = interactions_done_.load(std::memory_order_relaxed);
  const double elapsed = static_cast<double>(now - start_us_) / 1e6;
  const double tps = elapsed > 0 ? static_cast<double>(done) / elapsed : 0;
  const double ips = elapsed > 0 ? static_cast<double>(inter) / elapsed : 0;
  std::string eta = "?";
  if (tps > 0 && opt_.total_trials >= done) {
    const double remaining = static_cast<double>(opt_.total_trials - done) / tps;
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0fs", remaining);
    eta = buf;
  }
  std::fprintf(stderr,
               "[poprank] %s: %llu/%llu trials, %.2f trials/s, "
               "%.3g interactions/s, ETA %s\n",
               opt_.label.c_str(), static_cast<unsigned long long>(done),
               static_cast<unsigned long long>(opt_.total_trials), tps, ips,
               eta.c_str());
  trace_instant("heartbeat", "\"trials_done\":" + std::to_string(done) +
                                 ",\"trials\":" +
                                 std::to_string(opt_.total_trials));
  heartbeats_.fetch_add(1, std::memory_order_relaxed);
}

void ProgressMonitor::scan_for_stalls(u64 now) {
  const u64 limit_us = static_cast<u64>(opt_.stall_seconds * 1e6);
  std::vector<ActiveTrial> stalled;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (ActiveTrial& t : active_) {
      if (!t.dumped && now - t.since_us >= limit_us) {
        t.dumped = true;
        stalled.push_back(t);
      }
    }
  }
  if (stalled.empty()) return;
  for (const ActiveTrial& t : stalled) {
    const double age = static_cast<double>(now - t.since_us) / 1e6;
    std::fprintf(stderr,
                 "[poprank] STALL: %s trial %llu has run %.1f s "
                 "(limit %.1f s); live span stacks:\n",
                 opt_.label.c_str(), static_cast<unsigned long long>(t.trial),
                 age, opt_.stall_seconds);
  }
  const std::vector<SpanStackSnapshot> stacks = live_span_stacks();
  if (stacks.empty()) {
    std::fprintf(stderr,
                 "  (no span stacks — build with -DPOPRANK_OBS=ON for "
                 "per-thread context)\n");
  }
  for (const SpanStackSnapshot& s : stacks) {
    std::string joined;
    for (const std::string& frame : s.frames) {
      if (!joined.empty()) joined += " > ";
      joined += frame;
    }
    if (joined.empty()) joined = "(idle)";
    std::fprintf(stderr, "  thread %u: %s\n", s.tid, joined.c_str());
  }
  trace_instant("stall", "\"trial\":" + std::to_string(stalled[0].trial));
  stall_dumps_.fetch_add(stalled.size(), std::memory_order_relaxed);
  if (opt_.abort_on_stall) {
    std::fprintf(stderr, "[poprank] aborting on stalled trial\n");
    std::abort();
  }
}

}  // namespace pp::obs
