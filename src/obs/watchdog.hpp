// Runner heartbeat + stalled-trial watchdog.
//
// Long sweeps on CI fail in the worst possible way: silently, by eating
// the per-test 300 s ceiling and getting killed with no clue which trial
// hung.  ProgressMonitor is the antidote — a small background thread the
// runner starts around each trial set that
//
//   * prints a heartbeat line every POPRANK_HEARTBEAT seconds (trials
//     done/total, trials/s, interactions/s, ETA) to stderr, and mirrors
//     it as a trace instant event when a trace session is active; and
//
//   * watches every in-flight trial's age.  When one exceeds
//     POPRANK_STALL_TIMEOUT seconds the monitor dumps the stalled trial
//     and every live span stack (obs/trace.hpp) to stderr — "trial 17,
//     in scheduler-run > markov-loop for 63 s" — and then aborts, so CI
//     reports a diagnosed failure in stall_timeout seconds instead of an
//     anonymous timeout at the ceiling.
//
// Both behaviours are off unless their environment variable sets a
// positive number of seconds; a disabled monitor starts no thread and
// costs two relaxed atomic writes per trial.  This header is compiled
// unconditionally — the monitor never touches trajectories (no RNG, no
// clock reads on the trial threads), so it is safe to keep even in the
// bit-identical POPRANK_OBS=OFF builds (its span-stack dumps are simply
// empty there).
#pragma once

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/types.hpp"

namespace pp::obs {

struct WatchdogOptions {
  double heartbeat_seconds = 0;  ///< 0 = no heartbeat
  double stall_seconds = 0;      ///< 0 = no stall detection
  bool abort_on_stall = true;    ///< tests set false to observe the dump
  std::string label;             ///< printed on every line
  u64 total_trials = 0;
  u64 population = 0;  ///< n, for the interactions/s rate line
};

/// Reads POPRANK_HEARTBEAT / POPRANK_STALL_TIMEOUT (seconds; unset, empty
/// or <= 0 disables the respective behaviour).
WatchdogOptions watchdog_options_from_env(std::string label, u64 total_trials,
                                          u64 population);

class ProgressMonitor {
 public:
  explicit ProgressMonitor(WatchdogOptions opt);
  ~ProgressMonitor();
  ProgressMonitor(const ProgressMonitor&) = delete;
  ProgressMonitor& operator=(const ProgressMonitor&) = delete;

  bool enabled() const { return thread_.joinable(); }

  /// Called by the trial threads (cheap; lock-free when disabled).
  void trial_started(u64 trial);
  void trial_finished(u64 trial, u64 interactions);

  // Introspection for tests.
  u64 heartbeats() const { return heartbeats_.load(); }
  u64 stall_dumps() const { return stall_dumps_.load(); }
  /// Runs one monitor pass (heartbeat if due, stall scan) synchronously.
  void force_tick();

 private:
  struct ActiveTrial {
    u64 trial = 0;
    u64 since_us = 0;
    bool dumped = false;  ///< dump once per stalled trial, not per scan
  };

  void loop();
  void tick(bool force_heartbeat);
  void emit_heartbeat(u64 now);
  void scan_for_stalls(u64 now);

  WatchdogOptions opt_;
  std::atomic<u64> trials_done_{0};
  std::atomic<u64> interactions_done_{0};
  std::atomic<u64> heartbeats_{0};
  std::atomic<u64> stall_dumps_{0};

  std::mutex mu_;  // guards active_ and cv_
  std::vector<ActiveTrial> active_;
  std::condition_variable cv_;
  bool stopping_ = false;

  u64 start_us_ = 0;  // written before thread_ starts, read-only after
  // tick() runs on the monitor thread AND on any caller of force_tick();
  // the heartbeat clock they both read-modify-write must be atomic.
  std::atomic<u64> last_heartbeat_us_{0};
  std::thread thread_;
};

}  // namespace pp::obs
