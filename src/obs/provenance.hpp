// Run provenance manifests: every BENCH/CSV/JSONL artifact gains a
// sidecar `<artifact>.manifest.json` (JSON-lines) recording enough to
// replay any of its measurement points bit-for-bit:
//
//   header  {"kind":"manifest","artifact":...,"git_sha":...,
//            "build_type":...,"sanitize":...,"obs":true,"run_id":...}
//   point   {"kind":"point","label":...,"n":...,"param":...,
//            "master_seed":...,"trials":...,"threads":...,
//            "scheduler":"churn[0.02/uniform-state]",
//            "spec":"protocol=ag;n=64;engine=2;sched.kind=7;...",
//            "spec_hash":"fnv1a64:...","replayable":true,
//            "counters":{...}}
//
// The "spec" field is the load-bearing one: a canonical key=value
// serialisation of the full TrialSpec (SchedulerSpec included, doubles
// at 17 significant digits) that spec_from_kv() parses back into an
// equivalent spec.  Because the runner derives every trial's RNG stream
// from (master_seed, label, trial) alone, re-running the parsed spec
// with the recorded master seed reproduces each TrialRecord bit for bit
// — tests/test_obs.cpp pins exactly that round trip, and the manifest
// needs no access to the original binary's command line.
//
// Replayability has two honest exceptions, flagged per point: an
// explicit ProtocolFactory without a registry name, and a custom
// ConfigGenerator other than gen_uniform_random() (recognised by its
// named functor; behaviourally identical to the runner's default).
// Points carrying either are recorded with "replayable":false rather
// than silently mis-recorded.
//
// spec_hash is FNV-1a 64 over the canonical spec string — cheap for the
// stdlib-only python checker to recompute, and a stable join key between
// BENCH records, manifests and bench/history.jsonl.
#pragma once

#include <string>
#include <string_view>

#include "runner/runner.hpp"

namespace pp::obs {

/// Build-time provenance, injected by CMake into provenance.cpp alone
/// (PP_GIT_SHA / PP_BUILD_TYPE / PP_SANITIZE) so a SHA bump does not
/// rebuild the world.  Values read "unknown" under a bare compile.
struct BuildInfo {
  const char* git_sha;
  const char* build_type;
  const char* sanitize;
  bool obs_enabled;
};
BuildInfo build_info();

/// FNV-1a 64 (the library-wide string hash family; see
/// rng/seed_sequence.hpp for the seeded variant).
u64 fnv1a64(std::string_view s);

/// Canonical key=value;... serialisation of `spec` — every TrialSpec and
/// SchedulerSpec field, enums as integers, doubles round-trip exact.
std::string spec_to_kv(const TrialSpec& spec);

/// Parses spec_to_kv() output back into a TrialSpec (asserts on unknown
/// keys or a non-replayable spec).
TrialSpec spec_from_kv(const std::string& kv);

/// True when spec_to_kv() captures everything needed to re-run `spec`:
/// a registry-named protocol (or none needed) and a default or
/// uniform-random initial-configuration generator.
bool spec_is_replayable(const TrialSpec& spec);

/// "fnv1a64:<hex>" over the canonical serialisation.
std::string spec_hash(const TrialSpec& spec);

/// Everything needed to replay one manifest point.
struct ReplayPoint {
  TrialSpec spec;
  u64 master_seed = 0;
  u64 trials = 0;
  bool replayable = false;
};

/// Parses one manifest "point" line (minimal flat-JSON field extraction;
/// asserts the line is a point record).
ReplayPoint parse_manifest_point(const std::string& line);

/// Extracts a top-level scalar field from one line of flat JSON emitted
/// by this library's writers; returns "" when absent.  Exposed for the
/// tests and any tooling that wants to stay parser-free.
std::string manifest_field(const std::string& line, const std::string& key);

/// Append-only JSON-lines sidecar writer for one artifact.  A
/// default-constructed writer is disabled and swallows writes, mirroring
/// BenchLog's unwritable-path behaviour.
class ManifestWriter {
 public:
  ManifestWriter() = default;

  /// Truncates `<artifact_path>.manifest.json` and stamps the header.
  /// `run_id` ties the sidecar to its BENCH file (0 for sinks, which
  /// have no run header).
  static ManifestWriter open(const std::string& artifact_path, u64 run_id);

  bool enabled() const { return !path_.empty(); }
  const std::string& path() const { return path_; }

  /// Appends one point record; `set` supplies master_seed, threads,
  /// trial count and the merged counter dump.
  void append_point(const TrialSpec& spec, const TrialSet& set, u64 n,
                    double param) const;

 private:
  std::string path_;
  u64 run_id_ = 0;
};

}  // namespace pp::obs
