#include "obs/provenance.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/assert.hpp"
#include "common/file_io.hpp"
#include "runner/sink.hpp"  // json_escape

// Build provenance, injected by CMake onto this translation unit only.
#ifndef PP_GIT_SHA
#define PP_GIT_SHA "unknown"
#endif
#ifndef PP_BUILD_TYPE
#define PP_BUILD_TYPE "unknown"
#endif
#ifndef PP_SANITIZE
#define PP_SANITIZE "none"
#endif

namespace pp::obs {

BuildInfo build_info() {
  return BuildInfo{PP_GIT_SHA, PP_BUILD_TYPE, PP_SANITIZE, PP_OBS != 0};
}

u64 fnv1a64(std::string_view s) {
  u64 h = 14695981039346656037ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

namespace {

// ---- canonical key=value serialisation ----------------------------------

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

void put(std::string& out, std::string_view key, std::string_view value) {
  // The kv grammar has no escaping; refuse values that would corrupt it
  // (labels and protocol names in this repo are /-and-dash identifiers).
  PP_ASSERT_MSG(value.find(';') == std::string_view::npos &&
                    value.find('=') == std::string_view::npos,
                "spec kv value must not contain ';' or '='");
  out.append(key);
  out.push_back('=');
  out.append(value);
  out.push_back(';');
}

void put_u(std::string& out, std::string_view key, u64 v) {
  put(out, key, std::to_string(v));
}

void put_d(std::string& out, std::string_view key, double v) {
  put(out, key, fmt_double(v));
}

template <typename E>
void put_enum(std::string& out, std::string_view key, E v) {
  put_u(out, key, static_cast<u64>(v));
}

// How TrialSpec::init serialises: the runner's implicit default, the
// named uniform-random functor (behaviourally the same draw), or an
// opaque custom generator (recorded honestly, not replayable).
std::string init_kind(const TrialSpec& spec) {
  if (!spec.init) return "default";
  if (spec.init.target<UniformRandomGen>() != nullptr) return "uniform-random";
  return "custom";
}

}  // namespace

std::string spec_to_kv(const TrialSpec& spec) {
  std::string out;
  put(out, "protocol", spec.protocol);
  put_u(out, "n", spec.n);
  put(out, "factory", spec.factory ? "custom" : "registry");
  put(out, "init", init_kind(spec));
  put_enum(out, "engine", spec.engine);
  put_u(out, "max_interactions", spec.max_interactions);
  put(out, "label", spec.label);

  const SchedulerSpec& s = spec.scheduler;
  put_enum(out, "sched.kind", s.kind);
  put_enum(out, "sched.graph", s.graph);
  put_u(out, "sched.degree", s.degree);
  put_u(out, "sched.graph_seed", s.graph_seed);
  put_u(out, "sched.graph_accelerated", s.graph_accelerated ? 1 : 0);
  put_enum(out, "sched.kernel", s.kernel);
  put_u(out, "sched.kernel_power", s.kernel_power);
  put_u(out, "sched.dense_reference", s.dense_reference ? 1 : 0);
  put_enum(out, "sched.dynamics", s.dynamics);
  put_d(out, "sched.edge_birth", s.edge_birth);
  put_d(out, "sched.edge_death", s.edge_death);
  put_u(out, "sched.rewire_period", s.rewire_period);
  put_enum(out, "sched.adversary", s.adversary);
  put_d(out, "sched.churn_rate", s.churn_rate);
  put_u(out, "sched.churn_faults", s.churn_faults);
  put_u(out, "sched.churn_active", s.churn_active);
  put_enum(out, "sched.churn_reset", s.churn_reset);
  put_u(out, "sched.partition_blocks", s.partition_blocks);
  put_u(out, "sched.partition_split", s.partition_split);
  put_u(out, "sched.partition_heal", s.partition_heal);
  put_u(out, "sched.partition_cycles", s.partition_cycles);
  return out;
}

bool spec_is_replayable(const TrialSpec& spec) {
  if (spec.factory) return false;  // opaque; registry lookup is the record
  if (spec.protocol.empty() || spec.n == 0) return false;
  const std::string init = init_kind(spec);
  return init == "default" || init == "uniform-random";
}

std::string spec_hash(const TrialSpec& spec) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "fnv1a64:%016llx",
                static_cast<unsigned long long>(fnv1a64(spec_to_kv(spec))));
  return buf;
}

TrialSpec spec_from_kv(const std::string& kv) {
  TrialSpec spec;
  SchedulerSpec& s = spec.scheduler;
  u64 pos = 0;
  while (pos < kv.size()) {
    const u64 eq = kv.find('=', pos);
    PP_ASSERT_MSG(eq != std::string::npos, "malformed spec kv: missing '='");
    const u64 semi = kv.find(';', eq + 1);
    PP_ASSERT_MSG(semi != std::string::npos, "malformed spec kv: missing ';'");
    const std::string key = kv.substr(pos, eq - pos);
    const std::string val = kv.substr(eq + 1, semi - eq - 1);
    pos = semi + 1;

    const auto as_u = [&val] { return std::strtoull(val.c_str(), nullptr, 10); };
    const auto as_d = [&val] { return std::strtod(val.c_str(), nullptr); };

    if (key == "protocol") {
      spec.protocol = val;
    } else if (key == "n") {
      spec.n = as_u();
    } else if (key == "factory") {
      PP_ASSERT_MSG(val == "registry",
                    "spec_from_kv: custom factories are not replayable");
    } else if (key == "init") {
      PP_ASSERT_MSG(val == "default" || val == "uniform-random",
                    "spec_from_kv: custom init generators are not replayable");
      if (val == "uniform-random") spec.init = gen_uniform_random();
    } else if (key == "engine") {
      spec.engine = static_cast<EngineKind>(as_u());
    } else if (key == "max_interactions") {
      spec.max_interactions = as_u();
    } else if (key == "label") {
      spec.label = val;
    } else if (key == "sched.kind") {
      s.kind = static_cast<SchedulerKind>(as_u());
    } else if (key == "sched.graph") {
      s.graph = static_cast<GraphKind>(as_u());
    } else if (key == "sched.degree") {
      s.degree = as_u();
    } else if (key == "sched.graph_seed") {
      s.graph_seed = as_u();
    } else if (key == "sched.graph_accelerated") {
      s.graph_accelerated = as_u() != 0;
    } else if (key == "sched.kernel") {
      s.kernel = static_cast<WeightKernel>(as_u());
    } else if (key == "sched.kernel_power") {
      s.kernel_power = as_u();
    } else if (key == "sched.dense_reference") {
      s.dense_reference = as_u() != 0;
    } else if (key == "sched.dynamics") {
      s.dynamics = static_cast<GraphDynamics>(as_u());
    } else if (key == "sched.edge_birth") {
      s.edge_birth = as_d();
    } else if (key == "sched.edge_death") {
      s.edge_death = as_d();
    } else if (key == "sched.rewire_period") {
      s.rewire_period = as_u();
    } else if (key == "sched.adversary") {
      s.adversary = static_cast<AdversaryPolicy>(as_u());
    } else if (key == "sched.churn_rate") {
      s.churn_rate = as_d();
    } else if (key == "sched.churn_faults") {
      s.churn_faults = as_u();
    } else if (key == "sched.churn_active") {
      s.churn_active = as_u();
    } else if (key == "sched.churn_reset") {
      s.churn_reset = static_cast<ChurnReset>(as_u());
    } else if (key == "sched.partition_blocks") {
      s.partition_blocks = as_u();
    } else if (key == "sched.partition_split") {
      s.partition_split = as_u();
    } else if (key == "sched.partition_heal") {
      s.partition_heal = as_u();
    } else if (key == "sched.partition_cycles") {
      s.partition_cycles = as_u();
    } else {
      PP_ASSERT_MSG(false, "spec_from_kv: unknown key");
    }
  }
  return spec;
}

// ---- flat-JSON field extraction -----------------------------------------

std::string manifest_field(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const u64 at = line.find(needle);
  if (at == std::string::npos) return "";
  u64 i = at + needle.size();
  if (i >= line.size()) return "";
  if (line[i] == '"') {  // string value; unescape the writer's escapes
    std::string out;
    for (++i; i < line.size() && line[i] != '"'; ++i) {
      char c = line[i];
      if (c == '\\' && i + 1 < line.size()) {
        const char e = line[++i];
        c = e == 'n' ? '\n' : e == 't' ? '\t' : e == 'r' ? '\r' : e;
      }
      out.push_back(c);
    }
    return out;
  }
  // bare scalar: number / true / false
  u64 end = i;
  while (end < line.size() && line[end] != ',' && line[end] != '}') ++end;
  return line.substr(i, end - i);
}

ReplayPoint parse_manifest_point(const std::string& line) {
  PP_ASSERT_MSG(manifest_field(line, "kind") == "point",
                "parse_manifest_point: not a point record");
  ReplayPoint out;
  out.replayable = manifest_field(line, "replayable") == "true";
  PP_ASSERT_MSG(out.replayable,
                "parse_manifest_point: point recorded as non-replayable");
  out.spec = spec_from_kv(manifest_field(line, "spec"));
  out.master_seed =
      std::strtoull(manifest_field(line, "master_seed").c_str(), nullptr, 10);
  out.trials =
      std::strtoull(manifest_field(line, "trials").c_str(), nullptr, 10);
  return out;
}

// ---- the sidecar writer -------------------------------------------------

ManifestWriter ManifestWriter::open(const std::string& artifact_path,
                                    u64 run_id) {
  ManifestWriter w;
  const std::string path = artifact_path + ".manifest.json";
  std::ofstream f(path, std::ios::trunc);
  if (!f.good()) {
    std::fprintf(stderr, "WARNING: cannot write manifest %s\n", path.c_str());
    return w;  // disabled
  }
  const BuildInfo b = build_info();
  f << "{\"kind\":\"manifest\",\"artifact\":\"" << json_escape(artifact_path)
    << "\",\"run_id\":" << run_id << ",\"git_sha\":\"" << json_escape(b.git_sha)
    << "\",\"build_type\":\"" << json_escape(b.build_type)
    << "\",\"sanitize\":\"" << json_escape(b.sanitize)
    << "\",\"obs\":" << (b.obs_enabled ? "true" : "false") << "}\n";
  if (!f.good()) return w;
  w.path_ = path;
  w.run_id_ = run_id;
  return w;
}

void ManifestWriter::append_point(const TrialSpec& spec, const TrialSet& set,
                                  u64 n, double param) const {
  if (!enabled()) return;
  const std::string kv = spec_to_kv(spec);
  const std::string model = spec.engine == EngineKind::kScheduled
                                ? spec.scheduler.to_string()
                                : engine_kind_name(spec.engine);
  // Composed in memory, appended with one O_APPEND write: concurrent
  // writers (service worker shards sharing a sidecar path) interleave
  // whole records, never bytes within one (common/file_io.hpp).
  std::ostringstream f;
  f << "{\"kind\":\"point\",\"label\":\"" << json_escape(spec.label)
    << "\",\"n\":" << n << ",\"param\":" << fmt_double(param)
    << ",\"master_seed\":" << set.master_seed
    << ",\"trials\":" << set.stats.trials << ",\"threads\":" << set.threads
    << ",\"scheduler\":\"" << json_escape(model) << "\",\"spec\":\""
    << json_escape(kv) << "\",\"spec_hash\":\"" << spec_hash(spec)
    << "\",\"replayable\":" << (spec_is_replayable(spec) ? "true" : "false")
    << ",\"counters\":" << set.counters.to_json() << "}";
  append_line(path_, f.str());
}

}  // namespace pp::obs
