#include "obs/counters.hpp"

namespace pp::obs {

const char* counter_name(Counter c) {
  switch (c) {
    case Counter::kProductiveSteps:
      return "productive_steps";
    case Counter::kNullSkips:
      return "null_skips";
    case Counter::kFenwickUpdates:
      return "fenwick_updates";
    case Counter::kGroupTouches:
      return "group_touches";
    case Counter::kRosterGrows:
      return "roster_grows";
    case Counter::kRosterRejections:
      return "roster_rejections";
    case Counter::kFaultEvents:
      return "fault_events";
    case Counter::kFaultAgentMoves:
      return "fault_agent_moves";
    case Counter::kFaultStateTouches:
      return "fault_state_touches";
    case Counter::kCount:
      break;
  }
  return "?";
}

const char* sketch_name(Sketch s) {
  switch (s) {
    case Sketch::kNullSkipGap:
      return "null_skip_gap";
    case Sketch::kFenwickDepth:
      return "fenwick_depth";
    case Sketch::kGroupSize:
      return "group_size";
    case Sketch::kFaultBurst:
      return "fault_burst";
    case Sketch::kCount:
      break;
  }
  return "?";
}

void CounterBlock::merge(const CounterBlock& other) {
  for (u32 c = 0; c < kNumCounters; ++c) counter[c] += other.counter[c];
  for (u32 s = 0; s < kNumSketches; ++s) {
    for (u32 b = 0; b < kSketchBuckets; ++b) {
      sketch[s][b] += other.sketch[s][b];
    }
  }
  wall_us += other.wall_us;
}

u64 CounterBlock::sketch_count(Sketch s) const {
  u64 total = 0;
  for (const u64 b : sketch[static_cast<u32>(s)]) total += b;
  return total;
}

bool CounterBlock::deterministic_empty() const {
  for (u32 c = 0; c < kNumCounters; ++c) {
    if (counter[c] != 0) return false;
  }
  for (u32 s = 0; s < kNumSketches; ++s) {
    if (sketch_count(static_cast<Sketch>(s)) != 0) return false;
  }
  return true;
}

bool CounterBlock::deterministic_equal(const CounterBlock& a,
                                       const CounterBlock& b) {
  return a.counter == b.counter && a.sketch == b.sketch;
}

std::string CounterBlock::to_json(bool include_wall) const {
  // Sequential appends rather than operator+ chains: one buffer, no
  // temporaries, and it sidesteps GCC 12's bogus -Wrestrict on
  // (const char* + string&&) under -O2 (upstream PR 105329), which the
  // hardened -Werror build would otherwise trip over.
  std::string out = "{\"counters\":{";
  for (u32 c = 0; c < kNumCounters; ++c) {
    if (c != 0) out += ",";
    out += '"';
    out += counter_name(static_cast<Counter>(c));
    out += "\":";
    out += std::to_string(counter[c]);
  }
  out += "},\"sketches\":{";
  for (u32 s = 0; s < kNumSketches; ++s) {
    if (s != 0) out += ",";
    out += '"';
    out += sketch_name(static_cast<Sketch>(s));
    out += "\":{\"count\":";
    out += std::to_string(sketch_count(static_cast<Sketch>(s)));
    out += ",\"buckets\":{";
    bool first = true;
    for (u32 b = 0; b < kSketchBuckets; ++b) {
      if (sketch[s][b] == 0) continue;
      if (!first) out += ",";
      first = false;
      out += '"';
      out += std::to_string(b);
      out += "\":";
      out += std::to_string(sketch[s][b]);
    }
    out += "}}";
  }
  out += "}";
  if (include_wall) out += ",\"wall_us\":" + std::to_string(wall_us);
  out += "}";
  return out;
}

}  // namespace pp::obs
