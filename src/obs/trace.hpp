// Span tracing — the "where did the wall clock go" half of src/obs/.
//
// Two cooperating mechanisms:
//
//   * Scoped spans.  ScopedSpan("trial-setup") pushes a frame onto this
//     thread's span stack on entry and pops it on exit (RAII, so spans
//     nest and always close, including on early returns and observer
//     aborts).  The stacks are registered globally: the stall watchdog
//     (obs/watchdog.hpp) snapshots every live stack when a trial exceeds
//     its deadline, so a hung CI job dumps *what it was doing* instead of
//     eating the 300 s ceiling in silence.
//
//   * Trace sessions.  When a TraceSession is installed, every closed
//     span additionally records a Chrome trace_event "X" (complete) event
//     — name, thread, microsecond timestamp and duration — and the
//     engines' step hook records an instant event per productive step for
//     the one trial flagged via set_step_trace().  write_json() emits the
//     {"traceEvents":[...]} document that chrome://tracing and Perfetto
//     load directly.
//
// The global session is opt-in via the environment (the runner calls
// init_from_env() once): POPRANK_TRACE=<path> writes the trace at process
// exit; POPRANK_TRACE_TRIAL=<t> flags trial t for per-productive-step
// instant events.  Tests install their own session with ScopedTraceSession
// and read the events back in memory.
//
// Compiled out (-DPOPRANK_OBS=OFF) this whole header degrades to no-op
// inlines: no stacks, no registry, no clock reads.
#pragma once

#include <mutex>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "obs/counters.hpp"  // the PP_OBS switch

namespace pp::obs {

/// Microseconds since the process-wide trace epoch (steady clock).
u64 now_us();

struct TraceEvent {
  std::string name;
  char phase = 'X';  ///< 'X' complete span, 'i' instant
  u32 tid = 0;       ///< small stable per-thread id (registration order)
  u64 ts_us = 0;
  u64 dur_us = 0;        ///< 'X' only
  std::string args;      ///< preformatted JSON object body, may be empty
};

/// One thread's live span stack, as snapshotted for a watchdog dump.
struct SpanStackSnapshot {
  u32 tid = 0;
  std::vector<std::string> frames;  ///< outermost first
};

#if PP_OBS

/// An in-memory trace-event collector.  Thread-safe; bounded (events past
/// the cap are dropped and counted, so a mis-flagged huge trial degrades
/// instead of exhausting memory).
class TraceSession {
 public:
  explicit TraceSession(u64 max_events = 1u << 20) : cap_(max_events) {}

  void record(TraceEvent e);

  /// The {"traceEvents":[...],"displayTimeUnit":"ms"} document; also
  /// reports dropped events in the metadata when the cap was hit.
  std::string to_json() const;

  /// Snapshot of the events recorded so far (tests).
  std::vector<TraceEvent> events() const;
  u64 dropped() const;

  /// Writes to_json() to `path`; returns false (with a stderr warning)
  /// when the file cannot be written.
  bool write_json(const std::string& path) const;

 private:
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  u64 cap_;
  u64 dropped_ = 0;
};

/// The session spans and step hooks record into, or nullptr when tracing
/// is off.  Installed by init_from_env() (process-wide) or
/// ScopedTraceSession (tests).
TraceSession* active_session();

/// Installs `s` as the active session for this scope; restores the
/// previous one on destruction.  Not for concurrent use from multiple
/// threads (the runner's worker threads *read* the active session; only
/// install from the orchestrating thread between runs).
class ScopedTraceSession {
 public:
  explicit ScopedTraceSession(TraceSession* s);
  ~ScopedTraceSession();
  ScopedTraceSession(const ScopedTraceSession&) = delete;
  ScopedTraceSession& operator=(const ScopedTraceSession&) = delete;

 private:
  TraceSession* prev_;
};

/// Reads POPRANK_TRACE / POPRANK_TRACE_TRIAL once (idempotent, cheap to
/// call per run): installs a process-lifetime session whose JSON is
/// written at exit, and remembers the flagged trial index.
void init_from_env();

/// The trial index flagged for per-productive-step tracing, or
/// kNoFlaggedTrial.
inline constexpr u64 kNoFlaggedTrial = ~static_cast<u64>(0);
u64 flagged_trial();

/// RAII span: maintains the thread's stack always (the watchdog needs it
/// even when no session collects events) and records a complete event
/// when a session is active at close.
class ScopedSpan {
 public:
  /// `name` must outlive the span (string literals).  `args` is an
  /// optional preformatted JSON object body like "\"trial\":7".
  explicit ScopedSpan(const char* name, std::string args = {});
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_;
  std::string args_;
  u64 start_us_;
};

/// Snapshot of every registered thread's live span stack (watchdog dumps;
/// also how tests assert spans closed).
std::vector<SpanStackSnapshot> live_span_stacks();

/// Per-thread flag driving the engines' per-productive-step hook; set by
/// the runner around the flagged trial.
void set_step_trace(bool on);
bool step_trace_enabled();

/// The engine hook: records an instant event for one productive step at
/// the given interaction count.  One thread-local bool test when tracing
/// is off — cheap enough for the accelerated loops.
void trace_step(u64 interactions);

/// Records a free-standing instant event on this thread (heartbeats,
/// watchdog verdicts) when a session is active.
void trace_instant(const char* name, std::string args = {});

#else  // !PP_OBS

class TraceSession {
 public:
  explicit TraceSession(u64 = 0) {}
  std::string to_json() const { return "{\"traceEvents\":[]}"; }
  std::vector<TraceEvent> events() const { return {}; }
  u64 dropped() const { return 0; }
  bool write_json(const std::string&) const { return false; }
};

inline TraceSession* active_session() { return nullptr; }

class ScopedTraceSession {
 public:
  explicit ScopedTraceSession(TraceSession*) {}
};

inline void init_from_env() {}
inline constexpr u64 kNoFlaggedTrial = ~static_cast<u64>(0);
inline u64 flagged_trial() { return kNoFlaggedTrial; }

class ScopedSpan {
 public:
  explicit ScopedSpan(const char*, std::string = {}) {}
};

inline std::vector<SpanStackSnapshot> live_span_stacks() { return {}; }
inline void set_step_trace(bool) {}
inline bool step_trace_enabled() { return false; }
inline void trace_step(u64) {}
inline void trace_instant(const char*, std::string = {}) {}

#endif

}  // namespace pp::obs

// Macro forms for hook call sites outside src/obs/, completing the layer
// counters.hpp starts with PP_OBS_INC/ADD/SKETCH.  The project lint's R3
// rule (tools/lint/poprank_lint.py) requires every obs hook outside this
// directory to flow through these wrappers (or an explicit `#if PP_OBS`
// region), which is what makes the POPRANK_OBS=OFF build *provably*
// hook-free by token inspection: compiled OFF, the wrappers expand to
// nothing and their argument expressions are never evaluated.
#if PP_OBS
#define PP_OBS_DETAIL_CAT2(a, b) a##b
#define PP_OBS_DETAIL_CAT(a, b) PP_OBS_DETAIL_CAT2(a, b)
/// Opens a uniquely-named RAII span for the rest of the enclosing scope:
/// PP_OBS_SPAN("sink-flush");  or  PP_OBS_SPAN("trial-setup", args_json).
#define PP_OBS_SPAN(...)                                      \
  ::pp::obs::ScopedSpan PP_OBS_DETAIL_CAT(pp_obs_span_line_, \
                                          __LINE__)(__VA_ARGS__)
/// The engines' per-productive-step instant hook.
#define PP_OBS_TRACE_STEP(interactions) ::pp::obs::trace_step(interactions)
#else
#define PP_OBS_SPAN(...) ((void)0)
#define PP_OBS_TRACE_STEP(interactions) ((void)0)
#endif
