#include "obs/trace.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "runner/sink.hpp"  // json_escape

namespace pp::obs {

u64 now_us() {
  // One epoch per process, fixed at first use: Chrome trace timestamps
  // are relative anyway, and a small origin keeps the JSON readable.
  static const auto epoch = std::chrono::steady_clock::now();
  return static_cast<u64>(std::chrono::duration_cast<std::chrono::microseconds>(
                              std::chrono::steady_clock::now() - epoch)
                              .count());
}

#if PP_OBS

namespace {

// ---- per-thread span stacks, registered for watchdog snapshots ----------

struct ThreadSpans {
  std::mutex mu;
  std::vector<const char*> stack;  // outermost first
  u32 tid = 0;
};

std::mutex& registry_mu() {
  static std::mutex mu;
  return mu;
}

std::vector<ThreadSpans*>& registry() {
  static std::vector<ThreadSpans*> r;
  return r;
}

// Registered on a thread's first span, unregistered at thread exit.  The
// tid is a small registration-order id — stable within a process, which
// is all the trace viewer needs.
struct ThreadSpansOwner {
  ThreadSpans spans;
  ThreadSpansOwner() {
    static u32 next_tid = 0;
    std::lock_guard<std::mutex> lock(registry_mu());
    spans.tid = next_tid++;
    registry().push_back(&spans);
  }
  ~ThreadSpansOwner() {
    std::lock_guard<std::mutex> lock(registry_mu());
    auto& r = registry();
    for (u64 i = 0; i < r.size(); ++i) {
      if (r[i] == &spans) {
        r.erase(r.begin() + static_cast<i64>(i));
        break;
      }
    }
  }
};

ThreadSpans& my_spans() {
  thread_local ThreadSpansOwner owner;
  return owner.spans;
}

// ---- the active session -------------------------------------------------

TraceSession*& session_slot() {
  static TraceSession* s = nullptr;
  return s;
}

thread_local bool tls_step_trace = false;

u64& flagged_trial_slot() {
  static u64 t = kNoFlaggedTrial;
  return t;
}

}  // namespace

void TraceSession::record(TraceEvent e) {
  std::lock_guard<std::mutex> lock(mu_);
  if (events_.size() >= cap_) {
    ++dropped_;
    return;
  }
  events_.push_back(std::move(e));
}

std::vector<TraceEvent> TraceSession::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

u64 TraceSession::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

std::string TraceSession::to_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : events_) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"" + json_escape(e.name) + "\",\"ph\":\"";
    out += e.phase;
    out += "\",\"pid\":1,\"tid\":" + std::to_string(e.tid) +
           ",\"ts\":" + std::to_string(e.ts_us);
    if (e.phase == 'X') out += ",\"dur\":" + std::to_string(e.dur_us);
    if (e.phase == 'i') out += ",\"s\":\"t\"";  // thread-scoped instant
    out += ",\"args\":{" + e.args + "}}";
  }
  out += "],\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped_events\":" +
         std::to_string(dropped_) + "}}";
  return out;
}

bool TraceSession::write_json(const std::string& path) const {
  std::ofstream f(path, std::ios::trunc);
  if (!f.good()) {
    std::fprintf(stderr, "WARNING: cannot write trace to %s\n", path.c_str());
    return false;
  }
  f << to_json() << "\n";
  return f.good();
}

TraceSession* active_session() { return session_slot(); }

ScopedTraceSession::ScopedTraceSession(TraceSession* s)
    : prev_(session_slot()) {
  session_slot() = s;
}

ScopedTraceSession::~ScopedTraceSession() { session_slot() = prev_; }

namespace {

// Process-lifetime session for POPRANK_TRACE; written once at exit.
TraceSession* env_session = nullptr;
std::string env_trace_path;

void write_env_trace() {
  if (env_session != nullptr && !env_trace_path.empty()) {
    env_session->write_json(env_trace_path);
  }
}

}  // namespace

void init_from_env() {
  static bool done = false;
  static std::mutex mu;
  std::lock_guard<std::mutex> lock(mu);
  if (done) return;
  done = true;
  if (const char* path = std::getenv("POPRANK_TRACE");
      path != nullptr && path[0] != '\0') {
    env_trace_path = path;
    env_session = new TraceSession();  // process lifetime, freed by exit
    session_slot() = env_session;
    std::atexit(write_env_trace);
  }
  if (const char* t = std::getenv("POPRANK_TRACE_TRIAL");
      t != nullptr && t[0] != '\0') {
    flagged_trial_slot() = std::strtoull(t, nullptr, 10);
  }
}

u64 flagged_trial() { return flagged_trial_slot(); }

ScopedSpan::ScopedSpan(const char* name, std::string args)
    : name_(name), args_(std::move(args)), start_us_(now_us()) {
  ThreadSpans& ts = my_spans();
  std::lock_guard<std::mutex> lock(ts.mu);
  ts.stack.push_back(name);
}

ScopedSpan::~ScopedSpan() {
  ThreadSpans& ts = my_spans();
  {
    std::lock_guard<std::mutex> lock(ts.mu);
    // Spans are strictly scoped, so this frame is the top of the stack.
    ts.stack.pop_back();
  }
  if (TraceSession* s = active_session()) {
    TraceEvent e;
    e.name = name_;
    e.phase = 'X';
    e.tid = ts.tid;
    e.ts_us = start_us_;
    const u64 end = now_us();
    e.dur_us = end > start_us_ ? end - start_us_ : 0;
    e.args = std::move(args_);
    s->record(std::move(e));
  }
}

std::vector<SpanStackSnapshot> live_span_stacks() {
  std::vector<SpanStackSnapshot> out;
  std::lock_guard<std::mutex> lock(registry_mu());
  for (ThreadSpans* ts : registry()) {
    SpanStackSnapshot snap;
    snap.tid = ts->tid;
    std::lock_guard<std::mutex> stack_lock(ts->mu);
    for (const char* frame : ts->stack) snap.frames.emplace_back(frame);
    out.push_back(std::move(snap));
  }
  return out;
}

void set_step_trace(bool on) { tls_step_trace = on; }
bool step_trace_enabled() { return tls_step_trace; }

void trace_step(u64 interactions) {
  if (!tls_step_trace) return;
  TraceSession* s = active_session();
  if (s == nullptr) return;
  TraceEvent e;
  e.name = "productive-step";
  e.phase = 'i';
  e.tid = my_spans().tid;
  e.ts_us = now_us();
  e.args = "\"interactions\":" + std::to_string(interactions);
  s->record(std::move(e));
}

void trace_instant(const char* name, std::string args) {
  TraceSession* s = active_session();
  if (s == nullptr) return;
  TraceEvent e;
  e.name = name;
  e.phase = 'i';
  e.tid = my_spans().tid;
  e.ts_us = now_us();
  e.args = std::move(args);
  s->record(std::move(e));
}

#endif  // PP_OBS

}  // namespace pp::obs
