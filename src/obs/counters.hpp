// The deterministic counter/metrics registry — the cheap, always-correct
// half of the observability layer (src/obs/).
//
// Counters answer the question end-of-run aggregates cannot: *where* did
// the work go?  Every hot path of the simulator carries a named hook —
// null-skip gap lengths in the engines, update depth in the Fenwick trees,
// group sizes touched by the hierarchical sampler, roster rebuilds and
// rejection retries in the sparse edge-Markovian state, fault bursts in
// the hostile schedulers — and each hook is one predictable branch plus an
// array increment against a thread-local CounterBlock.
//
// Determinism.  Counters never read the clock and never consume RNG, so
// they cannot perturb a trajectory.  The parallel runner installs one
// block per *trial* (not per thread) via ScopedCounters and merges the
// per-trial blocks in trial-index order, so the merged metrics inherit the
// runner's thread-count-independent determinism bit for bit — the only
// exception is the per-trial wall clock, which lives in a separate
// `wall_us` field excluded from deterministic_equal().
//
// Zero overhead when compiled out.  Configure with -DPOPRANK_OBS=OFF and
// every PP_OBS_* macro expands to nothing: the instrumented binaries are
// instruction-identical to a build that never heard of this module, which
// is what lets CI assert the pinned trajectories and bench baselines are
// untouched by observability.
//
// Distribution sketches are fixed-size log2 histograms: value v lands in
// bucket bit_width(v) (0..64), so a sketch is 65 u64 slots — coarse, but
// enough to see a gap-length distribution shift regimes, and cheap enough
// for per-interaction hooks.
#pragma once

#include <array>
#include <bit>
#include <string>

#include "common/types.hpp"

// Compile-time switch, normally injected by CMake's POPRANK_OBS option
// (PUBLIC on the pp target, so library, tests and benches always agree).
// Standalone compilations without CMake default to instrumented.
#ifndef PP_OBS
#define PP_OBS 1
#endif

namespace pp::obs {

enum class Counter : u32 {
  kProductiveSteps,    ///< productive firings driven through the hooks
  kNullSkips,          ///< null interactions skipped in closed form
  kFenwickUpdates,     ///< Fenwick point updates (add/set with delta != 0)
  kGroupTouches,       ///< GroupedKernelSampler group members scanned
  kRosterGrows,        ///< DirectedPairRoster capacity-doubling rebuilds
  kRosterRejections,   ///< sparse markov birth-sampling rejection retries
  kFaultEvents,        ///< environmental faults (churn events, partition
                       ///< split/heal transitions)
  kFaultAgentMoves,    ///< agents teleported by churn fault events
  kFaultStateTouches,  ///< per-state count mutations applied by the churn
                       ///< move_agent fast path (2 per applied move) — the
                       ///< O(k log n) fault-cost evidence the update
                       ///< microbench and property tests read
  kCount,
};
inline constexpr u32 kNumCounters = static_cast<u32>(Counter::kCount);

enum class Sketch : u32 {
  kNullSkipGap,   ///< gap length per closed-form null skip
  kFenwickDepth,  ///< tree nodes touched per Fenwick update
  kGroupSize,     ///< group size per hierarchical-sampler touch
  kFaultBurst,    ///< agents moved per churn fault event
  kCount,
};
inline constexpr u32 kNumSketches = static_cast<u32>(Sketch::kCount);

/// Bucket index of value v in a log2 sketch: bit_width(v), i.e. 0 for 0,
/// k for v in [2^(k-1), 2^k).
inline constexpr u32 kSketchBuckets = 65;
inline u32 sketch_bucket(u64 v) { return static_cast<u32>(std::bit_width(v)); }

/// Stable snake_case names used by the JSON dumps (manifests, BENCH
/// records) and the python artifact checker.
const char* counter_name(Counter c);
const char* sketch_name(Sketch s);

/// One trial's (or one merge's) worth of metrics.  Everything except
/// wall_us is a pure function of (spec, seed).
struct CounterBlock {
  std::array<u64, kNumCounters> counter{};
  std::array<std::array<u64, kSketchBuckets>, kNumSketches> sketch{};
  u64 wall_us = 0;  ///< per-trial wall clock; NOT deterministic

  void clear() { *this = CounterBlock{}; }

  /// Element-wise sum (wall_us included).  Addition commutes, but the
  /// runner still merges in trial-index order so the claim "merged
  /// metrics are a fold over the trial sequence" stays structural, not
  /// accidental.
  void merge(const CounterBlock& other);

  u64 get(Counter c) const { return counter[static_cast<u32>(c)]; }
  const std::array<u64, kSketchBuckets>& get(Sketch s) const {
    return sketch[static_cast<u32>(s)];
  }

  /// Total observations recorded into sketch s.
  u64 sketch_count(Sketch s) const;

  /// True when nothing was ever recorded (wall_us ignored) — sinks and
  /// BENCH records use this to stay byte-identical to their pre-obs
  /// output when the registry is compiled out or nothing was hooked.
  bool deterministic_empty() const;

  /// Bit-identical comparison of everything except wall_us — the
  /// thread-count-independence contract tests pin.
  static bool deterministic_equal(const CounterBlock& a,
                                  const CounterBlock& b);

  /// Appends the registry dump as a JSON object,
  ///   {"counters":{...},"sketches":{"name":{"count":c,"buckets":{"3":k}}}}
  /// (sketches keyed by bucket index, zero buckets omitted); wall_us is
  /// emitted as "wall_us" only when include_wall is set.
  std::string to_json(bool include_wall = false) const;
};

#if PP_OBS

/// The block hot-path hooks write into, or nullptr when nothing is being
/// measured on this thread.  Owned by ScopedCounters; hooks must treat it
/// as read-only-pointer/write-through.
inline thread_local CounterBlock* tls_block = nullptr;

/// Installs `block` as this thread's active block for the current scope
/// (restores the previous one on destruction, so scopes nest).
class ScopedCounters {
 public:
  explicit ScopedCounters(CounterBlock* block) : prev_(tls_block) {
    tls_block = block;
  }
  ~ScopedCounters() { tls_block = prev_; }
  ScopedCounters(const ScopedCounters&) = delete;
  ScopedCounters& operator=(const ScopedCounters&) = delete;

 private:
  CounterBlock* prev_;
};

inline void bump(Counter c, u64 by = 1) {
  if (CounterBlock* b = tls_block) b->counter[static_cast<u32>(c)] += by;
}

inline void record(Sketch s, u64 value) {
  if (CounterBlock* b = tls_block) {
    ++b->sketch[static_cast<u32>(s)][sketch_bucket(value)];
  }
}

/// True when some block is installed — hooks that must *compute* the
/// value they would record (e.g. count loop iterations) guard on this so
/// the un-measured path pays one branch, nothing more.
inline bool active() { return tls_block != nullptr; }

#else  // !PP_OBS — every hook compiles to nothing.

class ScopedCounters {
 public:
  explicit ScopedCounters(CounterBlock*) {}
};

inline void bump(Counter, u64 = 1) {}
inline void record(Sketch, u64) {}
inline constexpr bool active() { return false; }

#endif

}  // namespace pp::obs

// Macro forms for call sites inside tight loops: they evaluate their
// arguments only when the layer is compiled in, so an OFF build carries
// neither the increment nor the argument expression.
#if PP_OBS
#define PP_OBS_INC(c) ::pp::obs::bump(::pp::obs::Counter::c)
#define PP_OBS_ADD(c, v) ::pp::obs::bump(::pp::obs::Counter::c, (v))
#define PP_OBS_SKETCH(s, v) ::pp::obs::record(::pp::obs::Sketch::s, (v))
#else
#define PP_OBS_INC(c) ((void)0)
#define PP_OBS_ADD(c, v) ((void)0)
#define PP_OBS_SKETCH(s, v) ((void)0)
#endif
