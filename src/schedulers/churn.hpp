// Churn: transient faults as a first-class interaction model.
//
// Self-stabilisation means "converges from every configuration once the
// faults stop".  This scheduler makes the fault process part of the
// schedule instead of an observer hack in the tests: for a bounded storm
// phase, every scheduler tick is either
//
//   * (probability 1 - rate) one uniform random pair interaction — the
//     paper's model, simulated faithfully; or
//   * (probability rate) a fault event that teleports `faults` agents
//     (chosen uniformly, with multiplicity) to states drawn from a
//     configurable reset distribution (ChurnReset) — the kill/respawn of
//     an agent whose memory is re-initialised arbitrarily.
//
// After `active` ticks the storm stops and the run continues *clean* under
// the accelerated uniform engine until silence or budget exhaustion, so a
// churn run ends exactly like the fault-storm tests always did: abuse, then
// prove recovery.  active = 0 resolves to 50 n at run time (a storm long
// enough to hit a stabilised population many times over).
//
// Accounting: RunResult::interactions counts ticks (fault events occupy a
// scheduler slot, null meetings included); productive_steps counts only
// δ-driven configuration changes; fault_events counts the injected faults
// (so tests can assert the storm actually corrupted the run);
// parallel_time = ticks / n.
#pragma once

#include <string>
#include <string_view>

#include "schedulers/scheduler.hpp"

namespace pp {

class ChurnScheduler final : public Scheduler {
 public:
  /// rate: per-tick fault probability in [0, 1]; faults: agents teleported
  /// per event (>= 1); active: storm length in ticks (0 = 50 n); reset:
  /// where teleported agents land.
  ChurnScheduler(double rate, u64 faults, u64 active, ChurnReset reset);

  std::string_view name() const override { return name_; }

  RunResult run(Protocol& p, Rng& rng,
                const RunOptions& opt = {}) const override;

 private:
  double rate_;
  u64 faults_;
  u64 active_;
  ChurnReset reset_;
  std::string name_;  // "churn[<rate>{x<faults>}/<reset>]"
};

}  // namespace pp
