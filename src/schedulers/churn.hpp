// Churn: transient faults as a first-class interaction model.
//
// Self-stabilisation means "converges from every configuration once the
// faults stop".  This scheduler makes the fault process part of the
// schedule instead of an observer hack in the tests: for a bounded storm
// phase, every scheduler tick is either
//
//   * (probability 1 - rate) one uniform random pair interaction — the
//     paper's model, simulated faithfully; or
//   * (probability rate) a fault event that teleports `faults` agents
//     (chosen uniformly, with multiplicity) to states drawn from a
//     configurable reset distribution (ChurnReset) — the kill/respawn of
//     an agent whose memory is re-initialised arbitrarily.
//
// After `active` ticks the storm stops and the run continues *clean* under
// the accelerated uniform engine until silence or budget exhaustion, so a
// churn run ends exactly like the fault-storm tests always did: abuse, then
// prove recovery.  active = 0 resolves to 50 n at run time (a storm long
// enough to hit a stabilised population many times over).
//
// Accounting: RunResult::interactions counts ticks (fault events occupy a
// scheduler slot, null meetings included); productive_steps counts only
// δ-driven configuration changes; fault_events counts the injected faults
// (so tests can assert the storm actually corrupted the run);
// parallel_time = ticks / n.
//
// Fault cost.  By default each fault event applies its teleports through
// the Protocol's O(log n) mutation API (uniform_agent_state / move_agent /
// commit_moves) — O(k log n) for a k-agent burst, which is what lets the
// hostile benches run churn at n = 10^5.  The original transparent
// implementation — copy the configuration, apply the burst to the copy,
// reset the protocol — costs O(n) per fault and survives behind
// SchedulerSpec::dense_reference ("churn[.../dense-ref]"); the two paths
// consume identical RNG draws and are pinned bit-identical by test.
#pragma once

#include <string>
#include <string_view>

#include "schedulers/scheduler.hpp"

namespace pp {

class ChurnScheduler final : public Scheduler {
 public:
  /// rate: per-tick fault probability in [0, 1]; faults: agents teleported
  /// per event (>= 1); active: storm length in ticks (0 = 50 n); reset:
  /// where teleported agents land; rebuild_reference: take the O(n)
  /// copy-and-rebuild fault path instead of the O(k log n) move_agent
  /// fast path (bit-identical trajectories — see the header comment).
  ChurnScheduler(double rate, u64 faults, u64 active, ChurnReset reset,
                 bool rebuild_reference = false);

  std::string_view name() const override { return name_; }

  RunResult run(Protocol& p, Rng& rng,
                const RunOptions& opt = {}) const override;

 private:
  double rate_;
  u64 faults_;
  u64 active_;
  ChurnReset reset_;
  bool rebuild_reference_;
  std::string name_;  // "churn[<rate>{x<faults>}/<reset>{/dense-ref}]"
};

}  // namespace pp
