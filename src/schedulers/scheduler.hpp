// The pluggable scheduler subsystem: "which ordered pair interacts next?"
//
// The paper states its complexity claims for the uniform random scheduler
// — every interaction is an ordered pair of distinct agents drawn uniformly
// at random.  This module extracts that decision out of the engines behind
// a Scheduler interface so the same protocols can be exercised under other
// classic interaction models:
//
//   uniform              one uniformly random ordered pair per step — the
//                        paper's model, simulated faithfully (the former
//                        run_uniform, delegated to verbatim so trajectories
//                        stay bit-identical seed-for-seed);
//   accelerated-uniform  the same distribution with exact geometric
//                        null-skipping (the former run_accelerated,
//                        delegated to verbatim);
//   count                the same distribution again, simulated on the
//                        state-count vector alone (core/count_engine.hpp)
//                        for protocols with identity-free δ — per-event
//                        cost independent of n; non-count-determined
//                        protocols fall back to accelerated-uniform;
//   hybrid               count-vector bulk with a deterministic handoff to
//                        the exact agent-level engine at end-game
//                        starvation (core/hybrid_engine.hpp) — the
//                        multiscale driver behind the n = 10^7..10^8 scale
//                        sections; bit-identical to accelerated-uniform
//                        seed-for-seed;
//   random-matching      synchronous rounds: each round a uniformly random
//                        maximal matching of the agents fires at once
//                        (initiator/responder orientation a fair coin per
//                        matched pair; one unmatched agent idles when n is
//                        odd);
//   graph-restricted     agents are pinned to the vertices of a fixed
//                        interaction graph (structures/interaction_graph)
//                        by a uniformly random placement drawn at run
//                        start; each step fires a uniformly random
//                        *directed edge*.  An accelerated path intersects
//                        the protocol's productive weight with the edge set
//                        and skips null steps geometrically, exactly like
//                        the accelerated uniform engine;
//   weighted             each step proposes ordered pair (i, j) with
//                        probability proportional to an arbitrary weight
//                        kernel w(i, j) (schedulers/weighted.hpp): uniform
//                        weights recover the paper's model, the spatial
//                        ring/line-decay kernels open distance-decaying
//                        interaction models.  Built on the Fenwick-backed
//                        pair-sampler layer (schedulers/pair_sampler.hpp),
//                        which generalises the accelerated engine's exact
//                        null-skipping to any weight function;
//   dynamic              the interaction graph itself evolves mid-run
//                        (schedulers/dynamic_graph.hpp): edge-Markovian
//                        birth/death chains per potential edge, or
//                        periodic rewiring that re-embeds (and resamples)
//                        the topology every T steps.  Locally stuck is a
//                        passing phase here, not a verdict — the dynamics
//                        revive stranded runs, which is the model's point;
//   adversarial          a hostile-but-productive scheduler: every step
//                        fires some productive pair, chosen greedily by an
//                        AdversaryPolicy (schedulers/adversarial.hpp) —
//                        the worst-case counterpart of the random models;
//   churn                uniform random pairs interleaved with transient
//                        faults: for a bounded storm phase each tick is,
//                        with configurable probability, a fault event that
//                        teleports agents to states drawn from a reset
//                        distribution; after the storm the run continues
//                        clean to silence (self-stabilisation is exactly
//                        "converges once the faults stop");
//   partition            the population is split into non-interacting
//                        blocks on a schedule (meetings across blocks are
//                        dropped as null), alternating split and healed
//                        phases for a configured number of cycles, then
//                        runs healed to silence.
//
// Parallel-time accounting per scheduler (RunResult::parallel_time):
//   uniform / accelerated-uniform / count / hybrid / graph-restricted /
//   weighted /
//   dynamic:  interactions / n (for the dynamic models every step is one
//             meeting slot regardless of how many edges flipped that step)
//   random-matching:  the number of rounds (a round is one unit of
//                     parallel time; RunResult::interactions still counts
//                     individual pair meetings, nulls included, and the
//                     interaction budget is spent in that currency).
//   adversarial:      productive firings / n (there are no null steps — a
//                     lower bound on any scheduler's parallel time);
//   churn:            ticks / n, where a tick is one uniform interaction
//                     or one fault event (faults occupy a scheduler slot
//                     but never count as productive steps);
//   partition:        interactions / n, blocked cross-partition meetings
//                     included as null interactions.
//
// Termination.  Every scheduler stops at silence (productive_weight() == 0)
// or on budget/observer abort.  The graph-restricted scheduler additionally
// stops when no *edge* of its graph is productive while distant pairs still
// would be ("locally stuck") — the run then reports silent = false, which
// is exactly how non-stabilisation under a restricted topology shows up in
// the aggregates.  The dynamic-graph schedulers ride out locally stuck
// phases (the topology will change) and only stop early when the dynamics
// themselves are frozen.  The adversarial scheduler stops when no productive pair
// exists (true silence) or when the budget runs out (the adversary found an
// infinite productive schedule — reported as silent = false).
//
// Scheduler objects hold only immutable configuration (e.g. a shared
// topology); all per-run state lives inside run(), so one instance can be
// shared by every thread of the parallel runner.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/engine.hpp"
#include "core/protocol.hpp"
#include "rng/random.hpp"
#include "structures/interaction_graph.hpp"

namespace pp {

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Human-readable model name, e.g. "random-matching" or
  /// "graph-restricted[cycle]".
  virtual std::string_view name() const = 0;

  /// Runs `p` to silence, budget exhaustion, observer abort, or (for
  /// restricted topologies) a locally stuck configuration.
  /// opt.scheduler is ignored — dispatch already happened.
  virtual RunResult run(Protocol& p, Rng& rng,
                        const RunOptions& opt = {}) const = 0;
};

using SchedulerPtr = std::unique_ptr<Scheduler>;

enum class SchedulerKind {
  kUniform,
  kAcceleratedUniform,
  kCountGillespie,
  kHybrid,
  kRandomMatching,
  kGraphRestricted,
  kWeighted,
  kDynamicGraph,
  kAdversarial,
  kChurn,
  kPartition,
};

const char* scheduler_kind_name(SchedulerKind k);

/// All kinds, default (accelerated uniform) first.
std::vector<SchedulerKind> scheduler_kinds();

/// The greedy adversary variants behind SchedulerKind::kAdversarial; the
/// implementations live in schedulers/adversarial.{hpp,cpp}.
enum class AdversaryPolicy {
  kRandomProductive,  ///< uniform among productive pairs (honest jump chain)
  kMaxLoad,           ///< fire inside the most-loaded state
  kMinRankCoverage,   ///< minimise the number of occupied rank states
  kStubborn,          ///< keep firing the same state pair while possible
};

const char* adversary_policy_name(AdversaryPolicy p);

/// All policies, honest baseline first.
std::vector<AdversaryPolicy> adversary_policies();

/// The pair-weight kernels behind SchedulerKind::kWeighted; the
/// implementation lives in schedulers/weighted.{hpp,cpp}.
enum class WeightKernel {
  kUniform,    ///< w = 1 for every ordered pair (the paper's model)
  kRingDecay,  ///< positions on a ring; w = floor(n / d)^power
  kLineDecay,  ///< positions on a line; w = floor(n / d)^power
  kTrapDecay,  ///< *state*-distance kernel: w = floor(T / d)^power over the
               ///< ring distance d between the traps of the two agents'
               ///< states in the structures/ring_layout geometry (T ≈
               ///< √states traps) — locality lives in the state space, so
               ///< pair weights move with the agents; no positional dense
               ///< reference exists (tests cross-validate by direct
               ///< enumeration over the count vector)
};

const char* weight_kernel_name(WeightKernel k);

/// The topology-evolution policies behind SchedulerKind::kDynamicGraph;
/// the implementation lives in schedulers/dynamic_graph.{hpp,cpp}.
enum class GraphDynamics {
  kEdgeMarkovian,   ///< per-step independent edge birth/death chains
  kPeriodicRewire,  ///< re-embed (and resample d-regular) every T steps
};

const char* graph_dynamics_name(GraphDynamics d);

/// Where a churn fault teleports an agent.
enum class ChurnReset {
  kUniformState,  ///< uniform over all states (generic memory corruption)
  kUniformRank,   ///< uniform over rank states only
  kStateZero,     ///< always state 0 (pile-up faults)
};

const char* churn_reset_name(ChurnReset r);

/// Everything needed to build a scheduler for a population of known size —
/// the runner's TrialSpec carries one of these (plain data, copyable across
/// threads).
struct SchedulerSpec {
  SchedulerKind kind = SchedulerKind::kAcceleratedUniform;

  /// kGraphRestricted and kDynamicGraph: topology family and its
  /// parameters (the initial topology for dynamic graphs).  The topology
  /// is derived from (graph, degree, graph_seed, n) alone — every trial of
  /// a sweep point interacts on (or starts from) the same graph.
  GraphKind graph = GraphKind::kComplete;
  u64 degree = 3;      ///< kRandomRegular only
  u64 graph_seed = 1;  ///< kRandomRegular only
  bool graph_accelerated = true;  ///< null-skipping fast path

  /// kWeighted only: pair-weight kernel and its decay sharpness
  /// (w = floor(n/d)^kernel_power for the spatial kernels; power must be
  /// in {1, 2, 3}).
  WeightKernel kernel = WeightKernel::kUniform;
  u64 kernel_power = 1;

  /// kWeighted, kDynamicGraph (edge-Markovian) and kChurn: route the
  /// model through its transparent reference implementation instead of
  /// the default scalable path — the dense Θ(n²) pair universe for
  /// weighted/dynamic (capped at n = 4096), the copy-configuration-and-
  /// rebuild fault path for churn (O(n) per fault instead of the
  /// move_agent fast path's O(k log n)).  These exist so the
  /// cross-validation tests (and any sceptical caller) can pin the
  /// scalable paths against the transparent ones.  Encoded as
  /// "/dense-ref" in the display name.  Not meaningful for
  /// kTrapDecay-kernel weighted runs (no positional reference exists).
  bool dense_reference = false;

  /// kDynamicGraph only: evolution policy and its knobs.  Edge-Markovian:
  /// per-step absent->present probability `edge_birth` (0 = auto-derived
  /// from edge_death to hold a stationary edge count of ~n, the sparsity
  /// of a cycle) and present->absent probability `edge_death`.  Periodic
  /// rewiring: epoch length in steps (0 = n, one epoch per unit of
  /// parallel time).
  GraphDynamics dynamics = GraphDynamics::kEdgeMarkovian;
  double edge_birth = 0;
  double edge_death = 0.01;
  u64 rewire_period = 0;

  /// kAdversarial only: which greedy policy picks the productive pair.
  AdversaryPolicy adversary = AdversaryPolicy::kRandomProductive;

  /// kChurn only: per-tick fault probability during the storm phase, how
  /// many agents each fault event teleports, the storm length in ticks
  /// (0 = 50 n, resolved per run), and the reset distribution.
  double churn_rate = 0.02;
  u64 churn_faults = 1;
  u64 churn_active = 0;
  ChurnReset churn_reset = ChurnReset::kUniformState;

  /// kPartition only: number of non-interacting blocks, phase lengths in
  /// interactions (0 = 20 n, resolved per run), and how many split/heal
  /// cycles run before the population is left healed.
  u64 partition_blocks = 2;
  u64 partition_split = 0;
  u64 partition_heal = 0;
  u64 partition_cycles = 3;

  /// Display name, e.g. "graph-restricted[random-3-regular]",
  /// "weighted[ring-decay]", "dynamic[cycle/markov]",
  /// "adversarial[max-load]", "churn[0.02/uniform-state]".
  std::string to_string() const;
};

/// Builds the scheduler described by `spec` for populations of size n.
SchedulerPtr make_scheduler(const SchedulerSpec& spec, u64 n);

/// The standard comparison menu (bench_scheduler_comparison and
/// examples/scheduler_tour share it): accelerated-uniform, uniform, the
/// hybrid multiscale driver (right after the exact engines it must match),
/// random-matching, weighted on the uniform, ring-decay and trap-decay
/// kernels, the hostile-environment models (churn, partition),
/// graph-restricted on
/// complete, random-4-regular and cycle — complete mixing first, sparsest
/// last — and finally the headline contrast: the same cycle under
/// edge-Markovian and periodic-rewiring dynamics.  The adversarial
/// schedulers are excluded (O(states^2) per step makes them a small-n
/// tool; bench_adversarial covers them).
std::vector<SchedulerSpec> standard_scheduler_menu();

/// One spec per registered scheduler variant — the standard menu plus all
/// four adversaries, the remaining churn reset distributions and a second
/// partition block count.  This is the conformance suite's roster
/// (tests/test_scheduler_conformance.cpp): every entry must honour the
/// shared Scheduler contract on every protocol.
std::vector<SchedulerSpec> all_scheduler_specs();

namespace detail {

/// Shared exit path of the scheduler implementations: stamps silent/valid
/// from the protocol, installs the scheduler-specific parallel time and
/// enforces the engine result contract.
RunResult finish_run(const Protocol& p, RunResult r, double parallel_time);

/// Shared tail of the fault-model schedulers (churn, partition): once the
/// hostile phase is over, runs `p` clean to silence under the accelerated
/// uniform engine on the budget remaining in `opt`, with the observer
/// offset by the interactions already elapsed, and merges the counters
/// into `r`.  No-op if `r` is aborted or the budget is spent.
void run_clean_tail(Protocol& p, Rng& rng, const RunOptions& opt,
                    RunResult& r);

}  // namespace detail
}  // namespace pp
