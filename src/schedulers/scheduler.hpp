// The pluggable scheduler subsystem: "which ordered pair interacts next?"
//
// The paper states its complexity claims for the uniform random scheduler
// — every interaction is an ordered pair of distinct agents drawn uniformly
// at random.  This module extracts that decision out of the engines behind
// a Scheduler interface so the same protocols can be exercised under other
// classic interaction models:
//
//   uniform              one uniformly random ordered pair per step — the
//                        paper's model, simulated faithfully (the former
//                        run_uniform, delegated to verbatim so trajectories
//                        stay bit-identical seed-for-seed);
//   accelerated-uniform  the same distribution with exact geometric
//                        null-skipping (the former run_accelerated,
//                        delegated to verbatim);
//   random-matching      synchronous rounds: each round a uniformly random
//                        maximal matching of the agents fires at once
//                        (initiator/responder orientation a fair coin per
//                        matched pair; one unmatched agent idles when n is
//                        odd);
//   graph-restricted     agents are pinned to the vertices of a fixed
//                        interaction graph (structures/interaction_graph)
//                        by a uniformly random placement drawn at run
//                        start; each step fires a uniformly random
//                        *directed edge*.  An accelerated path intersects
//                        the protocol's productive weight with the edge set
//                        and skips null steps geometrically, exactly like
//                        the accelerated uniform engine.
//
// Parallel-time accounting per scheduler (RunResult::parallel_time):
//   uniform / accelerated-uniform / graph-restricted:  interactions / n
//   random-matching:  the number of rounds (a round is one unit of
//                     parallel time; RunResult::interactions still counts
//                     individual pair meetings, nulls included, and the
//                     interaction budget is spent in that currency).
//
// Termination.  Every scheduler stops at silence (productive_weight() == 0)
// or on budget/observer abort.  The graph-restricted scheduler additionally
// stops when no *edge* of its graph is productive while distant pairs still
// would be ("locally stuck") — the run then reports silent = false, which
// is exactly how non-stabilisation under a restricted topology shows up in
// the aggregates.
//
// Scheduler objects hold only immutable configuration (e.g. a shared
// topology); all per-run state lives inside run(), so one instance can be
// shared by every thread of the parallel runner.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/engine.hpp"
#include "core/protocol.hpp"
#include "rng/random.hpp"
#include "structures/interaction_graph.hpp"

namespace pp {

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Human-readable model name, e.g. "random-matching" or
  /// "graph-restricted[cycle]".
  virtual std::string_view name() const = 0;

  /// Runs `p` to silence, budget exhaustion, observer abort, or (for
  /// restricted topologies) a locally stuck configuration.
  /// opt.scheduler is ignored — dispatch already happened.
  virtual RunResult run(Protocol& p, Rng& rng,
                        const RunOptions& opt = {}) const = 0;
};

using SchedulerPtr = std::unique_ptr<Scheduler>;

enum class SchedulerKind {
  kUniform,
  kAcceleratedUniform,
  kRandomMatching,
  kGraphRestricted,
};

const char* scheduler_kind_name(SchedulerKind k);

/// All kinds, default (accelerated uniform) first.
std::vector<SchedulerKind> scheduler_kinds();

/// Everything needed to build a scheduler for a population of known size —
/// the runner's TrialSpec carries one of these (plain data, copyable across
/// threads).
struct SchedulerSpec {
  SchedulerKind kind = SchedulerKind::kAcceleratedUniform;

  /// kGraphRestricted only: topology family and its parameters.  The
  /// topology is derived from (graph, degree, graph_seed, n) alone — every
  /// trial of a sweep point interacts on the same graph.
  GraphKind graph = GraphKind::kComplete;
  u64 degree = 3;      ///< kRandomRegular only
  u64 graph_seed = 1;  ///< kRandomRegular only
  bool graph_accelerated = true;  ///< null-skipping fast path

  /// Display name, e.g. "graph-restricted[random-3-regular]".
  std::string to_string() const;
};

/// Builds the scheduler described by `spec` for populations of size n.
SchedulerPtr make_scheduler(const SchedulerSpec& spec, u64 n);

/// The standard comparison menu (bench_scheduler_comparison and
/// examples/scheduler_tour share it): accelerated-uniform, uniform,
/// random-matching, then graph-restricted on complete, random-4-regular
/// and cycle — complete mixing first, sparsest last.
std::vector<SchedulerSpec> standard_scheduler_menu();

namespace detail {

/// Shared exit path of the scheduler implementations: stamps silent/valid
/// from the protocol, installs the scheduler-specific parallel time and
/// enforces the engine result contract.
RunResult finish_run(const Protocol& p, RunResult r, double parallel_time);

}  // namespace detail
}  // namespace pp
