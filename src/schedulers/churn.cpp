#include "schedulers/churn.hpp"

#include <vector>

#include "common/assert.hpp"
#include "core/configuration.hpp"
#include "obs/counters.hpp"

namespace pp {
namespace {

// Where one teleported agent lands; shared by both fault paths so their
// RNG consumption can never drift apart.
StateId sample_reset(const Protocol& p, Rng& rng, ChurnReset reset) {
  switch (reset) {
    case ChurnReset::kUniformState:
      return static_cast<StateId>(rng.below(p.num_states()));
    case ChurnReset::kUniformRank:
      return static_cast<StateId>(rng.below(p.num_ranks()));
    case ChurnReset::kStateZero:
      return 0;
  }
  return 0;
}

}  // namespace

ChurnScheduler::ChurnScheduler(double rate, u64 faults, u64 active,
                               ChurnReset reset, bool rebuild_reference)
    : rate_(rate),
      faults_(faults),
      active_(active),
      reset_(reset),
      rebuild_reference_(rebuild_reference) {
  PP_ASSERT_MSG(rate >= 0.0 && rate <= 1.0, "churn rate must be in [0, 1]");
  PP_ASSERT_MSG(faults >= 1, "a churn event must teleport at least 1 agent");
  SchedulerSpec spec;
  spec.kind = SchedulerKind::kChurn;
  spec.churn_rate = rate;
  spec.churn_faults = faults;
  spec.churn_active = active;
  spec.churn_reset = reset;
  spec.dense_reference = rebuild_reference;
  name_ = spec.to_string();
}

RunResult ChurnScheduler::run(Protocol& p, Rng& rng,
                              const RunOptions& opt) const {
  const u64 n = p.num_agents();
  PP_ASSERT_MSG(n >= 2, "churn scheduler needs n >= 2 (no pairs otherwise)");
  const u64 storm_ticks = active_ != 0 ? active_ : 50 * n;

  // Fast-path scratch, allocated once per run: net per-state deltas of one
  // burst plus the list of states the burst touched, so deciding "did the
  // burst change the configuration" and clearing the scratch both cost
  // O(faults), never O(states).
  std::vector<i64> delta;
  std::vector<StateId> touched;
  if (!rebuild_reference_) {
    delta.assign(p.num_states(), 0);
    touched.reserve(2 * faults_);
  }

  RunResult r;
  while (r.interactions < storm_ticks &&
         r.interactions < opt.max_interactions) {
    ++r.interactions;
    bool changed;
    if (rng.bernoulli(rate_)) {
      // Fault event: teleport faults_ uniformly random agents.  Agents are
      // anonymous, so "a uniform agent" is a state sampled with probability
      // proportional to its count.  Both paths below consume identical RNG
      // draws and sample victims from the same intermediate distributions
      // (the fast path applies each move immediately, which is exactly the
      // reference path's scan of its mutated copy), so trajectories are
      // bit-identical — pinned by test.
      if (rebuild_reference_) {
        // Transparent reference: mutate a copy, rebuild everything.  O(n)
        // per fault event.
        Configuration c = p.configuration();
        for (u64 f = 0; f < faults_; ++f) {
          u64 t = rng.below(n);
          StateId victim = 0;
          while (t >= c.counts[victim]) {
            t -= c.counts[victim];
            ++victim;
          }
          const StateId target = sample_reset(p, rng, reset_);
          --c.counts[victim];
          ++c.counts[target];
        }
        changed = c.counts != p.counts();
        if (changed) p.reset(c);
      } else {
        // Fast path: O(log n) per teleported agent through the protocol's
        // mutation API.
        for (u64 f = 0; f < faults_; ++f) {
          const StateId victim = p.uniform_agent_state(rng.below(n));
          const StateId target = sample_reset(p, rng, reset_);
          if (victim == target) continue;
          p.move_agent(victim, target);
          PP_OBS_ADD(kFaultStateTouches, 2);
          if (delta[victim] == 0) touched.push_back(victim);
          --delta[victim];
          if (delta[target] == 0) touched.push_back(target);
          ++delta[target];
        }
        changed = false;
        for (const StateId s : touched) {
          if (delta[s] != 0) changed = true;
          delta[s] = 0;
        }
        touched.clear();
        // Mirror the reference path: on_reset() fires only when the burst
        // net-changed the configuration.
        if (changed) p.commit_moves();
      }
      ++r.fault_events;
      PP_OBS_INC(kFaultEvents);
      PP_OBS_ADD(kFaultAgentMoves, faults_);
      PP_OBS_SKETCH(kFaultBurst, faults_);
      // A fault is environmental, never a productive step of the protocol.
    } else {
      changed = p.step_uniform(rng);
      if (changed) {
        ++r.productive_steps;
        PP_OBS_INC(kProductiveSteps);
      }
    }
    if (changed && opt.on_change && !opt.on_change(p, r.interactions)) {
      r.aborted = true;
      return detail::finish_run(p, r,
                                static_cast<double>(r.interactions) /
                                    static_cast<double>(n));
    }
  }

  // The storm is over: run clean to silence on the remaining budget, with
  // exact null-skipping (the storm phase is the only part that needs
  // tick-by-tick simulation).
  detail::run_clean_tail(p, rng, opt, r);
  return detail::finish_run(
      p, r, static_cast<double>(r.interactions) / static_cast<double>(n));
}

}  // namespace pp
