#include "schedulers/churn.hpp"

#include "common/assert.hpp"
#include "core/configuration.hpp"
#include "obs/counters.hpp"

namespace pp {

ChurnScheduler::ChurnScheduler(double rate, u64 faults, u64 active,
                               ChurnReset reset)
    : rate_(rate), faults_(faults), active_(active), reset_(reset) {
  PP_ASSERT_MSG(rate >= 0.0 && rate <= 1.0, "churn rate must be in [0, 1]");
  PP_ASSERT_MSG(faults >= 1, "a churn event must teleport at least 1 agent");
  SchedulerSpec spec;
  spec.kind = SchedulerKind::kChurn;
  spec.churn_rate = rate;
  spec.churn_faults = faults;
  spec.churn_active = active;
  spec.churn_reset = reset;
  name_ = spec.to_string();
}

RunResult ChurnScheduler::run(Protocol& p, Rng& rng,
                              const RunOptions& opt) const {
  const u64 n = p.num_agents();
  PP_ASSERT_MSG(n >= 2, "churn scheduler needs n >= 2 (no pairs otherwise)");
  const u64 storm_ticks = active_ != 0 ? active_ : 50 * n;

  RunResult r;
  while (r.interactions < storm_ticks &&
         r.interactions < opt.max_interactions) {
    ++r.interactions;
    bool changed;
    if (rng.bernoulli(rate_)) {
      // Fault event: teleport faults_ uniformly random agents.  Agents are
      // anonymous, so "a uniform agent" is a state sampled with probability
      // proportional to its count.
      Configuration c = p.configuration();
      for (u64 f = 0; f < faults_; ++f) {
        u64 t = rng.below(n);
        StateId victim = 0;
        while (t >= c.counts[victim]) {
          t -= c.counts[victim];
          ++victim;
        }
        StateId target = 0;
        switch (reset_) {
          case ChurnReset::kUniformState:
            target = static_cast<StateId>(rng.below(p.num_states()));
            break;
          case ChurnReset::kUniformRank:
            target = static_cast<StateId>(rng.below(p.num_ranks()));
            break;
          case ChurnReset::kStateZero:
            target = 0;
            break;
        }
        --c.counts[victim];
        ++c.counts[target];
      }
      changed = c.counts != p.counts();
      if (changed) p.reset(c);
      ++r.fault_events;
      PP_OBS_INC(kFaultEvents);
      PP_OBS_ADD(kFaultAgentMoves, faults_);
      PP_OBS_SKETCH(kFaultBurst, faults_);
      // A fault is environmental, never a productive step of the protocol.
    } else {
      changed = p.step_uniform(rng);
      if (changed) {
        ++r.productive_steps;
        PP_OBS_INC(kProductiveSteps);
      }
    }
    if (changed && opt.on_change && !opt.on_change(p, r.interactions)) {
      r.aborted = true;
      return detail::finish_run(p, r,
                                static_cast<double>(r.interactions) /
                                    static_cast<double>(n));
    }
  }

  // The storm is over: run clean to silence on the remaining budget, with
  // exact null-skipping (the storm phase is the only part that needs
  // tick-by-tick simulation).
  detail::run_clean_tail(p, rng, opt, r);
  return detail::finish_run(
      p, r, static_cast<double>(r.interactions) / static_cast<double>(n));
}

}  // namespace pp
