#include "schedulers/random_matching.hpp"

#include "common/assert.hpp"

namespace pp {

RunResult RandomMatchingScheduler::run(Protocol& p, Rng& rng,
                                       const RunOptions& opt) const {
  PP_ASSERT_MSG(p.num_agents() >= 2,
                "random matching needs n >= 2 (no pairs otherwise)");
  // Agents are anonymous, so an explicit state-per-agent vector shuffled
  // each round *is* a uniformly random maximal matching: pair slot 2i with
  // slot 2i+1.  The protocol object is kept in sync through apply_pair(),
  // so silence detection and the result contract come from the protocol
  // itself, exactly as in the engines.
  std::vector<StateId> agents = p.configuration().to_agent_states();
  // Parallel time is the number of rounds.  Every round fires exactly
  // floor(n/2) meetings (null ones included), so interactions / pairs IS
  // the elapsed round count — and stays exact (fractional) when the
  // interaction budget or an observer abort cuts a round short.
  const u64 pairs = agents.size() / 2;
  const auto rounds_elapsed = [pairs](const RunResult& r) {
    return static_cast<double>(r.interactions) / static_cast<double>(pairs);
  };
  RunResult r;
  while (!p.is_silent() && r.interactions < opt.max_interactions) {
    rng.shuffle(agents);
    for (u64 i = 0; i < pairs; ++i) {
      if (r.interactions >= opt.max_interactions) break;
      ++r.interactions;
      // The shuffle is a uniform permutation, so slot 2i vs 2i+1 already
      // assigns the initiator/responder orientation by a fair coin.
      const u64 a = 2 * i;
      const u64 b = 2 * i + 1;
      const auto [sa, sb] = p.apply_pair(agents[a], agents[b]);
      if (sa == agents[a] && sb == agents[b]) continue;  // null meeting
      agents[a] = sa;
      agents[b] = sb;
      ++r.productive_steps;
      if (opt.on_change && !opt.on_change(p, r.interactions)) {
        r.aborted = true;
        return detail::finish_run(p, r, rounds_elapsed(r));
      }
    }
  }
  return detail::finish_run(p, r, rounds_elapsed(r));
}

}  // namespace pp
