#include "schedulers/dynamic_graph.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/assert.hpp"
#include "obs/counters.hpp"
#include "schedulers/pair_sampler.hpp"

namespace pp {
namespace {

constexpr u32 kNotInList = static_cast<u32>(-1);

// Dense-universe cap for the edge-Markovian *reference* path (the sparse
// default and the rewire model track live edges only).
constexpr u64 kMaxMarkovPopulation = 4096;

// (1 - q)^m with the edge cases pinned down before std::exp can produce
// 0 * inf = NaN.
double no_success_prob(u64 m, double q) {
  if (m == 0 || q <= 0.0) return 1.0;
  if (q >= 1.0) return 0.0;
  return std::exp(static_cast<double>(m) * std::log1p(-q));
}

// The dense reference state of the edge-Markovian model: agent states per
// vertex, the sampler over all 2P directed pairs (weight 1 while the
// underlying undirected pair is present, 0 while absent), swap-remove
// lists of present/absent pair ids for sampling flip victims, and
// per-vertex adjacency of *present* pairs.  Θ(n²) memory — kept as the
// transparent implementation the sparse path is cross-validated against
// (SchedulerSpec::dense_reference), capped at kMaxMarkovPopulation.
//
// Productivity flags are maintained lazily: a pair's flags are
// recomputed when one of its endpoints changes state — but only for
// present pairs (the adjacency lists) — and once at birth, before the
// pair's weight is restored.  Absent pairs may carry stale flags; that
// is sound because a zero-weight pair contributes nothing to either tree
// and its flags are a deterministic function of the endpoint states,
// recomputed the moment they matter.  This keeps a productive step at
// O(present-degree) instead of Θ(n) dead flag maintenance.
struct MarkovState {
  const Protocol& p;
  u64 n;
  u64 num_pairs;
  double birth;
  double death;
  std::vector<StateId> state;                // per vertex
  std::vector<std::pair<u32, u32>> uv;       // pair id -> (u, v), u < v
  PairSampler pairs;                         // directed ids 2*pid + orient
  std::vector<u32> present, absent;          // pair ids, unordered
  std::vector<u32> where;                    // pair id -> index in its list
  std::vector<std::vector<u32>> adj;         // per vertex: present pair ids
  std::vector<std::pair<u32, u32>> adj_pos;  // pair id -> index in adj[u],
                                             // adj[v]

  MarkovState(const InteractionGraph& g, const Protocol& proto,
              std::vector<StateId> placement, double birth_rate,
              double death_rate)
      : p(proto),
        n(placement.size()),
        num_pairs(n * (n - 1) / 2),
        birth(birth_rate),
        death(death_rate),
        state(std::move(placement)) {
    uv.reserve(num_pairs);
    for (u32 u = 0; u < n; ++u) {
      for (u32 v = u + 1; v < n; ++v) uv.emplace_back(u, v);
    }
    // Seed the present set from the initial topology (parallel edges of a
    // multigraph collapse to one — the pair universe is simple), then
    // bulk-build the sampler: weight 1 per present directed pair, flags
    // from δ for every pair, present or not.
    std::vector<u8> seeded(num_pairs, 0);
    for (const auto& [u, v] : g.edges()) seeded[pair_id(u, v)] = 1;
    std::vector<u64> weights(2 * num_pairs, 0);
    std::vector<u8> flags(2 * num_pairs, 0);
    for (u32 pid = 0; pid < num_pairs; ++pid) {
      const auto [a, b] = uv[pid];
      weights[2 * pid] = weights[2 * pid + 1] = seeded[pid] ? 1 : 0;
      flags[2 * pid] = pair_is_productive(p, state[a], state[b]) ? 1 : 0;
      flags[2 * pid + 1] = pair_is_productive(p, state[b], state[a]) ? 1 : 0;
    }
    pairs.reset(std::move(weights), std::move(flags));
    where.assign(num_pairs, kNotInList);
    adj.resize(n);
    adj_pos.assign(num_pairs, {0, 0});
    for (u32 pid = 0; pid < num_pairs; ++pid) {
      if (seeded[pid]) {
        where[pid] = static_cast<u32>(present.size());
        present.push_back(pid);
        adj_add(pid);
      } else {
        where[pid] = static_cast<u32>(absent.size());
        absent.push_back(pid);
      }
    }
  }

  u64 present_count() const { return present.size(); }
  u64 absent_count() const { return absent.size(); }
  double productive_probability() const {
    return pairs.productive_probability();
  }

  void adj_add(u32 pid) {
    const auto [a, b] = uv[pid];
    adj_pos[pid] = {static_cast<u32>(adj[a].size()),
                    static_cast<u32>(adj[b].size())};
    adj[a].push_back(pid);
    adj[b].push_back(pid);
  }

  void adj_remove_side(u32 vtx, u32 pid) {
    std::vector<u32>& list = adj[vtx];
    const u32 idx =
        uv[pid].first == vtx ? adj_pos[pid].first : adj_pos[pid].second;
    const u32 moved = list.back();
    list[idx] = moved;
    if (uv[moved].first == vtx) {
      adj_pos[moved].first = idx;
    } else {
      adj_pos[moved].second = idx;
    }
    list.pop_back();
  }

  u32 pair_id(u32 a, u32 b) const {
    const u64 u = std::min(a, b);
    const u64 v = std::max(a, b);
    return static_cast<u32>(u * (n - 1) - u * (u - 1) / 2 + (v - u - 1));
  }

  bool is_present(u32 pid) const {
    return pairs.weight(2 * static_cast<u64>(pid)) != 0;
  }

  void refresh_pair(u32 pid) {
    const auto [a, b] = uv[pid];
    pairs.set_productive(2 * static_cast<u64>(pid),
                         pair_is_productive(p, state[a], state[b]));
    pairs.set_productive(2 * static_cast<u64>(pid) + 1,
                         pair_is_productive(p, state[b], state[a]));
  }

  /// Re-tests the *present* pairs incident to v (absent pairs keep stale
  /// flags until they are born again).
  void refresh_vertex(u32 v) {
    for (const u32 pid : adj[v]) refresh_pair(pid);
  }

  void set_presence(u32 pid, bool now) {
    if (is_present(pid) == now) return;
    std::vector<u32>& from = now ? absent : present;
    std::vector<u32>& to = now ? present : absent;
    const u32 idx = where[pid];
    const u32 moved = from.back();
    from[idx] = moved;
    where[moved] = idx;
    from.pop_back();
    where[pid] = static_cast<u32>(to.size());
    to.push_back(pid);
    if (now) {
      // Born: the flags may be stale from state changes while the pair
      // was absent — recompute them before the weight makes them count.
      refresh_pair(pid);
      adj_add(pid);
    } else {
      adj_remove_side(uv[pid].first, pid);
      adj_remove_side(uv[pid].second, pid);
    }
    pairs.set_weight(2 * static_cast<u64>(pid), now ? 1 : 0);
    pairs.set_weight(2 * static_cast<u64>(pid) + 1, now ? 1 : 0);
  }

  /// Applies one step's edge flips conditioned on at least one occurring.
  /// `A` = P(no births), `B` = P(no deaths) for the current lists.
  void apply_flips(Rng& rng, double A, double B) {
    const u64 na = absent.size();
    const u64 np = present.size();
    u64 births = 0, deaths = 0;
    // Partition "some flip" into {births >= 1} and {no birth, deaths >= 1};
    // within the chosen part the first flipped edge's index is a truncated
    // geometric and the remaining trials stay unconditioned binomials.
    // When one category has zero mass (A == 1 or B == 1), route to the
    // other directly: u can round exactly onto the boundary, and the
    // comparison must never select an impossible branch.
    const bool births_possible = na > 0 && birth > 0.0;
    const bool deaths_possible = np > 0 && death > 0.0;
    const double u = rng.real01() * (1.0 - A * B);
    if (births_possible && (!deaths_possible || u < 1.0 - A)) {
      const u64 first = rng.geometric_failures_truncated(birth, na);
      births = 1 + rng.binomial(na - 1 - first, birth);
      deaths = rng.binomial(np, death);
    } else {
      const u64 first = rng.geometric_failures_truncated(death, np);
      deaths = 1 + rng.binomial(np - 1 - first, death);
    }
    // The flip count plus a uniform subset of that size IS m independent
    // Bernoulli trials (exchangeability); read both victim sets before
    // mutating either list.
    std::vector<u32> born, died;
    born.reserve(births);
    died.reserve(deaths);
    for (const u64 idx : rng.sample_distinct(na, births)) {
      born.push_back(absent[idx]);
    }
    for (const u64 idx : rng.sample_distinct(np, deaths)) {
      died.push_back(present[idx]);
    }
    for (const u32 pid : born) set_presence(pid, true);
    for (const u32 pid : died) set_presence(pid, false);
  }

  void fire(Protocol& proto, Rng& rng, u64& productive_steps) {
    const u64 d = pairs.sample_productive(rng);
    const auto [a, b] = uv[static_cast<u32>(d >> 1)];
    const auto [ini, res] = (d & 1) ? std::make_pair(b, a)
                                    : std::make_pair(a, b);
    const auto [si, sr] = proto.apply_pair(state[ini], state[res]);
    PP_DCHECK(si != state[ini] || sr != state[res]);
    state[ini] = si;
    state[res] = sr;
    refresh_vertex(ini);
    refresh_vertex(res);
    ++productive_steps;
  }
};

// The sparse default state of the edge-Markovian model: only the present
// edge set is materialised — a hash-indexed DirectedPairRoster plus
// per-vertex adjacency over live entries, O(n + present edges) memory
// against the dense path's Θ(n²).  The step distribution is unchanged:
// flip counts come from the same conditioned truncated-geometric +
// binomial construction (the absent count is arithmetic: P - present),
// death victims are a uniform distinct sample of the roster, and birth
// victims are drawn by rejection — uniform pairs of the arithmetic
// universe, resampled while they hit the thin present set (or an earlier
// victim of the same step), which is exactly a uniform distinct sample of
// the absent set.  Rejection is cheap precisely in the sparse regime the
// model targets (present ≪ P); the worst case (a near-complete graph,
// where expected retries approach P / absent) is only reachable at the
// small populations the dense-seeded specs use.
struct SparseMarkovState {
  const Protocol& p;
  u64 n;
  u64 num_pairs;  // P = n(n-1)/2
  double birth;
  double death;
  std::vector<StateId> state;                 // per vertex
  DirectedPairRoster roster;                  // live entries = present pairs
  std::vector<std::pair<u32, u32>> ends;      // entry -> (u, v), u < v
  std::vector<std::pair<u32, u32>> adj_pos;   // entry -> index in adj[u], [v]
  std::vector<std::vector<u32>> adj;          // per vertex: entry ids
  std::unordered_map<u64, u32> entry_of;      // pair key -> entry id
  std::vector<std::pair<u32, u32>> born_scratch_, died_scratch_;  // reused
                                              // across flip steps

  SparseMarkovState(const InteractionGraph& g, const Protocol& proto,
                    std::vector<StateId> placement, double birth_rate,
                    double death_rate)
      : p(proto),
        n(placement.size()),
        num_pairs(n * (n - 1) / 2),
        birth(birth_rate),
        death(death_rate),
        state(std::move(placement)),
        roster(2 * g.num_edges() + 16) {
    adj.resize(n);
    entry_of.reserve(2 * g.num_edges());
    for (const auto& [u, v] : g.edges()) {
      const u32 lo = std::min(u, v);
      const u32 hi = std::max(u, v);
      if (entry_of.count(key(lo, hi)) != 0) continue;  // multigraph collapse
      add_present(lo, hi);
    }
  }

  u64 key(u32 u, u32 v) const { return static_cast<u64>(u) * n + v; }

  u64 present_count() const { return roster.size(); }
  u64 absent_count() const { return num_pairs - roster.size(); }
  double productive_probability() const {
    return roster.productive_probability();
  }

  bool productive(u32 u, u32 v) const {
    return pair_is_productive(p, state[u], state[v]);
  }

  void add_present(u32 u, u32 v) {
    PP_DCHECK(u < v);
    const u64 e = roster.add(productive(u, v), productive(v, u));
    PP_DCHECK(e == ends.size());
    ends.emplace_back(u, v);
    adj_pos.emplace_back(static_cast<u32>(adj[u].size()),
                         static_cast<u32>(adj[v].size()));
    adj[u].push_back(static_cast<u32>(e));
    adj[v].push_back(static_cast<u32>(e));
    entry_of.emplace(key(u, v), static_cast<u32>(e));
  }

  void adj_remove_side(u32 vtx, u32 e) {
    std::vector<u32>& list = adj[vtx];
    const u32 idx =
        ends[e].first == vtx ? adj_pos[e].first : adj_pos[e].second;
    const u32 moved = list.back();
    list[idx] = moved;
    if (ends[moved].first == vtx) {
      adj_pos[moved].first = idx;
    } else {
      adj_pos[moved].second = idx;
    }
    list.pop_back();
  }

  void remove_present(u32 e) {
    const auto [u, v] = ends[e];
    adj_remove_side(u, e);
    adj_remove_side(v, e);
    entry_of.erase(key(u, v));
    const u64 moved = roster.remove(e);
    if (moved != DirectedPairRoster::kNoEntry) {
      // The roster swap-filled the hole with its back entry; repoint every
      // structure that knew the back entry by its old id.
      ends[e] = ends[moved];
      adj_pos[e] = adj_pos[moved];
      adj[ends[e].first][adj_pos[e].first] = e;
      adj[ends[e].second][adj_pos[e].second] = e;
      entry_of[key(ends[e].first, ends[e].second)] = e;
    }
    ends.pop_back();
    adj_pos.pop_back();
  }

  /// Uniform distinct absent pairs by rejection against the present set
  /// and the batch's earlier picks (written into the reused scratch).
  void sample_absent(Rng& rng, u64 count,
                     std::vector<std::pair<u32, u32>>& out) {
    out.clear();
    out.reserve(count);
    while (out.size() < count) {
      const auto [a, b] = rng.ordered_pair(n);
      const u32 u = static_cast<u32>(std::min(a, b));
      const u32 v = static_cast<u32>(std::max(a, b));
      if (entry_of.count(key(u, v)) != 0) {
        PP_OBS_INC(kRosterRejections);
        continue;
      }
      bool duplicate = false;
      for (const auto& picked : out) {
        if (picked.first == u && picked.second == v) {
          duplicate = true;
          break;
        }
      }
      if (!duplicate) out.emplace_back(u, v);
    }
  }

  void refresh_vertex(u32 v) {
    for (const u32 e : adj[v]) {
      const auto [a, b] = ends[e];
      roster.set_flag(e, 0, productive(a, b));
      roster.set_flag(e, 1, productive(b, a));
    }
  }

  /// Applies one step's edge flips conditioned on at least one occurring;
  /// same partition of "some flip" as the dense reference (see above).
  void apply_flips(Rng& rng, double A, double B) {
    const u64 na = absent_count();
    const u64 np = present_count();
    u64 births = 0, deaths = 0;
    const bool births_possible = na > 0 && birth > 0.0;
    const bool deaths_possible = np > 0 && death > 0.0;
    const double u = rng.real01() * (1.0 - A * B);
    if (births_possible && (!deaths_possible || u < 1.0 - A)) {
      const u64 first = rng.geometric_failures_truncated(birth, na);
      births = 1 + rng.binomial(na - 1 - first, birth);
      deaths = rng.binomial(np, death);
    } else {
      const u64 first = rng.geometric_failures_truncated(death, np);
      deaths = 1 + rng.binomial(np - 1 - first, death);
    }
    // Read both victim sets before mutating: births are appended after the
    // death victims are fixed by (u, v), so neither sample disturbs the
    // other (born pairs are absent, dying pairs present — disjoint).
    sample_absent(rng, births, born_scratch_);
    died_scratch_.clear();
    died_scratch_.reserve(deaths);
    for (const u64 idx : rng.sample_distinct(np, deaths)) {
      died_scratch_.push_back(ends[idx]);
    }
    for (const auto& [u2, v2] : born_scratch_) add_present(u2, v2);
    for (const auto& [u2, v2] : died_scratch_) {
      remove_present(entry_of.at(key(u2, v2)));
    }
  }

  void fire(Protocol& proto, Rng& rng, u64& productive_steps) {
    const auto [e, orient] = roster.sample_productive(rng);
    const auto [a, b] = ends[e];
    const auto [ini, res] = orient != 0 ? std::make_pair(b, a)
                                        : std::make_pair(a, b);
    const auto [si, sr] = proto.apply_pair(state[ini], state[res]);
    PP_DCHECK(si != state[ini] || sr != state[res]);
    state[ini] = si;
    state[res] = sr;
    refresh_vertex(ini);
    refresh_vertex(res);
    ++productive_steps;
  }
};

// The shared event-driven loop over either Markov state representation.
// One step is: every potential edge flips independently, then one
// directed present edge is drawn.  A step is *eventful* when some edge
// flips (probability f, constant while the graph is unchanged) or —
// flip-free steps keep the graph static — the draw is productive
// (probability q).  The gap to the next eventful step is therefore
// exactly geometric, which is what keeps null-skipping alive on a
// topology that changes.
template <typename State>
RunResult markov_loop(State& ms, Protocol& p, Rng& rng,
                      const RunOptions& opt) {
  const u64 n = p.num_agents();
  RunResult r;
  while (!p.is_silent()) {
    const double A = no_success_prob(ms.absent_count(), ms.birth);
    const double B = no_success_prob(ms.present_count(), ms.death);
    const double f = 1.0 - A * B;
    const double q = ms.productive_probability();
    const double p_event = f + (1.0 - f) * q;
    if (p_event <= 0.0) break;  // frozen dynamics and locally stuck
    if (!advance_past_nulls(rng, p_event, opt.max_interactions,
                            r.interactions)) {
      break;
    }
    bool fire_now;
    // q == 0 forces the flip branch outright: the draw below can round
    // onto p_event exactly, and firing with no productive pair would be
    // nonsense.
    if (q <= 0.0 || rng.real01() * p_event < f) {
      // The eventful step opens with flips; its interaction slot then
      // draws on the post-flip graph.
      ms.apply_flips(rng, A, B);
      fire_now = rng.bernoulli(ms.productive_probability());
    } else {
      fire_now = true;
    }
    if (!fire_now) continue;
    ms.fire(p, rng, r.productive_steps);
    if (opt.on_change && !opt.on_change(p, r.interactions)) {
      r.aborted = true;
      break;
    }
  }
  return detail::finish_run(
      p, r, static_cast<double>(r.interactions) / static_cast<double>(n));
}

}  // namespace

DynamicGraphScheduler::DynamicGraphScheduler(const SchedulerSpec& spec, u64 n)
    : graph_kind_(spec.graph),
      degree_(spec.degree),
      n_(n),
      dynamics_(spec.dynamics),
      birth_(spec.edge_birth),
      death_(spec.edge_death),
      period_(spec.rewire_period),
      dense_reference_(spec.dense_reference) {
  PP_ASSERT_MSG(spec.kind == SchedulerKind::kDynamicGraph,
                "DynamicGraphScheduler needs a kDynamicGraph spec");
  PP_ASSERT_MSG(n >= 2, "dynamic-graph scheduler needs n >= 2");
  PP_ASSERT_MSG(birth_ >= 0.0 && birth_ <= 1.0,
                "edge birth rate must be in [0, 1] (0 = auto)");
  PP_ASSERT_MSG(death_ >= 0.0 && death_ <= 1.0,
                "edge death rate must be in [0, 1]");
  if (dynamics_ == GraphDynamics::kEdgeMarkovian) {
    PP_ASSERT_MSG(!dense_reference_ || n <= kMaxMarkovPopulation,
                  "the dense edge-Markovian reference path caps n at 4096 "
                  "(dense pair universe); drop dense_reference for the "
                  "sparse default");
    PP_ASSERT_MSG(birth_ > 0.0 || death_ > 0.0,
                  "edge-Markovian dynamics with birth = death = 0 are a "
                  "frozen graph; use graph-restricted instead");
  }
  graph_ = std::make_shared<const InteractionGraph>(
      InteractionGraph::make(spec.graph, n, spec.degree, spec.graph_seed));
  name_ = spec.to_string();
}

double DynamicGraphScheduler::resolved_birth() const {
  if (birth_ > 0.0) return birth_;
  // Auto: stationary edge count birth/(birth+death) * P targeting ~n edges
  // (cycle sparsity), clamped for the tiny populations where n edges would
  // exceed the pair universe.
  const double universe = 0.5 * static_cast<double>(n_) *
                          static_cast<double>(n_ - 1);
  const double target =
      std::min(static_cast<double>(n_), 0.75 * universe);
  return std::min(1.0, death_ * target / (universe - target));
}

RunResult DynamicGraphScheduler::run(Protocol& p, Rng& rng,
                                     const RunOptions& opt) const {
  PP_ASSERT_MSG(p.num_agents() == n_,
                "dynamic-graph scheduler built for a different population "
                "size");
  return dynamics_ == GraphDynamics::kEdgeMarkovian
             ? run_markovian(p, rng, opt)
             : run_rewire(p, rng, opt);
}

RunResult DynamicGraphScheduler::run_markovian(Protocol& p, Rng& rng,
                                               const RunOptions& opt) const {
  std::vector<StateId> placement = p.configuration().to_agent_states();
  rng.shuffle(placement);
  if (dense_reference_) {
    MarkovState ms(*graph_, p, std::move(placement), resolved_birth(),
                   resolved_death());
    return markov_loop(ms, p, rng, opt);
  }
  SparseMarkovState ms(*graph_, p, std::move(placement), resolved_birth(),
                       resolved_death());
  return markov_loop(ms, p, rng, opt);
}

RunResult DynamicGraphScheduler::run_rewire(Protocol& p, Rng& rng,
                                            const RunOptions& opt) const {
  const u64 n = p.num_agents();
  const u64 period = resolved_period();
  std::vector<StateId> placement = p.configuration().to_agent_states();
  rng.shuffle(placement);

  std::optional<InteractionGraph> regen;  // owns resampled topologies
  const InteractionGraph* g = graph_.get();
  std::optional<DirectedEdgeSampler> es;
  es.emplace(*g, p, std::move(placement));

  RunResult r;
  u64 epoch_end = period;
  const auto rewire = [&] {
    std::vector<StateId> states = es->take_states();
    es.reset();  // es points at *g; drop it before regen replaces the graph
    if (graph_kind_ == GraphKind::kRandomRegular) {
      regen.emplace(InteractionGraph::random_regular(n, degree_, rng.bits()));
      g = &*regen;
    }
    // A fresh uniform embedding — for deterministic topologies (cycle,
    // path, ...) the re-placement IS the rewiring; for random-regular it
    // composes with the resampled graph.
    rng.shuffle(states);
    es.emplace(*g, p, std::move(states));
  };

  while (true) {
    if (es->pairs().productive_total() == 0) {
      if (p.is_silent()) break;
      // Locally stuck on this epoch's topology: every remaining step of
      // the epoch is null, so jump straight to the boundary and rewire.
      if (epoch_end >= opt.max_interactions) {
        r.interactions = opt.max_interactions;
        break;
      }
      r.interactions = epoch_end;
      rewire();
      epoch_end += period;
      continue;
    }
    // The epoch's graph is static, so the geometric gap construction of
    // the graph-restricted scheduler applies verbatim — merely capped at
    // the epoch boundary (memorylessness makes the fresh restart under
    // the next topology exact).
    const u64 cap = std::min(opt.max_interactions, epoch_end);
    if (!advance_past_nulls(rng, es->pairs().productive_probability(), cap,
                            r.interactions)) {
      if (r.interactions >= opt.max_interactions) break;
      rewire();
      epoch_end += period;
      continue;
    }
    es->fire(p, es->pairs().sample_productive(rng));
    ++r.productive_steps;
    if (opt.on_change && !opt.on_change(p, r.interactions)) {
      r.aborted = true;
      break;
    }
    if (r.interactions == epoch_end && r.interactions < opt.max_interactions) {
      rewire();
      epoch_end += period;
    }
  }
  return detail::finish_run(
      p, r, static_cast<double>(r.interactions) / static_cast<double>(n));
}

}  // namespace pp
