// The weighted scheduler: pair selection from an arbitrary weight kernel.
//
// The paper's uniform scheduler is the special case w ≡ 1 of a more
// general model: agents sit at positions 0..n-1 (a uniformly random
// placement drawn at run start, like the graph-restricted scheduler's),
// and each step proposes the ordered pair (i, j) with probability
// w(i, j) / Σ w — any non-negative integer kernel.  The complete and
// graph-restricted models are the 1/0 special cases of this; the kernels
// shipped here open the *spatial* family the temporal-graph literature
// studies, where interaction probability decays with distance:
//
//   uniform      w = 1 for every ordered pair — the paper's model through
//                the weighted machinery (tests pin the statistical
//                equivalence to the uniform engine);
//   ring-decay   positions on a ring (the geometry of
//                structures/ring_layout): distance d(i, j) =
//                min(|i-j|, n-|i-j|), kernel w = floor(n/d)^power — nearby
//                agents meet Θ(n/d)^power more often, but every pair keeps
//                weight >= 1, so mixing is slowed, never severed;
//   line-decay   positions on a line (the geometry of
//                structures/line_layout): d(i, j) = |i-j|, same harmonic
//                kernel — adds the boundary asymmetry a ring lacks.
//
// Pair selection runs on the Fenwick-backed sampler layer
// (schedulers/pair_sampler.hpp) over the dense universe of n(n-1) ordered
// pairs: productive weight is maintained incrementally (a productive step
// at (i, j) re-tests only the 4(n-1) directed pairs involving i or j) and
// null steps are skipped geometrically with success probability
// W_productive / W_total — the accelerated uniform engine's construction at
// kernel generality.
//
// Because every kernel here assigns positive weight to every pair, a
// weighted run can never get locally stuck: it ends at true silence,
// budget exhaustion or observer abort.  Parallel time is interactions / n.
#pragma once

#include <string>

#include "schedulers/scheduler.hpp"

namespace pp {

class WeightedScheduler final : public Scheduler {
 public:
  /// Population cap: the sampler allocates Θ(n^2) Fenwick slots over the
  /// dense ordered-pair universe, and with w <= n^3 per pair the total
  /// weight stays far below u64 range at this size.  Mind the memory at
  /// the cap: each *run* owns its sampler (~0.5 GB at n = 4096), and the
  /// parallel runner drives one run per thread — size RunnerOptions::
  /// threads accordingly, or stay at the n <= 512 the benches use.
  static constexpr u64 kMaxPopulation = 4096;

  /// `power` sharpens the decay (w = floor(n/d)^power); must be in
  /// {1, 2, 3} — enough to span gentle-to-steep spatial locality without
  /// risking u64 overflow of the total weight.  A non-zero `n` pins the
  /// population size and precomputes the Θ(n^2) kernel table once at
  /// construction — the parallel runner builds one scheduler per trial
  /// set, so a sweep's trials share the table instead of each recomputing
  /// it; n = 0 defers to run() (any population, table built per run).
  explicit WeightedScheduler(WeightKernel kernel, u64 power = 1, u64 n = 0);

  std::string_view name() const override { return name_; }
  RunResult run(Protocol& p, Rng& rng,
                const RunOptions& opt = {}) const override;

  WeightKernel kernel() const { return kernel_; }
  u64 power() const { return power_; }

  /// The kernel weight of ordered pair (i, j) in a population of n;
  /// exposed for tests.  Requires i != j.
  u64 pair_weight(u64 n, u64 i, u64 j) const;

  /// The full dense table: kernel weight at id i * n + j, 0 on the
  /// diagonal.
  std::vector<u64> kernel_table(u64 n) const;

 private:
  WeightKernel kernel_;
  u64 power_;
  u64 n_;                      // 0 = resolved per run
  std::vector<u64> weights_;   // precomputed kernel_table(n_) when n_ != 0
  std::string name_;
};

}  // namespace pp
