// The weighted scheduler: pair selection from an arbitrary weight kernel.
//
// The paper's uniform scheduler is the special case w ≡ 1 of a more
// general model: agents sit at positions 0..n-1 (a uniformly random
// placement drawn at run start, like the graph-restricted scheduler's),
// and each step proposes the ordered pair (i, j) with probability
// w(i, j) / Σ w — any non-negative integer kernel.  The complete and
// graph-restricted models are the 1/0 special cases of this; the kernels
// shipped here open the *spatial* family the temporal-graph literature
// studies, where interaction probability decays with distance:
//
//   uniform      w = 1 for every ordered pair — the paper's model through
//                the weighted machinery (tests pin the statistical
//                equivalence to the uniform engine);
//   ring-decay   positions on a ring (the geometry of
//                structures/ring_layout): distance d(i, j) =
//                min(|i-j|, n-|i-j|), kernel w = floor(n/d)^power — nearby
//                agents meet Θ(n/d)^power more often, but every pair keeps
//                weight >= 1, so mixing is slowed, never severed;
//   line-decay   positions on a line (the geometry of
//                structures/line_layout): d(i, j) = |i-j|, same harmonic
//                kernel — adds the boundary asymmetry a ring lacks.
//
// A fourth kernel moves the geometry from positions into the *state
// space* itself:
//
//   trap-decay   no positions at all: an agent in state s meeting an agent
//                in state t weighs floor(T/d)^power, d the ring distance
//                between the traps of s and t in the structures/ring_layout
//                geometry (T ≈ √states traps over all states) — so pair
//                weights move with the agents as they change state.
//
// Pair selection runs on the hierarchical sampler layer
// (schedulers/pair_sampler.hpp) by default: the translation-invariant
// kernel is held in closed form (DistanceKernel, O(n) memory) and the
// productive mass lives in a two-level structure over states and their
// occupant groups (GroupedKernelSampler) — O(log n + group²) per sample,
// O(group + log n) per state change, exact totals, so the accelerated
// uniform engine's geometric null-skipping carries over at any n whose
// kernel total fits the sampler's 63-bit range (n ~ 10^6 for the harmonic
// kernels at power 1).  Protocols with extra states ride the same path
// through their declared Protocol::ExtraPairClasses (every library
// protocol qualifies — see GroupedKernelSampler::supports); only
// undeclared/unsupported patterns and callers that ask for it explicitly
// (SchedulerSpec::dense_reference) take the dense Θ(n²) reference path
// over all n(n-1) ordered pairs — the transparent implementation the
// cross-validation tests pin the hierarchical path against; it keeps a
// population guard at n <= kDenseMaxPopulation.  The trap-decay kernel is
// agent-anonymous and runs entirely on TrapKernelSampler's per-trap count
// aggregates (O(√states + log states) per event); it has no positional
// dense path at all.
//
// Because every kernel here assigns positive weight to every pair, a
// weighted run can never get locally stuck: it ends at true silence,
// budget exhaustion or observer abort.  Parallel time is interactions / n.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "schedulers/pair_sampler.hpp"
#include "schedulers/scheduler.hpp"

namespace pp {

class WeightedScheduler final : public Scheduler {
 public:
  /// Which pair-selection machinery run() uses (positional kernels only;
  /// trap-decay always runs on TrapKernelSampler).
  enum class Path {
    kAuto,          ///< hierarchical when GroupedKernelSampler::supports
                    ///< the protocol (every library protocol), dense
                    ///< otherwise
    kHierarchical,  ///< force the sparse two-level sampler
    kDense,         ///< force the dense Θ(n²) reference universe
  };

  /// Population guard for the *dense reference path* only: it allocates
  /// Θ(n²) Fenwick slots over the ordered-pair universe (~0.5 GB at
  /// n = 4096, one sampler per run and one run per runner thread).  The
  /// hierarchical path has no such cap — its bound is the 63-bit kernel
  /// total, checked at DistanceKernel construction.
  static constexpr u64 kDenseMaxPopulation = 4096;

  /// `power` sharpens the decay (w = floor(n/d)^power); must be in
  /// {1, 2, 3} — enough to span gentle-to-steep spatial locality.  A
  /// non-zero `n` pins the population size and precomputes the kernel
  /// tables once at construction — the parallel runner builds one
  /// scheduler per trial set, so a sweep's trials share them; n = 0
  /// defers to run() (any population, tables built per run).
  explicit WeightedScheduler(WeightKernel kernel, u64 power = 1, u64 n = 0,
                             Path path = Path::kAuto);

  std::string_view name() const override { return name_; }
  RunResult run(Protocol& p, Rng& rng,
                const RunOptions& opt = {}) const override;

  WeightKernel kernel() const { return kernel_; }
  u64 power() const { return power_; }
  Path path() const { return path_; }

  /// The kernel weight of ordered pair (i, j) in a population of n;
  /// exposed for tests.  Requires i != j.  Positional kernels only (the
  /// trap-decay weight is a function of states, not positions — see
  /// TrapKernelSampler::kappa).
  u64 pair_weight(u64 n, u64 i, u64 j) const;

  /// The full dense table: kernel weight at id i * n + j, 0 on the
  /// diagonal.  Θ(n²) — the dense reference path's universe.  Positional
  /// kernels only.
  std::vector<u64> kernel_table(u64 n) const;

  /// The closed-form view of the same kernel (the hierarchical path's top
  /// level); exposed for tests and for the memory-shape assertions.
  /// Positional kernels only.
  DistanceKernel distance_kernel(u64 n) const;

 private:
  RunResult run_dense(Protocol& p, Rng& rng, const RunOptions& opt) const;
  RunResult run_hierarchical(Protocol& p, Rng& rng,
                             const RunOptions& opt) const;
  RunResult run_trap(Protocol& p, Rng& rng, const RunOptions& opt) const;

  WeightKernel kernel_;
  u64 power_;
  u64 n_;  // 0 = resolved per run
  Path path_;
  std::vector<u64> dense_weights_;  // kernel_table(n_) when pinned + dense
  std::unique_ptr<const DistanceKernel> pinned_kernel_;  // when pinned
  std::string name_;
};

}  // namespace pp
