// Adversarial schedulers behind the Scheduler interface.
//
// The paper's guarantees are stated for the uniform random scheduler.  A
// natural robustness question for a library user: what happens under a
// *hostile* scheduler that still makes progress (always fires some
// productive pair) but chooses which one maliciously?  This module
// implements a family of greedy adversaries over the protocol's formal
// transition function δ (the policies are enumerated by AdversaryPolicy in
// schedulers/scheduler.hpp):
//
//   kRandomProductive  uniform among productive pairs (the embedded jump
//                      chain of the random scheduler — baseline);
//   kMaxLoad           always fire the pair inside the most-loaded state
//                      (tries to keep agents piled up);
//   kMinRankCoverage   fire the productive pair whose outcome minimises
//                      the number of occupied rank states (actively fights
//                      the ranking);
//   kStubborn          keep firing in the same state as long as possible
//                      (starves the rest of the population).
//
// Interesting facts these expose (see tests/test_adversary.cpp and
// bench_adversarial): AG and the ring protocol stabilise under *every*
// such adversary (their progress measures are schedule-independent), while
// the line protocol admits infinite productive schedules — the whp bound
// genuinely needs the scheduler's randomness.
//
// This is the Scheduler port of the retired core/adversary.cpp entry point
// (run_adversarial): the candidate enumeration, the policy tie-breaking and
// the generator consumption are unchanged, so trajectories are bit-identical
// seed-for-seed — tests/test_adversary.cpp pins them with values recorded
// from the pre-port implementation.  The budget is RunOptions::
// max_interactions, counted in *productive* firings (the adversary never
// fires a null step), so interactions == productive_steps always.
//
// Enumeration is O(states^2) per step, so this is a small-n analysis tool,
// not a performance path.
#pragma once

#include <string>
#include <string_view>

#include "schedulers/scheduler.hpp"

namespace pp {

class AdversarialScheduler final : public Scheduler {
 public:
  explicit AdversarialScheduler(AdversaryPolicy policy);

  std::string_view name() const override { return name_; }
  AdversaryPolicy policy() const { return policy_; }

  RunResult run(Protocol& p, Rng& rng,
                const RunOptions& opt = {}) const override;

 private:
  AdversaryPolicy policy_;
  std::string name_;  // "adversarial[<policy>]"
};

}  // namespace pp
