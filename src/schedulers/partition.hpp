// Partition: temporary network splits as an interaction model.
//
// The population is split into `blocks` non-interacting blocks (a uniformly
// random, balanced assignment drawn at run start).  The run alternates
//
//   split phase  (`split` interactions): each step draws a uniformly
//                random ordered pair of distinct agents, exactly like the
//                uniform scheduler, but a pair straddling two blocks is
//                dropped — the meeting is a null interaction, as if the
//                network link between the blocks were down;
//   heal phase   (`heal` interactions): all pairs interact again;
//
// for `cycles` rounds, then leaves the population healed and runs clean to
// silence under the accelerated uniform engine.  Phase lengths of 0 resolve
// to 20 n at run time.
//
// This extends the self-stabilisation story beyond pair choice: every block
// converges towards a *locally* consistent (and globally wrong) state while
// split — duplicate ranks live in different blocks and cannot meet — so
// healing must restart the global repair.  Accounting: parallel_time =
// interactions / n, blocked cross-partition meetings included as nulls.
#pragma once

#include <string>
#include <string_view>

#include "schedulers/scheduler.hpp"

namespace pp {

class PartitionScheduler final : public Scheduler {
 public:
  /// blocks >= 2 (clamped to n at run time); split/heal are phase lengths
  /// in interactions (0 = 20 n); cycles is the number of split+heal rounds
  /// before the population is left healed for good.
  PartitionScheduler(u64 blocks, u64 split, u64 heal, u64 cycles);

  std::string_view name() const override { return name_; }

  RunResult run(Protocol& p, Rng& rng,
                const RunOptions& opt = {}) const override;

 private:
  u64 blocks_;
  u64 split_;
  u64 heal_;
  u64 cycles_;
  std::string name_;  // "partition[<blocks>-blocks]"
};

}  // namespace pp
