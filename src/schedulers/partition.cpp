#include "schedulers/partition.hpp"

#include <vector>

#include "common/assert.hpp"
#include "obs/counters.hpp"

namespace pp {

PartitionScheduler::PartitionScheduler(u64 blocks, u64 split, u64 heal,
                                       u64 cycles)
    : blocks_(blocks), split_(split), heal_(heal), cycles_(cycles) {
  PP_ASSERT_MSG(blocks >= 2, "a partition needs at least 2 blocks");
  SchedulerSpec spec;
  spec.kind = SchedulerKind::kPartition;
  spec.partition_blocks = blocks;
  spec.partition_split = split;
  spec.partition_heal = heal;
  spec.partition_cycles = cycles;
  name_ = spec.to_string();
}

RunResult PartitionScheduler::run(Protocol& p, Rng& rng,
                                  const RunOptions& opt) const {
  const u64 n = p.num_agents();
  PP_ASSERT_MSG(n >= 2, "partition scheduler needs n >= 2");
  const u64 blocks = blocks_ < n ? blocks_ : n;
  const u64 split_len = split_ != 0 ? split_ : 20 * n;
  const u64 heal_len = heal_ != 0 ? heal_ : 20 * n;

  // Agents are anonymous, so shuffling an explicit state-per-agent vector
  // and assigning blocks round-robin IS a uniformly random balanced
  // partition.  The protocol object stays in sync through apply_pair(), so
  // silence detection and the result contract come from the protocol
  // itself, exactly as in the other agent-level schedulers.
  std::vector<StateId> agents = p.configuration().to_agent_states();
  rng.shuffle(agents);
  std::vector<u32> block(n);
  for (u64 i = 0; i < n; ++i) block[i] = static_cast<u32>(i % blocks);

  RunResult r;
  // One phase of tick-by-tick uniform pair sampling; cross-block pairs are
  // nulls while `split` is true.  Returns false when the outer loop should
  // stop (budget, observer abort, or silence).
  const auto phase = [&](u64 len, bool split) {
    for (u64 step = 0; step < len; ++step) {
      if (p.is_silent() || r.interactions >= opt.max_interactions) {
        return false;
      }
      ++r.interactions;
      const auto [a, b] = rng.ordered_pair(n);
      if (split && block[a] != block[b]) continue;  // link down: no meeting
      const auto [sa, sb] = p.apply_pair(agents[a], agents[b]);
      if (sa == agents[a] && sb == agents[b]) continue;  // null meeting
      agents[a] = sa;
      agents[b] = sb;
      ++r.productive_steps;
      PP_OBS_INC(kProductiveSteps);
      if (opt.on_change && !opt.on_change(p, r.interactions)) {
        r.aborted = true;
        return false;
      }
    }
    return true;
  };

  // Each topology change the environment imposes — cutting the links into
  // blocks, healing them back — is a fault event, counted exactly like a
  // churn storm's faults so RunResult::fault_events means "environmental
  // interventions" across every hostile model, not just churn.
  const auto inject = [&r] {
    ++r.fault_events;
    PP_OBS_INC(kFaultEvents);
  };
  for (u64 cycle = 0; cycle < cycles_; ++cycle) {
    inject();  // split: cross-block links go down
    if (!phase(split_len, /*split=*/true)) break;
    inject();  // heal: all links restored
    if (!phase(heal_len, /*split=*/false)) break;
  }

  // Healed for good: run clean to silence on the remaining budget.
  detail::run_clean_tail(p, rng, opt, r);
  return detail::finish_run(
      p, r, static_cast<double>(r.interactions) / static_cast<double>(n));
}

}  // namespace pp
