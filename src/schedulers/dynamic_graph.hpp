// The dynamic-graph scheduler: interaction topologies that change mid-run.
//
// PRs 2–3 established that sparse *static* topologies strand the ranking
// protocols: the end-game duplicates of a nearly ranked population are
// rarely adjacent, so runs end locally stuck.  The temporal-graph
// literature predicts sparse *dynamic* topologies should not — any fixed
// pair of agents is eventually joined by an edge, so local stuckness is a
// passing phase, not a verdict.  This scheduler makes that claim testable
// with two classic GraphDynamics policies over an initial
// structures/interaction_graph topology:
//
//   edge-Markovian     every potential edge of the n-vertex pair universe
//                      is an independent two-state Markov chain: at each
//                      step an absent edge appears with probability
//                      `birth` and a present edge disappears with
//                      probability `death` (the initial topology seeds the
//                      present set).  After the flips, the step draws one
//                      directed present edge uniformly (no present edge =
//                      a null step);
//   periodic-rewire    the topology is frozen for T-step epochs; at every
//                      epoch boundary the agent placement is re-drawn
//                      uniformly (and a random-regular topology is
//                      resampled with a fresh seed) — the "resample the
//                      d-regular graph every T steps" model.
//
// Both run on the Fenwick-backed pair-sampler layer
// (schedulers/pair_sampler.hpp) and keep the productive-edge weight fresh
// across *both* kinds of change: protocol steps re-test the pairs touching
// the two agents that moved, edge births/deaths move scheduling weight
// while productivity flags persist.  Geometric null-skipping is preserved
// exactly in both models:
//
//   * rewire epochs are internally static, so the gap to the next
//     productive step is geometric as in the graph-restricted scheduler,
//     merely capped at the epoch boundary (memorylessness makes the
//     restart at the boundary exact);
//   * under edge-Markovian dynamics a step is *eventful* when some edge
//     flips or the drawn edge is productive; the gap to the next eventful
//     step is Geometric(f + (1-f) q) with f the per-step flip probability
//     and q the productive fraction, both exactly maintained.  Flip steps
//     then sample their flip set conditioned on being non-empty (first
//     flipped edge by truncated-geometric inversion, the rest binomially)
//     — bit-for-bit the distribution of flipping every edge every step,
//     at O(flips + productive steps + events) cost.
//
// The edge-Markovian model stores only the *present* edge set by default
// (a hash-indexed roster on schedulers/pair_sampler's DirectedPairRoster:
// O(n + present edges) memory), sampling birth victims by rejection
// against it — exact, because the absent set is the complement of a thin
// present set in the arithmetic pair universe.  That lifts the model from
// the old dense-list cap of n = 4096 to the n ~ 10^5 the uniform engines
// handle.  The dense two-list implementation survives behind
// SchedulerSpec::dense_reference ("dynamic[G/markov/dense-ref]") as the
// reference the cross-validation tests pin the sparse path against.
//
// A locally stuck configuration does not stop a dynamic run (the topology
// will change); termination is true silence, budget exhaustion, observer
// abort, or — only when the dynamics themselves are frozen (no flippable
// edge, e.g. birth = 0 on an empty graph) — permanent stuckness.
// Parallel time is interactions / n, exactly as for the static graphs.
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "schedulers/scheduler.hpp"
#include "structures/interaction_graph.hpp"

namespace pp {

class DynamicGraphScheduler final : public Scheduler {
 public:
  /// Builds the dynamics described by `spec` (kind must be kDynamicGraph)
  /// for populations of size n.  The initial topology is derived from
  /// (spec.graph, spec.degree, spec.graph_seed, n) alone, so every trial
  /// of a sweep point starts from the same graph.
  DynamicGraphScheduler(const SchedulerSpec& spec, u64 n);

  std::string_view name() const override { return name_; }
  RunResult run(Protocol& p, Rng& rng,
                const RunOptions& opt = {}) const override;

  const InteractionGraph& initial_graph() const { return *graph_; }

  /// The per-run edge-Markovian rates: an explicit edge_birth is used
  /// verbatim; edge_birth = 0 auto-targets a stationary edge count of n
  /// (the sparsity of a cycle), i.e. birth = death * n / (P - n) over the
  /// P = n(n-1)/2 pair universe.
  double resolved_birth() const;
  double resolved_death() const { return death_; }

  /// The per-run rewire period: an explicit rewire_period is used
  /// verbatim; 0 resolves to n (one epoch per unit of parallel time).
  u64 resolved_period() const { return period_ != 0 ? period_ : n_; }

 private:
  RunResult run_markovian(Protocol& p, Rng& rng, const RunOptions& opt) const;
  RunResult run_rewire(Protocol& p, Rng& rng, const RunOptions& opt) const;

  std::shared_ptr<const InteractionGraph> graph_;
  GraphKind graph_kind_;
  u64 degree_;
  u64 n_;
  GraphDynamics dynamics_;
  double birth_;
  double death_;
  u64 period_;
  bool dense_reference_;
  std::string name_;
};

}  // namespace pp
