#include "schedulers/scheduler.hpp"

#include <cstdio>

#include "common/assert.hpp"
#include "schedulers/adversarial.hpp"
#include "schedulers/churn.hpp"
#include "schedulers/dynamic_graph.hpp"
#include "schedulers/graph_restricted.hpp"
#include "schedulers/partition.hpp"
#include "schedulers/random_matching.hpp"
#include "schedulers/uniform.hpp"
#include "schedulers/weighted.hpp"

namespace pp {

// Declared in core/engine.hpp; defined here so src/core never depends on
// the schedulers layer (only this call site needs the Scheduler vtable).
RunResult run(Protocol& p, Rng& rng, const RunOptions& opt) {
  if (opt.scheduler != nullptr) return opt.scheduler->run(p, rng, opt);
  return run_accelerated(p, rng, opt);
}

const char* scheduler_kind_name(SchedulerKind k) {
  switch (k) {
    case SchedulerKind::kUniform:
      return "uniform";
    case SchedulerKind::kAcceleratedUniform:
      return "accelerated-uniform";
    case SchedulerKind::kCountGillespie:
      return "count";
    case SchedulerKind::kHybrid:
      return "hybrid";
    case SchedulerKind::kRandomMatching:
      return "random-matching";
    case SchedulerKind::kGraphRestricted:
      return "graph-restricted";
    case SchedulerKind::kWeighted:
      return "weighted";
    case SchedulerKind::kDynamicGraph:
      return "dynamic";
    case SchedulerKind::kAdversarial:
      return "adversarial";
    case SchedulerKind::kChurn:
      return "churn";
    case SchedulerKind::kPartition:
      return "partition";
  }
  return "?";
}

std::vector<SchedulerKind> scheduler_kinds() {
  return {SchedulerKind::kAcceleratedUniform, SchedulerKind::kUniform,
          SchedulerKind::kCountGillespie,     SchedulerKind::kHybrid,
          SchedulerKind::kRandomMatching,     SchedulerKind::kGraphRestricted,
          SchedulerKind::kWeighted,           SchedulerKind::kDynamicGraph,
          SchedulerKind::kAdversarial,        SchedulerKind::kChurn,
          SchedulerKind::kPartition};
}

const char* weight_kernel_name(WeightKernel k) {
  switch (k) {
    case WeightKernel::kUniform:
      return "uniform";
    case WeightKernel::kRingDecay:
      return "ring-decay";
    case WeightKernel::kLineDecay:
      return "line-decay";
    case WeightKernel::kTrapDecay:
      return "trap-decay";
  }
  return "?";
}

const char* graph_dynamics_name(GraphDynamics d) {
  switch (d) {
    case GraphDynamics::kEdgeMarkovian:
      return "markov";
    case GraphDynamics::kPeriodicRewire:
      return "rewire";
  }
  return "?";
}

const char* adversary_policy_name(AdversaryPolicy p) {
  switch (p) {
    case AdversaryPolicy::kRandomProductive:
      return "random-productive";
    case AdversaryPolicy::kMaxLoad:
      return "max-load";
    case AdversaryPolicy::kMinRankCoverage:
      return "min-rank-coverage";
    case AdversaryPolicy::kStubborn:
      return "stubborn";
  }
  return "?";
}

std::vector<AdversaryPolicy> adversary_policies() {
  return {AdversaryPolicy::kRandomProductive, AdversaryPolicy::kMaxLoad,
          AdversaryPolicy::kMinRankCoverage, AdversaryPolicy::kStubborn};
}

const char* churn_reset_name(ChurnReset r) {
  switch (r) {
    case ChurnReset::kUniformState:
      return "uniform-state";
    case ChurnReset::kUniformRank:
      return "uniform-rank";
    case ChurnReset::kStateZero:
      return "state-zero";
  }
  return "?";
}

std::vector<SchedulerSpec> standard_scheduler_menu() {
  std::vector<SchedulerSpec> menu;
  SchedulerSpec s;
  s.kind = SchedulerKind::kAcceleratedUniform;
  menu.push_back(s);
  s.kind = SchedulerKind::kUniform;
  menu.push_back(s);
  // The multiscale driver, right after the exact engines it must match.
  s.kind = SchedulerKind::kHybrid;
  menu.push_back(s);
  s.kind = SchedulerKind::kRandomMatching;
  menu.push_back(s);
  s.kind = SchedulerKind::kWeighted;
  s.kernel = WeightKernel::kUniform;  // sanity anchor: must match uniform
  menu.push_back(s);
  s.kernel = WeightKernel::kRingDecay;  // the positional spatial model
  menu.push_back(s);
  s.kernel = WeightKernel::kTrapDecay;  // the state-space spatial model
  menu.push_back(s);
  s = SchedulerSpec{};
  s.kind = SchedulerKind::kChurn;
  menu.push_back(s);
  s.kind = SchedulerKind::kPartition;
  menu.push_back(s);
  s.kind = SchedulerKind::kGraphRestricted;
  s.graph = GraphKind::kComplete;
  menu.push_back(s);
  s.graph = GraphKind::kRandomRegular;
  s.degree = 4;
  menu.push_back(s);
  s.graph = GraphKind::kCycle;
  menu.push_back(s);
  // The headline contrast: the same sparse cycle that strands ranking
  // when static, made dynamic both ways.
  s.kind = SchedulerKind::kDynamicGraph;
  s.dynamics = GraphDynamics::kEdgeMarkovian;
  menu.push_back(s);
  s.dynamics = GraphDynamics::kPeriodicRewire;
  menu.push_back(s);
  return menu;
}

std::vector<SchedulerSpec> all_scheduler_specs() {
  std::vector<SchedulerSpec> specs = standard_scheduler_menu();
  SchedulerSpec s;
  // The pure count-vector engine (the hybrid's bulk phase is already in
  // the menu): conformance must pin its contract — and its fallback path —
  // on every protocol, count-determined or not.
  s.kind = SchedulerKind::kCountGillespie;
  specs.push_back(s);
  s = SchedulerSpec{};
  s.kind = SchedulerKind::kAdversarial;
  for (const AdversaryPolicy policy : adversary_policies()) {
    s.adversary = policy;
    specs.push_back(s);
  }
  s = SchedulerSpec{};
  s.kind = SchedulerKind::kChurn;
  for (const ChurnReset reset : {ChurnReset::kUniformRank,
                                 ChurnReset::kStateZero}) {
    s.churn_reset = reset;  // kUniformState is already in the menu
    specs.push_back(s);
  }
  s = SchedulerSpec{};
  s.kind = SchedulerKind::kPartition;
  s.partition_blocks = 3;  // the 2-block default is already in the menu
  specs.push_back(s);
  s = SchedulerSpec{};
  s.kind = SchedulerKind::kWeighted;
  s.kernel = WeightKernel::kLineDecay;  // ring and uniform are in the menu
  specs.push_back(s);
  s.kernel = WeightKernel::kRingDecay;
  s.kernel_power = 2;  // the steep-decay variant
  specs.push_back(s);
  s = SchedulerSpec{};
  s.kind = SchedulerKind::kDynamicGraph;  // cycle variants are in the menu
  s.graph = GraphKind::kRandomRegular;
  s.degree = 4;
  s.dynamics = GraphDynamics::kPeriodicRewire;
  specs.push_back(s);
  s.graph = GraphKind::kComplete;  // starts dense, decays to stationarity
  s.dynamics = GraphDynamics::kEdgeMarkovian;
  specs.push_back(s);
  // The dense Θ(n²) reference paths of the two hierarchically-sampled
  // models: conformance must keep pinning the transparent implementations
  // the cross-validation tests compare the scalable paths against.
  s = SchedulerSpec{};
  s.kind = SchedulerKind::kWeighted;
  s.kernel = WeightKernel::kRingDecay;
  s.dense_reference = true;
  specs.push_back(s);
  s = SchedulerSpec{};
  s.kind = SchedulerKind::kDynamicGraph;
  s.graph = GraphKind::kCycle;
  s.dynamics = GraphDynamics::kEdgeMarkovian;
  s.dense_reference = true;
  specs.push_back(s);
  // The churn copy-and-rebuild fault path: same role — the transparent
  // O(n)-per-fault implementation the move_agent fast path is pinned
  // bit-identical against.
  s = SchedulerSpec{};
  s.kind = SchedulerKind::kChurn;
  s.dense_reference = true;
  specs.push_back(s);
  return specs;
}

namespace {

// The topology part of graph-restricted/dynamic display names, delegated
// to InteractionGraph::describe so spec names and graph-derived scheduler
// names can never drift apart (GraphRestrictedScheduler builds its name
// from the graph's description; sinks and BENCH labels key on the
// equality).
std::string graph_family_name(const SchedulerSpec& s) {
  return InteractionGraph::describe(s.graph, s.degree, s.graph_seed);
}

}  // namespace

std::string SchedulerSpec::to_string() const {
  switch (kind) {
    case SchedulerKind::kGraphRestricted:
      return "graph-restricted[" + graph_family_name(*this) + "]";
    case SchedulerKind::kWeighted: {
      std::string out = std::string("weighted[") + weight_kernel_name(kernel);
      if (kernel_power != 1) out += "^" + std::to_string(kernel_power);
      if (dense_reference) out += "/dense-ref";
      out += "]";
      return out;
    }
    case SchedulerKind::kDynamicGraph: {
      // Like churn below: no commas (the name doubles as a CSV cell), and
      // every knob deviating from its default is encoded so distinct specs
      // never share a display name.
      std::string out = "dynamic[" + graph_family_name(*this) + "/";
      out += graph_dynamics_name(dynamics);
      if (dynamics == GraphDynamics::kEdgeMarkovian) {
        char rate[32];
        if (edge_birth != 0) {
          std::snprintf(rate, sizeof(rate), "/b%g", edge_birth);
          out += rate;
        }
        if (edge_death != 0.01) {
          std::snprintf(rate, sizeof(rate), "/d%g", edge_death);
          out += rate;
        }
      } else if (rewire_period != 0) {
        out += "/T" + std::to_string(rewire_period);
      }
      if (dynamics == GraphDynamics::kEdgeMarkovian && dense_reference) {
        out += "/dense-ref";
      }
      out += "]";
      return out;
    }
    case SchedulerKind::kAdversarial:
      return std::string("adversarial[") + adversary_policy_name(adversary) +
             "]";
    case SchedulerKind::kChurn: {
      // No commas: the name doubles as a CSV cell in the sinks.  Every
      // knob that deviates from its default is encoded, so two distinct
      // specs never share a display name (parameter sweeps rely on it).
      char rate[32];
      std::snprintf(rate, sizeof(rate), "%g", churn_rate);
      std::string out = std::string("churn[") + rate;
      if (churn_faults != 1) out += "x" + std::to_string(churn_faults);
      out += std::string("/") + churn_reset_name(churn_reset);
      if (churn_active != 0) out += "/a" + std::to_string(churn_active);
      if (dense_reference) out += "/dense-ref";
      out += "]";
      return out;
    }
    case SchedulerKind::kPartition: {
      std::string out = "partition[" + std::to_string(partition_blocks) +
                        "-blocks";
      if (partition_split != 0) out += "/s" + std::to_string(partition_split);
      if (partition_heal != 0) out += "/h" + std::to_string(partition_heal);
      if (partition_cycles != 3) {
        out += "/c" + std::to_string(partition_cycles);
      }
      out += "]";
      return out;
    }
    default:
      return scheduler_kind_name(kind);
  }
}

SchedulerPtr make_scheduler(const SchedulerSpec& spec, u64 n) {
  switch (spec.kind) {
    case SchedulerKind::kUniform:
      return std::make_unique<UniformScheduler>();
    case SchedulerKind::kAcceleratedUniform:
      return std::make_unique<AcceleratedUniformScheduler>();
    case SchedulerKind::kCountGillespie:
      return std::make_unique<CountScheduler>();
    case SchedulerKind::kHybrid:
      return std::make_unique<HybridScheduler>();
    case SchedulerKind::kRandomMatching:
      return std::make_unique<RandomMatchingScheduler>();
    case SchedulerKind::kGraphRestricted: {
      auto graph = std::make_shared<const InteractionGraph>(
          InteractionGraph::make(spec.graph, n, spec.degree, spec.graph_seed));
      return std::make_unique<GraphRestrictedScheduler>(
          std::move(graph), spec.graph_accelerated);
    }
    case SchedulerKind::kWeighted:
      // Pinning n here both precomputes the kernel tables (shared by every
      // trial of a runner sweep) and rejects infeasible populations at
      // construction, where the caller is.
      return std::make_unique<WeightedScheduler>(
          spec.kernel, spec.kernel_power, n,
          spec.dense_reference ? WeightedScheduler::Path::kDense
                               : WeightedScheduler::Path::kAuto);
    case SchedulerKind::kDynamicGraph:
      return std::make_unique<DynamicGraphScheduler>(spec, n);
    case SchedulerKind::kAdversarial:
      return std::make_unique<AdversarialScheduler>(spec.adversary);
    case SchedulerKind::kChurn:
      return std::make_unique<ChurnScheduler>(
          spec.churn_rate, spec.churn_faults, spec.churn_active,
          spec.churn_reset, spec.dense_reference);
    case SchedulerKind::kPartition:
      return std::make_unique<PartitionScheduler>(
          spec.partition_blocks, spec.partition_split, spec.partition_heal,
          spec.partition_cycles);
  }
  PP_ASSERT_MSG(false, "unknown SchedulerKind");
  return nullptr;
}

namespace detail {

void run_clean_tail(Protocol& p, Rng& rng, const RunOptions& opt,
                    RunResult& r) {
  if (r.aborted || p.is_silent() || r.interactions >= opt.max_interactions) {
    return;
  }
  RunOptions tail;
  tail.max_interactions = opt.max_interactions - r.interactions;
  if (opt.on_change) {
    const u64 base = r.interactions;
    const auto& outer = opt.on_change;
    tail.on_change = [&outer, base](const Protocol& q, u64 k) {
      return outer(q, base + k);
    };
  }
  const RunResult clean = run_accelerated(p, rng, tail);
  r.interactions += clean.interactions;
  r.productive_steps += clean.productive_steps;
  r.aborted = clean.aborted;
}

RunResult finish_run(const Protocol& p, RunResult r, double parallel_time) {
  r.silent = p.is_silent();
  r.valid = p.is_valid_ranking();
  r.parallel_time = parallel_time;
  PP_ASSERT_MSG(r.interactions >= r.productive_steps,
                "scheduler contract: interactions >= productive_steps");
  PP_ASSERT_MSG(!r.silent || p.productive_weight() == 0,
                "scheduler contract: silent implies productive_weight()==0");
  return r;
}

}  // namespace detail
}  // namespace pp
