#include "schedulers/scheduler.hpp"

#include "common/assert.hpp"
#include "schedulers/graph_restricted.hpp"
#include "schedulers/random_matching.hpp"
#include "schedulers/uniform.hpp"

namespace pp {

// Declared in core/engine.hpp; defined here so src/core never depends on
// the schedulers layer (only this call site needs the Scheduler vtable).
RunResult run(Protocol& p, Rng& rng, const RunOptions& opt) {
  if (opt.scheduler != nullptr) return opt.scheduler->run(p, rng, opt);
  return run_accelerated(p, rng, opt);
}

const char* scheduler_kind_name(SchedulerKind k) {
  switch (k) {
    case SchedulerKind::kUniform:
      return "uniform";
    case SchedulerKind::kAcceleratedUniform:
      return "accelerated-uniform";
    case SchedulerKind::kRandomMatching:
      return "random-matching";
    case SchedulerKind::kGraphRestricted:
      return "graph-restricted";
  }
  return "?";
}

std::vector<SchedulerKind> scheduler_kinds() {
  return {SchedulerKind::kAcceleratedUniform, SchedulerKind::kUniform,
          SchedulerKind::kRandomMatching, SchedulerKind::kGraphRestricted};
}

std::vector<SchedulerSpec> standard_scheduler_menu() {
  std::vector<SchedulerSpec> menu;
  SchedulerSpec s;
  s.kind = SchedulerKind::kAcceleratedUniform;
  menu.push_back(s);
  s.kind = SchedulerKind::kUniform;
  menu.push_back(s);
  s.kind = SchedulerKind::kRandomMatching;
  menu.push_back(s);
  s.kind = SchedulerKind::kGraphRestricted;
  s.graph = GraphKind::kComplete;
  menu.push_back(s);
  s.graph = GraphKind::kRandomRegular;
  s.degree = 4;
  menu.push_back(s);
  s.graph = GraphKind::kCycle;
  menu.push_back(s);
  return menu;
}

std::string SchedulerSpec::to_string() const {
  if (kind != SchedulerKind::kGraphRestricted) {
    return scheduler_kind_name(kind);
  }
  std::string out = "graph-restricted[";
  if (graph == GraphKind::kRandomRegular) {
    out += "random-" + std::to_string(degree) + "-regular";
  } else {
    out += graph_kind_name(graph);
  }
  out += "]";
  return out;
}

SchedulerPtr make_scheduler(const SchedulerSpec& spec, u64 n) {
  switch (spec.kind) {
    case SchedulerKind::kUniform:
      return std::make_unique<UniformScheduler>();
    case SchedulerKind::kAcceleratedUniform:
      return std::make_unique<AcceleratedUniformScheduler>();
    case SchedulerKind::kRandomMatching:
      return std::make_unique<RandomMatchingScheduler>();
    case SchedulerKind::kGraphRestricted: {
      auto graph = std::make_shared<const InteractionGraph>(
          InteractionGraph::make(spec.graph, n, spec.degree, spec.graph_seed));
      return std::make_unique<GraphRestrictedScheduler>(
          std::move(graph), spec.graph_accelerated);
    }
  }
  PP_ASSERT_MSG(false, "unknown SchedulerKind");
  return nullptr;
}

namespace detail {

RunResult finish_run(const Protocol& p, RunResult r, double parallel_time) {
  r.silent = p.is_silent();
  r.valid = p.is_valid_ranking();
  r.parallel_time = parallel_time;
  PP_ASSERT_MSG(r.interactions >= r.productive_steps,
                "scheduler contract: interactions >= productive_steps");
  PP_ASSERT_MSG(!r.silent || p.productive_weight() == 0,
                "scheduler contract: silent implies productive_weight()==0");
  return r;
}

}  // namespace detail
}  // namespace pp
