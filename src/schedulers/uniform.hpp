// The paper's uniform random scheduler behind the Scheduler interface.
//
// Both classes delegate verbatim to the engines in core/engine.cpp, so a
// run through the interface consumes the generator identically to a direct
// run_uniform()/run_accelerated() call — trajectories are bit-identical
// seed-for-seed, which tests/test_scheduler.cpp pins with hard-coded
// regression values.
#pragma once

#include <string_view>

#include "schedulers/scheduler.hpp"

namespace pp {

class UniformScheduler final : public Scheduler {
 public:
  std::string_view name() const override { return "uniform"; }
  RunResult run(Protocol& p, Rng& rng,
                const RunOptions& opt = {}) const override;
};

class AcceleratedUniformScheduler final : public Scheduler {
 public:
  std::string_view name() const override { return "accelerated-uniform"; }
  RunResult run(Protocol& p, Rng& rng,
                const RunOptions& opt = {}) const override;
};

}  // namespace pp
