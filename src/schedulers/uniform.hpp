// The paper's uniform random scheduler behind the Scheduler interface.
//
// All four classes delegate verbatim to the engines in src/core, so a run
// through the interface consumes the generator identically to a direct
// run_uniform()/run_accelerated()/run_count()/run_hybrid() call —
// trajectories are bit-identical seed-for-seed, which
// tests/test_scheduler.cpp pins with hard-coded regression values.
//
// The count and hybrid rows simulate the *same* uniform random scheduler,
// just with different machinery: count on the state-count vector alone
// (core/count_engine.hpp), hybrid with count bulk plus an agent-level
// end-game tail (core/hybrid_engine.hpp).  Protocols without the
// count-determined capability (line/tree extra-state machinery) fall back
// to the plain accelerated engine, so both rows stay total over the
// conformance roster.
#pragma once

#include <string_view>

#include "schedulers/scheduler.hpp"

namespace pp {

class UniformScheduler final : public Scheduler {
 public:
  std::string_view name() const override { return "uniform"; }
  RunResult run(Protocol& p, Rng& rng,
                const RunOptions& opt = {}) const override;
};

class AcceleratedUniformScheduler final : public Scheduler {
 public:
  std::string_view name() const override { return "accelerated-uniform"; }
  RunResult run(Protocol& p, Rng& rng,
                const RunOptions& opt = {}) const override;
};

class CountScheduler final : public Scheduler {
 public:
  std::string_view name() const override { return "count"; }
  RunResult run(Protocol& p, Rng& rng,
                const RunOptions& opt = {}) const override;
};

class HybridScheduler final : public Scheduler {
 public:
  std::string_view name() const override { return "hybrid"; }
  RunResult run(Protocol& p, Rng& rng,
                const RunOptions& opt = {}) const override;
};

}  // namespace pp
