// The synchronous-rounds scheduler: one random maximal matching per round.
//
// In each round the n agents are paired up by a uniformly random maximal
// matching (n odd leaves one agent idle) and every matched pair interacts
// simultaneously; matched pairs are disjoint, so applying them one after
// the other inside the round is equivalent.  The initiator/responder
// orientation of each pair — which matters for cross-state rules like the
// tree protocol's R4 — is a fair coin, supplied for free by the round's
// uniform shuffle (slot order within a pair is already uniform).
//
// Parallel time is the number of rounds: the model fires Θ(n) interactions
// per unit of time instead of 1, which is exactly the classic
// "synchronous" reading of population dynamics.  RunResult::interactions
// still counts individual pair meetings (nulls included) so interaction
// budgets mean the same thing under every scheduler.
#pragma once

#include <string_view>

#include "schedulers/scheduler.hpp"

namespace pp {

class RandomMatchingScheduler final : public Scheduler {
 public:
  std::string_view name() const override { return "random-matching"; }
  RunResult run(Protocol& p, Rng& rng,
                const RunOptions& opt = {}) const override;
};

}  // namespace pp
