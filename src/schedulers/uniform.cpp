#include "schedulers/uniform.hpp"

#include "core/count_engine.hpp"
#include "core/hybrid_engine.hpp"

namespace pp {
namespace {

// The engines never read opt.scheduler, but clearing it keeps the
// delegated RunOptions literally equal to what a pre-refactor caller
// passed — the bit-identical-trajectory guarantee has no asterisks.
RunOptions strip_scheduler(const RunOptions& opt) {
  RunOptions engine_opt = opt;
  engine_opt.scheduler = nullptr;
  return engine_opt;
}

}  // namespace

RunResult UniformScheduler::run(Protocol& p, Rng& rng,
                                const RunOptions& opt) const {
  return run_uniform(p, rng, strip_scheduler(opt));
}

RunResult AcceleratedUniformScheduler::run(Protocol& p, Rng& rng,
                                           const RunOptions& opt) const {
  return run_accelerated(p, rng, strip_scheduler(opt));
}

RunResult CountScheduler::run(Protocol& p, Rng& rng,
                              const RunOptions& opt) const {
  if (!p.is_count_determined()) {
    return run_accelerated(p, rng, strip_scheduler(opt));
  }
  return run_count(p, rng, strip_scheduler(opt));
}

RunResult HybridScheduler::run(Protocol& p, Rng& rng,
                               const RunOptions& opt) const {
  // run_hybrid does its own capability fallback.
  return run_hybrid(p, rng, strip_scheduler(opt));
}

}  // namespace pp
