#include "schedulers/uniform.hpp"

namespace pp {
namespace {

// The engines never read opt.scheduler, but clearing it keeps the
// delegated RunOptions literally equal to what a pre-refactor caller
// passed — the bit-identical-trajectory guarantee has no asterisks.
RunOptions strip_scheduler(const RunOptions& opt) {
  RunOptions engine_opt = opt;
  engine_opt.scheduler = nullptr;
  return engine_opt;
}

}  // namespace

RunResult UniformScheduler::run(Protocol& p, Rng& rng,
                                const RunOptions& opt) const {
  return run_uniform(p, rng, strip_scheduler(opt));
}

RunResult AcceleratedUniformScheduler::run(Protocol& p, Rng& rng,
                                           const RunOptions& opt) const {
  return run_accelerated(p, rng, strip_scheduler(opt));
}

}  // namespace pp
