// The graph-restricted scheduler: interactions only along edges of a graph.
//
// Agents are pinned to the vertices of a fixed InteractionGraph by a
// uniformly random placement drawn once at run start (the protocols are
// self-stabilising, so *which* states start where is already arbitrary —
// the random placement just removes any artefact of the count-vector
// expansion order).  Each step draws one of the 2|E| directed edges
// uniformly at random and lets (initiator, responder) = its endpoints
// interact; parallel edges therefore carry proportionally more scheduling
// weight, and parallel time is interactions / n exactly as under the
// uniform scheduler (which this model recovers on the complete graph —
// tests check that statistically).
//
// Accelerated path.  Near stabilisation almost every directed edge is null,
// so the naive loop wastes Θ(2|E| / W_G) draws per productive step, where
// W_G is the number of *productive directed edges* — the protocol's
// productive weight intersected with the edge set.  Pair selection runs on
// the Fenwick-backed sampler layer (schedulers/pair_sampler.hpp): a
// DirectedEdgeSampler keeps the productive-edge weight fresh incrementally
// (a productive application at edge (u, v) only changes the states of u
// and v, so only edges incident to u or v are re-tested against δ — O(deg
// log |E|) per productive step on bounded-degree topologies).  With W_G
// known exactly, the gap to the next productive step is
// Geometric(W_G / 2|E|) and the firing edge is uniform among the W_G
// productive ones: the same exact null-skipping construction as the
// accelerated uniform engine, applied edge-wise.
//
// A configuration with W_G = 0 but productive_weight() > 0 is *locally
// stuck*: distant agents could still interact, adjacent ones cannot.  Both
// paths stop there and report silent = false (restricted topologies
// genuinely do strand protocols whose progress needs non-local meetings —
// that is the phenomenon this scheduler exists to expose).
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "schedulers/scheduler.hpp"
#include "structures/interaction_graph.hpp"

namespace pp {

class GraphRestrictedScheduler final : public Scheduler {
 public:
  /// The graph is shared (a topology can serve many concurrent runs); its
  /// vertex count must equal the protocol's population size at run time.
  /// `accelerated` selects the null-skipping path (identical in
  /// distribution to the naive loop; both consume the generator
  /// differently, so trajectories differ seed-for-seed while every
  /// statistic agrees).
  explicit GraphRestrictedScheduler(
      std::shared_ptr<const InteractionGraph> graph, bool accelerated = true);

  std::string_view name() const override { return name_; }
  RunResult run(Protocol& p, Rng& rng,
                const RunOptions& opt = {}) const override;

  const InteractionGraph& graph() const { return *graph_; }
  bool accelerated() const { return accelerated_; }

 private:
  std::shared_ptr<const InteractionGraph> graph_;
  bool accelerated_;
  std::string name_;
};

}  // namespace pp
