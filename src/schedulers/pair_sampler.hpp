// The Fenwick-backed pair-sampler layer: "sample a pair proportionally to
// weight, keep the weights fresh as agents change state".
//
// Every scheduler in this library is secretly sampling from a weight
// function over ordered pairs: the uniform scheduler weights all n(n-1)
// ordered pairs equally, the graph-restricted scheduler weights directed
// edges of a topology 1 and everything else 0, a spatial model weights
// pairs by distance decay, and a dynamic graph moves weight around as
// edges are born and die.  This module extracts the machinery those models
// share — the same construction the protocols' own productive-weight
// Fenwick uses, lifted from states to pairs:
//
//   * a Fenwick tree of per-pair *scheduling weights* w(e) (how likely the
//     scheduler is to propose pair e next), plus
//   * a parallel Fenwick of *productive weights* — w(e) for exactly those
//     pairs whose interaction would change a state, 0 elsewhere — kept in
//     sync through point updates.
//
// With both totals known exactly, the accelerated path of any scheduler
// built on this layer falls out for free: the gap to the next productive
// step is Geometric(productive_total / weight_total) and the firing pair
// is sampled from the productive tree — the uniform engine's exact
// null-skipping construction, generalised to arbitrary weights.
//
// PairSampler is deliberately protocol-agnostic: callers decide what a
// pair id means (directed edge of a graph, dense (i, j) index, ...), test
// productivity against δ themselves, and tell the sampler.
// DirectedEdgeSampler below is the graph-shaped glue used by the
// graph-restricted and dynamic-graph schedulers.
//
// Scaling past the dense universe.  A flat PairSampler over all n(n-1)
// ordered pairs is the *reference* construction: transparent, exactly
// incremental, and Θ(n²) in memory — which caps it near n = 4096.  The
// second half of this header is the sparse/hierarchical replacement that
// lifts the weighted and dynamic models to the n ~ 10^5 the uniform
// engines handle:
//
//   * DistanceKernel — a translation-invariant kernel w(i, j) = K(d(i, j))
//     held in closed form: O(n) prefix tables, O(log n) weighted pair
//     sampling, u64-overflow-checked totals.  The weight function is
//     *evaluated*, never materialised.
//   * GroupedKernelSampler — the two-level productive sampler: same-state
//     rank pairs resolve through a top-level Fenwick over per-state
//     within-group kernel mass with partners found inside the (small)
//     group, and extra-state pairs through per-agent kernel-row masses
//     driven by the protocol's declared ExtraPairClasses (every library
//     protocol qualifies).  O(n) memory, O(log n + group²) sampling,
//     O(group + log n) weight update per state change — against the dense
//     path's Θ(n²) memory and Θ(n log n) update.
//   * TrapKernelSampler — the state-distance spatial sampler behind
//     weighted[trap-decay]: product weights κ(state, state) over
//     ring_layout trap distance, run entirely on per-trap count
//     aggregates (O(states) memory, O(√states + log states) per event).
//   * DirectedPairRoster — a compacting weight-1 PairSampler window for
//     rosters that grow and shrink (the edge-Markovian present set):
//     memory tracks the *live* edge count, not the pair universe.
#pragma once

#include <algorithm>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "core/protocol.hpp"
#include "ds/fenwick.hpp"
#include "rng/random.hpp"
#include "structures/interaction_graph.hpp"
#include "structures/ring_layout.hpp"

namespace pp {

/// The agent-level pair-productivity predicate shared by every sampler
/// glue layer: "δ changes either endpoint's state".  This is deliberately
/// not Protocol::productive_weight's "changes the configuration" — the
/// two coincide for every protocol in this library (δ is null iff it
/// returns its inputs unchanged; rules never merely swap states), but a
/// hypothetical swap rule δ(a,b) = (b,a) WOULD count as productive here:
/// under the positional schedulers agents have positions, so a swap
/// genuinely moves state around even though the count vector is
/// unchanged.  Such a protocol never reaches pair-silence on its own —
/// run it with a finite RunOptions::max_interactions.
inline bool pair_is_productive(const Protocol& p, StateId initiator,
                               StateId responder) {
  return p.transition(initiator, responder) !=
         std::make_pair(initiator, responder);
}

class PairSampler {
 public:
  PairSampler() = default;
  explicit PairSampler(u64 universe) { reset(universe); }

  /// Re-initialises to `universe` pair slots, all with weight 0 and marked
  /// unproductive.
  void reset(u64 universe);

  /// Bulk re-initialisation: scheduling weights plus productivity flags
  /// (the productive tree becomes `weights` masked to `flags`).  O(n) via
  /// Fenwick::assign — the dense pair universes are rebuilt per run, so
  /// construction cost matters.
  void reset(std::vector<u64> weights, std::vector<u8> flags);

  u64 universe() const { return weight_.size(); }

  /// Scheduling weight of pair `id` (0 = the scheduler never proposes it).
  u64 weight(u64 id) const { return weight_.get(id); }
  u64 weight_total() const { return weight_.total(); }

  /// Total scheduling weight of the currently productive pairs.
  u64 productive_total() const { return productive_.total(); }

  /// Per-step probability that a weight-proportional draw is productive
  /// (the accelerated path's geometric success probability); 0 when no
  /// weight is assigned at all.
  double productive_probability() const {
    const u64 total = weight_.total();
    if (total == 0) return 0.0;
    return static_cast<double>(productive_.total()) /
           static_cast<double>(total);
  }

  /// Sets the scheduling weight of `id`, keeping the productive tree in
  /// sync with the pair's current productivity flag.  This is how dynamic
  /// models move weight around (an edge death is set_weight(id, 0)).
  void set_weight(u64 id, u64 w);

  /// Records whether pair `id` is currently productive (its interaction
  /// would change a state).  The productive tree carries w(id) for flagged
  /// pairs and 0 otherwise; flags are tracked even for zero-weight pairs,
  /// so a later set_weight restores the right productive mass.
  void set_productive(u64 id, bool productive);
  bool productive(u64 id) const { return flag_[id] != 0; }

  /// Samples a pair with probability weight(id) / weight_total().
  /// Precondition: weight_total() > 0.
  u64 sample(Rng& rng) const {
    PP_DCHECK(weight_.total() > 0);
    return weight_.find(rng.below(weight_.total()));
  }

  /// Samples a productive pair with probability proportional to its
  /// weight.  Precondition: productive_total() > 0.
  u64 sample_productive(Rng& rng) const {
    PP_DCHECK(productive_.total() > 0);
    return productive_.find(rng.below(productive_.total()));
  }

 private:
  Fenwick weight_;      // per-pair scheduling weights
  Fenwick productive_;  // weight_ masked to the productive pairs
  std::vector<u8> flag_;
};

/// The graph-shaped glue over PairSampler: binds the 2|E| directed edges
/// of an InteractionGraph (pair id = 2 * edge + orientation) to a protocol
/// and a per-vertex state vector, with unit scheduling weight per directed
/// edge.  A productive application at (u, v) only changes the states of u
/// and v, so fire() re-tests just the edges incident to the two endpoints
/// against δ — O(deg) work per productive step on bounded-degree
/// topologies.  The graph-restricted scheduler holds one per run; the
/// periodic-rewiring dynamics rebuild one per epoch (take_states()
/// carries the population across).
class DirectedEdgeSampler {
 public:
  /// `states` is the per-vertex agent placement; every directed edge gets
  /// weight 1 and its productivity is computed up front.
  DirectedEdgeSampler(const InteractionGraph& g, const Protocol& p,
                      std::vector<StateId> states);

  const PairSampler& pairs() const { return pairs_; }

  /// Endpoints of a directed edge id as (initiator, responder).
  std::pair<u32, u32> endpoints(u64 directed) const {
    const auto [u, v] = g_->edges()[directed >> 1];
    return (directed & 1) ? std::make_pair(v, u) : std::make_pair(u, v);
  }

  /// Applies δ at the endpoints of `directed` (which must be productive),
  /// updates the vertex states and refreshes every incident directed edge.
  void fire(Protocol& p, u64 directed);

  /// Edge productivity through the shared pair_is_productive predicate
  /// (see its comment above for the agent-level vs configuration-level
  /// subtlety).
  bool is_productive(u64 directed) const {
    const auto [u, v] = endpoints(directed);
    return pair_is_productive(*p_, state_[u], state_[v]);
  }

  const std::vector<StateId>& states() const { return state_; }

  /// Hands the state vector to the caller (for rebuilding on a rewired
  /// graph); the sampler must not be used afterwards.
  std::vector<StateId> take_states() { return std::move(state_); }

 private:
  void refresh(u64 directed) {
    pairs_.set_productive(directed, is_productive(directed));
  }

  const InteractionGraph* g_;
  const Protocol* p_;
  std::vector<StateId> state_;
  PairSampler pairs_;
};

/// A translation-invariant pair-weight kernel w(i, j) = K(d(i, j)) over n
/// positions, held in closed form instead of as a dense table: one prefix
/// array over the decay profile K (plus, on the line, one over the row
/// totals) answers every query the dense Θ(n²) table answered —
/// pair weight, row marginal, grand total, and weight-proportional
/// sampling of a pair or of a partner given one endpoint — in O(log n)
/// from O(n) memory.  This is the top level of the hierarchical sampler:
/// the weight function is evaluated on demand, never materialised.
///
/// Geometry picks the distance: kRing wraps (d = min(|i-j|, n-|i-j|),
/// profile length floor(n/2)), kLine does not (d = |i-j|, profile length
/// n-1).  The profile must be positive everywhere (a zero-weight distance
/// would sever pairs and break the "weighted runs cannot get locally
/// stuck" guarantee).  Construction checks that the grand total fits u64
/// exactly (128-bit accumulation) — the principled replacement for the
/// dense path's blanket population cap.
class DistanceKernel {
 public:
  enum class Geometry { kRing, kLine };

  /// `decay[d - 1]` is K(d) for d = 1..decay.size(); the profile length
  /// must match the geometry (see above).
  DistanceKernel(Geometry g, u64 n, std::vector<u64> decay);

  u64 n() const { return n_; }
  Geometry geometry() const { return geom_; }

  /// Kernel weight of ordered pair (i, j).  Requires i != j; symmetric by
  /// construction.
  u64 weight(u64 i, u64 j) const;

  /// Row marginal: sum of w(i, j) over all j != i.
  u64 row_total(u64 i) const;

  /// Grand total over all n(n-1) ordered pairs.
  u64 total() const { return total_; }

  /// Samples ordered pair (i, j) with probability w(i, j) / total().
  std::pair<u64, u64> sample_pair(Rng& rng) const;

  /// Samples j with probability w(i, j) / row_total(i).
  u64 sample_partner(Rng& rng, u64 i) const;

  /// Deterministic partner resolution: the j whose row slot contains
  /// `target` (in [0, row_total(i))) under the fixed clockwise-arm-first
  /// (ring) / left-first (line) row order sample_partner draws from.
  /// Callers that already hold a uniform target (the grouped sampler's
  /// extra-class window) invert the row CDF without spending a draw.
  u64 partner_at(u64 i, u64 target) const;

  /// Number of u64 slots held — tests pin this at O(n) to prove the
  /// hierarchical path never re-grows a dense pair universe.
  u64 memory_slots() const { return prefix_.size() + row_prefix_.size(); }

 private:
  /// Smallest d with prefix_[d] > target (i.e. inverts the decay-profile
  /// CDF; target < prefix_.back()).
  u64 find_distance(u64 target) const;

  Geometry geom_;
  u64 n_ = 0;
  std::vector<u64> prefix_;      // prefix_[d] = K(1) + ... + K(d)
  std::vector<u64> row_prefix_;  // kLine only: prefix sums of row totals
  u64 ring_row_ = 0;             // kRing: the (shared) row marginal
  u64 total_ = 0;
};

/// The two-level productive sampler over a DistanceKernel: level one is a
/// Fenwick across *states* carrying each state's within-group ordered
/// kernel mass, level two resolves the pair inside the (small) group of
/// agents currently sharing that state.
///
/// Scope.  The rank-state half rides this library's protocol backbone
/// (every rank state carries a same-state rule that changes the
/// configuration, and distinct-rank pairs are null).  Extra states ride
/// the protocol's Protocol::ExtraPairClasses declaration: the supported
/// patterns are "no extra pair productive" (extra-state-free protocols,
/// inert extras) and "all (extra, extra) pairs plus exactly one
/// orientation of cross pairs productive" — line-of-traps (every pair
/// with an X *responder* fires) and tree-ranking (every pair with a
/// buffer *initiator* fires).  For those patterns the productive extra
/// mass collapses to Σ over extra-state agents b of the kernel row total
/// of b — a per-position Fenwick updated in O(log n) per membership
/// change, with the partner drawn unconditionally from b's kernel row
/// (any partner forms a productive pair).  supports() reports whether a
/// protocol's declared pattern fits; the declaration itself is
/// cross-checked against transition() on a bounded probe set at
/// construction.  Unsupported patterns take the dense reference path.
///
/// Costs, with g the size of the groups touched (O(log n / log log n)
/// under a uniform random placement):  O(n) memory, O(log n + g²) per
/// productive sample, O(g + log n) per agent state change — against the
/// dense path's Θ(n²) memory and Θ(n log n) per productive step.  Both
/// totals (kernel total, productive total) are exact, so the accelerated
/// geometric null-skipping construction carries over unchanged.
class GroupedKernelSampler {
 public:
  /// `placement` maps position -> current state; the kernel fixes n.
  GroupedKernelSampler(const DistanceKernel& kernel, const Protocol& p,
                       std::vector<StateId> placement);

  /// Whether this sampler can represent p's productive-pair structure:
  /// true for extra-state-free protocols and for declared extra-pair
  /// patterns where the extra mass is a sum of full kernel rows (all
  /// (extra, extra) pairs productive together with exactly one cross
  /// orientation, or no extra pair productive at all).
  static bool supports(const Protocol& p);

  u64 weight_total() const { return kernel_->total(); }
  u64 productive_total() const { return productive_.total() + extra_total(); }

  /// Per-step probability that a weight-proportional draw is productive.
  double productive_probability() const {
    return static_cast<double>(productive_total()) /
           static_cast<double>(kernel_->total());
  }

  /// Samples a productive ordered pair of positions with probability
  /// proportional to its kernel weight.  Precondition:
  /// productive_total() > 0.
  std::pair<u64, u64> sample_productive(Rng& rng) const;

  /// Applies δ at positions (i, j) — which must currently be productive —
  /// through p.apply_pair and migrates the agents between groups.
  void fire(Protocol& p, u64 i, u64 j);

  const std::vector<StateId>& states() const { return state_; }

  /// Within-group ordered kernel mass of state s (exposed for the
  /// dense-vs-hierarchical cross-validation tests).  Rank states only;
  /// extra-state pairs live in the extra-class window.
  u64 group_mass(StateId s) const { return productive_.get(s); }

  /// Total extra-class productive mass (Σ of kernel row totals over the
  /// extra-state agents; 0 when no extra class is productive).  Exposed
  /// for the cross-validation tests.
  u64 extra_total() const {
    return has_extra_window_ ? extra_mass_.total() : 0;
  }

 private:
  /// Σ over members x of group (excluding position a itself, if present)
  /// of w(a, x) + w(x, a) — the ordered mass position a contributes.
  u64 member_mass(u64 a, const std::vector<u32>& group) const;

  /// Asserts the declared ExtraPairClasses (and the backbone's rank-pair
  /// structure) against transition() on a bounded probe set.
  void verify_classes() const;

  void move_agent(u64 a, StateId from, StateId to);

  const DistanceKernel* kernel_;
  const Protocol* p_;
  Protocol::ExtraPairClasses classes_;
  u64 num_ranks_ = 0;
  bool has_extra_window_ = false;  // any extra class productive
  std::vector<StateId> state_;            // per position
  std::vector<std::vector<u32>> group_;   // per state: member positions
  std::vector<u32> slot_;                 // position -> index in its group
  Fenwick productive_;    // per rank state: within-group mass
  Fenwick extra_mass_;    // per position: kernel row total iff extra agent
};

/// The state-distance spatial sampler behind weighted[trap-decay]: pair
/// weights are a *product kernel* over states, w(pair) = κ(s, t) for an
/// agent in state s meeting an agent in state t, with κ(s, t) =
/// ⌊T/max(d, 1)⌋^power over the ring distance d between the traps of s
/// and t in the structures/ring_layout geometry (T traps ≈ √states laid
/// over ALL states, extras included).  Unlike the positional
/// DistanceKernel models, the weight of a pair *moves with the agents'
/// states* — spatially embedded populations where locality lives in the
/// state space itself — so there is no meaningful positional dense
/// reference; tests cross-validate against a direct Θ(states²)
/// enumeration over the count vector instead.
///
/// Agents are anonymous here (the kernel cannot distinguish two agents in
/// the same state), so the whole sampler runs on per-trap aggregates of
/// the count vector: per-trap agent/extra-agent counts, the per-trap row
/// sums R[A] = Σ_B n_B κ(A, B), the quadratic form Q = Σ_A n_A R[A] and
/// the extra-row sum Σ extra agents' rows — every total exact, so the
/// accelerated geometric null-skipping construction carries over.  Per
/// productive event: O(√states) for the trap scans plus O(log states)
/// Fenwick work; memory O(states).  Extra-state productivity rides the
/// same Protocol::ExtraPairClasses patterns GroupedKernelSampler
/// supports.
class TrapKernelSampler {
 public:
  /// Builds from p's current configuration; `power` in {1, 2, 3}.
  TrapKernelSampler(const Protocol& p, u64 power);

  /// Same supported class patterns as the grouped sampler.
  static bool supports(const Protocol& p) {
    return GroupedKernelSampler::supports(p);
  }

  /// Total scheduling weight over all ordered pairs of distinct agents.
  u64 weight_total() const;
  /// Total scheduling weight of the productive ordered pairs.
  u64 productive_total() const;

  double productive_probability() const {
    return static_cast<double>(productive_total()) /
           static_cast<double>(weight_total());
  }

  /// Samples a productive ordered state pair κ-proportionally, applies it
  /// through p.apply_pair and folds the count deltas back in.
  /// Precondition: productive_total() > 0.
  void fire(Protocol& p, Rng& rng);

  /// Kernel value κ(s, t) — also defined on the diagonal (κ(s, s) is the
  /// weight of a same-state pair).  Exposed for the direct-enumeration
  /// cross-validation tests.
  u64 kappa(StateId s, StateId t) const;

  u64 num_traps() const { return layout_.num_traps(); }

  /// Number of u64 slots held — tests pin this at O(states).
  u64 memory_slots() const {
    return kval_.size() + trap_count_.size() + trap_extra_.size() +
           row_.size() + extra_row_.size() + counts_.size();
  }

 private:
  /// Trap-distance kernel value for trap ring distance d.
  u64 kval(u64 a, u64 b) const {
    const u64 gap = a > b ? a - b : b - a;
    return kval_[std::min(gap, layout_.num_traps() - gap)];
  }

  /// Folds one count change (state s gains `delta` ∈ {-1, +1} agents)
  /// into every aggregate; O(√states).
  void apply_delta(StateId s, i64 delta);

  const Protocol* p_;
  Protocol::ExtraPairClasses classes_;
  u64 num_ranks_ = 0;
  u64 n_ = 0;
  u64 k1_ = 0;  // κ at trap distance 0 or 1 (= T^power)
  RingLayout layout_;
  std::vector<u64> kval_;        // kernel value per trap ring distance
  std::vector<u64> counts_;      // mirror of p's count vector
  std::vector<u64> trap_count_;  // agents per trap
  std::vector<u64> trap_extra_;  // extra-state agents per trap
  std::vector<u64> row_;         // R[A] = Σ_B n_B κ(A, B)
  std::vector<u64> extra_row_;   // RE[A] = Σ_B E_B κ(A, B)
  u64 q_ = 0;                    // Σ_A n_A R[A] (incl. self pairs)
  u64 ser_ = 0;                  // Σ_A E_A R[A]
  u64 x_extra_ = 0;              // total extra-state agents
  Fenwick rank_diag_;            // per rank state: c(c-1)
};

/// A compacting window over PairSampler for entry sets that grow and
/// shrink: live entries occupy indices [0, size()), each owning two
/// directed slots (2e for entry e's forward orientation, 2e+1 for the
/// reverse) of scheduling weight 1 with independent productivity flags.
/// remove() swap-fills the hole from the back — the caller learns which
/// entry moved and repoints its own bookkeeping — and add() doubles the
/// Fenwick capacity by O(capacity) rebuild when the roster outgrows it,
/// so memory tracks the live entry count, never a pair universe.  This is
/// the sparse edge-Markovian model's present-edge store.
class DirectedPairRoster {
 public:
  static constexpr u64 kNoEntry = ~static_cast<u64>(0);

  explicit DirectedPairRoster(u64 initial_capacity = 16);

  u64 size() const { return size_; }
  u64 capacity() const { return capacity_; }

  /// Appends a live entry with the given orientation flags; returns its
  /// index (== previous size()).
  u64 add(bool fwd_productive, bool rev_productive);

  /// Removes entry e.  Returns the index of the entry that was moved into
  /// the hole (the previous back), or kNoEntry when e was the back.
  u64 remove(u64 e);

  void set_flag(u64 e, u64 orientation, bool productive) {
    PP_DCHECK(e < size_ && orientation < 2);
    pairs_.set_productive(2 * e + orientation, productive);
  }

  u64 weight_total() const { return pairs_.weight_total(); }
  u64 productive_total() const { return pairs_.productive_total(); }

  /// Productive fraction of the live directed slots (0 when empty).
  double productive_probability() const {
    return pairs_.productive_probability();
  }

  /// Samples a productive (entry, orientation); precondition
  /// productive_total() > 0.
  std::pair<u64, u64> sample_productive(Rng& rng) const {
    const u64 d = pairs_.sample_productive(rng);
    return {d >> 1, d & 1};
  }

 private:
  void grow(u64 new_capacity);

  PairSampler pairs_;  // 2 * capacity_ slots; live slots < 2 * size_
  u64 size_ = 0;
  u64 capacity_ = 0;
};

}  // namespace pp
