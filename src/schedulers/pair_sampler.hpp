// The Fenwick-backed pair-sampler layer: "sample a pair proportionally to
// weight, keep the weights fresh as agents change state".
//
// Every scheduler in this library is secretly sampling from a weight
// function over ordered pairs: the uniform scheduler weights all n(n-1)
// ordered pairs equally, the graph-restricted scheduler weights directed
// edges of a topology 1 and everything else 0, a spatial model weights
// pairs by distance decay, and a dynamic graph moves weight around as
// edges are born and die.  This module extracts the machinery those models
// share — the same construction the protocols' own productive-weight
// Fenwick uses, lifted from states to pairs:
//
//   * a Fenwick tree of per-pair *scheduling weights* w(e) (how likely the
//     scheduler is to propose pair e next), plus
//   * a parallel Fenwick of *productive weights* — w(e) for exactly those
//     pairs whose interaction would change a state, 0 elsewhere — kept in
//     sync through point updates.
//
// With both totals known exactly, the accelerated path of any scheduler
// built on this layer falls out for free: the gap to the next productive
// step is Geometric(productive_total / weight_total) and the firing pair
// is sampled from the productive tree — the uniform engine's exact
// null-skipping construction, generalised to arbitrary weights.
//
// PairSampler is deliberately protocol-agnostic: callers decide what a
// pair id means (directed edge of a graph, dense (i, j) index, ...), test
// productivity against δ themselves, and tell the sampler.
// DirectedEdgeSampler below is the graph-shaped glue used by the
// graph-restricted and dynamic-graph schedulers.
#pragma once

#include <utility>
#include <vector>

#include "common/types.hpp"
#include "core/protocol.hpp"
#include "ds/fenwick.hpp"
#include "rng/random.hpp"
#include "structures/interaction_graph.hpp"

namespace pp {

/// The agent-level pair-productivity predicate shared by every sampler
/// glue layer: "δ changes either endpoint's state".  This is deliberately
/// not Protocol::productive_weight's "changes the configuration" — the
/// two coincide for every protocol in this library (δ is null iff it
/// returns its inputs unchanged; rules never merely swap states), but a
/// hypothetical swap rule δ(a,b) = (b,a) WOULD count as productive here:
/// under the positional schedulers agents have positions, so a swap
/// genuinely moves state around even though the count vector is
/// unchanged.  Such a protocol never reaches pair-silence on its own —
/// run it with a finite RunOptions::max_interactions.
inline bool pair_is_productive(const Protocol& p, StateId initiator,
                               StateId responder) {
  return p.transition(initiator, responder) !=
         std::make_pair(initiator, responder);
}

class PairSampler {
 public:
  PairSampler() = default;
  explicit PairSampler(u64 universe) { reset(universe); }

  /// Re-initialises to `universe` pair slots, all with weight 0 and marked
  /// unproductive.
  void reset(u64 universe);

  /// Bulk re-initialisation: scheduling weights plus productivity flags
  /// (the productive tree becomes `weights` masked to `flags`).  O(n) via
  /// Fenwick::assign — the dense pair universes are rebuilt per run, so
  /// construction cost matters.
  void reset(std::vector<u64> weights, std::vector<u8> flags);

  u64 universe() const { return weight_.size(); }

  /// Scheduling weight of pair `id` (0 = the scheduler never proposes it).
  u64 weight(u64 id) const { return weight_.get(id); }
  u64 weight_total() const { return weight_.total(); }

  /// Total scheduling weight of the currently productive pairs.
  u64 productive_total() const { return productive_.total(); }

  /// Per-step probability that a weight-proportional draw is productive
  /// (the accelerated path's geometric success probability); 0 when no
  /// weight is assigned at all.
  double productive_probability() const {
    const u64 total = weight_.total();
    if (total == 0) return 0.0;
    return static_cast<double>(productive_.total()) /
           static_cast<double>(total);
  }

  /// Sets the scheduling weight of `id`, keeping the productive tree in
  /// sync with the pair's current productivity flag.  This is how dynamic
  /// models move weight around (an edge death is set_weight(id, 0)).
  void set_weight(u64 id, u64 w);

  /// Records whether pair `id` is currently productive (its interaction
  /// would change a state).  The productive tree carries w(id) for flagged
  /// pairs and 0 otherwise; flags are tracked even for zero-weight pairs,
  /// so a later set_weight restores the right productive mass.
  void set_productive(u64 id, bool productive);
  bool productive(u64 id) const { return flag_[id] != 0; }

  /// Samples a pair with probability weight(id) / weight_total().
  /// Precondition: weight_total() > 0.
  u64 sample(Rng& rng) const {
    PP_DCHECK(weight_.total() > 0);
    return weight_.find(rng.below(weight_.total()));
  }

  /// Samples a productive pair with probability proportional to its
  /// weight.  Precondition: productive_total() > 0.
  u64 sample_productive(Rng& rng) const {
    PP_DCHECK(productive_.total() > 0);
    return productive_.find(rng.below(productive_.total()));
  }

 private:
  Fenwick weight_;      // per-pair scheduling weights
  Fenwick productive_;  // weight_ masked to the productive pairs
  std::vector<u8> flag_;
};

/// The graph-shaped glue over PairSampler: binds the 2|E| directed edges
/// of an InteractionGraph (pair id = 2 * edge + orientation) to a protocol
/// and a per-vertex state vector, with unit scheduling weight per directed
/// edge.  A productive application at (u, v) only changes the states of u
/// and v, so fire() re-tests just the edges incident to the two endpoints
/// against δ — O(deg) work per productive step on bounded-degree
/// topologies.  The graph-restricted scheduler holds one per run; the
/// periodic-rewiring dynamics rebuild one per epoch (take_states()
/// carries the population across).
class DirectedEdgeSampler {
 public:
  /// `states` is the per-vertex agent placement; every directed edge gets
  /// weight 1 and its productivity is computed up front.
  DirectedEdgeSampler(const InteractionGraph& g, const Protocol& p,
                      std::vector<StateId> states);

  const PairSampler& pairs() const { return pairs_; }

  /// Endpoints of a directed edge id as (initiator, responder).
  std::pair<u32, u32> endpoints(u64 directed) const {
    const auto [u, v] = g_->edges()[directed >> 1];
    return (directed & 1) ? std::make_pair(v, u) : std::make_pair(u, v);
  }

  /// Applies δ at the endpoints of `directed` (which must be productive),
  /// updates the vertex states and refreshes every incident directed edge.
  void fire(Protocol& p, u64 directed);

  /// Edge productivity through the shared pair_is_productive predicate
  /// (see its comment above for the agent-level vs configuration-level
  /// subtlety).
  bool is_productive(u64 directed) const {
    const auto [u, v] = endpoints(directed);
    return pair_is_productive(*p_, state_[u], state_[v]);
  }

  const std::vector<StateId>& states() const { return state_; }

  /// Hands the state vector to the caller (for rebuilding on a rewired
  /// graph); the sampler must not be used afterwards.
  std::vector<StateId> take_states() { return std::move(state_); }

 private:
  void refresh(u64 directed) {
    pairs_.set_productive(directed, is_productive(directed));
  }

  const InteractionGraph* g_;
  const Protocol* p_;
  std::vector<StateId> state_;
  PairSampler pairs_;
};

}  // namespace pp
