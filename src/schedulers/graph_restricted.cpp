#include "schedulers/graph_restricted.hpp"

#include "common/assert.hpp"
#include "schedulers/pair_sampler.hpp"

namespace pp {

GraphRestrictedScheduler::GraphRestrictedScheduler(
    std::shared_ptr<const InteractionGraph> graph, bool accelerated)
    : graph_(std::move(graph)), accelerated_(accelerated) {
  PP_ASSERT_MSG(graph_ != nullptr, "graph-restricted scheduler needs a graph");
  name_ = "graph-restricted[" + graph_->description() + "]";
}

RunResult GraphRestrictedScheduler::run(Protocol& p, Rng& rng,
                                        const RunOptions& opt) const {
  const u64 n = p.num_agents();
  PP_ASSERT_MSG(graph_->num_vertices() == n,
                "interaction graph size != population size");
  // The protocols are self-stabilising, so *which* states start where is
  // already arbitrary — the random placement just removes any artefact of
  // the count-vector expansion order.
  std::vector<StateId> placement = p.configuration().to_agent_states();
  rng.shuffle(placement);
  DirectedEdgeSampler es(*graph_, p, std::move(placement));

  RunResult r;
  // Stops at edge-silence (no productive directed edge left — either true
  // silence or a locally stuck configuration), budget exhaustion or
  // observer abort.
  while (es.pairs().productive_total() != 0) {
    u64 fired;
    if (accelerated_) {
      if (!advance_past_nulls(rng, es.pairs().productive_probability(),
                              opt.max_interactions, r.interactions)) {
        break;
      }
      fired = es.pairs().sample_productive(rng);
    } else {
      if (r.interactions >= opt.max_interactions) break;
      ++r.interactions;
      const u64 drawn = es.pairs().sample(rng);
      if (!es.pairs().productive(drawn)) continue;  // null step
      fired = drawn;
    }
    es.fire(p, fired);
    ++r.productive_steps;
    if (opt.on_change && !opt.on_change(p, r.interactions)) {
      r.aborted = true;
      break;
    }
  }
  return detail::finish_run(
      p, r, static_cast<double>(r.interactions) / static_cast<double>(n));
}

}  // namespace pp
