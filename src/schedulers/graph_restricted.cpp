#include "schedulers/graph_restricted.hpp"

#include "common/assert.hpp"

namespace pp {
namespace {

constexpr u32 kNotProductive = static_cast<u32>(-1);

// The mutable per-run state: agent states per vertex plus the incrementally
// maintained set of productive directed edges.  Directed edge ids are
// 2 * edge_id + orientation (0: (u, v) as stored, 1: reversed).
struct EdgeState {
  const InteractionGraph& g;
  const Protocol& p;
  std::vector<StateId> state;      // per vertex
  std::vector<u32> productive;     // directed edge ids, unordered
  std::vector<u32> where;          // directed edge id -> index in productive

  EdgeState(const InteractionGraph& graph, const Protocol& proto,
            std::vector<StateId> placement)
      : g(graph), p(proto), state(std::move(placement)) {
    where.assign(2 * g.num_edges(), kNotProductive);
    for (u64 d = 0; d < where.size(); ++d) refresh(static_cast<u32>(d));
  }

  std::pair<u32, u32> endpoints(u32 directed) const {
    const auto [u, v] = g.edges()[directed >> 1];
    return (directed & 1) ? std::make_pair(v, u) : std::make_pair(u, v);
  }

  // Edge productivity is "δ changes either endpoint's state" — an
  // agent-level notion, deliberately not Protocol::productive_weight's
  // "changes the configuration".  The two coincide for every protocol in
  // this library (δ is null iff it returns its inputs unchanged; rules
  // never merely swap states), but a hypothetical swap rule
  // δ(a,b) = (b,a) WOULD count as productive here: on a graph, agents
  // have positions, so a swap genuinely moves state around the topology
  // even though the count vector is unchanged.  Such a protocol never
  // reaches edge-silence on its own — run it with a finite
  // RunOptions::max_interactions.
  bool is_productive(u32 directed) const {
    const auto [u, v] = endpoints(directed);
    return p.transition(state[u], state[v]) !=
           std::make_pair(state[u], state[v]);
  }

  /// Syncs membership of one directed edge in the productive set.
  void refresh(u32 directed) {
    const bool now = is_productive(directed);
    const bool was = where[directed] != kNotProductive;
    if (now == was) return;
    if (now) {
      where[directed] = static_cast<u32>(productive.size());
      productive.push_back(directed);
    } else {
      const u32 idx = where[directed];
      const u32 moved = productive.back();
      productive[idx] = moved;
      where[moved] = idx;
      productive.pop_back();
      where[directed] = kNotProductive;
    }
  }

  /// Re-tests every directed edge incident to v (both orientations).
  void refresh_vertex(u32 v) {
    for (const u32 e : g.incident_edges(v)) {
      refresh(2 * e);
      refresh(2 * e + 1);
    }
  }
};

}  // namespace

GraphRestrictedScheduler::GraphRestrictedScheduler(
    std::shared_ptr<const InteractionGraph> graph, bool accelerated)
    : graph_(std::move(graph)), accelerated_(accelerated) {
  PP_ASSERT_MSG(graph_ != nullptr, "graph-restricted scheduler needs a graph");
  name_ = "graph-restricted[" + graph_->description() + "]";
}

RunResult GraphRestrictedScheduler::run(Protocol& p, Rng& rng,
                                        const RunOptions& opt) const {
  const u64 n = p.num_agents();
  PP_ASSERT_MSG(graph_->num_vertices() == n,
                "interaction graph size != population size");
  std::vector<StateId> placement = p.configuration().to_agent_states();
  rng.shuffle(placement);
  EdgeState es(*graph_, p, std::move(placement));

  const u64 directed_total = 2 * graph_->num_edges();
  RunResult r;
  while (!es.productive.empty()) {
    u32 fired;
    if (accelerated_) {
      const double prob = static_cast<double>(es.productive.size()) /
                          static_cast<double>(directed_total);
      if (!advance_past_nulls(rng, prob, opt.max_interactions,
                              r.interactions)) {
        break;
      }
      fired = es.productive[rng.below(es.productive.size())];
    } else {
      if (r.interactions >= opt.max_interactions) break;
      ++r.interactions;
      const u32 drawn = static_cast<u32>(rng.below(directed_total));
      if (es.where[drawn] == kNotProductive) continue;  // null step
      fired = drawn;
    }
    const auto [u, v] = es.endpoints(fired);
    const auto [su, sv] = p.apply_pair(es.state[u], es.state[v]);
    PP_DCHECK(su != es.state[u] || sv != es.state[v]);
    es.state[u] = su;
    es.state[v] = sv;
    es.refresh_vertex(u);
    es.refresh_vertex(v);
    ++r.productive_steps;
    if (opt.on_change && !opt.on_change(p, r.interactions)) {
      r.aborted = true;
      break;
    }
  }
  return detail::finish_run(
      p, r, static_cast<double>(r.interactions) / static_cast<double>(n));
}

}  // namespace pp
