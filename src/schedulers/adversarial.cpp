#include "schedulers/adversarial.hpp"

#include <algorithm>
#include <vector>

#include "common/assert.hpp"

namespace pp {
namespace {

struct Candidate {
  StateId s1, s2;   // ordered pair of states (initiator, responder)
  StateId o1, o2;   // δ outputs
  u64 weight;       // number of ordered agent pairs realising it
};

// Occupied-rank delta of firing a candidate on `counts`.
i64 rank_coverage_delta(const std::vector<u64>& counts, u64 num_ranks,
                        const Candidate& c) {
  // Occupancy can only flip at the (<= 4 distinct) touched states.
  auto occupied_after = [&](StateId s) {
    i64 v = static_cast<i64>(counts[s]);
    if (s == c.s1) --v;
    if (s == c.s2) --v;
    if (s == c.o1) ++v;
    if (s == c.o2) ++v;
    return v > 0;
  };
  i64 delta = 0;
  StateId touched[4] = {c.s1, c.s2, c.o1, c.o2};
  std::sort(touched, touched + 4);
  for (int i = 0; i < 4; ++i) {
    if (i > 0 && touched[i] == touched[i - 1]) continue;
    const StateId s = touched[i];
    if (s >= num_ranks) continue;
    const bool before = counts[s] > 0;
    const bool after = occupied_after(s);
    if (before != after) delta += after ? 1 : -1;
  }
  return delta;
}

}  // namespace

AdversarialScheduler::AdversarialScheduler(AdversaryPolicy policy)
    : policy_(policy),
      name_(std::string("adversarial[") + adversary_policy_name(policy) +
            "]") {}

RunResult AdversarialScheduler::run(Protocol& p, Rng& rng,
                                    const RunOptions& opt) const {
  const u64 states = p.num_states();
  const u64 num_ranks = p.num_ranks();

  RunResult r;
  std::vector<Candidate> candidates;
  StateId stubborn_s1 = kNoState, stubborn_s2 = kNoState;

  while (r.interactions < opt.max_interactions) {
    const std::vector<u64>& counts = p.counts();
    candidates.clear();
    u64 total_weight = 0;
    for (StateId s1 = 0; s1 < states; ++s1) {
      if (counts[s1] == 0) continue;
      for (StateId s2 = 0; s2 < states; ++s2) {
        const u64 c2 = counts[s2] - (s1 == s2 ? 1 : 0);
        if (counts[s2] == 0 || c2 == 0) continue;
        const auto [o1, o2] = p.transition(s1, s2);
        if (o1 == s1 && o2 == s2) continue;
        candidates.push_back({s1, s2, o1, o2, counts[s1] * c2});
        total_weight += counts[s1] * c2;
      }
    }
    if (candidates.empty()) break;  // silent

    const Candidate* pick = nullptr;
    switch (policy_) {
      case AdversaryPolicy::kRandomProductive: {
        u64 t = rng.below(total_weight);
        for (const auto& c : candidates) {
          if (t < c.weight) {
            pick = &c;
            break;
          }
          t -= c.weight;
        }
        break;
      }
      case AdversaryPolicy::kMaxLoad: {
        u64 best = 0;
        for (const auto& c : candidates) {
          const u64 load = std::max(counts[c.s1], counts[c.s2]);
          if (load > best) {
            best = load;
            pick = &c;
          }
        }
        break;
      }
      case AdversaryPolicy::kMinRankCoverage: {
        i64 best = 5;  // any candidate changes coverage by at most +-4
        for (const auto& c : candidates) {
          const i64 d = rank_coverage_delta(counts, num_ranks, c);
          if (d < best) {
            best = d;
            pick = &c;
          }
        }
        break;
      }
      case AdversaryPolicy::kStubborn: {
        for (const auto& c : candidates) {
          if (c.s1 == stubborn_s1 && c.s2 == stubborn_s2) {
            pick = &c;
            break;
          }
        }
        if (pick == nullptr) pick = &candidates.front();
        stubborn_s1 = pick->s1;
        stubborn_s2 = pick->s2;
        break;
      }
    }
    PP_ASSERT(pick != nullptr);
    // apply_pair keeps the protocol's counts/Fenwick bookkeeping live the
    // whole run (the retired run_adversarial worked on a local count vector
    // and published once at the end) — same δ, same trajectory, but the
    // observer sees a consistent protocol after every firing.
    p.apply_pair(pick->s1, pick->s2);
    ++r.interactions;
    ++r.productive_steps;
    if (opt.on_change && !opt.on_change(p, r.interactions)) {
      r.aborted = true;
      break;
    }
  }

  return detail::finish_run(p, r,
                            static_cast<double>(r.interactions) /
                                static_cast<double>(p.num_agents()));
}

}  // namespace pp
