#include "schedulers/weighted.hpp"

#include <algorithm>
#include <optional>

#include "common/assert.hpp"

namespace pp {
namespace {

// The dense reference path's mutable per-run state: agent states per
// position plus the sampler over the dense universe of ordered pairs
// (id = i * n + j; the n diagonal slots keep weight 0 forever).
struct DenseState {
  const Protocol& p;
  u64 n;
  std::vector<StateId> state;
  PairSampler pairs;

  DenseState(std::vector<u64> kernel_table, const Protocol& proto,
             std::vector<StateId> placement)
      : p(proto), n(placement.size()), state(std::move(placement)) {
    std::vector<u8> flags(n * n, 0);
    for (u64 i = 0; i < n; ++i) {
      for (u64 j = 0; j < n; ++j) {
        if (i == j) continue;
        flags[i * n + j] =
            pair_is_productive(p, state[i], state[j]) ? 1 : 0;
      }
    }
    pairs.reset(std::move(kernel_table), std::move(flags));
  }

  void refresh(u64 id) {
    pairs.set_productive(id,
                         pair_is_productive(p, state[id / n], state[id % n]));
  }

  /// Re-tests every ordered pair involving position v.
  void refresh_position(u64 v) {
    for (u64 x = 0; x < n; ++x) {
      if (x == v) continue;
      refresh(v * n + x);
      refresh(x * n + v);
    }
  }
};

}  // namespace

WeightedScheduler::WeightedScheduler(WeightKernel kernel, u64 power, u64 n,
                                     Path path)
    : kernel_(kernel), power_(power), n_(n), path_(path) {
  PP_ASSERT_MSG(power >= 1 && power <= 3,
                "weighted scheduler needs kernel power in {1, 2, 3}");
  if (kernel_ == WeightKernel::kTrapDecay) {
    // The state-distance kernel is agent-anonymous: there is no positional
    // DistanceKernel to pin (the sampler is built per run from the
    // protocol's state space) and no dense pair universe to fall back to.
    PP_ASSERT_MSG(path_ != Path::kDense,
                  "the trap-decay kernel has no positional dense reference "
                  "(weights live on states, not positions); tests "
                  "cross-validate it by direct enumeration instead");
    SchedulerSpec spec;
    spec.kind = SchedulerKind::kWeighted;
    spec.kernel = kernel_;
    spec.kernel_power = power_;
    name_ = spec.to_string();
    return;
  }
  if (n_ != 0) {
    PP_ASSERT_MSG(n_ >= 2, "weighted scheduler needs n >= 2");
    // Pin the closed-form kernel for every trial of a sweep (O(n) memory;
    // also runs the 63-bit total check up front, where the caller is).
    // The Θ(n²) dense table is only materialised when the dense path can
    // actually be taken.
    pinned_kernel_ =
        std::make_unique<const DistanceKernel>(distance_kernel(n_));
    // Only an explicitly dense scheduler pre-materialises the Θ(n²) table
    // (and can reject an oversized population here, where the caller is);
    // an auto scheduler that ends up on the dense path for an extra-state
    // protocol builds it per run, and run_dense re-checks the cap.
    if (path_ == Path::kDense) {
      PP_ASSERT_MSG(n_ <= kDenseMaxPopulation,
                    "the dense reference path caps n at 4096 (dense pair "
                    "universe); use the hierarchical path for larger "
                    "populations");
      dense_weights_ = kernel_table(n_);
    }
  }
  SchedulerSpec spec;
  spec.kind = SchedulerKind::kWeighted;
  spec.kernel = kernel;
  spec.kernel_power = power;
  spec.dense_reference = path == Path::kDense;
  name_ = spec.to_string();
}

std::vector<u64> WeightedScheduler::kernel_table(u64 n) const {
  PP_ASSERT_MSG(kernel_ != WeightKernel::kTrapDecay,
                "trap-decay weights are state-distance, not positional");
  std::vector<u64> weights(n * n, 0);
  for (u64 i = 0; i < n; ++i) {
    for (u64 j = 0; j < n; ++j) {
      if (i != j) weights[i * n + j] = pair_weight(n, i, j);
    }
  }
  return weights;
}

u64 WeightedScheduler::pair_weight(u64 n, u64 i, u64 j) const {
  PP_DCHECK(i != j && i < n && j < n);
  u64 base = 1;
  switch (kernel_) {
    case WeightKernel::kUniform:
      base = 1;
      break;
    case WeightKernel::kRingDecay: {
      const u64 gap = i > j ? i - j : j - i;
      base = n / std::min(gap, n - gap);
      break;
    }
    case WeightKernel::kLineDecay:
      base = n / (i > j ? i - j : j - i);
      break;
    case WeightKernel::kTrapDecay:
      PP_ASSERT_MSG(false,
                    "trap-decay weights are state-distance, not positional");
      break;
  }
  u64 w = 1;
  for (u64 k = 0; k < power_; ++k) w *= base;
  return w;
}

DistanceKernel WeightedScheduler::distance_kernel(u64 n) const {
  PP_ASSERT_MSG(kernel_ != WeightKernel::kTrapDecay,
                "trap-decay weights are state-distance, not positional");
  const auto geometry = kernel_ == WeightKernel::kRingDecay
                            ? DistanceKernel::Geometry::kRing
                            : DistanceKernel::Geometry::kLine;
  const u64 distances =
      geometry == DistanceKernel::Geometry::kRing ? n / 2 : n - 1;
  std::vector<u64> decay(distances);
  for (u64 d = 1; d <= distances; ++d) {
    u64 base = kernel_ == WeightKernel::kUniform ? 1 : n / d;
    u64 w = 1;
    for (u64 k = 0; k < power_; ++k) w *= base;
    decay[d - 1] = w;
  }
  return DistanceKernel(geometry, n, std::move(decay));
}

RunResult WeightedScheduler::run(Protocol& p, Rng& rng,
                                 const RunOptions& opt) const {
  const u64 n = p.num_agents();
  PP_ASSERT_MSG(n >= 2, "weighted scheduler needs n >= 2");
  PP_ASSERT_MSG(n_ == 0 || n_ == n,
                "weighted scheduler built for a different population size");
  if (kernel_ == WeightKernel::kTrapDecay) return run_trap(p, rng, opt);
  // kAuto prefers the hierarchical path whenever the grouped sampler can
  // represent the protocol's productive-pair structure — which it can for
  // every library protocol, extra states included; the dense Θ(n²)
  // reference survives for explicit /dense-ref specs and undeclared
  // extra-pair patterns.
  const bool dense =
      path_ == Path::kDense ||
      (path_ == Path::kAuto && !GroupedKernelSampler::supports(p));
  return dense ? run_dense(p, rng, opt) : run_hierarchical(p, rng, opt);
}

RunResult WeightedScheduler::run_dense(Protocol& p, Rng& rng,
                                       const RunOptions& opt) const {
  const u64 n = p.num_agents();
  PP_ASSERT_MSG(n <= kDenseMaxPopulation,
                "the dense reference path caps n at 4096 (dense pair "
                "universe); use the hierarchical path for larger "
                "populations — see schedulers/weighted.hpp");
  std::vector<StateId> placement = p.configuration().to_agent_states();
  rng.shuffle(placement);
  // The placement-independent kernel table is shared by every trial when
  // the population size was pinned at construction (one copy per run, as
  // the sampler consumes it); the unpinned path builds and moves its own.
  std::vector<u64> table =
      !dense_weights_.empty() ? dense_weights_ : kernel_table(n);
  DenseState ds(std::move(table), p, std::move(placement));

  RunResult r;
  // Every kernel weight is >= 1, so zero productive weight on the pair
  // universe is exactly global silence — weighted runs cannot get locally
  // stuck the way a zero/one graph kernel can.
  while (ds.pairs.productive_total() != 0) {
    if (!advance_past_nulls(rng, ds.pairs.productive_probability(),
                            opt.max_interactions, r.interactions)) {
      break;
    }
    const u64 fired = ds.pairs.sample_productive(rng);
    const u64 i = fired / n;
    const u64 j = fired % n;
    const auto [si, sj] = p.apply_pair(ds.state[i], ds.state[j]);
    PP_DCHECK(si != ds.state[i] || sj != ds.state[j]);
    ds.state[i] = si;
    ds.state[j] = sj;
    ds.refresh_position(i);
    ds.refresh_position(j);
    ++r.productive_steps;
    if (opt.on_change && !opt.on_change(p, r.interactions)) {
      r.aborted = true;
      break;
    }
  }
  return detail::finish_run(
      p, r, static_cast<double>(r.interactions) / static_cast<double>(n));
}

RunResult WeightedScheduler::run_hierarchical(Protocol& p, Rng& rng,
                                              const RunOptions& opt) const {
  const u64 n = p.num_agents();
  std::vector<StateId> placement = p.configuration().to_agent_states();
  rng.shuffle(placement);
  // Pinned constructions share one closed-form kernel across every trial
  // (it is immutable, so concurrent runner threads read it freely); the
  // unpinned path builds its own O(n) copy.
  std::optional<DistanceKernel> local;
  const DistanceKernel* kernel = pinned_kernel_.get();
  if (kernel == nullptr) {
    local.emplace(distance_kernel(n));
    kernel = &*local;
  }
  GroupedKernelSampler gs(*kernel, p, std::move(placement));

  RunResult r;
  while (gs.productive_total() != 0) {
    if (!advance_past_nulls(rng, gs.productive_probability(),
                            opt.max_interactions, r.interactions)) {
      break;
    }
    const auto [i, j] = gs.sample_productive(rng);
    gs.fire(p, i, j);
    ++r.productive_steps;
    if (opt.on_change && !opt.on_change(p, r.interactions)) {
      r.aborted = true;
      break;
    }
  }
  return detail::finish_run(
      p, r, static_cast<double>(r.interactions) / static_cast<double>(n));
}

RunResult WeightedScheduler::run_trap(Protocol& p, Rng& rng,
                                      const RunOptions& opt) const {
  const u64 n = p.num_agents();
  // Agents are anonymous under a state-distance kernel, so there is no
  // placement to shuffle: the sampler runs straight off the protocol's
  // count vector.
  TrapKernelSampler ts(p, power_);

  RunResult r;
  while (ts.productive_total() != 0) {
    if (!advance_past_nulls(rng, ts.productive_probability(),
                            opt.max_interactions, r.interactions)) {
      break;
    }
    ts.fire(p, rng);
    ++r.productive_steps;
    if (opt.on_change && !opt.on_change(p, r.interactions)) {
      r.aborted = true;
      break;
    }
  }
  return detail::finish_run(
      p, r, static_cast<double>(r.interactions) / static_cast<double>(n));
}

}  // namespace pp
