#include "schedulers/pair_sampler.hpp"

#include <algorithm>
#include <limits>

#include "common/assert.hpp"
#include "obs/counters.hpp"

namespace pp {

void PairSampler::reset(u64 universe) {
  weight_.reset(universe);
  productive_.reset(universe);
  flag_.assign(universe, 0);
}

void PairSampler::reset(std::vector<u64> weights, std::vector<u8> flags) {
  PP_ASSERT_MSG(weights.size() == flags.size(),
                "pair sampler needs one productivity flag per weight");
  std::vector<u64> masked(weights.size());
  for (u64 i = 0; i < weights.size(); ++i) {
    masked[i] = flags[i] ? weights[i] : 0;
  }
  weight_.assign(std::move(weights));
  productive_.assign(std::move(masked));
  flag_ = std::move(flags);
}

void PairSampler::set_weight(u64 id, u64 w) {
  weight_.set(id, w);
  if (flag_[id]) productive_.set(id, w);
}

void PairSampler::set_productive(u64 id, bool productive) {
  const u8 now = productive ? 1 : 0;
  if (flag_[id] == now) return;
  flag_[id] = now;
  productive_.set(id, now ? weight_.get(id) : 0);
}

DirectedEdgeSampler::DirectedEdgeSampler(const InteractionGraph& g,
                                         const Protocol& p,
                                         std::vector<StateId> states)
    : g_(&g), p_(&p), state_(std::move(states)) {
  PP_ASSERT_MSG(state_.size() == g.num_vertices(),
                "interaction graph size != population size");
  const u64 universe = 2 * g.num_edges();
  std::vector<u8> flags(universe);
  for (u64 d = 0; d < universe; ++d) {
    flags[d] = is_productive(d) ? 1 : 0;
  }
  pairs_.reset(std::vector<u64>(universe, 1), std::move(flags));
}

void DirectedEdgeSampler::fire(Protocol& p, u64 directed) {
  // The flags are computed against the Protocol bound at construction;
  // applying δ through a different instance would silently desync them.
  PP_DCHECK(&p == p_);
  const auto [u, v] = endpoints(directed);
  const auto [su, sv] = p.apply_pair(state_[u], state_[v]);
  PP_DCHECK(su != state_[u] || sv != state_[v]);
  state_[u] = su;
  state_[v] = sv;
  for (const u32 e : g_->incident_edges(u)) {
    refresh(2 * static_cast<u64>(e));
    refresh(2 * static_cast<u64>(e) + 1);
  }
  for (const u32 e : g_->incident_edges(v)) {
    refresh(2 * static_cast<u64>(e));
    refresh(2 * static_cast<u64>(e) + 1);
  }
}

// ---- DistanceKernel -------------------------------------------------------

namespace {

// Running u64 accumulation with a 128-bit shadow; the cap is i64 max, not
// u64 max, because Fenwick point updates travel as signed deltas
// (Fenwick::set) and the productive tree must be able to hold any partial
// sum of kernel weights.
class CheckedSum {
 public:
  void add(u64 v) {
    sum_ += v;
    PP_ASSERT_MSG(
        sum_ <= static_cast<unsigned __int128>(
                    std::numeric_limits<i64>::max()),
        "kernel weight total overflows the sampler's 63-bit range — "
        "reduce n or the kernel power");
  }
  u64 value() const { return static_cast<u64>(sum_); }

 private:
  unsigned __int128 sum_ = 0;
};

}  // namespace

DistanceKernel::DistanceKernel(Geometry g, u64 n, std::vector<u64> decay)
    : geom_(g), n_(n) {
  PP_ASSERT_MSG(n >= 2, "distance kernel needs n >= 2");
  const u64 expected = g == Geometry::kRing ? n / 2 : n - 1;
  PP_ASSERT_MSG(decay.size() == expected,
                "decay profile length must match the geometry "
                "(floor(n/2) on the ring, n-1 on the line)");
  prefix_.resize(decay.size() + 1);
  prefix_[0] = 0;
  CheckedSum prefix_sum;
  for (u64 d = 0; d < decay.size(); ++d) {
    PP_ASSERT_MSG(decay[d] > 0,
                  "kernel weights must be positive at every distance "
                  "(a zero would sever pairs)");
    prefix_sum.add(decay[d]);
    prefix_[d + 1] = prefix_sum.value();
  }
  CheckedSum total;
  if (geom_ == Geometry::kRing) {
    // Every row sees the clockwise arm of floor(n/2) distances plus the
    // counter-clockwise arm of the remaining n-1-floor(n/2); for even n
    // the antipodal partner appears only in the first arm.
    const u64 a = n_ / 2;
    const u64 b = n_ - 1 - a;
    CheckedSum row;
    row.add(prefix_[a]);
    row.add(prefix_[b]);
    ring_row_ = row.value();
    for (u64 i = 0; i < n_; ++i) total.add(ring_row_);
  } else {
    row_prefix_.resize(n_ + 1);
    row_prefix_[0] = 0;
    for (u64 i = 0; i < n_; ++i) {
      total.add(prefix_[i]);
      total.add(prefix_[n_ - 1 - i]);
      row_prefix_[i + 1] = total.value();
    }
  }
  total_ = total.value();
}

u64 DistanceKernel::weight(u64 i, u64 j) const {
  PP_DCHECK(i != j && i < n_ && j < n_);
  const u64 gap = i > j ? i - j : j - i;
  const u64 d = geom_ == Geometry::kRing ? std::min(gap, n_ - gap) : gap;
  return prefix_[d] - prefix_[d - 1];
}

u64 DistanceKernel::row_total(u64 i) const {
  PP_DCHECK(i < n_);
  if (geom_ == Geometry::kRing) return ring_row_;
  return prefix_[i] + prefix_[n_ - 1 - i];
}

u64 DistanceKernel::find_distance(u64 target) const {
  // Smallest d >= 1 with prefix_[d] > target; the profile is strictly
  // increasing so upper_bound lands exactly.
  const auto it = std::upper_bound(prefix_.begin(), prefix_.end(), target);
  PP_DCHECK(it != prefix_.end());
  return static_cast<u64>(it - prefix_.begin());
}

u64 DistanceKernel::sample_partner(Rng& rng, u64 i) const {
  const u64 target = rng.below(row_total(i));
  if (geom_ == Geometry::kRing) {
    const u64 a = n_ / 2;
    if (target < prefix_[a]) return (i + find_distance(target)) % n_;
    return (i + n_ - find_distance(target - prefix_[a])) % n_;
  }
  if (target < prefix_[i]) return i - find_distance(target);
  return i + find_distance(target - prefix_[i]);
}

std::pair<u64, u64> DistanceKernel::sample_pair(Rng& rng) const {
  u64 i;
  if (geom_ == Geometry::kRing) {
    i = rng.below(n_);  // all ring rows carry the same marginal
  } else {
    const u64 target = rng.below(total_);
    const auto it = std::upper_bound(row_prefix_.begin(), row_prefix_.end(),
                                     target);
    i = static_cast<u64>(it - row_prefix_.begin()) - 1;
  }
  return {i, sample_partner(rng, i)};
}

// ---- GroupedKernelSampler -------------------------------------------------

GroupedKernelSampler::GroupedKernelSampler(const DistanceKernel& kernel,
                                           const Protocol& p,
                                           std::vector<StateId> placement)
    : kernel_(&kernel), p_(&p), state_(std::move(placement)) {
  const u64 n = state_.size();
  PP_ASSERT_MSG(n == kernel.n(), "kernel size != population size");
  PP_ASSERT_MSG(p.num_extra_states() == 0,
                "the grouped kernel sampler needs a same-state-productive "
                "protocol (no extra states); extra-state protocols take "
                "the dense reference path");
  group_.resize(p.num_states());
  slot_.resize(n);
  for (u64 a = 0; a < n; ++a) {
    std::vector<u32>& g = group_[state_[a]];
    slot_[a] = static_cast<u32>(g.size());
    g.push_back(static_cast<u32>(a));
  }
  // Bulk-build the per-state within-group masses: every same-state rule of
  // an extra-state-free protocol changes the configuration, so a state's
  // productive mass IS its ordered within-group kernel mass.
  std::vector<u64> mass(p.num_states(), 0);
  for (u64 s = 0; s < group_.size(); ++s) {
    const std::vector<u32>& g = group_[s];
    u64 m = 0;
    for (u64 x = 0; x < g.size(); ++x) {
      for (u64 y = x + 1; y < g.size(); ++y) {
        m += 2 * kernel_->weight(g[x], g[y]);
      }
    }
    mass[s] = m;
  }
  productive_.assign(std::move(mass));
}

u64 GroupedKernelSampler::member_mass(u64 a,
                                      const std::vector<u32>& group) const {
  PP_OBS_ADD(kGroupTouches, group.size());
  u64 m = 0;
  for (const u32 x : group) {
    if (x != a) m += 2 * kernel_->weight(a, x);
  }
  return m;
}

std::pair<u64, u64> GroupedKernelSampler::sample_productive(Rng& rng) const {
  PP_DCHECK(productive_.total() > 0);
  const StateId s =
      static_cast<StateId>(productive_.find(rng.below(productive_.total())));
  const std::vector<u32>& g = group_[s];
  PP_OBS_ADD(kGroupTouches, g.size());
  PP_OBS_SKETCH(kGroupSize, g.size());
  u64 target = rng.below(productive_.get(s));
  // Resolve the pair inside the group: the stored mass is exactly
  // Σ_{x<y} 2 w(x, y), so the scan must land.  Each unordered pair covers
  // its two orientations contiguously (forward first).
  for (u64 x = 0; x < g.size(); ++x) {
    for (u64 y = x + 1; y < g.size(); ++y) {
      const u64 w = kernel_->weight(g[x], g[y]);
      if (target < 2 * w) {
        return target < w ? std::make_pair<u64, u64>(g[x], g[y])
                          : std::make_pair<u64, u64>(g[y], g[x]);
      }
      target -= 2 * w;
    }
  }
  PP_ASSERT_MSG(false, "grouped sampler mass out of sync with its group");
  return {0, 0};
}

void GroupedKernelSampler::move_agent(u64 a, StateId from, StateId to) {
  std::vector<u32>& f = group_[from];
  const u32 idx = slot_[a];
  const u32 moved = f.back();
  f[idx] = moved;
  slot_[moved] = idx;
  f.pop_back();
  productive_.set(from, productive_.get(from) - member_mass(a, f));
  std::vector<u32>& t = group_[to];
  productive_.set(to, productive_.get(to) + member_mass(a, t));
  slot_[a] = static_cast<u32>(t.size());
  t.push_back(static_cast<u32>(a));
  state_[a] = to;
}

void GroupedKernelSampler::fire(Protocol& p, u64 i, u64 j) {
  PP_DCHECK(&p == p_);
  const StateId si = state_[i];
  const StateId sj = state_[j];
  const auto [ni, nj] = p.apply_pair(si, sj);
  PP_DCHECK(ni != si || nj != sj);
  if (ni != si) move_agent(i, si, ni);
  if (nj != sj) move_agent(j, sj, nj);
}

// ---- DirectedPairRoster ---------------------------------------------------

DirectedPairRoster::DirectedPairRoster(u64 initial_capacity) {
  capacity_ = std::max<u64>(initial_capacity, 4);
  pairs_.reset(2 * capacity_);
}

void DirectedPairRoster::grow(u64 new_capacity) {
  PP_OBS_INC(kRosterGrows);
  std::vector<u64> weights(2 * new_capacity, 0);
  std::vector<u8> flags(2 * new_capacity, 0);
  for (u64 d = 0; d < 2 * size_; ++d) {
    weights[d] = pairs_.weight(d);
    flags[d] = pairs_.productive(d) ? 1 : 0;
  }
  capacity_ = new_capacity;
  pairs_.reset(std::move(weights), std::move(flags));
}

u64 DirectedPairRoster::add(bool fwd_productive, bool rev_productive) {
  if (size_ == capacity_) grow(2 * capacity_);
  const u64 e = size_++;
  pairs_.set_productive(2 * e, fwd_productive);
  pairs_.set_productive(2 * e + 1, rev_productive);
  pairs_.set_weight(2 * e, 1);
  pairs_.set_weight(2 * e + 1, 1);
  return e;
}

u64 DirectedPairRoster::remove(u64 e) {
  PP_DCHECK(e < size_);
  const u64 back = size_ - 1;
  if (e != back) {
    // Swap-fill the hole with the back entry's slots.
    pairs_.set_productive(2 * e, pairs_.productive(2 * back));
    pairs_.set_productive(2 * e + 1, pairs_.productive(2 * back + 1));
  }
  pairs_.set_weight(2 * back, 0);
  pairs_.set_weight(2 * back + 1, 0);
  pairs_.set_productive(2 * back, false);
  pairs_.set_productive(2 * back + 1, false);
  size_ = back;
  return e != back ? back : kNoEntry;
}

}  // namespace pp
