#include "schedulers/pair_sampler.hpp"

#include <algorithm>
#include <limits>

#include "common/assert.hpp"
#include "obs/counters.hpp"

namespace pp {

void PairSampler::reset(u64 universe) {
  weight_.reset(universe);
  productive_.reset(universe);
  flag_.assign(universe, 0);
}

void PairSampler::reset(std::vector<u64> weights, std::vector<u8> flags) {
  PP_ASSERT_MSG(weights.size() == flags.size(),
                "pair sampler needs one productivity flag per weight");
  std::vector<u64> masked(weights.size());
  for (u64 i = 0; i < weights.size(); ++i) {
    masked[i] = flags[i] ? weights[i] : 0;
  }
  weight_.assign(std::move(weights));
  productive_.assign(std::move(masked));
  flag_ = std::move(flags);
}

void PairSampler::set_weight(u64 id, u64 w) {
  weight_.set(id, w);
  if (flag_[id]) productive_.set(id, w);
}

void PairSampler::set_productive(u64 id, bool productive) {
  const u8 now = productive ? 1 : 0;
  if (flag_[id] == now) return;
  flag_[id] = now;
  productive_.set(id, now ? weight_.get(id) : 0);
}

DirectedEdgeSampler::DirectedEdgeSampler(const InteractionGraph& g,
                                         const Protocol& p,
                                         std::vector<StateId> states)
    : g_(&g), p_(&p), state_(std::move(states)) {
  PP_ASSERT_MSG(state_.size() == g.num_vertices(),
                "interaction graph size != population size");
  const u64 universe = 2 * g.num_edges();
  std::vector<u8> flags(universe);
  for (u64 d = 0; d < universe; ++d) {
    flags[d] = is_productive(d) ? 1 : 0;
  }
  pairs_.reset(std::vector<u64>(universe, 1), std::move(flags));
}

void DirectedEdgeSampler::fire(Protocol& p, u64 directed) {
  // The flags are computed against the Protocol bound at construction;
  // applying δ through a different instance would silently desync them.
  PP_DCHECK(&p == p_);
  const auto [u, v] = endpoints(directed);
  const auto [su, sv] = p.apply_pair(state_[u], state_[v]);
  PP_DCHECK(su != state_[u] || sv != state_[v]);
  state_[u] = su;
  state_[v] = sv;
  for (const u32 e : g_->incident_edges(u)) {
    refresh(2 * static_cast<u64>(e));
    refresh(2 * static_cast<u64>(e) + 1);
  }
  for (const u32 e : g_->incident_edges(v)) {
    refresh(2 * static_cast<u64>(e));
    refresh(2 * static_cast<u64>(e) + 1);
  }
}

// ---- DistanceKernel -------------------------------------------------------

namespace {

// Running u64 accumulation with a 128-bit shadow; the cap is i64 max, not
// u64 max, because Fenwick point updates travel as signed deltas
// (Fenwick::set) and the productive tree must be able to hold any partial
// sum of kernel weights.
class CheckedSum {
 public:
  void add(u64 v) {
    sum_ += v;
    PP_ASSERT_MSG(
        sum_ <= static_cast<unsigned __int128>(
                    std::numeric_limits<i64>::max()),
        "kernel weight total overflows the sampler's 63-bit range — "
        "reduce n or the kernel power");
  }
  u64 value() const { return static_cast<u64>(sum_); }

 private:
  unsigned __int128 sum_ = 0;
};

}  // namespace

DistanceKernel::DistanceKernel(Geometry g, u64 n, std::vector<u64> decay)
    : geom_(g), n_(n) {
  PP_ASSERT_MSG(n >= 2, "distance kernel needs n >= 2");
  const u64 expected = g == Geometry::kRing ? n / 2 : n - 1;
  PP_ASSERT_MSG(decay.size() == expected,
                "decay profile length must match the geometry "
                "(floor(n/2) on the ring, n-1 on the line)");
  prefix_.resize(decay.size() + 1);
  prefix_[0] = 0;
  CheckedSum prefix_sum;
  for (u64 d = 0; d < decay.size(); ++d) {
    PP_ASSERT_MSG(decay[d] > 0,
                  "kernel weights must be positive at every distance "
                  "(a zero would sever pairs)");
    prefix_sum.add(decay[d]);
    prefix_[d + 1] = prefix_sum.value();
  }
  CheckedSum total;
  if (geom_ == Geometry::kRing) {
    // Every row sees the clockwise arm of floor(n/2) distances plus the
    // counter-clockwise arm of the remaining n-1-floor(n/2); for even n
    // the antipodal partner appears only in the first arm.
    const u64 a = n_ / 2;
    const u64 b = n_ - 1 - a;
    CheckedSum row;
    row.add(prefix_[a]);
    row.add(prefix_[b]);
    ring_row_ = row.value();
    for (u64 i = 0; i < n_; ++i) total.add(ring_row_);
  } else {
    row_prefix_.resize(n_ + 1);
    row_prefix_[0] = 0;
    for (u64 i = 0; i < n_; ++i) {
      total.add(prefix_[i]);
      total.add(prefix_[n_ - 1 - i]);
      row_prefix_[i + 1] = total.value();
    }
  }
  total_ = total.value();
}

u64 DistanceKernel::weight(u64 i, u64 j) const {
  PP_DCHECK(i != j && i < n_ && j < n_);
  const u64 gap = i > j ? i - j : j - i;
  const u64 d = geom_ == Geometry::kRing ? std::min(gap, n_ - gap) : gap;
  return prefix_[d] - prefix_[d - 1];
}

u64 DistanceKernel::row_total(u64 i) const {
  PP_DCHECK(i < n_);
  if (geom_ == Geometry::kRing) return ring_row_;
  return prefix_[i] + prefix_[n_ - 1 - i];
}

u64 DistanceKernel::find_distance(u64 target) const {
  // Smallest d >= 1 with prefix_[d] > target; the profile is strictly
  // increasing so upper_bound lands exactly.
  const auto it = std::upper_bound(prefix_.begin(), prefix_.end(), target);
  PP_DCHECK(it != prefix_.end());
  return static_cast<u64>(it - prefix_.begin());
}

u64 DistanceKernel::partner_at(u64 i, u64 target) const {
  PP_DCHECK(i < n_ && target < row_total(i));
  if (geom_ == Geometry::kRing) {
    const u64 a = n_ / 2;
    if (target < prefix_[a]) return (i + find_distance(target)) % n_;
    return (i + n_ - find_distance(target - prefix_[a])) % n_;
  }
  if (target < prefix_[i]) return i - find_distance(target);
  return i + find_distance(target - prefix_[i]);
}

u64 DistanceKernel::sample_partner(Rng& rng, u64 i) const {
  return partner_at(i, rng.below(row_total(i)));
}

std::pair<u64, u64> DistanceKernel::sample_pair(Rng& rng) const {
  u64 i;
  if (geom_ == Geometry::kRing) {
    i = rng.below(n_);  // all ring rows carry the same marginal
  } else {
    const u64 target = rng.below(total_);
    const auto it = std::upper_bound(row_prefix_.begin(), row_prefix_.end(),
                                     target);
    i = static_cast<u64>(it - row_prefix_.begin()) - 1;
  }
  return {i, sample_partner(rng, i)};
}

// ---- GroupedKernelSampler -------------------------------------------------

bool GroupedKernelSampler::supports(const Protocol& p) {
  if (p.num_extra_states() == 0) return true;
  const Protocol::ExtraPairClasses c = p.extra_pair_classes();
  // The row-total collapse needs each productive pair involving an extra
  // agent to be counted by exactly one designated extra endpoint: both
  // cross orientations productive would double-count (extra, rank) pairs,
  // and a lone cross orientation without (extra, extra) pairs (or vice
  // versa) is not a sum of full kernel rows.
  if (c.extra_rank && c.rank_extra) return false;
  return c.extra_extra == (c.extra_rank || c.rank_extra);
}

void GroupedKernelSampler::verify_classes() const {
  // Bounded capability cross-check, in the style of CountEngine's
  // is_count_determined() probe: a wrong ExtraPairClasses declaration (or
  // a backbone violation) fails fast here instead of skewing the sampled
  // pair distribution.
  const Protocol& p = *p_;
  const u64 num_extra = p.num_extra_states();
  const u64 rank_probe = std::min<u64>(num_ranks_, 64);
  const u64 extra_probe = std::min<u64>(num_extra, 16);
  for (u64 s = 0; s < rank_probe; ++s) {
    const StateId rs = static_cast<StateId>(s);
    PP_ASSERT_MSG(pair_is_productive(p, rs, rs),
                  "grouped sampler backbone violated: a same-state rank "
                  "pair is null");
    const StateId rt = static_cast<StateId>((s + 1) % num_ranks_);
    PP_ASSERT_MSG(rs == rt || !pair_is_productive(p, rs, rt),
                  "grouped sampler backbone violated: a distinct-rank "
                  "pair is productive");
  }
  for (u64 a = 0; a < extra_probe; ++a) {
    const StateId ea = static_cast<StateId>(num_ranks_ + a);
    for (u64 b = 0; b < extra_probe; ++b) {
      const StateId eb = static_cast<StateId>(num_ranks_ + b);
      PP_ASSERT_MSG(pair_is_productive(p, ea, eb) == classes_.extra_extra,
                    "declared ExtraPairClasses.extra_extra contradicts "
                    "transition()");
    }
    for (u64 s = 0; s < rank_probe; ++s) {
      const StateId rs = static_cast<StateId>(s);
      PP_ASSERT_MSG(pair_is_productive(p, ea, rs) == classes_.extra_rank,
                    "declared ExtraPairClasses.extra_rank contradicts "
                    "transition()");
      PP_ASSERT_MSG(pair_is_productive(p, rs, ea) == classes_.rank_extra,
                    "declared ExtraPairClasses.rank_extra contradicts "
                    "transition()");
    }
  }
}

GroupedKernelSampler::GroupedKernelSampler(const DistanceKernel& kernel,
                                           const Protocol& p,
                                           std::vector<StateId> placement)
    : kernel_(&kernel),
      p_(&p),
      classes_(p.extra_pair_classes()),
      num_ranks_(p.num_ranks()),
      state_(std::move(placement)) {
  const u64 n = state_.size();
  PP_ASSERT_MSG(n == kernel.n(), "kernel size != population size");
  PP_ASSERT_MSG(supports(p),
                "the grouped kernel sampler needs an extra-state-free "
                "protocol or a declared ExtraPairClasses pattern whose "
                "extra mass is a sum of full kernel rows; other patterns "
                "take the dense reference path");
  has_extra_window_ = p.num_extra_states() > 0 &&
                      (classes_.extra_extra || classes_.extra_rank ||
                       classes_.rank_extra);
  verify_classes();
  group_.resize(p.num_states());
  slot_.resize(n);
  for (u64 a = 0; a < n; ++a) {
    std::vector<u32>& g = group_[state_[a]];
    slot_[a] = static_cast<u32>(g.size());
    g.push_back(static_cast<u32>(a));
  }
  // Bulk-build the per-rank-state within-group masses: every same-state
  // rank rule changes the configuration, so a rank state's productive
  // mass IS its ordered within-group kernel mass.  Extra-state pairs are
  // carried by the per-position row-total window instead (and inert
  // extras carry no mass at all).
  std::vector<u64> mass(p.num_states(), 0);
  for (u64 s = 0; s < num_ranks_; ++s) {
    const std::vector<u32>& g = group_[s];
    u64 m = 0;
    for (u64 x = 0; x < g.size(); ++x) {
      for (u64 y = x + 1; y < g.size(); ++y) {
        m += 2 * kernel_->weight(g[x], g[y]);
      }
    }
    mass[s] = m;
  }
  productive_.assign(std::move(mass));
  if (has_extra_window_) {
    std::vector<u64> rows(n, 0);
    for (u64 a = 0; a < n; ++a) {
      if (state_[a] >= num_ranks_) rows[a] = kernel_->row_total(a);
    }
    extra_mass_.assign(std::move(rows));
  }
}

u64 GroupedKernelSampler::member_mass(u64 a,
                                      const std::vector<u32>& group) const {
  PP_OBS_ADD(kGroupTouches, group.size());
  u64 m = 0;
  for (const u32 x : group) {
    if (x != a) m += 2 * kernel_->weight(a, x);
  }
  return m;
}

std::pair<u64, u64> GroupedKernelSampler::sample_productive(Rng& rng) const {
  const u64 rank_mass = productive_.total();
  PP_DCHECK(rank_mass + extra_total() > 0);
  // One combined draw over both halves; when no extra window is active
  // this consumes exactly the rank-only draw, so extra-state-free
  // trajectories (and their pinned literals) are unchanged.
  const u64 pick = rng.below(rank_mass + extra_total());
  if (pick >= rank_mass) {
    // Extra-class window: locate the extra-state agent owning the slot,
    // then invert its kernel row in place — any partner forms a
    // productive pair, oriented by the declared classes (rank_extra:
    // the partner initiates into the extra responder; otherwise the
    // extra agent initiates).  No second draw is needed: the slot
    // offset within the row is already row-CDF-uniform.
    const u64 u = pick - rank_mass;
    const u64 b = extra_mass_.find(u);
    const u64 partner = kernel_->partner_at(b, u - extra_mass_.prefix(b));
    return classes_.rank_extra ? std::make_pair(partner, b)
                               : std::make_pair(b, partner);
  }
  const StateId s = static_cast<StateId>(productive_.find(pick));
  const std::vector<u32>& g = group_[s];
  PP_OBS_ADD(kGroupTouches, g.size());
  PP_OBS_SKETCH(kGroupSize, g.size());
  u64 target = rng.below(productive_.get(s));
  // Resolve the pair inside the group: the stored mass is exactly
  // Σ_{x<y} 2 w(x, y), so the scan must land.  Each unordered pair covers
  // its two orientations contiguously (forward first).
  for (u64 x = 0; x < g.size(); ++x) {
    for (u64 y = x + 1; y < g.size(); ++y) {
      const u64 w = kernel_->weight(g[x], g[y]);
      if (target < 2 * w) {
        return target < w ? std::make_pair<u64, u64>(g[x], g[y])
                          : std::make_pair<u64, u64>(g[y], g[x]);
      }
      target -= 2 * w;
    }
  }
  PP_ASSERT_MSG(false, "grouped sampler mass out of sync with its group");
  return {0, 0};
}

void GroupedKernelSampler::move_agent(u64 a, StateId from, StateId to) {
  std::vector<u32>& f = group_[from];
  const u32 idx = slot_[a];
  const u32 moved = f.back();
  f[idx] = moved;
  slot_[moved] = idx;
  f.pop_back();
  if (from < num_ranks_) {
    productive_.set(from, productive_.get(from) - member_mass(a, f));
  }
  std::vector<u32>& t = group_[to];
  if (to < num_ranks_) {
    productive_.set(to, productive_.get(to) + member_mass(a, t));
  }
  slot_[a] = static_cast<u32>(t.size());
  t.push_back(static_cast<u32>(a));
  state_[a] = to;
  const bool was_extra = from >= num_ranks_;
  const bool is_extra = to >= num_ranks_;
  if (has_extra_window_ && was_extra != is_extra) {
    extra_mass_.set(a, is_extra ? kernel_->row_total(a) : 0);
  }
}

void GroupedKernelSampler::fire(Protocol& p, u64 i, u64 j) {
  PP_DCHECK(&p == p_);
  const StateId si = state_[i];
  const StateId sj = state_[j];
  const auto [ni, nj] = p.apply_pair(si, sj);
  PP_DCHECK(ni != si || nj != sj);
  if (ni != si) move_agent(i, si, ni);
  if (nj != sj) move_agent(j, sj, nj);
}

// ---- TrapKernelSampler ----------------------------------------------------

TrapKernelSampler::TrapKernelSampler(const Protocol& p, u64 power)
    : p_(&p),
      classes_(p.extra_pair_classes()),
      num_ranks_(p.num_ranks()),
      n_(p.num_agents()),
      layout_(p.num_states()) {
  PP_ASSERT_MSG(supports(p),
                "the trap kernel sampler rides the same ExtraPairClasses "
                "patterns as the grouped sampler");
  PP_ASSERT_MSG(power >= 1 && power <= 3,
                "trap-decay kernel power must be in 1..3");
  const u64 traps = layout_.num_traps();
  kval_.resize(traps / 2 + 1);
  for (u64 d = 0; d < kval_.size(); ++d) {
    const u64 base = traps / std::max<u64>(d, 1);
    u64 v = 1;
    for (u64 i = 0; i < power; ++i) v *= base;
    kval_[d] = v;
  }
  k1_ = kval_[0];
  // Every aggregate below is bounded by n² κ_max = n² κ(0); check once at
  // construction that it fits the sampler's 63-bit range — the principled
  // replacement for a blanket population cap.
  PP_ASSERT_MSG(
      static_cast<unsigned __int128>(n_) * n_ * k1_ <=
          static_cast<unsigned __int128>(std::numeric_limits<i64>::max()),
      "trap kernel weight total overflows the sampler's 63-bit range — "
      "reduce n or the kernel power");
  counts_ = p.counts();
  trap_count_.assign(traps, 0);
  trap_extra_.assign(traps, 0);
  for (u64 s = 0; s < counts_.size(); ++s) {
    trap_count_[layout_.trap_of(static_cast<StateId>(s))] += counts_[s];
    if (s >= num_ranks_) {
      trap_extra_[layout_.trap_of(static_cast<StateId>(s))] += counts_[s];
      x_extra_ += counts_[s];
    }
  }
  row_.assign(traps, 0);
  extra_row_.assign(traps, 0);
  for (u64 a = 0; a < traps; ++a) {
    u64 r = 0;
    u64 re = 0;
    for (u64 b = 0; b < traps; ++b) {
      r += trap_count_[b] * kval(a, b);
      re += trap_extra_[b] * kval(a, b);
    }
    row_[a] = r;
    extra_row_[a] = re;
  }
  for (u64 a = 0; a < traps; ++a) {
    q_ += trap_count_[a] * row_[a];
    ser_ += trap_extra_[a] * row_[a];
  }
  std::vector<u64> diag(num_ranks_, 0);
  for (u64 s = 0; s < num_ranks_; ++s) {
    const u64 c = counts_[s];
    diag[s] = c < 2 ? 0 : c * (c - 1);
  }
  rank_diag_.assign(std::move(diag));
}

u64 TrapKernelSampler::weight_total() const {
  // Q counts every ordered (agent, agent) pair including the n self
  // pairs, each of which weighs exactly κ at distance 0.
  return q_ - n_ * k1_;
}

u64 TrapKernelSampler::productive_total() const {
  u64 t = k1_ * rank_diag_.total();
  if (classes_.extra_extra || classes_.extra_rank || classes_.rank_extra) {
    // Designated-endpoint collapse (same as the grouped sampler): each
    // productive extra pair is counted once via its extra endpoint's row,
    // minus the self pair every extra agent's row includes.
    t += ser_ - k1_ * x_extra_;
  }
  return t;
}

u64 TrapKernelSampler::kappa(StateId s, StateId t) const {
  return kval(layout_.trap_of(s), layout_.trap_of(t));
}

void TrapKernelSampler::apply_delta(StateId s, i64 delta) {
  PP_DCHECK(delta == 1 || delta == -1);
  const bool add = delta > 0;
  const u64 star = layout_.trap_of(s);
  const u64 traps = layout_.num_traps();
  // ΔQ = 2δ R_old[A*] + κ(0); on removal add κ(0) first — Q_new ≥ 0
  // guarantees the subtraction cannot underflow.
  if (add) {
    q_ += 2 * row_[star] + k1_;
  } else {
    q_ = q_ + k1_ - 2 * row_[star];
  }
  // SER's R-dependence: Σ_B E_B ΔR[B] = δ RE_old[A*].  On removal
  // SER ≥ RE[A*] termwise (trap A* still holds the departing agent, so
  // R[B] ≥ κ(B, A*) for every B).
  if (add) {
    ser_ += extra_row_[star];
  } else {
    ser_ -= extra_row_[star];
  }
  for (u64 b = 0; b < traps; ++b) {
    if (add) {
      row_[b] += kval(b, star);
    } else {
      row_[b] -= kval(b, star);
    }
  }
  counts_[s] = add ? counts_[s] + 1 : counts_[s] - 1;
  trap_count_[star] = add ? trap_count_[star] + 1 : trap_count_[star] - 1;
  if (s < num_ranks_) {
    const u64 c = counts_[s];
    rank_diag_.set(s, c < 2 ? 0 : c * (c - 1));
    return;
  }
  x_extra_ = add ? x_extra_ + 1 : x_extra_ - 1;
  trap_extra_[star] = add ? trap_extra_[star] + 1 : trap_extra_[star] - 1;
  for (u64 b = 0; b < traps; ++b) {
    if (add) {
      extra_row_[b] += kval(b, star);
    } else {
      extra_row_[b] -= kval(b, star);
    }
  }
  // SER's E-dependence, with R already updated: δ R_new[A*].  On removal
  // the agent still counted in E_old, so SER ≥ R_new[A*] here.
  if (add) {
    ser_ += row_[star];
  } else {
    ser_ -= row_[star];
  }
}

void TrapKernelSampler::fire(Protocol& p, Rng& rng) {
  PP_DCHECK(&p == p_);
  const u64 rank_mass = k1_ * rank_diag_.total();
  const u64 total = productive_total();
  PP_DCHECK(total > 0);
  const u64 pick = rng.below(total);
  StateId si;
  StateId sr;
  if (pick < rank_mass) {
    // Every same-state rank pair weighs exactly κ(0), so the diagonal
    // Fenwick of ordered pair counts c(c-1) resolves the draw directly.
    si = sr = static_cast<StateId>(rank_diag_.find(pick / k1_));
  } else {
    // Extra window.  First the extra *state* holding the designated
    // endpoint: each of its c_s agents carries mass R[trap(s)] - κ(0)
    // (its full row minus the self pair).
    u64 u = pick - rank_mass;
    StateId b = kNoState;
    for (u64 s = num_ranks_; s < counts_.size(); ++s) {
      const u64 mass =
          counts_[s] * (row_[layout_.trap_of(static_cast<StateId>(s))] - k1_);
      if (u < mass) {
        b = static_cast<StateId>(s);
        break;
      }
      u -= mass;
    }
    PP_ASSERT_MSG(b != kNoState,
                  "trap sampler extra mass out of sync with its counts");
    const u64 trap_b = layout_.trap_of(b);
    // Agents in state b are interchangeable; the row offset alone picks
    // the partner.  Scan traps (κ is constant within a trap), then the
    // trap's contiguous states, excluding the endpoint agent itself.
    u64 rem = u % (row_[trap_b] - k1_);
    StateId partner = kNoState;
    for (u64 a = 0; a < layout_.num_traps(); ++a) {
      const u64 kv = kval(trap_b, a);
      const u64 agents = trap_count_[a] - (a == trap_b ? u64{1} : u64{0});
      const u64 mass = kv * agents;
      if (rem >= mass) {
        rem -= mass;
        continue;
      }
      u64 idx = rem / kv;
      for (u64 v = layout_.trap_offset(a);; ++v) {
        const u64 c =
            counts_[v] - (static_cast<StateId>(v) == b ? u64{1} : u64{0});
        if (idx < c) {
          partner = static_cast<StateId>(v);
          break;
        }
        idx -= c;
      }
      break;
    }
    PP_ASSERT_MSG(partner != kNoState,
                  "trap sampler row mass out of sync with its traps");
    if (classes_.rank_extra) {
      si = partner;
      sr = b;
    } else {
      si = b;
      sr = partner;
    }
  }
  const auto [a1, a2] = p.apply_pair(si, sr);
  PP_DCHECK(a1 != si || a2 != sr);
  if (a1 != si) {
    apply_delta(si, -1);
    apply_delta(a1, +1);
  }
  if (a2 != sr) {
    apply_delta(sr, -1);
    apply_delta(a2, +1);
  }
}

// ---- DirectedPairRoster ---------------------------------------------------

DirectedPairRoster::DirectedPairRoster(u64 initial_capacity) {
  capacity_ = std::max<u64>(initial_capacity, 4);
  pairs_.reset(2 * capacity_);
}

void DirectedPairRoster::grow(u64 new_capacity) {
  PP_OBS_INC(kRosterGrows);
  std::vector<u64> weights(2 * new_capacity, 0);
  std::vector<u8> flags(2 * new_capacity, 0);
  for (u64 d = 0; d < 2 * size_; ++d) {
    weights[d] = pairs_.weight(d);
    flags[d] = pairs_.productive(d) ? 1 : 0;
  }
  capacity_ = new_capacity;
  pairs_.reset(std::move(weights), std::move(flags));
}

u64 DirectedPairRoster::add(bool fwd_productive, bool rev_productive) {
  if (size_ == capacity_) grow(2 * capacity_);
  const u64 e = size_++;
  pairs_.set_productive(2 * e, fwd_productive);
  pairs_.set_productive(2 * e + 1, rev_productive);
  pairs_.set_weight(2 * e, 1);
  pairs_.set_weight(2 * e + 1, 1);
  return e;
}

u64 DirectedPairRoster::remove(u64 e) {
  PP_DCHECK(e < size_);
  const u64 back = size_ - 1;
  if (e != back) {
    // Swap-fill the hole with the back entry's slots.
    pairs_.set_productive(2 * e, pairs_.productive(2 * back));
    pairs_.set_productive(2 * e + 1, pairs_.productive(2 * back + 1));
  }
  pairs_.set_weight(2 * back, 0);
  pairs_.set_weight(2 * back + 1, 0);
  pairs_.set_productive(2 * back, false);
  pairs_.set_productive(2 * back + 1, false);
  size_ = back;
  return e != back ? back : kNoEntry;
}

}  // namespace pp
