#include "schedulers/pair_sampler.hpp"

#include "common/assert.hpp"

namespace pp {

void PairSampler::reset(u64 universe) {
  weight_.reset(universe);
  productive_.reset(universe);
  flag_.assign(universe, 0);
}

void PairSampler::reset(std::vector<u64> weights, std::vector<u8> flags) {
  PP_ASSERT_MSG(weights.size() == flags.size(),
                "pair sampler needs one productivity flag per weight");
  std::vector<u64> masked(weights.size());
  for (u64 i = 0; i < weights.size(); ++i) {
    masked[i] = flags[i] ? weights[i] : 0;
  }
  weight_.assign(std::move(weights));
  productive_.assign(std::move(masked));
  flag_ = std::move(flags);
}

void PairSampler::set_weight(u64 id, u64 w) {
  weight_.set(id, w);
  if (flag_[id]) productive_.set(id, w);
}

void PairSampler::set_productive(u64 id, bool productive) {
  const u8 now = productive ? 1 : 0;
  if (flag_[id] == now) return;
  flag_[id] = now;
  productive_.set(id, now ? weight_.get(id) : 0);
}

DirectedEdgeSampler::DirectedEdgeSampler(const InteractionGraph& g,
                                         const Protocol& p,
                                         std::vector<StateId> states)
    : g_(&g), p_(&p), state_(std::move(states)) {
  PP_ASSERT_MSG(state_.size() == g.num_vertices(),
                "interaction graph size != population size");
  const u64 universe = 2 * g.num_edges();
  std::vector<u8> flags(universe);
  for (u64 d = 0; d < universe; ++d) {
    flags[d] = is_productive(d) ? 1 : 0;
  }
  pairs_.reset(std::vector<u64>(universe, 1), std::move(flags));
}

void DirectedEdgeSampler::fire(Protocol& p, u64 directed) {
  // The flags are computed against the Protocol bound at construction;
  // applying δ through a different instance would silently desync them.
  PP_DCHECK(&p == p_);
  const auto [u, v] = endpoints(directed);
  const auto [su, sv] = p.apply_pair(state_[u], state_[v]);
  PP_DCHECK(su != state_[u] || sv != state_[v]);
  state_[u] = su;
  state_[v] = sv;
  for (const u32 e : g_->incident_edges(u)) {
    refresh(2 * static_cast<u64>(e));
    refresh(2 * static_cast<u64>(e) + 1);
  }
  for (const u32 e : g_->incident_edges(v)) {
    refresh(2 * static_cast<u64>(e));
    refresh(2 * static_cast<u64>(e) + 1);
  }
}

}  // namespace pp
