// Small POSIX file primitives shared by the artifact writers and the
// sharded experiment service (src/service/).
//
// Two disciplines matter once several *processes* touch the same
// directory (the service's worker shards, or two bench invocations
// pointed at one CSV dir):
//
//  * append_line(): one O_APPEND open + ONE write(2) per record.  POSIX
//    guarantees the kernel applies each such write at the current end of
//    file atomically, so concurrent appenders can interleave *records*
//    but never interleave *bytes within a record* — the property the
//    BENCH/manifest JSON-lines formats need to stay parseable.  (An
//    ofstream in app mode flushes its buffer in unspecified slices and
//    gives no such guarantee.)
//
//  * write_file_atomic(): write to `<path>.tmp.<pid>` then rename(2)
//    into place.  Readers observe either the old file or the complete
//    new one, never a torn prefix — the discipline behind the service's
//    chunk-result cache and its lease-free idempotent retries.
#pragma once

#include <optional>
#include <string>
#include <string_view>

namespace pp {

/// Appends `line` (a '\n' terminator is added when missing) to `path`
/// with a single O_APPEND write.  Creates the file when absent.  Returns
/// false on any error (callers that must stay quiet on unwritable paths
/// — the sinks and BENCH logs — treat that as "disabled").
bool append_line(const std::string& path, std::string_view line);

/// Writes `content` to a sibling temp file and renames it over `path`.
/// Returns false (leaving no temp debris) on any error.
bool write_file_atomic(const std::string& path, std::string_view content);

/// Whole-file read; std::nullopt when the file cannot be opened.
std::optional<std::string> read_file(const std::string& path);

/// mkdir -p.  Returns false when a component exists as a non-directory
/// or creation fails.
bool make_dirs(const std::string& path);

/// Creates `path` exclusively (O_CREAT | O_EXCL) with `content`.  Returns
/// false when the file already exists or cannot be created — the
/// one-winner claim primitive behind the service's chunk leases.
bool create_exclusive(const std::string& path, std::string_view content);

/// True when `path` exists (any file type).
bool path_exists(const std::string& path);

/// Unlinks `path`; returns true when the file was removed by this call.
bool remove_file(const std::string& path);

}  // namespace pp
