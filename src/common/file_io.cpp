#include "common/file_io.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace pp {
namespace {

// Writes all of `data` to `fd`, riding out short writes and EINTR.
bool write_all(int fd, std::string_view data) {
  const char* p = data.data();
  std::size_t left = data.size();
  while (left > 0) {
    const ssize_t w = ::write(fd, p, left);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += w;
    left -= static_cast<std::size_t>(w);
  }
  return true;
}

}  // namespace

bool append_line(const std::string& path, std::string_view line) {
  std::string record(line);
  if (record.empty() || record.back() != '\n') record.push_back('\n');
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) return false;
  // One write(2): O_APPEND makes the whole record land contiguously at
  // EOF even under concurrent appenders (see header).
  const bool ok = write_all(fd, record);
  ::close(fd);
  return ok;
}

bool write_file_atomic(const std::string& path, std::string_view content) {
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  const bool ok = write_all(fd, content);
  ::close(fd);
  if (!ok || std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f.good()) return std::nullopt;
  std::ostringstream out;
  out << f.rdbuf();
  return out.str();
}

bool make_dirs(const std::string& path) {
  if (path.empty()) return false;
  std::string prefix;
  prefix.reserve(path.size());
  for (std::size_t i = 0; i <= path.size(); ++i) {
    if (i < path.size() && path[i] != '/') {
      prefix.push_back(path[i]);
      continue;
    }
    if (i < path.size()) prefix.push_back('/');
    if (prefix.empty() || prefix == "/") continue;
    if (::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST) return false;
  }
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}

bool create_exclusive(const std::string& path, std::string_view content) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_EXCL, 0644);
  if (fd < 0) return false;
  const bool ok = write_all(fd, content);
  ::close(fd);
  return ok;
}

bool path_exists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0;
}

bool remove_file(const std::string& path) {
  return ::unlink(path.c_str()) == 0;
}

}  // namespace pp
