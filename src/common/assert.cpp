#include "common/assert.hpp"

namespace pp::detail {

void assert_fail(const char* expr, const char* file, int line,
                 const char* msg) {
  std::fprintf(stderr, "poprank assertion failed: %s\n  at %s:%d\n", expr,
               file, line);
  if (msg != nullptr) std::fprintf(stderr, "  %s\n", msg);
  std::abort();
}

}  // namespace pp::detail
