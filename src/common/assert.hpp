// Lightweight always-on assertion macro.
//
// The simulator's correctness argument leans on structural invariants
// (weights never underflow, counts always sum to n, ...).  These checks are
// cheap relative to random-number generation, so we keep them enabled in all
// build types; hot inner loops use PP_DCHECK which compiles out in NDEBUG.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace pp::detail {

[[noreturn]] void assert_fail(const char* expr, const char* file, int line,
                              const char* msg);

}  // namespace pp::detail

#define PP_ASSERT(expr)                                                     \
  do {                                                                      \
    if (!(expr)) [[unlikely]]                                               \
      ::pp::detail::assert_fail(#expr, __FILE__, __LINE__, nullptr);        \
  } while (0)

#define PP_ASSERT_MSG(expr, msg)                                            \
  do {                                                                      \
    if (!(expr)) [[unlikely]]                                               \
      ::pp::detail::assert_fail(#expr, __FILE__, __LINE__, (msg));          \
  } while (0)

#ifdef NDEBUG
#define PP_DCHECK(expr) \
  do {                  \
  } while (0)
#else
#define PP_DCHECK(expr) PP_ASSERT(expr)
#endif
