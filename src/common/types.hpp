// Basic integral aliases used across the poprank library.
//
// Conventions:
//  * `StateId` indexes a protocol state (rank states first, extra states
//    after them).  It is 32-bit: populations beyond 2^32 states are out of
//    scope for a laptop-scale simulator.
//  * Counters of agents and interactions are 64-bit.  A single run of the
//    quadratic baseline at n = 2^20 performs ~2^60 interactions in the worst
//    case, which still fits.
#pragma once

#include <cstdint>

namespace pp {

using u8 = std::uint8_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

/// Index of a protocol state.  Rank states are `0 .. n_ranks-1`; extra
/// states (if any) occupy `n_ranks .. n_states-1`.
using StateId = u32;

/// Sentinel for "no state".
inline constexpr StateId kNoState = static_cast<StateId>(-1);

}  // namespace pp
