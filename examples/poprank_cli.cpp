// poprank_cli — run any protocol / start / size combination from the shell.
//
//   $ ./poprank_cli --protocol=tree-ranking --n=4096 --trials=10
//   $ ./poprank_cli --protocol=ring-of-traps --start=k-distant:4 --timeline
//   $ ./poprank_cli --list
//
// Flags:
//   --protocol=NAME   ag | ring-of-traps | line-of-traps | tree-ranking
//   --n=N             population size (snapped to a supported size)
//   --start=KIND      uniform | uniform-ranks | valid | all-in:S |
//                     k-distant:K        (default uniform)
//   --trials=T        number of independent runs (default 5)
//   --seed=S          root seed (default fixed; printed)
//   --budget=B        max interactions per run (default unlimited)
//   --timeline        print the convergence timeline of the first trial
//   --list            list protocols and exit
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "analysis/experiment.hpp"
#include "analysis/timeline.hpp"
#include "core/initial.hpp"
#include "protocols/factory.hpp"

namespace {

struct Args {
  std::string protocol = "tree-ranking";
  pp::u64 n = 1024;
  std::string start = "uniform";
  pp::u64 trials = 5;
  pp::u64 seed = pp::kDefaultRootSeed;
  pp::u64 budget = ~static_cast<pp::u64>(0);
  bool timeline = false;
  bool list = false;
};

bool parse(int argc, char** argv, Args& a) {
  for (int i = 1; i < argc; ++i) {
    const std::string s = argv[i];
    auto val = [&](const char* prefix) -> const char* {
      const size_t len = std::strlen(prefix);
      return s.rfind(prefix, 0) == 0 ? s.c_str() + len : nullptr;
    };
    if (const char* v = val("--protocol=")) {
      a.protocol = v;
    } else if (const char* v = val("--n=")) {
      a.n = std::strtoull(v, nullptr, 10);
    } else if (const char* v = val("--start=")) {
      a.start = v;
    } else if (const char* v = val("--trials=")) {
      a.trials = std::strtoull(v, nullptr, 10);
    } else if (const char* v = val("--seed=")) {
      a.seed = std::strtoull(v, nullptr, 10);
    } else if (const char* v = val("--budget=")) {
      a.budget = std::strtoull(v, nullptr, 10);
    } else if (s == "--timeline") {
      a.timeline = true;
    } else if (s == "--list") {
      a.list = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", s.c_str());
      return false;
    }
  }
  return true;
}

pp::ConfigGenerator make_generator(const std::string& spec, bool& ok) {
  ok = true;
  if (spec == "uniform") return pp::gen_uniform_random();
  if (spec == "uniform-ranks") return pp::gen_uniform_random_ranks();
  if (spec == "valid") {
    return [](const pp::Protocol& p, pp::Rng&) {
      return pp::initial::valid_ranking(p);
    };
  }
  if (spec.rfind("all-in:", 0) == 0) {
    const pp::StateId s = static_cast<pp::StateId>(
        std::strtoull(spec.c_str() + 7, nullptr, 10));
    return pp::gen_all_in_state(s);
  }
  if (spec.rfind("k-distant:", 0) == 0) {
    const pp::u64 k = std::strtoull(spec.c_str() + 10, nullptr, 10);
    return pp::gen_k_distant(k);
  }
  ok = false;
  return pp::gen_uniform_random();
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse(argc, argv, args)) return 2;
  if (args.list) {
    for (const auto name : pp::protocol_names()) {
      const pp::ProtocolPtr p =
          pp::make_protocol(name, pp::preferred_population(name, 256));
      std::printf("%-16s min n = %-4llu extra states at n=256: %llu\n",
                  std::string(name).c_str(),
                  static_cast<unsigned long long>(pp::min_population(name)),
                  static_cast<unsigned long long>(p->num_extra_states()));
    }
    return 0;
  }

  bool gen_ok = false;
  const pp::ConfigGenerator gen = make_generator(args.start, gen_ok);
  if (!gen_ok) {
    std::fprintf(stderr, "unknown --start=%s\n", args.start.c_str());
    return 2;
  }
  const pp::u64 n = pp::preferred_population(args.protocol, args.n);

  std::printf("protocol %s | n = %llu | start %s | %llu trials | seed %llu\n",
              args.protocol.c_str(), static_cast<unsigned long long>(n),
              args.start.c_str(),
              static_cast<unsigned long long>(args.trials),
              static_cast<unsigned long long>(args.seed));

  if (args.timeline) {
    pp::Rng rng(pp::derive_seed(args.seed, "cli-timeline"));
    pp::ProtocolPtr p = pp::make_protocol(args.protocol, n);
    p->reset(gen(*p, rng));
    pp::Timeline tl;
    pp::RunOptions opt;
    opt.max_interactions = args.budget;
    opt.on_change = tl.observer();
    const pp::RunResult r = pp::run_accelerated(*p, rng, opt);
    tl.finish(*p, r);
    pp::Table table = tl.to_table("convergence timeline (trial 0)");
    std::fputs(table.to_string().c_str(), stdout);
    std::printf("\n");
  }

  pp::MeasureOptions opt;
  opt.trials = args.trials;
  opt.root_seed = args.seed;
  opt.label = "cli-" + args.protocol + "-" + args.start;
  opt.max_interactions = args.budget;
  const std::string proto = args.protocol;
  const pp::Measurement m = pp::measure(
      [proto, n] { return pp::make_protocol(proto, n); }, gen, opt);
  const pp::Summary s = m.summary();
  std::printf("parallel time: %s\n", s.to_string().c_str());
  if (m.timeouts > 0) {
    std::printf("timeouts     : %llu of %llu trials hit the budget\n",
                static_cast<unsigned long long>(m.timeouts),
                static_cast<unsigned long long>(args.trials));
  }
  if (m.invalid > 0) {
    std::printf("INVALID      : %llu trials (this is a bug)\n",
                static_cast<unsigned long long>(m.invalid));
    return 1;
  }
  return 0;
}
