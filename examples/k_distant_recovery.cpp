// Section 3's scenario: recovery from k faults with zero extra states.
//
// A stabilised population of n agents loses k of its ranks (k agents are
// displaced onto already-held ranks).  Theorem 1: the state-optimal
// ring-of-traps protocol re-ranks everyone in O(k n^{3/2}) parallel time —
// the fewer the faults, the faster the recovery, with no extra state cost.
//
//   $ ./k_distant_recovery [n] [trials]
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "analysis/stats.hpp"
#include "core/engine.hpp"
#include "core/initial.hpp"
#include "protocols/ring_of_traps.hpp"
#include "rng/seed_sequence.hpp"

int main(int argc, char** argv) {
  const pp::u64 n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2256;
  const pp::u64 trials = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 5;

  std::printf("ring-of-traps recovery from k-distant configurations, n=%llu\n",
              static_cast<unsigned long long>(n));
  std::printf("(paper Theorem 1: O(k n^{3/2}) whp; AG would need ~n^2 = %.3g "
              "regardless of k)\n\n",
              static_cast<double>(n) * static_cast<double>(n));
  std::printf("%8s %14s %14s %16s\n", "k", "mean time", "max time",
              "time/(k n^1.5)");

  const double n15 = std::pow(static_cast<double>(n), 1.5);
  for (pp::u64 k = 1; k <= n / 8; k *= 2) {
    std::vector<double> times;
    for (pp::u64 t = 0; t < trials; ++t) {
      pp::Rng rng(pp::derive_seed(1234, "k-distant-recovery", k * 1000 + t));
      pp::RingOfTrapsProtocol protocol(n);
      protocol.reset(pp::initial::k_distant(protocol, k, rng));
      const pp::RunResult r = pp::run_accelerated(protocol, rng);
      if (!r.valid) {
        std::fprintf(stderr, "unexpected invalid outcome!\n");
        return 1;
      }
      times.push_back(r.parallel_time);
    }
    const pp::Summary s = pp::summarize(times);
    std::printf("%8llu %14.1f %14.1f %16.4f\n",
                static_cast<unsigned long long>(k), s.mean, s.max,
                s.mean / (static_cast<double>(k) * n15));
  }
  std::printf("\nreading guide: recovery cost scales with the damage k "
              "(last column bounded), as Theorem 1 predicts.\n");
  return 0;
}
