// Prints the paper's combinatorial gadgets: the perfectly balanced tree of
// ranks (Figure 2), the routing graph G (Figure 1), and a ring-of-traps
// layout, with their key invariants.
//
//   $ ./visualize_structures [tree_n] [graph_m]
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "structures/balanced_tree.hpp"
#include "structures/ring_layout.hpp"
#include "structures/routing_graph.hpp"

int main(int argc, char** argv) {
  const pp::u64 tree_n =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 9;
  const pp::u64 graph_m =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 4;

  std::printf("=== perfectly balanced tree of ranks, n = %llu "
              "(paper Figure 2 uses n = 9) ===\n",
              static_cast<unsigned long long>(tree_n));
  pp::BalancedTree tree(tree_n);
  std::printf("%s", tree.to_string().c_str());
  std::printf("height %u <= 2 log2 n = %.2f; %zu leaves\n\n", tree.height(),
              2.0 * std::log2(static_cast<double>(tree_n)),
              tree.leaves().size());

  std::printf("=== routing graph G, m = %llu -> %llu lines "
              "(paper Figure 1 uses m^2 = 16) ===\n",
              static_cast<unsigned long long>(graph_m),
              static_cast<unsigned long long>(graph_m * graph_m));
  pp::RoutingGraph graph(graph_m);
  std::printf("%s", graph.to_string().c_str());
  std::printf("cubic multigraph, connected: %s, diameter %u "
              "(paper bound 4 ceil(log2 m) = %.0f)\n\n",
              graph.connected() ? "yes" : "NO", graph.diameter(),
              4.0 * std::ceil(std::log2(static_cast<double>(graph_m))));

  const pp::u64 ring_n = 30;
  std::printf("=== ring of traps, n = %llu ===\n",
              static_cast<unsigned long long>(ring_n));
  pp::RingLayout ring(ring_n);
  for (pp::u64 a = 0; a < ring.num_traps(); ++a) {
    std::printf("trap %llu: gate state %u, inner states %u..%u, next gate "
                "%u\n",
                static_cast<unsigned long long>(a), ring.gate(a),
                ring.gate(a) + 1, ring.top(a), ring.next_gate(a));
  }
  std::printf("(gate rule ejects every other agent to the next trap; inner "
              "rules trap agents permanently — paper section 3.1)\n");
  return 0;
}
