// Exact Markov-chain analysis of tiny populations — ground truth without
// sampling noise.
//
// For small n the protocol's configuration space fits in memory, so we can
// enumerate it, verify that the ONLY reachable silent configuration is the
// valid ranking (stability, exhaustively!), and solve for the exact
// expected stabilisation time — then confront the Monte-Carlo engine with
// it.
//
//   $ ./exact_analysis [n] [trials]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "analysis/exact.hpp"
#include "core/engine.hpp"
#include "core/initial.hpp"
#include "protocols/factory.hpp"
#include "rng/seed_sequence.hpp"

int main(int argc, char** argv) {
  const pp::u64 n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 6;
  const pp::u64 trials =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 20000;

  std::printf("exact analysis of all-in-state-0 starts, n = %llu\n\n",
              static_cast<unsigned long long>(n));
  std::printf("%-16s %14s %10s %8s %14s %14s %8s\n", "protocol", "reachable",
              "silent", "ranking", "E[time] exact", "sim mean", "ratio");

  for (const auto name : pp::protocol_names()) {
    if (pp::min_population(name) > n) {
      std::printf("%-16s (needs n >= %llu, skipped)\n",
                  std::string(name).c_str(),
                  static_cast<unsigned long long>(pp::min_population(name)));
      continue;
    }
    pp::ProtocolPtr p = pp::make_protocol(name, n);
    const pp::Configuration start = pp::initial::all_in_state(*p, 0);
    const pp::ExactAnalysis exact = pp::analyze_exact(*p, start);

    double sum = 0;
    for (pp::u64 t = 0; t < trials; ++t) {
      pp::Rng rng(pp::derive_seed(99, name, t));
      p->reset(start);
      sum += pp::run_accelerated(*p, rng).parallel_time;
    }
    const double sim = sum / static_cast<double>(trials);
    std::printf("%-16s %14llu %10llu %8s %14.4f %14.4f %8.4f\n",
                std::string(name).c_str(),
                static_cast<unsigned long long>(
                    exact.reachable_configurations),
                static_cast<unsigned long long>(exact.silent_configurations),
                exact.all_silent_are_rankings ? "yes" : "NO",
                exact.expected_parallel_time, sim,
                sim / exact.expected_parallel_time);
  }
  std::printf(
      "\nreading guide: 'silent' = reachable silent configurations (always "
      "exactly 1, the ranking: exhaustive proof of stability at this n); "
      "'ratio' ~ 1 validates the Monte-Carlo engine against the exact "
      "chain.\n");
  return 0;
}
