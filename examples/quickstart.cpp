// Quickstart — the 60-second tour of the poprank API.
//
// Builds the O(log n)-extra-states tree-ranking protocol (the paper's
// fastest, Theorem 3), throws it into a uniformly random configuration of
// 1000 agents, runs the exact accelerated simulator to silence, and prints
// a coarse timeline of how the population organises itself.
//
//   $ ./quickstart [n] [seed]
#include <cstdio>
#include <cstdlib>

#include "core/engine.hpp"
#include "core/initial.hpp"
#include "protocols/factory.hpp"

int main(int argc, char** argv) {
  const pp::u64 n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1000;
  const pp::u64 seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 2025;

  // 1. Build a protocol.  Everything implements pp::Protocol; see
  //    pp::protocol_names() for the menu.
  pp::ProtocolPtr protocol = pp::make_protocol("tree-ranking", n);
  std::printf("protocol       : %s\n", std::string(protocol->name()).c_str());
  std::printf("population     : %llu agents\n",
              static_cast<unsigned long long>(protocol->num_agents()));
  std::printf("state space    : %llu ranks + %llu extra states\n",
              static_cast<unsigned long long>(protocol->num_ranks()),
              static_cast<unsigned long long>(protocol->num_extra_states()));

  // 2. Pick a starting configuration.  Self-stabilisation means *any*
  //    arrangement works; here every agent picks a uniformly random state.
  pp::Rng rng(seed);
  protocol->reset(pp::initial::uniform_random(*protocol, rng));

  // 3. Run to silence with a progress observer.  Parallel time =
  //    interactions / n, the paper's complexity measure.
  std::printf("\n%12s %14s %14s\n", "time", "ranks held", "buffered");
  double next_report = 1.0;
  pp::RunOptions opt;
  opt.on_change = [&](const pp::Protocol& p, pp::u64 interactions) {
    const double t =
        static_cast<double>(interactions) / static_cast<double>(n);
    if (t >= next_report) {
      pp::u64 held = 0;
      for (pp::u64 s = 0; s < p.num_ranks(); ++s) {
        held += p.counts()[s] > 0 ? 1 : 0;
      }
      pp::u64 buffered = 0;
      for (pp::u64 s = p.num_ranks(); s < p.num_states(); ++s) {
        buffered += p.counts()[s];
      }
      std::printf("%12.0f %14llu %14llu\n", t,
                  static_cast<unsigned long long>(held),
                  static_cast<unsigned long long>(buffered));
      next_report *= 2;
    }
    return true;
  };
  const pp::RunResult result = pp::run_accelerated(*protocol, rng, opt);

  // 4. Inspect the outcome.
  std::printf("\nsilent         : %s\n", result.silent ? "yes" : "no");
  std::printf("valid ranking  : %s\n", result.valid ? "yes" : "no");
  std::printf("parallel time  : %.1f  (paper bound: O(n log n))\n",
              result.parallel_time);
  std::printf("interactions   : %llu (%llu productive)\n",
              static_cast<unsigned long long>(result.interactions),
              static_cast<unsigned long long>(result.productive_steps));
  std::printf("leader (rank 0): %s\n",
              protocol->counts()[0] == 1 ? "elected, unique" : "NOT unique");
  return result.valid ? 0 : 1;
}
