// Scheduler tour — one protocol, every interaction model in the standard
// menu (uniform flavours, random matching, weighted kernels, churn,
// partition, the graph-restricted topologies and the dynamic graphs).
//
// Runs the chosen protocol from the same random starting configuration
// seed under each scheduler and prints what the model does to
// stabilisation.  The interesting contrasts: every complete-mixing model
// ranks the population — churn and partition merely pay a premium for the
// fault storm / split phases, the spatial weighted[ring-decay] kernel for
// its distance-decaying meeting rates — while sparse graph-restricted
// topologies (cycle, random regular) usually strand it: two agents left
// in the same state interact only if they happen to be adjacent, and near
// the end of a ranking they rarely are.  The dynamic[cycle/...] rows then
// close the argument: the same sparse cycle with edge-Markovian churn or
// periodic rewiring stabilises every run — ranking needs mixing, not
// density.  The adversarial schedulers are a small-n analysis tool; see
// bench_adversarial.
//
//   $ ./scheduler_tour [protocol] [n] [seed]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/initial.hpp"
#include "protocols/factory.hpp"
#include "schedulers/scheduler.hpp"

int main(int argc, char** argv) {
  const std::string proto = argc > 1 ? argv[1] : "ag";
  const pp::u64 raw_n = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 64;
  const pp::u64 seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 2025;
  const pp::u64 n = pp::preferred_population(proto, raw_n);

  const std::vector<pp::SchedulerSpec> specs = pp::standard_scheduler_menu();

  std::printf("protocol %s, n = %llu, seed %llu\n\n", proto.c_str(),
              static_cast<unsigned long long>(n),
              static_cast<unsigned long long>(seed));
  std::printf("%-36s %10s %14s %14s %8s %6s\n", "scheduler", "time",
              "interactions", "productive", "silent", "valid");

  for (const auto& spec : specs) {
    pp::ProtocolPtr p = pp::make_protocol(proto, n);
    pp::Rng rng(seed);
    p->reset(pp::initial::uniform_random(*p, rng));

    const pp::SchedulerPtr scheduler = pp::make_scheduler(spec, n);
    pp::RunOptions opt;
    opt.max_interactions = 20 * n * n * n;  // strand-proof budget
    opt.scheduler = scheduler.get();
    const pp::RunResult r = pp::run(*p, rng, opt);

    std::printf("%-36s %10.1f %14llu %14llu %8s %6s\n",
                std::string(scheduler->name()).c_str(), r.parallel_time,
                static_cast<unsigned long long>(r.interactions),
                static_cast<unsigned long long>(r.productive_steps),
                r.silent ? "yes" : "no", r.valid ? "yes" : "no");
  }
  std::printf(
      "\nparallel time: interactions/n, except random-matching (rounds).\n"
      "silent=no under a sparse graph means the run got locally stuck —\n"
      "the protocol's progress needs meetings the topology never offers.\n"
      "the dynamic[cycle/...] rows are the same cycle with edge-Markovian\n"
      "churn / periodic rewiring: local stuckness passes, silence is "
      "reached.\n");
  return 0;
}
