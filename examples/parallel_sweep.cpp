// Demonstrates the parallel Monte-Carlo runner (src/runner/): a
// multi-protocol, multi-n sweep of stabilisation times from
// uniform-random starts, fanned out over a thread pool, with per-point
// aggregates printed as a table and optionally dumped as CSV/JSON-lines
// for plotting.
//
// The numbers are bit-identical for every --threads value (and identical
// to a serial run): trial t of a point labelled L draws its random stream
// from derive_seed(seed, L, t), never from the schedule.
//
//   ./parallel_sweep [--threads=T] [--trials=N] [--seed=S]
//                    [--csv=sweep.csv] [--jsonl=sweep.jsonl]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "analysis/experiment.hpp"
#include "analysis/table.hpp"
#include "protocols/factory.hpp"
#include "runner/runner.hpp"
#include "runner/sink.hpp"

using namespace pp;

int main(int argc, char** argv) {
  RunnerOptions opt;
  opt.trials = 20;
  opt.threads = 0;  // all cores
  std::string csv_path, jsonl_path;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--threads=", 10) == 0) {
      opt.threads = std::strtoull(a + 10, nullptr, 10);
    } else if (std::strncmp(a, "--trials=", 9) == 0) {
      opt.trials = std::strtoull(a + 9, nullptr, 10);
    } else if (std::strncmp(a, "--seed=", 7) == 0) {
      opt.master_seed = std::strtoull(a + 7, nullptr, 10);
    } else if (std::strncmp(a, "--csv=", 6) == 0) {
      csv_path = a + 6;
    } else if (std::strncmp(a, "--jsonl=", 8) == 0) {
      jsonl_path = a + 8;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--threads=T] [--trials=N] [--seed=S] "
                   "[--csv=F] [--jsonl=F]\n",
                   argv[0]);
      return 2;
    }
  }

  // One pool for the whole sweep; each point fans its trials out over it.
  ThreadPool pool(opt.threads);
  std::unique_ptr<CsvSink> csv;
  if (!csv_path.empty()) csv = std::make_unique<CsvSink>(csv_path);
  std::unique_ptr<JsonlSink> jsonl;
  if (!jsonl_path.empty()) jsonl = std::make_unique<JsonlSink>(jsonl_path);

  std::printf("parallel sweep: %llu trials/point, %llu threads, seed %llu\n",
              static_cast<unsigned long long>(opt.trials),
              static_cast<unsigned long long>(pool.size()),
              static_cast<unsigned long long>(opt.master_seed));

  Table t("Stabilisation from uniform-random starts (parallel time)");
  t.headers({"protocol", "n", "mean", "median", "q95", "trials/s"});
  for (const auto name : protocol_names()) {
    u64 last_n = 0;  // line-of-traps snaps several hints to one size
    for (const u64 n_hint : {64u, 128u, 256u}) {
      const u64 n = preferred_population(name, n_hint);
      if (n == last_n) continue;
      last_n = n;
      TrialSpec spec;
      spec.protocol = std::string(name);
      spec.n = n;
      spec.label = "sweep-" + std::string(name) + "-" + std::to_string(n);
      const TrialSet set = run_trials(spec, opt, pool);
      if (csv) csv->write_trials(spec, set);
      if (jsonl) jsonl->write_aggregate(spec, set);
      const Summary sum = set.summary();
      t.row()
          .cell(std::string(name))
          .cell(n)
          .cell(sum.mean, 5)
          .cell(sum.median, 5)
          .cell(sum.q95, 5)
          .cell(set.trials_per_sec, 4);
    }
  }
  t.print();
  std::printf(
      "\nRe-run with a different --threads value: every number above stays "
      "identical.\n");
  return 0;
}
