// The paper's central trade-off, live: how many extra states do you pay
// for how much stabilisation time?
//
// Runs all four protocols at (nearly) the same population size from the
// same uniformly random chaos and prints extra-state usage next to
// measured stabilisation time.
//
//   $ ./state_time_tradeoff [n] [trials]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "analysis/experiment.hpp"
#include "protocols/factory.hpp"

int main(int argc, char** argv) {
  const pp::u64 n_hint =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 960;
  const pp::u64 trials = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 5;

  std::printf("state/time trade-off from uniform-random starts, n ~ %llu\n\n",
              static_cast<unsigned long long>(n_hint));
  std::printf("%-16s %8s %12s %14s %14s   %s\n", "protocol", "n", "extra",
              "mean time", "median", "paper bound");

  struct Entry {
    const char* name;
    const char* bound;
  };
  const Entry entries[] = {
      {"ag", "Theta(n^2)"},
      {"ring-of-traps", "O(min(k n^1.5, n^2 log^2 n))"},
      {"line-of-traps", "O(n^1.75 log^2 n)"},
      {"tree-ranking", "O(n log n)"},
  };

  for (const auto& e : entries) {
    const pp::u64 n = pp::preferred_population(e.name, n_hint);
    pp::MeasureOptions opt;
    opt.trials = trials;
    opt.label = std::string("tradeoff-example-") + e.name;
    const std::string name = e.name;
    const pp::Measurement m =
        pp::measure([name, n] { return pp::make_protocol(name, n); },
                    pp::gen_uniform_random(), opt);
    const pp::Summary s = m.summary();
    const pp::ProtocolPtr probe = pp::make_protocol(e.name, n);
    std::printf("%-16s %8llu %12llu %14.1f %14.1f   %s\n", e.name,
                static_cast<unsigned long long>(n),
                static_cast<unsigned long long>(probe->num_extra_states()),
                s.mean, s.median, e.bound);
  }
  std::printf(
      "\nreading guide: O(log n) extra states buy near-linear time "
      "(tree-ranking); zero/one extra states keep times near-quadratic on "
      "arbitrary starts but enable the k-distant/o(n^2) wins of E2/E4.\n");
  return 0;
}
