// Leader election under fire — the paper's motivating application.
//
// Ranking solves leader election (rank 0 = leader) and, being
// self-stabilising, survives transient memory corruption: we stabilise a
// population, repeatedly smash a fraction of the agents' states, and watch
// the protocol re-elect exactly one leader every time.
//
//   $ ./leader_election [protocol] [n] [rounds] [faults]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/leader_election.hpp"
#include "protocols/factory.hpp"

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "tree-ranking";
  pp::u64 n = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 500;
  const pp::u64 rounds = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 8;
  pp::u64 faults = argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 0;
  n = pp::preferred_population(name, n);
  if (faults == 0) faults = n / 10;

  pp::LeaderElection election(pp::make_protocol(name, n));
  pp::Rng rng(7);

  std::printf("self-stabilising leader election via ranking\n");
  std::printf("protocol %s, n = %llu, %llu faults per round\n\n",
              name.c_str(),
              static_cast<unsigned long long>(n),
              static_cast<unsigned long long>(faults));

  // Cold start from chaos.
  election.protocol().reset(
      pp::initial::uniform_random(election.protocol(), rng));
  pp::RunResult r = election.stabilise(rng);
  std::printf("%-12s parallel time %10.1f -> %llu leader(s), %s\n",
              "cold start:", r.parallel_time,
              static_cast<unsigned long long>(election.leader_count()),
              election.has_stable_unique_leader() ? "stable" : "UNSTABLE");

  // Fault rounds: corrupt `faults` random agents, re-stabilise.
  for (pp::u64 round = 1; round <= rounds; ++round) {
    election.inject_faults(faults, rng);
    const pp::u64 leaders_after_faults = election.leader_count();
    r = election.stabilise(rng);
    std::printf(
        "round %-5llu faults left %llu leader(s); recovery time %10.1f "
        "-> %llu leader(s), %s\n",
        static_cast<unsigned long long>(round),
        static_cast<unsigned long long>(leaders_after_faults),
        r.parallel_time,
        static_cast<unsigned long long>(election.leader_count()),
        election.has_stable_unique_leader() ? "stable" : "UNSTABLE");
    if (!election.has_stable_unique_leader()) return 1;
  }
  std::printf("\nall rounds recovered a unique stable leader.\n");
  return 0;
}
