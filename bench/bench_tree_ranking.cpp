// E5 — Theorem 3: with O(log n) extra states the tree protocol
// self-stabilises in O(n log n) parallel time whp.
//
// Sweep n over a dyadic range from three starting families; fit the
// exponent (expected ~1 + o(1)) and check that time / (n log2 n) is flat.
// The all-at-root series additionally validates Lemma 19/20's O(n log n)
// dispersion in isolation (no reset ever fires there).
#include "bench_common.hpp"

#include <cmath>
#include <cstdio>

#include "core/initial.hpp"
#include "protocols/factory.hpp"

namespace pp::bench {
namespace {

int run(const Context& ctx) {
  const u64 trials = ctx.trials_or(ctx.quick() ? 3 : 7);
  std::vector<u64> sizes{256, 1024, 4096, 16384, 65536};
  if (ctx.quick()) sizes = {256, 1024, 4096};
  if (ctx.full()) sizes.push_back(262144);

  struct Series {
    const char* name;
    ConfigGenerator gen;
  };
  const Series series[] = {
      {"uniform-random", gen_uniform_random()},
      {"all-at-root", gen_all_in_state(0)},
      {"all-in-X1", gen_uniform_random()},  // placeholder; replaced below
  };

  for (const auto& s : series) {
    ConfigGenerator gen = s.gen;
    if (std::string(s.name) == "all-in-X1") {
      gen = ConfigGenerator([](const Protocol& p, Rng&) {
        return initial::all_in_state(p, static_cast<StateId>(p.num_ranks()));
      });
    }
    Table t(std::string("E5 tree-ranking, ") + s.name + " start");
    t.headers({"n", "mean time", "ci95", "median", "q95", "timeouts",
               "time/(n log2 n)"});
    std::vector<SweepPoint> pts;
    for (const u64 n : sizes) {
      const SweepPoint p = run_point(
          ctx, std::string("e5-") + s.name + std::to_string(n), n, 0,
          [n] { return make_protocol("tree-ranking", n); }, gen, trials);
      pts.push_back(p);
      const double nn = static_cast<double>(n);
      t.row()
          .cell(p.n)
          .cell(p.time.mean, 5)
          .cell(p.time.ci95_halfwidth(), 3)
          .cell(p.time.median, 5)
          .cell(p.time.q95, 5)
          .cell(p.timeouts)
          .cell(p.time.mean / (nn * std::log2(nn)), 3);
    }
    emit(ctx, t);
    report_fit(pts, s.name, "O(n log n) => exponent ~ 1.0-1.1, flat "
                            "time/(n log2 n)");
  }

  std::printf(
      "paper[E5]: exponential state saving vs [24] (Omega(n) extra states) "
      "at the best known O(n log n) time with O(log n) extra states.\n");
  return 0;
}

}  // namespace
}  // namespace pp::bench

int main(int argc, char** argv) {
  const auto ctx = pp::bench::init(
      argc, argv, "E5: tree ranking with O(log n) extra states (Theorem 3)",
      "Paper claim: rules R1-R5 over the perfectly balanced tree of ranks "
      "self-stabilise in O(n log n) parallel time whp.");
  return pp::bench::run(ctx);
}
