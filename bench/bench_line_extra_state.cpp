// E4 — Theorem 2: one extra state (x = 1) buys o(n^2): the line-of-traps
// protocol stabilises in O(n^{7/4} log^2 n) from every configuration.
//
// We sweep the canonical sizes n = 3 m^3 (m+1) (even m) from uniform-random
// and adversarial all-in-X starts, fit the exponent, and compare with AG at
// the same sizes.  Honest expectation at laptop scale: the *exponent* dips
// below AG's 2, while absolute times remain above AG (the log^2 n factor
// and constants dominate until astronomically large n) — the asymptotic
// claim shows up as slope, not as an absolute win.
#include "bench_common.hpp"

#include <cmath>
#include <cstdio>

#include "protocols/factory.hpp"
#include "structures/line_layout.hpp"

namespace pp::bench {
namespace {

int run(const Context& ctx) {
  const u64 trials = ctx.trials_or(ctx.quick() ? 3 : 5);
  std::vector<u64> ms{2, 4, 6};
  if (ctx.quick()) ms = {2, 4};
  if (ctx.full()) ms.push_back(8);

  struct Series {
    const char* name;
    ConfigGenerator gen;
  };
  const Series series[] = {
      {"uniform-random", gen_uniform_random()},
      {"all-in-X", gen_all_in_last_state()},
  };

  for (const auto& s : series) {
    Table t(std::string("E4 line-of-traps (x=1), ") + s.name + " start");
    t.headers({"m", "n", "line mean", "ci95", "ag mean", "line/ag",
               "line/(n^1.75 log^2 n)"});
    std::vector<SweepPoint> line_pts, ag_pts;
    for (const u64 m : ms) {
      const u64 n = LineLayout::canonical_n(m);
      const SweepPoint line = run_point(
          ctx, std::string("e4-line-") + s.name + std::to_string(n), n, 0,
          [n] { return make_protocol("line-of-traps", n); }, s.gen, trials);
      // For AG (x = 0) "all-in-X" degrades to all-in-last-rank-state — the
      // matching adversarial start.
      const SweepPoint ag = run_point(
          ctx, std::string("e4-ag-") + s.name + std::to_string(n), n, 0,
          [n] { return make_protocol("ag", n); }, s.gen, trials);
      line_pts.push_back(line);
      ag_pts.push_back(ag);
      const double nn = static_cast<double>(n);
      const double bound =
          std::pow(nn, 1.75) * std::log2(nn) * std::log2(nn);
      t.row()
          .cell(m)
          .cell(n)
          .cell(line.time.mean, 5)
          .cell(line.time.ci95_halfwidth(), 3)
          .cell(ag.time.mean, 5)
          .cell(line.time.mean / ag.time.mean, 3)
          .cell(line.time.mean / bound, 3);
    }
    emit(ctx, t);
    const PowerFit lf =
        report_fit(line_pts, std::string("line ") + s.name,
                   "O(n^1.75 log^2 n) => exponent below AG's ~2 once log "
                   "factors flatten");
    const PowerFit af =
        report_fit(ag_pts, std::string("ag ") + s.name, "Theta(n^2)");
    std::printf("exponent gap (ag - line) = %.3f  [positive supports o(n^2)]\n\n",
                af.exponent - lf.exponent);
  }
  return 0;
}

}  // namespace
}  // namespace pp::bench

int main(int argc, char** argv) {
  const auto ctx = pp::bench::init(
      argc, argv, "E4: ranking with one extra state (Theorem 2)",
      "Paper claim: with x = 1 extra state, silent self-stabilising ranking "
      "in O(n^{7/4} log^2 n) = o(n^2) whp from every configuration.");
  return pp::bench::run(ctx);
}
