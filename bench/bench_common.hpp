// Shared plumbing for the benchmark binaries.
//
// Every bench accepts the same knobs (flags override environment):
//   --trials=N / POPRANK_TRIALS       trials per measurement point
//   --seed=S   / POPRANK_SEED        root seed (printed for reproduction)
//   --csv=DIR  / POPRANK_CSV_DIR     also dump every table as CSV
//   --quick    / POPRANK_QUICK=1     smaller sweeps (CI-sized)
//   --full     / POPRANK_FULL=1      larger sweeps (paper-sized)
//
// Default sweeps are calibrated to finish each binary in well under a
// minute on one laptop core.
#pragma once

#include <string>
#include <vector>

#include "analysis/experiment.hpp"
#include "analysis/fit.hpp"
#include "analysis/table.hpp"
#include "common/types.hpp"

namespace pp::bench {

struct Context {
  u64 trials = 0;  ///< 0 = per-bench default
  u64 seed = kDefaultRootSeed;
  std::string csv_dir;
  enum class Size { kQuick, kStandard, kFull } size = Size::kStandard;

  u64 trials_or(u64 fallback) const { return trials != 0 ? trials : fallback; }
  bool quick() const { return size == Size::kQuick; }
  bool full() const { return size == Size::kFull; }
};

/// Parses flags/environment and prints the experiment banner.
Context init(int argc, char** argv, const std::string& experiment_id,
             const std::string& claim);

/// One sweep point: runs `trials` stabilisations and returns the row data.
struct SweepPoint {
  u64 n = 0;
  double param = 0;  ///< free axis (k, trap count, ... ; n if unused)
  Summary time;      ///< parallel stabilisation times
  u64 timeouts = 0;
};

/// Measures one (protocol factory, generator) point.
SweepPoint run_point(const Context& ctx, const std::string& label, u64 n,
                     double param, const ProtocolFactory& factory,
                     const ConfigGenerator& gen, u64 trials,
                     u64 max_interactions = ~static_cast<u64>(0));

/// Adds the standard columns of a sweep point to a table row:
/// n, param (skipped when negative), mean, ci95, median, q95, timeouts.
void add_row(Table& table, const SweepPoint& p, bool with_param);

/// Fits mean time ~ n^b over sweep points and prints the verdict line
/// against the paper's expectation.
PowerFit report_fit(const std::vector<SweepPoint>& points,
                    const std::string& series_name,
                    const std::string& expectation);

/// Prints a table (and CSV if enabled).
void emit(const Context& ctx, Table& table);

}  // namespace pp::bench
