// Shared plumbing for the benchmark binaries.
//
// Every bench accepts the same knobs (flags override environment):
//   --trials=N  / POPRANK_TRIALS     trials per measurement point
//   --seed=S    / POPRANK_SEED       root seed (printed for reproduction)
//   --threads=T / POPRANK_THREADS    runner pool size (0 = all cores)
//   --csv=DIR   / POPRANK_CSV_DIR    also dump every table as CSV
//   --quick     / POPRANK_QUICK=1    smaller sweeps (CI-sized)
//   --full      / POPRANK_FULL=1     larger sweeps (paper-sized)
//   --max-n=N   / POPRANK_MAX_N      population cap applied to every sweep
//                                    (0 = per-size default: quick caps at
//                                    4096 so the large-n scale points stay
//                                    opt-in for CI smoke steps, standard
//                                    and full are uncapped)
//   --cache-dir=D / POPRANK_CACHE_DIR   chunk-result cache root: points are
//                                    split into chunks, cached on disk and
//                                    resumed across invocations
//                                    (src/service/)
//   --service-workers=K / POPRANK_SERVICE_WORKERS   fan chunk computation
//                                    out to K re-exec'd worker processes
//                                    (requires --cache-dir; results stay
//                                    bit-identical to K=0)
//
// Measurement points fan their trials out over the parallel runner
// (src/runner/), whose per-trial seed streams make the numbers identical
// for every thread count — and identical to the old serial harness, which
// used the same derive_seed(root, label, trial) scheme.
//
// Besides the human-readable tables, every binary appends one JSON line
// per measurement point to BENCH_<experiment>.json (in the CSV dir if set,
// else the working directory): trials/sec, wall time, thread count, mean
// time.  Future PRs diff these files to track the perf trajectory.
//
// Default sweeps are calibrated to finish each binary in well under a
// minute on one laptop core.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "analysis/experiment.hpp"
#include "analysis/fit.hpp"
#include "analysis/table.hpp"
#include "common/types.hpp"
#include "runner/bench_log.hpp"
#include "runner/runner.hpp"

namespace pp::bench {

struct Context {
  u64 trials = 0;  ///< 0 = per-bench default
  u64 seed = kDefaultRootSeed;
  u64 threads = 0;  ///< runner pool size; 0 = hardware concurrency
  u64 max_n = 0;   ///< population cap; 0 = per-size default (see header)
  std::string csv_dir;
  /// Sharded experiment service knobs (src/service/): a non-empty
  /// cache_dir routes replayable measurement points through the chunk
  /// cache, and service_workers > 0 additionally fans chunk computation
  /// out to that many worker processes.  Both default off.
  std::string cache_dir;
  u64 service_workers = 0;
  BenchLog bench_log;  ///< machine-readable per-point records (one run/file)
  enum class Size { kQuick, kStandard, kFull } size = Size::kStandard;

  /// One pool for the whole bench run; every measurement point fans its
  /// trials out over it (created by init()).
  std::shared_ptr<ThreadPool> pool;

  u64 trials_or(u64 fallback) const { return trials != 0 ? trials : fallback; }
  bool quick() const { return size == Size::kQuick; }
  bool full() const { return size == Size::kFull; }

  /// The effective population cap: an explicit --max-n wins; otherwise
  /// quick mode keeps its historical sizes (the 10^4/10^5 scale points
  /// would blow up sanitizer smoke steps), standard/full are uncapped.
  u64 size_cap() const {
    if (max_n != 0) return max_n;
    return quick() ? 4096 : ~static_cast<u64>(0);
  }
};

/// `sizes` filtered to the context's population cap (order preserved).
std::vector<u64> capped_sizes(const Context& ctx, std::vector<u64> sizes);

/// The shared large-n *scale section* of the scheduler benches: for each
/// n in `sizes` (already capped by the caller, then rounded to the
/// protocol's preferred population), runs every scheduler `menu(n)`
/// returns over the registry protocol `protocol` under a parallel-time
/// budget of 5 — budget-capped throughput points, not stabilisation (AG
/// needs ~n² parallel time) — and emits one table row plus one BENCH
/// record per point, labelled "<label_prefix><scheduler name>".  No-op
/// when `sizes` is empty.  The label prefix is load-bearing: the figure
/// script routes "s1-scale-..." records to the throughput panel, and
/// the regression gate matches baselines by the full label.
void run_scale_section(
    const Context& ctx, const std::string& title,
    const std::string& label_prefix, const std::string& protocol,
    const std::vector<u64>& sizes,
    const std::function<std::vector<SchedulerSpec>(u64)>& menu);

/// Parses flags/environment, prints the experiment banner and truncates
/// the BENCH_*.json file for this run.
Context init(int argc, char** argv, const std::string& experiment_id,
             const std::string& claim);

/// One sweep point: runs `trials` stabilisations and returns the row data.
struct SweepPoint {
  u64 n = 0;
  double param = 0;  ///< free axis (k, trap count, ... ; n if unused)
  Summary time;      ///< parallel stabilisation times
  u64 timeouts = 0;

  // Runner throughput for this point (also appended to BENCH_*.json).
  double wall_seconds = 0;
  double trials_per_sec = 0;
  u64 threads = 1;
};

/// Measures one (protocol factory, generator) point through the parallel
/// runner and appends its BENCH_*.json record.
SweepPoint run_point(const Context& ctx, const std::string& label, u64 n,
                     double param, const ProtocolFactory& factory,
                     const ConfigGenerator& gen, u64 trials,
                     u64 max_interactions = ~static_cast<u64>(0));

/// Builds the TrialSpec run_point would use — for benches that drive
/// run_trials() directly (extra engines, sinks, custom aggregation).
TrialSpec make_spec(const std::string& label, u64 n,
                    const ProtocolFactory& factory, const ConfigGenerator& gen,
                    u64 max_interactions = ~static_cast<u64>(0));

/// RunnerOptions matching the context's seed/threads knobs.
RunnerOptions runner_options(const Context& ctx, u64 trials);

/// The context-aware trial dispatcher every bench measurement point goes
/// through: plain run_trials() on the context pool normally, the sharded
/// service (run_trials_sharded: chunk cache + optional worker processes)
/// when --cache-dir is set and the spec is replayable.  Non-replayable
/// specs under an active cache fall back in-process with a stderr note —
/// never silently.  Results are bit-identical either way.
TrialSet run_trials_ctx(const Context& ctx, const TrialSpec& spec,
                        const RunnerOptions& opt);

/// Appends one machine-readable record for a measurement point to the
/// run's BENCH_*.json (a JSON-lines file, truncated per run — see
/// runner/bench_log.hpp).  run_point calls this; benches that use
/// run_trials() directly should call it themselves.
void emit_bench_json(const Context& ctx, const std::string& point, u64 n,
                     double param, const TrialSet& set);

/// Spec-aware overload: the record additionally carries the merged obs
/// counters and the point is mirrored into the BENCH file's provenance
/// sidecar (obs/provenance.hpp) — replayable whenever the spec uses a
/// registry protocol and a default/uniform-random init.  Prefer this one;
/// the label is taken from spec.label.
void emit_bench_json(const Context& ctx, const TrialSpec& spec, u64 n,
                     double param, const TrialSet& set);

/// Prints the "invalid outcomes" warning run_point would print — benches
/// that use run_trials() directly must not drop that signal.
void warn_if_invalid(const TrialSet& set, const std::string& label);

/// Adds the standard columns of a sweep point to a table row:
/// n, param (skipped when negative), mean, ci95, median, q95, timeouts.
void add_row(Table& table, const SweepPoint& p, bool with_param);

/// Fits mean time ~ n^b over sweep points and prints the verdict line
/// against the paper's expectation.
PowerFit report_fit(const std::vector<SweepPoint>& points,
                    const std::string& series_name,
                    const std::string& expectation);

/// Prints a table (and CSV if enabled).
void emit(const Context& ctx, Table& table);

}  // namespace pp::bench
