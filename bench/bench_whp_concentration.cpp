// E7 — "with high probability" means concentrated: stabilisation-time
// distributions have light upper tails (1 - n^{-eta} guarantees).
//
// For each protocol we run many independent trials through the parallel
// runner and report the quantiles; the paper's whp bounds predict
// max/median staying a small constant (no heavy tail), in contrast to e.g.
// exponential waiting times.  With --csv=DIR the per-trial records are
// also dumped as whp-trials.jsonl for tail plots.
#include "bench_common.hpp"

#include <cstdio>
#include <memory>

#include "protocols/factory.hpp"
#include "runner/sink.hpp"

namespace pp::bench {
namespace {

int run(const Context& ctx) {
  const u64 trials = ctx.trials_or(ctx.quick() ? 10 : 50);

  struct Spec {
    const char* protocol;
    u64 n;
  };
  const Spec specs[] = {
      {"ag", 512},
      {"ring-of-traps", 506},
      {"line-of-traps", 960},
      {"tree-ranking", 4096},
  };

  std::unique_ptr<JsonlSink> sink;
  if (!ctx.csv_dir.empty()) {
    // Degrade like the Table CSVs do: an unwritable dir skips the dump
    // instead of aborting the bench (the sink itself asserts on open).
    const std::string path = ctx.csv_dir + "/whp-trials.jsonl";
    if (std::ofstream(path).good()) {
      sink = std::make_unique<JsonlSink>(path);
    } else {
      std::fprintf(stderr, "WARNING: cannot write %s; skipping trial dump\n",
                   path.c_str());
    }
  }

  Table t("E7 whp concentration (" + std::to_string(trials) +
          " trials each, uniform-random starts)");
  t.headers({"protocol", "n", "mean", "median", "q95", "max", "max/median",
             "stddev/mean", "trials/s"});
  for (const auto& s : specs) {
    const u64 n = preferred_population(s.protocol, ctx.quick() ? s.n / 4 : s.n);
    const std::string proto = s.protocol;
    TrialSpec spec = make_spec(
        std::string("e7-") + s.protocol, n,
        [proto, n] { return make_protocol(proto, n); }, gen_uniform_random());
    spec.protocol = proto;  // descriptive only: the factory takes precedence
    const TrialSet set =
        run_trials_ctx(ctx, spec, runner_options(ctx, trials));
    warn_if_invalid(set, spec.label);
    emit_bench_json(ctx, spec, n, 0, set);
    if (sink) {
      sink->write_trials(spec, set);
    }
    const Summary sum = set.summary();
    t.row()
        .cell(std::string(s.protocol))
        .cell(n)
        .cell(sum.mean, 5)
        .cell(sum.median, 5)
        .cell(sum.q95, 5)
        .cell(sum.max, 5)
        .cell(sum.max / sum.median, 3)
        .cell(sum.stddev / sum.mean, 3)
        .cell(set.trials_per_sec, 4);
  }
  emit(ctx, t);
  std::printf(
      "paper[E7]: whp (1 - n^-eta) stabilisation => max/median stays a "
      "small constant and the relative spread is modest for every "
      "protocol.\n");
  return 0;
}

}  // namespace
}  // namespace pp::bench

int main(int argc, char** argv) {
  const auto ctx = pp::bench::init(
      argc, argv, "E7: whp concentration of stabilisation times",
      "All bounds in the paper hold with high probability 1 - n^-eta; "
      "empirically the time distributions must be concentrated.");
  return pp::bench::run(ctx);
}
