// E7 — "with high probability" means concentrated: stabilisation-time
// distributions have light upper tails (1 - n^{-eta} guarantees).
//
// For each protocol we run many independent trials and report the
// quantiles; the paper's whp bounds predict max/median staying a small
// constant (no heavy tail), in contrast to e.g. exponential waiting times.
#include "bench_common.hpp"

#include <cstdio>

#include "protocols/factory.hpp"

namespace pp::bench {
namespace {

int run(const Context& ctx) {
  const u64 trials = ctx.trials_or(ctx.quick() ? 10 : 50);

  struct Spec {
    const char* protocol;
    u64 n;
  };
  const Spec specs[] = {
      {"ag", 512},
      {"ring-of-traps", 506},
      {"line-of-traps", 960},
      {"tree-ranking", 4096},
  };

  Table t("E7 whp concentration (" + std::to_string(trials) +
          " trials each, uniform-random starts)");
  t.headers({"protocol", "n", "mean", "median", "q95", "max", "max/median",
             "stddev/mean"});
  for (const auto& s : specs) {
    const u64 n = preferred_population(s.protocol, ctx.quick() ? s.n / 4 : s.n);
    const std::string proto = s.protocol;
    const SweepPoint p = run_point(
        ctx, std::string("e7-") + s.protocol, n, 0,
        [proto, n] { return make_protocol(proto, n); }, gen_uniform_random(),
        trials);
    t.row()
        .cell(std::string(s.protocol))
        .cell(n)
        .cell(p.time.mean, 5)
        .cell(p.time.median, 5)
        .cell(p.time.q95, 5)
        .cell(p.time.max, 5)
        .cell(p.time.max / p.time.median, 3)
        .cell(p.time.stddev / p.time.mean, 3);
  }
  emit(ctx, t);
  std::printf(
      "paper[E7]: whp (1 - n^-eta) stabilisation => max/median stays a "
      "small constant and the relative spread is modest for every "
      "protocol.\n");
  return 0;
}

}  // namespace
}  // namespace pp::bench

int main(int argc, char** argv) {
  const auto ctx = pp::bench::init(
      argc, argv, "E7: whp concentration of stabilisation times",
      "All bounds in the paper hold with high probability 1 - n^-eta; "
      "empirically the time distributions must be concentrated.");
  return pp::bench::run(ctx);
}
