// A3 — engine microbenchmarks (google-benchmark).
//
// Measures the cost of the simulator itself rather than protocol time:
//   * productive-step throughput per protocol (the accelerated engine's
//     unit of work: Fenwick sample + rule application),
//   * uniform-step throughput (the naive engine's unit of work),
//   * full stabilisation wall-time, accelerated vs uniform — the speedup
//     that makes the Θ(n^2)-time protocols benchable at all,
//   * Monte-Carlo trial throughput, legacy serial harness vs the parallel
//     runner at 1/2/4/8 threads (compare the "trials/s" counters; on a
//     machine with >= 8 cores the 8-thread runner should be >= 3x the
//     serial path — the fan-out is embarrassingly parallel).
#include <benchmark/benchmark.h>

#include "analysis/experiment.hpp"
#include "core/engine.hpp"
#include "core/initial.hpp"
#include "protocols/factory.hpp"
#include "runner/runner.hpp"

namespace pp {
namespace {

void BM_ProductiveStep(benchmark::State& state, const char* name) {
  const u64 n = preferred_population(name, static_cast<u64>(state.range(0)));
  ProtocolPtr p = make_protocol(name, n);
  Rng rng(1);
  p->reset(initial::uniform_random(*p, rng));
  u64 steps = 0;
  for (auto _ : state) {
    if (p->is_silent()) {
      state.PauseTiming();
      p->reset(initial::uniform_random(*p, rng));
      state.ResumeTiming();
    }
    p->step_productive(rng);
    ++steps;
  }
  state.SetItemsProcessed(static_cast<int64_t>(steps));
}

void BM_UniformStep(benchmark::State& state, const char* name) {
  const u64 n = preferred_population(name, static_cast<u64>(state.range(0)));
  ProtocolPtr p = make_protocol(name, n);
  Rng rng(2);
  p->reset(initial::uniform_random(*p, rng));
  u64 steps = 0;
  for (auto _ : state) {
    if (p->is_silent()) {
      state.PauseTiming();
      p->reset(initial::uniform_random(*p, rng));
      state.ResumeTiming();
    }
    p->step_uniform(rng);
    ++steps;
  }
  state.SetItemsProcessed(static_cast<int64_t>(steps));
}

void BM_StabiliseAccelerated(benchmark::State& state, const char* name) {
  const u64 n = preferred_population(name, static_cast<u64>(state.range(0)));
  Rng rng(3);
  u64 interactions = 0;
  for (auto _ : state) {
    ProtocolPtr p = make_protocol(name, n);
    p->reset(initial::uniform_random(*p, rng));
    const RunResult r = run_accelerated(*p, rng);
    interactions += r.interactions;
    benchmark::DoNotOptimize(r.parallel_time);
  }
  state.counters["interactions/s"] = benchmark::Counter(
      static_cast<double>(interactions), benchmark::Counter::kIsRate);
}

void BM_StabiliseUniform(benchmark::State& state, const char* name) {
  const u64 n = preferred_population(name, static_cast<u64>(state.range(0)));
  Rng rng(4);
  u64 interactions = 0;
  for (auto _ : state) {
    ProtocolPtr p = make_protocol(name, n);
    p->reset(initial::uniform_random(*p, rng));
    const RunResult r = run_uniform(*p, rng);
    interactions += r.interactions;
    benchmark::DoNotOptimize(r.parallel_time);
  }
  state.counters["interactions/s"] = benchmark::Counter(
      static_cast<double>(interactions), benchmark::Counter::kIsRate);
}

BENCHMARK_CAPTURE(BM_ProductiveStep, ag, "ag")->Arg(1024)->Arg(16384);
BENCHMARK_CAPTURE(BM_ProductiveStep, ring, "ring-of-traps")
    ->Arg(1024)
    ->Arg(16384);
BENCHMARK_CAPTURE(BM_ProductiveStep, line, "line-of-traps")->Arg(960);
BENCHMARK_CAPTURE(BM_ProductiveStep, tree, "tree-ranking")
    ->Arg(1024)
    ->Arg(16384);

BENCHMARK_CAPTURE(BM_UniformStep, ag, "ag")->Arg(1024);
BENCHMARK_CAPTURE(BM_UniformStep, tree, "tree-ranking")->Arg(1024);

// Accelerated engine stabilises a 256-agent AG instance in microseconds;
// the uniform engine needs ~n^3 = 16M simulated interactions for the same
// thing — the comparison quantifies the exact-null-skipping speedup.
BENCHMARK_CAPTURE(BM_StabiliseAccelerated, ag, "ag")->Arg(256)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_StabiliseUniform, ag, "ag")->Arg(256)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_StabiliseAccelerated, tree, "tree-ranking")->Arg(4096)
    ->Unit(benchmark::kMillisecond);

// ---- Monte-Carlo trial throughput: serial harness vs parallel runner ----

constexpr u64 kTrialBatch = 32;  ///< trials per benchmark iteration

/// The pre-runner path: analysis/experiment.cpp's serial measure() loop.
void BM_TrialsSerial(benchmark::State& state) {
  const u64 n = preferred_population("ring-of-traps", 1024);
  MeasureOptions opt;
  opt.trials = kTrialBatch;
  opt.label = "bm-trials";
  u64 trials = 0;
  for (auto _ : state) {
    const Measurement m =
        measure([n] { return make_protocol("ring-of-traps", n); },
                gen_uniform_random(), opt);
    trials += m.parallel_times.size();
    benchmark::DoNotOptimize(m.timeouts);
  }
  state.counters["trials/s"] = benchmark::Counter(
      static_cast<double>(trials), benchmark::Counter::kIsRate);
}

/// The same trials (bit-identical per-trial results — same seed stream)
/// fanned out over the runner's thread pool; Arg = thread count.
void BM_TrialsRunner(benchmark::State& state) {
  const u64 n = preferred_population("ring-of-traps", 1024);
  TrialSpec spec;
  spec.protocol = "ring-of-traps";
  spec.n = n;
  spec.label = "bm-trials";
  RunnerOptions opt;
  opt.trials = kTrialBatch;
  opt.threads = static_cast<u64>(state.range(0));
  opt.keep_records = false;
  ThreadPool pool(opt.threads);
  u64 trials = 0;
  for (auto _ : state) {
    const TrialSet set = run_trials(spec, opt, pool);
    trials += set.stats.trials;
    benchmark::DoNotOptimize(set.stats.timeouts);
  }
  state.counters["trials/s"] = benchmark::Counter(
      static_cast<double>(trials), benchmark::Counter::kIsRate);
}

BENCHMARK(BM_TrialsSerial)->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK(BM_TrialsRunner)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
}  // namespace pp

BENCHMARK_MAIN();
