// A5 — (extension, not a paper claim) robustness beyond the random
// scheduler.
//
// The paper's guarantees hold whp under the uniform random scheduler.
// This bench drives each protocol with greedy adversarial schedulers that
// always fire *some* productive pair but pick it maliciously, and reports
// productive steps to silence (or CYCLES if the budget is exhausted).
//
// Findings (reproduced in tests/test_adversary.cpp):
//   * AG / ring: terminate under every adversary, with a
//     schedule-INDEPENDENT productive-step count — a global version of
//     the paper's Lemma 5/7 "tokens are handled consistently";
//   * line-of-traps: an adversary can circulate surplus agents through X
//     forever; stabilisation is genuinely probabilistic;
//   * tree-ranking: terminates under all implemented adversaries (the
//     post-reset pour is deterministic by counting).
#include "bench_common.hpp"

#include <cstdio>

#include "core/adversary.hpp"
#include "core/initial.hpp"
#include "protocols/factory.hpp"

namespace pp::bench {
namespace {

int run(const Context& ctx) {
  const u64 budget = ctx.quick() ? 100'000 : 400'000;
  const AdversaryPolicy policies[] = {
      AdversaryPolicy::kRandomProductive,
      AdversaryPolicy::kMaxLoad,
      AdversaryPolicy::kMinRankCoverage,
      AdversaryPolicy::kStubborn,
  };

  Table t("A5 adversarial schedulers (productive steps to silence, budget " +
          std::to_string(budget) + ")");
  t.headers({"protocol", "n", "random-productive", "max-load",
             "min-rank-coverage", "stubborn"});
  for (const auto name : protocol_names()) {
    const u64 n = preferred_population(name, 72);
    ProtocolPtr p = make_protocol(name, n);
    // One shared start per protocol so the columns are comparable (and the
    // ag/ring schedule-independence is visible as identical counts).
    Rng cfg_rng(derive_seed(ctx.seed, std::string("a5-start-") +
                                          std::string(name)));
    const Configuration start = initial::uniform_random(*p, cfg_rng);
    auto row = t.row();
    row.cell(std::string(name)).cell(n);
    for (const auto policy : policies) {
      Rng rng(derive_seed(ctx.seed, "a5", static_cast<u64>(policy)));
      p->reset(start);
      const RunResult r = run_adversarial(*p, policy, rng, budget);
      row.cell(r.silent ? std::to_string(r.productive_steps)
                        : std::string("CYCLES"));
    }
  }
  emit(ctx, t);
  std::printf(
      "reading guide: identical step counts across columns (ag, ring) mean "
      "the protocol's work is schedule-independent; CYCLES means the "
      "adversary found an infinite productive schedule — that protocol's "
      "guarantee needs the random scheduler.\n");
  return 0;
}

}  // namespace
}  // namespace pp::bench

int main(int argc, char** argv) {
  const auto ctx = pp::bench::init(
      argc, argv, "A5: adversarial-scheduler robustness (extension)",
      "How each protocol behaves when the scheduler fires productive pairs "
      "maliciously instead of uniformly at random.");
  return pp::bench::run(ctx);
}
