// A5 — (extension, not a paper claim) robustness beyond the random
// scheduler.
//
// The paper's guarantees hold whp under the uniform random scheduler.
// This bench drives each protocol with the greedy adversarial schedulers
// (schedulers/adversarial.hpp) — hostile models that always fire *some*
// productive pair but pick it maliciously — and reports productive steps
// to silence (or CYCLES if the budget is exhausted).
//
// Findings (reproduced in tests/test_adversary.cpp):
//   * AG / ring: terminate under every adversary, with a
//     schedule-INDEPENDENT productive-step count — a global version of
//     the paper's Lemma 5/7 "tokens are handled consistently";
//   * line-of-traps: an adversary can circulate surplus agents through X
//     forever; stabilisation is genuinely probabilistic;
//   * tree-ranking: terminates under all implemented adversaries (the
//     post-reset pour is deterministic by counting).
//
// Every (protocol × policy) point runs through the parallel runner via
// RunOptions::scheduler — the same path as every other interaction model —
// and appends one BENCH json record whose engine field names the concrete
// policy (e.g. "adversarial[max-load]"), so the perf trajectories of the
// four adversaries stay distinguishable and comparable across commits.
#include "bench_common.hpp"

#include <cstdio>

#include "core/initial.hpp"
#include "protocols/factory.hpp"
#include "schedulers/scheduler.hpp"

namespace pp::bench {
namespace {

int run(const Context& ctx) {
  const u64 budget = ctx.quick() ? 100'000 : 400'000;
  // Every policy except random-productive is deterministic given the start
  // (the policy loops never consume the generator), so extra trials of the
  // greedy adversaries would be bit-identical replays — run those once.
  const u64 trials = ctx.trials_or(ctx.quick() ? 2 : 4);

  Table t("A5 adversarial schedulers (productive steps to silence, budget " +
          std::to_string(budget) + ")");
  t.headers({"protocol", "n", "random-productive", "max-load",
             "min-rank-coverage", "stubborn"});
  for (const auto name : protocol_names()) {
    const u64 n = preferred_population(name, 72);
    // One shared start per protocol so the columns are comparable (and the
    // ag/ring schedule-independence is visible as identical counts).
    ProtocolPtr probe = make_protocol(name, n);
    Rng cfg_rng(derive_seed(ctx.seed, std::string("a5-start-") +
                                          std::string(name)));
    const Configuration start = initial::uniform_random(*probe, cfg_rng);
    auto row = t.row();
    row.cell(std::string(name)).cell(n);
    for (const AdversaryPolicy policy : adversary_policies()) {
      const std::string proto(name);
      TrialSpec spec = make_spec(
          std::string("a5-") + proto + "-" + adversary_policy_name(policy), n,
          [proto, n] { return make_protocol(proto, n); },
          [start](const Protocol&, Rng&) { return start; }, budget);
      spec.protocol = proto;  // descriptive only
      spec.engine = EngineKind::kScheduled;
      spec.scheduler.kind = SchedulerKind::kAdversarial;
      spec.scheduler.adversary = policy;
      const u64 point_trials =
          policy == AdversaryPolicy::kRandomProductive ? trials : 1;
      const TrialSet set =
          run_trials_ctx(ctx, spec, runner_options(ctx, point_trials));
      warn_if_invalid(set, spec.label);
      emit_bench_json(ctx, spec, n, 0, set);
      row.cell(set.stats.timeouts == 0
                   ? std::to_string(static_cast<u64>(
                         set.stats.productive_steps.max()))
                   : std::string("CYCLES"));
    }
  }
  emit(ctx, t);
  std::printf(
      "reading guide: identical step counts across columns (ag, ring) mean "
      "the protocol's work is schedule-independent; CYCLES means the "
      "adversary found an infinite productive schedule — that protocol's "
      "guarantee needs the random scheduler.\n");
  return 0;
}

}  // namespace
}  // namespace pp::bench

int main(int argc, char** argv) {
  const auto ctx = pp::bench::init(
      argc, argv, "A5: adversarial-scheduler robustness (extension)",
      "How each protocol behaves when the scheduler fires productive pairs "
      "maliciously instead of uniformly at random.");
  return pp::bench::run(ctx);
}
