#!/usr/bin/env python3
"""Validator for the observability artifacts a POPRANK_OBS=ON run emits.

Three independent checks, any of which failing exits 1:

  1. Chrome trace JSON (--trace): the file json.loads, has the
     {"traceEvents": [...]} shape Perfetto/chrome://tracing expect, every
     event carries name/ph/tid/ts, every complete ('X') event carries a
     non-negative dur, and the per-thread span set is sane (an 'X' event
     never out-lives the trace).
  2. Provenance manifests (--bench-dir): every BENCH_*.json has a
     <file>.manifest.json sidecar whose header names the same run_id, and
     every point line parses with the documented fields.
  3. Spec-hash recomputation: the manifest's spec_hash is re-derived here,
     in Python, from the serialised spec string with an independent
     FNV-1a 64 implementation — a C++-side serialisation or hashing change
     that silently breaks replay-from-manifest trips this check.

Stdlib-only on purpose, like the figure and regression scripts: this runs
on any CI runner straight after the traced smoke step.

Usage:
  check_obs_artifacts.py --bench-dir build [--trace build/trace.json]
"""

import argparse
import glob
import json
import os
import sys

FNV_OFFSET = 0xCBF29CE484222325
FNV_PRIME = 0x100000001B3
MASK64 = (1 << 64) - 1


def fnv1a64(data: bytes) -> int:
    """Mirrors pp::obs::fnv1a64 (src/obs/provenance.cpp) byte for byte."""
    h = FNV_OFFSET
    for b in data:
        h = ((h ^ b) * FNV_PRIME) & MASK64
    return h


def fail(msg):
    sys.exit(f"check_obs_artifacts: FAIL: {msg}")


def check_trace(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail(f"{path}: no traceEvents array")
    if not events:
        fail(f"{path}: traceEvents is empty — the flagged trial never ran")
    max_end = 0
    for ev in events:
        for key in ("name", "ph", "tid", "ts"):
            if key not in ev:
                fail(f"{path}: event missing {key!r}: {ev}")
        if ev["ph"] not in ("X", "i"):
            fail(f"{path}: unexpected phase {ev['ph']!r}")
        if ev["ph"] == "X":
            if ev.get("dur", -1) < 0:
                fail(f"{path}: complete event without dur: {ev}")
            max_end = max(max_end, ev["ts"] + ev["dur"])
        else:
            if ev.get("s") != "t":
                fail(f"{path}: instant event without thread scope: {ev}")
    # Every span must end within the trace: an 'X' event reaching past the
    # last recorded timestamp means a ScopedSpan closed after the session
    # was torn down (or never closed at all).
    last_ts = max(ev["ts"] + ev.get("dur", 0) for ev in events)
    if max_end > last_ts:
        fail(f"{path}: span ends at {max_end} past trace end {last_ts}")
    dropped = doc.get("otherData", {}).get("dropped_events", 0)
    phases = sorted({ev["name"] for ev in events if ev["ph"] == "X"})
    print(
        f"  trace    {path}: {len(events)} events, spans {phases}, "
        f"{dropped} dropped"
    )


MANIFEST_POINT_FIELDS = (
    "label", "n", "param", "master_seed", "trials", "threads",
    "scheduler", "spec", "spec_hash", "replayable",
)


def check_manifest(bench_path, manifest_path):
    with open(bench_path, "r", encoding="utf-8") as f:
        bench_header = json.loads(f.readline())
    run_id = bench_header.get("run_id")
    with open(manifest_path, "r", encoding="utf-8") as f:
        lines = [ln for ln in f if ln.strip()]
    if not lines:
        fail(f"{manifest_path}: empty")
    header = json.loads(lines[0])
    if header.get("kind") != "manifest":
        fail(f"{manifest_path}: first line is not a manifest header")
    for key in ("artifact", "run_id", "git_sha", "build_type", "obs"):
        if key not in header:
            fail(f"{manifest_path}: header missing {key!r}")
    if header["run_id"] != run_id:
        fail(
            f"{manifest_path}: run_id {header['run_id']} != "
            f"{run_id} in {bench_path} — stale sidecar"
        )
    points = 0
    replayable = 0
    for ln in lines[1:]:
        rec = json.loads(ln)
        if rec.get("kind") != "point":
            fail(f"{manifest_path}: non-point record after header: {rec}")
        for key in MANIFEST_POINT_FIELDS:
            if key not in rec:
                fail(f"{manifest_path}: point missing {key!r}: {rec}")
        want = f"fnv1a64:{fnv1a64(rec['spec'].encode('utf-8')):016x}"
        if rec["spec_hash"] != want:
            fail(
                f"{manifest_path}: spec_hash {rec['spec_hash']} != "
                f"recomputed {want} for label {rec['label']!r} — the C++ "
                "spec serialisation or hash changed without a manifest "
                "version bump"
            )
        points += 1
        replayable += bool(rec["replayable"])
    print(
        f"  manifest {manifest_path}: {points} points, "
        f"{replayable} replayable, spec hashes verified"
    )
    if points == 0:
        fail(f"{manifest_path}: header but no points")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--bench-dir", default=".")
    ap.add_argument("--trace", default=None)
    args = ap.parse_args()

    if args.trace:
        check_trace(args.trace)

    bench_files = sorted(glob.glob(os.path.join(args.bench_dir, "BENCH_*.json")))
    bench_files = [p for p in bench_files if not p.endswith(".manifest.json")]
    if not bench_files:
        fail(f"no BENCH_*.json in {args.bench_dir}")
    for bench_path in bench_files:
        manifest_path = bench_path + ".manifest.json"
        if not os.path.exists(manifest_path):
            fail(f"{bench_path} has no {manifest_path} sidecar")
        check_manifest(bench_path, manifest_path)
    print("check_obs_artifacts: OK")


if __name__ == "__main__":
    main()
