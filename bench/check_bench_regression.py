#!/usr/bin/env python3
"""Per-commit bench-regression gate over the BENCH_*.json records.

Compares the current run's machine-readable bench records against the
committed baselines in bench/baselines/ and fails (exit 1) when any
matched measurement point regressed:

  * mean parallel stabilisation time grew by more than --factor (default
    2x).  The runner's per-trial seed streams make this number
    *deterministic* for a fixed (seed, trials) — identical across thread
    counts, build types and machines — so a trip is a semantic change in
    the simulation, never scheduling noise;
  * a point that used to stabilise within its budget now strands every
    trial (timeouts == trials where the baseline had headroom);
  * optionally, trials/s fell by more than --throughput-factor.  Off by
    default: wall-clock throughput is machine-dependent, so it only means
    something when baseline and current ran on comparable hardware.

Points are matched by (point label, n, param, trials); trials is part of
the key because the deterministic mean is a function of the trial count.
New points (present only in the current run) are reported but never fail
the gate — new benches should not need a baseline to land.  A baseline
point MISSING from the current run fails the gate ("missing point"),
because a silently vanished measurement is exactly the kind of coverage
loss the gate exists to catch.  The one legitimate reason for a missing
point is a size cap: the current run's header records its effective
--max-n, and baseline points above that cap are excused as notes — CI
runs different subsets per build type (Debug smoke steps cap n hard).

Stdlib-only on purpose, like the figure script: the gate runs on any CI
runner straight after the bench step.

Usage:
  check_bench_regression.py --bench-dir build [--baseline-dir bench/baselines]
  check_bench_regression.py --bench-dir build --update-baseline

  --bench-dir          where the current BENCH_*.json files live
  --baseline-dir       committed baselines (default: bench/baselines next
                       to this script)
  --factor             mean-parallel-time regression factor (default 2.0)
  --throughput-factor  trials/s regression factor; 0 disables (default 0)
  --update-baseline    rewrite the baselines from the current records
                       (normalised: stable fields only, sorted), then exit

Refreshing baselines after an intentional perf/semantics change (the
invocations must match CI's Release leg — trials is part of the match
key, and a baseline generated under a smaller cap would instantly trip
the missing-point check there):
  cd build && ./bench_scheduler_comparison --quick --trials=3 --max-n=10000000
  ./bench_hostile_sweep --quick --trials=2 --max-n=10000
  ./bench_whp_concentration --quick --trials=3
  ./bench_sampler_update --quick --trials=2 --max-n=10000
  python3 ../bench/check_bench_regression.py --bench-dir . --update-baseline
"""

import argparse
import glob
import json
import os
import sys

# The stable, machine-independent fields a baseline keeps per point.
STABLE_FIELDS = ("point", "n", "param", "trials", "mean_parallel_time",
                 "timeouts", "invalid")
# Kept for human reference and --throughput-factor; machine-dependent.
REFERENCE_FIELDS = ("trials_per_sec",)


def load_records(path):
    """(experiment id, {match key: point record}, effective max_n).

    max_n is the run header's population cap (0 = uncapped); records
    written before the field existed load as 0, which keeps the
    missing-point check strict for them.
    """
    experiment = None
    points = {}
    max_n = 0
    with open(path, "r", encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            rec = json.loads(line)
            if rec.get("kind") == "run":
                experiment = rec.get("experiment")
                max_n = rec.get("max_n", 0)
            elif rec.get("kind") in ("point", "baseline-point"):
                key = (rec["point"], rec["n"], rec["param"], rec["trials"])
                points[key] = rec
    return experiment, points, max_n


def write_baseline(path, experiment, points):
    with open(path, "w", encoding="utf-8") as f:
        f.write(json.dumps({"kind": "baseline",
                            "experiment": experiment}) + "\n")
        for key in sorted(points, key=lambda k: (k[0], k[1], k[2])):
            rec = points[key]
            slim = {"kind": "baseline-point"}
            for field in STABLE_FIELDS + REFERENCE_FIELDS:
                slim[field] = rec.get(field)
            f.write(json.dumps(slim) + "\n")


def fmt_key(key):
    point, n, param, trials = key
    return f"{point} (n={n}, param={param:g}, trials={trials})"


def compare(name, base_points, cur_points, factor, throughput_factor,
            cur_max_n=0):
    """Returns (failures, notes) for one experiment's record pair.

    cur_max_n is the current run's effective population cap (0 =
    uncapped): baseline points with n above it were legitimately skipped
    by --max-n and only produce notes; any other baseline-only point is
    a "missing point" failure.
    """
    failures = []
    notes = []
    matched = 0
    for key, cur in sorted(cur_points.items()):
        base = base_points.get(key)
        if base is None:
            notes.append(f"  new point (no baseline): {fmt_key(key)}")
            continue
        matched += 1
        bt, ct = base["mean_parallel_time"], cur["mean_parallel_time"]
        if bt > 0 and ct > factor * bt:
            failures.append(
                f"  {fmt_key(key)}: mean parallel time {ct:g} vs baseline "
                f"{bt:g} (> {factor:g}x)"
            )
        elif bt > 0 and ct * factor < bt:
            notes.append(
                f"  improvement (> {factor:g}x): {fmt_key(key)} "
                f"{bt:g} -> {ct:g} — consider --update-baseline"
            )
        if (cur["timeouts"] == cur["trials"]
                and base["timeouts"] < base["trials"]):
            failures.append(
                f"  {fmt_key(key)}: every trial now strands "
                f"({cur['timeouts']}/{cur['trials']}; baseline "
                f"{base['timeouts']}/{base['trials']})"
            )
        if throughput_factor > 0:
            btp = base.get("trials_per_sec") or 0
            ctp = cur.get("trials_per_sec") or 0
            if btp > 0 and ctp * throughput_factor < btp:
                failures.append(
                    f"  {fmt_key(key)}: throughput {ctp:g} trials/s vs "
                    f"baseline {btp:g} (> {throughput_factor:g}x slower)"
                )
    # A baseline point absent from the current run is a coverage loss,
    # not a diff curiosity: a renamed label, a dropped sweep size or a
    # bench that stopped emitting a section would otherwise shrink the
    # gate's reach silently.  Only a point sitting above the current
    # run's population cap is excused (that subset was never attempted).
    missing = 0
    for key in sorted(base_points.keys() - cur_points.keys()):
        missing += 1
        if cur_max_n > 0 and key[1] > cur_max_n:
            notes.append(f"  baseline point above current --max-n="
                         f"{cur_max_n} (skipped): {fmt_key(key)}")
        else:
            failures.append(
                f"  missing point: {fmt_key(key)} is in the baseline but "
                f"absent from the current run — if the removal is "
                f"intentional, refresh with --update-baseline"
            )
    print(f"{name}: {matched} matched, {len(cur_points) - matched} new, "
          f"{missing} baseline-only, {len(failures)} failure(s)")
    return failures, notes


def main():
    ap = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--bench-dir", required=True)
    ap.add_argument("--baseline-dir",
                    default=os.path.join(os.path.dirname(
                        os.path.abspath(__file__)), "baselines"))
    ap.add_argument("--factor", type=float, default=2.0)
    ap.add_argument("--throughput-factor", type=float, default=0.0)
    ap.add_argument("--update-baseline", action="store_true")
    args = ap.parse_args()

    current = sorted(glob.glob(os.path.join(args.bench_dir, "BENCH_*.json")))
    # The provenance sidecars (obs/provenance.hpp) share the BENCH_ prefix
    # but are not perf records — and must never become baselines.
    current = [p for p in current if not p.endswith(".manifest.json")]
    if not current:
        sys.exit(f"no BENCH_*.json in {args.bench_dir} — run the benches "
                 "first")

    if args.update_baseline:
        os.makedirs(args.baseline_dir, exist_ok=True)
        for path in current:
            experiment, points, _ = load_records(path)
            out = os.path.join(args.baseline_dir, os.path.basename(path))
            write_baseline(out, experiment, points)
            print(f"baseline updated: {out} ({len(points)} points)")
        return

    all_failures = []
    checked = 0
    for path in current:
        name = os.path.basename(path)
        base_path = os.path.join(args.baseline_dir, name)
        if not os.path.exists(base_path):
            print(f"{name}: no committed baseline — skipped "
                  f"(add one with --update-baseline)")
            continue
        _, base_points, _ = load_records(base_path)
        _, cur_points, cur_max_n = load_records(path)
        failures, notes = compare(name, base_points, cur_points,
                                  args.factor, args.throughput_factor,
                                  cur_max_n)
        for note in notes:
            print(note)
        all_failures.extend(f"{name}:\n{f}" for f in failures)
        checked += 1

    if checked == 0:
        print("WARNING: no experiment had a committed baseline; the gate "
              "checked nothing")
    if all_failures:
        print("\nBENCH REGRESSION GATE FAILED:")
        for f in all_failures:
            print(f)
        sys.exit(1)
    print("bench regression gate: OK")


if __name__ == "__main__":
    main()
