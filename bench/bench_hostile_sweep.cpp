// S2 — hostile-environment parameter sweep: how much abuse does a
// protocol absorb before the constant-factor premium turns into
// non-stabilisation within a budget?
//
// The standard menu runs the churn and partition models at one default
// knob setting each; this bench sweeps the hostile axes themselves:
//
//   churn      rate × burst grid: per-tick fault probability
//              {0.005, 0.02, 0.08} × agents teleported per fault event
//              {1, 4, 16}, uniform-state resets, the default 50 n-tick
//              storm.  The measured stabilisation time *includes*
//              recovering from every fault — self-stabilisation's
//              constant-factor premium — until the fault inflow
//              outpaces repair and trials start exhausting the budget
//              ("unstab.");
//   partition  block count {2, 3, 4, 8}: the population is split into b
//              non-interacting blocks for the default 3 split/heal
//              cycles.  More blocks mean smaller islands that rank
//              locally but must reconcile globally on every heal.
//
// Every (protocol × point) goes through the parallel runner and appends
// one BENCH json record with the swept knob in the `param` column, so the
// perf trajectory tracks the whole grid, not just the defaults.
//
// A trailing *scale* section drives the default churn and partition knobs
// (plus the sparse edge-Markovian model) at n ∈ {10^4, 10^5} under a
// fixed parallel-time budget — throughput-at-scale records
// ("s2-scale-..."), not stabilisation.  It respects --max-n: CI's
// build-job smoke passes --max-n=10000 so the 10^4 rows run (and are
// gated against baselines) per commit, while the sanitizer smoke stays
// at quick mode's default cap.
#include "bench_common.hpp"

#include <cstdio>
#include <string>
#include <vector>

#include "protocols/factory.hpp"
#include "schedulers/scheduler.hpp"

namespace pp::bench {
namespace {

int run(const Context& ctx) {
  const u64 trials = ctx.trials_or(ctx.quick() ? 8 : 25);
  const u64 raw_n = ctx.quick() ? 32 : ctx.full() ? 128 : 64;
  const char* protocols[] = {"ag", "tree-ranking"};

  const double churn_rates[] = {0.005, 0.02, 0.08};
  const u64 churn_bursts[] = {1, 4, 16};
  const u64 partition_blocks[] = {2, 3, 4, 8};

  for (const char* proto : protocols) {
    const u64 n = preferred_population(proto, raw_n);
    // Generous whp headroom over the paper's uniform-scheduler bounds:
    // points that a knob setting genuinely breaks show up in "unstab.",
    // they don't hang the bench.
    const u64 budget = 20 * n * n * n;
    const std::string name = proto;
    const auto run_spec = [&](const SchedulerSpec& sched, double param,
                              Table& t) {
      const std::string sched_name = sched.to_string();
      // Registry protocol + named init rather than an opaque factory
      // lambda: resolve_factory() builds the identical protocol, and
      // the point's provenance-manifest record stays replayable.
      TrialSpec spec;
      spec.label = std::string("s2-") + proto + "-" + sched_name;
      spec.protocol = name;
      spec.n = n;
      spec.init = gen_uniform_random();
      spec.max_interactions = budget;
      spec.engine = EngineKind::kScheduled;
      spec.scheduler = sched;
      const TrialSet set =
          run_trials_ctx(ctx, spec, runner_options(ctx, trials));
      warn_if_invalid(set, spec.label);
      emit_bench_json(ctx, spec, n, param, set);
      const Summary sum = set.summary();
      t.row()
          .cell(sched_name)
          .cell(n)
          .cell(sum.mean, 5)
          .cell(sum.ci95_halfwidth(), 3)
          .cell(sum.median, 5)
          .cell(sum.q95, 5)
          .cell(set.stats.timeouts)
          .cell(set.trials_per_sec, 4);
    };

    Table churn(std::string("S2 churn sweep — ") + proto + " (rate x burst, " +
                std::to_string(trials) + " trials/point)");
    churn.headers({"scheduler", "n", "mean time", "ci95", "median", "q95",
                   "unstab.", "trials/s"});
    for (const double rate : churn_rates) {
      for (const u64 burst : churn_bursts) {
        SchedulerSpec s;
        s.kind = SchedulerKind::kChurn;
        s.churn_rate = rate;
        s.churn_faults = burst;
        // param encodes the grid point as rate * burst — the expected
        // fault inflow per tick, the axis the stabilisation premium
        // actually tracks.
        run_spec(s, rate * static_cast<double>(burst), churn);
      }
    }
    emit(ctx, churn);

    Table part(std::string("S2 partition sweep — ") + proto + " (blocks, " +
               std::to_string(trials) + " trials/point)");
    part.headers({"scheduler", "n", "mean time", "ci95", "median", "q95",
                  "unstab.", "trials/s"});
    for (const u64 blocks : partition_blocks) {
      SchedulerSpec s;
      s.kind = SchedulerKind::kPartition;
      s.partition_blocks = blocks;
      run_spec(s, static_cast<double>(blocks), part);
    }
    emit(ctx, part);
  }

  // ---- scale section: hostile + dynamic models at 10^4 .. 10^5 ----------
  run_scale_section(
      ctx, "S2 scale — hostile-model throughput", "s2-scale-ag-", "ag",
      capped_sizes(ctx, {10000, 100000}), [](u64 n) {
        std::vector<SchedulerSpec> menu;
        SchedulerSpec s;
        // Churn fault events cost O(k log n) through the protocol's
        // move_agent mutation API (bench_sampler_update measures the
        // per-fault cost directly), so the churn row runs the full size
        // grid — the old copy-and-rebuild path that capped it at 10^4
        // survives only as the churn[.../dense-ref] reference spec.
        s.kind = SchedulerKind::kChurn;
        menu.push_back(s);
        s = SchedulerSpec{};
        s.kind = SchedulerKind::kPartition;
        menu.push_back(s);
        s = SchedulerSpec{};
        s.kind = SchedulerKind::kDynamicGraph;
        s.graph = GraphKind::kCycle;
        s.dynamics = GraphDynamics::kEdgeMarkovian;
        s.edge_death = 2.0 / static_cast<double>(n);  // see S1's scale notes
        menu.push_back(s);
        return menu;
      });

  std::printf(
      "axes: churn param = rate x burst (expected teleported agents per "
      "tick); partition param = block count.  Stabilisation time includes "
      "fault recovery / post-heal reconciliation; \"unstab.\" counts trials "
      "that exhausted the budget.\n");
  return 0;
}

}  // namespace
}  // namespace pp::bench

int main(int argc, char** argv) {
  const auto ctx = pp::bench::init(
      argc, argv, "S2: hostile-environment parameter sweep",
      "Robustness axis: churn rate x fault burst and partition block count "
      "against stabilisation time.");
  return pp::bench::run(ctx);
}
