// E3 — Theorem 1's cap: from *arbitrary* starting configurations the
// ring-of-traps protocol stabilises in O(n^2 log^2 n) whp.
//
// A uniform-random configuration leaves k ~ n/e ranks unoccupied, so this
// regime exercises the min()'s second argument.  We sweep n with
// uniform-random starts, ring vs AG side by side: the ring's measured
// exponent may sit slightly above 2 (the log^2 n factor), i.e. the
// state-optimal novelty is *not* a free win on arbitrary starts — exactly
// as the paper's min(k n^1.5, n^2 log^2 n) predicts.
#include "bench_common.hpp"

#include <cmath>
#include <cstdio>

#include "protocols/factory.hpp"

namespace pp::bench {
namespace {

int run(const Context& ctx) {
  const u64 trials = ctx.trials_or(ctx.quick() ? 3 : 7);
  std::vector<u64> sizes{110, 240, 506, 1056, 2256};  // m(m+1)
  if (ctx.quick()) sizes = {110, 240, 506};
  if (ctx.full()) sizes.push_back(4556);

  Table t("E3 ring vs AG, uniform-random starts");
  t.headers({"n", "k0 ~ n/e", "ring mean", "ci95", "ag mean", "ci95",
             "ring/ag", "ring/(n^2 log^2 n)"});
  std::vector<SweepPoint> ring_pts, ag_pts;
  for (const u64 n : sizes) {
    const SweepPoint ring = run_point(
        ctx, "e3-ring-n" + std::to_string(n), n, 0,
        [n] { return make_protocol("ring-of-traps", n); },
        gen_uniform_random(), trials);
    const SweepPoint ag =
        run_point(ctx, "e3-ag-n" + std::to_string(n), n, 0,
                  [n] { return make_protocol("ag", n); },
                  gen_uniform_random(), trials);
    ring_pts.push_back(ring);
    ag_pts.push_back(ag);
    const double nn = static_cast<double>(n);
    const double cap = nn * nn * std::log2(nn) * std::log2(nn);
    t.row()
        .cell(n)
        .cell(nn / 2.718281828, 3)
        .cell(ring.time.mean, 5)
        .cell(ring.time.ci95_halfwidth(), 3)
        .cell(ag.time.mean, 5)
        .cell(ag.time.ci95_halfwidth(), 3)
        .cell(ring.time.mean / ag.time.mean, 3)
        .cell(ring.time.mean / cap, 3);
  }
  emit(ctx, t);
  report_fit(ring_pts, "ring arbitrary",
             "O(n^2 log^2 n) => exponent ~ 2 + o(1)");
  report_fit(ag_pts, "ag arbitrary", "Theta(n^2) => exponent ~ 2.0");
  std::printf(
      "paper[E3]: on arbitrary starts the ring's advantage disappears "
      "(k = Theta(n)); the o(n^2) win of Theorem 1 is specific to "
      "k = o(sqrt n).\n");
  return 0;
}

}  // namespace
}  // namespace pp::bench

int main(int argc, char** argv) {
  const auto ctx = pp::bench::init(
      argc, argv, "E3: ring-of-traps on arbitrary configurations",
      "Paper claim (Lemma 4 / Theorem 1): from any configuration the ring "
      "protocol stabilises in O(n^2 log^2 n) whp.");
  return pp::bench::run(ctx);
}
