#!/usr/bin/env python3
"""Turn bench_scheduler_comparison's BENCH records into the
stabilisation-vs-model figure.

Reads the JSON-lines perf records the bench writes
(BENCH_s1-protocols-under-alternative-schedulers.json), keeps the largest
population per (protocol, scheduler) point, and renders one horizontal-bar
panel per protocol: mean parallel stabilisation time per interaction model,
with models that failed to stabilise within the budget flagged on the bar.

Dependency-free on purpose (stdlib + hand-written SVG): the CI smoke step
runs it right after a tiny-n bench pass and uploads the figure as an
artifact, so it must work on any runner.  A text summary goes to stdout for
terminals without an SVG viewer.

Usage:
  plot_scheduler_comparison.py [--bench-dir DIR] [--out FILE.svg]

  --bench-dir  where the BENCH_*.json files live (default: cwd)
  --out        output SVG path (default: scheduler_comparison.svg in
               --bench-dir)
"""

import argparse
import json
import os
import re
import sys

BENCH_FILE = "BENCH_s1-protocols-under-alternative-schedulers.json"

# Point labels are "s1-<protocol>-<scheduler>" where both halves may
# contain hyphens (tree-ranking, accelerated-uniform); the scheduler half
# always starts with a registered kind name, so anchor the split there.
SCHED_ALT = (
    r"accelerated-uniform$|uniform$|random-matching$|count$|hybrid$|"
    r"(?:weighted|dynamic|graph-restricted|churn|partition|adversarial)\[.*"
)
POINT_RE = re.compile(r"^s1-(.+?)-(" + SCHED_ALT + r")$")

# The budget-capped large-n throughput points: "s1-scale-<protocol>-..."
# (hierarchical samplers, 10^4..10^5 — ag plus the extra-state protocols
# line-of-traps/tree-ranking, whose weighted[ring-decay]/
# weighted[trap-decay]/dynamic rows ride the same fast path since the
# dense-only cap was retired) and "s3-scale-<protocol>-..." (count/hybrid
# engines, 10^6..10^8).  They never stabilise by design, so they feed
# their own throughput panel instead of the stabilisation panels.
SCALE_RE = re.compile(r"^s[13]-scale-(.+?)-(" + SCHED_ALT + r")$")

# Categorical slot 1 (blue) for the measured bars, the reserved "serious"
# status red for models that never stabilised, and text/grid inks — the
# skill-validated default palette, light mode.
BAR = "#2a78d6"
BAR_STRANDED = "#e34948"
INK = "#1a1a2e"
INK_MUTED = "#6b6b7b"
GRID = "#d8d8e0"
SURFACE = "#ffffff"

FONT = "ui-sans-serif, system-ui, 'Helvetica Neue', Arial, sans-serif"


def load_points(path):
    """Splits records into stabilisation points ({(proto, sched, n): rec})
    and large-n throughput points ([(proto, sched, rec), ...])."""
    points = {}
    scale = []
    with open(path, "r", encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            rec = json.loads(line)
            if rec.get("kind") != "point":
                continue
            m = SCALE_RE.match(rec["point"])
            if m:
                scale.append((m.group(1), m.group(2), rec))
                continue
            m = POINT_RE.match(rec["point"])
            if not m:
                continue
            proto, sched = m.group(1), m.group(2)
            points[(proto, sched, rec["n"])] = rec
    return points, scale


def largest_n(points):
    """Keep one record per (protocol, scheduler): the largest population."""
    best = {}
    for (proto, sched, n), rec in points.items():
        key = (proto, sched)
        if key not in best or n > best[key]["n"]:
            best[key] = rec
    by_proto = {}
    for (proto, sched), rec in best.items():
        by_proto.setdefault(proto, []).append((sched, rec))
    return by_proto


def esc(s):
    return (
        s.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
    )


def row_order(item):
    """Sort key: clean models by mean time, then partially stranded, then
    fully stranded.

    A stranded run's mean_parallel_time is the time at which it got stuck,
    not a stabilisation time — a (partially) stranded model's mean is
    biased low, and sorting it among the real times would present it as
    the fastest row.
    """
    _, rec = item
    if rec["timeouts"] == 0:
        strandedness = 0
    elif rec["timeouts"] < rec["trials"]:
        strandedness = 1
    else:
        strandedness = 2
    return (strandedness, rec["mean_parallel_time"])


def svg_panel(out, proto, rows, x0, y0, width):
    """One protocol's horizontal-bar panel; returns the panel height."""
    row_h = 26
    bar_h = 14
    label_w = 240
    value_w = 120
    plot_w = width - label_w - value_w
    top_pad = 34
    height = top_pad + row_h * len(rows) + 14

    max_time = max(max(r["mean_parallel_time"] for _, r in rows), 1e-9)
    panel_n = max(r["n"] for _, r in rows)

    out.append(
        f'<text x="{x0}" y="{y0 + 16}" font-family="{FONT}" font-size="15" '
        f'font-weight="600" fill="{INK}">{esc(proto)} — mean parallel '
        f"stabilisation time (n = {panel_n})</text>"
    )
    # Recessive gridlines at quarter marks of the time axis.
    for frac in (0.25, 0.5, 0.75, 1.0):
        gx = x0 + label_w + plot_w * frac
        out.append(
            f'<line x1="{gx:.1f}" y1="{y0 + top_pad - 6}" x2="{gx:.1f}" '
            f'y2="{y0 + height - 10}" stroke="{GRID}" stroke-width="1"/>'
        )
        out.append(
            f'<text x="{gx:.1f}" y="{y0 + height + 2}" font-family="{FONT}" '
            f'font-size="10" fill="{INK_MUTED}" text-anchor="middle">'
            f"{max_time * frac:.0f}</text>"
        )

    for i, (sched, rec) in enumerate(rows):
        cy = y0 + top_pad + i * row_h
        t = rec["mean_parallel_time"]
        trials = rec["trials"]
        timeouts = rec["timeouts"]
        stranded = timeouts == trials
        # Clamp to the 4px corner radius: narrower would emit negative
        # horizontal path segments poking left of the baseline.
        w = max(plot_w * t / max_time, 4.0)
        color = BAR_STRANDED if stranded else BAR
        out.append(
            f'<text x="{x0 + label_w - 10}" y="{cy + bar_h - 2}" '
            f'font-family="{FONT}" font-size="12" fill="{INK}" '
            f'text-anchor="end">{esc(sched)}</text>'
        )
        # Thin bar, rounded data end, anchored square at the baseline.
        out.append(
            f'<path d="M {x0 + label_w} {cy} h {w - 4:.1f} '
            f"q 4 0 4 4 v {bar_h - 8} q 0 4 -4 4 "
            f'h {-(w - 4):.1f} z" fill="{color}"/>'
        )
        note = f"{t:,.0f}"
        if rec["n"] != panel_n:
            # largest_n() is per (protocol, scheduler): a model whose
            # records stop at a smaller population must say so rather than
            # masquerade on the shared axis.
            note += f"  (at n = {rec['n']})"
        if timeouts:
            # A stranded run contributes its time-at-stuck to the mean, so
            # partially stranded means are biased low — say so on the bar.
            note += f"  ({timeouts}/{trials} unstab."
            note += ")" if stranded else ", mean biased low)"
        out.append(
            f'<text x="{x0 + label_w + w + 8:.1f}" y="{cy + bar_h - 2}" '
            f'font-family="{FONT}" font-size="11" '
            f'fill="{INK_MUTED}">{esc(note)}</text>'
        )
    return height + 18


def svg_scale_panel(out, rows, x0, y0, width):
    """The large-n throughput panel: one bar per (scheduler, n), width
    proportional to trials/s.  Returns the panel height.

    These points are budget-capped (AG cannot stabilise at 10^4..10^5 in
    any reasonable wall time), so throughput — how fast the hierarchical
    sampler pushes a fixed parallel-time budget — is the number the
    per-commit trajectory tracks here.
    """
    row_h = 26
    bar_h = 14
    label_w = 300
    value_w = 120
    plot_w = width - label_w - value_w
    top_pad = 34
    height = top_pad + row_h * len(rows) + 14

    max_tps = max(max(r["trials_per_sec"] for _, _, r in rows), 1e-9)
    out.append(
        f'<text x="{x0}" y="{y0 + 16}" font-family="{FONT}" font-size="15" '
        f'font-weight="600" fill="{INK}">large-n scale — runner throughput '
        f"under a fixed parallel-time budget</text>"
    )
    for i, (proto, sched, rec) in enumerate(rows):
        cy = y0 + top_pad + i * row_h
        tps = rec["trials_per_sec"]
        w = max(plot_w * tps / max_tps, 4.0)
        label = f"{proto} · {sched} @ n={rec['n']:,}"
        out.append(
            f'<text x="{x0 + label_w - 10}" y="{cy + bar_h - 2}" '
            f'font-family="{FONT}" font-size="12" fill="{INK}" '
            f'text-anchor="end">{esc(label)}</text>'
        )
        out.append(
            f'<path d="M {x0 + label_w} {cy} h {w - 4:.1f} '
            f"q 4 0 4 4 v {bar_h - 8} q 0 4 -4 4 "
            f'h {-(w - 4):.1f} z" fill="{BAR}"/>'
        )
        out.append(
            f'<text x="{x0 + label_w + w + 8:.1f}" y="{cy + bar_h - 2}" '
            f'font-family="{FONT}" font-size="11" fill="{INK_MUTED}">'
            f"{tps:,.2f} trials/s</text>"
        )
    return height + 18


def scale_order(row):
    proto, sched, rec = row
    return (proto, rec["n"], -rec["trials_per_sec"], sched)


def overhead_rows(points, scale_rows):
    """Rows for the per-model overhead panel, from records that carry the
    optional "counters" object (POPRANK_OBS=ON builds only): null-skip
    efficiency = null_skips / (null_skips + productive_steps), i.e. the
    fraction of scheduled interactions the engine disposed of analytically
    instead of simulating, plus the roster rejection rate for the models
    that keep a live pair roster."""
    rows = []
    seen = set()
    items = [(p, s, rec) for (p, s, _n), rec in points.items()]
    items += list(scale_rows)
    for proto, sched, rec in items:
        counters = rec.get("counters", {}).get("counters")
        if not counters:
            continue
        prod = counters.get("productive_steps", 0)
        skips = counters.get("null_skips", 0)
        if prod + skips == 0:
            continue
        key = (proto, sched, rec["n"])
        if key in seen:
            continue
        seen.add(key)
        rej = counters.get("roster_rejections", 0)
        grows = counters.get("roster_grows", 0)
        rows.append(
            {
                "proto": proto,
                "sched": sched,
                "n": rec["n"],
                "efficiency": skips / (prod + skips),
                "rejections_per_kprod": 1000.0 * rej / max(prod, 1),
                "roster_grows": grows,
            }
        )
    rows.sort(key=lambda r: (r["proto"], -r["efficiency"], r["sched"], r["n"]))
    return rows


def svg_overhead_panel(out, rows, x0, y0, width):
    """Per-model scheduling-overhead panel: null-skip efficiency bars on a
    fixed 0..1 axis, annotated with roster churn.  Returns the height."""
    row_h = 26
    bar_h = 14
    label_w = 300
    value_w = 120
    plot_w = width - label_w - value_w
    top_pad = 34
    height = top_pad + row_h * len(rows) + 14

    out.append(
        f'<text x="{x0}" y="{y0 + 16}" font-family="{FONT}" font-size="15" '
        f'font-weight="600" fill="{INK}">per-model overhead — null-skip '
        f"efficiency (POPRANK_OBS counters)</text>"
    )
    for frac in (0.25, 0.5, 0.75, 1.0):
        gx = x0 + label_w + plot_w * frac
        out.append(
            f'<line x1="{gx:.1f}" y1="{y0 + top_pad - 6}" x2="{gx:.1f}" '
            f'y2="{y0 + height - 10}" stroke="{GRID}" stroke-width="1"/>'
        )
        out.append(
            f'<text x="{gx:.1f}" y="{y0 + height + 2}" font-family="{FONT}" '
            f'font-size="10" fill="{INK_MUTED}" text-anchor="middle">'
            f"{frac:.2f}</text>"
        )
    for i, r in enumerate(rows):
        cy = y0 + top_pad + i * row_h
        w = max(plot_w * r["efficiency"], 4.0)
        label = f"{r['proto']} · {r['sched']} @ n={r['n']:,}"
        out.append(
            f'<text x="{x0 + label_w - 10}" y="{cy + bar_h - 2}" '
            f'font-family="{FONT}" font-size="12" fill="{INK}" '
            f'text-anchor="end">{esc(label)}</text>'
        )
        out.append(
            f'<path d="M {x0 + label_w} {cy} h {w - 4:.1f} '
            f"q 4 0 4 4 v {bar_h - 8} q 0 4 -4 4 "
            f'h {-(w - 4):.1f} z" fill="{BAR}"/>'
        )
        note = f"{r['efficiency']:.3f}"
        if r["rejections_per_kprod"] > 0 or r["roster_grows"] > 0:
            note += (
                f"  ({r['rejections_per_kprod']:.1f} roster rej./1k steps, "
                f"{r['roster_grows']:,} rehashes)"
            )
        out.append(
            f'<text x="{x0 + label_w + w + 8:.1f}" y="{cy + bar_h - 2}" '
            f'font-family="{FONT}" font-size="11" '
            f'fill="{INK_MUTED}">{esc(note)}</text>'
        )
    return height + 18


def render_svg(by_proto, scale_rows, ovh_rows, out_path):
    width = 860
    x0, y_cursor = 20, 20
    body = []
    body.append(
        f'<text x="{x0}" y="{y_cursor + 14}" font-family="{FONT}" '
        f'font-size="17" font-weight="700" fill="{INK}">Stabilisation time '
        f"by interaction model</text>"
    )
    body.append(
        f'<text x="{x0}" y="{y_cursor + 32}" font-family="{FONT}" '
        f'font-size="11" fill="{INK_MUTED}">parallel time = interactions / n '
        f"(random-matching: rounds); red bar + “unstab.” = runs stranded "
        f"within the budget (locally stuck or budget exhausted)</text>"
    )
    y_cursor += 52
    for proto in sorted(by_proto):
        rows = sorted(by_proto[proto], key=row_order)
        y_cursor += svg_panel(body, proto, rows, x0, y_cursor, width - 2 * x0)
    if scale_rows:
        y_cursor += svg_scale_panel(
            body, sorted(scale_rows, key=scale_order), x0, y_cursor,
            width - 2 * x0
        )
    if ovh_rows:
        y_cursor += svg_overhead_panel(
            body, ovh_rows, x0, y_cursor, width - 2 * x0
        )
    height = y_cursor + 10
    with open(out_path, "w", encoding="utf-8") as f:
        f.write(
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
            f'height="{height}" viewBox="0 0 {width} {height}">\n'
            f'<rect width="{width}" height="{height}" fill="{SURFACE}"/>\n'
        )
        f.write("\n".join(body))
        f.write("\n</svg>\n")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--bench-dir", default=".")
    ap.add_argument("--out", default=None)
    args = ap.parse_args()

    path = os.path.join(args.bench_dir, BENCH_FILE)
    if not os.path.exists(path):
        sys.exit(
            f"no {BENCH_FILE} in {args.bench_dir} — run "
            "bench_scheduler_comparison first (any --quick/--trials setting)"
        )
    points, scale_rows = load_points(path)
    by_proto = largest_n(points)
    if not by_proto and not scale_rows:
        sys.exit(f"{path} contains no point records")

    out_path = args.out or os.path.join(
        args.bench_dir, "scheduler_comparison.svg"
    )
    ovh_rows = overhead_rows(points, scale_rows)
    render_svg(by_proto, scale_rows, ovh_rows, out_path)

    for proto in sorted(by_proto):
        rows = sorted(by_proto[proto], key=row_order)
        panel_n = max(r["n"] for _, r in rows)
        print(f"{proto} (n = {panel_n}):")
        for sched, rec in rows:
            flag = "" if rec["n"] == panel_n else f"  [at n = {rec['n']}]"
            if rec["timeouts"]:
                flag += f"  [{rec['timeouts']}/{rec['trials']} unstab.]"
            print(f"  {sched:36s} {rec['mean_parallel_time']:12,.1f}{flag}")
    if scale_rows:
        print("large-n scale (budget-capped throughput):")
        for proto, sched, rec in sorted(scale_rows, key=scale_order):
            print(
                f"  {proto} · {sched:36s} n={rec['n']:>7,} "
                f"{rec['trials_per_sec']:10,.2f} trials/s"
            )
    if ovh_rows:
        print("per-model overhead (null-skip efficiency):")
        for r in ovh_rows:
            print(
                f"  {r['proto']} · {r['sched']:36s} n={r['n']:>7,} "
                f"{r['efficiency']:8.3f}"
            )
    print(f"wrote {out_path}")


if __name__ == "__main__":
    main()
