// S4 — fault-update-cost microbench: what does one churn fault event
// actually cost, rebuild vs move?
//
// The churn scheduler has two fault paths with pinned bit-identical
// trajectories (tests/test_fault_injection.cpp):
//
//   fast       the default — each teleported agent goes through the
//              Protocol mutation API (uniform_agent_state / move_agent /
//              commit_moves), O(log n) Fenwick work per move, so a
//              k-agent burst costs O(k log n) no matter how large the
//              population is;
//   dense-ref  the transparent original behind churn[.../dense-ref] —
//              copy the configuration, scan it linearly per victim,
//              reset the protocol — O(n) per *fault event* on top of
//              O(n) per victim scan.
//
// This bench isolates the fault path: rate 1.0 makes every storm tick a
// fault event (no pair interactions at all), the storm is exactly the
// interaction budget (no clean tail), and the grid sweeps burst size
// k ∈ {1, 16, 256} against n ∈ {10^3, 10^4, 10^5}.  The BENCH records
// carry the merged obs counters — fault_state_touches ≤ 2 k per event on
// the fast path is the O(k)-not-O(n) evidence, machine-independent —
// while the wall columns show the throughput gap the fast path buys
// (the dense-ref rows should scale with n at fixed k; the fast rows
// should not, beyond the O(n) per-trial setup).
//
// Every (path × n × k) point goes through the parallel runner and
// appends one BENCH json record with k in the `param` column, so the
// per-fault cost rides the same regression gate as the stabilisation
// benches.
#include "bench_common.hpp"

#include <cstdio>
#include <string>
#include <vector>

#include "schedulers/scheduler.hpp"

namespace pp::bench {
namespace {

int run(const Context& ctx) {
  const u64 trials = ctx.trials_or(ctx.quick() ? 2 : 3);
  // Fault events per trial: enough to dominate runner overhead, few
  // enough that the dense-ref rows at n = 10^5 stay in budget.
  const u64 events = 64;
  const std::vector<u64> sizes = capped_sizes(ctx, {1000, 10000, 100000});
  const u64 bursts[] = {1, 16, 256};

  for (const bool dense_ref : {false, true}) {
    Table t(std::string("S4 fault-update cost — ") +
            (dense_ref ? "dense-ref (copy-and-rebuild)"
                       : "fast (move_agent)") +
            ", ag, " + std::to_string(events) + " fault events/trial (" +
            std::to_string(trials) + " trials/point)");
    t.headers({"scheduler", "n", "k", "interactions", "trials/s", "wall s",
               "us/move"});
    for (const u64 n : sizes) {
      for (const u64 k : bursts) {
        SchedulerSpec sched;
        sched.kind = SchedulerKind::kChurn;
        sched.churn_rate = 1.0;  // every tick is a fault event
        sched.churn_faults = k;
        sched.churn_active = events;
        sched.dense_reference = dense_ref;
        const std::string sched_name = sched.to_string();
        TrialSpec spec;
        spec.label = std::string("s4-update-ag-") + sched_name;
        spec.protocol = "ag";
        spec.n = n;
        spec.init = gen_uniform_random();
        spec.max_interactions = events;  // storm only, no clean tail
        spec.engine = EngineKind::kScheduled;
        spec.scheduler = sched;
        const TrialSet set =
            run_trials_ctx(ctx, spec, runner_options(ctx, trials));
        warn_if_invalid(set, spec.label);
        emit_bench_json(ctx, spec, n, static_cast<double>(k), set);
        const double moves =
            static_cast<double>(trials * events * k);
        t.row()
            .cell(sched_name)
            .cell(n)
            .cell(k)
            .cell(set.stats.interactions.mean(), 0)
            .cell(set.trials_per_sec, 4)
            .cell(set.wall_seconds, 3)
            .cell(set.wall_seconds / moves * 1e6, 4);
      }
    }
    emit(ctx, t);
  }

  std::printf(
      "axes: param = k (agents teleported per fault event).  us/move = wall "
      "time per teleported agent, including the O(n) per-trial setup — read "
      "the trend across n at fixed k: dense-ref grows linearly (O(n) copy + "
      "scan per event), fast stays flat (O(log n) per move).  The BENCH "
      "records carry fault_state_touches (<= 2 k per event, fast path only) "
      "as machine-independent evidence.\n");
  return 0;
}

}  // namespace
}  // namespace pp::bench

int main(int argc, char** argv) {
  const auto ctx = pp::bench::init(
      argc, argv, "S4: churn fault-update cost",
      "Perf axis: per-fault mutation cost, O(k log n) move_agent fast path "
      "vs the O(n) copy-and-rebuild reference.");
  return pp::bench::run(ctx);
}
