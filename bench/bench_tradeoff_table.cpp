// E6 — The state/time trade-off table (the paper's headline summary).
//
// All four protocols at a comparable population size, from the starting
// family each result is stated for:
//
//   protocol        extra states   start            paper bound
//   AG              0              arbitrary        Theta(n^2)
//   ring-of-traps   0              k-distant (k=1)  O(k n^1.5)
//   ring-of-traps   0              arbitrary        O(n^2 log^2 n)
//   line-of-traps   1              arbitrary        O(n^{7/4} log^2 n)
//   tree-ranking    O(log n)       arbitrary        O(n log n)
#include "bench_common.hpp"

#include <cmath>
#include <cstdio>

#include "protocols/factory.hpp"

namespace pp::bench {
namespace {

int run(const Context& ctx) {
  const u64 trials = ctx.trials_or(ctx.quick() ? 3 : 10);
  // Pick n near the line protocol's canonical 960 (m = 4) so every protocol
  // runs at (almost) the same size.
  const u64 n = ctx.quick() ? 72 : 960;

  struct Row {
    const char* protocol;
    const char* start;
    const char* bound;
    ConfigGenerator gen;
  };
  const Row rows[] = {
      {"ag", "uniform-random", "Theta(n^2)", gen_uniform_random()},
      {"ring-of-traps", "1-distant", "O(k n^1.5), k=1", gen_k_distant(1)},
      {"ring-of-traps", "uniform-random", "O(n^2 log^2 n)",
       gen_uniform_random()},
      {"line-of-traps", "uniform-random", "O(n^1.75 log^2 n)",
       gen_uniform_random()},
      {"tree-ranking", "uniform-random", "O(n log n)", gen_uniform_random()},
  };

  Table t("E6 state/time trade-off at n~" + std::to_string(n));
  t.headers({"protocol", "extra states", "start", "paper bound", "n",
             "mean time", "ci95", "median", "q95"});
  for (const auto& r : rows) {
    const u64 nn = preferred_population(r.protocol, n);
    const std::string proto_name = r.protocol;
    const SweepPoint p = run_point(
        ctx, std::string("e6-") + r.protocol + "-" + r.start, nn, 0,
        [proto_name, nn] { return make_protocol(proto_name, nn); }, r.gen,
        trials);
    const ProtocolPtr probe = make_protocol(r.protocol, nn);
    t.row()
        .cell(std::string(r.protocol))
        .cell(probe->num_extra_states())
        .cell(std::string(r.start))
        .cell(std::string(r.bound))
        .cell(nn)
        .cell(p.time.mean, 5)
        .cell(p.time.ci95_halfwidth(), 3)
        .cell(p.time.median, 5)
        .cell(p.time.q95, 5);
  }
  emit(ctx, t);
  std::printf(
      "reading guide: tree (x = O(log n)) dominates; ring at k=1 beats AG "
      "with zero extra states; ring/line on arbitrary starts trade "
      "constants and log factors against AG at this n (their win is "
      "asymptotic slope, see E2-E4).\n");
  return 0;
}

}  // namespace
}  // namespace pp::bench

int main(int argc, char** argv) {
  const auto ctx = pp::bench::init(
      argc, argv, "E6: state/time trade-off summary",
      "The paper's three contributions against the AG baseline at a common "
      "population size.");
  return pp::bench::run(ctx);
}
