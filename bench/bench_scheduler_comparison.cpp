// S1 — scheduler comparison: the same protocols under every interaction
// model in the standard menu (src/schedulers/).
//
// The paper's complexity claims are stated for the uniform random
// scheduler.  This bench exercises every protocol under the pluggable
// scheduler subsystem and reports how stabilisation behaves per model:
//
//   accelerated-uniform    the paper's model, exact null-skipping engine;
//   uniform                the same model simulated step-by-step (sanity
//                          anchor: statistics must agree with the above);
//   random-matching        synchronous rounds of random maximal matchings
//                          (parallel time = rounds, so roughly half the
//                          uniform model's interactions/n measure);
//   weighted[...]          pair selection from a weight kernel on the
//                          Fenwick-backed sampler layer: uniform weights
//                          (sanity anchor: must match uniform) and the
//                          spatial ring-decay kernel, whose distance-
//                          decaying meeting rates slow ranking by a
//                          log-factor premium without ever severing a
//                          pair;
//   churn[...]             uniform pairs plus a transient-fault storm
//                          (agents teleported to random states) that stops
//                          after 50 n ticks — stabilisation time includes
//                          recovering from every fault, so expect a
//                          constant-factor premium over uniform;
//   partition[...]         the population is split into non-interacting
//                          blocks for 3 split/heal cycles (cross-block
//                          meetings are dropped as nulls) before healing
//                          for good — the split phases delay global repair;
//   graph-restricted[...]  interactions restricted to the edges of a fixed
//                          topology: complete (must match uniform), a
//                          random 4-regular expander surrogate and the
//                          cycle.  Self-stabilising ranking needs *global*
//                          meetings — the end-game duplicates of a nearly
//                          ranked population are rarely adjacent in any
//                          sparse graph — so both sparse topologies strand
//                          most runs ("unstab." counts locally stuck +
//                          budget-exhausted trials).  That stranding is
//                          the phenomenon on display, not a bug;
//   dynamic[cycle/...]     the SAME sparse cycle made dynamic, both ways:
//                          edge-Markovian birth/death flips at cycle-
//                          matched stationary sparsity, and periodic
//                          rewiring every n steps.  Where the static
//                          cycle strands, both dynamics deliver every run
//                          to silence at a constant-factor premium — the
//                          headline contrast (ranking needs mixing, not
//                          density), pinned by tests/test_weighted_dynamic.
//
// The adversarial schedulers are deliberately absent here (O(states^2) per
// step makes them a small-n tool); bench_adversarial drives them through
// the same runner path and BENCH record format.
//
// Every (protocol × scheduler × n) point goes through the parallel runner
// and appends one BENCH json record, so the perf trajectory tracks all
// models, not just the paper's.
#include "bench_common.hpp"

#include <cstdio>
#include <string>
#include <vector>

#include "protocols/factory.hpp"
#include "schedulers/scheduler.hpp"

namespace pp::bench {
namespace {

int run(const Context& ctx) {
  const u64 trials = ctx.trials_or(ctx.quick() ? 10 : 30);
  const std::vector<u64> sizes = ctx.quick()  ? std::vector<u64>{16, 32}
                                 : ctx.full() ? std::vector<u64>{64, 128, 256}
                                              : std::vector<u64>{32, 64, 128};
  const char* protocols[] = {"ag", "tree-ranking"};

  for (const char* proto : protocols) {
    Table t(std::string("S1 scheduler comparison — ") + proto + " (" +
            std::to_string(trials) + " trials/point)");
    t.headers({"scheduler", "n", "mean time", "ci95", "median", "q95",
               "unstab.", "trials/s"});
    for (const SchedulerSpec& sched : standard_scheduler_menu()) {
      const std::string sched_name = sched.to_string();
      for (const u64 raw_n : sizes) {
        const u64 n = preferred_population(proto, raw_n);
        // Generous whp headroom over the paper's uniform-scheduler bounds
        // (O(n^2) parallel time for AG): runs that a model genuinely
        // strands show up in "unstab.", they don't hang the bench.
        const u64 budget = 20 * n * n * n;
        const std::string name = proto;
        TrialSpec spec = make_spec(
            std::string("s1-") + proto + "-" + sched_name, n,
            [name, n] { return make_protocol(name, n); },
            gen_uniform_random(), budget);
        spec.protocol = name;  // descriptive only
        spec.engine = EngineKind::kScheduled;
        spec.scheduler = sched;
        const TrialSet set =
            run_trials(spec, runner_options(ctx, trials), *ctx.pool);
        warn_if_invalid(set, spec.label);
        emit_bench_json(ctx, spec.label, n, 0, set);
        const Summary sum = set.summary();
        t.row()
            .cell(sched_name)
            .cell(n)
            .cell(sum.mean, 5)
            .cell(sum.ci95_halfwidth(), 3)
            .cell(sum.median, 5)
            .cell(sum.q95, 5)
            .cell(set.stats.timeouts)
            .cell(set.trials_per_sec, 4);
      }
    }
    emit(ctx, t);
  }
  std::printf(
      "model notes: parallel time is interactions/n except random-matching "
      "(rounds); \"unstab.\" counts budget exhaustion AND locally-stuck "
      "graph-restricted runs.  Expect uniform == accelerated-uniform == "
      "weighted[uniform] == graph-restricted[complete] statistically, "
      "matching about half the uniform measure, churn / partition / "
      "weighted[ring-decay] a constant-to-log factor above uniform, both "
      "sparse static topologies stranding most runs (ranking needs global "
      "meetings) — and the dynamic[cycle/...] rows, the same cycle with "
      "edge churn or periodic rewiring, stabilising every run: mixing, "
      "not density, is what ranking needs.\n");
  return 0;
}

}  // namespace
}  // namespace pp::bench

int main(int argc, char** argv) {
  const auto ctx = pp::bench::init(
      argc, argv, "S1: protocols under alternative schedulers",
      "Robustness axis: the paper's protocols exercised under matching, "
      "graph-restricted and uniform interaction models.");
  return pp::bench::run(ctx);
}
