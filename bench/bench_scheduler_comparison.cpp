// S1 — scheduler comparison: the same protocols under every interaction
// model in the standard menu (src/schedulers/).
//
// The paper's complexity claims are stated for the uniform random
// scheduler.  This bench exercises every protocol under the pluggable
// scheduler subsystem and reports how stabilisation behaves per model:
//
//   accelerated-uniform    the paper's model, exact null-skipping engine;
//   uniform                the same model simulated step-by-step (sanity
//                          anchor: statistics must agree with the above);
//   random-matching        synchronous rounds of random maximal matchings
//                          (parallel time = rounds, so roughly half the
//                          uniform model's interactions/n measure);
//   weighted[...]          pair selection from a weight kernel on the
//                          Fenwick-backed sampler layer: uniform weights
//                          (sanity anchor: must match uniform) and the
//                          spatial ring-decay kernel, whose distance-
//                          decaying meeting rates slow ranking by a
//                          log-factor premium without ever severing a
//                          pair;
//   churn[...]             uniform pairs plus a transient-fault storm
//                          (agents teleported to random states) that stops
//                          after 50 n ticks — stabilisation time includes
//                          recovering from every fault, so expect a
//                          constant-factor premium over uniform;
//   partition[...]         the population is split into non-interacting
//                          blocks for 3 split/heal cycles (cross-block
//                          meetings are dropped as nulls) before healing
//                          for good — the split phases delay global repair;
//   graph-restricted[...]  interactions restricted to the edges of a fixed
//                          topology: complete (must match uniform), a
//                          random 4-regular expander surrogate and the
//                          cycle.  Self-stabilising ranking needs *global*
//                          meetings — the end-game duplicates of a nearly
//                          ranked population are rarely adjacent in any
//                          sparse graph — so both sparse topologies strand
//                          most runs ("unstab." counts locally stuck +
//                          budget-exhausted trials).  That stranding is
//                          the phenomenon on display, not a bug;
//   dynamic[cycle/...]     the SAME sparse cycle made dynamic, both ways:
//                          edge-Markovian birth/death flips at cycle-
//                          matched stationary sparsity, and periodic
//                          rewiring every n steps.  Where the static
//                          cycle strands, both dynamics deliver every run
//                          to silence at a constant-factor premium — the
//                          headline contrast (ranking needs mixing, not
//                          density), pinned by tests/test_weighted_dynamic.
//
// A second, *scale* section exercises the hierarchically-sampled models
// (weighted kernels, sparse edge-Markovian) at n ∈ {10^4, 10^5} — the
// range the dense pair universe could never reach — under a fixed
// parallel-time budget: AG needs ~n² parallel time, so these points
// measure *throughput at scale* (trials/s with every null skipped and
// memory O(n)), not stabilisation.  They are labelled "s1-scale-..." so
// the stabilisation figure keeps its panels honest, and they respect
// --max-n (quick mode defaults to capping them away; CI raises the cap
// per build type).  The extra-state protocols (line-of-traps,
// tree-ranking) get their own scale sections on the same fast path —
// their declared extra-pair classes ride the grouped sampler's extra
// window and the weighted[trap-decay] state-distance kernel, so the
// dense-only cap they used to carry is gone.
//
// A third, "s3-scale-..." section does the same for the count-vector and
// hybrid engines at n ∈ {10^6, 10^7, 10^8} — the count engine's
// O(states)-per-event loop makes per-interaction cost independent of n,
// so these points extend the paper's own uniform model far past what any
// agent-level representation can hold, with accelerated-uniform as the
// agent-level reference row at every size the cap admits.
//
// The adversarial schedulers are deliberately absent here (O(states^2) per
// step makes them a small-n tool); bench_adversarial drives them through
// the same runner path and BENCH record format.
//
// Every (protocol × scheduler × n) point goes through the parallel runner
// and appends one BENCH json record, so the perf trajectory tracks all
// models, not just the paper's.
#include "bench_common.hpp"

#include <cstdio>
#include <string>
#include <vector>

#include "protocols/factory.hpp"
#include "schedulers/scheduler.hpp"

namespace pp::bench {
namespace {

int run(const Context& ctx) {
  const u64 trials = ctx.trials_or(ctx.quick() ? 10 : 30);
  const std::vector<u64> sizes = ctx.quick()  ? std::vector<u64>{16, 32}
                                 : ctx.full() ? std::vector<u64>{64, 128, 256}
                                              : std::vector<u64>{32, 64, 128};
  const char* protocols[] = {"ag", "tree-ranking"};

  for (const char* proto : protocols) {
    Table t(std::string("S1 scheduler comparison — ") + proto + " (" +
            std::to_string(trials) + " trials/point)");
    t.headers({"scheduler", "n", "mean time", "ci95", "median", "q95",
               "unstab.", "trials/s"});
    for (const SchedulerSpec& sched : standard_scheduler_menu()) {
      const std::string sched_name = sched.to_string();
      for (const u64 raw_n : sizes) {
        const u64 n = preferred_population(proto, raw_n);
        // Generous whp headroom over the paper's uniform-scheduler bounds
        // (O(n^2) parallel time for AG): runs that a model genuinely
        // strands show up in "unstab.", they don't hang the bench.
        const u64 budget = 20 * n * n * n;
        // Registry protocol + named init rather than an opaque factory
        // lambda: resolve_factory() builds the identical protocol, and
        // the point's provenance-manifest record stays replayable.
        TrialSpec spec;
        spec.label = std::string("s1-") + proto + "-" + sched_name;
        spec.protocol = proto;
        spec.n = n;
        spec.init = gen_uniform_random();
        spec.max_interactions = budget;
        spec.engine = EngineKind::kScheduled;
        spec.scheduler = sched;
        const TrialSet set =
            run_trials_ctx(ctx, spec, runner_options(ctx, trials));
        warn_if_invalid(set, spec.label);
        emit_bench_json(ctx, spec, n, 0, set);
        const Summary sum = set.summary();
        t.row()
            .cell(sched_name)
            .cell(n)
            .cell(sum.mean, 5)
            .cell(sum.ci95_halfwidth(), 3)
            .cell(sum.median, 5)
            .cell(sum.q95, 5)
            .cell(set.stats.timeouts)
            .cell(set.trials_per_sec, 4);
      }
    }
    emit(ctx, t);
  }

  // ---- scale section: the hierarchical sampler at 10^4 .. 10^5 ----------
  run_scale_section(
      ctx, "S1 scale — hierarchical sampler throughput", "s1-scale-ag-", "ag",
      capped_sizes(ctx, {10000, 100000}), [](u64 n) {
        std::vector<SchedulerSpec> menu;
        SchedulerSpec s;
        s.kind = SchedulerKind::kAcceleratedUniform;  // reference row
        menu.push_back(s);
        s.kind = SchedulerKind::kWeighted;
        s.kernel = WeightKernel::kUniform;
        menu.push_back(s);
        s.kernel = WeightKernel::kRingDecay;
        menu.push_back(s);
        s = SchedulerSpec{};
        s.kind = SchedulerKind::kDynamicGraph;
        s.graph = GraphKind::kCycle;
        s.dynamics = GraphDynamics::kEdgeMarkovian;
        // Scale the per-step death rate as 2/n so each edge refreshes ~2x
        // per unit of parallel time at every n — holding the *per-step*
        // rate fixed instead would make the topology mix ever faster
        // relative to the protocol as n grows (and make the flip stream,
        // which is Θ(n · death) work per step, quadratic in n).
        s.edge_death = 2.0 / static_cast<double>(n);
        menu.push_back(s);
        return menu;
      });

  // ---- scale section: extra-state protocols on the same fast path --------
  // Line-of-traps and tree-ranking carry extra (non-rank) states, which
  // used to force the weighted models onto the dense Θ(n²) path and cap
  // them near n = 4096.  Their declared ExtraPairClasses now ride the
  // grouped sampler's extra window (and the trap-decay state-distance
  // kernel), so the whole protocol matrix shares one 10^4..10^5 fast
  // path.  Same budget-capped throughput semantics as the ag section.
  for (const char* proto : {"line-of-traps", "tree-ranking"}) {
    run_scale_section(
        ctx, "S1 scale — extra-state protocol throughput",
        std::string("s1-scale-") + proto + "-", proto,
        capped_sizes(ctx, {10000, 100000}), [](u64 n) {
          std::vector<SchedulerSpec> menu;
          SchedulerSpec s;
          s.kind = SchedulerKind::kWeighted;
          s.kernel = WeightKernel::kRingDecay;
          menu.push_back(s);
          s.kernel = WeightKernel::kTrapDecay;
          menu.push_back(s);
          s = SchedulerSpec{};
          s.kind = SchedulerKind::kDynamicGraph;
          s.graph = GraphKind::kCycle;
          s.dynamics = GraphDynamics::kEdgeMarkovian;
          s.edge_death = 2.0 / static_cast<double>(n);  // see the ag section
          menu.push_back(s);
          return menu;
        });
  }

  // ---- s3 scale section: the count/hybrid engines at 10^6 .. 10^8 --------
  // Where the agent-level samplers top out (the s1 scale section is O(n)
  // memory and O(1)-per-event but still walks every agent), the
  // count-vector engine is O(states) per event with n only in the null
  // budget — so these points push the paper's model itself two to three
  // orders of magnitude further.  accelerated-uniform rides along as the
  // agent-level reference at every size the cap admits; count and hybrid
  // must track its throughput shape while staying bit-identical in
  // trajectory (tests/test_count_engine.cpp).  Budget-capped throughput
  // points like s1-scale (AG stabilisation at n = 10^8 needs ~10^16
  // interactions); CI runs Release with --max-n=10^7, the 10^8 point is
  // for full local runs.
  run_scale_section(
      ctx, "S3 scale — count-vector engine throughput", "s3-scale-ag-", "ag",
      capped_sizes(ctx, {1000000, 10000000, 100000000}), [](u64) {
        std::vector<SchedulerSpec> menu;
        SchedulerSpec s;
        s.kind = SchedulerKind::kAcceleratedUniform;  // agent-level reference
        menu.push_back(s);
        s.kind = SchedulerKind::kCountGillespie;
        menu.push_back(s);
        s.kind = SchedulerKind::kHybrid;
        menu.push_back(s);
        return menu;
      });

  std::printf(
      "model notes: parallel time is interactions/n except random-matching "
      "(rounds); \"unstab.\" counts budget exhaustion AND locally-stuck "
      "graph-restricted runs.  Expect uniform == accelerated-uniform == "
      "weighted[uniform] == graph-restricted[complete] statistically, "
      "matching about half the uniform measure, churn / partition / "
      "weighted[ring-decay] a constant-to-log factor above uniform, both "
      "sparse static topologies stranding most runs (ranking needs global "
      "meetings) — and the dynamic[cycle/...] rows, the same cycle with "
      "edge churn or periodic rewiring, stabilising every run: mixing, "
      "not density, is what ranking needs.\n");
  return 0;
}

}  // namespace
}  // namespace pp::bench

int main(int argc, char** argv) {
  const auto ctx = pp::bench::init(
      argc, argv, "S1: protocols under alternative schedulers",
      "Robustness axis: the paper's protocols exercised under matching, "
      "graph-restricted and uniform interaction models.");
  return pp::bench::run(ctx);
}
