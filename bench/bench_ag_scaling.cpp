// E1 — The AG baseline is Θ(n^2).
//
// Regenerates the paper's baseline claim (§1/§2): the generic state-optimal
// protocol AG stabilises in Θ(n^2) parallel time whp.  We sweep n over a
// dyadic range from two starting families and fit the power-law exponent,
// expecting ~2.0; the t/n^2 column should be roughly flat.
#include "bench_common.hpp"

#include <cstdio>

#include "protocols/factory.hpp"

namespace pp::bench {
namespace {

int run(const Context& ctx) {
  std::vector<u64> sizes{128, 256, 512, 1024, 2048, 4096};
  if (ctx.quick()) sizes = {64, 128, 256, 512};
  if (ctx.full()) sizes.push_back(8192);
  const u64 trials = ctx.trials_or(ctx.quick() ? 3 : 7);

  struct Series {
    const char* name;
    ConfigGenerator gen;
  };
  const Series series[] = {
      {"uniform-random", gen_uniform_random()},
      {"all-in-state-0", gen_all_in_state(0)},
  };

  for (const auto& s : series) {
    Table t(std::string("E1 AG scaling, ") + s.name + " start");
    t.headers({"n", "mean time", "ci95", "median", "q95", "timeouts",
               "time/n^2"});
    std::vector<SweepPoint> pts;
    for (const u64 n : sizes) {
      const SweepPoint p =
          run_point(ctx, std::string("e1-") + s.name + "-" + std::to_string(n),
                    n, static_cast<double>(n),
                    [n] { return make_protocol("ag", n); }, s.gen, trials);
      pts.push_back(p);
      t.row()
          .cell(p.n)
          .cell(p.time.mean, 5)
          .cell(p.time.ci95_halfwidth(), 3)
          .cell(p.time.median, 5)
          .cell(p.time.q95, 5)
          .cell(p.timeouts)
          .cell(p.time.mean / (static_cast<double>(n) * static_cast<double>(n)),
                3);
    }
    emit(ctx, t);
    report_fit(pts, s.name, "Theta(n^2)  => exponent ~ 2.0");
  }
  return 0;
}

}  // namespace
}  // namespace pp::bench

int main(int argc, char** argv) {
  const auto ctx = pp::bench::init(
      argc, argv, "E1: AG baseline scaling",
      "Paper claim: the generic state-optimal ranking protocol AG "
      "self-stabilises in Theta(n^2) parallel time whp.");
  return pp::bench::run(ctx);
}
