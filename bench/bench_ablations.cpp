// A1 & A2 — ablations of the paper's design choices.
//
// A1: trap count in the ring protocol.  The paper's analysis hinges on the
//     (m, m+1) square shape (~sqrt(n) traps of size ~sqrt(n)); we force
//     other trap counts at the same n and measure the k=1 recovery time.
//     Extremes degenerate: 1 trap = a single long chain; n/2 traps of size
//     2 push everything through gates (AG-like circulation).
//
// A2: buffer-line length 2k in the tree protocol.  The paper needs
//     k = Omega(log n) for the Lemma 21 epidemic argument; shorter lines
//     risk agents leaking back into the tree mid-reset (correctness is
//     unaffected — protocols remain stable — but time degrades).
#include "bench_common.hpp"

#include <cmath>
#include <cstdio>
#include <memory>

#include "protocols/ring_of_traps.hpp"
#include "protocols/tree_ranking.hpp"

namespace pp::bench {
namespace {

int run(const Context& ctx) {
  const u64 trials = ctx.trials_or(ctx.quick() ? 3 : 7);

  // --- A1: ring trap-count ablation -------------------------------------
  {
    const u64 n = ctx.quick() ? 506 : 1056;
    const u64 canonical = RingLayout(n).num_traps();
    std::vector<u64> trap_counts{2, canonical / 4, canonical / 2, canonical,
                                 canonical * 2, canonical * 4, n / 2};
    Table t("A1 ring trap-count ablation at n=" + std::to_string(n) +
            " (canonical " + std::to_string(canonical) + " traps), k=1");
    t.headers({"traps", "trap size", "mean time", "ci95", "median",
               "vs canonical"});
    double canonical_mean = 0;
    std::vector<SweepPoint> pts;
    for (const u64 traps : trap_counts) {
      if (traps < 1 || traps > n / 2) continue;
      const SweepPoint p = run_point(
          ctx, "a1-traps" + std::to_string(traps), n,
          static_cast<double>(traps),
          [n, traps] {
            return std::make_unique<RingOfTrapsProtocol>(n, traps);
          },
          gen_k_distant(1), trials);
      if (traps == canonical) canonical_mean = p.time.mean;
      pts.push_back(p);
    }
    for (const auto& p : pts) {
      t.row()
          .cell(static_cast<u64>(p.param))
          .cell(n / static_cast<u64>(p.param))
          .cell(p.time.mean, 5)
          .cell(p.time.ci95_halfwidth(), 3)
          .cell(p.time.median, 5)
          .cell(canonical_mean > 0 ? p.time.mean / canonical_mean : 0, 3);
    }
    emit(ctx, t);
    std::printf(
        "paper[A1]: the sqrt(n) x sqrt(n) shape balances descent time "
        "(trap size) against ring-circulation time (trap count); both "
        "extremes should lose.\n\n");
  }

  // --- A2: tree buffer-line length ablation -----------------------------
  {
    const u64 n = 1024;
    const u64 default_k = TreeRankingProtocol(n).k();
    const u64 a2_trials = ctx.trials_or(3);
    // Sub-logarithmic buffer lines livelock (green agents re-enter the tree
    // mid-reset and re-trigger R2 forever); budget the runs and report the
    // timeouts — they ARE the result.
    const u64 budget = 20'000'000;  // ~2*10^4 parallel time at n = 1024
    Table t("A2 tree buffer-line ablation at n=" + std::to_string(n) +
            " (default k = " + std::to_string(default_k) +
            "), budget 2e4 parallel time");
    t.headers({"k", "extra states 2k", "mean time", "median", "q95",
               "timeouts"});
    for (const u64 k : {1u, 2u, 4u, 5u, 6u, 8u, 16u, 32u}) {
      const SweepPoint p = run_point(
          ctx, "a2-k" + std::to_string(k), n, static_cast<double>(k),
          [n, k] { return std::make_unique<TreeRankingProtocol>(n, k); },
          gen_uniform_random(), a2_trials, budget);
      t.row()
          .cell(k)
          .cell(2 * k)
          .cell(p.time.mean, 5)
          .cell(p.time.median, 5)
          .cell(p.time.q95, 5)
          .cell(p.timeouts);
    }
    emit(ctx, t);
    std::printf(
        "paper[A2]: k = Omega(log n) gives the buffer line time to absorb "
        "the whole population during a reset (Lemma 21).  Measured: below "
        "~log2(n)/2 the protocol livelocks (timeouts); at k >= ~6 = "
        "0.6 log2 n it stabilises three orders of magnitude faster.  "
        "Correctness (stability) is never lost - a lucky schedule can "
        "still rank - but the whp time bound needs k = Omega(log n).\n");
  }
  // --- A4: the reset (red) mechanism ------------------------------------
  {
    // The "modified protocol" from the proof of Theorem 3 treats every
    // buffer state as green (no reset epidemic).  The paper uses it as an
    // analysis device on balanced configurations; as a real protocol it
    // cannot self-stabilise (tests/test_exact.cpp proves reachable silent
    // configurations = 0 at n = 3).  Here: timeouts under a generous
    // budget from arbitrary starts, vs the standard protocol.
    const u64 a4_trials = ctx.trials_or(3);
    const u64 budget_parallel = 100'000;
    Table t("A4 reset mechanism ablation (budget 1e5 parallel time)");
    t.headers({"n", "variant", "mean time", "median", "timeouts"});
    for (const u64 n : {256u, 1024u}) {
      for (const bool modified : {false, true}) {
        const auto mode = modified
                              ? TreeRankingProtocol::ResetMode::kModified
                              : TreeRankingProtocol::ResetMode::kStandard;
        const SweepPoint p = run_point(
            ctx,
            std::string("a4-") + (modified ? "mod-" : "std-") +
                std::to_string(n),
            n, 0,
            [n, mode] {
              return std::make_unique<TreeRankingProtocol>(n, 0, mode);
            },
            gen_uniform_random(), a4_trials, budget_parallel * n);
        t.row()
            .cell(n)
            .cell(std::string(modified ? "modified (no reset)" : "standard"))
            .cell(p.time.mean, 5)
            .cell(p.time.median, 5)
            .cell(p.timeouts);
      }
    }
    emit(ctx, t);
    std::printf(
        "paper[A4]: without the red reset epidemic the protocol cannot "
        "unload a mis-filled tree; every arbitrary-start trial times out "
        "while the standard protocol finishes in O(n log n).\n");
  }
  return 0;
}

}  // namespace
}  // namespace pp::bench

int main(int argc, char** argv) {
  const auto ctx = pp::bench::init(
      argc, argv, "A1+A2+A4: design-choice ablations",
      "Trap shape in the ring protocol; buffer-line length and the reset "
      "mechanism in the tree protocol.");
  return pp::bench::run(ctx);
}
