// F1 & F2 — the paper's two figures, regenerated.
//
// Figure 1 (§4.2): the cubic routing graph G on m^2 vertices built from a
// balanced full binary tree by merging the root with a leaf and adding a
// cycle over the remaining leaves; diameter <= 4 ceil(log m).
//
// Figure 2 (§5): the perfectly balanced binary tree of ranks for n = 9 with
// pre-order state numbering.
#include "bench_common.hpp"

#include <cmath>
#include <cstdio>

#include "structures/balanced_tree.hpp"
#include "structures/routing_graph.hpp"

namespace pp::bench {
namespace {

int run(const Context& ctx) {
  // --- F2: the tree of ranks, n = 9 (exact Figure 2) -------------------
  std::printf("--- F2: perfectly balanced tree of ranks, n = 9 ---\n");
  BalancedTree fig2(9);
  std::printf("%s\n", fig2.to_string().c_str());
  std::printf("(paper Figure 2: 0 branches to {1, 5}; 1 -> 2 -> {3, 4}; "
              "5 -> 6 -> {7, 8})\n\n");

  {
    Table t("F2 tree-of-ranks height vs the 2 log2 n bound");
    t.headers({"n", "height", "2 log2 n", "leaves", "branching nodes"});
    for (const u64 n : {9u, 100u, 1000u, 10000u, 100000u, 1000000u}) {
      BalancedTree tree(n);
      u64 branching = 0;
      for (StateId p = 0; p < n; ++p) {
        if (tree.is_branching(p)) ++branching;
      }
      t.row()
          .cell(n)
          .cell(static_cast<u64>(tree.height()))
          .cell(2.0 * std::log2(static_cast<double>(n)), 4)
          .cell(static_cast<u64>(tree.leaves().size()))
          .cell(branching);
    }
    emit(ctx, t);
  }

  // --- F1: the routing graph G, m^2 = 16 (Figure 1's size) -------------
  std::printf("--- F1: routing graph G for m^2 = 16 (m = 4) ---\n");
  RoutingGraph fig1(4);
  std::printf("adjacency (vertex: three neighbour slots l0 l1 l2):\n%s\n",
              fig1.to_string().c_str());
  std::printf("connected: %s, diameter: %u (bound 4 ceil(log2 m) = %u)\n\n",
              fig1.connected() ? "yes" : "NO", fig1.diameter(),
              4u * static_cast<u32>(std::ceil(std::log2(4.0))));

  {
    Table t("F1 routing graph G: cubic + logarithmic diameter");
    t.headers({"m", "vertices", "cubic", "connected", "diameter",
               "4 ceil(log2 m)"});
    for (const u64 m : {2u, 4u, 6u, 8u, 12u, 16u, 24u, 32u}) {
      RoutingGraph g(m);
      bool cubic = true;
      for (u32 v = 0; v < g.num_vertices(); ++v) {
        cubic = cubic && g.neighbours(v).size() == 3;
      }
      t.row()
          .cell(m)
          .cell(g.num_vertices())
          .cell(std::string(cubic ? "yes" : "NO"))
          .cell(std::string(g.connected() ? "yes" : "NO"))
          .cell(static_cast<u64>(g.diameter()))
          .cell(static_cast<u64>(
              4 * static_cast<u64>(std::ceil(std::log2(
                      static_cast<double>(m))))));
    }
    emit(ctx, t);
  }
  return 0;
}

}  // namespace
}  // namespace pp::bench

int main(int argc, char** argv) {
  const auto ctx = pp::bench::init(
      argc, argv, "F1+F2: the paper's combinatorial constructions",
      "Figure 1 (routing graph G) and Figure 2 (perfectly balanced tree of "
      "ranks), regenerated and verified.");
  return pp::bench::run(ctx);
}
