// P1 — (extension) convergence profiles: how each protocol's population
// organises itself over time, as geometric-checkpoint timelines.
//
// Not a table from the paper, but it renders the paper's narratives
// directly visible:
//   * AG / ring creep towards full rank coverage monotonically-ish;
//   * the tree protocol's reset is a spectacular collapse — rank coverage
//     drops to 0 while the buffer line holds the entire population, then
//     the pour rebuilds a perfect ranking;
//   * the line protocol's occupied-rank curve climbs as surplus tokens
//     drain through X.
#include "bench_common.hpp"

#include <cstdio>

#include "analysis/timeline.hpp"
#include "protocols/factory.hpp"

namespace pp::bench {
namespace {

int run(const Context& ctx) {
  const u64 n_hint = ctx.quick() ? 72 : 960;
  const u64 trials = ctx.trials_or(ctx.quick() ? 5 : 20);
  for (const auto name : protocol_names()) {
    const u64 n = preferred_population(name, n_hint);
    const std::string proto(name);
    // The tree protocol profiles best from all-in-X1 (forces a visible
    // reset wave); the others from uniform chaos.
    const bool from_buffer = name == "tree-ranking";
    const ConfigGenerator gen =
        from_buffer ? gen_all_in_state(static_cast<StateId>(n))
                    : gen_uniform_random();

    // One illustrative trajectory as a checkpoint timeline...
    ProtocolPtr p = make_protocol(name, n);
    Rng rng(derive_seed(ctx.seed, "profile-" + proto));
    p->reset(gen(*p, rng));
    Timeline tl(1.0, 2.0);
    RunOptions opt;
    opt.on_change = tl.observer();
    const RunResult r = run_accelerated(*p, rng, opt);
    tl.finish(*p, r);
    Table t = tl.to_table("P1 convergence profile: " + std::string(name) +
                          " at n=" + std::to_string(n));
    emit(ctx, t);

    // ... plus the stabilisation-time distribution the single trajectory
    // is drawn from, fanned out over the runner.
    TrialSpec spec = make_spec("p1-" + proto, n,
                               [proto, n] { return make_protocol(proto, n); },
                               gen);
    spec.protocol = proto;  // descriptive only: the factory takes precedence
    const TrialSet set =
        run_trials_ctx(ctx, spec, runner_options(ctx, trials));
    warn_if_invalid(set, spec.label);
    emit_bench_json(ctx, spec, n, 0, set);
    const Summary sum = set.summary();
    std::printf(
        "shown trajectory stabilised at parallel time %.1f (valid ranking: "
        "%s); over %llu trials: mean %.1f, median %.1f, q95 %.1f "
        "(%.1f trials/s on %llu threads)\n\n",
        r.parallel_time, r.valid ? "yes" : "NO",
        static_cast<unsigned long long>(trials), sum.mean, sum.median,
        sum.q95, set.trials_per_sec,
        static_cast<unsigned long long>(set.threads));
  }
  return 0;
}

}  // namespace
}  // namespace pp::bench

int main(int argc, char** argv) {
  const auto ctx = pp::bench::init(
      argc, argv, "P1: convergence profiles (extension)",
      "Rank coverage / buffer occupancy / productive weight over time for "
      "all four protocols.");
  return pp::bench::run(ctx);
}
