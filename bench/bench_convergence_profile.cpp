// P1 — (extension) convergence profiles: how each protocol's population
// organises itself over time, as geometric-checkpoint timelines.
//
// Not a table from the paper, but it renders the paper's narratives
// directly visible:
//   * AG / ring creep towards full rank coverage monotonically-ish;
//   * the tree protocol's reset is a spectacular collapse — rank coverage
//     drops to 0 while the buffer line holds the entire population, then
//     the pour rebuilds a perfect ranking;
//   * the line protocol's occupied-rank curve climbs as surplus tokens
//     drain through X.
#include "bench_common.hpp"

#include <cstdio>

#include "analysis/timeline.hpp"
#include "core/initial.hpp"
#include "protocols/factory.hpp"

namespace pp::bench {
namespace {

int run(const Context& ctx) {
  const u64 n_hint = ctx.quick() ? 72 : 960;
  for (const auto name : protocol_names()) {
    const u64 n = preferred_population(name, n_hint);
    ProtocolPtr p = make_protocol(name, n);
    Rng rng(derive_seed(ctx.seed, std::string("profile-") +
                                      std::string(name)));
    // The tree protocol profiles best from all-in-X1 (forces a visible
    // reset wave); the others from uniform chaos.
    if (name == "tree-ranking") {
      p->reset(initial::all_in_state(
          *p, static_cast<StateId>(p->num_ranks())));
    } else {
      p->reset(initial::uniform_random(*p, rng));
    }
    Timeline tl(1.0, 2.0);
    RunOptions opt;
    opt.on_change = tl.observer();
    const RunResult r = run_accelerated(*p, rng, opt);
    tl.finish(*p, r);
    Table t = tl.to_table("P1 convergence profile: " + std::string(name) +
                          " at n=" + std::to_string(n));
    emit(ctx, t);
    std::printf("stabilised at parallel time %.1f, valid ranking: %s\n\n",
                r.parallel_time, r.valid ? "yes" : "NO");
  }
  return 0;
}

}  // namespace
}  // namespace pp::bench

int main(int argc, char** argv) {
  const auto ctx = pp::bench::init(
      argc, argv, "P1: convergence profiles (extension)",
      "Rank coverage / buffer occupancy / productive weight over time for "
      "all four protocols.");
  return pp::bench::run(ctx);
}
